#include <gtest/gtest.h>

#include "src/elf/elf_reader.h"
#include "src/elf/elf_writer.h"

namespace depsurf {
namespace {

struct ElfVariant {
  ElfClass klass;
  Endian endian;
  ElfMachine machine;
};

class ElfRoundTripTest : public ::testing::TestWithParam<ElfVariant> {};

TEST_P(ElfRoundTripTest, SectionsSymbolsAndAddresses) {
  const ElfVariant& v = GetParam();
  ElfWriter w(ElfIdent{v.klass, v.endian, v.machine});

  ByteWriter text(v.endian);
  text.WriteU32(0x90909090);
  uint32_t text_idx =
      w.AddSection(".text", SectionType::kProgbits, text.TakeBytes(), 0x1000, kShfAlloc);

  ByteWriter rodata(v.endian);
  rodata.WriteU64(0xabcdef);
  rodata.WriteCString("hello");
  w.AddSection(".rodata", SectionType::kProgbits, rodata.TakeBytes(), 0x2000, kShfAlloc);

  w.AddSymbol(
      {"static_helper", 0x1000, 16, SymBind::kLocal, SymType::kFunc, (uint16_t)text_idx});
  w.AddSymbol({"vfs_fsync", 0x1002, 32, SymBind::kGlobal, SymType::kFunc, (uint16_t)text_idx});

  auto bytes = w.Finish();
  ASSERT_TRUE(bytes.ok()) << bytes.error().ToString();

  auto reader = ElfReader::Parse(bytes.TakeValue());
  ASSERT_TRUE(reader.ok()) << reader.error().ToString();
  EXPECT_EQ(reader->ident().klass, v.klass);
  EXPECT_EQ(reader->ident().endian, v.endian);
  EXPECT_EQ(reader->ident().machine, v.machine);

  const ElfSectionView* text_sec = reader->SectionByName(".text");
  ASSERT_NE(text_sec, nullptr);
  EXPECT_EQ(text_sec->addr, 0x1000u);
  EXPECT_EQ(text_sec->size, 4u);

  ASSERT_EQ(reader->symbols().size(), 2u);
  auto sym = reader->FindSymbol("vfs_fsync");
  ASSERT_TRUE(sym.has_value());
  EXPECT_EQ(sym->value, 0x1002u);
  EXPECT_EQ(sym->size, 32u);
  EXPECT_EQ(sym->bind, SymBind::kGlobal);
  EXPECT_EQ(sym->type, SymType::kFunc);

  // Address-based dereference into .rodata.
  auto at = reader->ReadAtAddress(0x2008);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(at->ReadCString().value(), "hello");
  auto val = reader->ReadAtAddress(0x2000);
  ASSERT_TRUE(val.ok());
  EXPECT_EQ(val->ReadU64().value(), 0xabcdefu);
  EXPECT_FALSE(reader->ReadAtAddress(0x9999).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ElfRoundTripTest,
    ::testing::Values(ElfVariant{ElfClass::k64, Endian::kLittle, ElfMachine::kX86_64},
                      ElfVariant{ElfClass::k64, Endian::kLittle, ElfMachine::kAarch64},
                      ElfVariant{ElfClass::k32, Endian::kLittle, ElfMachine::kArm},
                      ElfVariant{ElfClass::k64, Endian::kBig, ElfMachine::kPpc64},
                      ElfVariant{ElfClass::k64, Endian::kLittle, ElfMachine::kRiscv}));

TEST(ElfReaderTest, RejectsGarbage) {
  EXPECT_FALSE(ElfReader::Parse({}).ok());
  EXPECT_FALSE(ElfReader::Parse(std::vector<uint8_t>(100, 0)).ok());
  std::vector<uint8_t> bad_magic(100, 0);
  bad_magic[0] = 0x7f;
  bad_magic[1] = 'E';
  bad_magic[2] = 'L';
  bad_magic[3] = 'G';
  EXPECT_FALSE(ElfReader::Parse(bad_magic).ok());
}

TEST(ElfReaderTest, RejectsTruncatedFile) {
  ElfWriter w(ElfIdent{});
  w.AddSection(".data", SectionType::kProgbits, std::vector<uint8_t>(64, 7), 0x100, kShfAlloc);
  auto bytes = w.Finish();
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> truncated(bytes->begin(), bytes->begin() + bytes->size() / 2);
  EXPECT_FALSE(ElfReader::Parse(truncated).ok());
}

TEST(ElfReaderTest, EmptyObjectParses) {
  ElfWriter w(ElfIdent{});
  auto bytes = w.Finish();
  ASSERT_TRUE(bytes.ok());
  auto reader = ElfReader::Parse(bytes.TakeValue());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->symbols().empty());
  // null section + shstrtab
  EXPECT_EQ(reader->sections().size(), 2u);
  EXPECT_EQ(reader->SectionByName(".missing"), nullptr);
  EXPECT_FALSE(reader->SectionDataByName(".missing").ok());
}

TEST(ElfReaderTest, SymbolsAtAddressFindsDuplicates) {
  ElfWriter w(ElfIdent{});
  uint32_t text = w.AddSection(".text", SectionType::kProgbits, std::vector<uint8_t>(16, 0),
                               0x1000, kShfAlloc | kShfExecinstr);
  // Two static functions at the same address model a duplicated
  // header-defined function folded by the compiler.
  w.AddSymbol({"get_order", 0x1004, 4, SymBind::kLocal, SymType::kFunc, (uint16_t)text});
  w.AddSymbol({"get_order", 0x1004, 4, SymBind::kLocal, SymType::kFunc, (uint16_t)text});
  w.AddSymbol({"other", 0x1008, 4, SymBind::kGlobal, SymType::kFunc, (uint16_t)text});
  auto reader = ElfReader::Parse(w.Finish().TakeValue());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->SymbolsAtAddress(0x1004).size(), 2u);
  EXPECT_EQ(reader->SymbolsAtAddress(0x1008).size(), 1u);
  EXPECT_TRUE(reader->SymbolsAtAddress(0x2000).empty());
}

TEST(ElfReaderTest, LocalSymbolsPrecedeGlobals) {
  ElfWriter w(ElfIdent{});
  uint32_t text =
      w.AddSection(".text", SectionType::kProgbits, std::vector<uint8_t>(4, 0), 0, kShfAlloc);
  w.AddSymbol({"g1", 0, 0, SymBind::kGlobal, SymType::kFunc, (uint16_t)text});
  w.AddSymbol({"l1", 0, 0, SymBind::kLocal, SymType::kFunc, (uint16_t)text});
  auto reader = ElfReader::Parse(w.Finish().TakeValue());
  ASSERT_TRUE(reader.ok());
  ASSERT_EQ(reader->symbols().size(), 2u);
  EXPECT_EQ(reader->symbols()[0].name, "l1");
  EXPECT_EQ(reader->symbols()[1].name, "g1");
}

TEST(ElfWriterTest, SectionDataRoundTripsBigEndian) {
  ElfWriter w(ElfIdent{ElfClass::k64, Endian::kBig, ElfMachine::kPpc64});
  ByteWriter data(Endian::kBig);
  data.WriteU32(0x11223344);
  w.AddSection(".rodata", SectionType::kProgbits, data.TakeBytes(), 0x4000, kShfAlloc);
  auto reader = ElfReader::Parse(w.Finish().TakeValue());
  ASSERT_TRUE(reader.ok());
  auto r = reader->SectionDataByName(".rodata");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->endian(), Endian::kBig);
  EXPECT_EQ(r->ReadU32().value(), 0x11223344u);
}

}  // namespace
}  // namespace depsurf
