// Round-trip and robustness tests for dataset serialization (the published
// dataset artifact format).
#include <gtest/gtest.h>

#include "src/core/dataset_io.h"
#include "src/core/depsurf.h"
#include "src/elf/elf_reader.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"
#include "src/kernelgen/scripted.h"

namespace depsurf {
namespace {

Dataset SmallDataset() {
  Dataset dataset;
  KernelModel model(2025, 0.01, BuildCuratedCatalog());
  for (KernelVersion version : {KernelVersion(5, 4), KernelVersion(6, 2)}) {
    auto kernel = model.Configure(MakeBuild(version));
    EXPECT_TRUE(kernel.ok());
    auto bytes = BuildKernelImage(CompileKernel(2025, kernel.TakeValue()));
    EXPECT_TRUE(bytes.ok());
    auto surface = DependencySurface::Extract(bytes.TakeValue());
    EXPECT_TRUE(surface.ok());
    dataset.AddImage(version.Tag(), *surface);
  }
  return dataset;
}

TEST(DatasetIoTest, RoundTripPreservesQueries) {
  Dataset original = SmallDataset();
  std::vector<uint8_t> bytes = SaveDataset(original);
  EXPECT_GT(bytes.size(), 1000u);
  auto loaded = LoadDataset(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();

  EXPECT_EQ(loaded->num_images(), original.num_images());
  EXPECT_EQ(loaded->labels(), original.labels());
  // Query equivalence on scripted constructs with known behavior.
  for (const char* func : {"blk_account_io_start", "vfs_fsync", "__page_cache_alloc",
                           "get_order", "no_such_function"}) {
    EXPECT_EQ(loaded->CheckFunc(func), original.CheckFunc(func)) << func;
  }
  EXPECT_EQ(loaded->CheckStruct("request"), original.CheckStruct("request"));
  EXPECT_EQ(loaded->CheckField("request", "rq_disk", "struct gendisk *", false),
            original.CheckField("request", "rq_disk", "struct gendisk *", false));
  EXPECT_EQ(loaded->CheckTracepoint("block_rq_issue"), original.CheckTracepoint("block_rq_issue"));
  EXPECT_EQ(loaded->CheckSyscall("openat2"), original.CheckSyscall("openat2"));
  EXPECT_EQ(loaded->CheckRegisters(), original.CheckRegisters());

  // Metadata survives.
  EXPECT_EQ(loaded->images()[0].meta.version_minor, 4);
  EXPECT_EQ(loaded->images()[1].meta.gcc_major, 12);
  EXPECT_EQ(loaded->images()[0].meta.arch, "x86");
}

TEST(DatasetIoTest, HealthAndLedgerSurviveRoundTrip) {
  // Distill one clean image and one whose DWARF was corrupted, and check
  // the degradation provenance (states + ledger entries) round-trips.
  Dataset dataset;
  KernelModel model(2025, 0.01, BuildCuratedCatalog());
  auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4)));
  ASSERT_TRUE(kernel.ok());
  auto bytes = BuildKernelImage(CompileKernel(2025, kernel.TakeValue()));
  ASSERT_TRUE(bytes.ok());

  auto clean = DependencySurface::Extract(*bytes);
  ASSERT_TRUE(clean.ok());
  dataset.AddImage("clean", *clean);

  std::vector<uint8_t> damaged = bytes.TakeValue();
  auto elf = ElfReader::Parse(damaged);
  ASSERT_TRUE(elf.ok());
  const ElfSectionView* info = elf->SectionByName(".sdwarf_info");
  ASSERT_NE(info, nullptr);
  for (size_t i = 0; i < 16 && i < info->size; ++i) {
    damaged[static_cast<size_t>(info->offset) + i] = 0xff;
  }
  auto salvaged = DependencySurface::Extract(std::move(damaged));
  ASSERT_TRUE(salvaged.ok());
  ASSERT_EQ(salvaged->health().dwarf, DegradationState::kDegraded);
  dataset.AddImage("salvaged", *salvaged);

  auto loaded = LoadDataset(SaveDataset(dataset));
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  ASSERT_EQ(loaded->num_images(), 2u);
  const ImageRecord& a = loaded->images()[0];
  const ImageRecord& b = loaded->images()[1];
  EXPECT_FALSE(a.AnyDegraded());
  EXPECT_EQ(a.health.ledger.size(), 0u);
  EXPECT_TRUE(b.AnyDegraded());
  EXPECT_EQ(b.health.dwarf, DegradationState::kDegraded);
  ASSERT_EQ(b.health.ledger.size(), salvaged->health().ledger.size());
  for (size_t i = 0; i < b.health.ledger.size(); ++i) {
    const DiagnosticEntry& got = b.health.ledger.entries()[i];
    const DiagnosticEntry& want = salvaged->health().ledger.entries()[i];
    EXPECT_EQ(got.severity, want.severity);
    EXPECT_EQ(got.subsystem, want.subsystem);
    EXPECT_EQ(got.code, want.code);
    EXPECT_EQ(got.has_offset, want.has_offset);
    EXPECT_EQ(got.offset, want.offset);
    EXPECT_EQ(got.message, want.message);
  }
}

TEST(DatasetIoTest, RoundTripIsByteStable) {
  Dataset original = SmallDataset();
  std::vector<uint8_t> once = SaveDataset(original);
  auto loaded = LoadDataset(once);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(SaveDataset(*loaded), once);
}

TEST(DatasetIoTest, RejectsCorruptedInput) {
  std::vector<uint8_t> bytes = SaveDataset(SmallDataset());
  // Bad magic.
  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(LoadDataset(bad_magic).ok());
  // Truncations at various points must error, not crash.
  for (size_t cut : {4ul, 64ul, bytes.size() / 2, bytes.size() - 3}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(LoadDataset(truncated).ok()) << cut;
  }
  EXPECT_FALSE(LoadDataset({}).ok());
}

TEST(DatasetIoTest, AnalysisOnLoadedDatasetMatches) {
  Dataset original = SmallDataset();
  auto loaded = LoadDataset(SaveDataset(original));
  ASSERT_TRUE(loaded.ok());
  DependencySet deps;
  deps.program = "probe";
  deps.funcs = {"blk_account_io_start", "blk_mq_start_request"};
  deps.fields["request"]["rq_disk"] = FieldDep{"struct gendisk *", false};
  ProgramReport a = AnalyzeProgram(original, deps);
  ProgramReport b = AnalyzeProgram(*loaded, deps);
  EXPECT_EQ(a.RenderMatrix(), b.RenderMatrix());
}

}  // namespace
}  // namespace depsurf
