// Round-trip and robustness tests for dataset serialization (the published
// dataset artifact format).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "src/core/dataset_io.h"
#include "src/core/depsurf.h"
#include "src/elf/elf_reader.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"
#include "src/kernelgen/rates.h"
#include "src/kernelgen/scripted.h"
#include "src/util/prng.h"

namespace depsurf {
namespace {

Dataset SmallDataset() {
  Dataset dataset;
  KernelModel model(2025, 0.01, BuildCuratedCatalog());
  for (KernelVersion version : {KernelVersion(5, 4), KernelVersion(6, 2)}) {
    auto kernel = model.Configure(MakeBuild(version));
    EXPECT_TRUE(kernel.ok());
    auto bytes = BuildKernelImage(CompileKernel(2025, kernel.TakeValue()));
    EXPECT_TRUE(bytes.ok());
    auto surface = DependencySurface::Extract(bytes.TakeValue());
    EXPECT_TRUE(surface.ok());
    dataset.AddImage(version.Tag(), *surface);
  }
  return dataset;
}

TEST(DatasetIoTest, RoundTripPreservesQueries) {
  Dataset original = SmallDataset();
  std::vector<uint8_t> bytes = SaveDataset(original);
  EXPECT_GT(bytes.size(), 1000u);
  auto loaded = LoadDataset(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();

  EXPECT_EQ(loaded->num_images(), original.num_images());
  EXPECT_EQ(loaded->labels(), original.labels());
  // Query equivalence on scripted constructs with known behavior.
  for (const char* func : {"blk_account_io_start", "vfs_fsync", "__page_cache_alloc",
                           "get_order", "no_such_function"}) {
    EXPECT_EQ(loaded->CheckFunc(func), original.CheckFunc(func)) << func;
  }
  EXPECT_EQ(loaded->CheckStruct("request"), original.CheckStruct("request"));
  EXPECT_EQ(loaded->CheckField("request", "rq_disk", "struct gendisk *", false),
            original.CheckField("request", "rq_disk", "struct gendisk *", false));
  EXPECT_EQ(loaded->CheckTracepoint("block_rq_issue"), original.CheckTracepoint("block_rq_issue"));
  EXPECT_EQ(loaded->CheckSyscall("openat2"), original.CheckSyscall("openat2"));
  EXPECT_EQ(loaded->CheckRegisters(), original.CheckRegisters());

  // Metadata survives.
  EXPECT_EQ(loaded->images()[0].meta.version_minor, 4);
  EXPECT_EQ(loaded->images()[1].meta.gcc_major, 12);
  EXPECT_EQ(loaded->images()[0].meta.arch, "x86");
}

TEST(DatasetIoTest, HealthAndLedgerSurviveRoundTrip) {
  // Distill one clean image and one whose DWARF was corrupted, and check
  // the degradation provenance (states + ledger entries) round-trips.
  Dataset dataset;
  KernelModel model(2025, 0.01, BuildCuratedCatalog());
  auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4)));
  ASSERT_TRUE(kernel.ok());
  auto bytes = BuildKernelImage(CompileKernel(2025, kernel.TakeValue()));
  ASSERT_TRUE(bytes.ok());

  auto clean = DependencySurface::Extract(*bytes);
  ASSERT_TRUE(clean.ok());
  dataset.AddImage("clean", *clean);

  std::vector<uint8_t> damaged = bytes.TakeValue();
  auto elf = ElfReader::Parse(damaged);
  ASSERT_TRUE(elf.ok());
  const ElfSectionView* info = elf->SectionByName(".sdwarf_info");
  ASSERT_NE(info, nullptr);
  for (size_t i = 0; i < 16 && i < info->size; ++i) {
    damaged[static_cast<size_t>(info->offset) + i] = 0xff;
  }
  auto salvaged = DependencySurface::Extract(std::move(damaged));
  ASSERT_TRUE(salvaged.ok());
  ASSERT_EQ(salvaged->health().dwarf, DegradationState::kDegraded);
  dataset.AddImage("salvaged", *salvaged);

  auto loaded = LoadDataset(SaveDataset(dataset));
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  ASSERT_EQ(loaded->num_images(), 2u);
  const ImageRecord& a = loaded->images()[0];
  const ImageRecord& b = loaded->images()[1];
  EXPECT_FALSE(a.AnyDegraded());
  EXPECT_EQ(a.health.ledger.size(), 0u);
  EXPECT_TRUE(b.AnyDegraded());
  EXPECT_EQ(b.health.dwarf, DegradationState::kDegraded);
  ASSERT_EQ(b.health.ledger.size(), salvaged->health().ledger.size());
  for (size_t i = 0; i < b.health.ledger.size(); ++i) {
    const DiagnosticEntry& got = b.health.ledger.entries()[i];
    const DiagnosticEntry& want = salvaged->health().ledger.entries()[i];
    EXPECT_EQ(got.severity, want.severity);
    EXPECT_EQ(got.subsystem, want.subsystem);
    EXPECT_EQ(got.code, want.code);
    EXPECT_EQ(got.has_offset, want.has_offset);
    EXPECT_EQ(got.offset, want.offset);
    EXPECT_EQ(got.message, want.message);
  }
}

TEST(DatasetIoTest, RoundTripIsByteStable) {
  Dataset original = SmallDataset();
  std::vector<uint8_t> once = SaveDataset(original);
  auto loaded = LoadDataset(once);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(SaveDataset(*loaded), once);
}

TEST(DatasetIoTest, RejectsCorruptedInput) {
  std::vector<uint8_t> bytes = SaveDataset(SmallDataset());
  // Bad magic.
  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(LoadDataset(bad_magic).ok());
  // Truncations at various points must error, not crash.
  for (size_t cut : {4ul, 64ul, bytes.size() / 2, bytes.size() - 3}) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(LoadDataset(truncated).ok()) << cut;
  }
  EXPECT_FALSE(LoadDataset({}).ok());
}

// The full bundled LTS corpus, at a scale small enough for test time.
const Dataset& LtsDataset() {
  static const Dataset dataset = [] {
    Dataset d;
    KernelModel model(2025, 0.005, BuildCuratedCatalog());
    for (KernelVersion version : kLtsVersions) {
      auto kernel = model.Configure(MakeBuild(version));
      EXPECT_TRUE(kernel.ok());
      auto bytes = BuildKernelImage(CompileKernel(2025, kernel.TakeValue()));
      EXPECT_TRUE(bytes.ok());
      auto surface = DependencySurface::Extract(bytes.TakeValue());
      EXPECT_TRUE(surface.ok());
      d.AddImage(version.Tag(), *surface);
    }
    return d;
  }();
  return dataset;
}

// Every DatasetView query the two implementations share, compared cell for
// cell. Used for both v1-load-vs-v2-mmap and v2-reload equivalence.
void ExpectViewsAgree(const DatasetView& a, const DatasetView& b) {
  ASSERT_EQ(a.num_images(), b.num_images());
  EXPECT_EQ(a.labels(), b.labels());
  for (size_t i = 0; i < a.num_images(); ++i) {
    SurfaceMeta ma = a.MetaAt(i);
    SurfaceMeta mb = b.MetaAt(i);
    EXPECT_EQ(ma.version_major, mb.version_major);
    EXPECT_EQ(ma.version_minor, mb.version_minor);
    EXPECT_EQ(ma.arch, mb.arch);
    EXPECT_EQ(ma.flavor, mb.flavor);
    EXPECT_EQ(ma.gcc_major, mb.gcc_major);
    EXPECT_EQ(ma.config_options, mb.config_options);
    EXPECT_EQ(a.HealthSummaryAt(i), b.HealthSummaryAt(i)) << i;
    EXPECT_EQ(a.AnyDegradedAt(i), b.AnyDegradedAt(i)) << i;
  }
  for (const char* func : {"blk_account_io_start", "vfs_fsync", "__page_cache_alloc",
                           "get_order", "vfs_read", "no_such_function"}) {
    EXPECT_EQ(a.CheckFunc(func), b.CheckFunc(func)) << func;
    EXPECT_EQ(a.FuncDeclAt(func, 0), b.FuncDeclAt(func, 0)) << func;
  }
  for (const char* name : {"request", "task_struct", "no_such_struct"}) {
    EXPECT_EQ(a.CheckStruct(name), b.CheckStruct(name)) << name;
  }
  EXPECT_EQ(a.CheckField("request", "rq_disk", "struct gendisk *", false),
            b.CheckField("request", "rq_disk", "struct gendisk *", false));
  EXPECT_EQ(a.CheckField("request", "rq_disk", "", false),
            b.CheckField("request", "rq_disk", "", false));
  EXPECT_EQ(a.CheckField("request", "rq_disk", "struct gendisk *", true),
            b.CheckField("request", "rq_disk", "struct gendisk *", true));
  EXPECT_EQ(a.FieldTypeAt("request", "rq_disk", 0), b.FieldTypeAt("request", "rq_disk", 0));
  EXPECT_EQ(a.CheckTracepoint("block_rq_issue"), b.CheckTracepoint("block_rq_issue"));
  EXPECT_EQ(a.CheckTracepoint("no_such_event"), b.CheckTracepoint("no_such_event"));
  EXPECT_EQ(a.CheckSyscall("openat2"), b.CheckSyscall("openat2"));
  EXPECT_EQ(a.CheckSyscall("no_such_call"), b.CheckSyscall("no_such_call"));
  EXPECT_EQ(a.CheckRegisters(), b.CheckRegisters());
}

TEST(DatasetV2Test, MmapViewMatchesV1LoadOverLtsCorpus) {
  const Dataset& original = LtsDataset();
  auto v1 = LoadDataset(SaveDataset(original));
  ASSERT_TRUE(v1.ok()) << v1.error().ToString();
  auto v2 = MmapDataset::FromBytes(SaveDatasetV2(original));
  ASSERT_TRUE(v2.ok()) << v2.error().ToString();
  ExpectViewsAgree(*v1, *v2);

  // Whole-program analysis over the two views renders identically.
  DependencySet deps;
  deps.program = "probe";
  deps.funcs = {"blk_account_io_start", "vfs_read"};
  deps.fields["request"]["rq_disk"] = FieldDep{"struct gendisk *", false};
  deps.tracepoints = {"block_rq_issue"};
  deps.syscalls = {"openat2"};
  ProgramReport a = AnalyzeProgram(*v1, deps);
  ProgramReport b = AnalyzeProgram(*v2, deps);
  EXPECT_EQ(a.RenderMatrix(), b.RenderMatrix());
  EXPECT_EQ(a.WorstImplication(), b.WorstImplication());
}

TEST(DatasetV2Test, MigrateIsByteDeterministic) {
  const Dataset& original = LtsDataset();
  std::vector<uint8_t> first = SaveDatasetV2(original);
  std::vector<uint8_t> second = SaveDatasetV2(original);
  EXPECT_EQ(first, second);

  // Migrating an already-migrated dataset reproduces it exactly: v2 load
  // followed by v2 save is the identity on bytes.
  auto reloaded = LoadDatasetV2(first);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().ToString();
  EXPECT_EQ(SaveDatasetV2(*reloaded), first);

  // The v1 -> v2 path preserves every v1 string id (the v2 pool only
  // appends the suffix/diagnostic strings v1 stored inline), so migrating
  // the re-loaded dataset reproduces the same v2 bytes, and the round trip
  // is query-equivalent with the v1 load.
  std::vector<uint8_t> v1 = SaveDataset(original);
  auto v1_loaded = LoadDataset(v1);
  ASSERT_TRUE(v1_loaded.ok());
  EXPECT_EQ(SaveDatasetV2(*v1_loaded), first);
  auto via_v2 = LoadDatasetV2(first);
  ASSERT_TRUE(via_v2.ok());
  ExpectViewsAgree(*v1_loaded, *via_v2);
}

TEST(DatasetV2Test, FormatDetectionAndLoadAny) {
  Dataset original = SmallDataset();
  std::vector<uint8_t> v1 = SaveDataset(original);
  std::vector<uint8_t> v2 = SaveDatasetV2(original);
  ASSERT_TRUE(DatasetFormatVersion(v1).ok());
  EXPECT_EQ(*DatasetFormatVersion(v1), 1);
  ASSERT_TRUE(DatasetFormatVersion(v2).ok());
  EXPECT_EQ(*DatasetFormatVersion(v2), 2);
  EXPECT_FALSE(DatasetFormatVersion({0, 1, 2, 3}).ok());

  auto from_v1 = LoadAnyDataset(v1);
  auto from_v2 = LoadAnyDataset(v2);
  ASSERT_TRUE(from_v1.ok());
  ASSERT_TRUE(from_v2.ok()) << from_v2.error().ToString();
  EXPECT_EQ(from_v1->labels(), from_v2->labels());
  // Both loads canonicalize to the same v2 bytes. (v1 byte-identity is not
  // an invariant here: the v2 pool interns the suffix/diagnostic strings
  // that v1 stores inline, so a v2-loaded pool carries extra entries.)
  EXPECT_EQ(SaveDatasetV2(*from_v1), SaveDatasetV2(*from_v2));
}

TEST(DatasetV2Test, HealthAndDiagnosticsSurviveV2) {
  // Same salvage scenario as the v1 ledger test: a degraded image's states
  // and diagnostics must survive the v2 round trip and surface through the
  // mmap view's health summary.
  Dataset dataset;
  KernelModel model(2025, 0.01, BuildCuratedCatalog());
  auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4)));
  ASSERT_TRUE(kernel.ok());
  auto bytes = BuildKernelImage(CompileKernel(2025, kernel.TakeValue()));
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> damaged = *bytes;
  auto elf = ElfReader::Parse(damaged);
  ASSERT_TRUE(elf.ok());
  const ElfSectionView* info = elf->SectionByName(".sdwarf_info");
  ASSERT_NE(info, nullptr);
  for (size_t i = 0; i < 16 && i < info->size; ++i) {
    damaged[static_cast<size_t>(info->offset) + i] = 0xff;
  }
  auto salvaged = DependencySurface::Extract(std::move(damaged));
  ASSERT_TRUE(salvaged.ok());
  ASSERT_EQ(salvaged->health().dwarf, DegradationState::kDegraded);
  dataset.AddImage("salvaged", *salvaged);

  std::vector<uint8_t> v2 = SaveDatasetV2(dataset);
  auto view = MmapDataset::FromBytes(v2);
  ASSERT_TRUE(view.ok()) << view.error().ToString();
  EXPECT_TRUE(view->AnyDegradedAt(0));
  EXPECT_EQ(view->HealthSummaryAt(0), dataset.HealthSummaryAt(0));

  auto reloaded = LoadDatasetV2(v2);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->images()[0].health.ledger.size(),
            dataset.images()[0].health.ledger.size());
  EXPECT_EQ(reloaded->images()[0].health.ledger.entries()[0].message,
            dataset.images()[0].health.ledger.entries()[0].message);
}

// Runs every query against a possibly-corrupt view; the only contract is
// "never crash" — results may degrade to absent.
void PokeAllQueries(const MmapDataset& view) {
  for (size_t i = 0; i < view.num_images(); ++i) {
    view.MetaAt(i);
    view.HealthSummaryAt(i);
    view.AnyDegradedAt(i);
  }
  view.labels();
  view.CheckFunc("vfs_read");
  view.FuncDeclAt("vfs_read", 0);
  view.CheckStruct("request");
  view.CheckField("request", "rq_disk", "struct gendisk *", false);
  view.FieldTypeAt("request", "rq_disk", 0);
  view.CheckTracepoint("block_rq_issue");
  view.CheckSyscall("openat2");
  view.CheckRegisters();
}

TEST(DatasetV2Test, MmapViewSurvivesTruncation) {
  std::vector<uint8_t> v2 = SaveDatasetV2(SmallDataset());
  // Truncation anywhere must be rejected at Open (the header records the
  // exact file size) — and must never crash.
  for (size_t cut : {0ul, 4ul, 39ul, 40ul, 4095ul, 4096ul, v2.size() / 2, v2.size() - 1}) {
    std::vector<uint8_t> truncated(v2.begin(), v2.begin() + cut);
    auto view = MmapDataset::FromBytes(std::move(truncated));
    EXPECT_FALSE(view.ok()) << "cut at " << cut;
  }
}

TEST(DatasetV2Test, MmapViewSurvivesHeaderAndIndexMutations) {
  std::vector<uint8_t> v2 = SaveDatasetV2(SmallDataset());
  // Seeded byte flips across the header, section table, and the first
  // pages of every index. Attach may reject the file; if it accepts,
  // every query must complete without crashing.
  Prng prng(2025);
  const size_t probe_limit = std::min(v2.size(), size_t{64} * 1024);
  for (int round = 0; round < 200; ++round) {
    std::vector<uint8_t> mutated = v2;
    size_t offset = static_cast<size_t>(prng.NextBelow(probe_limit));
    mutated[offset] ^= static_cast<uint8_t>(1 + prng.NextBelow(255));
    auto view = MmapDataset::FromBytes(std::move(mutated));
    if (view.ok()) {
      PokeAllQueries(*view);
    }
  }
  // Targeted section-table damage: huge offsets/sizes and kind renumbering
  // must be rejected outright (the table is fully validated at attach).
  for (size_t entry = 0; entry < 10; ++entry) {
    std::vector<uint8_t> mutated = v2;
    size_t base = 40 + entry * 24;
    for (size_t i = 0; i < 8; ++i) {
      mutated[base + 8 + i] = 0xff;  // offset -> ~2^64
    }
    EXPECT_FALSE(MmapDataset::FromBytes(std::move(mutated)).ok()) << entry;
  }
}

TEST(DatasetV2Test, OpenDatasetViewDispatchesOnMagic) {
  Dataset original = SmallDataset();
  char tmpl[] = "/tmp/depsurf_dsio_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string v1_path = std::string(dir) + "/a.dds";
  const std::string v2_path = std::string(dir) + "/b.dds";
  for (const auto& [path, bytes] :
       {std::pair<std::string, std::vector<uint8_t>>{v1_path, SaveDataset(original)},
        {v2_path, SaveDatasetV2(original)}}) {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  auto v1 = OpenDatasetView(v1_path);
  ASSERT_TRUE(v1.ok()) << v1.error().ToString();
  EXPECT_EQ(v1->format, 1);
  auto v2 = OpenDatasetView(v2_path);
  ASSERT_TRUE(v2.ok()) << v2.error().ToString();
  EXPECT_EQ(v2->format, 2);
  EXPECT_EQ(v1->images, v2->images);
  ExpectViewsAgree(*v1->view, *v2->view);
  EXPECT_FALSE(OpenDatasetView(std::string(dir) + "/missing.dds").ok());
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  rmdir(dir);
}

TEST(DatasetIoTest, AnalysisOnLoadedDatasetMatches) {
  Dataset original = SmallDataset();
  auto loaded = LoadDataset(SaveDataset(original));
  ASSERT_TRUE(loaded.ok());
  DependencySet deps;
  deps.program = "probe";
  deps.funcs = {"blk_account_io_start", "blk_mq_start_request"};
  deps.fields["request"]["rq_disk"] = FieldDep{"struct gendisk *", false};
  ProgramReport a = AnalyzeProgram(original, deps);
  ProgramReport b = AnalyzeProgram(*loaded, deps);
  EXPECT_EQ(a.RenderMatrix(), b.RenderMatrix());
}

}  // namespace
}  // namespace depsurf
