// Static-analyzer tests: CFG construction, provenance dataflow, the four
// finding kinds, guard-refined consequences against a dataset, and the
// deterministic depsurf.analysis.v1 goldens the CLI contract is locked to.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/analyzer/analyzer.h"
#include "src/analyzer/cfg.h"
#include "src/analyzer/dominator.h"
#include "src/analyzer/liveness.h"
#include "src/bpf/bpf_builder.h"
#include "src/bpfgen/program_corpus.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"
#include "src/kernelgen/scripted.h"
#include "src/obs/json_lint.h"

namespace depsurf {
namespace {

// ---- CFG ----------------------------------------------------------------

TEST(CfgTest, LinearProgramIsOneBlock) {
  std::vector<BpfInsn> insns = {LoadField(2, 1, 0), CallHelperInsn(6), ExitInsn()};
  Cfg cfg = BuildCfg(insns);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].first, 0u);
  EXPECT_EQ(cfg.blocks[0].last, 2u);
  EXPECT_TRUE(cfg.blocks[0].succs.empty());  // ends in exit
  EXPECT_EQ(cfg.dangling_edges, 0u);

  std::vector<bool> reachable = ReachableInsns(cfg, insns);
  EXPECT_EQ(std::count(reachable.begin(), reachable.end(), true), 3);
}

TEST(CfgTest, CondJumpSplitsBlocksTakenEdgeFirst) {
  // 0: jeq r3,0,+1   1: load   2: exit
  std::vector<BpfInsn> insns = {JumpEqImm(3, 0, 1), LoadField(2, 1, 0), ExitInsn()};
  Cfg cfg = BuildCfg(insns);
  ASSERT_EQ(cfg.blocks.size(), 3u);
  // Conditional block: successor 0 is the taken edge (the exit block),
  // successor 1 the fall-through (the load).
  ASSERT_EQ(cfg.blocks[0].succs.size(), 2u);
  EXPECT_EQ(cfg.blocks[cfg.blocks[0].succs[0]].first, 2u);
  EXPECT_EQ(cfg.blocks[cfg.blocks[0].succs[1]].first, 1u);
}

TEST(CfgTest, WideInsnCountsTwoSlots) {
  // ld_imm64 occupies slots 0-1, so `goto +1` from slot 2 lands on slot 4.
  std::vector<BpfInsn> insns = {LoadImm64(3, 1), JumpAlways(1), LoadField(2, 1, 0),
                                ExitInsn()};
  Cfg cfg = BuildCfg(insns);
  std::vector<bool> reachable = ReachableInsns(cfg, insns);
  ASSERT_EQ(reachable.size(), 4u);
  EXPECT_TRUE(reachable[0]);
  EXPECT_TRUE(reachable[1]);
  EXPECT_FALSE(reachable[2]);  // jumped over
  EXPECT_TRUE(reachable[3]);
  EXPECT_EQ(cfg.insn_byte_off[2], 24u);  // after the 16-byte wide insn + jump
}

TEST(CfgTest, OutOfRangeJumpIsDangling) {
  std::vector<BpfInsn> insns = {JumpAlways(100), ExitInsn()};
  Cfg cfg = BuildCfg(insns);
  EXPECT_EQ(cfg.dangling_edges, 1u);
}

// ---- Dominator tree ------------------------------------------------------

TEST(DominatorTest, DiamondJoinsAtEntry) {
  // 0: jeq r3,0,+1   1: ja +1 (then)   2: <else falls into 3>   3: exit
  //
  //        B0 (cond)
  //        /       \
  //   B2 (else)  B1 (then)
  //        \       /
  //         B3 (exit)
  std::vector<BpfInsn> insns = {JumpEqImm(3, 0, 1), JumpAlways(1),
                                MovImm(4, 7), ExitInsn()};
  Cfg cfg = BuildCfg(insns);
  ASSERT_EQ(cfg.blocks.size(), 4u);
  DominatorTree dom = BuildDominatorTree(cfg);
  // Find the block holding the exit: neither branch arm dominates it; the
  // entry dominates everything.
  size_t exit_block = DominatorTree::kUnreachable;
  for (size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (cfg.blocks[b].first == 3) exit_block = b;
  }
  ASSERT_NE(exit_block, DominatorTree::kUnreachable);
  EXPECT_EQ(dom.idom[exit_block], 0u);
  EXPECT_TRUE(dom.Dominates(0, exit_block));
  for (size_t b = 1; b < cfg.blocks.size(); ++b) {
    if (b == exit_block) continue;
    EXPECT_FALSE(dom.Dominates(b, exit_block)) << "block " << b;
  }
}

TEST(DominatorTest, ChainDominatesTransitively) {
  // Straight-line split into blocks by two jumps-of-zero.
  std::vector<BpfInsn> insns = {JumpAlways(0), JumpAlways(0), ExitInsn()};
  Cfg cfg = BuildCfg(insns);
  ASSERT_EQ(cfg.blocks.size(), 3u);
  DominatorTree dom = BuildDominatorTree(cfg);
  EXPECT_TRUE(dom.Dominates(0, 2));
  EXPECT_TRUE(dom.Dominates(1, 2));
  EXPECT_FALSE(dom.Dominates(2, 1));
  EXPECT_EQ(dom.pred_edges[2], 1u);
}

TEST(DominatorTest, UnreachableBlockHasNoIdom) {
  // 0: ja +1   1: <dead>   2: exit
  std::vector<BpfInsn> insns = {JumpAlways(1), MovImm(4, 7), ExitInsn()};
  Cfg cfg = BuildCfg(insns);
  DominatorTree dom = BuildDominatorTree(cfg);
  size_t dead = DominatorTree::kUnreachable;
  for (size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (cfg.blocks[b].first == 1) dead = b;
  }
  ASSERT_NE(dead, DominatorTree::kUnreachable);
  EXPECT_EQ(dom.idom[dead], DominatorTree::kUnreachable);
  EXPECT_FALSE(dom.Dominates(0, dead));
}

// ---- Liveness ------------------------------------------------------------

TEST(LivenessTest, CallDefinesCallerSavedRegs) {
  // r0..r5 are clobbered by a call, so before the exit only r0 is live and
  // after the call site the helper arguments are dead.
  std::vector<BpfInsn> insns = {MovImm(1, 7), CallHelperInsn(6), ExitInsn()};
  Cfg cfg = BuildCfg(insns);
  std::vector<LiveMask> live = ComputeLiveness(cfg, insns);
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[2], LiveMask{1} << 0);         // exit reads r0
  EXPECT_NE(live[1] & (LiveMask{1} << 1), 0u);  // call uses r1
  EXPECT_EQ(live[0] & (LiveMask{1} << 1), 0u);  // mov defines r1
}

TEST(LivenessTest, ScratchPicksLowestDeadRegister) {
  // At insn 0 the call still needs r1..r5 and exit needs r0 via the call's
  // def, so r0 and r6 are both dead; the picker prefers r0.
  std::vector<BpfInsn> insns = {MovImm(1, 7), CallHelperInsn(6), ExitInsn()};
  Cfg cfg = BuildCfg(insns);
  std::vector<LiveMask> live = ComputeLiveness(cfg, insns);
  int scratch = PickScratchRegister(live[0]);
  EXPECT_EQ(scratch, 0);
  EXPECT_EQ(PickScratchRegister(kAllRegsLive & 0x03ff), -1)
      << "r10 is never offered even when r0..r9 are live";
}

TEST(LivenessTest, UnknownOpcodeIsAllLive) {
  BpfInsn mystery{};
  mystery.opcode = 0xfe;
  std::vector<BpfInsn> insns = {mystery, ExitInsn()};
  Cfg cfg = BuildCfg(insns);
  std::vector<LiveMask> live = ComputeLiveness(cfg, insns);
  EXPECT_EQ(live[0], kAllRegsLive);
}

// ---- Analysis without a dataset -----------------------------------------

TEST(AnalyzerTest, GuardedProbeIsClean) {
  ObjectAnalysis analysis = AnalyzeObject(BuildGuardedProbe());
  ASSERT_EQ(analysis.programs.size(), 1u);
  EXPECT_EQ(analysis.programs[0].helper_calls, 2u);

  // The exists-guard dominates the rq_disk access: unguarded=false on the
  // byte-offset reloc, and no findings at all.
  ASSERT_EQ(analysis.relocs.size(), 2u);
  EXPECT_EQ(analysis.relocs[0].kind, CoreRelocKind::kFieldExists);
  EXPECT_FALSE(analysis.relocs[0].unguarded);  // guard kinds need no guard
  EXPECT_EQ(analysis.relocs[1].kind, CoreRelocKind::kFieldByteOffset);
  EXPECT_EQ(analysis.relocs[1].struct_name, "request");
  EXPECT_EQ(analysis.relocs[1].field_name, "rq_disk");
  EXPECT_FALSE(analysis.relocs[1].unguarded);
  EXPECT_TRUE(analysis.relocs[1].reachable);
  EXPECT_TRUE(analysis.findings.empty());
}

TEST(AnalyzerTest, RawOffsetProbeFlagged) {
  ObjectAnalysis analysis = AnalyzeObject(BuildRawOffsetProbe());
  ASSERT_EQ(analysis.findings.size(), 1u);
  const Finding& finding = analysis.findings[0];
  EXPECT_EQ(finding.kind, FindingKind::kRawOffsetDeref);
  EXPECT_EQ(finding.insn_off, 0u);
  EXPECT_NE(finding.detail.find("+104"), std::string::npos);
  EXPECT_NE(finding.detail.find("no CO-RE relocation"), std::string::npos);
}

TEST(AnalyzerTest, UnguardedSiblingFlagged) {
  // The same access as the guarded probe, guard stripped.
  BpfObjectBuilder builder("unguarded_probe");
  builder.AttachKprobe("blk_account_io_start");
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  ObjectAnalysis analysis = AnalyzeObject(builder.Build());
  ASSERT_EQ(analysis.relocs.size(), 1u);
  EXPECT_TRUE(analysis.relocs[0].unguarded);
  ASSERT_EQ(analysis.findings.size(), 1u);
  EXPECT_EQ(analysis.findings[0].kind, FindingKind::kUnguardedReloc);
  EXPECT_EQ(analysis.findings[0].reloc_index, 0);
}

TEST(AnalyzerTest, UncatalogedHelperFlagged) {
  BpfObjectBuilder builder("mystery");
  builder.AttachKprobe("vfs_fsync");
  builder.CallHelper(9999);
  ObjectAnalysis analysis = AnalyzeObject(builder.Build());
  ASSERT_EQ(analysis.findings.size(), 1u);
  EXPECT_EQ(analysis.findings[0].kind, FindingKind::kUnknownHelper);
}

TEST(AnalyzerTest, GuardOnlyCoversItsOwnField) {
  // Guarding field A must not bless an access to field B.
  BpfObjectBuilder builder("crossguard");
  builder.AttachKprobe("blk_account_io_start");
  ASSERT_TRUE(builder.BeginGuard("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.AccessField("request", "start_time_ns", "u64").ok());
  ASSERT_TRUE(builder.EndGuard().ok());
  ObjectAnalysis analysis = AnalyzeObject(builder.Build());
  ASSERT_EQ(analysis.relocs.size(), 2u);
  EXPECT_TRUE(analysis.relocs[1].unguarded);
  ASSERT_EQ(analysis.findings.size(), 1u);
  EXPECT_EQ(analysis.findings[0].kind, FindingKind::kUnguardedReloc);
}

TEST(AnalyzerTest, SalvagedProgramAnalyzesDecodedPrefix) {
  BpfObject object = BuildGuardedProbe();
  // Simulate a salvaged stream: drop everything past the first two insns.
  // The rq_disk reloc now binds past the decoded prefix.
  object.programs[0].insns.resize(2);
  ObjectAnalysis analysis = AnalyzeObject(object);
  ASSERT_EQ(analysis.programs.size(), 1u);
  EXPECT_EQ(analysis.programs[0].insn_count, 2u);
  // The byte-offset reloc (insn_off=32) has no instruction: unreachable.
  ASSERT_EQ(analysis.relocs.size(), 2u);
  EXPECT_FALSE(analysis.relocs[1].reachable);
}

// ---- Guard facts fold back into the dependency set ----------------------

TEST(AnalyzerTest, ApplyGuardFactsMarksDominatedFields) {
  BpfObject object = BuildGuardedProbe();
  auto deps = ExtractDependencySet(object);
  ASSERT_TRUE(deps.ok());
  // The extractor sees a plain read reloc; dominance is invisible to it.
  ASSERT_NE(deps->fields.find("request"), deps->fields.end());
  ObjectAnalysis analysis = AnalyzeObject(object);
  ApplyGuardFacts(analysis, *deps);
  EXPECT_TRUE(deps->fields.at("request").at("rq_disk").guarded);
}

TEST(AnalyzerTest, ApplyGuardFactsLeavesUnguardedReadsAlone) {
  BpfObjectBuilder builder("mixed");
  builder.AttachKprobe("blk_account_io_start");
  ASSERT_TRUE(builder.BeginGuard("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.EndGuard().ok());
  // A second, unguarded read of the same field: dominance does not hold.
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  BpfObject object = builder.Build();
  auto deps = ExtractDependencySet(object);
  ASSERT_TRUE(deps.ok());
  ObjectAnalysis analysis = AnalyzeObject(object);
  ApplyGuardFacts(analysis, *deps);
  EXPECT_FALSE(deps->fields.at("request").at("rq_disk").guarded);
}

// ---- Against a dataset --------------------------------------------------

constexpr uint64_t kSeed = 2025;
constexpr double kScale = 0.02;

class AgainstFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new KernelModel(kSeed, kScale, BuildCuratedCatalog());
    old_dataset_ = new Dataset();  // rq_disk present
    old_dataset_->AddImage("v5.4", Surface(MakeBuild(KernelVersion(5, 4))));
    new_dataset_ = new Dataset();  // rq_disk absent (removed in v5.16)
    new_dataset_->AddImage("v6.8", Surface(MakeBuild(KernelVersion(6, 8))));
    mixed_dataset_ = new Dataset();
    mixed_dataset_->AddImage("v5.4", Surface(MakeBuild(KernelVersion(5, 4))));
    mixed_dataset_->AddImage("v6.8", Surface(MakeBuild(KernelVersion(6, 8))));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete old_dataset_;
    delete new_dataset_;
    delete mixed_dataset_;
    model_ = nullptr;
    old_dataset_ = new_dataset_ = mixed_dataset_ = nullptr;
  }

  static DependencySurface Surface(const BuildSpec& build) {
    auto kernel = model_->Configure(build);
    EXPECT_TRUE(kernel.ok());
    auto bytes = BuildKernelImage(CompileKernel(kSeed, kernel.TakeValue()));
    EXPECT_TRUE(bytes.ok());
    auto surface = DependencySurface::Extract(bytes.TakeValue());
    EXPECT_TRUE(surface.ok()) << surface.error().ToString();
    return surface.TakeValue();
  }

  static KernelModel* model_;
  static Dataset* old_dataset_;
  static Dataset* new_dataset_;
  static Dataset* mixed_dataset_;
};

KernelModel* AgainstFixture::model_ = nullptr;
Dataset* AgainstFixture::old_dataset_ = nullptr;
Dataset* AgainstFixture::new_dataset_ = nullptr;
Dataset* AgainstFixture::mixed_dataset_ = nullptr;

TEST_F(AgainstFixture, GuardDowngradesAbsenceToHandledByProgram) {
  ObjectAnalysis analysis =
      AnalyzeObject(BuildGuardedProbe(), AnalyzeOptions{mixed_dataset_});
  ASSERT_EQ(analysis.relocs.size(), 2u);
  EXPECT_EQ(analysis.relocs[0].consequence, "none");  // the guard itself
  // rq_disk is absent on v6.8, but the access is guard-dominated.
  EXPECT_EQ(analysis.relocs[1].consequence, "handled by program");
}

TEST_F(AgainstFixture, UnguardedSiblingFailsOutright) {
  BpfObjectBuilder builder("unguarded_probe");
  builder.AttachKprobe("blk_account_io_start");
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  ObjectAnalysis analysis =
      AnalyzeObject(builder.Build(), AnalyzeOptions{mixed_dataset_});
  ASSERT_EQ(analysis.relocs.size(), 1u);
  // Same absence, no guard: the CO-RE fixup fails the build/load.
  EXPECT_EQ(analysis.relocs[0].consequence, "compilation error");
}

TEST_F(AgainstFixture, StaticallyFalseGuardYieldsUnreachableReloc) {
  // Against new kernels only, the exists-guard is false on every image:
  // the guarded body is dead code and its reloc can never be exercised.
  ObjectAnalysis analysis =
      AnalyzeObject(BuildGuardedProbe(), AnalyzeOptions{new_dataset_});
  ASSERT_EQ(analysis.findings.size(), 1u);
  EXPECT_EQ(analysis.findings[0].kind, FindingKind::kUnreachableReloc);
  EXPECT_EQ(analysis.findings[0].reloc_index, 1);
  // Against the old kernel the guard holds and the object is clean except
  // for the ringbuf helper, which v5.4 predates.
  ObjectAnalysis old_run =
      AnalyzeObject(BuildGuardedProbe(), AnalyzeOptions{old_dataset_});
  ASSERT_EQ(old_run.findings.size(), 1u);
  EXPECT_EQ(old_run.findings[0].kind, FindingKind::kUnknownHelper);
  EXPECT_NE(old_run.findings[0].detail.find("ringbuf"), std::string::npos);
}

TEST_F(AgainstFixture, HelperAvailabilityCountsImages) {
  ObjectAnalysis analysis =
      AnalyzeObject(BuildGuardedProbe(), AnalyzeOptions{mixed_dataset_});
  const Finding* helper = nullptr;
  for (const Finding& finding : analysis.findings) {
    if (finding.kind == FindingKind::kUnknownHelper) {
      helper = &finding;
    }
  }
  ASSERT_NE(helper, nullptr);
  // bpf_ringbuf_output (v5.8) is missing on exactly one of the two images.
  EXPECT_NE(helper->detail.find("1/2 images"), std::string::npos);
}

TEST_F(AgainstFixture, AgainstAllMatchesCombinedDataset) {
  // Two single-image datasets through against_all behave exactly like the
  // one mixed dataset: worst consequence across all wins, image counts sum.
  AnalyzeOptions multi;
  multi.against_all = {old_dataset_, new_dataset_};
  ObjectAnalysis analysis = AnalyzeObject(BuildGuardedProbe(), multi);
  EXPECT_EQ(analysis.against_images, 2u);
  ASSERT_EQ(analysis.relocs.size(), 2u);
  EXPECT_EQ(analysis.relocs[1].consequence, "handled by program");
  const Finding* helper = nullptr;
  for (const Finding& finding : analysis.findings) {
    if (finding.kind == FindingKind::kUnknownHelper) helper = &finding;
  }
  ASSERT_NE(helper, nullptr);
  EXPECT_NE(helper->detail.find("1/2 images"), std::string::npos);

  // against_all takes precedence over against when both are set.
  multi.against = new_dataset_;
  ObjectAnalysis again = AnalyzeObject(BuildGuardedProbe(), multi);
  EXPECT_EQ(again.against_images, 2u);
}

// ---- Deterministic JSON goldens -----------------------------------------

TEST(AnalysisJsonTest, RawOffsetGolden) {
  ObjectAnalysis analysis = AnalyzeObject(BuildRawOffsetProbe());
  std::string json = AnalysisToJson(analysis);
  const std::string expected =
      "{\n"
      "  \"schema\": \"depsurf.analysis.v1\",\n"
      "  \"object\": \"rawoffset_probe\",\n"
      "  \"against\": null,\n"
      "  \"programs\": [\n"
      "    {\"name\": \"kprobe_blk_account_io_start\", "
      "\"section\": \"kprobe/blk_account_io_start\", \"insns\": 3, \"blocks\": 1, "
      "\"reachable_insns\": 3, \"helper_calls\": 1}\n"
      "  ],\n"
      "  \"relocs\": [],\n"
      "  \"findings\": [\n"
      "    {\"kind\": \"raw-offset-deref\", \"program\": \"kprobe_blk_account_io_start\", "
      "\"insn_off\": 0, \"detail\": \"r4 = *(u64 *)(r1 +104): load from ctx pointer at "
      "hardcoded offset +104 with no CO-RE relocation\", \"remediation\": \"not fixable: "
      "no CO-RE relocation; a guard cannot be synthesized without source-level CO-RE "
      "conversion\"}\n"
      "  ],\n"
      "  \"summary\": {\"findings\": 1, \"raw_offset_deref\": 1, \"unguarded_reloc\": 0, "
      "\"unknown_helper\": 0, \"unreachable_reloc\": 0}\n"
      "}\n";
  EXPECT_EQ(json, expected);
}

TEST(AnalysisJsonTest, DeterministicAcrossRuns) {
  std::string a = AnalysisToJson(AnalyzeObject(BuildGuardedProbe()));
  std::string b = AnalysisToJson(AnalyzeObject(BuildGuardedProbe()));
  EXPECT_EQ(a, b);
}

TEST(AnalysisJsonTest, GuardedProbeLintsAndCarriesVerdicts) {
  std::string json = AnalysisToJson(AnalyzeObject(BuildGuardedProbe()));
  EXPECT_TRUE(obs::ValidateAnalysisDoc(json).ok())
      << obs::ValidateAnalysisDoc(json).ToString();
  EXPECT_NE(json.find("\"unguarded\": false"), std::string::npos);
  EXPECT_NE(json.find("\"field\": \"rq_disk\""), std::string::npos);
}

TEST(AnalysisJsonTest, LintRejectsTamperedSummary) {
  std::string json = AnalysisToJson(AnalyzeObject(BuildRawOffsetProbe()));
  ASSERT_TRUE(obs::ValidateAnalysisDoc(json).ok());
  size_t pos = json.find("\"raw_offset_deref\": 1");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, std::string("\"raw_offset_deref\": 1").size(),
               "\"raw_offset_deref\": 2");
  EXPECT_FALSE(obs::ValidateAnalysisDoc(json).ok());
}

}  // namespace
}  // namespace depsurf
