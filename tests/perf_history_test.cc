// The cross-run perf history store and its trend analytics: NDJSON
// round-trips, robust baselines with change-point flags, host-fingerprint
// comparability, adaptive floors feeding the perf gate, and — the
// acceptance bar shared with the parallel-build suite — masked history
// records that are byte-identical across --jobs settings.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json_lint.h"
#include "src/obs/perf_gate.h"
#include "src/obs/perf_history.h"
#include "src/obs/profile.h"
#include "src/study/study.h"

namespace depsurf {
namespace {

obs::HostFingerprint TestHost() {
  obs::HostFingerprint host;
  host.cpu_model = "test-cpu";
  host.cores = 8;
  host.page_size = 4096;
  return host;
}

obs::HistoryRecord MakeRecord(const std::string& label, double extract_seconds) {
  obs::HistoryRecord record;
  record.label = label;
  record.recorded_unix_ms = 1754700000000;
  record.host = TestHost();
  obs::AddStageTimings(record, {{"extract", extract_seconds, 17}});
  return record;
}

std::string MakeHistoryPath() {
  char tmpl[] = "/tmp/depsurf_history_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir != nullptr ? dir : ".") + "/history.ndjson";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(PerfHistoryTest, RecordJsonIsOneLineAndRoundTrips) {
  obs::HistoryRecord record = MakeRecord("pr-123", 1.5);
  obs::AddStageTimings(record, {{"analyze", 0.25, 53}});
  record.profile.present = true;
  record.profile.span_nodes = 40;
  record.profile.wall_ns = 2000;
  record.profile.serial_self_ns = 1500;
  record.profile.serial_share_pct = 75.0;
  record.profile.critical_path.push_back({"build.dataset", 2000, 500});

  std::string line = obs::HistoryRecordJson(record);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "interior newline breaks NDJSON";

  auto parsed = obs::ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  auto back = obs::ParseHistoryRecord(*parsed);
  ASSERT_TRUE(back.ok()) << back.error().ToString();
  EXPECT_EQ(back->label, "pr-123");
  EXPECT_EQ(back->recorded_unix_ms, 1754700000000);
  EXPECT_EQ(back->host.Id(), "test-cpu/8/4096");
  ASSERT_EQ(back->stages.size(), 2u);
  EXPECT_EQ(back->stages[0].name, "analyze");  // sorted by name
  EXPECT_EQ(back->stages[1].name, "extract");
  EXPECT_DOUBLE_EQ(back->stages[1].wall_seconds, 1.5);
  EXPECT_EQ(back->stages[1].items, 17u);
  ASSERT_TRUE(back->profile.present);
  EXPECT_EQ(back->profile.span_nodes, 40u);
  EXPECT_EQ(back->profile.wall_ns, 2000u);
  ASSERT_EQ(back->profile.critical_path.size(), 1u);
  EXPECT_EQ(back->profile.critical_path[0].name, "build.dataset");

  // A record without a profile serializes "profile":null and parses back
  // as absent.
  obs::HistoryRecord bare = MakeRecord("bare", 1.0);
  std::string bare_line = obs::HistoryRecordJson(bare);
  EXPECT_NE(bare_line.find("\"profile\":null"), std::string::npos);
  auto bare_back = obs::ParseHistoryRecord(*obs::ParseJson(bare_line));
  ASSERT_TRUE(bare_back.ok());
  EXPECT_FALSE(bare_back->profile.present);
}

TEST(PerfHistoryTest, AddStageTimingsMergesDuplicatesAndSorts) {
  obs::HistoryRecord record;
  obs::AddStageTimings(record, {{"b", 1.0, 2}, {"a", 0.5, 1}, {"b", 2.0, 3}});
  ASSERT_EQ(record.stages.size(), 2u);
  EXPECT_EQ(record.stages[0].name, "a");
  EXPECT_EQ(record.stages[1].name, "b");
  EXPECT_DOUBLE_EQ(record.stages[1].wall_seconds, 3.0);
  EXPECT_EQ(record.stages[1].items, 5u);
}

TEST(PerfHistoryTest, AppendAndValidateNdjsonStore) {
  const std::string path = MakeHistoryPath();
  ASSERT_TRUE(obs::AppendHistoryRecord(path, MakeRecord("base", 1.0)).ok());
  ASSERT_TRUE(obs::AppendHistoryRecord(path, MakeRecord("head", 1.1)).ok());
  const std::string text = ReadFileOrEmpty(path);

  size_t count = 0;
  ASSERT_TRUE(obs::ValidateHistoryNdjson(text, &count).ok());
  EXPECT_EQ(count, 2u);
  auto records = obs::ParseHistoryNdjson(text);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].label, "base");  // store order is append order
  EXPECT_EQ((*records)[1].label, "head");

  // An empty store is invalid, and a malformed line is named by number.
  EXPECT_FALSE(obs::ValidateHistoryNdjson("").ok());
  Status bad = obs::ValidateHistoryNdjson(text + "{\"schema\":\"nope\"}\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message().find("line 3"), std::string::npos)
      << bad.error().message();
}

TEST(PerfHistoryTest, TrendFlagsChangePointsAndFiltersByHost) {
  std::vector<obs::HistoryRecord> records;
  for (double seconds : {1.0, 1.01, 0.99, 1.02, 1.0}) {
    records.push_back(MakeRecord("run", seconds));
  }
  // A record from different hardware never pollutes the baseline.
  obs::HistoryRecord alien = MakeRecord("alien", 50.0);
  alien.host.cores = 2;
  records.push_back(alien);

  obs::TrendReport stable = obs::AnalyzeTrend(records, TestHost());
  EXPECT_EQ(stable.records, 6u);
  EXPECT_EQ(stable.comparable, 5u);
  ASSERT_EQ(stable.stages.size(), 1u);
  EXPECT_EQ(stable.stages[0].name, "extract");
  EXPECT_EQ(stable.stages[0].samples, 5u);
  EXPECT_FALSE(stable.stages[0].change_point);
  EXPECT_GE(stable.stages[0].floor_seconds, 0.005);  // never below the backstop

  // A 3x latest sample against that baseline is a change point.
  records.push_back(MakeRecord("run", 3.0));
  obs::TrendReport spiked = obs::AnalyzeTrend(records, TestHost());
  ASSERT_EQ(spiked.stages.size(), 1u);
  EXPECT_TRUE(spiked.stages[0].change_point);
  EXPECT_GT(spiked.stages[0].deviation_sigmas, 4.0);

  // The window bounds how far back the baseline looks.
  obs::TrendOptions narrow;
  narrow.window = 2;
  obs::TrendReport windowed = obs::AnalyzeTrend(records, TestHost(), narrow);
  EXPECT_EQ(windowed.window, 2u);
  EXPECT_EQ(windowed.stages[0].samples, 2u);
}

TEST(PerfHistoryTest, AdaptiveFloorsCoverBackToBackRuns) {
  // Two runs of the same build 30% apart: the learned floor must cover
  // that spread, so `perf compare --history` passes where the hardcoded
  // 15% gate would trip.
  std::vector<obs::HistoryRecord> records = {MakeRecord("base", 1.0),
                                             MakeRecord("head", 1.3)};
  obs::TrendReport report = obs::AnalyzeTrend(records, TestHost());
  std::map<std::string, double> floors = obs::AdaptiveStageFloors(report);
  ASSERT_EQ(floors.count("extract"), 1u);
  EXPECT_GE(floors["extract"], 0.3);

  obs::PerfGateOptions options;
  options.stage_delta_floors_seconds = floors;
  obs::PerfComparison cmp = obs::ComparePerf({{"extract", 1.0, 17}},
                                             {{"extract", 1.3, 17}}, options);
  EXPECT_FALSE(cmp.gate_failed());
  ASSERT_EQ(cmp.stages.size(), 1u);
  EXPECT_EQ(cmp.stages[0].cls, obs::StageClass::kFlat);
}

TEST(PerfHistoryTest, TrendReportJsonValidatesAndTextSummarizes) {
  std::vector<obs::HistoryRecord> records = {MakeRecord("a", 1.0), MakeRecord("b", 1.1)};
  obs::TrendReport report = obs::AnalyzeTrend(records, TestHost());

  std::string json = obs::TrendReportJson(report);
  EXPECT_TRUE(obs::ValidateTrendDoc(json).ok()) << json;
  // Negative deviations are legal; a wrong schema marker is not.
  std::string tampered = json;
  tampered.replace(tampered.find("perf_trend"), 10, "perf_wrong");
  EXPECT_FALSE(obs::ValidateTrendDoc(tampered).ok());

  std::string text = obs::TrendReportText(report);
  EXPECT_NE(text.find("comparable"), std::string::npos) << text;
  EXPECT_NE(text.find("extract"), std::string::npos) << text;
}

// History records built from real report-mode corpus builds: everything
// timing-derived (wall_seconds, recorded_unix_ms, serial_share_pct, the
// critical_path summary) masks away, so records from jobs=1 and jobs=8
// builds — stamped at different times — are byte-identical after masking.
TEST(PerfHistoryTest, MaskedRecordIsIdenticalAcrossJobs) {
  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus;
  for (KernelVersion version : kLtsVersions) {
    corpus.push_back(MakeBuild(version));
  }

  std::vector<std::string> masked;
  int64_t fake_clock = 111;
  for (int jobs : {1, 8}) {
    char tmpl[] = "/tmp/depsurf_history_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    BuildPolicy policy;
    policy.jobs = jobs;
    Study::DatasetReportFiles files;
    auto dataset = study.BuildDatasetWithReports(corpus, dir, &files, {}, policy);
    ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();

    const std::string aggregate = ReadFileOrEmpty(files.aggregate);
    auto doc = obs::ParseJson(aggregate);
    ASSERT_TRUE(doc.ok());
    auto timings = obs::LoadStageTimings(*doc);
    ASSERT_TRUE(timings.ok()) << timings.error().ToString();
    auto profile = obs::ProfileFromReportJson(aggregate);
    ASSERT_TRUE(profile.ok()) << profile.error().ToString();

    obs::HistoryRecord record;
    record.label = "ci";
    record.recorded_unix_ms = fake_clock;  // different stamp per side
    fake_clock += 111;
    record.host = TestHost();
    obs::AddStageTimings(record, *timings);
    obs::SetProfileSummary(record, *profile);

    auto line = obs::ParseJson(obs::HistoryRecordJson(record));
    ASSERT_TRUE(line.ok());
    masked.push_back(obs::CanonicalMaskedJson(*line));
  }
  ASSERT_EQ(masked.size(), 2u);
  EXPECT_FALSE(masked[0].empty());
  EXPECT_EQ(masked[0], masked[1]);
}

}  // namespace
}  // namespace depsurf
