#include "src/util/byte_buffer.h"

#include <gtest/gtest.h>

namespace depsurf {
namespace {

TEST(ByteWriterTest, LittleEndianLayout) {
  ByteWriter w(Endian::kLittle);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x34);
  EXPECT_EQ(b[1], 0x12);
  EXPECT_EQ(b[2], 0xef);
  EXPECT_EQ(b[3], 0xbe);
  EXPECT_EQ(b[4], 0xad);
  EXPECT_EQ(b[5], 0xde);
}

TEST(ByteWriterTest, BigEndianLayout) {
  ByteWriter w(Endian::kBig);
  w.WriteU32(0x01020304);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[3], 0x04);
}

TEST(ByteWriterTest, AlignTo) {
  ByteWriter w;
  w.WriteU8(1);
  w.AlignTo(4);
  EXPECT_EQ(w.size(), 4u);
  w.AlignTo(4);
  EXPECT_EQ(w.size(), 4u);  // already aligned, no change
}

TEST(ByteWriterTest, PatchU32) {
  ByteWriter w;
  w.WriteU32(0);
  w.WriteU32(7);
  ASSERT_TRUE(w.PatchU32(0, 0xabcd).ok());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadU32().value(), 0xabcdu);
  EXPECT_EQ(r.ReadU32().value(), 7u);
}

TEST(ByteWriterTest, PatchOutOfRangeFails) {
  ByteWriter w;
  w.WriteU16(1);
  EXPECT_FALSE(w.PatchU32(0, 1).ok());
}

TEST(ByteReaderTest, RoundTripMixed) {
  for (Endian e : {Endian::kLittle, Endian::kBig}) {
    ByteWriter w(e);
    w.WriteU8(0xff);
    w.WriteU16(0xbeef);
    w.WriteU32(0x12345678);
    w.WriteU64(0xfedcba9876543210ull);
    w.WriteCString("vfs_fsync");

    ByteReader r(w.bytes(), e);
    EXPECT_EQ(r.ReadU8().value(), 0xff);
    EXPECT_EQ(r.ReadU16().value(), 0xbeef);
    EXPECT_EQ(r.ReadU32().value(), 0x12345678u);
    EXPECT_EQ(r.ReadU64().value(), 0xfedcba9876543210ull);
    EXPECT_EQ(r.ReadCString().value(), "vfs_fsync");
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(ByteReaderTest, AddrWidths) {
  ByteWriter w(Endian::kBig);
  w.WriteAddr(0x11223344, 4);
  w.WriteAddr(0x1122334455667788ull, 8);
  ByteReader r(w.bytes(), Endian::kBig);
  EXPECT_EQ(r.ReadAddr(4).value(), 0x11223344u);
  EXPECT_EQ(r.ReadAddr(8).value(), 0x1122334455667788ull);
  EXPECT_FALSE(ByteReader(w.bytes()).ReadAddr(3).ok());
}

TEST(ByteReaderTest, OutOfRangeReads) {
  std::vector<uint8_t> two = {1, 2};
  ByteReader r(two);
  EXPECT_TRUE(r.ReadU16().ok());
  EXPECT_FALSE(r.ReadU8().ok());
  EXPECT_FALSE(r.ReadU32().ok());
}

TEST(ByteReaderTest, UnterminatedString) {
  std::vector<uint8_t> bytes = {'a', 'b', 'c'};
  ByteReader r(bytes);
  EXPECT_FALSE(r.ReadCString().ok());
}

TEST(ByteReaderTest, CStringAtDoesNotMoveCursor) {
  ByteWriter w;
  w.WriteCString("first");
  w.WriteCString("second");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadCStringAt(6).value(), "second");
  EXPECT_EQ(r.offset(), 0u);
  EXPECT_FALSE(r.ReadCStringAt(100).ok());
}

TEST(ByteReaderTest, SliceBounds) {
  ByteWriter w;
  w.WriteU32(0xaabbccdd);
  ByteReader r(w.bytes());
  auto slice = r.Slice(1, 2);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->size(), 2u);
  EXPECT_FALSE(r.Slice(3, 2).ok());
  EXPECT_FALSE(r.Slice(5, 0).ok());
}

TEST(ByteReaderTest, SeekSkip) {
  std::vector<uint8_t> bytes(10, 0);
  ByteReader r(bytes);
  EXPECT_TRUE(r.Seek(10).ok());
  EXPECT_FALSE(r.Seek(11).ok());
  ASSERT_TRUE(r.Seek(2).ok());
  EXPECT_TRUE(r.Skip(8).ok());
  EXPECT_FALSE(r.Skip(1).ok());
}

}  // namespace
}  // namespace depsurf
