#include "src/util/byte_buffer.h"

#include <gtest/gtest.h>

namespace depsurf {
namespace {

TEST(ByteWriterTest, LittleEndianLayout) {
  ByteWriter w(Endian::kLittle);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x34);
  EXPECT_EQ(b[1], 0x12);
  EXPECT_EQ(b[2], 0xef);
  EXPECT_EQ(b[3], 0xbe);
  EXPECT_EQ(b[4], 0xad);
  EXPECT_EQ(b[5], 0xde);
}

TEST(ByteWriterTest, BigEndianLayout) {
  ByteWriter w(Endian::kBig);
  w.WriteU32(0x01020304);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[3], 0x04);
}

TEST(ByteWriterTest, AlignTo) {
  ByteWriter w;
  w.WriteU8(1);
  w.AlignTo(4);
  EXPECT_EQ(w.size(), 4u);
  w.AlignTo(4);
  EXPECT_EQ(w.size(), 4u);  // already aligned, no change
}

TEST(ByteWriterTest, PatchU32) {
  ByteWriter w;
  w.WriteU32(0);
  w.WriteU32(7);
  ASSERT_TRUE(w.PatchU32(0, 0xabcd).ok());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadU32().value(), 0xabcdu);
  EXPECT_EQ(r.ReadU32().value(), 7u);
}

TEST(ByteWriterTest, PatchOutOfRangeFails) {
  ByteWriter w;
  w.WriteU16(1);
  EXPECT_FALSE(w.PatchU32(0, 1).ok());
}

TEST(ByteReaderTest, RoundTripMixed) {
  for (Endian e : {Endian::kLittle, Endian::kBig}) {
    ByteWriter w(e);
    w.WriteU8(0xff);
    w.WriteU16(0xbeef);
    w.WriteU32(0x12345678);
    w.WriteU64(0xfedcba9876543210ull);
    w.WriteCString("vfs_fsync");

    ByteReader r(w.bytes(), e);
    EXPECT_EQ(r.ReadU8().value(), 0xff);
    EXPECT_EQ(r.ReadU16().value(), 0xbeef);
    EXPECT_EQ(r.ReadU32().value(), 0x12345678u);
    EXPECT_EQ(r.ReadU64().value(), 0xfedcba9876543210ull);
    EXPECT_EQ(r.ReadCString().value(), "vfs_fsync");
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(ByteReaderTest, AddrWidths) {
  ByteWriter w(Endian::kBig);
  w.WriteAddr(0x11223344, 4);
  w.WriteAddr(0x1122334455667788ull, 8);
  ByteReader r(w.bytes(), Endian::kBig);
  EXPECT_EQ(r.ReadAddr(4).value(), 0x11223344u);
  EXPECT_EQ(r.ReadAddr(8).value(), 0x1122334455667788ull);
  EXPECT_FALSE(ByteReader(w.bytes()).ReadAddr(3).ok());
}

TEST(ByteReaderTest, OutOfRangeReads) {
  std::vector<uint8_t> two = {1, 2};
  ByteReader r(two);
  EXPECT_TRUE(r.ReadU16().ok());
  EXPECT_FALSE(r.ReadU8().ok());
  EXPECT_FALSE(r.ReadU32().ok());
}

TEST(ByteReaderTest, UnterminatedString) {
  std::vector<uint8_t> bytes = {'a', 'b', 'c'};
  ByteReader r(bytes);
  EXPECT_FALSE(r.ReadCString().ok());
}

TEST(ByteReaderTest, CStringAtDoesNotMoveCursor) {
  ByteWriter w;
  w.WriteCString("first");
  w.WriteCString("second");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadCStringAt(6).value(), "second");
  EXPECT_EQ(r.offset(), 0u);
  EXPECT_FALSE(r.ReadCStringAt(100).ok());
}

TEST(ByteReaderTest, SliceBounds) {
  ByteWriter w;
  w.WriteU32(0xaabbccdd);
  ByteReader r(w.bytes());
  auto slice = r.Slice(1, 2);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->size(), 2u);
  EXPECT_FALSE(r.Slice(3, 2).ok());
  EXPECT_FALSE(r.Slice(5, 0).ok());
}

TEST(ByteReaderTest, SeekSkip) {
  std::vector<uint8_t> bytes(10, 0);
  ByteReader r(bytes);
  EXPECT_TRUE(r.Seek(10).ok());
  EXPECT_FALSE(r.Seek(11).ok());
  ASSERT_TRUE(r.Seek(2).ok());
  EXPECT_TRUE(r.Skip(8).ok());
  EXPECT_FALSE(r.Skip(1).ok());
}

// ---- Bounds audit: the adversarial cases salvage-mode extraction leans
// on. Every failure must carry the byte offset where parsing died, and
// must leave the reader in a usable state.

TEST(ByteReaderTest, ErrorsCarryByteOffsets) {
  std::vector<uint8_t> bytes = {'a', 'b', 'c'};
  ByteReader r(bytes);
  ASSERT_TRUE(r.Skip(1).ok());
  Result<std::string> unterminated = r.ReadCString();
  ASSERT_FALSE(unterminated.ok());
  ASSERT_TRUE(unterminated.error().offset().has_value());
  EXPECT_EQ(*unterminated.error().offset(), 1u);

  ByteReader r2(bytes);
  ASSERT_TRUE(r2.Skip(2).ok());
  Result<uint32_t> past_end = r2.ReadU32();
  ASSERT_FALSE(past_end.ok());
  ASSERT_TRUE(past_end.error().offset().has_value());
  EXPECT_EQ(*past_end.error().offset(), 2u);
}

TEST(ByteReaderTest, FailedCStringDoesNotMoveCursor) {
  // A failed read must not corrupt the cursor: salvage loops skip the bad
  // record and keep going from a known position.
  std::vector<uint8_t> bytes = {'x', 'y', 'z'};
  ByteReader r(bytes);
  EXPECT_FALSE(r.ReadCString().ok());
  EXPECT_EQ(r.offset(), 0u);
}

TEST(ByteReaderTest, ReadUintRejectsInvalidWidths) {
  std::vector<uint8_t> bytes(16, 0x7f);
  ByteReader r(bytes);
  EXPECT_FALSE(r.ReadUint(0).ok());
  EXPECT_FALSE(r.ReadUint(9).ok());
  EXPECT_FALSE(r.ReadUint(-1).ok());
  EXPECT_TRUE(r.ReadUint(1).ok());
  EXPECT_TRUE(r.ReadUint(8).ok());
}

TEST(ByteReaderTest, SliceOverflowDoesNotWrap) {
  // offset + len computed naively wraps on hostile 64-bit values; the
  // check must reject, not wrap into an in-bounds read.
  std::vector<uint8_t> bytes(8, 0);
  ByteReader r(bytes);
  EXPECT_FALSE(r.Slice(4, UINT64_MAX).ok());
  EXPECT_FALSE(r.Slice(UINT64_MAX, 4).ok());
  EXPECT_FALSE(r.Slice(UINT64_MAX, UINT64_MAX).ok());
}

TEST(ByteReaderTest, OverlappingSlicesAreIndependent) {
  std::vector<uint8_t> bytes = {0, 1, 2, 3, 4, 5, 6, 7};
  ByteReader r(bytes);
  auto a = r.Slice(0, 6);
  auto b = r.Slice(4, 4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->Skip(4).ok());
  EXPECT_EQ(a->ReadU8().value(), 4u);
  EXPECT_EQ(b->ReadU8().value(), 4u);  // b's cursor unaffected by a's
  EXPECT_EQ(b->ReadU8().value(), 5u);
}

TEST(ByteWriterTest, PatchU32OutOfRangeRejected) {
  ByteWriter w;
  w.WriteU32(0);
  EXPECT_TRUE(w.PatchU32(0, 42).ok());
  EXPECT_FALSE(w.PatchU32(1, 42).ok());  // straddles the end
  EXPECT_FALSE(w.PatchU32(UINT64_MAX - 2, 42).ok());  // offset+4 wraps
}

}  // namespace
}  // namespace depsurf
