#include <gtest/gtest.h>

#include "src/dwarf/dwarf.h"
#include "src/dwarf/dwarf_codec.h"
#include "src/dwarf/function_view.h"

namespace depsurf {
namespace {

// Builds the paper's vfs_fsync example: defined in fs/sync.c, inlined into
// the fsync/fdatasync syscalls in the same TU, called out of line from
// fs/aio.c.
DwarfDocument MakeVfsFsyncDocument() {
  DwarfDocument doc;
  uint32_t cu_sync = doc.AddDie(DwTag::kCompileUnit, 0);
  doc.SetString(cu_sync, DwAttr::kName, "fs/sync.c");

  uint32_t vfs_fsync = doc.AddDie(DwTag::kSubprogram, cu_sync);
  doc.SetString(vfs_fsync, DwAttr::kName, "vfs_fsync");
  doc.SetString(vfs_fsync, DwAttr::kDeclFile, "fs/sync.c");
  doc.SetNumber(vfs_fsync, DwAttr::kDeclLine, 213);
  doc.SetFlag(vfs_fsync, DwAttr::kExternal);
  doc.SetNumber(vfs_fsync, DwAttr::kInline, static_cast<uint64_t>(DwInl::kInlined));
  doc.SetNumber(vfs_fsync, DwAttr::kLowPc, 0xffffffff81234000ull);
  uint32_t param = doc.AddDie(DwTag::kFormalParameter, vfs_fsync);
  doc.SetString(param, DwAttr::kName, "file");

  uint32_t sys_fsync = doc.AddDie(DwTag::kSubprogram, cu_sync);
  doc.SetString(sys_fsync, DwAttr::kName, "__x64_sys_fsync");
  doc.SetNumber(sys_fsync, DwAttr::kLowPc, 0xffffffff81234100ull);
  uint32_t inl = doc.AddDie(DwTag::kInlinedSubroutine, sys_fsync);
  doc.SetNumber(inl, DwAttr::kAbstractOrigin, vfs_fsync);

  uint32_t cu_aio = doc.AddDie(DwTag::kCompileUnit, 0);
  doc.SetString(cu_aio, DwAttr::kName, "fs/aio.c");
  uint32_t aio_fsync = doc.AddDie(DwTag::kSubprogram, cu_aio);
  doc.SetString(aio_fsync, DwAttr::kName, "aio_fsync_work");
  doc.SetNumber(aio_fsync, DwAttr::kLowPc, 0xffffffff81250000ull);
  uint32_t call = doc.AddDie(DwTag::kCallSite, aio_fsync);
  doc.SetNumber(call, DwAttr::kCallOrigin, vfs_fsync);

  return doc;
}

TEST(DwarfDocumentTest, TreeStructure) {
  DwarfDocument doc = MakeVfsFsyncDocument();
  EXPECT_EQ(doc.roots().size(), 2u);
  EXPECT_EQ(doc.num_dies(), 8u);
  const Die& cu = doc.die(doc.roots()[0]);
  EXPECT_EQ(cu.tag, DwTag::kCompileUnit);
  EXPECT_EQ(cu.children.size(), 2u);
  EXPECT_EQ(cu.GetString(DwAttr::kName).value(), "fs/sync.c");
  EXPECT_FALSE(cu.GetString(DwAttr::kDeclFile).has_value());
  EXPECT_FALSE(cu.GetNumber(DwAttr::kDeclLine).has_value());
}

TEST(DwarfCodecTest, RoundTripPreservesEverything) {
  for (Endian endian : {Endian::kLittle, Endian::kBig}) {
    DwarfDocument doc = MakeVfsFsyncDocument();
    DwarfSections sections = EncodeDwarf(doc, endian);
    EXPECT_FALSE(sections.abbrev.empty());
    EXPECT_FALSE(sections.info.empty());

    auto decoded = DecodeDwarf(sections.abbrev, sections.info, endian);
    ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
    ASSERT_EQ(decoded->num_dies(), doc.num_dies());
    ASSERT_EQ(decoded->roots().size(), doc.roots().size());

    // Arena order equals pre-order for this document, so DIEs align 1:1.
    for (uint32_t i = 1; i <= doc.num_dies(); ++i) {
      const Die& a = doc.die(i);
      const Die& b = decoded->die(i);
      EXPECT_EQ(a.tag, b.tag) << "die " << i;
      ASSERT_EQ(a.attrs.size(), b.attrs.size());
      for (size_t k = 0; k < a.attrs.size(); ++k) {
        EXPECT_EQ(a.attrs[k].attr, b.attrs[k].attr);
        EXPECT_EQ(a.attrs[k].str, b.attrs[k].str);
        if (FormOf(a.attrs[k].attr) != DwForm::kString) {
          EXPECT_EQ(a.attrs[k].num, b.attrs[k].num);
        }
      }
      EXPECT_EQ(a.children.size(), b.children.size());
    }
  }
}

TEST(DwarfCodecTest, AbbrevSharing) {
  // Two subprograms with identical attribute shapes must share one abbrev.
  DwarfDocument doc;
  uint32_t cu = doc.AddDie(DwTag::kCompileUnit, 0);
  doc.SetString(cu, DwAttr::kName, "a.c");
  for (const char* name : {"f", "g", "h"}) {
    uint32_t sub = doc.AddDie(DwTag::kSubprogram, cu);
    doc.SetString(sub, DwAttr::kName, name);
    doc.SetNumber(sub, DwAttr::kLowPc, 0x1000);
  }
  DwarfSections one = EncodeDwarf(doc);

  DwarfDocument doc_single;
  uint32_t cu2 = doc_single.AddDie(DwTag::kCompileUnit, 0);
  doc_single.SetString(cu2, DwAttr::kName, "a.c");
  uint32_t sub = doc_single.AddDie(DwTag::kSubprogram, cu2);
  doc_single.SetString(sub, DwAttr::kName, "f");
  doc_single.SetNumber(sub, DwAttr::kLowPc, 0x1000);
  DwarfSections single = EncodeDwarf(doc_single);

  EXPECT_EQ(one.abbrev.size(), single.abbrev.size());
}

TEST(DwarfCodecTest, RejectsTruncatedInfo) {
  DwarfSections sections = EncodeDwarf(MakeVfsFsyncDocument());
  std::vector<uint8_t> truncated(sections.info.begin(),
                                 sections.info.begin() + sections.info.size() - 4);
  // Either a parse error or (rarely) a clean prefix; must not crash. The
  // cut below lands mid-DIE, so it must error.
  EXPECT_FALSE(DecodeDwarf(sections.abbrev, truncated).ok());
}

TEST(DwarfCodecTest, RejectsBadAbbrevCode) {
  DwarfSections sections = EncodeDwarf(MakeVfsFsyncDocument());
  std::vector<uint8_t> info = {0x7f};  // abbrev code 127: out of range
  EXPECT_FALSE(DecodeDwarf(sections.abbrev, info).ok());
}

TEST(DwarfCodecTest, EmptyDocumentRoundTrips) {
  DwarfDocument doc;
  DwarfSections sections = EncodeDwarf(doc);
  auto decoded = DecodeDwarf(sections.abbrev, sections.info);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_dies(), 0u);
}

TEST(FunctionViewTest, PaperExampleShape) {
  DwarfDocument doc = MakeVfsFsyncDocument();
  auto result = CollectFunctionInstances(doc);
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const auto& instances = *result;
  ASSERT_EQ(instances.count("vfs_fsync"), 1u);
  const FunctionInstance& inst = instances.at("vfs_fsync")[0];
  EXPECT_EQ(inst.decl_file, "fs/sync.c");
  EXPECT_EQ(inst.decl_line, 213u);
  EXPECT_TRUE(inst.external);
  EXPECT_EQ(inst.inline_attr, DwInl::kInlined);
  EXPECT_TRUE(inst.HasCode());
  ASSERT_EQ(inst.caller_inline.size(), 1u);
  EXPECT_EQ(inst.caller_inline[0], "fs/sync.c:__x64_sys_fsync");
  ASSERT_EQ(inst.caller_func.size(), 1u);
  EXPECT_EQ(inst.caller_func[0], "fs/aio.c:aio_fsync_work");
}

TEST(FunctionViewTest, SurvivesCodecRoundTrip) {
  DwarfSections sections = EncodeDwarf(MakeVfsFsyncDocument());
  auto decoded = DecodeDwarf(sections.abbrev, sections.info);
  ASSERT_TRUE(decoded.ok());
  auto result = CollectFunctionInstances(*decoded);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->at("vfs_fsync")[0].caller_func[0], "fs/aio.c:aio_fsync_work");
}

TEST(FunctionViewTest, FullyInlinedInstanceHasNoCode) {
  DwarfDocument doc;
  uint32_t cu = doc.AddDie(DwTag::kCompileUnit, 0);
  doc.SetString(cu, DwAttr::kName, "block/blk-core.c");
  uint32_t target = doc.AddDie(DwTag::kSubprogram, cu);
  doc.SetString(target, DwAttr::kName, "blk_account_io_start");
  doc.SetNumber(target, DwAttr::kInline, static_cast<uint64_t>(DwInl::kDeclaredInlined));
  uint32_t caller = doc.AddDie(DwTag::kSubprogram, cu);
  doc.SetString(caller, DwAttr::kName, "blk_mq_submit_bio");
  doc.SetNumber(caller, DwAttr::kLowPc, 0x9000);
  uint32_t site = doc.AddDie(DwTag::kInlinedSubroutine, caller);
  doc.SetNumber(site, DwAttr::kAbstractOrigin, target);

  auto result = CollectFunctionInstances(doc);
  ASSERT_TRUE(result.ok());
  const FunctionInstance& inst = result->at("blk_account_io_start")[0];
  EXPECT_FALSE(inst.HasCode());
  EXPECT_EQ(inst.inline_attr, DwInl::kDeclaredInlined);
  EXPECT_EQ(inst.caller_inline.size(), 1u);
  EXPECT_TRUE(inst.caller_func.empty());
}

TEST(FunctionViewTest, DuplicatedStaticYieldsMultipleInstances) {
  DwarfDocument doc;
  for (const char* file : {"fs/ext4/super.c", "fs/xfs/super.c"}) {
    uint32_t cu = doc.AddDie(DwTag::kCompileUnit, 0);
    doc.SetString(cu, DwAttr::kName, file);
    uint32_t sub = doc.AddDie(DwTag::kSubprogram, cu);
    doc.SetString(sub, DwAttr::kName, "get_order");
    doc.SetString(sub, DwAttr::kDeclFile, "include/asm-generic/getorder.h");
    doc.SetNumber(sub, DwAttr::kLowPc, 0x1000);
  }
  auto result = CollectFunctionInstances(doc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->at("get_order").size(), 2u);
  EXPECT_EQ(result->at("get_order")[0].decl_file, "include/asm-generic/getorder.h");
}

TEST(FunctionViewTest, RejectsOriginPointingAtNonSubprogram) {
  DwarfDocument doc;
  uint32_t cu = doc.AddDie(DwTag::kCompileUnit, 0);
  doc.SetString(cu, DwAttr::kName, "a.c");
  uint32_t sub = doc.AddDie(DwTag::kSubprogram, cu);
  doc.SetString(sub, DwAttr::kName, "f");
  uint32_t site = doc.AddDie(DwTag::kInlinedSubroutine, sub);
  doc.SetNumber(site, DwAttr::kAbstractOrigin, cu);  // bogus: CU, not subprogram
  EXPECT_FALSE(CollectFunctionInstances(doc).ok());
}

TEST(FunctionViewTest, RejectsAnonymousSubprogram) {
  DwarfDocument doc;
  uint32_t cu = doc.AddDie(DwTag::kCompileUnit, 0);
  doc.SetString(cu, DwAttr::kName, "a.c");
  doc.AddDie(DwTag::kSubprogram, cu);
  EXPECT_FALSE(CollectFunctionInstances(doc).ok());
}

}  // namespace
}  // namespace depsurf
