#include "src/util/leb128.h"

#include <gtest/gtest.h>

#include <limits>

namespace depsurf {
namespace {

TEST(Uleb128Test, KnownEncodings) {
  ByteWriter w;
  WriteUleb128(w, 624485);  // classic DWARF example: e5 8e 26
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 0xe5);
  EXPECT_EQ(b[1], 0x8e);
  EXPECT_EQ(b[2], 0x26);
}

TEST(Sleb128Test, KnownEncodings) {
  ByteWriter w;
  WriteSleb128(w, -123456);  // c0 bb 78
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 0xc0);
  EXPECT_EQ(b[1], 0xbb);
  EXPECT_EQ(b[2], 0x78);
}

class LebRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LebRoundTripTest, Unsigned) {
  uint64_t v = GetParam();
  ByteWriter w;
  WriteUleb128(w, v);
  ByteReader r(w.bytes());
  auto decoded = ReadUleb128(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST_P(LebRoundTripTest, SignedBothSigns) {
  for (int64_t v : {static_cast<int64_t>(GetParam()), -static_cast<int64_t>(GetParam())}) {
    ByteWriter w;
    WriteSleb128(w, v);
    ByteReader r(w.bytes());
    auto decoded = ReadSleb128(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Values, LebRoundTripTest,
                         ::testing::Values(0ull, 1ull, 63ull, 64ull, 127ull, 128ull, 129ull,
                                           255ull, 300ull, 16383ull, 16384ull, 0xffffffffull,
                                           0x7fffffffffffffffull));

TEST(Sleb128Test, ExtremesRoundTrip) {
  for (int64_t v : {std::numeric_limits<int64_t>::min(), std::numeric_limits<int64_t>::max()}) {
    ByteWriter w;
    WriteSleb128(w, v);
    ByteReader r(w.bytes());
    EXPECT_EQ(ReadSleb128(r).value(), v);
  }
  ByteWriter w;
  WriteUleb128(w, std::numeric_limits<uint64_t>::max());
  ByteReader r(w.bytes());
  EXPECT_EQ(ReadUleb128(r).value(), std::numeric_limits<uint64_t>::max());
}

TEST(Uleb128Test, RejectsOverlongEncoding) {
  // 11 continuation bytes: too long for 64 bits.
  std::vector<uint8_t> bytes(11, 0x80);
  bytes.push_back(0x00);
  ByteReader r(bytes);
  EXPECT_FALSE(ReadUleb128(r).ok());
}

TEST(Uleb128Test, RejectsOverflowInTenthByte) {
  // 9 continuation bytes then a final byte with more than 1 significant bit.
  std::vector<uint8_t> bytes(9, 0x80);
  bytes.push_back(0x02);
  ByteReader r(bytes);
  EXPECT_FALSE(ReadUleb128(r).ok());
}

TEST(Uleb128Test, TruncatedInputFails) {
  std::vector<uint8_t> bytes = {0x80, 0x80};
  ByteReader r(bytes);
  EXPECT_FALSE(ReadUleb128(r).ok());
}

}  // namespace
}  // namespace depsurf
