// Determinism of the parallel report-mode corpus build: BuildPolicy::jobs
// changes only wall time, never output. jobs=1 and jobs=8 must produce a
// byte-identical dataset, per-image run reports equal under timing masking,
// and a byte-identical masked aggregate. Runs under the robustness label so
// the TSAN configuration (DEPSURF_SANITIZE=thread) exercises the bounded
// window and the per-image obs::Context handoff between threads.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/dataset_io.h"
#include "src/faultgen/fault_injector.h"
#include "src/obs/json_lint.h"
#include "src/obs/profile.h"
#include "src/study/study.h"

namespace depsurf {
namespace {

std::string MakeReportDir() {
  char tmpl[] = "/tmp/depsurf_parallel_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir != nullptr ? dir : ".");
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string MaskedFile(const std::string& path) {
  auto json = obs::ParseJson(ReadFileOrEmpty(path));
  EXPECT_TRUE(json.ok()) << path;
  return json.ok() ? obs::CanonicalMaskedJson(*json) : std::string();
}

struct BuildOutputs {
  std::vector<uint8_t> dataset_bytes;
  std::vector<std::string> masked_reports;
  std::string masked_aggregate;
  std::string raw_aggregate;
  std::vector<Study::ImageProgress> progress;
};

BuildOutputs RunBuild(Study& study, const std::vector<BuildSpec>& corpus, int jobs) {
  BuildOutputs out;
  BuildPolicy policy;
  policy.jobs = jobs;
  Study::DatasetReportFiles files;
  std::vector<QuarantinedImage> quarantined;
  auto dataset = study.BuildDatasetWithReports(
      corpus, MakeReportDir(), &files,
      [&](const Study::ImageProgress& image) { out.progress.push_back(image); },
      policy, &quarantined);
  EXPECT_TRUE(dataset.ok()) << dataset.error().ToString();
  if (!dataset.ok()) {
    return out;
  }
  out.dataset_bytes = SaveDataset(*dataset);
  for (const std::string& path : files.per_image) {
    out.masked_reports.push_back(MaskedFile(path));
  }
  out.masked_aggregate = MaskedFile(files.aggregate);
  out.raw_aggregate = ReadFileOrEmpty(files.aggregate);
  return out;
}

TEST(ParallelBuildTest, JobsOneAndEightProduceIdenticalOutputs) {
  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus;
  for (KernelVersion version : kLtsVersions) {
    corpus.push_back(MakeBuild(version));
  }

  BuildOutputs serial = RunBuild(study, corpus, 1);
  BuildOutputs parallel = RunBuild(study, corpus, 8);

  EXPECT_EQ(serial.dataset_bytes, parallel.dataset_bytes);
  ASSERT_EQ(serial.masked_reports.size(), corpus.size());
  ASSERT_EQ(parallel.masked_reports.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(serial.masked_reports[i], parallel.masked_reports[i])
        << "per-image report diverges at corpus index " << i;
  }
  EXPECT_FALSE(serial.masked_aggregate.empty());
  EXPECT_EQ(serial.masked_aggregate, parallel.masked_aggregate);

  // Progress stays serial in corpus order regardless of the window width.
  ASSERT_EQ(parallel.progress.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(parallel.progress[i].index, i);
    EXPECT_EQ(parallel.progress[i].label, corpus[i].Label());
    EXPECT_FALSE(parallel.progress[i].quarantined);
  }
}

// The self-profile built from a report aggregate is valid at any window
// width, keeps CPU time within wall time on every span, and — after
// masking — is byte-identical between jobs=1 and jobs=8 (the critical_path
// and executor sections are masked wholesale, so only structure remains).
TEST(ParallelBuildTest, ProfileFromAggregateIsValidAndMaskStable) {
  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus;
  for (KernelVersion version : kLtsVersions) {
    corpus.push_back(MakeBuild(version));
  }

  BuildOutputs serial = RunBuild(study, corpus, 1);
  BuildOutputs parallel = RunBuild(study, corpus, 8);

  std::vector<std::string> masked_profiles;
  for (const std::string& aggregate : {serial.raw_aggregate, parallel.raw_aggregate}) {
    auto profile = obs::ProfileFromReportJson(aggregate);
    ASSERT_TRUE(profile.ok()) << profile.error().ToString();
    EXPECT_GT(profile->span_nodes, 0u);
    EXPECT_FALSE(profile->critical_path.empty());
    std::string json = obs::ProfileJson(*profile);
    EXPECT_TRUE(obs::ValidateProfileDoc(json).ok()) << json;
    auto parsed = obs::ParseJson(json);
    ASSERT_TRUE(parsed.ok());
    masked_profiles.push_back(obs::CanonicalMaskedJson(*parsed));
  }
  EXPECT_EQ(masked_profiles[0], masked_profiles[1]);

  // Per-span invariant over the aggregate's forest: a span's thread CPU
  // time never exceeds its wall time.
  auto aggregate = obs::ParseJson(serial.raw_aggregate);
  ASSERT_TRUE(aggregate.ok());
  const obs::JsonValue* spans = aggregate->Find("spans");
  ASSERT_NE(spans, nullptr);
  size_t checked = 0;
  auto check_spans = [&checked](const obs::JsonValue& span, auto&& self) -> void {
    const obs::JsonValue* dur = span.Find("dur_ns");
    const obs::JsonValue* cpu = span.Find("cpu_ns");
    ASSERT_NE(dur, nullptr);
    ASSERT_NE(cpu, nullptr);
    EXPECT_LE(cpu->number, dur->number) << span.Find("name")->string;
    ++checked;
    const obs::JsonValue* children = span.Find("children");
    if (children != nullptr) {
      for (const obs::JsonValue& child : children->array) {
        self(child, self);
      }
    }
  };
  for (const obs::JsonValue& span : spans->array) {
    check_spans(span, check_spans);
  }
  EXPECT_GT(checked, 0u);
}

// Quarantine under a wide window: the poisoned image's fatal diagnostics
// must land in its own report while neighbors extract concurrently.
TEST(ParallelBuildTest, WideWindowQuarantineStaysIsolated) {
  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus;
  for (KernelVersion version : kLtsVersions) {
    corpus.push_back(MakeBuild(version));
  }
  const std::string victim = corpus[2].Label();
  study.SetImageMutator([&victim](const BuildSpec& build, std::vector<uint8_t>& bytes) {
    if (build.Label() == victim && bytes.size() > 16) {
      bytes.resize(16);
    }
  });

  BuildPolicy policy;
  policy.jobs = 8;
  Study::DatasetReportFiles files;
  std::vector<QuarantinedImage> quarantined;
  auto dataset =
      study.BuildDatasetWithReports(corpus, MakeReportDir(), &files, {}, policy,
                                    &quarantined);
  ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();
  EXPECT_EQ(dataset->num_images(), corpus.size() - 1);
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].label, victim);

  ASSERT_EQ(files.per_image.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    const std::string report = ReadFileOrEmpty(files.per_image[i]);
    EXPECT_TRUE(obs::ValidateRunReport(report).ok()) << files.per_image[i];
    const bool has_fatal = report.find("\"severity\": \"fatal\"") != std::string::npos;
    EXPECT_EQ(has_fatal, corpus[i].Label() == victim) << files.per_image[i];
  }
}

}  // namespace
}  // namespace depsurf
