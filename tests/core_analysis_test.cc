// Tests for surface diffing, the mismatch dataset, dependency sets, and
// program reports — the full DepSurf pipeline over a generated corpus.
#include <gtest/gtest.h>

#include <memory>

#include "src/bpf/bpf_builder.h"
#include "src/core/depsurf.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"
#include "src/kernelgen/scripted.h"

namespace depsurf {
namespace {

constexpr uint64_t kSeed = 2025;
constexpr double kScale = 0.02;

class CorpusFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new KernelModel(kSeed, kScale, BuildCuratedCatalog());
    dataset_ = new Dataset();
    for (const BuildSpec& build : DependencyAnalysisCorpus()) {
      dataset_->AddImage(build.Label(), Surface(build));
    }
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static DependencySurface Surface(const BuildSpec& build) {
    auto kernel = model_->Configure(build);
    EXPECT_TRUE(kernel.ok());
    auto bytes = BuildKernelImage(CompileKernel(kSeed, kernel.TakeValue()));
    EXPECT_TRUE(bytes.ok());
    auto surface = DependencySurface::Extract(bytes.TakeValue());
    EXPECT_TRUE(surface.ok()) << surface.error().ToString();
    return surface.TakeValue();
  }

  static KernelModel* model_;
  static Dataset* dataset_;
};

KernelModel* CorpusFixture::model_ = nullptr;
Dataset* CorpusFixture::dataset_ = nullptr;

TEST_F(CorpusFixture, DiffDetectsScriptedEvolution) {
  DependencySurface v44 = Surface(MakeBuild(KernelVersion(4, 4)));
  DependencySurface v415 = Surface(MakeBuild(KernelVersion(4, 15)));
  SurfaceDiff diff = DiffSurfaces(v44, v415);

  // do_unlinkat changed its second parameter type (char* -> filename*),
  // which also renames it: param added + removed.
  auto it = diff.funcs.changed.find("do_unlinkat");
  ASSERT_NE(it, diff.funcs.changed.end());
  // account_idle_time: cputime_t -> u64 parameter type change.
  auto idle = diff.funcs.changed.find("account_idle_time");
  ASSERT_NE(idle, diff.funcs.changed.end());
  EXPECT_NE(std::find(idle->second.begin(), idle->second.end(),
                      FuncChangeKind::kParamTypeChanged),
            idle->second.end());
  // security_task_alloc was added.
  EXPECT_NE(std::find(diff.funcs.added.begin(), diff.funcs.added.end(), "security_task_alloc"),
            diff.funcs.added.end());
  // task_struct changed (utime: cputime_t -> u64).
  auto ts = diff.structs.changed.find("task_struct");
  ASSERT_NE(ts, diff.structs.changed.end());
  EXPECT_NE(std::find(ts->second.begin(), ts->second.end(),
                      StructChangeKind::kFieldTypeChanged),
            ts->second.end());
  // struct filename appeared.
  EXPECT_NE(std::find(diff.structs.added.begin(), diff.structs.added.end(), "filename"),
            diff.structs.added.end());
}

TEST_F(CorpusFixture, DiffDetectsVfsRenameCollapse) {
  DependencySurface v54 = Surface(MakeBuild(KernelVersion(5, 4)));
  DependencySurface v515 = Surface(MakeBuild(KernelVersion(5, 15)));
  SurfaceDiff diff = DiffSurfaces(v54, v515);
  auto it = diff.funcs.changed.find("vfs_rename");
  ASSERT_NE(it, diff.funcs.changed.end());
  EXPECT_NE(std::find(it->second.begin(), it->second.end(), FuncChangeKind::kParamAdded),
            it->second.end());
  EXPECT_NE(std::find(it->second.begin(), it->second.end(), FuncChangeKind::kParamRemoved),
            it->second.end());
  // vfs_create gained a leading param: existing params reordered.
  auto create = diff.funcs.changed.find("vfs_create");
  ASSERT_NE(create, diff.funcs.changed.end());
  EXPECT_NE(std::find(create->second.begin(), create->second.end(),
                      FuncChangeKind::kParamReordered),
            create->second.end());
}

TEST_F(CorpusFixture, DiffDetectsTracepointChanges) {
  DependencySurface v54 = Surface(MakeBuild(KernelVersion(5, 4)));
  DependencySurface v515 = Surface(MakeBuild(KernelVersion(5, 15)));
  SurfaceDiff diff = DiffSurfaces(v54, v515);
  // block_rq_issue lost its request_queue argument in v5.11 (a54895f):
  // a tracing-function change without an event change.
  auto it = diff.tracepoints.changed.find("block_rq_issue");
  ASSERT_NE(it, diff.tracepoints.changed.end());
  EXPECT_NE(std::find(it->second.begin(), it->second.end(),
                      TracepointChangeKind::kFuncChanged),
            it->second.end());
  EXPECT_EQ(std::find(it->second.begin(), it->second.end(),
                      TracepointChangeKind::kEventChanged),
            it->second.end());
}

TEST_F(CorpusFixture, DiffRatesInPaperRange) {
  DependencySurface v54 = Surface(MakeBuild(KernelVersion(5, 4)));
  DependencySurface v515 = Surface(MakeBuild(KernelVersion(5, 15)));
  SurfaceDiff diff = DiffSurfaces(v54, v515);
  double base = static_cast<double>(v54.functions().size());
  double removed = static_cast<double>(diff.funcs.removed.size()) / base;
  double added = static_cast<double>(diff.funcs.added.size()) / base;
  double changed = static_cast<double>(diff.funcs.changed.size()) / base;
  // Paper (Table 3, 5.4 -> 5.15): +22% -10% Δ5%. Wide tolerances: the test
  // corpus is 2% scale.
  EXPECT_GT(added, 0.10);
  EXPECT_LT(added, 0.40);
  EXPECT_GT(removed, 0.04);
  EXPECT_LT(removed, 0.20);
  EXPECT_GT(changed, 0.01);
  EXPECT_LT(changed, 0.15);
}

TEST_F(CorpusFixture, DatasetFuncQueries) {
  // blk_account_io_start across the x86 series: Δ from v5.8 (param
  // removed), F from v5.19 (static inline).
  auto cells = dataset_->CheckFunc("blk_account_io_start");
  ASSERT_EQ(cells.size(), 21u);
  int v44 = VersionIndex(KernelVersion(4, 4));
  int v58 = VersionIndex(KernelVersion(5, 8));
  int v515 = VersionIndex(KernelVersion(5, 15));
  int v519 = VersionIndex(KernelVersion(5, 19));
  EXPECT_TRUE(cells[v44].empty());
  EXPECT_TRUE(cells[v58].count(MismatchKind::kChanged));
  EXPECT_TRUE(cells[v58].count(MismatchKind::kSelectiveInline));
  EXPECT_TRUE(cells[v515].count(MismatchKind::kChanged));
  EXPECT_TRUE(cells[v519].count(MismatchKind::kFullInline));

  // The worker functions are absent before v5.19 (first study version at
  // or after their v5.16 introduction).
  auto worker = dataset_->CheckFunc("__blk_account_io_start");
  EXPECT_TRUE(worker[v44].count(MismatchKind::kAbsent));
  EXPECT_TRUE(worker[v519].count(MismatchKind::kFullInline));

  // blk_mq_start_request: no mismatch anywhere on x86.
  auto stable = dataset_->CheckFunc("blk_mq_start_request");
  for (int i = 0; i < 17; ++i) {
    EXPECT_TRUE(stable[i].empty()) << i;
  }
}

TEST_F(CorpusFixture, DatasetFieldQueries) {
  // request::rq_disk disappears at v5.19 (>= v5.16 change).
  auto cells = dataset_->CheckField("request", "rq_disk", "struct gendisk *", false);
  int v44 = VersionIndex(KernelVersion(4, 4));
  int v515 = VersionIndex(KernelVersion(5, 15));
  int v519 = VersionIndex(KernelVersion(5, 19));
  EXPECT_TRUE(cells[v44].empty());
  EXPECT_TRUE(cells[v515].empty());
  EXPECT_TRUE(cells[v519].count(MismatchKind::kAbsent));
  // request_queue::disk appears at v5.15; both coexist there.
  auto disk = dataset_->CheckField("request_queue", "disk", "struct gendisk *", false);
  EXPECT_TRUE(disk[v44].count(MismatchKind::kAbsent));
  EXPECT_TRUE(disk[v515].empty());
  // Guarded access never reports absence.
  auto guarded = dataset_->CheckField("request_queue", "disk", "struct gendisk *", true);
  EXPECT_TRUE(guarded[v44].empty());
  // task_struct::state: type stays, then the field is renamed -> absent.
  auto state = dataset_->CheckField("task_struct", "state", "long", false);
  EXPECT_TRUE(state[v44].empty());
  EXPECT_TRUE(state[v515].count(MismatchKind::kAbsent));
  // utime: cputime_t -> u64 = silently-compatible change.
  auto utime = dataset_->CheckField("task_struct", "utime", "cputime_t", false);
  EXPECT_TRUE(utime[v44].empty());
  EXPECT_TRUE(utime[VersionIndex(KernelVersion(4, 15))].count(MismatchKind::kChanged));
}

TEST_F(CorpusFixture, DatasetTracepointAndSyscallQueries) {
  auto io_start = dataset_->CheckTracepoint("block_io_start");
  EXPECT_TRUE(io_start[0].count(MismatchKind::kAbsent));
  EXPECT_TRUE(io_start[VersionIndex(KernelVersion(6, 5))].empty());
  auto rq_issue = dataset_->CheckTracepoint("block_rq_issue");
  EXPECT_TRUE(rq_issue[0].empty());
  EXPECT_TRUE(rq_issue[VersionIndex(KernelVersion(5, 11))].count(MismatchKind::kChanged));

  auto openat2 = dataset_->CheckSyscall("openat2");
  EXPECT_TRUE(openat2[0].count(MismatchKind::kAbsent));
  EXPECT_TRUE(openat2[VersionIndex(KernelVersion(5, 8))].empty());
  // arm64 image (index 17) lacks legacy "open".
  auto open_call = dataset_->CheckSyscall("open");
  EXPECT_TRUE(open_call[0].empty());
  EXPECT_TRUE(open_call[17].count(MismatchKind::kAbsent));

  // Register layouts differ on every non-x86 image.
  auto regs = dataset_->CheckRegisters();
  EXPECT_TRUE(regs[0].empty());
  EXPECT_TRUE(regs[16].empty());
  for (size_t i = 17; i < 21; ++i) {
    EXPECT_TRUE(regs[i].count(MismatchKind::kChanged)) << i;
  }
}

TEST_F(CorpusFixture, BiotopReportMatchesFigure4) {
  BpfObjectBuilder builder("biotop");
  builder.AttachKprobe("blk_mq_start_request")
      .AttachKprobe("blk_account_io_start")
      .AttachKprobe("blk_account_io_done")
      .AttachKprobe("__blk_account_io_start")
      .AttachKprobe("__blk_account_io_done")
      .AttachTracepoint("block", "block_io_start")
      .AttachTracepoint("block", "block_io_done");
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.AccessField("request", "__sector", "sector_t").ok());
  ASSERT_TRUE(builder.AccessField("request_queue", "disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.AccessField("gendisk", "disk_name", "char[32]").ok());

  auto object_bytes = WriteBpfObject(builder.Build());
  ASSERT_TRUE(object_bytes.ok());
  auto object = ParseBpfObject(object_bytes.TakeValue());
  ASSERT_TRUE(object.ok());
  auto deps = ExtractDependencySet(*object);
  ASSERT_TRUE(deps.ok());
  EXPECT_EQ(deps->NumFuncs(), 5u);
  EXPECT_EQ(deps->NumTracepoints(), 2u);
  EXPECT_EQ(deps->NumStructs(), 3u);
  EXPECT_EQ(deps->NumFields(), 4u);

  ProgramReport report = AnalyzeProgram(*dataset_, *deps);
  EXPECT_TRUE(report.AnyMismatch());
  EXPECT_EQ(report.funcs.total, 5);
  EXPECT_EQ(report.funcs.absent, 2);      // __blk_account_io_{start,done} pre-5.16
  EXPECT_EQ(report.funcs.changed, 2);     // blk_account_io_{start,done} at 5.8
  EXPECT_EQ(report.funcs.full_inline, 3); // both wrappers + the worker start
  EXPECT_EQ(report.funcs.selective, 2);   // the accounting pair at 5.8-5.15
  EXPECT_EQ(report.tracepoints.total, 2);
  EXPECT_EQ(report.tracepoints.absent, 2);
  EXPECT_GE(report.fields.absent, 2);  // rq_disk (new kernels) + disk (old)

  std::string matrix = report.RenderMatrix();
  EXPECT_NE(matrix.find("blk_account_io_start"), std::string::npos);
  EXPECT_NE(matrix.find("legend"), std::string::npos);
  EXPECT_EQ(report.WorstImplication(), Implication::kIncompleteResult);
}

TEST_F(CorpusFixture, ExplainReportNarratesDeclChanges) {
  BpfObjectBuilder builder("probe");
  builder.AttachKprobe("blk_account_io_start");
  ASSERT_TRUE(builder.AccessField("request", "cmd_flags", "unsigned int").ok());
  auto deps = ExtractDependencySet(builder.Build());
  ASSERT_TRUE(deps.ok());
  ProgramReport report = AnalyzeProgram(*dataset_, *deps);
  std::string text = ExplainReport(*dataset_, report);
  EXPECT_NE(text.find("was: void blk_account_io_start(struct request *rq, bool new_io)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("now: void blk_account_io_start(struct request *rq)"),
            std::string::npos);
  EXPECT_NE(text.find("fully inlined from v5.19"), std::string::npos);
  EXPECT_NE(text.find("type changed at v5.19-x86-generic-gcc12: unsigned int -> blk_opf_t"),
            std::string::npos);
  // The clean dependency contributes nothing.
  EXPECT_EQ(text.find("blk_mq_start_request"), std::string::npos);
}

TEST_F(CorpusFixture, CleanProgramHasNoMismatch) {
  BpfObjectBuilder builder("clean");
  builder.AttachKprobe("blk_mq_start_request");
  auto deps = ExtractDependencySet(builder.Build());
  ASSERT_TRUE(deps.ok());
  // Restrict to the 17 x86 images: build a dataset without foreign arches.
  Dataset x86_only;
  for (const BuildSpec& build : X86GenericSeries()) {
    x86_only.AddImage(build.Label(), Surface(build));
  }
  ProgramReport report = AnalyzeProgram(x86_only, *deps);
  EXPECT_FALSE(report.AnyMismatch());
  EXPECT_EQ(report.WorstImplication(), Implication::kNone);
}

TEST_F(CorpusFixture, ConsequenceAndImplicationMapping) {
  EXPECT_EQ(ConsequenceOf(DepKind::kFunc, MismatchKind::kAbsent),
            Consequence::kAttachmentError);
  EXPECT_EQ(ConsequenceOf(DepKind::kFunc, MismatchKind::kChanged), Consequence::kStrayRead);
  EXPECT_EQ(ConsequenceOf(DepKind::kFunc, MismatchKind::kSelectiveInline),
            Consequence::kMissingInvocation);
  EXPECT_EQ(ConsequenceOf(DepKind::kField, MismatchKind::kAbsent),
            Consequence::kCompilationError);
  EXPECT_EQ(ConsequenceOf(DepKind::kField, MismatchKind::kChanged), Consequence::kStrayRead);
  EXPECT_EQ(ConsequenceOf(DepKind::kTracepoint, MismatchKind::kAbsent),
            Consequence::kAttachmentError);
  EXPECT_EQ(ImplicationOf(Consequence::kAttachmentError), Implication::kExplicitError);
  EXPECT_EQ(ImplicationOf(Consequence::kStrayRead), Implication::kIncorrectResult);
  EXPECT_EQ(ImplicationOf(Consequence::kMissingInvocation), Implication::kIncompleteResult);
}

}  // namespace
}  // namespace depsurf
