// Tests for run-report aggregation (depsurf.run_report_agg.v1) and the
// perf regression gate: merge algebra (commutative and associative up to
// masking), histogram bucket addition, the golden aggregate schema, and
// stage classification with the noise floor.
#include <gtest/gtest.h>

#include "src/obs/json_lint.h"
#include "src/obs/metrics.h"
#include "src/obs/perf_gate.h"
#include "src/obs/report_merge.h"
#include "src/obs/run_report.h"
#include "src/obs/span.h"

namespace depsurf {
namespace {

// A small run report with one root span, one counter increment, and one
// histogram sample — enough to exercise every merge section.
std::string MakeReport(const std::string& span_name, uint64_t counter_delta,
                       uint64_t hist_value) {
  obs::SpanCollector collector;
  obs::MetricsRegistry registry;
  obs::SpanNode root;
  root.name = span_name;
  root.dur_ns = 4242;
  collector.AddRoot(root);
  registry.Incr("m.count", counter_delta);
  registry.Set("m.scale_pct", 5);  // non-timing gauge, identical across inputs
  registry.Set("m.wall_ms", static_cast<int64_t>(hist_value));  // timing gauge
  registry.Record("m.hist", hist_value);
  return RunReportJson(collector, registry);
}

std::string Canon(const std::string& json) {
  auto parsed = obs::ParseJson(json);
  EXPECT_TRUE(parsed.ok());
  return obs::CanonicalMaskedJson(*parsed);
}

TEST(ReportMergeTest, GoldenAggSchema) {
  obs::SpanCollector collector_a;
  obs::MetricsRegistry registry_a;
  obs::SpanNode root_a;
  root_a.name = "a.root";
  collector_a.AddRoot(root_a);
  registry_a.Incr("m.count", 2);
  registry_a.Record("m.hist", 5);  // bucket [4, 8)

  obs::SpanCollector collector_b;
  obs::MetricsRegistry registry_b;
  obs::SpanNode root_b;
  root_b.name = "b.root";
  collector_b.AddRoot(root_b);
  registry_b.Incr("m.count", 3);
  registry_b.Record("m.hist", 3);  // bucket [2, 4)

  obs::RunReportOptions masked;
  masked.mask_timings = true;
  auto merged = obs::MergeRunReports(
      {{"a", RunReportJson(collector_a, registry_a, masked)},
       {"b", RunReportJson(collector_b, registry_b, masked)}});
  ASSERT_TRUE(merged.ok()) << merged.error().ToString();

  EXPECT_EQ(*merged,
            "{\n"
            "\"schema\": \"depsurf.run_report_agg.v1\",\n"
            "\"reports\": 2,\n"
            "\"sources\": [{\"label\": \"a\", \"spans\": 1, \"counters\": 1, \"diags\": 0}, "
            "{\"label\": \"b\", \"spans\": 1, \"counters\": 1, \"diags\": 0}],\n"
            "\"spans\": [{\"name\": \"a.root\", \"dur_ns\": 0, \"cpu_ns\": 0, "
            "\"alloc_count\": 0, \"alloc_bytes\": 0, \"attrs\": {}, "
            "\"children\": []}, {\"name\": \"b.root\", \"dur_ns\": 0, "
            "\"cpu_ns\": 0, \"alloc_count\": 0, \"alloc_bytes\": 0, "
            "\"attrs\": {}, \"children\": []}],\n"
            "\"counters\": {\"m.count\": 5},\n"
            "\"gauges\": {},\n"
            "\"histograms\": {\"m.hist\": {\"count\": 2, \"sum\": 8, "
            "\"buckets\": [[2, 1], [4, 1]]}},\n"
            "\"diagnostics\": []\n"
            "}\n");
  EXPECT_TRUE(obs::ValidateAggReport(*merged).ok());
  EXPECT_FALSE(obs::ValidateAggReport(MakeReport("x", 1, 1)).ok());  // wrong schema
}

TEST(ReportMergeTest, CommutativeAfterMasking) {
  std::string a = MakeReport("a.root", 2, 5);
  std::string b = MakeReport("b.root", 3, 900);
  auto ab = obs::MergeRunReports({{"a", a}, {"b", b}});
  auto ba = obs::MergeRunReports({{"b", b}, {"a", a}});
  ASSERT_TRUE(ab.ok() && ba.ok());
  // Timing gauges take the last write, so raw bytes may differ; the masked
  // canonical form (the determinism contract) must not.
  EXPECT_EQ(Canon(*ab), Canon(*ba));
}

TEST(ReportMergeTest, AssociativeViaAggregateInput) {
  std::string a = MakeReport("a.root", 1, 2);
  std::string b = MakeReport("b.root", 2, 70);
  std::string c = MakeReport("c.root", 4, 3000);
  auto ab = obs::MergeRunReports({{"a", a}, {"b", b}});
  ASSERT_TRUE(ab.ok());
  // An aggregate is itself a valid merge input: folding C into merge(A, B)
  // equals merging all three at once.
  auto ab_c = obs::MergeRunReports({{"ab", *ab}, {"c", c}});
  auto abc = obs::MergeRunReports({{"a", a}, {"b", b}, {"c", c}});
  ASSERT_TRUE(ab_c.ok() && abc.ok());
  EXPECT_EQ(Canon(*ab_c), Canon(*abc));

  auto parsed = obs::ParseJson(*ab_c);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Find("reports")->number, 3.0);
  EXPECT_EQ(parsed->Find("sources")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed->Find("counters")->Find("m.count")->number, 7.0);
}

TEST(ReportMergeTest, HistogramBucketsAddBucketWise) {
  // 5 and 6 share bucket [4, 8); 3 sits alone in [2, 4).
  auto merged = obs::MergeRunReports({{"a", MakeReport("r", 1, 5)},
                                      {"b", MakeReport("r", 1, 6)},
                                      {"c", MakeReport("r", 1, 3)}});
  ASSERT_TRUE(merged.ok());
  auto parsed = obs::ParseJson(*merged);
  ASSERT_TRUE(parsed.ok());
  const obs::JsonValue* hist = parsed->Find("histograms")->Find("m.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 3.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->number, 14.0);
  const obs::JsonValue* buckets = hist->Find("buckets");
  ASSERT_EQ(buckets->array.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets->array[0].array[0].number, 2.0);  // lower bound 2
  EXPECT_DOUBLE_EQ(buckets->array[0].array[1].number, 1.0);  // one sample
  EXPECT_DOUBLE_EQ(buckets->array[1].array[0].number, 4.0);  // lower bound 4
  EXPECT_DOUBLE_EQ(buckets->array[1].array[1].number, 2.0);  // 5 and 6
}

TEST(ReportMergeTest, RejectsGarbage) {
  EXPECT_FALSE(obs::MergeRunReports({}).ok());
  EXPECT_FALSE(obs::MergeRunReports({{"x", "not json"}}).ok());
  EXPECT_FALSE(obs::MergeRunReports({{"x", "{\"schema\": \"other.v1\"}"}}).ok());
}

TEST(PerfGateTest, ClassifiesStagesAgainstThresholdAndFloor) {
  std::vector<obs::StageTiming> base = {{"extract", 1.0, 5},
                                        {"distill", 0.50, 5},
                                        {"tiny", 0.001, 1},
                                        {"dropped", 0.20, 1}};
  std::vector<obs::StageTiming> head = {{"extract", 1.40, 5},
                                        {"distill", 0.40, 5},
                                        {"tiny", 0.004, 1},
                                        {"fresh", 0.30, 1}};
  obs::PerfComparison cmp = obs::ComparePerf(base, head);  // 15%, 5 ms floor
  ASSERT_EQ(cmp.stages.size(), 5u);
  EXPECT_EQ(cmp.stages[0].cls, obs::StageClass::kRegressed);  // +40%
  EXPECT_EQ(cmp.stages[1].cls, obs::StageClass::kImproved);   // -20%
  EXPECT_EQ(cmp.stages[2].cls, obs::StageClass::kFlat);  // +300% but sub-floor
  EXPECT_EQ(cmp.stages[3].cls, obs::StageClass::kRemoved);
  EXPECT_EQ(cmp.stages[4].cls, obs::StageClass::kAdded);
  EXPECT_EQ(cmp.regressed, 1u);
  EXPECT_EQ(cmp.improved, 1u);
  EXPECT_TRUE(cmp.gate_failed());

  // Identical inputs never trip the gate.
  obs::PerfComparison same = obs::ComparePerf(base, base);
  EXPECT_FALSE(same.gate_failed());
  EXPECT_EQ(same.regressed, 0u);
  EXPECT_EQ(same.improved, 0u);

  // A looser threshold forgives the 40% regression.
  obs::PerfGateOptions loose;
  loose.max_regress = 0.50;
  EXPECT_FALSE(obs::ComparePerf(base, head, loose).gate_failed());
}

TEST(PerfGateTest, JsonRoundTripsThroughLint) {
  std::vector<obs::StageTiming> base = {{"extract", 1.0, 5}};
  std::vector<obs::StageTiming> head = {{"extract", 2.0, 5}};
  obs::PerfGateOptions options;
  obs::PerfComparison cmp = obs::ComparePerf(base, head, options);
  std::string json = obs::PerfComparisonJson(cmp, options);
  EXPECT_TRUE(obs::ValidatePerfCompare(json).ok()) << json;
  EXPECT_FALSE(obs::ValidatePerfCompare("{\"schema\": \"nope\"}").ok());

  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Find("regressed")->number, 1.0);
}

TEST(PerfGateTest, LoadsTimingsFromRunReports) {
  // Root spans of a run report are stages: summed per distinct name.
  obs::SpanCollector collector;
  obs::MetricsRegistry registry;
  obs::SpanNode r1;
  r1.name = "surface.extract";
  r1.dur_ns = 2'000'000;
  collector.AddRoot(r1);
  collector.AddRoot(r1);  // second worker root with the same name
  auto parsed = obs::ParseJson(RunReportJson(collector, registry));
  ASSERT_TRUE(parsed.ok());
  auto timings = obs::LoadStageTimings(*parsed);
  ASSERT_TRUE(timings.ok()) << timings.error().ToString();
  ASSERT_EQ(timings->size(), 1u);
  EXPECT_EQ((*timings)[0].name, "surface.extract");
  EXPECT_DOUBLE_EQ((*timings)[0].seconds, 0.004);

  EXPECT_FALSE(obs::LoadStageTimings(*obs::ParseJson("{\"x\": 1}")).ok());
}

}  // namespace
}  // namespace depsurf
