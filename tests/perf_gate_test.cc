// Edge-case coverage for the perf gate comparison itself (ComparePerf was
// previously exercised only end-to-end through bench/perf_gate.sh):
// one-sided stages, zero-duration stages, exact noise-floor and threshold
// boundaries, and the adaptive per-stage delta floors fed from run history.
#include <gtest/gtest.h>

#include "src/obs/json_lint.h"
#include "src/obs/perf_gate.h"

namespace depsurf {
namespace {

obs::StageTiming Stage(const char* name, double seconds) {
  return obs::StageTiming{name, seconds, 1};
}

TEST(PerfGateEdgeTest, OneSidedStagesNeverTripTheGate) {
  // A stage present only in base is "removed", only in head is "added" —
  // neither counts as a regression (or an improvement).
  std::vector<obs::StageTiming> base = {Stage("only_base", 2.0), Stage("both", 1.0)};
  std::vector<obs::StageTiming> head = {Stage("both", 1.0), Stage("only_head", 9.0)};
  obs::PerfComparison cmp = obs::ComparePerf(base, head);
  ASSERT_EQ(cmp.stages.size(), 3u);
  EXPECT_EQ(cmp.stages[0].cls, obs::StageClass::kRemoved);
  EXPECT_EQ(cmp.stages[1].cls, obs::StageClass::kFlat);
  EXPECT_EQ(cmp.stages[2].cls, obs::StageClass::kAdded);
  EXPECT_EQ(cmp.regressed, 0u);
  EXPECT_EQ(cmp.improved, 0u);
  EXPECT_FALSE(cmp.gate_failed());
  // Removed rows keep their base time, added rows their head time.
  EXPECT_DOUBLE_EQ(cmp.stages[0].base_seconds, 2.0);
  EXPECT_DOUBLE_EQ(cmp.stages[0].head_seconds, 0.0);
  EXPECT_DOUBLE_EQ(cmp.stages[2].head_seconds, 9.0);
  EXPECT_DOUBLE_EQ(cmp.stages[2].delta_pct, 0.0);
}

TEST(PerfGateEdgeTest, ZeroDurationStages) {
  // base 0 -> head above the floor: a real regression (delta_pct pinned to
  // 0 because the ratio is undefined). base above the floor -> head 0: an
  // improvement. 0 -> 0: flat (both under the floor).
  std::vector<obs::StageTiming> base = {Stage("grew", 0.0), Stage("shrank", 1.0),
                                        Stage("still", 0.0)};
  std::vector<obs::StageTiming> head = {Stage("grew", 0.1), Stage("shrank", 0.0),
                                        Stage("still", 0.0)};
  obs::PerfComparison cmp = obs::ComparePerf(base, head);
  ASSERT_EQ(cmp.stages.size(), 3u);
  EXPECT_EQ(cmp.stages[0].cls, obs::StageClass::kRegressed);
  EXPECT_DOUBLE_EQ(cmp.stages[0].delta_pct, 0.0);
  EXPECT_EQ(cmp.stages[1].cls, obs::StageClass::kImproved);
  EXPECT_DOUBLE_EQ(cmp.stages[1].delta_pct, -100.0);
  EXPECT_EQ(cmp.stages[2].cls, obs::StageClass::kFlat);
  EXPECT_TRUE(cmp.gate_failed());
}

TEST(PerfGateEdgeTest, ExactNoiseFloorBoundary) {
  obs::PerfGateOptions options;  // floor 0.005
  // The floor test is strict (<): a stage sitting exactly on the floor is
  // judged by ratio, one epsilon under it is not.
  std::vector<obs::StageTiming> base = {Stage("at_floor", 0.005), Stage("under", 0.004)};
  std::vector<obs::StageTiming> head = {Stage("at_floor", 0.010), Stage("under", 0.0049)};
  obs::PerfComparison cmp = obs::ComparePerf(base, head, options);
  ASSERT_EQ(cmp.stages.size(), 2u);
  EXPECT_EQ(cmp.stages[0].cls, obs::StageClass::kRegressed);  // +100%, on the floor
  EXPECT_EQ(cmp.stages[1].cls, obs::StageClass::kFlat);       // +22.5%, sub-floor
  // One side on/above the floor is enough to judge by ratio.
  std::vector<obs::StageTiming> base2 = {Stage("spike", 0.001)};
  std::vector<obs::StageTiming> head2 = {Stage("spike", 0.006)};
  EXPECT_TRUE(obs::ComparePerf(base2, head2, options).gate_failed());
}

TEST(PerfGateEdgeTest, ExactRegressThresholdBoundary) {
  obs::PerfGateOptions options;
  options.max_regress = 0.15;
  // head == base * 1.15 exactly: strict >, so not a regression.
  std::vector<obs::StageTiming> base = {Stage("s", 1.0)};
  EXPECT_FALSE(obs::ComparePerf(base, {Stage("s", 1.0 * 1.15)}, options).gate_failed());
  EXPECT_TRUE(obs::ComparePerf(base, {Stage("s", 1.16)}, options).gate_failed());
  // Symmetric on the improvement side.
  obs::PerfComparison at = obs::ComparePerf({Stage("s", 1.0 * 1.15)}, base, options);
  EXPECT_EQ(at.improved, 0u);
  obs::PerfComparison past = obs::ComparePerf({Stage("s", 1.16)}, base, options);
  EXPECT_EQ(past.improved, 1u);
}

TEST(PerfGateEdgeTest, AdaptiveDeltaFloorCoversNoisyStage) {
  obs::PerfGateOptions options;
  options.stage_delta_floors_seconds["noisy"] = 0.5;
  // +40% would trip the 15% gate, but the delta (0.4 s) is inside the
  // stage's learned noise floor, so it is flat — and the applied floor is
  // recorded on the row.
  obs::PerfComparison flat =
      obs::ComparePerf({Stage("noisy", 1.0)}, {Stage("noisy", 1.4)}, options);
  ASSERT_EQ(flat.stages.size(), 1u);
  EXPECT_EQ(flat.stages[0].cls, obs::StageClass::kFlat);
  EXPECT_DOUBLE_EQ(flat.stages[0].floor_seconds, 0.5);
  // The floor is a delta bound, not a blanket pass: a move beyond it still
  // regresses (and symmetric deltas inside it stay flat either way).
  obs::PerfComparison beyond =
      obs::ComparePerf({Stage("noisy", 1.0)}, {Stage("noisy", 1.6)}, options);
  EXPECT_TRUE(beyond.gate_failed());
  obs::PerfComparison down =
      obs::ComparePerf({Stage("noisy", 1.4)}, {Stage("noisy", 1.0)}, options);
  EXPECT_EQ(down.improved, 0u);
  // Stages without a learned floor keep the plain ratio rules.
  obs::PerfComparison other =
      obs::ComparePerf({Stage("other", 1.0)}, {Stage("other", 1.4)}, options);
  EXPECT_TRUE(other.gate_failed());
  EXPECT_DOUBLE_EQ(other.stages[0].floor_seconds, 0.0);
}

TEST(PerfGateEdgeTest, JsonCarriesFloorAndStillLints) {
  obs::PerfGateOptions options;
  options.stage_delta_floors_seconds["s"] = 0.25;
  obs::PerfComparison cmp =
      obs::ComparePerf({Stage("s", 1.0)}, {Stage("s", 1.2)}, options);
  std::string json = obs::PerfComparisonJson(cmp, options);
  EXPECT_NE(json.find("\"floor_seconds\": 0.250000"), std::string::npos) << json;
  EXPECT_TRUE(obs::ValidatePerfCompare(json).ok()) << json;
}

}  // namespace
}  // namespace depsurf
