// Differential profile attribution: DiffProfiles over hand-built span
// forests (delta columns, mover ranking, one-sided names), the
// depsurf.profile_diff.v1 document round-trip through the linter,
// ParseProfileDoc as the inverse of ProfileJson, and the acceptance bar
// that masked diffs of real corpus builds are byte-identical across
// --jobs settings.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json_lint.h"
#include "src/obs/profile.h"
#include "src/obs/profile_diff.h"
#include "src/study/study.h"

namespace depsurf {
namespace {

obs::SpanNode Span(const char* name, uint64_t dur_ns, uint64_t cpu_ns,
                   uint64_t alloc_count = 0, uint64_t alloc_bytes = 0) {
  obs::SpanNode span;
  span.name = name;
  span.dur_ns = dur_ns;
  span.cpu_ns = cpu_ns;
  span.alloc_count = alloc_count;
  span.alloc_bytes = alloc_bytes;
  return span;
}

// base: build(1000) -> { extract(600), diff(200) }; head: extract slowed
// to 800 under the same root, diff gone, a new stage "analyze" appeared.
obs::Profile BaseProfile() {
  obs::SpanNode root = Span("build", 1000, 900, 4, 256);
  root.children.push_back(Span("extract", 600, 550, 2, 128));
  root.children.push_back(Span("diff", 200, 180));
  return obs::BuildProfile({root});
}

obs::Profile HeadProfile() {
  obs::SpanNode root = Span("build", 1300, 1100, 4, 256);
  root.children.push_back(Span("extract", 800, 700, 2, 128));
  root.children.push_back(Span("analyze", 300, 250, 1, 64));
  return obs::BuildProfile({root});
}

const obs::ProfileDiffRow* FindRow(const obs::ProfileDiff& diff, const std::string& name) {
  for (const obs::ProfileDiffRow& row : diff.names) {
    if (row.name == name) {
      return &row;
    }
  }
  return nullptr;
}

TEST(ProfileDiffTest, DiffsHandBuiltForests) {
  obs::ProfileDiff diff = obs::DiffProfiles(BaseProfile(), HeadProfile());
  EXPECT_EQ(diff.base_span_nodes, 3u);
  EXPECT_EQ(diff.head_span_nodes, 3u);
  // Sorted union of both name tables.
  ASSERT_EQ(diff.names.size(), 4u);
  EXPECT_EQ(diff.names[0].name, "analyze");
  EXPECT_EQ(diff.names[1].name, "build");
  EXPECT_EQ(diff.names[2].name, "diff");
  EXPECT_EQ(diff.names[3].name, "extract");

  const obs::ProfileDiffRow* extract = FindRow(diff, "extract");
  ASSERT_NE(extract, nullptr);
  EXPECT_TRUE(extract->in_base);
  EXPECT_TRUE(extract->in_head);
  EXPECT_EQ(extract->self_delta_ns, 200);  // 600 -> 800, leaf so self == dur
  EXPECT_EQ(extract->cpu_delta_ns, 150);
  EXPECT_EQ(extract->alloc_count_delta, 0);

  // One-sided rows zero the absent side and carry signed full-value deltas.
  const obs::ProfileDiffRow* removed = FindRow(diff, "diff");
  ASSERT_NE(removed, nullptr);
  EXPECT_TRUE(removed->in_base);
  EXPECT_FALSE(removed->in_head);
  EXPECT_EQ(removed->self_delta_ns, -200);
  const obs::ProfileDiffRow* added = FindRow(diff, "analyze");
  ASSERT_NE(added, nullptr);
  EXPECT_FALSE(added->in_base);
  EXPECT_TRUE(added->in_head);
  EXPECT_EQ(added->self_delta_ns, 300);

  // build's self time: base 1000 - 800 children = 200; head 1300 - 1100 =
  // 200, so it moved nowhere and is excluded from the movers.
  const obs::ProfileDiffRow* build = FindRow(diff, "build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->self_delta_ns, 0);

  // Movers ranked by |self delta| descending: analyze(300), then the
  // 200-tie broken by name (diff < extract).
  ASSERT_EQ(diff.top_movers.size(), 3u);
  EXPECT_EQ(diff.names[diff.top_movers[0]].name, "analyze");
  EXPECT_EQ(diff.names[diff.top_movers[1]].name, "diff");
  EXPECT_EQ(diff.names[diff.top_movers[2]].name, "extract");

  // top_n caps the list after ranking.
  obs::ProfileDiff capped = obs::DiffProfiles(BaseProfile(), HeadProfile(), 1);
  ASSERT_EQ(capped.top_movers.size(), 1u);
  EXPECT_EQ(capped.names[capped.top_movers[0]].name, "analyze");

  // Critical-path headline deltas.
  EXPECT_EQ(diff.base_wall_ns, 1000u);
  EXPECT_EQ(diff.head_wall_ns, 1300u);
  EXPECT_EQ(diff.wall_delta_ns(), 300);
  EXPECT_FALSE(diff.base_path.empty());
  EXPECT_FALSE(diff.head_path.empty());
}

TEST(ProfileDiffTest, JsonValidatesAndTamperIsRejected) {
  obs::ProfileDiff diff = obs::DiffProfiles(BaseProfile(), HeadProfile());
  std::string json = obs::ProfileDiffJson(diff);
  EXPECT_TRUE(obs::ValidateProfileDiffDoc(json).ok()) << json;

  // Wrong schema marker.
  std::string wrong = json;
  wrong.replace(wrong.find("profile_diff.v1"), 15, "profile_nope.v1");
  EXPECT_FALSE(obs::ValidateProfileDiffDoc(wrong).ok());
  // A base column must not be negative (deltas may be).
  std::string negative = json;
  const std::string needle = "\"base\": {\"count\": 1";
  size_t base_obj = negative.find(needle);
  ASSERT_NE(base_obj, std::string::npos);
  negative.replace(base_obj, needle.size(), "\"base\": {\"count\": -1");
  EXPECT_FALSE(obs::ValidateProfileDiffDoc(negative).ok());

  std::string text = obs::ProfileDiffText(diff);
  EXPECT_NE(text.find("critical path"), std::string::npos) << text;
  EXPECT_NE(text.find("analyze"), std::string::npos) << text;
}

TEST(ProfileDiffTest, ParseProfileDocInvertsProfileJson) {
  obs::Profile profile = HeadProfile();
  auto back = obs::ParseProfileDoc(obs::ProfileJson(profile));
  ASSERT_TRUE(back.ok()) << back.error().ToString();
  EXPECT_EQ(back->span_nodes, profile.span_nodes);
  EXPECT_EQ(back->wall_ns, profile.wall_ns);
  EXPECT_EQ(back->serial_self_ns, profile.serial_self_ns);
  ASSERT_EQ(back->names.size(), profile.names.size());
  for (size_t i = 0; i < profile.names.size(); ++i) {
    EXPECT_EQ(back->names[i].name, profile.names[i].name);
    EXPECT_EQ(back->names[i].count, profile.names[i].count);
    EXPECT_EQ(back->names[i].self_ns, profile.names[i].self_ns);
    EXPECT_EQ(back->names[i].alloc_bytes, profile.names[i].alloc_bytes);
  }
  ASSERT_EQ(back->critical_path.size(), profile.critical_path.size());
  for (size_t i = 0; i < profile.critical_path.size(); ++i) {
    EXPECT_EQ(back->critical_path[i].name, profile.critical_path[i].name);
    EXPECT_EQ(back->critical_path[i].dur_ns, profile.critical_path[i].dur_ns);
  }
  // Diffing a profile against its own round-trip is all zeros.
  obs::ProfileDiff self_diff = obs::DiffProfiles(profile, *back);
  EXPECT_TRUE(self_diff.top_movers.empty());
  EXPECT_EQ(self_diff.wall_delta_ns(), 0);

  // Non-profile documents are rejected up front.
  EXPECT_FALSE(obs::ParseProfileDoc("{\"schema\": \"depsurf.bench_report.v1\"}").ok());
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Two report-mode corpus builds per --jobs width; the masked diff document
// (timing columns zeroed, top_movers and critical_path masked wholesale)
// must not depend on the window width that produced either side.
TEST(ProfileDiffTest, MaskedDiffIsIdenticalAcrossJobs) {
  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus;
  for (KernelVersion version : kLtsVersions) {
    corpus.push_back(MakeBuild(version));
  }

  auto build_profile = [&](int jobs) {
    char tmpl[] = "/tmp/depsurf_profile_diff_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    BuildPolicy policy;
    policy.jobs = jobs;
    Study::DatasetReportFiles files;
    auto dataset = study.BuildDatasetWithReports(corpus, dir, &files, {}, policy);
    EXPECT_TRUE(dataset.ok());
    auto profile = obs::ProfileFromReportJson(ReadFileOrEmpty(files.aggregate));
    EXPECT_TRUE(profile.ok());
    return profile.ok() ? *profile : obs::Profile{};
  };

  std::vector<std::string> masked;
  for (int jobs : {1, 8}) {
    obs::Profile base = build_profile(jobs);
    obs::Profile head = build_profile(jobs);
    std::string json = obs::ProfileDiffJson(obs::DiffProfiles(base, head));
    ASSERT_TRUE(obs::ValidateProfileDiffDoc(json).ok());
    auto parsed = obs::ParseJson(json);
    ASSERT_TRUE(parsed.ok());
    masked.push_back(obs::CanonicalMaskedJson(*parsed));
  }
  ASSERT_EQ(masked.size(), 2u);
  EXPECT_FALSE(masked[0].empty());
  EXPECT_EQ(masked[0], masked[1]);
}

}  // namespace
}  // namespace depsurf
