#include "src/study/study.h"

#include <gtest/gtest.h>

namespace depsurf {
namespace {

TEST(StudyOptionsTest, ParsesFlags) {
  const char* argv[] = {"bench", "--scale=0.25", "--seed=99"};
  StudyOptions options = StudyOptions::FromArgs(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(options.scale, 0.25);
  EXPECT_EQ(options.seed, 99u);
}

TEST(StudyOptionsTest, DefaultsAndBadValues) {
  const char* argv0[] = {"bench"};
  EXPECT_DOUBLE_EQ(StudyOptions::FromArgs(1, const_cast<char**>(argv0), 0.5).scale, 0.5);
  const char* argv1[] = {"bench", "--scale=-3"};
  EXPECT_DOUBLE_EQ(StudyOptions::FromArgs(2, const_cast<char**>(argv1), 0.5).scale, 0.5);
  const char* argv2[] = {"bench", "--scale=99"};
  EXPECT_DOUBLE_EQ(StudyOptions::FromArgs(2, const_cast<char**>(argv2), 0.5).scale, 0.5);
}

TEST(StudyTest, EndToEndSmallCorpus) {
  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus = {MakeBuild(KernelVersion(5, 4)),
                                   MakeBuild(KernelVersion(6, 2))};
  std::vector<Study::ImageProgress> seen;
  auto dataset = study.BuildDataset(corpus, [&](const Study::ImageProgress& image) {
    seen.push_back(image);
  });
  ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();
  EXPECT_EQ(dataset->num_images(), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].label, "v5.4-x86-generic-gcc9");
  EXPECT_EQ(seen[0].index, 0u);
  EXPECT_EQ(seen[1].index, 1u);
  EXPECT_EQ(seen[0].total, 2u);
  EXPECT_GE(seen[0].seconds, 0.0);

  auto report = study.Analyze(*dataset, "biotop");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->program, "biotop");
  EXPECT_TRUE(report->AnyMismatch());  // v6.2 breaks the accounting pair

  EXPECT_FALSE(study.Analyze(*dataset, "no_such_tool").ok());
}

TEST(StudyTest, NonStudyVersionQuarantinedByDefaultRejectedUnderStrict) {
  Study study(StudyOptions{2025, 0.005});
  BuildSpec bad = MakeBuild(KernelVersion(5, 4));
  bad.version = KernelVersion(4, 20);

  // Default policy: the unbuildable image is quarantined, not fatal.
  std::vector<QuarantinedImage> quarantined;
  auto dataset = study.BuildDataset({bad}, {}, BuildPolicy{}, &quarantined);
  ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();
  EXPECT_EQ(dataset->num_images(), 0u);
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].label, bad.Label());

  // Strict policy: the same corpus aborts the build, error naming the image.
  BuildPolicy strict;
  strict.keep_going = false;
  auto failed = study.BuildDataset({bad}, {}, strict);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.error().message().find(bad.Label()), std::string::npos);
}

TEST(StudyTest, PoisonedImageQuarantinedOthersSurvive) {
  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus = {MakeBuild(KernelVersion(5, 4)),
                                   MakeBuild(KernelVersion(6, 2))};
  const std::string victim = corpus[1].Label();
  study.SetImageMutator([&victim](const BuildSpec& build, std::vector<uint8_t>& bytes) {
    if (build.Label() == victim && bytes.size() > 16) {
      bytes.resize(16);  // below the ELF header: guaranteed fatal
    }
  });
  std::vector<QuarantinedImage> quarantined;
  auto dataset = study.BuildDataset(corpus, {}, BuildPolicy{}, &quarantined);
  ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();
  EXPECT_EQ(dataset->num_images(), 1u);
  EXPECT_EQ(dataset->images()[0].label, corpus[0].Label());
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].label, victim);
  EXPECT_EQ(quarantined[0].error.code(), ErrorCode::kMalformedData);
}

}  // namespace
}  // namespace depsurf
