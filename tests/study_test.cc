#include "src/study/study.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/faultgen/fault_injector.h"
#include "src/util/diagnostic_ledger.h"

namespace depsurf {
namespace {

std::string MakeReportDir() {
  char tmpl[] = "/tmp/depsurf_study_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir != nullptr ? dir : ".");
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(StudyOptionsTest, ParsesFlags) {
  const char* argv[] = {"bench", "--scale=0.25", "--seed=99"};
  StudyOptions options = StudyOptions::FromArgs(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(options.scale, 0.25);
  EXPECT_EQ(options.seed, 99u);
}

TEST(StudyOptionsTest, DefaultsAndBadValues) {
  const char* argv0[] = {"bench"};
  Result<StudyOptions> defaults = StudyOptions::Parse(1, const_cast<char**>(argv0), 0.5);
  ASSERT_TRUE(defaults.ok());
  EXPECT_DOUBLE_EQ(defaults->scale, 0.5);

  // Regression: out-of-range and unparseable values used to be silently
  // replaced by the default. They must now be hard errors naming the flag.
  for (const char* bad : {"--scale=-3", "--scale=0", "--scale=99", "--scale=abc",
                          "--scale=", "--scale=1.0x", "--scale=nan"}) {
    const char* argv[] = {"bench", bad};
    Result<StudyOptions> parsed = StudyOptions::Parse(2, const_cast<char**>(argv), 0.5);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.error().code(), ErrorCode::kInvalidArgument) << bad;
    EXPECT_NE(parsed.error().message().find("--scale"), std::string::npos) << bad;
  }
  for (const char* bad : {"--seed=abc", "--seed=", "--seed=-1", "--seed=12x"}) {
    const char* argv[] = {"bench", bad};
    Result<StudyOptions> parsed = StudyOptions::Parse(2, const_cast<char**>(argv), 0.5);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_NE(parsed.error().message().find("--seed"), std::string::npos) << bad;
  }

  // Valid values still parse under the strict path.
  const char* good[] = {"bench", "--scale=0.25", "--seed=99"};
  Result<StudyOptions> parsed = StudyOptions::Parse(3, const_cast<char**>(good), 0.5);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->scale, 0.25);
  EXPECT_EQ(parsed->seed, 99u);
}

TEST(StudyTest, EndToEndSmallCorpus) {
  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus = {MakeBuild(KernelVersion(5, 4)),
                                   MakeBuild(KernelVersion(6, 2))};
  std::vector<Study::ImageProgress> seen;
  auto dataset = study.BuildDataset(corpus, [&](const Study::ImageProgress& image) {
    seen.push_back(image);
  });
  ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();
  EXPECT_EQ(dataset->num_images(), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].label, "v5.4-x86-generic-gcc9");
  EXPECT_EQ(seen[0].index, 0u);
  EXPECT_EQ(seen[1].index, 1u);
  EXPECT_EQ(seen[0].total, 2u);
  EXPECT_GE(seen[0].seconds, 0.0);

  auto report = study.Analyze(*dataset, "biotop");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->program, "biotop");
  EXPECT_TRUE(report->AnyMismatch());  // v6.2 breaks the accounting pair

  EXPECT_FALSE(study.Analyze(*dataset, "no_such_tool").ok());
}

TEST(StudyTest, NonStudyVersionQuarantinedByDefaultRejectedUnderStrict) {
  Study study(StudyOptions{2025, 0.005});
  BuildSpec bad = MakeBuild(KernelVersion(5, 4));
  bad.version = KernelVersion(4, 20);

  // Default policy: the unbuildable image is quarantined, not fatal.
  std::vector<QuarantinedImage> quarantined;
  auto dataset = study.BuildDataset({bad}, {}, BuildPolicy{}, &quarantined);
  ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();
  EXPECT_EQ(dataset->num_images(), 0u);
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].label, bad.Label());

  // Strict policy: the same corpus aborts the build, error naming the image.
  BuildPolicy strict;
  strict.keep_going = false;
  auto failed = study.BuildDataset({bad}, {}, strict);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.error().message().find(bad.Label()), std::string::npos);
}

TEST(StudyTest, PoisonedImageQuarantinedOthersSurvive) {
  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus = {MakeBuild(KernelVersion(5, 4)),
                                   MakeBuild(KernelVersion(6, 2))};
  const std::string victim = corpus[1].Label();
  study.SetImageMutator([&victim](const BuildSpec& build, std::vector<uint8_t>& bytes) {
    if (build.Label() == victim && bytes.size() > 16) {
      bytes.resize(16);  // below the ELF header: guaranteed fatal
    }
  });
  std::vector<QuarantinedImage> quarantined;
  auto dataset = study.BuildDataset(corpus, {}, BuildPolicy{}, &quarantined);
  ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();
  EXPECT_EQ(dataset->num_images(), 1u);
  EXPECT_EQ(dataset->images()[0].label, corpus[0].Label());
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].label, victim);
  EXPECT_EQ(quarantined[0].error.code(), ErrorCode::kMalformedData);
}

// Regression: quarantined images used to vanish from the progress stream,
// leaving callers with a gap in the indices. Every corpus entry must fire
// exactly once, in order, with the quarantined flag set only on the victim.
TEST(StudyTest, QuarantinedImagesFireProgressWithContiguousIndices) {
  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus = {MakeBuild(KernelVersion(5, 4)),
                                   MakeBuild(KernelVersion(5, 15)),
                                   MakeBuild(KernelVersion(6, 2))};
  const std::string victim = corpus[1].Label();
  study.SetImageMutator([&victim](const BuildSpec& build, std::vector<uint8_t>& bytes) {
    if (build.Label() == victim && bytes.size() > 16) {
      bytes.resize(16);  // below the ELF header: guaranteed fatal
    }
  });

  for (bool with_reports : {false, true}) {
    SCOPED_TRACE(with_reports ? "BuildDatasetWithReports" : "BuildDataset");
    std::vector<Study::ImageProgress> seen;
    auto progress = [&](const Study::ImageProgress& image) { seen.push_back(image); };
    std::vector<QuarantinedImage> quarantined;
    Result<Dataset> dataset =
        with_reports ? study.BuildDatasetWithReports(corpus, MakeReportDir(), nullptr,
                                                     progress, {}, &quarantined)
                     : study.BuildDataset(corpus, progress, {}, &quarantined);
    ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();
    EXPECT_EQ(dataset->num_images(), 2u);
    ASSERT_EQ(quarantined.size(), 1u);
    EXPECT_EQ(quarantined[0].label, victim);
    ASSERT_EQ(seen.size(), corpus.size());
    for (size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].index, i);
      EXPECT_EQ(seen[i].total, corpus.size());
      EXPECT_EQ(seen[i].label, corpus[i].Label());
      EXPECT_EQ(seen[i].quarantined, seen[i].label == victim);
    }
  }
}

// Regression: quarantine diagnostics hardcoded DiagSubsystem::kElf, so a
// fatal inside the DWARF payload read as an ELF failure in the reports.
// Poisoning .sdwarf_info's section header must attribute to kDwarf, both on
// the QuarantinedImage error and in the per-image run report JSON.
TEST(StudyTest, QuarantineAttributesFatalToOwningSubsystem) {
  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus = {MakeBuild(KernelVersion(5, 4))};
  study.SetImageMutator([](const BuildSpec&, std::vector<uint8_t>& bytes) {
    EXPECT_TRUE(PoisonSectionHeader(bytes, ".sdwarf_info"));
  });

  const std::string report_dir = MakeReportDir();
  Study::DatasetReportFiles files;
  std::vector<QuarantinedImage> quarantined;
  auto dataset =
      study.BuildDatasetWithReports(corpus, report_dir, &files, {}, {}, &quarantined);
  ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();
  EXPECT_EQ(dataset->num_images(), 0u);
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].error.code(), ErrorCode::kMalformedData);
  ASSERT_TRUE(quarantined[0].error.subsystem().has_value());
  EXPECT_EQ(*quarantined[0].error.subsystem(), DiagSubsystem::kDwarf);

  ASSERT_EQ(files.per_image.size(), 1u);
  const std::string report = ReadFileOrEmpty(files.per_image[0]);
  EXPECT_NE(report.find("\"severity\": \"fatal\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"subsystem\": \"dwarf\""), std::string::npos) << report;
  EXPECT_EQ(report.find("\"subsystem\": \"elf\""), std::string::npos) << report;
}

}  // namespace
}  // namespace depsurf
