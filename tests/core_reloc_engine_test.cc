// Tests of the CO-RE relocation engine (the load-time half of Compile Once
// Run Everywhere): offsets must be re-resolved by field name against the
// target kernel's BTF, guards must degrade gracefully, and missing
// constructs must fail the load.
#include <gtest/gtest.h>

#include "src/bpf/bpf_builder.h"
#include "src/bpf/core_reloc_engine.h"
#include "src/core/dependency_surface.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"
#include "src/kernelgen/scripted.h"
#include "src/kmodel/type_lang.h"

namespace depsurf {
namespace {

// A kernel BTF with struct request { q; rq_disk; __sector; } like old
// kernels, where the program was compiled against a different layout.
TypeGraph OldKernelBtf() {
  TypeGraph graph;
  TypeLowering lowering(graph);
  StructSpec request;
  request.name = "request";
  request.fields = {{"q", "struct request_queue *"},
                    {"rq_disk", "struct gendisk *"},
                    {"__sector", "sector_t"}};
  EXPECT_TRUE(lowering.DefineStruct(request).ok());
  StructSpec gendisk;
  gendisk.name = "gendisk";
  gendisk.fields = {{"major", "int"}, {"disk_name", "char[32]"}};
  EXPECT_TRUE(lowering.DefineStruct(gendisk).ok());
  return graph;
}

TEST(CoreRelocEngineTest, OffsetsFollowTheTargetKernelLayout) {
  // Program compiled against a *minimal* local struct: only the fields it
  // reads, in its own order — the whole point of CO-RE.
  BpfObjectBuilder builder("probe");
  ASSERT_TRUE(builder.AccessField("request", "__sector", "sector_t").ok());
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  BpfObject object = builder.Build();

  TypeGraph kernel = OldKernelBtf();
  // Local indices: __sector=0, rq_disk=1. Kernel layout: q@0, rq_disk@8,
  // __sector@16.
  auto sector = ResolveCoreReloc(object.btf, object.relocs[0], kernel);
  ASSERT_TRUE(sector.ok()) << sector.error().ToString();
  EXPECT_EQ(sector->outcome, RelocOutcome::kResolved);
  EXPECT_EQ(sector->value, 16u);
  auto disk = ResolveCoreReloc(object.btf, object.relocs[1], kernel);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ(disk->value, 8u);
}

TEST(CoreRelocEngineTest, MissingFieldFailsUnguardedLoads) {
  BpfObjectBuilder builder("probe");
  ASSERT_TRUE(builder.AccessField("request", "part", "struct block_device *").ok());
  BpfObject object = builder.Build();
  TypeGraph kernel = OldKernelBtf();  // no `part` before v5.16
  auto result = ResolveCoreReloc(object.btf, object.relocs[0], kernel);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RelocOutcome::kFieldMissing);

  LoadResult load = SimulateLoad(object, kernel);
  EXPECT_FALSE(load.loaded);
  EXPECT_NE(load.failure.find("part"), std::string::npos);
}

TEST(CoreRelocEngineTest, GuardedAccessAnswersZeroInsteadOfFailing) {
  BpfObjectBuilder builder("probe");
  ASSERT_TRUE(builder.CheckFieldExists("request", "part", "struct block_device *").ok());
  ASSERT_TRUE(builder.CheckFieldExists("request", "rq_disk", "struct gendisk *").ok());
  BpfObject object = builder.Build();
  TypeGraph kernel = OldKernelBtf();

  auto missing = ResolveCoreReloc(object.btf, object.relocs[0], kernel);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->outcome, RelocOutcome::kGuardedAbsent);
  EXPECT_EQ(missing->value, 0u);
  auto present = ResolveCoreReloc(object.btf, object.relocs[1], kernel);
  ASSERT_TRUE(present.ok());
  EXPECT_EQ(present->outcome, RelocOutcome::kResolved);
  EXPECT_EQ(present->value, 1u);

  EXPECT_TRUE(SimulateLoad(object, kernel).loaded);
}

TEST(CoreRelocEngineTest, MissingStructFailsLoad) {
  BpfObjectBuilder builder("probe");
  ASSERT_TRUE(builder.AccessField("folio", "flags", "unsigned long").ok());
  BpfObject object = builder.Build();
  TypeGraph kernel = OldKernelBtf();  // pre-folio kernel
  auto result = ResolveCoreReloc(object.btf, object.relocs[0], kernel);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, RelocOutcome::kTypeMissing);
  EXPECT_FALSE(SimulateLoad(object, kernel).loaded);
}

TEST(CoreRelocEngineTest, TypeExistsQuery) {
  BpfObjectBuilder builder("probe");
  ASSERT_TRUE(builder.TouchStruct("request").ok());
  ASSERT_TRUE(builder.TouchStruct("folio").ok());
  BpfObject object = builder.Build();
  TypeGraph kernel = OldKernelBtf();
  auto request = ResolveCoreReloc(object.btf, object.relocs[0], kernel);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->value, 1u);
  auto folio = ResolveCoreReloc(object.btf, object.relocs[1], kernel);
  ASSERT_TRUE(folio.ok());
  EXPECT_EQ(folio->outcome, RelocOutcome::kGuardedAbsent);
}

TEST(CoreRelocEngineTest, ChainedAccessRestartsOffsetAfterPointerHop) {
  BpfObjectBuilder builder("probe");
  ASSERT_TRUE(builder
                  .AccessChain({{"request", "rq_disk", "struct gendisk *"},
                                {"gendisk", "disk_name", "char[32]"}})
                  .ok());
  BpfObject object = builder.Build();
  TypeGraph kernel = OldKernelBtf();
  auto result = ResolveCoreReloc(object.btf, object.relocs[0], kernel);
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->outcome, RelocOutcome::kResolved);
  // disk_name sits after `major` in gendisk (padded to the 8-byte array
  // alignment this corpus uses): offset 8, NOT 8 + rq_disk's 8 — the
  // pointer hop restarts the offset in the pointee.
  EXPECT_EQ(result->value, 8u);
}

TEST(CoreRelocEngineTest, FieldSizeRelocation) {
  BpfObjectBuilder builder("probe");
  ASSERT_TRUE(builder.AccessField("gendisk", "disk_name", "char[32]").ok());
  BpfObject object = builder.Build();
  object.relocs[0].kind = CoreRelocKind::kFieldSize;
  TypeGraph kernel = OldKernelBtf();
  auto result = ResolveCoreReloc(object.btf, object.relocs[0], kernel);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->value, 32u);
}

TEST(CoreRelocEngineTest, EndToEndAgainstGeneratedImages) {
  // The biotop field reads must load on v5.4 (rq_disk present) and fail on
  // v6.2 (rq_disk gone) — the classic relocation-error story, through real
  // image bytes.
  BpfObjectBuilder builder("probe");
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  BpfObject object = builder.Build();

  KernelModel model(2025, 0.005, BuildCuratedCatalog());
  auto load_on = [&](KernelVersion version) {
    auto kernel = model.Configure(MakeBuild(version));
    EXPECT_TRUE(kernel.ok());
    auto bytes = BuildKernelImage(CompileKernel(2025, kernel.TakeValue()));
    EXPECT_TRUE(bytes.ok());
    auto surface = DependencySurface::Extract(bytes.TakeValue());
    EXPECT_TRUE(surface.ok());
    return SimulateLoad(object, surface->btf());
  };
  EXPECT_TRUE(load_on(KernelVersion(5, 4)).loaded);
  EXPECT_FALSE(load_on(KernelVersion(6, 2)).loaded);
}

}  // namespace
}  // namespace depsurf
