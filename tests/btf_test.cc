#include <gtest/gtest.h>

#include "src/btf/btf.h"
#include "src/btf/btf_codec.h"
#include "src/btf/btf_compare.h"
#include "src/btf/btf_print.h"

namespace depsurf {
namespace {

// Builds the running example of the paper: int vfs_fsync(struct file *, int).
TypeGraph MakeVfsFsyncGraph(BtfTypeId* func_out = nullptr) {
  TypeGraph g;
  BtfTypeId i = g.Int("int", 4);
  BtfTypeId file = g.Struct("file", 232, {{"f_count", i, 0}, {"f_flags", i, 32}});
  BtfTypeId proto = g.FuncProto(i, {{"file", g.Ptr(file)}, {"datasync", i}});
  BtfTypeId func = g.Func("vfs_fsync", proto);
  if (func_out != nullptr) {
    *func_out = func;
  }
  return g;
}

TEST(TypeGraphTest, BuilderDedupsScalars) {
  TypeGraph g;
  BtfTypeId a = g.Int("int", 4);
  BtfTypeId b = g.Int("int", 4);
  BtfTypeId c = g.Int("long", 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(g.Ptr(a), g.Ptr(b));
  EXPECT_NE(g.Ptr(a), g.Ptr(c));
}

TEST(TypeGraphTest, GetBoundary) {
  TypeGraph g;
  EXPECT_EQ(g.Get(0), nullptr);
  EXPECT_EQ(g.Get(1), nullptr);
  BtfTypeId id = g.Int("u8", 1);
  ASSERT_NE(g.Get(id), nullptr);
  EXPECT_EQ(g.Get(id)->name, "u8");
  EXPECT_EQ(g.Get(id + 1), nullptr);
}

TEST(TypeGraphTest, FindByName) {
  BtfTypeId func;
  TypeGraph g = MakeVfsFsyncGraph(&func);
  EXPECT_EQ(g.FindFunc("vfs_fsync"), func);
  EXPECT_TRUE(g.FindStruct("file").has_value());
  EXPECT_FALSE(g.FindStruct("task_struct").has_value());
  EXPECT_FALSE(g.FindFunc("file").has_value());
}

TEST(TypeGraphTest, ResolveAliases) {
  TypeGraph g;
  BtfTypeId i = g.Int("int", 4);
  BtfTypeId td = g.Typedef("s32", i);
  BtfTypeId c = g.Const(td);
  BtfTypeId v = g.Volatile(c);
  EXPECT_EQ(g.ResolveAliases(v), i);
  EXPECT_EQ(g.ResolveAliases(i), i);
}

TEST(TypeGraphTest, ValidateCatchesDanglingRefs) {
  TypeGraph g;
  BtfType bad;
  bad.kind = BtfKind::kPtr;
  bad.ref_type_id = 42;
  g.Add(bad);
  EXPECT_FALSE(g.Validate().ok());

  TypeGraph g2;
  BtfType s;
  s.kind = BtfKind::kStruct;
  s.name = "x";
  s.members.push_back({"f", 99, 0});
  g2.Add(s);
  EXPECT_FALSE(g2.Validate().ok());
}

class BtfCodecEndianTest : public ::testing::TestWithParam<Endian> {};

TEST_P(BtfCodecEndianTest, RoundTripPreservesGraph) {
  BtfTypeId func;
  TypeGraph g = MakeVfsFsyncGraph(&func);
  // Exercise the remaining kinds.
  BtfTypeId i = g.Int("int", 4);
  g.Typedef("u64", g.Int("long long unsigned int", 8));
  g.Array(i, 16);
  g.Fwd("sock");
  g.Enum("pid_type", {{"PIDTYPE_PID", 0}, {"PIDTYPE_TGID", 1}});
  g.Union("anon", 8, {{"a", i, 0}, {"b", i, 0}});
  g.Float("double", 8);

  std::vector<uint8_t> bytes = EncodeBtf(g, GetParam());
  auto decoded = DecodeBtf(bytes, GetParam());
  ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
  ASSERT_EQ(decoded->num_types(), g.num_types());
  for (BtfTypeId id = 1; id <= g.num_types(); ++id) {
    const BtfType* a = g.Get(id);
    const BtfType* b = decoded->Get(id);
    EXPECT_EQ(a->kind, b->kind) << "id " << id;
    EXPECT_EQ(a->name, b->name);
    EXPECT_EQ(a->size, b->size);
    EXPECT_EQ(a->ref_type_id, b->ref_type_id);
    EXPECT_EQ(a->nelems, b->nelems);
    EXPECT_EQ(a->members, b->members);
    EXPECT_EQ(a->params, b->params);
    EXPECT_EQ(a->enumerators, b->enumerators);
  }
  EXPECT_TRUE(TypeEquals(g, func, *decoded, func));
}

INSTANTIATE_TEST_SUITE_P(Endians, BtfCodecEndianTest,
                         ::testing::Values(Endian::kLittle, Endian::kBig));

TEST(BtfCodecTest, EmptyGraphRoundTrips) {
  TypeGraph g;
  auto decoded = DecodeBtf(EncodeBtf(g));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_types(), 0u);
}

TEST(BtfCodecTest, RejectsBadMagic) {
  std::vector<uint8_t> bytes = EncodeBtf(MakeVfsFsyncGraph());
  bytes[0] ^= 0xff;
  EXPECT_FALSE(DecodeBtf(bytes).ok());
}

TEST(BtfCodecTest, RejectsTruncatedTypes) {
  std::vector<uint8_t> bytes = EncodeBtf(MakeVfsFsyncGraph());
  // Chop the string section off entirely: name reads must fail.
  bytes.resize(kBtfHeaderLen + 4);
  EXPECT_FALSE(DecodeBtf(bytes).ok());
}

TEST(BtfCodecTest, RejectsWrongEndianness) {
  std::vector<uint8_t> bytes = EncodeBtf(MakeVfsFsyncGraph(), Endian::kBig);
  EXPECT_FALSE(DecodeBtf(bytes, Endian::kLittle).ok());
}

TEST(BtfPrintTest, TypeStrings) {
  TypeGraph g;
  BtfTypeId i = g.Int("int", 4);
  BtfTypeId ch = g.Int("char", 1);
  BtfTypeId file = g.Fwd("file");
  EXPECT_EQ(TypeString(g, i), "int");
  EXPECT_EQ(TypeString(g, g.Ptr(file)), "struct file *");
  EXPECT_EQ(TypeString(g, g.Ptr(g.Ptr(i))), "int **");
  EXPECT_EQ(TypeString(g, g.Const(g.Ptr(ch))), "char *const");  // const pointer
  EXPECT_EQ(TypeString(g, g.Ptr(g.Const(ch))), "const char *");
  EXPECT_EQ(TypeString(g, g.Array(ch, 16)), "char[16]");
  EXPECT_EQ(TypeString(g, kBtfVoid), "void");
}

TEST(BtfPrintTest, FuncDecl) {
  BtfTypeId func;
  TypeGraph g = MakeVfsFsyncGraph(&func);
  // Matches the paper's Appendix A declaration rendering.
  EXPECT_EQ(FuncDeclString(g, func), "int vfs_fsync(struct file *file, int datasync)");
  EXPECT_EQ(FuncDeclString(g, kBtfVoid), "<not a function>");
}

TEST(BtfPrintTest, JsonMatchesDatasetShape) {
  BtfTypeId func;
  TypeGraph g = MakeVfsFsyncGraph(&func);
  std::string json = TypeJson(g, func);
  EXPECT_NE(json.find("\"kind\": \"FUNC\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"vfs_fsync\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"FUNC_PROTO\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"datasync\""), std::string::npos);
  EXPECT_NE(json.find("\"ret_type\""), std::string::npos);
}

TEST(BtfCompareTest, EqualAcrossGraphs) {
  BtfTypeId fa;
  BtfTypeId fb;
  TypeGraph a = MakeVfsFsyncGraph(&fa);
  TypeGraph b = MakeVfsFsyncGraph(&fb);
  b.Int("extra", 2);  // perturb ids downstream; existing ids unaffected
  EXPECT_TRUE(TypeEquals(a, fa, b, fb));
}

TEST(BtfCompareTest, ParamTypeChangeDetected) {
  TypeGraph a;
  BtfTypeId ia = a.Int("int", 4);
  BtfTypeId pa = a.FuncProto(ia, {{"x", ia}});
  TypeGraph b;
  BtfTypeId ib = b.Int("int", 4);
  BtfTypeId lb = b.Int("long", 8);
  BtfTypeId pb = b.FuncProto(ib, {{"x", lb}});
  EXPECT_FALSE(TypeEquals(a, pa, b, pb));
  // int -> long is a silent-compatible change.
  EXPECT_TRUE(TypeCompatible(a, ia, b, lb));
}

TEST(BtfCompareTest, StructsCompareByName) {
  TypeGraph a;
  BtfTypeId ia = a.Int("int", 4);
  BtfTypeId sa = a.Struct("request", 100, {{"rq_disk", ia, 0}});
  TypeGraph b;
  BtfTypeId ib = b.Int("int", 4);
  BtfTypeId sb = b.Struct("request", 120, {{"disk", ib, 0}, {"other", ib, 32}});
  // Same name: identified as the same kernel struct (fields differ but the
  // *type identity* holds; field diffs are the differ's job).
  EXPECT_TRUE(TypeEquals(a, sa, b, sb));
  BtfTypeId sc = b.Struct("request_queue", 120, {});
  EXPECT_FALSE(TypeEquals(a, sa, b, sc));
}

TEST(BtfCompareTest, FwdMatchesNamedStruct) {
  TypeGraph a;
  BtfTypeId fwd = a.Fwd("sock");
  TypeGraph b;
  BtfTypeId st = b.Struct("sock", 760, {});
  EXPECT_TRUE(TypeEquals(a, fwd, b, st));
  EXPECT_FALSE(TypeEquals(a, fwd, b, b.Struct("socket", 10, {})));
}

TEST(BtfCompareTest, PointerVsIntegerIncompatible) {
  TypeGraph a;
  BtfTypeId i = a.Int("int", 4);
  BtfTypeId p = a.Ptr(i);
  EXPECT_FALSE(TypeCompatible(a, i, a, p));
  EXPECT_TRUE(TypeCompatible(a, p, a, a.Ptr(p)));  // pointer-to-anything stays a pointer
}

TEST(BtfCompareTest, EnumCompatibleWithInt) {
  TypeGraph g;
  BtfTypeId e = g.Enum("state", {{"A", 0}});
  BtfTypeId i = g.Int("unsigned int", 4);
  EXPECT_TRUE(TypeCompatible(g, e, g, i));
  EXPECT_FALSE(TypeEquals(g, e, g, i));
}

TEST(BtfCompareTest, AnonymousAggregatesCompareStructurally) {
  TypeGraph a;
  BtfTypeId ia = a.Int("int", 4);
  BtfTypeId ua = a.Union("", 4, {{"x", ia, 0}});
  TypeGraph b;
  BtfTypeId ib = b.Int("int", 4);
  BtfTypeId ub = b.Union("", 4, {{"x", ib, 0}});
  BtfTypeId uc = b.Union("", 4, {{"y", ib, 0}});
  EXPECT_TRUE(TypeEquals(a, ua, b, ub));
  EXPECT_FALSE(TypeEquals(a, ua, b, uc));
}

}  // namespace
}  // namespace depsurf
