// Determinism and reproducibility guarantees of the corpus generator: the
// same seed must produce bit-identical images; different seeds must not;
// scale must change population sizes but not scripted behavior.
#include <gtest/gtest.h>

#include "src/core/depsurf.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"
#include "src/kernelgen/scripted.h"

namespace depsurf {
namespace {

std::vector<uint8_t> ImageFor(uint64_t seed, double scale, const BuildSpec& build) {
  KernelModel model(seed, scale, BuildCuratedCatalog());
  auto kernel = model.Configure(build);
  EXPECT_TRUE(kernel.ok());
  auto bytes = BuildKernelImage(CompileKernel(seed, kernel.TakeValue()));
  EXPECT_TRUE(bytes.ok());
  return bytes.TakeValue();
}

TEST(DeterminismTest, SameSeedBitIdenticalImages) {
  BuildSpec build = MakeBuild(KernelVersion(5, 4));
  EXPECT_EQ(ImageFor(42, 0.01, build), ImageFor(42, 0.01, build));
}

TEST(DeterminismTest, DifferentSeedsDifferentImages) {
  BuildSpec build = MakeBuild(KernelVersion(5, 4));
  EXPECT_NE(ImageFor(42, 0.01, build), ImageFor(43, 0.01, build));
}

TEST(DeterminismTest, DifferentBuildsDifferentImages) {
  EXPECT_NE(ImageFor(42, 0.01, MakeBuild(KernelVersion(5, 4))),
            ImageFor(42, 0.01, MakeBuild(KernelVersion(5, 8))));
  EXPECT_NE(ImageFor(42, 0.01, MakeBuild(KernelVersion(5, 4))),
            ImageFor(42, 0.01, MakeBuild(KernelVersion(5, 4), Arch::kArm64)));
}

TEST(DeterminismTest, ScaleGrowsPopulationMonotonically) {
  BuildSpec build = MakeBuild(KernelVersion(5, 4));
  size_t prev = 0;
  for (double scale : {0.005, 0.02, 0.05}) {
    auto surface = DependencySurface::Extract(ImageFor(42, scale, build));
    ASSERT_TRUE(surface.ok());
    EXPECT_GT(surface->functions().size(), prev);
    prev = surface->functions().size();
  }
}

TEST(DeterminismTest, ScriptedConstructsIndependentOfScaleAndSeed) {
  BuildSpec build = MakeBuild(KernelVersion(5, 4));
  for (auto [seed, scale] : std::vector<std::pair<uint64_t, double>>{
           {42, 0.005}, {42, 0.03}, {1234, 0.01}}) {
    auto surface = DependencySurface::Extract(ImageFor(seed, scale, build));
    ASSERT_TRUE(surface.ok());
    const FunctionEntry* fsync = surface->FindFunction("vfs_fsync");
    ASSERT_NE(fsync, nullptr);
    EXPECT_TRUE(fsync->status.selectively_inlined);
    const FunctionEntry* acct = surface->FindFunction("blk_account_io_start");
    ASSERT_NE(acct, nullptr);
    EXPECT_TRUE(acct->status.has_exact_symbol);
    ASSERT_NE(surface->FindTracepoint("block_rq_issue"), nullptr);
    EXPECT_TRUE(surface->HasSyscall("openat"));
  }
}

TEST(DeterminismTest, SurfaceExtractionIsPure) {
  BuildSpec build = MakeBuild(KernelVersion(5, 15));
  std::vector<uint8_t> bytes = ImageFor(7, 0.01, build);
  auto a = DependencySurface::Extract(bytes);
  auto b = DependencySurface::Extract(bytes);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->functions().size(), b->functions().size());
  Dataset da;
  da.AddImage("x", *a);
  Dataset db;
  db.AddImage("x", *b);
  EXPECT_EQ(da.CheckFunc("vfs_fsync"), db.CheckFunc("vfs_fsync"));
  EXPECT_EQ(da.images()[0].pt_regs_hash, db.images()[0].pt_regs_hash);
}

}  // namespace
}  // namespace depsurf
