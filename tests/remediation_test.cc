// Remediation-engine tests: planning (guard synthesis, refusal reasons),
// the instruction-stream rewriter round-trip, the self-verification loop,
// byte-determinism over the 53-program corpus, the nested-guard and
// side-entry dominator regressions, and the depsurf.remediation.v1 golden
// the CLI contract is locked to.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analyzer/analyzer.h"
#include "src/analyzer/remediation.h"
#include "src/bpf/bpf_builder.h"
#include "src/bpf/bpf_insn.h"
#include "src/bpf/bpf_object.h"
#include "src/bpf/bpf_rewriter.h"
#include "src/bpfgen/program_corpus.h"
#include "src/obs/json_lint.h"
#include "src/util/diagnostic_ledger.h"

namespace depsurf {
namespace {

BpfObject BuildUnguardedProbe() {
  BpfObjectBuilder builder("unguarded_probe");
  builder.AttachKprobe("blk_account_io_start");
  EXPECT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  return builder.Build();
}

// Applies `plan` to a copy of `object` and round-trips the result through
// the codec, exactly like `depsurf fix` does. Returns the re-parsed object.
BpfObject ApplyAndRoundTrip(const BpfObject& object, const RemediationPlan& plan,
                            std::vector<uint8_t>* bytes_out = nullptr) {
  BpfObject fixed = object;
  Status applied = InsertFieldExistsGuards(fixed, plan.Insertions());
  EXPECT_TRUE(applied.ok()) << applied.ToString();
  auto encoded = WriteBpfObject(fixed);
  EXPECT_TRUE(encoded.ok()) << encoded.error().ToString();
  if (bytes_out != nullptr) {
    *bytes_out = encoded.value();
  }
  auto reparsed = ParseBpfObject(encoded.TakeValue());
  EXPECT_TRUE(reparsed.ok()) << reparsed.error().ToString();
  return reparsed.TakeValue();
}

// ---- Planning ------------------------------------------------------------

TEST(RemediationPlanTest, PlansGuardForUnguardedReloc) {
  BpfObject object = BuildUnguardedProbe();
  ObjectAnalysis analysis = AnalyzeObject(object);
  ASSERT_EQ(analysis.findings.size(), 1u);
  ASSERT_EQ(analysis.findings[0].kind, FindingKind::kUnguardedReloc);

  RemediationPlan plan = PlanRemediation(object, analysis);
  ASSERT_EQ(plan.items.size(), 1u);
  const Remediation& item = plan.items[0];
  EXPECT_TRUE(item.fixable);
  EXPECT_EQ(plan.FixableCount(), 1u);
  EXPECT_GE(item.scratch_reg, 0);
  EXPECT_LE(item.scratch_reg, 9);
  EXPECT_EQ(item.struct_name, "request");
  EXPECT_EQ(item.field_name, "rq_disk");
  EXPECT_EQ(item.reloc_index, 0);
  EXPECT_NE(item.guard.find("field_exists(request::rq_disk)"), std::string::npos);
  EXPECT_NE(item.Text().find("insert field_exists"), std::string::npos);
  // The finding carries the same text (AnalyzeObject annotates in place).
  EXPECT_EQ(analysis.findings[0].remediation, item.Text());
}

TEST(RemediationPlanTest, RawOffsetAndHelperAreRefusedWithReasons) {
  ObjectAnalysis raw = AnalyzeObject(BuildRawOffsetProbe());
  RemediationPlan raw_plan = PlanRemediation(BuildRawOffsetProbe(), raw);
  ASSERT_EQ(raw_plan.items.size(), 1u);
  EXPECT_FALSE(raw_plan.items[0].fixable);
  EXPECT_NE(raw_plan.items[0].reason.find("no CO-RE relocation"), std::string::npos);

  BpfObjectBuilder builder("mystery");
  builder.AttachKprobe("vfs_fsync");
  builder.CallHelper(9999);
  BpfObject object = builder.Build();
  ObjectAnalysis analysis = AnalyzeObject(object);
  RemediationPlan plan = PlanRemediation(object, analysis);
  ASSERT_EQ(plan.items.size(), 1u);
  EXPECT_FALSE(plan.items[0].fixable);
  EXPECT_NE(plan.items[0].reason.find("helper availability"), std::string::npos);
}

// ---- Rewriter round-trip and self-verification ---------------------------

TEST(RemediationFixTest, FixEliminatesUnguardedRelocFinding) {
  BpfObject object = BuildUnguardedProbe();
  ObjectAnalysis before = AnalyzeObject(object);
  RemediationPlan plan = PlanRemediation(object, before);
  ASSERT_EQ(plan.FixableCount(), 1u);

  BpfObject fixed = ApplyAndRoundTrip(object, plan);
  ObjectAnalysis after = AnalyzeObject(fixed);
  EXPECT_TRUE(after.findings.empty())
      << "first remaining: " << (after.findings.empty()
                                     ? ""
                                     : after.findings[0].detail);

  RemediationVerification v = VerifyRemediation(before, plan, after);
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.findings_before, 1u);
  EXPECT_EQ(v.targeted, 1u);
  EXPECT_EQ(v.findings_after, 0u);
  EXPECT_EQ(v.targeted_remaining, 0u);
  EXPECT_EQ(v.new_findings, 0u);

  // The inserted guard is a real field_exists relocation on the same field.
  ASSERT_EQ(fixed.relocs.size(), 2u);
  EXPECT_EQ(fixed.relocs[1].kind, CoreRelocKind::kFieldExists);
  EXPECT_EQ(fixed.relocs[1].access_str, fixed.relocs[0].access_str);
}

TEST(RemediationFixTest, RewriterRejectsBadInsertions) {
  BpfObject object = BuildUnguardedProbe();
  DiagnosticLedger ledger;
  GuardInsertion bad;
  bad.prog_index = 99;
  bad.insn_off = 0;
  bad.scratch_reg = 0;
  bad.reloc_index = 0;
  BpfObject copy = object;
  Status status = InsertFieldExistsGuards(copy, {bad}, &ledger);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ledger.entries().size(), 1u);
  // All-or-nothing: the object is untouched on failure.
  EXPECT_EQ(copy.programs[0].insns.size(), object.programs[0].insns.size());
  EXPECT_EQ(copy.relocs.size(), object.relocs.size());
}

// ---- Dominator regressions ----------------------------------------------

TEST(RemediationFixTest, NestedGuardsStayClean) {
  // guard(rq_disk) { guard(start_time_ns) { read both } } — the dominator
  // walk must see both accesses dominated by both exists-edges.
  BpfObjectBuilder builder("nested");
  builder.AttachKprobe("blk_account_io_start");
  ASSERT_TRUE(builder.BeginGuard("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.BeginGuard("request", "start_time_ns", "u64").ok());
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.AccessField("request", "start_time_ns", "u64").ok());
  ASSERT_TRUE(builder.EndGuard().ok());
  ASSERT_TRUE(builder.EndGuard().ok());
  ObjectAnalysis analysis = AnalyzeObject(builder.Build());
  EXPECT_TRUE(analysis.findings.empty())
      << (analysis.findings.empty() ? "" : analysis.findings[0].detail);
}

TEST(RemediationFixTest, SideEntryDefeatsGuardDominance) {
  // A hand-built stream where a jump enters the guarded region without
  // passing the guard: the path-insensitive exists-edge is NOT a dominator
  // (pred_edges == 2), so the access must stay unguarded-reloc.
  //
  //   slot 0: jeq r1,0,+3      -> slot 4 (the access, bypassing the guard)
  //   slot 1: ld_imm64 r3,1    (exists-guard result, CO-RE patched)
  //   slot 3: jeq r3,0,+1      -> slot 5 (exit) / fall through to the access
  //   slot 4: ldx r2,[r1+0]    (the guarded access)
  //   slot 5: exit
  BpfObjectBuilder builder("side_entry");
  builder.AttachKprobe("blk_account_io_start");
  ASSERT_TRUE(builder.CheckFieldExists("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  BpfObject object = builder.Build();
  ASSERT_EQ(object.programs.size(), 1u);
  ASSERT_EQ(object.relocs.size(), 2u);
  object.programs[0].insns = {JumpEqImm(1, 0, 3), LoadImm64(3, 1),
                              JumpEqImm(3, 0, 1), LoadField(2, 1, 0), ExitInsn()};
  object.relocs[0].insn_off = 8;   // exists record on the ld_imm64 (slot 1)
  object.relocs[1].insn_off = 32;  // byte-offset record on the load (slot 4)

  ObjectAnalysis analysis = AnalyzeObject(object);
  ASSERT_EQ(analysis.relocs.size(), 2u);
  EXPECT_TRUE(analysis.relocs[1].unguarded)
      << "side entry must defeat guard dominance";
  bool found = false;
  for (const Finding& finding : analysis.findings) {
    if (finding.kind == FindingKind::kUnguardedReloc && finding.reloc_index == 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // And the planner can still fix it: the synthesized guard is inserted
  // immediately before the access, where it dominates regardless of the
  // side entry (inbound jumps are routed through it).
  RemediationPlan plan = PlanRemediation(object, analysis);
  ASSERT_EQ(plan.items.size(), analysis.findings.size());
  size_t fixable = plan.FixableCount();
  if (fixable > 0) {
    BpfObject fixed = ApplyAndRoundTrip(object, plan);
    ObjectAnalysis after = AnalyzeObject(fixed);
    RemediationVerification v = VerifyRemediation(analysis, plan, after);
    EXPECT_TRUE(v.ok);
  }
}

// ---- Corpus sweep: determinism and completeness --------------------------

TEST(RemediationCorpusTest, FixIsByteDeterministicAndEliminatesFindings) {
  std::vector<BpfObject> objects = BuildProgramCorpus().objects;
  objects.push_back(BuildGuardedProbe());
  objects.push_back(BuildRawOffsetProbe());

  for (const BpfObject& object : objects) {
    ObjectAnalysis before = AnalyzeObject(object);
    RemediationPlan plan = PlanRemediation(object, before);
    ASSERT_EQ(plan.items.size(), before.findings.size()) << object.name;
    if (plan.FixableCount() == 0) {
      continue;
    }

    std::vector<uint8_t> bytes1, bytes2;
    BpfObject fixed = ApplyAndRoundTrip(object, plan, &bytes1);
    ApplyAndRoundTrip(object, plan, &bytes2);
    EXPECT_EQ(bytes1, bytes2) << object.name << ": fixed bytes not deterministic";

    ObjectAnalysis after = AnalyzeObject(fixed);
    RemediationVerification v = VerifyRemediation(before, plan, after);
    EXPECT_TRUE(v.ok) << object.name << ": " << v.targeted_remaining
                      << " targeted remaining, " << v.new_findings << " new";
    EXPECT_EQ(after.CountKind(FindingKind::kUnguardedReloc), 0u) << object.name;

    std::string json1 = RemediationToJson(before, plan, &v);
    RemediationPlan plan2 = PlanRemediation(object, before);
    std::string json2 = RemediationToJson(before, plan2, &v);
    EXPECT_EQ(json1, json2) << object.name << ": remediation JSON not deterministic";
  }
}

// ---- depsurf.remediation.v1 golden and lint ------------------------------

TEST(RemediationJsonTest, UnguardedProbeGolden) {
  BpfObject object = BuildUnguardedProbe();
  ObjectAnalysis analysis = AnalyzeObject(object);
  RemediationPlan plan = PlanRemediation(object, analysis);
  BpfObject fixed = ApplyAndRoundTrip(object, plan);
  ObjectAnalysis after = AnalyzeObject(fixed);
  RemediationVerification v = VerifyRemediation(analysis, plan, after);
  std::string json = RemediationToJson(analysis, plan, &v);
  const std::string expected =
      "{\n"
      "  \"schema\": \"depsurf.remediation.v1\",\n"
      "  \"object\": \"unguarded_probe\",\n"
      "  \"against\": null,\n"
      "  \"remediations\": [\n"
      "    {\"finding\": {\"kind\": \"unguarded-reloc\", "
      "\"program\": \"kprobe_blk_account_io_start\", \"insn_off\": 0, \"reloc\": 0, "
      "\"detail\": \"field reloc request::rq_disk not dominated by a "
      "field_exists check\"}, \"fixable\": true, \"insn_off\": 0, "
      "\"scratch_reg\": 2, \"struct\": \"request\", \"field\": \"rq_disk\", "
      "\"guard\": \"r2 = field_exists(request::rq_disk); if r2 == 0 goto +1\"}\n"
      "  ],\n"
      "  \"verification\": {\"findings_before\": 1, \"targeted\": 1, "
      "\"findings_after\": 0, \"targeted_remaining\": 0, \"new_findings\": 0, "
      "\"ok\": true},\n"
      "  \"summary\": {\"findings\": 1, \"fixable\": 1, \"unfixable\": 0}\n"
      "}\n";
  EXPECT_EQ(json, expected);
}

TEST(RemediationJsonTest, LintAcceptsDocAndRejectsTamper) {
  BpfObject object = BuildUnguardedProbe();
  ObjectAnalysis analysis = AnalyzeObject(object);
  RemediationPlan plan = PlanRemediation(object, analysis);
  std::string json = RemediationToJson(analysis, plan, nullptr);
  EXPECT_TRUE(obs::ValidateRemediationDoc(json).ok())
      << obs::ValidateRemediationDoc(json).ToString();

  // Summary inconsistent with the array: rejected.
  std::string tampered = json;
  size_t pos = tampered.find("\"fixable\": 1");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, std::string("\"fixable\": 1").size(), "\"fixable\": 2");
  EXPECT_FALSE(obs::ValidateRemediationDoc(tampered).ok());

  // An analysis doc is not a remediation doc.
  EXPECT_FALSE(obs::ValidateRemediationDoc(AnalysisToJson(analysis)).ok());
}

}  // namespace
}  // namespace depsurf
