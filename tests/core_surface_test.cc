// End-to-end tests of surface extraction: generate an image with known
// content, extract through the full binary path, verify classifications.
#include <gtest/gtest.h>

#include "src/btf/btf_print.h"
#include "src/core/dependency_surface.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_writer.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"
#include "src/kernelgen/scripted.h"

namespace depsurf {
namespace {

constexpr uint64_t kSeed = 2025;
constexpr double kScale = 0.02;

DependencySurface ExtractFor(KernelVersion version, Arch arch = Arch::kX86,
                             Flavor flavor = Flavor::kGeneric) {
  static std::map<uint64_t, DependencySurface> cache;
  BuildSpec build = MakeBuild(version, arch, flavor);
  auto it = cache.find(build.Key());
  if (it != cache.end()) {
    return it->second;
  }
  KernelModel model(kSeed, kScale, BuildCuratedCatalog());
  auto kernel = model.Configure(build);
  EXPECT_TRUE(kernel.ok());
  auto bytes = BuildKernelImage(CompileKernel(kSeed, kernel.TakeValue()));
  EXPECT_TRUE(bytes.ok());
  auto surface = DependencySurface::Extract(bytes.TakeValue());
  EXPECT_TRUE(surface.ok()) << surface.error().ToString();
  cache.emplace(build.Key(), surface.value());
  return surface.TakeValue();
}

TEST(SurfaceExtractTest, MetaFromBanner) {
  DependencySurface surface = ExtractFor(KernelVersion(5, 4));
  EXPECT_EQ(surface.meta().version_major, 5);
  EXPECT_EQ(surface.meta().version_minor, 4);
  EXPECT_EQ(surface.meta().gcc_major, 9);
  EXPECT_EQ(surface.meta().flavor, "generic");
  EXPECT_EQ(surface.meta().arch, "x86");
  EXPECT_EQ(surface.meta().pointer_size, 8);
}

TEST(SurfaceExtractTest, ScriptedFunctionStatuses) {
  DependencySurface v54 = ExtractFor(KernelVersion(5, 4));
  // vfs_fsync: selectively inlined global with both caller kinds.
  const FunctionEntry* fsync = v54.FindFunction("vfs_fsync");
  ASSERT_NE(fsync, nullptr);
  EXPECT_TRUE(fsync->status.has_exact_symbol);
  EXPECT_TRUE(fsync->status.selectively_inlined);
  EXPECT_FALSE(fsync->status.fully_inlined);
  EXPECT_TRUE(fsync->status.external);
  EXPECT_EQ(fsync->status.CollisionClass(), "Unique Global");
  ASSERT_NE(fsync->btf_id, 0u);
  EXPECT_EQ(FuncDeclString(v54.btf(), fsync->btf_id),
            "int vfs_fsync(struct file *file, int datasync)");

  // blk_account_io_start at v5.4: two params, attachable.
  const FunctionEntry* acct = v54.FindFunction("blk_account_io_start");
  ASSERT_NE(acct, nullptr);
  EXPECT_TRUE(acct->status.has_exact_symbol);

  // get_order: duplicated header static.
  const FunctionEntry* order = v54.FindFunction("get_order");
  ASSERT_NE(order, nullptr);
  EXPECT_TRUE(order->status.duplicated);
  EXPECT_GE(order->instances.size(), 2u);
  EXPECT_EQ(order->status.CollisionClass(), "Static Duplication");

  // destroy_inodecache: name collision across filesystems.
  const FunctionEntry* cache_fn = v54.FindFunction("destroy_inodecache");
  ASSERT_NE(cache_fn, nullptr);
  EXPECT_TRUE(cache_fn->status.collided);
  EXPECT_EQ(cache_fn->status.CollisionClass(), "Static-Static Collision");
}

TEST(SurfaceExtractTest, FullInlineAppearsInNewKernels) {
  DependencySurface v62 = ExtractFor(KernelVersion(6, 2));
  const FunctionEntry* acct = v62.FindFunction("blk_account_io_start");
  ASSERT_NE(acct, nullptr);
  EXPECT_TRUE(acct->status.fully_inlined);
  EXPECT_FALSE(acct->status.has_exact_symbol);
  EXPECT_TRUE(acct->symbols.empty());
  // The worker is fully inlined too (the failed first fix).
  const FunctionEntry* worker = v62.FindFunction("__blk_account_io_start");
  ASSERT_NE(worker, nullptr);
  EXPECT_TRUE(worker->status.fully_inlined);
  // And __blk_account_io_done remains attachable out of line.
  const FunctionEntry* done = v62.FindFunction("__blk_account_io_done");
  ASSERT_NE(done, nullptr);
  EXPECT_TRUE(done->status.has_exact_symbol);
  EXPECT_FALSE(done->status.fully_inlined);
}

TEST(SurfaceExtractTest, StatusJsonShape) {
  DependencySurface v54 = ExtractFor(KernelVersion(5, 4));
  const FunctionEntry* fsync = v54.FindFunction("vfs_fsync");
  ASSERT_NE(fsync, nullptr);
  std::string json = fsync->StatusJson();
  EXPECT_NE(json.find("\"collision_type\": \"Unique Global\""), std::string::npos);
  EXPECT_NE(json.find("\"inline_type\": \"Partially inlined\""), std::string::npos);
  EXPECT_NE(json.find("caller_inline"), std::string::npos);
  EXPECT_NE(json.find("fs/aio.c:aio_fsync_work"), std::string::npos);
  EXPECT_NE(json.find("\"bind\": \"STB_GLOBAL\""), std::string::npos);
}

TEST(SurfaceExtractTest, StructsExtracted) {
  DependencySurface v54 = ExtractFor(KernelVersion(5, 4));
  auto request = v54.FindStruct("request");
  ASSERT_TRUE(request.has_value());
  const BtfType* st = v54.btf().Get(*request);
  bool has_rq_disk = false;
  for (const BtfMember& m : st->members) {
    has_rq_disk |= m.name == "rq_disk";
  }
  EXPECT_TRUE(has_rq_disk);
  EXPECT_TRUE(v54.FindStruct("task_struct").has_value());
  EXPECT_TRUE(v54.FindStruct("pt_regs").has_value());
  // Tracepoint machinery structs are not part of the struct surface.
  for (const auto& [name, id] : v54.structs()) {
    (void)id;
    EXPECT_EQ(name.find("trace_event_raw_"), std::string::npos);
  }
}

TEST(SurfaceExtractTest, TracepointsViaDataSections) {
  DependencySurface v54 = ExtractFor(KernelVersion(5, 4));
  const TracepointEntry* rq = v54.FindTracepoint("block_rq_issue");
  ASSERT_NE(rq, nullptr);
  EXPECT_EQ(rq->class_name, "block_rq");
  EXPECT_EQ(rq->func_name, "trace_event_raw_event_block_rq");
  EXPECT_EQ(rq->struct_name, "trace_event_raw_block_rq");
  EXPECT_NE(rq->struct_btf_id, 0u);
  EXPECT_NE(rq->func_btf_id, 0u);
  EXPECT_FALSE(rq->fmt.empty());
  // block_io_start only exists from v6.5.
  EXPECT_EQ(v54.FindTracepoint("block_io_start"), nullptr);
  DependencySurface v65 = ExtractFor(KernelVersion(6, 5));
  EXPECT_NE(v65.FindTracepoint("block_io_start"), nullptr);
}

TEST(SurfaceExtractTest, SyscallsViaSysCallTable) {
  DependencySurface v54 = ExtractFor(KernelVersion(5, 4));
  EXPECT_TRUE(v54.HasSyscall("openat"));
  EXPECT_TRUE(v54.HasSyscall("fsync"));
  EXPECT_TRUE(v54.HasSyscall("clone3"));
  EXPECT_FALSE(v54.HasSyscall("openat2"));  // 5.8 addition
  EXPECT_GT(v54.syscalls().size(), 290u);
  // Numbers are recovered from table slots.
  EXPECT_EQ(v54.syscalls().at("read").nr, 0);
  EXPECT_EQ(v54.syscalls().at("write").nr, 1);
}

TEST(SurfaceExtractTest, ArchSurfacesDiffer) {
  DependencySurface arm64 = ExtractFor(KernelVersion(5, 4), Arch::kArm64);
  EXPECT_EQ(arm64.meta().arch, "arm64");
  EXPECT_FALSE(arm64.HasSyscall("open"));  // legacy-only
  EXPECT_TRUE(arm64.HasSyscall("openat"));
  auto pt_regs = arm64.FindStruct("pt_regs");
  ASSERT_TRUE(pt_regs.has_value());
  EXPECT_EQ(arm64.btf().Get(*pt_regs)->members[0].name, "regs");

  // arm32: ELF32 little endian, and __page_cache_alloc is duplicated +
  // fully inlined (the !CONFIG_NUMA case from Figure 4).
  DependencySurface arm32 = ExtractFor(KernelVersion(5, 4), Arch::kArm32);
  EXPECT_EQ(arm32.meta().pointer_size, 4);
  const FunctionEntry* alloc = arm32.FindFunction("__page_cache_alloc");
  ASSERT_NE(alloc, nullptr);
  EXPECT_TRUE(alloc->status.fully_inlined);
  EXPECT_GE(alloc->instances.size(), 2u);

  // ppc: big-endian data sections still parse.
  DependencySurface ppc = ExtractFor(KernelVersion(5, 4), Arch::kPpc);
  EXPECT_EQ(ppc.meta().endian, Endian::kBig);
  EXPECT_GT(ppc.tracepoints().size(), 0u);
  EXPECT_GT(ppc.syscalls().size(), 200u);
}

TEST(SurfaceExtractTest, SpecialFunctionsLsmAndKfuncs) {
  DependencySurface v44 = ExtractFor(KernelVersion(4, 4));
  DependencySurface v68 = ExtractFor(KernelVersion(6, 8));
  auto count_lsm = [](const DependencySurface& s) {
    size_t n = 0;
    for (const auto& [name, entry] : s.functions()) {
      (void)entry;
      n += DependencySurface::IsLsmHook(name) ? 1 : 0;
    }
    return n;
  };
  // ~140 hooks at v4.4, growing ~9% per LTS (plus scripted security_*).
  size_t lsm44 = count_lsm(v44);
  size_t lsm68 = count_lsm(v68);
  EXPECT_GT(lsm44, 120u);
  EXPECT_GT(lsm68, lsm44);
  // kfuncs only exist from v5.8 and are registered via .BTF_ids.
  EXPECT_TRUE(v44.kfuncs().empty());
  EXPECT_GT(v68.kfuncs().size(), 50u);
  for (const std::string& name : v68.kfuncs()) {
    EXPECT_TRUE(name.rfind("bpf_", 0) == 0) << name;
  }
  // The scripted removed kfunc exists at 6.2 but not 6.8 (f85671c-style).
  DependencySurface v62 = ExtractFor(KernelVersion(6, 2));
  EXPECT_TRUE(v62.kfuncs().count("bpf_ct_set_timeout"));
  EXPECT_FALSE(v68.kfuncs().count("bpf_ct_set_timeout"));
}

TEST(SurfaceExtractTest, DegradesGracefullyWithoutDebugInfo) {
  // Strip the DWARF sections out of a generated image by rebuilding the
  // ELF without them, like a distro kernel without dbgsym.
  KernelModel model(kSeed, kScale, BuildCuratedCatalog());
  auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4)));
  ASSERT_TRUE(kernel.ok());
  auto bytes = BuildKernelImage(CompileKernel(kSeed, kernel.TakeValue()));
  ASSERT_TRUE(bytes.ok());
  auto full = ElfReader::Parse(*bytes);
  ASSERT_TRUE(full.ok());
  ElfWriter stripped(full->ident());
  for (const ElfSectionView& section : full->sections()) {
    if (section.type == SectionType::kNull || section.name == ".shstrtab" ||
        section.name == ".symtab" || section.name == ".strtab" ||
        section.name.find(".sdwarf") == 0) {
      continue;
    }
    auto data = full->SectionData(section);
    ASSERT_TRUE(data.ok());
    auto body = data->ReadBytes(data->size());
    ASSERT_TRUE(body.ok());
    stripped.AddSection(section.name, section.type, body.TakeValue(), section.addr,
                        section.flags, section.entsize);
  }
  for (const ElfSymbol& sym : full->symbols()) {
    stripped.AddSymbol(sym);
  }
  auto stripped_bytes = stripped.Finish();
  ASSERT_TRUE(stripped_bytes.ok());

  auto surface = DependencySurface::Extract(stripped_bytes.TakeValue());
  ASSERT_TRUE(surface.ok()) << surface.error().ToString();
  EXPECT_FALSE(surface->meta().has_debug_info);
  // Declarations survive via BTF; status is symbol-table-only.
  const FunctionEntry* fsync = surface->FindFunction("vfs_fsync");
  ASSERT_NE(fsync, nullptr);
  EXPECT_TRUE(fsync->status.has_exact_symbol);
  EXPECT_FALSE(fsync->status.selectively_inlined);  // undetectable without DWARF
  ASSERT_NE(fsync->btf_id, 0u);
  // Tracepoints and syscalls are unaffected (data sections + symtab).
  EXPECT_NE(surface->FindTracepoint("block_rq_issue"), nullptr);
  EXPECT_TRUE(surface->HasSyscall("openat"));
  // A fully-inlined BTF function with no symbol is still flagged.
  int inlined = 0;
  for (const auto& [name, entry] : surface->functions()) {
    (void)name;
    inlined += entry.status.fully_inlined ? 1 : 0;
  }
  EXPECT_GT(inlined, 0);
}

TEST(SurfaceExtractTest, RejectsGarbageImages) {
  EXPECT_FALSE(DependencySurface::Extract({}).ok());
  EXPECT_FALSE(DependencySurface::Extract(std::vector<uint8_t>(4096, 0xab)).ok());
}

TEST(SurfaceExtractTest, TransformedFunctionDetected) {
  // __page_cache_alloc carries a forced constprop transform on gcc>=8
  // builds before v5.16.
  DependencySurface v54 = ExtractFor(KernelVersion(5, 4));
  const FunctionEntry* alloc = v54.FindFunction("__page_cache_alloc");
  ASSERT_NE(alloc, nullptr);
  EXPECT_TRUE(alloc->status.transformed);
  EXPECT_FALSE(alloc->status.has_exact_symbol);
  EXPECT_EQ(alloc->status.transform_suffix, ".constprop.0");
  // At v4.4 (gcc 5) the transform does not fire.
  DependencySurface v44 = ExtractFor(KernelVersion(4, 4));
  const FunctionEntry* alloc44 = v44.FindFunction("__page_cache_alloc");
  ASSERT_NE(alloc44, nullptr);
  EXPECT_FALSE(alloc44->status.transformed);
  EXPECT_TRUE(alloc44->status.has_exact_symbol);
}

}  // namespace
}  // namespace depsurf
