// Tests of the 53-program corpus: Table 7 reproduction end to end, through
// binary images and binary eBPF objects.
#include <gtest/gtest.h>

#include "src/bpfgen/program_corpus.h"
#include "src/bpfgen/table7.h"
#include "src/core/depsurf.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"

namespace depsurf {
namespace {

constexpr uint64_t kSeed = 2025;
// Program-corpus tests depend only on scripted constructs, so the
// background population can be tiny.
constexpr double kScale = 0.002;

class ProgramCorpusFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new ProgramCorpus(BuildProgramCorpus());
    KernelModel model(kSeed, kScale, BuildStudyCatalog());
    dataset_ = new Dataset();
    for (const BuildSpec& build : DependencyAnalysisCorpus()) {
      auto kernel = model.Configure(build);
      ASSERT_TRUE(kernel.ok());
      auto bytes = BuildKernelImage(CompileKernel(kSeed, kernel.TakeValue()));
      ASSERT_TRUE(bytes.ok());
      auto surface = DependencySurface::Extract(bytes.TakeValue());
      ASSERT_TRUE(surface.ok()) << surface.error().ToString();
      dataset_->AddImage(build.Label(), *surface);
    }
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete dataset_;
    corpus_ = nullptr;
    dataset_ = nullptr;
  }

  static ProgramReport Analyze(const BpfObject& object) {
    // Round-trip through object bytes, as DepSurf does.
    auto bytes = WriteBpfObject(object);
    EXPECT_TRUE(bytes.ok());
    auto parsed = ParseBpfObject(bytes.TakeValue());
    EXPECT_TRUE(parsed.ok()) << parsed.error().ToString();
    auto deps = ExtractDependencySet(*parsed);
    EXPECT_TRUE(deps.ok()) << deps.error().ToString();
    return AnalyzeProgram(*dataset_, *deps);
  }

  static ProgramCorpus* corpus_;
  static Dataset* dataset_;
};

ProgramCorpus* ProgramCorpusFixture::corpus_ = nullptr;
Dataset* ProgramCorpusFixture::dataset_ = nullptr;

TEST_F(ProgramCorpusFixture, CorpusShape) {
  EXPECT_EQ(corpus_->objects.size(), 53u);
  EXPECT_EQ(Table7Programs().size(), 53u);
  for (size_t i = 0; i < corpus_->objects.size(); ++i) {
    EXPECT_EQ(corpus_->objects[i].name, Table7Programs()[i].name);
  }
}

TEST_F(ProgramCorpusFixture, DependencyTotalsMatchTable7) {
  for (size_t i = 0; i < corpus_->objects.size(); ++i) {
    const ProgramSpec& spec = Table7Programs()[i];
    auto deps = ExtractDependencySet(corpus_->objects[i]);
    ASSERT_TRUE(deps.ok()) << spec.name;
    EXPECT_EQ(static_cast<int>(deps->NumFuncs()), spec.funcs.total) << spec.name;
    EXPECT_EQ(static_cast<int>(deps->NumStructs()), spec.structs.total) << spec.name;
    EXPECT_EQ(static_cast<int>(deps->NumFields()), spec.fields.total) << spec.name;
    EXPECT_EQ(static_cast<int>(deps->NumTracepoints()), spec.tracepoints.total) << spec.name;
    if (spec.name != "tracee") {
      EXPECT_EQ(static_cast<int>(deps->NumSyscalls()), spec.syscalls.total) << spec.name;
    } else {
      EXPECT_GE(static_cast<int>(deps->NumSyscalls()), 400) << spec.name;
    }
  }
}

TEST_F(ProgramCorpusFixture, MismatchCountsMatchTable7) {
  int mismatched_programs = 0;
  for (size_t i = 0; i < corpus_->objects.size(); ++i) {
    const ProgramSpec& spec = Table7Programs()[i];
    ProgramReport report = Analyze(corpus_->objects[i]);
    EXPECT_EQ(report.funcs.absent, spec.funcs.absent) << spec.name;
    EXPECT_EQ(report.funcs.changed, spec.funcs.changed) << spec.name;
    EXPECT_EQ(report.funcs.full_inline, spec.funcs.full_inline) << spec.name;
    EXPECT_EQ(report.funcs.selective, spec.funcs.selective) << spec.name;
    EXPECT_EQ(report.funcs.transformed, spec.funcs.transformed) << spec.name;
    EXPECT_EQ(report.funcs.duplicated, spec.funcs.duplicated) << spec.name;
    EXPECT_EQ(report.structs.absent, spec.structs.absent) << spec.name;
    EXPECT_EQ(report.fields.absent, spec.fields.absent) << spec.name;
    EXPECT_EQ(report.fields.changed, spec.fields.changed) << spec.name;
    EXPECT_EQ(report.tracepoints.absent, spec.tracepoints.absent) << spec.name;
    EXPECT_EQ(report.tracepoints.changed, spec.tracepoints.changed) << spec.name;
    if (spec.name != "tracee") {
      EXPECT_EQ(report.syscalls.absent, spec.syscalls.absent) << spec.name;
    }
    if (report.AnyMismatch()) {
      ++mismatched_programs;
    }
    EXPECT_EQ(report.AnyMismatch(), !spec.ExpectClean()) << spec.name;
  }
  // The headline claim: 83% of the 53 programs are affected (44/53).
  EXPECT_EQ(mismatched_programs, 44);
}

TEST_F(ProgramCorpusFixture, CleanProgramsAreTheNine) {
  int clean = 0;
  for (const ProgramSpec& spec : Table7Programs()) {
    clean += spec.ExpectClean() ? 1 : 0;
  }
  EXPECT_EQ(clean, 9);  // "only 9 of the programs are free from mismatches"
}

TEST_F(ProgramCorpusFixture, BiotopMatrixTellsTheStory) {
  ProgramReport report = Analyze(corpus_->objects[3]);  // biotop row
  ASSERT_EQ(report.program, "biotop");
  std::string matrix = report.RenderMatrix();
  EXPECT_NE(matrix.find("blk_account_io_start"), std::string::npos);
  EXPECT_NE(matrix.find("block_io_start"), std::string::npos);
  EXPECT_NE(matrix.find("request::rq_disk"), std::string::npos);
  // Implication: missing invocations (selective inline) are the worst case.
  EXPECT_EQ(report.WorstImplication(), Implication::kIncompleteResult);
}

}  // namespace
}  // namespace depsurf
