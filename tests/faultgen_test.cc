// Unit tests for the deterministic fault-injection engine: mutations must
// be reproducible from (kind, seed, size), always change or shrink the
// buffer, and degrade gracefully on inputs too small to target precisely.
#include <gtest/gtest.h>

#include "src/elf/elf_writer.h"
#include "src/faultgen/fault_injector.h"
#include "src/util/prng.h"

namespace depsurf {
namespace {

std::vector<uint8_t> PatternedBuffer(size_t size) {
  std::vector<uint8_t> bytes(size);
  Prng prng(99);
  for (size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<uint8_t>(prng.NextU64());
  }
  return bytes;
}

// A minimal 64-bit LE ELF carrying the sections the structure-aware fault
// kinds target, with recognizable filler so damage is easy to attribute.
std::vector<uint8_t> SectionedElf() {
  ElfWriter writer(ElfIdent{ElfClass::k64, Endian::kLittle, ElfMachine::kX86_64});
  writer.AddSection(".sdwarf_info", SectionType::kProgbits,
                    std::vector<uint8_t>(256, 0x7f));
  std::vector<uint8_t> strtab = {0};
  for (const char* name : {"alpha", "beta", "gamma"}) {
    for (const char* p = name; *p != '\0'; ++p) {
      strtab.push_back(static_cast<uint8_t>(*p));
    }
    strtab.push_back(0);
  }
  writer.AddSection(".strtab", SectionType::kStrtab, strtab);
  // A .BTF.ext with header {magic, count=3, strlen=0} and three 20-byte
  // relocation records (five u32 fields each).
  std::vector<uint8_t> btf_ext;
  auto push_u32 = [&btf_ext](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      btf_ext.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  push_u32(0xeBF1);
  push_u32(3);
  push_u32(0);
  for (uint32_t r = 0; r < 3; ++r) {
    push_u32(100 + r);  // type_id
    push_u32(0);        // kind
    push_u32(8 * r);    // access_off
    push_u32(r);        // prog_index
    push_u32(16 * r);   // insn_off
  }
  writer.AddSection(".BTF.ext", SectionType::kProgbits, btf_ext);
  return writer.Finish().TakeValue();
}

TEST(FaultGenTest, KindNamesAndRoundRobin) {
  EXPECT_STREQ(FaultKindName(FaultKind::kByteFlip), "byte_flip");
  EXPECT_STREQ(FaultKindName(FaultKind::kZeroWindow), "zero_window");
  EXPECT_STREQ(FaultKindName(FaultKind::kSectionHeaderMutation), "section_header_mutation");
  EXPECT_STREQ(FaultKindName(FaultKind::kTruncate), "truncate");
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(FaultKindForIndex(i), static_cast<FaultKind>(i % kNumFaultKinds));
  }
}

TEST(FaultGenTest, SameSeedSameDamage) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    FaultKind kind = static_cast<FaultKind>(k);
    std::vector<uint8_t> a = PatternedBuffer(4096);
    std::vector<uint8_t> b = PatternedBuffer(4096);
    std::string da = ApplyFault(a, kind, 42);
    std::string db = ApplyFault(b, kind, 42);
    EXPECT_EQ(a, b) << FaultKindName(kind);
    EXPECT_EQ(da, db) << FaultKindName(kind);
  }
}

TEST(FaultGenTest, DifferentSeedsDiversify) {
  // Across a handful of seeds, at least two must damage differently.
  for (int k = 0; k < kNumFaultKinds; ++k) {
    FaultKind kind = static_cast<FaultKind>(k);
    std::vector<std::vector<uint8_t>> outcomes;
    for (uint64_t seed = 0; seed < 6; ++seed) {
      std::vector<uint8_t> bytes = PatternedBuffer(4096);
      ApplyFault(bytes, kind, seed);
      outcomes.push_back(std::move(bytes));
    }
    bool any_differ = false;
    for (size_t i = 1; i < outcomes.size(); ++i) {
      any_differ = any_differ || outcomes[i] != outcomes[0];
    }
    EXPECT_TRUE(any_differ) << FaultKindName(kind);
  }
}

TEST(FaultGenTest, EveryFaultActuallyDamages) {
  // Sweep well past the acceptance floor: for every (kind, seed) pair the
  // buffer must end up different (or shorter), never silently untouched.
  const std::vector<uint8_t> original = PatternedBuffer(8192);
  int mutations = 0;
  for (uint64_t seed = 0; seed < 24; ++seed) {
    for (int k = 0; k < kNumFaultKinds; ++k) {
      std::vector<uint8_t> bytes = original;
      std::string what = ApplyFault(bytes, static_cast<FaultKind>(k), seed);
      SCOPED_TRACE(what);
      EXPECT_FALSE(what.empty());
      EXPECT_TRUE(bytes != original || bytes.size() != original.size());
      EXPECT_FALSE(bytes.empty());  // truncation keeps at least one byte
      ++mutations;
    }
  }
  EXPECT_GE(mutations, 64);
}

TEST(FaultGenTest, TinyBuffersDegradeGracefully) {
  // Too small for an ELF header: section mutation falls back to a flip.
  std::vector<uint8_t> tiny = {0x7f, 'E', 'L', 'F'};
  std::string what = ApplyFault(tiny, FaultKind::kSectionHeaderMutation, 3);
  EXPECT_EQ(tiny.size(), 4u);
  EXPECT_NE(what.find("byte_flip"), std::string::npos);

  std::vector<uint8_t> one = {0xab};
  ApplyFault(one, FaultKind::kTruncate, 5);
  EXPECT_EQ(one.size(), 1u);

  std::vector<uint8_t> empty;
  std::string on_empty = ApplyFault(empty, FaultKind::kByteFlip, 1);
  EXPECT_TRUE(empty.empty());
  EXPECT_NE(on_empty.find("nothing to damage"), std::string::npos);
}

TEST(FaultGenTest, StructureAwareKindsHitTheirSections) {
  // On an ELF that carries the target sections, each structure-aware kind
  // must land inside its section (named in the description) instead of
  // degrading to a blind flip.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    std::vector<uint8_t> bytes = SectionedElf();
    std::string what = ApplyFault(bytes, FaultKind::kLeb128Corrupt, seed);
    EXPECT_NE(what.find("leb128_corrupt"), std::string::npos) << what;
    EXPECT_NE(what.find(".sdwarf"), std::string::npos) << what;

    bytes = SectionedElf();
    what = ApplyFault(bytes, FaultKind::kStringTableSplice, seed);
    EXPECT_NE(what.find("string_table_splice"), std::string::npos) << what;
    EXPECT_NE(what.find(".strtab"), std::string::npos) << what;

    bytes = SectionedElf();
    what = ApplyFault(bytes, FaultKind::kRelocRecordMutation, seed);
    EXPECT_NE(what.find("reloc_record_mutation"), std::string::npos) << what;
    EXPECT_NE(what.find("record"), std::string::npos) << what;

    bytes = SectionedElf();
    what = ApplyFault(bytes, FaultKind::kBtfExtScramble, seed);
    EXPECT_NE(what.find("btf_ext_scramble"), std::string::npos) << what;
    EXPECT_NE(what.find("records"), std::string::npos) << what;
  }
}

TEST(FaultGenTest, StructureAwareKindsFallBackWithoutTargets) {
  // A non-ELF buffer has no sections to aim at: every structure-aware kind
  // must degrade to a byte flip rather than no-op or crash.
  for (FaultKind kind : {FaultKind::kLeb128Corrupt, FaultKind::kRelocRecordMutation,
                         FaultKind::kBtfExtScramble, FaultKind::kStringTableSplice}) {
    std::vector<uint8_t> bytes = PatternedBuffer(512);
    const std::vector<uint8_t> original = bytes;
    std::string what = ApplyFault(bytes, kind, 9);
    EXPECT_NE(what.find("byte_flip"), std::string::npos) << what;
    EXPECT_NE(bytes, original) << FaultKindName(kind);
  }
}

TEST(PoisonSectionHeaderTest, PoisonsNamedSection) {
  std::vector<uint8_t> bytes = SectionedElf();
  const std::vector<uint8_t> original = bytes;
  EXPECT_TRUE(PoisonSectionHeader(bytes, ".sdwarf_info"));
  EXPECT_NE(bytes, original);
  EXPECT_EQ(bytes.size(), original.size());  // surgical: header field only
}

TEST(PoisonSectionHeaderTest, RejectsNonElfInput) {
  std::vector<uint8_t> bytes = PatternedBuffer(1024);
  const std::vector<uint8_t> original = bytes;
  EXPECT_FALSE(PoisonSectionHeader(bytes, ".sdwarf_info"));
  EXPECT_EQ(bytes, original);  // untouched on failure

  std::vector<uint8_t> tiny = {0x7f, 'E', 'L', 'F'};
  EXPECT_FALSE(PoisonSectionHeader(tiny, ".sdwarf_info"));
  EXPECT_EQ(tiny.size(), 4u);
}

TEST(PoisonSectionHeaderTest, RejectsTruncatedSectionTable) {
  // Cut the file before the section header table (ElfWriter emits it at
  // the tail): the walk must fail cleanly and leave the prefix unmodified.
  std::vector<uint8_t> bytes = SectionedElf();
  bytes.resize(bytes.size() / 2);
  const std::vector<uint8_t> original = bytes;
  EXPECT_FALSE(PoisonSectionHeader(bytes, ".sdwarf_info"));
  EXPECT_EQ(bytes, original);
}

TEST(PoisonSectionHeaderTest, RejectsMissingSectionName) {
  std::vector<uint8_t> bytes = SectionedElf();
  const std::vector<uint8_t> original = bytes;
  EXPECT_FALSE(PoisonSectionHeader(bytes, ".no_such_section"));
  EXPECT_EQ(bytes, original);
}

TEST(FaultGenTest, ZeroWindowZeroesAWindow) {
  std::vector<uint8_t> bytes(1024, 0xff);
  ApplyFault(bytes, FaultKind::kZeroWindow, 11);
  size_t zeroed = 0;
  for (uint8_t b : bytes) {
    zeroed += b == 0 ? 1 : 0;
  }
  EXPECT_GT(zeroed, 0u);
  EXPECT_LE(zeroed, 512u);
}

}  // namespace
}  // namespace depsurf
