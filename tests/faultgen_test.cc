// Unit tests for the deterministic fault-injection engine: mutations must
// be reproducible from (kind, seed, size), always change or shrink the
// buffer, and degrade gracefully on inputs too small to target precisely.
#include <gtest/gtest.h>

#include "src/faultgen/fault_injector.h"
#include "src/util/prng.h"

namespace depsurf {
namespace {

std::vector<uint8_t> PatternedBuffer(size_t size) {
  std::vector<uint8_t> bytes(size);
  Prng prng(99);
  for (size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<uint8_t>(prng.NextU64());
  }
  return bytes;
}

TEST(FaultGenTest, KindNamesAndRoundRobin) {
  EXPECT_STREQ(FaultKindName(FaultKind::kByteFlip), "byte_flip");
  EXPECT_STREQ(FaultKindName(FaultKind::kZeroWindow), "zero_window");
  EXPECT_STREQ(FaultKindName(FaultKind::kSectionHeaderMutation), "section_header_mutation");
  EXPECT_STREQ(FaultKindName(FaultKind::kTruncate), "truncate");
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(FaultKindForIndex(i), static_cast<FaultKind>(i % kNumFaultKinds));
  }
}

TEST(FaultGenTest, SameSeedSameDamage) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    FaultKind kind = static_cast<FaultKind>(k);
    std::vector<uint8_t> a = PatternedBuffer(4096);
    std::vector<uint8_t> b = PatternedBuffer(4096);
    std::string da = ApplyFault(a, kind, 42);
    std::string db = ApplyFault(b, kind, 42);
    EXPECT_EQ(a, b) << FaultKindName(kind);
    EXPECT_EQ(da, db) << FaultKindName(kind);
  }
}

TEST(FaultGenTest, DifferentSeedsDiversify) {
  // Across a handful of seeds, at least two must damage differently.
  for (int k = 0; k < kNumFaultKinds; ++k) {
    FaultKind kind = static_cast<FaultKind>(k);
    std::vector<std::vector<uint8_t>> outcomes;
    for (uint64_t seed = 0; seed < 6; ++seed) {
      std::vector<uint8_t> bytes = PatternedBuffer(4096);
      ApplyFault(bytes, kind, seed);
      outcomes.push_back(std::move(bytes));
    }
    bool any_differ = false;
    for (size_t i = 1; i < outcomes.size(); ++i) {
      any_differ = any_differ || outcomes[i] != outcomes[0];
    }
    EXPECT_TRUE(any_differ) << FaultKindName(kind);
  }
}

TEST(FaultGenTest, EveryFaultActuallyDamages) {
  // Sweep well past the acceptance floor: for every (kind, seed) pair the
  // buffer must end up different (or shorter), never silently untouched.
  const std::vector<uint8_t> original = PatternedBuffer(8192);
  int mutations = 0;
  for (uint64_t seed = 0; seed < 24; ++seed) {
    for (int k = 0; k < kNumFaultKinds; ++k) {
      std::vector<uint8_t> bytes = original;
      std::string what = ApplyFault(bytes, static_cast<FaultKind>(k), seed);
      SCOPED_TRACE(what);
      EXPECT_FALSE(what.empty());
      EXPECT_TRUE(bytes != original || bytes.size() != original.size());
      EXPECT_FALSE(bytes.empty());  // truncation keeps at least one byte
      ++mutations;
    }
  }
  EXPECT_GE(mutations, 64);
}

TEST(FaultGenTest, TinyBuffersDegradeGracefully) {
  // Too small for an ELF header: section mutation falls back to a flip.
  std::vector<uint8_t> tiny = {0x7f, 'E', 'L', 'F'};
  std::string what = ApplyFault(tiny, FaultKind::kSectionHeaderMutation, 3);
  EXPECT_EQ(tiny.size(), 4u);
  EXPECT_NE(what.find("byte_flip"), std::string::npos);

  std::vector<uint8_t> one = {0xab};
  ApplyFault(one, FaultKind::kTruncate, 5);
  EXPECT_EQ(one.size(), 1u);

  std::vector<uint8_t> empty;
  std::string on_empty = ApplyFault(empty, FaultKind::kByteFlip, 1);
  EXPECT_TRUE(empty.empty());
  EXPECT_NE(on_empty.find("nothing to damage"), std::string::npos);
}

TEST(FaultGenTest, ZeroWindowZeroesAWindow) {
  std::vector<uint8_t> bytes(1024, 0xff);
  ApplyFault(bytes, FaultKind::kZeroWindow, 11);
  size_t zeroed = 0;
  for (uint8_t b : bytes) {
    zeroed += b == 0 ? 1 : 0;
  }
  EXPECT_GT(zeroed, 0u);
  EXPECT_LE(zeroed, 512u);
}

}  // namespace
}  // namespace depsurf
