#include <gtest/gtest.h>

#include "src/util/str_util.h"
#include "src/util/table.h"

namespace depsurf {
namespace {

TEST(StrUtilTest, SplitJoin) {
  auto parts = SplitString("kprobe/do_unlinkat", '/');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "kprobe");
  EXPECT_EQ(parts[1], "do_unlinkat");
  EXPECT_EQ(JoinStrings(parts, "/"), "kprobe/do_unlinkat");

  auto empties = SplitString("a::b:", ':');
  ASSERT_EQ(empties.size(), 4u);
  EXPECT_EQ(empties[1], "");
  EXPECT_EQ(empties[3], "");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("tracepoint/block/rq_issue", "tracepoint/"));
  EXPECT_FALSE(StartsWith("tp/x", "tracepoint/"));
  EXPECT_TRUE(EndsWith("vfs_fsync.isra.0", ".isra.0"));
  EXPECT_FALSE(EndsWith("x", "long_suffix"));
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "count", 42), "count=42");
  EXPECT_EQ(StrFormat("%.1f%%", 12.34), "12.3%");
}

TEST(StrUtilTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(36000), "36.0k");
  EXPECT_EQ(FormatCount(6200), "6.2k");
  EXPECT_EQ(FormatCount(150000), "150k");
}

TEST(StrUtilTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.24), "24%");
  EXPECT_EQ(FormatPercent(0.004), "0.4%");
  EXPECT_EQ(FormatPercent(0.0), "0%");
  EXPECT_EQ(FormatPercent(1.0), "100%");
}

TEST(TextTableTest, RenderAlignsColumns) {
  TextTable t({"name", "count"});
  t.AddRow({"functions", "36000"});
  t.AddRow({"structs", "6200"});
  t.AddSeparator();
  t.AddRow({"total", "42200"});
  std::string out = t.Render();
  EXPECT_NE(out.find("functions  36000"), std::string::npos);
  // Right-aligned second column: "structs" row should pad the number.
  EXPECT_NE(out.find("structs     6200"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 4u);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"x"});
  std::string out = t.Render();
  EXPECT_NE(out.find('x'), std::string::npos);
}

}  // namespace
}  // namespace depsurf
