// Tests for the observability layer: span nesting and ordering, histogram
// bucket boundaries, counter thread-safety (raw and under a concurrent
// BuildDataset), and the golden run-report schema with timings masked.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/context.h"
#include "src/obs/diagnostics.h"
#include "src/obs/json_lint.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/run_report.h"
#include "src/obs/span.h"
#include "src/obs/trace_export.h"
#include "src/study/study.h"

namespace depsurf {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(obs::Histogram::BucketIndex(~uint64_t{0}), 64u);

  EXPECT_EQ(obs::Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(obs::Histogram::BucketLowerBound(11), 1024u);

  // Every bucket's lower bound must land back in that bucket.
  for (size_t i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(obs::Histogram::BucketIndex(obs::Histogram::BucketLowerBound(i)), i) << i;
  }
}

TEST(HistogramTest, RecordAccumulates) {
  obs::Histogram h;
  for (uint64_t v : {0, 1, 2, 3, 4, 1000}) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(3), 1u);  // 4
  EXPECT_EQ(h.bucket(10), 1u);  // 1000
}

TEST(HistogramTest, PercentileExactBucketZero) {
  obs::Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);  // empty histogram
  h.Record(0);
  h.Record(0);
  // Everything sits in the zero bucket: every percentile is exactly 0.
  EXPECT_DOUBLE_EQ(h.Percentile(0.01), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.0);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  obs::Histogram h;
  h.Record(4);  // bucket [4, 8): a single sample
  // Linear interpolation across the bucket: p50 is its midpoint, p100 its
  // exclusive upper bound.
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 6.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 8.0);

  obs::Histogram mixed;
  mixed.Record(0);
  mixed.Record(0);
  mixed.Record(1);
  mixed.Record(1);
  // Half the mass is at 0; the rest interpolates through [1, 2).
  EXPECT_DOUBLE_EQ(mixed.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(mixed.Percentile(0.75), 1.5);
  // Out-of-range quantiles clamp instead of misbehaving.
  EXPECT_DOUBLE_EQ(mixed.Percentile(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(mixed.Percentile(2.0), 2.0);
}

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  obs::MetricsRegistry registry;
  registry.Incr("a.count");
  registry.Incr("a.count", 4);
  registry.Set("a.gauge", -7);
  registry.Record("a.hist", 9);
  EXPECT_EQ(registry.Counter("a.count")->load(), 5u);
  EXPECT_EQ(registry.Gauge("a.gauge")->load(), -7);
  EXPECT_EQ(registry.GetHistogram("a.hist")->count(), 1u);

  // Reset zeroes values but keeps entries and pointer identity.
  std::atomic<uint64_t>* counter = registry.Counter("a.count");
  registry.Reset();
  EXPECT_EQ(counter, registry.Counter("a.count"));
  EXPECT_EQ(counter->load(), 0u);
  auto counters = registry.CounterSnapshot();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "a.count");
}

TEST(MetricsRegistryTest, SnapshotsAreSorted) {
  obs::MetricsRegistry registry;
  registry.Incr("z.last");
  registry.Incr("a.first");
  registry.Incr("m.middle");
  auto counters = registry.CounterSnapshot();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].first, "a.first");
  EXPECT_EQ(counters[1].first, "m.middle");
  EXPECT_EQ(counters[2].first, "z.last");
}

TEST(MetricsRegistryTest, ConcurrentIncrementsDontLose) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIncrs; ++i) {
        registry.Incr("contended.counter");
        registry.Record("contended.hist", static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.Counter("contended.counter")->load(),
            static_cast<uint64_t>(kThreads) * kIncrs);
  EXPECT_EQ(registry.GetHistogram("contended.hist")->count(),
            static_cast<uint64_t>(kThreads) * kIncrs);
}

TEST(MetricsRegistryTest, TimingNameConvention) {
  EXPECT_TRUE(obs::IsTimingMetricName("study.build_dataset.wall_ms"));
  EXPECT_TRUE(obs::IsTimingMetricName("x.dur_ns"));
  EXPECT_TRUE(obs::IsTimingMetricName("stage_us"));
  EXPECT_TRUE(obs::IsTimingMetricName("total_seconds"));
  EXPECT_FALSE(obs::IsTimingMetricName("elf.bytes_parsed"));
  EXPECT_FALSE(obs::IsTimingMetricName("ms"));
  EXPECT_FALSE(obs::IsTimingMetricName("surface.functions"));
}

TEST(SpanTest, NestingAndOrdering) {
  obs::SpanCollector::Global().Clear();
  {
    obs::ScopedSpan root("test.root");
    root.AddAttr("k", "v");
    EXPECT_EQ(root.depth(), 0);
    {
      obs::ScopedSpan child1("test.child1");
      EXPECT_EQ(child1.depth(), 1);
      obs::ScopedSpan grandchild("test.grandchild");
      EXPECT_EQ(grandchild.depth(), 2);
    }
    { obs::ScopedSpan child2("test.child2"); }
  }
  std::vector<obs::SpanNode> roots = obs::SpanCollector::Global().Snapshot();
  ASSERT_EQ(roots.size(), 1u);
  const obs::SpanNode& root = roots[0];
  EXPECT_EQ(root.name, "test.root");
  ASSERT_EQ(root.attrs.size(), 1u);
  EXPECT_EQ(root.attrs[0].first, "k");
  ASSERT_EQ(root.children.size(), 2u);  // finish order: child1 then child2
  EXPECT_EQ(root.children[0].name, "test.child1");
  EXPECT_EQ(root.children[1].name, "test.child2");
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "test.grandchild");
  EXPECT_TRUE(root.children[1].children.empty());
  obs::SpanCollector::Global().Clear();
}

TEST(SpanTest, SiblingRootsCollectInFinishOrder) {
  obs::SpanCollector::Global().Clear();
  { obs::ScopedSpan a("test.a"); }
  { obs::ScopedSpan b("test.b"); }
  std::vector<obs::SpanNode> roots = obs::SpanCollector::Global().Snapshot();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].name, "test.a");
  EXPECT_EQ(roots[1].name, "test.b");
  obs::SpanCollector::Global().Clear();
}

TEST(SpanTest, ThreadsKeepIndependentStacks) {
  obs::SpanCollector::Global().Clear();
  obs::ScopedSpan main_span("test.main");
  std::thread worker([] {
    // Opened on another thread: not a child of test.main, becomes a root.
    obs::ScopedSpan worker_span("test.worker");
    EXPECT_EQ(worker_span.depth(), 0);
  });
  worker.join();
  std::vector<obs::SpanNode> roots = obs::SpanCollector::Global().Snapshot();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "test.worker");
  obs::SpanCollector::Global().Clear();
}

TEST(SpanTest, ScopedSpanRecordsStartAndThreadId) {
  obs::SpanCollector::Global().Clear();
  { obs::ScopedSpan span("test.timed"); }
  uint32_t worker_tid = 0;
  std::thread worker([&worker_tid] {
    obs::ScopedSpan span("test.worker_timed");
    worker_tid = obs::ThreadTraceId();
  });
  worker.join();
  std::vector<obs::SpanNode> roots = obs::SpanCollector::Global().Snapshot();
  ASSERT_EQ(roots.size(), 2u);
  for (const obs::SpanNode& root : roots) {
    EXPECT_GT(root.start_ns, 0u) << root.name;
    EXPECT_GT(root.tid, 0u) << root.name;
  }
  // The worker thread gets its own trace id, distinct from this thread's.
  EXPECT_NE(worker_tid, obs::ThreadTraceId());
  obs::SpanCollector::Global().Clear();
}

TEST(SpanTest, MaskedCompareOrdersByNameAttrsAndChildren) {
  obs::SpanNode a;
  a.name = "alpha";
  obs::SpanNode b;
  b.name = "beta";
  EXPECT_LT(obs::CompareSpanNodesMasked(a, b), 0);
  EXPECT_GT(obs::CompareSpanNodesMasked(b, a), 0);

  // Timing-named attrs compare by key only: two runs of the same build
  // differ only in wall time, and must sort identically.
  obs::SpanNode t1;
  t1.name = "same";
  t1.attrs = {{"label", "v5.4"}, {"wall_ms", "10"}};
  obs::SpanNode t2 = t1;
  t2.attrs[1].second = "99";
  EXPECT_EQ(obs::CompareSpanNodesMasked(t1, t2), 0);

  // Non-timing attr values do participate.
  t2.attrs[0].second = "v6.8";
  EXPECT_LT(obs::CompareSpanNodesMasked(t1, t2), 0);

  // Children break ties between otherwise identical parents.
  obs::SpanNode p1;
  p1.name = "parent";
  obs::SpanNode p2 = p1;
  obs::SpanNode child;
  child.name = "child";
  p2.children.push_back(child);
  EXPECT_LT(obs::CompareSpanNodesMasked(p1, p2), 0);  // fewer children first
  p1.children.push_back(child);
  EXPECT_EQ(obs::CompareSpanNodesMasked(p1, p2), 0);
}

TEST(TraceExportTest, EveryNodeBecomesOneOrderedEvent) {
  obs::SpanNode r1;
  r1.name = "r1";
  r1.start_ns = 1000;
  r1.dur_ns = 5000;
  r1.tid = 1;
  r1.attrs = {{"k", "v"}};
  obs::SpanNode c1;
  c1.name = "c1";
  c1.start_ns = 2000;
  c1.dur_ns = 1000;
  c1.tid = 1;
  r1.children.push_back(c1);
  obs::SpanNode r2;
  r2.name = "r2";
  r2.start_ns = 1500;
  r2.dur_ns = 2000;
  r2.tid = 2;
  std::vector<obs::SpanNode> roots = {r1, r2};
  EXPECT_EQ(obs::CountSpanNodes(roots), 3u);

  auto trace = obs::ParseJson(obs::TraceEventJson(roots));
  ASSERT_TRUE(trace.ok()) << trace.error().ToString();
  // Metadata (thread_name) events don't count toward the span cross-check.
  EXPECT_TRUE(obs::ValidateTrace(*trace, 3).ok());
  EXPECT_FALSE(obs::ValidateTrace(*trace, 4).ok());  // count cross-check bites

  const obs::JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // One "M" thread_name event per distinct tid leads the array, then the
  // three "X" complete events.
  ASSERT_EQ(events->array.size(), 5u);
  EXPECT_EQ(events->array[0].Find("ph")->string, "M");
  EXPECT_DOUBLE_EQ(events->array[0].Find("tid")->number, 1.0);
  EXPECT_EQ(events->array[0].Find("args")->Find("name")->string, "worker-1");
  EXPECT_EQ(events->array[1].Find("ph")->string, "M");
  EXPECT_EQ(events->array[1].Find("args")->Find("name")->string, "worker-2");
  // X events sort by start time, rebased so the earliest is ts=0; tid is
  // the recording thread's trace id.
  EXPECT_EQ(events->array[2].Find("name")->string, "r1");
  EXPECT_DOUBLE_EQ(events->array[2].Find("ts")->number, 0.0);
  EXPECT_DOUBLE_EQ(events->array[2].Find("dur")->number, 5.0);
  EXPECT_EQ(events->array[3].Find("name")->string, "r2");
  EXPECT_DOUBLE_EQ(events->array[3].Find("ts")->number, 0.5);
  EXPECT_DOUBLE_EQ(events->array[3].Find("tid")->number, 2.0);
  EXPECT_EQ(events->array[4].Find("name")->string, "c1");
  EXPECT_EQ(events->array[4].Find("args")->kind, obs::JsonValue::Kind::kObject);
  EXPECT_EQ(events->array[2].Find("args")->Find("k")->string, "v");
}

// The golden-schema test: a run report serialized with mask_timings is
// byte-stable — parses as JSON, carries exactly the five sections in order,
// and masks every timing field to zero.
TEST(RunReportTest, GoldenSchemaWithMaskedTimings) {
  obs::SpanCollector collector;
  obs::MetricsRegistry registry;
  obs::SpanNode root;
  root.name = "golden.root";
  root.dur_ns = 123456;
  root.cpu_ns = 100000;
  root.alloc_count = 5;
  root.alloc_bytes = 320;
  root.attrs = {{"label", "v5.4"}, {"wall_ms", "42"}};
  obs::SpanNode child;
  child.name = "golden.child";
  child.dur_ns = 999;
  root.children.push_back(child);
  collector.AddRoot(root);
  registry.Incr("golden.counter", 7);
  registry.Set("golden.gauge", -3);
  registry.Set("golden.wall_ms", 1234);
  registry.Record("golden.hist", 5);

  obs::RunReportOptions masked;
  masked.mask_timings = true;
  std::string json = RunReportJson(collector, registry, masked);

  EXPECT_EQ(json,
            "{\n"
            "\"schema\": \"depsurf.run_report.v1\",\n"
            "\"spans\": [{\"name\": \"golden.root\", \"dur_ns\": 0, "
            "\"cpu_ns\": 0, \"alloc_count\": 0, \"alloc_bytes\": 0, "
            "\"attrs\": {\"label\": \"v5.4\", \"wall_ms\": \"0\"}, \"children\": "
            "[{\"name\": \"golden.child\", \"dur_ns\": 0, \"cpu_ns\": 0, "
            "\"alloc_count\": 0, \"alloc_bytes\": 0, \"attrs\": {}, "
            "\"children\": []}]}],\n"
            "\"counters\": {\"golden.counter\": 7},\n"
            "\"gauges\": {\"golden.gauge\": -3, \"golden.wall_ms\": 0},\n"
            "\"histograms\": {\"golden.hist\": {\"count\": 1, \"sum\": 5, "
            "\"buckets\": [[4, 1]]}},\n"
            "\"diagnostics\": []\n"
            "}\n");

  // The masked document is identical across serializations and validates.
  EXPECT_EQ(json, RunReportJson(collector, registry, masked));
  EXPECT_TRUE(obs::ValidateRunReport(json, 2, {"golden.counter"}).ok());
  EXPECT_FALSE(obs::ValidateRunReport(json, 3).ok());  // only 2 distinct names
  EXPECT_FALSE(obs::ValidateRunReport(json, 0, {"missing.counter"}).ok());

  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  auto names = obs::CollectSpanNames(*parsed);
  EXPECT_EQ(names.size(), 2u);
  EXPECT_TRUE(names.count("golden.root"));
  EXPECT_TRUE(names.count("golden.child"));
}

TEST(RunReportTest, UnmaskedKeepsTimingsAndCanonMasksThem) {
  obs::SpanCollector collector;
  obs::MetricsRegistry registry;
  obs::SpanNode root;
  root.name = "t.root";
  root.dur_ns = 777;
  root.cpu_ns = 555;
  root.alloc_count = 3;
  root.alloc_bytes = 96;
  collector.AddRoot(root);
  registry.Set("t.wall_ms", 55);

  std::string unmasked = RunReportJson(collector, registry);
  EXPECT_NE(unmasked.find("\"dur_ns\": 777"), std::string::npos);
  EXPECT_NE(unmasked.find("\"cpu_ns\": 555"), std::string::npos);
  EXPECT_NE(unmasked.find("\"alloc_count\": 3"), std::string::npos);
  EXPECT_NE(unmasked.find("\"alloc_bytes\": 96"), std::string::npos);
  EXPECT_NE(unmasked.find("\"t.wall_ms\": 55"), std::string::npos);

  // Canonicalization masks the same fields masked serialization does.
  auto parsed = obs::ParseJson(unmasked);
  ASSERT_TRUE(parsed.ok());
  obs::RunReportOptions masked_options;
  masked_options.mask_timings = true;
  auto masked_parsed = obs::ParseJson(RunReportJson(collector, registry, masked_options));
  ASSERT_TRUE(masked_parsed.ok());
  EXPECT_EQ(obs::CanonicalMaskedJson(*parsed), obs::CanonicalMaskedJson(*masked_parsed));
}

// Golden serialization of the diagnostics block: entries sort by
// (severity, subsystem, code, offset, message) ascending, and an unknown
// offset renders as -1.
TEST(DiagnosticsTest, GoldenEntrySerialization) {
  std::vector<DiagnosticEntry> entries;
  DiagnosticEntry warning;
  warning.severity = DiagSeverity::kWarning;
  warning.subsystem = DiagSubsystem::kElf;
  warning.code = ErrorCode::kNotFound;
  warning.message = "no banner";
  DiagnosticEntry degraded;
  degraded.severity = DiagSeverity::kDegraded;
  degraded.subsystem = DiagSubsystem::kDwarf;
  degraded.code = ErrorCode::kMalformedData;
  degraded.offset = 0x1c4;
  degraded.has_offset = true;
  degraded.message = "DWARF decode failed";
  // Inserted out of order on purpose; serialization must sort.
  entries.push_back(degraded);
  entries.push_back(warning);
  EXPECT_EQ(obs::DiagnosticsJson(entries),
            "[{\"severity\": \"warning\", \"subsystem\": \"elf\", "
            "\"code\": \"not_found\", \"offset\": -1, "
            "\"message\": \"no banner\"}, "
            "{\"severity\": \"degraded\", \"subsystem\": \"dwarf\", "
            "\"code\": \"malformed_data\", \"offset\": 452, "
            "\"message\": \"DWARF decode failed\"}]");
}

TEST(DiagnosticsTest, CollectorIsolatesAndClears) {
  obs::DiagnosticsCollector& diags = obs::DiagnosticsCollector::Global();
  diags.Clear();
  DiagnosticLedger ledger;
  ledger.Add(DiagSeverity::kDegraded, DiagSubsystem::kBtf, ErrorCode::kMalformedData,
             "bad chain");
  diags.AddAll(ledger);
  EXPECT_EQ(diags.size(), 1u);
  std::string report = obs::GlobalRunReportJson();
  EXPECT_NE(report.find("\"diagnostics\": [{\"severity\": \"degraded\""), std::string::npos);
  diags.Clear();
  EXPECT_EQ(diags.size(), 0u);
  EXPECT_NE(obs::GlobalRunReportJson().find("\"diagnostics\": []"), std::string::npos);
}

// Golden schema checks for the standalone depsurf.diagnostics.v1 document
// (what `depsurf doctor --json` emits), alongside the other validators.
TEST(DiagnosticsTest, DoctorDocValidation) {
  const char* good =
      "{\"schema\": \"depsurf.diagnostics.v1\", \"image\": \"img.bin\", "
      "\"health\": {\"elf\": \"clean\", \"dwarf\": \"degraded\", \"btf\": \"clean\", "
      "\"tracepoint\": \"clean\", \"syscall\": \"missing\"}, \"fatal\": false, "
      "\"entries\": [{\"severity\": \"degraded\", \"subsystem\": \"dwarf\", "
      "\"code\": \"malformed_data\", \"offset\": 452, \"message\": \"boom\"}]}";
  EXPECT_TRUE(obs::ValidateDiagnosticsDoc(good).ok());

  // Wrong schema string.
  EXPECT_FALSE(obs::ValidateDiagnosticsDoc(
                   "{\"schema\": \"depsurf.run_report.v1\", \"image\": \"x\", "
                   "\"health\": {}, \"fatal\": false, \"entries\": []}")
                   .ok());
  // Health state outside the enum.
  EXPECT_FALSE(obs::ValidateDiagnosticsDoc(
                   "{\"schema\": \"depsurf.diagnostics.v1\", \"image\": \"x\", "
                   "\"health\": {\"elf\": \"fine\", \"dwarf\": \"clean\", \"btf\": \"clean\", "
                   "\"tracepoint\": \"clean\", \"syscall\": \"clean\"}, "
                   "\"fatal\": false, \"entries\": []}")
                   .ok());
  // Entry missing a required field (no message).
  EXPECT_FALSE(obs::ValidateDiagnosticsDoc(
                   "{\"schema\": \"depsurf.diagnostics.v1\", \"image\": \"x\", "
                   "\"health\": {\"elf\": \"clean\", \"dwarf\": \"clean\", \"btf\": \"clean\", "
                   "\"tracepoint\": \"clean\", \"syscall\": \"clean\"}, \"fatal\": true, "
                   "\"entries\": [{\"severity\": \"fatal\", \"subsystem\": \"elf\", "
                   "\"code\": \"malformed_data\", \"offset\": -1}]}")
                   .ok());
}

TEST(JsonLintTest, ParsesAndRejects) {
  auto ok = obs::ParseJson("{\"a\": [1, 2.5, -3], \"b\": {\"c\": true, \"d\": null}}");
  ASSERT_TRUE(ok.ok());
  const obs::JsonValue* a = ok->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_FALSE(obs::ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(obs::ParseJson("[1, 2,]").ok());
}

TEST(ContextTest, CurrentFallsBackToRootWrappingTheGlobals) {
  EXPECT_TRUE(obs::Context::Root().is_root());
  EXPECT_EQ(&obs::Context::Current(), &obs::Context::Root());
  EXPECT_EQ(&obs::Context::Current().metrics(), &obs::MetricsRegistry::Global());
  EXPECT_EQ(&obs::Context::Current().spans(), &obs::SpanCollector::Global());
  EXPECT_EQ(&obs::Context::Current().diagnostics(), &obs::DiagnosticsCollector::Global());
}

TEST(ContextTest, ScopedContextIsolatesCollectionAndNestsRestoring) {
  obs::MetricsRegistry::Global().Reset();
  obs::SpanCollector::Global().Clear();
  obs::Context ctx;
  EXPECT_FALSE(ctx.is_root());
  {
    obs::ScopedContext scope(ctx);
    EXPECT_EQ(&obs::Context::Current(), &ctx);
    obs::Context::Current().metrics().Incr("ctx.test");
    { obs::ScopedSpan span("ctx.span"); }
    obs::Context inner;
    {
      obs::ScopedContext inner_scope(inner);
      EXPECT_EQ(&obs::Context::Current(), &inner);
      obs::Context::Current().metrics().Incr("ctx.inner");
    }
    // Popping the inner scope restores the previous top, not the root.
    EXPECT_EQ(&obs::Context::Current(), &ctx);
    EXPECT_EQ(inner.metrics().Counter("ctx.inner")->load(), 1u);
    EXPECT_EQ(ctx.metrics().Counter("ctx.inner")->load(), 0u);
  }
  EXPECT_EQ(&obs::Context::Current(), &obs::Context::Root());
  EXPECT_EQ(ctx.metrics().Counter("ctx.test")->load(), 1u);
  ASSERT_EQ(ctx.spans().Snapshot().size(), 1u);
  EXPECT_EQ(ctx.spans().Snapshot()[0].name, "ctx.span");
  // Nothing leaked into the globals.
  EXPECT_EQ(obs::MetricsRegistry::Global().Counter("ctx.test")->load(), 0u);
  EXPECT_TRUE(obs::SpanCollector::Global().Snapshot().empty());
}

TEST(ContextTest, WorkerThreadsDoNotInheritTheStack) {
  obs::SpanCollector::Global().Clear();
  obs::Context ctx;
  obs::ScopedContext scope(ctx);
  std::thread unscoped_worker([] {
    // The context stack is thread-local: this thread never pushed one, so
    // its spans land in the root despite the parent's active scope.
    obs::ScopedSpan span("ctx.worker_root");
  });
  unscoped_worker.join();
  EXPECT_TRUE(ctx.spans().Snapshot().empty());
  ASSERT_EQ(obs::SpanCollector::Global().Snapshot().size(), 1u);
  EXPECT_EQ(obs::SpanCollector::Global().Snapshot()[0].name, "ctx.worker_root");
  obs::SpanCollector::Global().Clear();

  // Pushing the context inside the worker routes collection into it — the
  // pattern BuildDatasetWithReports workers use.
  std::thread scoped_worker([&ctx] {
    obs::ScopedContext worker_scope(ctx);
    obs::ScopedSpan span("ctx.worker_scoped");
  });
  scoped_worker.join();
  ASSERT_EQ(ctx.spans().Snapshot().size(), 1u);
  EXPECT_EQ(ctx.spans().Snapshot()[0].name, "ctx.worker_scoped");
  EXPECT_TRUE(obs::SpanCollector::Global().Snapshot().empty());
}

TEST(ContextTest, ContextRunReportSerializesOwnCollectors) {
  obs::Context ctx;
  {
    obs::ScopedContext scope(ctx);
    obs::ScopedSpan span("ctx.report_span");
    obs::Context::Current().metrics().Incr("ctx.report_counter", 3);
  }
  DiagnosticEntry entry;
  entry.severity = DiagSeverity::kDegraded;
  entry.subsystem = DiagSubsystem::kDwarf;
  entry.code = ErrorCode::kMalformedData;
  entry.message = "ctx boom";
  ctx.diagnostics().Add(entry);

  std::string json = obs::ContextRunReportJson(ctx);
  EXPECT_TRUE(obs::ValidateRunReport(json, 1, {"ctx.report_counter"}).ok());
  EXPECT_NE(json.find("ctx.report_span"), std::string::npos);
  EXPECT_NE(json.find("\"ctx.report_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("ctx boom"), std::string::npos);
}

// End to end across threads: the global metrics stay consistent when
// BuildDataset runs its extraction workers concurrently.
TEST(ObsIntegrationTest, ConcurrentBuildDatasetCountsConsistently) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::SpanCollector::Global().Clear();
  metrics.Reset();

  Study study(StudyOptions{2025, 0.005});
  std::vector<BuildSpec> corpus = {MakeBuild(KernelVersion(5, 4)),
                                   MakeBuild(KernelVersion(5, 15)),
                                   MakeBuild(KernelVersion(6, 2)),
                                   MakeBuild(KernelVersion(6, 8))};
  auto dataset = study.BuildDataset(corpus);
  ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();

  EXPECT_EQ(metrics.Counter("surface.extracted")->load(), corpus.size());
  EXPECT_EQ(metrics.Counter("elf.files_parsed")->load(), corpus.size());
  EXPECT_EQ(metrics.Counter("kernelgen.images_built")->load(), corpus.size());
  EXPECT_EQ(metrics.Counter("dataset.images_distilled")->load(), corpus.size());
  EXPECT_EQ(metrics.Counter("study.datasets_built")->load(), 1u);
  EXPECT_GT(metrics.Counter("btf.types_decoded")->load(), 0u);
  EXPECT_GT(metrics.Counter("dwarf.dies_decoded")->load(), 0u);
  EXPECT_EQ(metrics.GetHistogram("study.image_extract_ms")->count(), corpus.size());

  // Worker-thread surface.extract spans are roots of their own; the
  // main-thread study.build_dataset root holds the distillation children.
  std::vector<obs::SpanNode> roots = obs::SpanCollector::Global().Snapshot();
  size_t extract_roots = 0;
  size_t dataset_roots = 0;
  for (const obs::SpanNode& root : roots) {
    extract_roots += root.name == "surface.extract" ? 1 : 0;
    dataset_roots += root.name == "study.build_dataset" ? 1 : 0;
  }
  EXPECT_EQ(extract_roots, corpus.size());
  EXPECT_EQ(dataset_roots, 1u);

  obs::SpanCollector::Global().Clear();
  metrics.Reset();
}

// The masked run report is byte-identical across two threaded BuildDataset
// runs: worker roots finish in racy order, but masked serialization sorts
// them by (name, attrs, children) before emitting.
TEST(ObsIntegrationTest, ThreadedBuildDatasetMaskedReportIsDeterministic) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  std::vector<BuildSpec> corpus = {MakeBuild(KernelVersion(5, 4)),
                                   MakeBuild(KernelVersion(5, 15)),
                                   MakeBuild(KernelVersion(6, 2)),
                                   MakeBuild(KernelVersion(6, 8))};
  obs::RunReportOptions masked;
  masked.mask_timings = true;
  std::vector<std::string> reports;
  for (int run = 0; run < 2; ++run) {
    obs::SpanCollector::Global().Clear();
    metrics.Reset();
    Study study(StudyOptions{2025, 0.005});
    auto dataset = study.BuildDataset(corpus);
    ASSERT_TRUE(dataset.ok()) << dataset.error().ToString();
    reports.push_back(obs::GlobalRunReportJson(masked));
  }
  EXPECT_EQ(reports[0], reports[1]);
  obs::SpanCollector::Global().Clear();
  metrics.Reset();
}

// A five-node forest with a known decomposition:
//   a (10000) -> b (6000) -> d (1000)
//             -> c (2000)
//   x (4000)
// a.self = 10000 - 6000 - 2000 = 2000, b.self = 6000 - 1000 = 5000.
std::vector<obs::SpanNode> ProfileFixtureForest() {
  obs::SpanNode d;
  d.name = "d";
  d.dur_ns = 1000;
  d.cpu_ns = 900;
  obs::SpanNode b;
  b.name = "b";
  b.dur_ns = 6000;
  b.cpu_ns = 5000;
  b.children.push_back(d);
  obs::SpanNode c;
  c.name = "c";
  c.dur_ns = 2000;
  c.alloc_count = 4;
  c.alloc_bytes = 256;
  obs::SpanNode a;
  a.name = "a";
  a.dur_ns = 10000;
  a.cpu_ns = 8000;
  a.children.push_back(b);
  a.children.push_back(c);
  obs::SpanNode x;
  x.name = "x";
  x.dur_ns = 4000;
  return {a, x};
}

const obs::ProfileNameRow* FindRow(const obs::Profile& profile, const std::string& name) {
  for (const obs::ProfileNameRow& row : profile.names) {
    if (row.name == name) {
      return &row;
    }
  }
  return nullptr;
}

TEST(ProfileTest, AggregatesSelfTimeAndCriticalPath) {
  obs::Profile profile = obs::BuildProfile(ProfileFixtureForest());
  EXPECT_EQ(profile.span_nodes, 5u);
  ASSERT_EQ(profile.names.size(), 5u);
  // Sorted by name.
  EXPECT_EQ(profile.names[0].name, "a");
  EXPECT_EQ(profile.names[4].name, "x");
  const obs::ProfileNameRow* a = FindRow(profile, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->count, 1u);
  EXPECT_EQ(a->dur_ns, 10000u);
  EXPECT_EQ(a->self_ns, 2000u);
  EXPECT_EQ(a->cpu_ns, 8000u);
  EXPECT_EQ(FindRow(profile, "b")->self_ns, 5000u);
  EXPECT_EQ(FindRow(profile, "c")->alloc_bytes, 256u);
  EXPECT_EQ(FindRow(profile, "d")->self_ns, 1000u);

  // Self times telescope: summed over a root's tree they equal its dur.
  uint64_t total_self = 0;
  for (const obs::ProfileNameRow& row : profile.names) {
    total_self += row.self_ns;
  }
  EXPECT_EQ(total_self, 10000u + 4000u);

  // Critical path descends the dominant chain a -> b -> d.
  EXPECT_EQ(profile.wall_ns, 10000u);
  ASSERT_EQ(profile.critical_path.size(), 3u);
  EXPECT_EQ(profile.critical_path[0].name, "a");
  EXPECT_EQ(profile.critical_path[1].name, "b");
  EXPECT_EQ(profile.critical_path[2].name, "d");
  EXPECT_EQ(profile.serial_self_ns, 2000u + 5000u + 1000u);
  EXPECT_DOUBLE_EQ(obs::SerialSharePct(profile), 80.0);
}

TEST(ProfileTest, FoldedStacksSumSelfTimePerStack) {
  std::string folded = obs::FoldedStacks(ProfileFixtureForest());
  EXPECT_EQ(folded,
            "a 2000\n"
            "a;b 5000\n"
            "a;b;d 1000\n"
            "a;c 2000\n"
            "x 4000\n");
}

TEST(ProfileTest, JsonValidatesAndRejectsTampering) {
  obs::Profile profile = obs::BuildProfile(ProfileFixtureForest());
  std::string json = obs::ProfileJson(profile);
  EXPECT_TRUE(obs::ValidateProfileDoc(json).ok())
      << obs::ValidateProfileDoc(json).ToString();

  std::string wrong_schema = json;
  wrong_schema.replace(wrong_schema.find("depsurf.profile.v1"), 18, "depsurf.profile.v9");
  EXPECT_FALSE(obs::ValidateProfileDoc(wrong_schema).ok());

  // A row whose self time exceeds its duration is inconsistent.
  std::string inflated = json;
  size_t at = inflated.find("\"self_ns\": 2000");
  ASSERT_NE(at, std::string::npos);
  inflated.replace(at, 15, "\"self_ns\": 99999999");
  EXPECT_FALSE(obs::ValidateProfileDoc(inflated).ok());
}

TEST(ProfileTest, RoundTripsThroughRunReportWithExecutorStats) {
  obs::SpanCollector collector;
  obs::MetricsRegistry registry;
  for (const obs::SpanNode& root : ProfileFixtureForest()) {
    collector.AddRoot(root);
  }
  registry.Set("study.build_dataset.window", 2);
  registry.Set("study.build_dataset.wall_ms", 120);
  registry.Incr("study.executor.serialize_stall_us", 5000);
  registry.Record("study.executor.queue_wait_us", 10);
  registry.Record("study.executor.queue_wait_us", 20);
  registry.Set("study.executor.worker0.busy_ms", 91);
  registry.Set("study.executor.worker1.busy_ms", 112);

  // Executor stats lift identically from the live registry and from the
  // serialized report of the same registry.
  obs::Profile live = obs::BuildProfile(collector.Snapshot());
  obs::FillExecutorStats(live, registry);
  auto parsed = obs::ProfileFromReportJson(RunReportJson(collector, registry));
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();

  for (const obs::Profile* profile : {&live, &*parsed}) {
    EXPECT_EQ(profile->span_nodes, 5u);
    EXPECT_EQ(profile->wall_ns, 10000u);
    ASSERT_TRUE(profile->executor.present);
    EXPECT_EQ(profile->executor.window, 2);
    EXPECT_EQ(profile->executor.wall_ms, 120);
    EXPECT_EQ(profile->executor.serialize_stall_us, 5000u);
    EXPECT_EQ(profile->executor.queue_waits, 2u);
    ASSERT_EQ(profile->executor.worker_busy_ms.size(), 2u);
    EXPECT_EQ(profile->executor.worker_busy_ms[0].first, 0);
    EXPECT_EQ(profile->executor.worker_busy_ms[1].second, 112);
    EXPECT_TRUE(obs::ValidateProfileDoc(obs::ProfileJson(*profile)).ok());
  }
}

TEST(ProfileTest, LiveSpansKeepCpuWithinWallAndSelfTelescopes) {
  obs::SpanCollector::Global().Clear();
  {
    obs::ScopedSpan root("p.root");
    volatile uint64_t sink = 0;
    {
      obs::ScopedSpan child("p.child");
      for (uint64_t i = 0; i < 400000; ++i) {
        sink = sink + i;
      }
    }
    for (uint64_t i = 0; i < 100000; ++i) {
      sink = sink + i;
    }
  }
  std::vector<obs::SpanNode> roots = obs::SpanCollector::Global().Snapshot();
  ASSERT_EQ(roots.size(), 1u);
  const obs::SpanNode& root = roots[0];
  ASSERT_EQ(root.children.size(), 1u);
  // Thread CPU time never exceeds wall time for a single-threaded span.
  EXPECT_LE(root.cpu_ns, root.dur_ns);
  EXPECT_LE(root.children[0].cpu_ns, root.children[0].dur_ns);
  // Self times telescope back to the root duration exactly.
  obs::Profile profile = obs::BuildProfile(roots);
  uint64_t total_self = 0;
  for (const obs::ProfileNameRow& row : profile.names) {
    total_self += row.self_ns;
  }
  EXPECT_EQ(total_self, root.dur_ns);
  obs::SpanCollector::Global().Clear();
}

TEST(JsonLintTest, RunReportLintNotesFlagDeprecatedGauges) {
  auto stale = obs::ParseJson("{\"gauges\": {\"study.build_dataset.cpu_ms\": 5}}");
  ASSERT_TRUE(stale.ok());
  auto notes = obs::RunReportLintNotes(*stale);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].find("study.build_dataset.cpu_ms"), std::string::npos);
  EXPECT_NE(notes[0].find("study.build_dataset.cpu_total_ms"), std::string::npos);

  auto current = obs::ParseJson("{\"gauges\": {\"study.build_dataset.cpu_total_ms\": 5}}");
  ASSERT_TRUE(current.ok());
  EXPECT_TRUE(obs::RunReportLintNotes(*current).empty());
}

}  // namespace
}  // namespace depsurf
