// Property-based round-trip tests: randomized BTF graphs, DWARF documents,
// ELF objects, and BPF objects must survive encode/decode bit-exactly,
// across seeds (parameterized sweeps).
#include <gtest/gtest.h>

#include "src/bpf/bpf_builder.h"
#include "src/btf/btf_codec.h"
#include "src/dwarf/dwarf_codec.h"
#include "src/dwarf/function_view.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_writer.h"
#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

// ---- BTF ---------------------------------------------------------------

TypeGraph RandomGraph(Prng& prng, int num_types) {
  TypeGraph graph;
  for (int i = 0; i < num_types; ++i) {
    switch (prng.NextBelow(8)) {
      case 0:
        graph.Int(StrFormat("int%d", i), 1u << prng.NextBelow(4));
        break;
      case 1: {
        BtfTypeId to = static_cast<BtfTypeId>(prng.NextBelow(graph.num_types() + 1));
        graph.Ptr(to);
        break;
      }
      case 2: {
        std::vector<BtfMember> members;
        size_t n = prng.NextBelow(6);
        for (size_t m = 0; m < n; ++m) {
          members.push_back(BtfMember{StrFormat("f%zu", m),
                                      static_cast<BtfTypeId>(prng.NextBelow(graph.num_types() + 1)),
                                      static_cast<uint32_t>(m * 64)});
        }
        graph.Struct(StrFormat("s%d", i), static_cast<uint32_t>(n * 8), std::move(members));
        break;
      }
      case 3: {
        std::vector<BtfParam> params;
        size_t n = prng.NextBelow(5);
        for (size_t p = 0; p < n; ++p) {
          params.push_back(BtfParam{StrFormat("p%zu", p),
                                    static_cast<BtfTypeId>(prng.NextBelow(graph.num_types() + 1))});
        }
        BtfTypeId proto = graph.FuncProto(
            static_cast<BtfTypeId>(prng.NextBelow(graph.num_types() + 1)), std::move(params));
        graph.Func(StrFormat("fn%d", i), proto);
        break;
      }
      case 4:
        graph.Typedef(StrFormat("td%d", i),
                      static_cast<BtfTypeId>(prng.NextBelow(graph.num_types() + 1)));
        break;
      case 5:
        graph.Array(static_cast<BtfTypeId>(prng.NextBelow(graph.num_types() + 1)),
                    static_cast<uint32_t>(prng.NextBelow(64)));
        break;
      case 6:
        graph.Enum(StrFormat("e%d", i),
                   {{StrFormat("E%d_A", i), 0}, {StrFormat("E%d_B", i), -1}});
        break;
      default:
        graph.Fwd(StrFormat("fwd%d", i));
        break;
    }
  }
  return graph;
}

TEST_P(SeededTest, BtfRoundTripRandomGraphs) {
  Prng prng(GetParam());
  TypeGraph graph = RandomGraph(prng, 40 + static_cast<int>(prng.NextBelow(60)));
  for (Endian endian : {Endian::kLittle, Endian::kBig}) {
    auto decoded = DecodeBtf(EncodeBtf(graph, endian), endian);
    ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
    ASSERT_EQ(decoded->num_types(), graph.num_types());
    for (BtfTypeId id = 1; id <= graph.num_types(); ++id) {
      const BtfType* a = graph.Get(id);
      const BtfType* b = decoded->Get(id);
      ASSERT_EQ(a->kind, b->kind);
      ASSERT_EQ(a->name, b->name);
      ASSERT_EQ(a->ref_type_id, b->ref_type_id);
      ASSERT_EQ(a->members, b->members);
      ASSERT_EQ(a->params, b->params);
    }
  }
}

// ---- DWARF ---------------------------------------------------------------

TEST_P(SeededTest, DwarfRoundTripRandomForests) {
  Prng prng(GetParam() ^ 0xd3a);
  DwarfDocument doc;
  size_t num_cus = 1 + prng.NextBelow(4);
  std::vector<uint32_t> subprograms;
  for (size_t cu_index = 0; cu_index < num_cus; ++cu_index) {
    uint32_t cu = doc.AddDie(DwTag::kCompileUnit, 0);
    doc.SetString(cu, DwAttr::kName, StrFormat("dir/file%zu.c", cu_index));
    size_t num_subs = prng.NextBelow(12);
    for (size_t s = 0; s < num_subs; ++s) {
      uint32_t sub = doc.AddDie(DwTag::kSubprogram, cu);
      doc.SetString(sub, DwAttr::kName, StrFormat("fn_%zu_%zu", cu_index, s));
      doc.SetNumber(sub, DwAttr::kDeclLine, prng.NextBelow(5000));
      if (prng.NextBool(0.5)) {
        doc.SetFlag(sub, DwAttr::kExternal);
      }
      if (prng.NextBool(0.8)) {
        doc.SetNumber(sub, DwAttr::kLowPc, prng.NextU64());
      }
      if (prng.NextBool(0.3) && !subprograms.empty()) {
        uint32_t site = doc.AddDie(DwTag::kInlinedSubroutine, sub);
        doc.SetNumber(site, DwAttr::kAbstractOrigin,
                      subprograms[prng.NextBelow(subprograms.size())]);
      }
      if (prng.NextBool(0.3) && !subprograms.empty()) {
        uint32_t site = doc.AddDie(DwTag::kCallSite, sub);
        doc.SetNumber(site, DwAttr::kCallOrigin,
                      subprograms[prng.NextBelow(subprograms.size())]);
      }
      subprograms.push_back(sub);
    }
  }
  for (Endian endian : {Endian::kLittle, Endian::kBig}) {
    DwarfSections sections = EncodeDwarf(doc, endian);
    auto decoded = DecodeDwarf(sections.abbrev, sections.info, endian);
    ASSERT_TRUE(decoded.ok()) << decoded.error().ToString();
    EXPECT_EQ(decoded->num_dies(), doc.num_dies());
    EXPECT_EQ(decoded->roots().size(), doc.roots().size());
    // The instance view must survive too (references intact).
    auto original = CollectFunctionInstances(doc);
    auto roundtrip = CollectFunctionInstances(*decoded);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(roundtrip.ok());
    ASSERT_EQ(original->size(), roundtrip->size());
    for (const auto& [name, insts] : *original) {
      const auto& other = roundtrip->at(name);
      ASSERT_EQ(insts.size(), other.size()) << name;
      for (size_t i = 0; i < insts.size(); ++i) {
        EXPECT_EQ(insts[i].caller_inline, other[i].caller_inline);
        EXPECT_EQ(insts[i].caller_func, other[i].caller_func);
        EXPECT_EQ(insts[i].low_pc, other[i].low_pc);
      }
    }
  }
}

// ---- ELF -------------------------------------------------------------------

TEST_P(SeededTest, ElfRoundTripRandomObjects) {
  Prng prng(GetParam() ^ 0xe1f);
  ElfIdent idents[] = {{ElfClass::k64, Endian::kLittle, ElfMachine::kX86_64},
                       {ElfClass::k32, Endian::kLittle, ElfMachine::kArm},
                       {ElfClass::k64, Endian::kBig, ElfMachine::kPpc64}};
  const ElfIdent& ident = idents[prng.NextBelow(3)];
  ElfWriter writer(ident);
  size_t num_sections = 1 + prng.NextBelow(6);
  std::vector<std::pair<std::string, size_t>> expected;
  for (size_t i = 0; i < num_sections; ++i) {
    std::vector<uint8_t> data(prng.NextBelow(512));
    for (auto& byte : data) {
      byte = static_cast<uint8_t>(prng.NextU64());
    }
    std::string name = StrFormat(".sec%zu", i);
    expected.emplace_back(name, data.size());
    writer.AddSection(name, SectionType::kProgbits, std::move(data), 0x1000 * (i + 1),
                      kShfAlloc);
  }
  size_t num_symbols = prng.NextBelow(40);
  for (size_t i = 0; i < num_symbols; ++i) {
    ElfSymbol sym;
    sym.name = StrFormat("sym%zu", i);
    sym.value = prng.NextBelow(1u << 30);
    sym.bind = prng.NextBool(0.5) ? SymBind::kLocal : SymBind::kGlobal;
    sym.type = SymType::kFunc;
    sym.shndx = 1;
    writer.AddSymbol(sym);
  }
  auto bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  auto reader = ElfReader::Parse(bytes.TakeValue());
  ASSERT_TRUE(reader.ok()) << reader.error().ToString();
  EXPECT_EQ(reader->symbols().size(), num_symbols);
  for (const auto& [name, size] : expected) {
    const ElfSectionView* section = reader->SectionByName(name);
    ASSERT_NE(section, nullptr) << name;
    EXPECT_EQ(section->size, size);
  }
}

// ---- BPF objects -----------------------------------------------------------

TEST_P(SeededTest, BpfObjectRoundTripRandomPrograms) {
  Prng prng(GetParam() ^ 0xbbf);
  BpfObjectBuilder builder(StrFormat("tool%llu", (unsigned long long)GetParam()));
  size_t num_hooks = 1 + prng.NextBelow(8);
  for (size_t i = 0; i < num_hooks; ++i) {
    std::string target = StrFormat("target_%zu", i);
    switch (prng.NextBelow(5)) {
      case 0:
        builder.AttachKprobe(target);
        break;
      case 1:
        builder.AttachKretprobe(target);
        break;
      case 2:
        builder.AttachTracepoint("cat", target);
        break;
      case 3:
        builder.AttachSyscall(target, prng.NextBool(0.5));
        break;
      default:
        builder.AttachRawTracepoint(target);
        break;
    }
  }
  size_t num_fields = prng.NextBelow(10);
  for (size_t i = 0; i < num_fields; ++i) {
    ASSERT_TRUE(builder
                    .AccessField(StrFormat("st%zu", prng.NextBelow(3)),
                                 StrFormat("fld%zu", i), prng.NextBool(0.5) ? "int" : "u64")
                    .ok());
  }
  BpfObject original = builder.Build();
  auto bytes = WriteBpfObject(original);
  ASSERT_TRUE(bytes.ok());
  auto parsed = ParseBpfObject(bytes.TakeValue());
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  ASSERT_EQ(parsed->programs.size(), original.programs.size());
  for (size_t i = 0; i < original.programs.size(); ++i) {
    EXPECT_EQ(parsed->programs[i].hook, original.programs[i].hook);
  }
  EXPECT_EQ(parsed->relocs, original.relocs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull, 21ull, 34ull,
                                           55ull, 89ull, 144ull, 233ull));

}  // namespace
}  // namespace depsurf
