#include <gtest/gtest.h>

#include <set>

#include "src/btf/btf_codec.h"
#include "src/dwarf/dwarf_codec.h"
#include "src/dwarf/function_view.h"
#include "src/elf/elf_reader.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/evolution.h"
#include "src/kernelgen/image_builder.h"
#include "src/kernelgen/name_corpus.h"
#include "src/kernelgen/scripted.h"
#include "src/kernelgen/syscalls.h"

namespace depsurf {
namespace {

constexpr uint64_t kSeed = 2025;
constexpr double kTestScale = 0.02;

TEST(NameCorpusTest, UniqueAndStable) {
  NameCorpus corpus(1);
  std::set<std::string> names;
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(names.insert(corpus.Name(NameKind::kFunc, i)).second) << i;
  }
  EXPECT_EQ(corpus.Name(NameKind::kFunc, 7), NameCorpus(1).Name(NameKind::kFunc, 7));
  EXPECT_NE(corpus.Name(NameKind::kFunc, 7), NameCorpus(2).Name(NameKind::kFunc, 7));
  EXPECT_FALSE(corpus.SourceFile(3).empty());
  EXPECT_NE(corpus.SourceFile(3).find(".c"), std::string::npos);
  EXPECT_NE(corpus.HeaderFile(3).find("include/"), std::string::npos);
}

TEST(RatesTest, VersionTable) {
  EXPECT_EQ(VersionIndex(KernelVersion(4, 4)), 0);
  EXPECT_EQ(VersionIndex(KernelVersion(6, 8)), 16);
  EXPECT_EQ(VersionIndex(KernelVersion(5, 16)), -1);
  EXPECT_TRUE(IsLts(KernelVersion(5, 4)));
  EXPECT_FALSE(IsLts(KernelVersion(5, 8)));
  EXPECT_EQ(GccMajorFor(KernelVersion(4, 4)), 5);
  EXPECT_EQ(GccMajorFor(KernelVersion(6, 8)), 13);
}

TEST(EvolutionTest, PopulationsGrowLikeThePaper) {
  EvolutionModel model(kSeed, kTestScale);
  uint32_t f44 = model.FuncCount(0);
  uint32_t f68 = model.FuncCount(16);
  // Source-level populations: 54.5k -> ~94k at scale 1.
  EXPECT_NEAR(f44, 54500 * kTestScale, 54500 * kTestScale * 0.1);
  double growth = static_cast<double>(f68) / f44;
  EXPECT_GT(growth, 1.5);
  EXPECT_LT(growth, 2.1);

  uint32_t s44 = model.StructCount(0);
  uint32_t s68 = model.StructCount(16);
  EXPECT_NEAR(s44, 6200 * kTestScale, 6200 * kTestScale * 0.2);
  EXPECT_GT(s68, s44);

  uint32_t t44 = model.TracepointCount(0);
  uint32_t t68 = model.TracepointCount(16);
  EXPECT_GT(t44, 0u);
  EXPECT_GT(t68, t44);
}

TEST(EvolutionTest, DeterministicAcrossInstances) {
  EvolutionModel a(kSeed, kTestScale);
  EvolutionModel b(kSeed, kTestScale);
  for (int vi : {0, 8, 16}) {
    EXPECT_EQ(a.FuncCount(vi), b.FuncCount(vi));
    EXPECT_EQ(a.FuncAt(3, vi), b.FuncAt(3, vi));
    EXPECT_EQ(a.StructAt(3, vi), b.StructAt(3, vi));
  }
}

TEST(EvolutionTest, SpecsEvolveButIdentityPersists) {
  EvolutionModel model(kSeed, 0.05);
  int changed = 0;
  int checked = 0;
  for (uint64_t ordinal = 0; ordinal < 400; ++ordinal) {
    if (!model.FuncAlive(ordinal, 0) || !model.FuncAlive(ordinal, 16)) {
      continue;
    }
    FuncSpec early = model.FuncAt(ordinal, 0);
    FuncSpec late = model.FuncAt(ordinal, 16);
    EXPECT_EQ(early.name, late.name);  // identity: name never changes
    ++checked;
    if (early.params != late.params || early.return_type != late.return_type) {
      ++changed;
    }
  }
  ASSERT_GT(checked, 100);
  // Over 16 transitions at ~1.3%/transition, roughly 15-25% changed.
  EXPECT_GT(changed, checked / 12);
  EXPECT_LT(changed, checked / 2);
}

TEST(ScriptedTest, BiotopLineage) {
  ScriptedCatalog cat = BuildCuratedCatalog();
  const ScriptedFunc* f = cat.FindFunc("blk_account_io_start", KernelVersion(4, 4));
  ASSERT_NE(f, nullptr);
  const FuncSpec* v44 = f->SpecAt(KernelVersion(4, 4));
  ASSERT_NE(v44, nullptr);
  EXPECT_EQ(v44->params.size(), 2u);
  const FuncSpec* v58 = f->SpecAt(KernelVersion(5, 8));
  ASSERT_NE(v58, nullptr);
  EXPECT_EQ(v58->params.size(), 1u);  // b5af37a removed a parameter
  EXPECT_EQ(v58->inline_hint, InlineHint::kForceSelective);
  const FuncSpec* v519 = f->SpecAt(KernelVersion(5, 19));
  ASSERT_NE(v519, nullptr);
  EXPECT_EQ(v519->inline_hint, InlineHint::kForceFull);  // be6bfe3
  // __blk_account_io_start only exists after the refactor.
  EXPECT_EQ(cat.FindFunc("__blk_account_io_start", KernelVersion(5, 4)), nullptr);
  EXPECT_NE(cat.FindFunc("__blk_account_io_start", KernelVersion(5, 19)), nullptr);
}

TEST(ScriptedTest, ReadaheadLineage) {
  ScriptedCatalog cat = BuildCuratedCatalog();
  EXPECT_NE(cat.FindFunc("__do_page_cache_readahead", KernelVersion(4, 4)), nullptr);
  EXPECT_EQ(cat.FindFunc("__do_page_cache_readahead", KernelVersion(5, 11)), nullptr);
  EXPECT_NE(cat.FindFunc("do_page_cache_ra", KernelVersion(5, 11)), nullptr);
  const ScriptedFunc* ra = cat.FindFunc("__do_page_cache_readahead", KernelVersion(4, 4));
  EXPECT_EQ(ra->SpecAt(KernelVersion(4, 4))->return_type, "unsigned long");
  EXPECT_EQ(ra->SpecAt(KernelVersion(4, 18))->return_type, "unsigned int");  // c534aa3
  const ScriptedFunc* alloc = cat.FindFunc("__page_cache_alloc", KernelVersion(5, 4));
  ASSERT_NE(alloc, nullptr);
  EXPECT_TRUE(alloc->arch_behavior.count(Arch::kArm32));
  EXPECT_TRUE(alloc->arch_behavior.at(Arch::kRiscv).duplicate_per_tu);
}

TEST(ScriptedTest, ProfileFuncShapes) {
  ScriptedCatalog cat;
  cat.AddProfileFunc("dep_all", MismatchProfile{true, true, true, true, true, true});
  const ScriptedFunc& f = cat.funcs.back();
  EXPECT_EQ(f.SpecAt(KernelVersion(4, 4)), nullptr);  // absent before 5.8
  const FuncSpec* at58 = f.SpecAt(KernelVersion(5, 8));
  ASSERT_NE(at58, nullptr);
  EXPECT_EQ(at58->params.size(), 2u);
  const FuncSpec* at515 = f.SpecAt(KernelVersion(5, 15));
  ASSERT_NE(at515, nullptr);
  EXPECT_EQ(at515->params.size(), 3u);  // changed at 5.15 when absent-profile
  EXPECT_EQ(at515->inline_hint, InlineHint::kForceFull);
  EXPECT_TRUE(at515->defined_in_header);
  EXPECT_TRUE(f.forced_transform.has_value());
}

TEST(ScriptedTest, ProfileStructAndTracepoint) {
  ScriptedCatalog cat;
  cat.AddProfileStruct("dep_struct", 3, 2, 1, false);
  const ScriptedStruct& st = cat.structs.back();
  const StructSpec* early = st.SpecAt(KernelVersion(4, 4));
  ASSERT_NE(early, nullptr);
  EXPECT_EQ(early->fields.size(), 4u);  // 3 stable + 1 pre-change
  const StructSpec* late = st.SpecAt(KernelVersion(5, 15));
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->fields.size(), 6u);  // + 2 added
  cat.AddProfileTracepoint("dep_tp", true, true);
  EXPECT_EQ(cat.tracepoints.back().SpecAt(KernelVersion(4, 4)), nullptr);
  EXPECT_NE(cat.tracepoints.back().SpecAt(KernelVersion(5, 15)), nullptr);
}

TEST(SyscallsTest, TableShapes) {
  auto x86 = SyscallTableFor(KernelVersion(5, 4), Arch::kX86);
  auto arm64 = SyscallTableFor(KernelVersion(5, 4), Arch::kArm64);
  auto arm32 = SyscallTableFor(KernelVersion(5, 4), Arch::kArm32);
  EXPECT_GT(x86.size(), 290u);
  EXPECT_LT(x86.size(), 360u);
  EXPECT_LT(arm64.size(), x86.size());  // legacy calls dropped
  EXPECT_GT(arm32.size(), x86.size());  // OABI extras
  auto has = [](const std::vector<SyscallSpec>& table, const char* name) {
    for (const SyscallSpec& s : table) {
      if (s.name == name) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has(x86, "open"));
  EXPECT_FALSE(has(arm64, "open"));
  EXPECT_TRUE(has(arm64, "openat"));
  EXPECT_FALSE(has(x86, "openat2"));  // added in 5.8
  EXPECT_TRUE(has(SyscallTableFor(KernelVersion(5, 8), Arch::kX86), "openat2"));
  EXPECT_GT(AllSyscallNames().size(), 300u);
}

TEST(ConfiguratorTest, RejectsNonStudyVersion) {
  KernelModel model(kSeed, kTestScale, BuildCuratedCatalog());
  BuildSpec bad = MakeBuild(KernelVersion(5, 4));
  bad.version = KernelVersion(5, 16);
  EXPECT_FALSE(model.Configure(bad).ok());
}

TEST(ConfiguratorTest, ArchChangesPresence) {
  KernelModel model(kSeed, 0.05, BuildCuratedCatalog());
  auto x86 = model.Configure(MakeBuild(KernelVersion(5, 4)));
  ASSERT_TRUE(x86.ok());
  auto riscv = model.Configure(MakeBuild(KernelVersion(5, 4), Arch::kRiscv));
  ASSERT_TRUE(riscv.ok());
  // riscv removes far more than it adds (Table 5).
  EXPECT_LT(riscv->funcs.size(), x86->funcs.size());
  EXPECT_LT(riscv->structs.size(), x86->structs.size());
  EXPECT_LT(riscv->syscalls.size(), x86->syscalls.size());
  EXPECT_EQ(riscv->pt_regs.fields[0].name, "epc");
  EXPECT_EQ(x86->pt_regs.fields.back().name, "ss");
}

TEST(ConfiguratorTest, LowLatencyNearlyIdentical) {
  KernelModel model(kSeed, 0.05, BuildCuratedCatalog());
  auto generic = model.Configure(MakeBuild(KernelVersion(5, 4)));
  auto lowlat = model.Configure(MakeBuild(KernelVersion(5, 4), Arch::kX86, Flavor::kLowLatency));
  ASSERT_TRUE(generic.ok());
  ASSERT_TRUE(lowlat.ok());
  double ratio = static_cast<double>(lowlat->funcs.size()) / generic->funcs.size();
  EXPECT_GT(ratio, 0.99);
  EXPECT_LT(ratio, 1.01);
  auto azure = model.Configure(MakeBuild(KernelVersion(5, 4), Arch::kX86, Flavor::kAzure));
  ASSERT_TRUE(azure.ok());
  EXPECT_LT(azure->funcs.size(), generic->funcs.size());
}

TEST(CompilerTest, HintsHonored) {
  ConfiguredKernel kernel;
  kernel.build = MakeBuild(KernelVersion(5, 4));
  FuncSpec full = {"f_full", "void", {}, Linkage::kStatic, "a/b.c", 1, false,
                   InlineHint::kForceFull};
  FuncSpec sel = {"f_sel", "void", {}, Linkage::kGlobal, "a/b.c", 2, false,
                  InlineHint::kForceSelective};
  FuncSpec plain = {"f_plain", "void", {}, Linkage::kGlobal, "a/b.c", 3, false,
                    InlineHint::kNever};
  kernel.funcs = {full, sel, plain};
  CompiledImage image = CompileKernel(kSeed, std::move(kernel));
  ASSERT_EQ(image.funcs.size(), 3u);
  const CompiledInstance& inst_full = image.funcs[0].instances[0];
  EXPECT_FALSE(inst_full.HasCode());
  EXPECT_TRUE(inst_full.symbol_name.empty());
  EXPECT_FALSE(inst_full.inline_callers.empty());
  const CompiledInstance& inst_sel = image.funcs[1].instances[0];
  EXPECT_TRUE(inst_sel.HasCode());
  EXPECT_FALSE(inst_sel.inline_callers.empty());
  const CompiledInstance& inst_plain = image.funcs[2].instances[0];
  EXPECT_TRUE(inst_plain.HasCode());
  EXPECT_EQ(inst_plain.symbol_name, "f_plain");
  EXPECT_TRUE(inst_plain.inline_callers.empty());
}

TEST(CompilerTest, HeaderStaticsDuplicated) {
  ConfiguredKernel kernel;
  kernel.build = MakeBuild(KernelVersion(5, 4));
  FuncSpec dup;
  dup.name = "get_order";
  dup.linkage = Linkage::kStatic;
  dup.defined_in_header = true;
  dup.decl_file = "include/asm-generic/getorder.h";
  dup.inline_hint = InlineHint::kNever;
  kernel.funcs = {dup};
  CompiledImage image = CompileKernel(kSeed, std::move(kernel));
  EXPECT_GE(image.funcs[0].instances.size(), 2u);
  std::set<uint64_t> addrs;
  for (const CompiledInstance& inst : image.funcs[0].instances) {
    EXPECT_EQ(inst.symbol_name, "get_order");
    EXPECT_TRUE(inst.HasCode());
    addrs.insert(inst.address);
  }
  EXPECT_EQ(addrs.size(), image.funcs[0].instances.size());
}

TEST(CompilerTest, ForcedTransformRespectsGcc) {
  ConfiguredKernel kernel;
  kernel.build = MakeBuild(KernelVersion(4, 4));  // gcc 5
  FuncSpec f;
  f.name = "victim";
  f.linkage = Linkage::kGlobal;
  f.decl_file = "a/b.c";
  f.inline_hint = InlineHint::kNever;
  f.forced_transform = "isra";
  f.forced_transform_min_gcc = 9;
  kernel.funcs = {f};
  CompiledImage old_image = CompileKernel(kSeed, std::move(kernel));
  EXPECT_EQ(old_image.funcs[0].instances[0].symbol_name, "victim");

  ConfiguredKernel kernel9;
  kernel9.build = MakeBuild(KernelVersion(5, 4));  // gcc 9
  kernel9.funcs = {f};
  CompiledImage new_image = CompileKernel(kSeed, std::move(kernel9));
  EXPECT_EQ(new_image.funcs[0].instances[0].symbol_name, "victim.isra.0");
}

TEST(CompilerTest, AggregateInlineRates) {
  KernelModel model(kSeed, 0.05, BuildCuratedCatalog());
  auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4)));
  ASSERT_TRUE(kernel.ok());
  CompiledImage image = CompileKernel(kSeed, kernel.TakeValue());
  int full = 0;
  int selective = 0;
  int total = 0;
  for (const CompiledFunction& func : image.funcs) {
    ++total;
    bool has_code = false;
    bool has_inline = false;
    for (const CompiledInstance& inst : func.instances) {
      has_code |= inst.HasCode();
      has_inline |= !inst.inline_callers.empty();
    }
    if (!has_code) {
      ++full;
    } else if (has_inline) {
      ++selective;
    }
  }
  double full_rate = static_cast<double>(full) / total;
  double sel_rate = static_cast<double>(selective) / total;
  EXPECT_GT(full_rate, 0.25);  // paper: 32-36%
  EXPECT_LT(full_rate, 0.45);
  EXPECT_GT(sel_rate, 0.05);  // paper: 9-11%
  EXPECT_LT(sel_rate, 0.18);
}

TEST(ImageBuilderTest, EmitsParsableImage) {
  KernelModel model(kSeed, kTestScale, BuildCuratedCatalog());
  auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4)));
  ASSERT_TRUE(kernel.ok());
  CompiledImage compiled = CompileKernel(kSeed, kernel.TakeValue());
  auto bytes = BuildKernelImage(compiled);
  ASSERT_TRUE(bytes.ok()) << bytes.error().ToString();

  auto reader = ElfReader::Parse(bytes.TakeValue());
  ASSERT_TRUE(reader.ok()) << reader.error().ToString();
  EXPECT_NE(reader->SectionByName(kSectionBtf), nullptr);
  EXPECT_NE(reader->SectionByName(kSectionDwarfInfo), nullptr);
  EXPECT_NE(reader->SectionByName(kSectionFtraceEvents), nullptr);
  ASSERT_TRUE(reader->FindSymbol(kSymSyscallTable).has_value());
  ASSERT_TRUE(reader->FindSymbol(kSymStartFtrace).has_value());

  // BTF decodes and contains the scripted vfs_fsync declaration.
  auto btf_data = reader->SectionDataByName(kSectionBtf);
  ASSERT_TRUE(btf_data.ok());
  auto graph = DecodeBtf(*btf_data);
  ASSERT_TRUE(graph.ok()) << graph.error().ToString();
  EXPECT_TRUE(graph->FindFunc("vfs_fsync").has_value());
  EXPECT_TRUE(graph->FindStruct("task_struct").has_value());
  EXPECT_TRUE(graph->FindStruct("pt_regs").has_value());

  // DWARF decodes; vfs_fsync is selectively inlined with callers on record.
  auto abbrev = reader->SectionDataByName(kSectionDwarfAbbrev);
  auto info = reader->SectionDataByName(kSectionDwarfInfo);
  ASSERT_TRUE(abbrev.ok());
  ASSERT_TRUE(info.ok());
  auto abbrev_bytes = abbrev->ReadBytes(abbrev->size());
  auto info_bytes = info->ReadBytes(info->size());
  ASSERT_TRUE(abbrev_bytes.ok());
  ASSERT_TRUE(info_bytes.ok());
  auto doc = DecodeDwarf(*abbrev_bytes, *info_bytes);
  ASSERT_TRUE(doc.ok()) << doc.error().ToString();
  auto instances = CollectFunctionInstances(*doc);
  ASSERT_TRUE(instances.ok()) << instances.error().ToString();
  ASSERT_TRUE(instances->count("vfs_fsync"));
  const FunctionInstance& fsync = instances->at("vfs_fsync")[0];
  EXPECT_TRUE(fsync.HasCode());
  EXPECT_FALSE(fsync.caller_inline.empty());
  EXPECT_FALSE(fsync.caller_func.empty());

  // The symbol table has vfs_fsync but not the fully-inlined
  // blk_account_io_start wrapper's worker start (at 5.4 it exists).
  EXPECT_TRUE(reader->FindSymbol("vfs_fsync").has_value());

  // Tracepoint records dereference: the __start/__stop window is non-empty
  // and pointer-aligned.
  auto start = reader->FindSymbol(kSymStartFtrace);
  auto stop = reader->FindSymbol(kSymStopFtrace);
  EXPECT_GT(stop->value, start->value);
  EXPECT_EQ((stop->value - start->value) % reader->pointer_size(), 0u);
}

TEST(ImageBuilderTest, Arm32ImageIsElf32) {
  KernelModel model(kSeed, kTestScale, BuildCuratedCatalog());
  auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4), Arch::kArm32));
  ASSERT_TRUE(kernel.ok());
  auto bytes = BuildKernelImage(CompileKernel(kSeed, kernel.TakeValue()));
  ASSERT_TRUE(bytes.ok()) << bytes.error().ToString();
  auto reader = ElfReader::Parse(bytes.TakeValue());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->ident().klass, ElfClass::k32);
  EXPECT_EQ(reader->pointer_size(), 4);
}

TEST(ImageBuilderTest, PpcImageIsBigEndian) {
  KernelModel model(kSeed, kTestScale, BuildCuratedCatalog());
  auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4), Arch::kPpc));
  ASSERT_TRUE(kernel.ok());
  auto bytes = BuildKernelImage(CompileKernel(kSeed, kernel.TakeValue()));
  ASSERT_TRUE(bytes.ok());
  auto reader = ElfReader::Parse(bytes.TakeValue());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->endian(), Endian::kBig);
  auto btf_data = reader->SectionDataByName(kSectionBtf);
  ASSERT_TRUE(btf_data.ok());
  EXPECT_TRUE(DecodeBtf(*btf_data).ok());  // BTF follows image endianness
}

TEST(CorpusTest, Shapes) {
  EXPECT_EQ(X86GenericSeries().size(), 17u);
  EXPECT_EQ(DependencyAnalysisCorpus().size(), 21u);
  EXPECT_EQ(StudyCorpus().size(), 25u);
  EXPECT_EQ(StudyCorpus()[0].gcc_major, 5);
}

}  // namespace
}  // namespace depsurf
