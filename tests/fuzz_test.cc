// Coverage-guided fuzzing engine tests: determinism of a seeded campaign,
// the guided-beats-blind acceptance bar, the salvage-vs-strict oracle on
// clean and poisoned inputs, corpus minimization, the wall-clock guard, and
// depsurf.fuzz_campaign.v1 schema validation.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "src/bpf/bpf_builder.h"
#include "src/elf/elf_reader.h"
#include "src/faultgen/fault_injector.h"
#include "src/fuzz/fuzz_campaign.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"
#include "src/kernelgen/rates.h"
#include "src/obs/json_lint.h"
#include "src/study/study.h"

namespace depsurf {
namespace {

std::vector<uint8_t> SmallImage(KernelVersion version = KernelVersion(5, 4)) {
  KernelModel model(7, 0.005, BuildCuratedCatalog());
  auto kernel = model.Configure(MakeBuild(version));
  auto image = BuildKernelImage(CompileKernel(7, kernel.TakeValue()));
  return image.TakeValue();
}

std::vector<uint8_t> SmallObject() {
  BpfObjectBuilder builder("probe");
  builder.AttachKprobe("vfs_fsync").AttachTracepoint("block", "block_rq_issue");
  Status ok = builder.AccessField("request", "rq_disk", "struct gendisk *");
  (void)ok;
  return WriteBpfObject(builder.Build()).TakeValue();
}

FuzzOptions FastOptions(uint64_t rounds, uint64_t seed) {
  FuzzOptions options;
  options.rounds = rounds;
  options.seed = seed;
  options.time_budget_ms = 0;  // inline, no detached workers in unit tests
  return options;
}

FuzzCampaignResult RunImageCampaign(uint64_t rounds, uint64_t seed) {
  std::vector<FuzzSeed> seeds;
  seeds.push_back({"img", SmallImage()});
  auto result = RunFuzzCampaign(std::move(seeds), FastOptions(rounds, seed));
  EXPECT_TRUE(result.ok()) << result.error().ToString();
  return result.TakeValue();
}

TEST(FuzzCampaignTest, SeededCampaignIsDeterministic) {
  FuzzCampaignResult a = RunImageCampaign(32, 11);
  FuzzCampaignResult b = RunImageCampaign(32, 11);
  EXPECT_EQ(RenderFuzzCampaignJson(a), RenderFuzzCampaignJson(b));
  EXPECT_EQ(a.minimized, b.minimized);
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(a.corpus[i].bytes, b.corpus[i].bytes) << a.corpus[i].name;
  }
}

TEST(FuzzCampaignTest, GuidedCampaignBeatsBlindSweep) {
  // The acceptance bar: same seed corpus, same 64-mutation budget, strictly
  // more distinct coverage keys than the doctor --sweep shape.
  std::vector<FuzzSeed> seeds;
  seeds.push_back({"img", SmallImage()});
  std::vector<std::string> blind =
      RunBlindSweep(seeds, SeedMode::kImage, 64, 2025);
  auto guided = RunFuzzCampaign(std::move(seeds), FastOptions(64, 2025));
  ASSERT_TRUE(guided.ok()) << guided.error().ToString();
  EXPECT_GT(guided->coverage.size(), blind.size());
}

TEST(FuzzCampaignTest, CampaignOnCleanSeedsHasNoOracleDisagreements) {
  FuzzCampaignResult result = RunImageCampaign(48, 3);
  EXPECT_TRUE(result.disagreements.empty());
  EXPECT_TRUE(result.hangs.empty());
  EXPECT_EQ(result.ExitCode(), 0);
}

TEST(FuzzCampaignTest, ObjectModeCampaignRuns) {
  std::vector<FuzzSeed> seeds;
  seeds.push_back({"probe.o", SmallObject()});
  auto result = RunFuzzCampaign(std::move(seeds), FastOptions(32, 5));
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  EXPECT_EQ(result->mode, SeedMode::kObject);
  EXPECT_TRUE(result->disagreements.empty());
  EXPECT_GT(result->coverage.size(), 1u);
}

TEST(FuzzCampaignTest, MinimizedCorpusCoversAllCoverage) {
  FuzzCampaignResult result = RunImageCampaign(48, 17);
  std::set<std::string> covered;
  for (size_t index : result.minimized) {
    ASSERT_LT(index, result.corpus.size());
    covered.insert(result.corpus[index].tuples.begin(),
                   result.corpus[index].tuples.end());
  }
  for (const std::string& tuple : result.coverage) {
    EXPECT_TRUE(covered.count(tuple)) << "uncovered: " << tuple;
  }
  // Minimization must never keep more entries than the corpus has.
  EXPECT_LE(result.minimized.size(), result.corpus.size());
}

TEST(FuzzCampaignTest, CorpusLineageReplays) {
  // Every non-seed entry records (parent, kind, fault_seed); replaying the
  // mutation against the parent's bytes must reproduce the entry exactly.
  FuzzCampaignResult result = RunImageCampaign(48, 23);
  for (const FuzzCorpusEntry& entry : result.corpus) {
    if (entry.is_seed) continue;
    ASSERT_LT(entry.parent, entry.index);
    std::vector<uint8_t> replay = result.corpus[entry.parent].bytes;
    FaultKind kind = FaultKind::kByteFlip;
    bool found = false;
    for (int k = 0; k < kNumFaultKinds; ++k) {
      if (entry.kind == FaultKindName(static_cast<FaultKind>(k))) {
        kind = static_cast<FaultKind>(k);
        found = true;
      }
    }
    ASSERT_TRUE(found) << entry.kind;
    std::string description = ApplyFault(replay, kind, entry.fault_seed);
    EXPECT_EQ(description, entry.description);
    EXPECT_EQ(replay, entry.bytes) << entry.name;
  }
}

TEST(FuzzCampaignTest, EmptySeedListIsAnError) {
  auto result = RunFuzzCampaign({}, FastOptions(8, 1));
  EXPECT_FALSE(result.ok());
}

TEST(FuzzCampaignTest, ExitCodePriorities) {
  FuzzCampaignResult result;
  EXPECT_EQ(result.ExitCode(), 0);
  result.disagreements.push_back({0, "byte_flip", 1, "violation"});
  EXPECT_EQ(result.ExitCode(), 2);
  result.hangs.push_back({1, "truncate", 2, "hung"});
  EXPECT_EQ(result.ExitCode(), 1);  // hangs dominate disagreements
}

TEST(FuzzOracleTest, CleanLtsCorpusHasNoDisagreements) {
  for (const KernelVersion& version : kLtsVersions) {
    std::vector<uint8_t> image = SmallImage(version);
    Study::OracleOutcome outcome = Study::RunSalvageStrictOracle(image);
    EXPECT_TRUE(outcome.salvage_ok) << version.ToString();
    EXPECT_TRUE(outcome.strict_ok) << version.ToString();
    EXPECT_FALSE(outcome.degraded) << version.ToString();
    for (const std::string& violation : outcome.violations) {
      ADD_FAILURE() << version.ToString() << ": " << violation;
    }
  }
}

TEST(FuzzOracleTest, CleanObjectHasNoDisagreements) {
  Study::OracleOutcome outcome =
      Study::RunObjectSalvageStrictOracle(SmallObject());
  EXPECT_TRUE(outcome.salvage_ok);
  EXPECT_TRUE(outcome.strict_ok);
  EXPECT_EQ(outcome.ledger_entries, 0u);
  for (const std::string& violation : outcome.violations) {
    ADD_FAILURE() << violation;
  }
}

TEST(FuzzOracleTest, CorruptDwarfIsAnExplainedDisagreement) {
  // The documented quarantine contract: salvage accepts a degraded image
  // that strict rejects, and the ledger explains it — not a violation.
  std::vector<uint8_t> image = SmallImage();
  auto elf = ElfReader::Parse(image);
  ASSERT_TRUE(elf.ok());
  const ElfSectionView* info = elf->SectionByName(".sdwarf_info");
  ASSERT_NE(info, nullptr);
  ASSERT_GT(info->size, 16u);
  for (size_t i = 0; i < 16; ++i) {
    image[static_cast<size_t>(info->offset) + i] = 0xff;
  }
  Study::OracleOutcome outcome = Study::RunSalvageStrictOracle(image);
  EXPECT_TRUE(outcome.salvage_ok);
  EXPECT_FALSE(outcome.strict_ok);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_GT(outcome.ledger_entries, 0u);
  for (const std::string& violation : outcome.violations) {
    ADD_FAILURE() << violation;
  }
}

TEST(FuzzOracleTest, PoisonedSectionHeaderIsFatalForBothPolicies) {
  // sh_offset past end-of-file kills the container for salvage and strict
  // alike — agreement, not a disagreement. The error must still explain
  // itself (the oracle flags empty fatal messages).
  std::vector<uint8_t> image = SmallImage();
  ASSERT_TRUE(PoisonSectionHeader(image, ".sdwarf_info"));
  Study::OracleOutcome outcome = Study::RunSalvageStrictOracle(image);
  EXPECT_FALSE(outcome.salvage_ok);
  EXPECT_FALSE(outcome.strict_ok);
  for (const std::string& violation : outcome.violations) {
    ADD_FAILURE() << violation;
  }
}

TEST(FuzzGuardTest, WallClockGuardTripsOnSlowWork) {
  EXPECT_FALSE(RunWithWallClock(20, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }));
  bool ran = false;
  EXPECT_TRUE(RunWithWallClock(5000, [&ran] { ran = true; }));
  EXPECT_TRUE(ran);
}

TEST(FuzzGuardTest, ZeroBudgetRunsInline) {
  bool ran = false;
  EXPECT_TRUE(RunWithWallClock(0, [&ran] { ran = true; }));
  EXPECT_TRUE(ran);
}

TEST(FuzzReportTest, RenderedCampaignValidates) {
  FuzzCampaignResult result = RunImageCampaign(24, 9);
  std::string json = RenderFuzzCampaignJson(result);
  Status valid = obs::ValidateFuzzCampaignDoc(json);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(FuzzReportTest, LintRejectsTamperedDocuments) {
  FuzzCampaignResult result = RunImageCampaign(16, 9);
  std::string json = RenderFuzzCampaignJson(result);

  std::string wrong_schema = json;
  size_t at = wrong_schema.find("fuzz_campaign.v1");
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, 16, "fuzz_campaign.v9");
  EXPECT_FALSE(obs::ValidateFuzzCampaignDoc(wrong_schema).ok());

  // exit_code must agree with the (empty) hang/disagreement arrays.
  std::string wrong_exit = json;
  at = wrong_exit.rfind("\"exit_code\": 0");
  ASSERT_NE(at, std::string::npos);
  wrong_exit.replace(at, 14, "\"exit_code\": 2");
  EXPECT_FALSE(obs::ValidateFuzzCampaignDoc(wrong_exit).ok());

  EXPECT_FALSE(obs::ValidateFuzzCampaignDoc("{}").ok());
  EXPECT_FALSE(obs::ValidateFuzzCampaignDoc("not json").ok());
}

}  // namespace
}  // namespace depsurf
