#!/usr/bin/env bash
# End-to-end robustness smoke, registered with ctest as `robustness-smoke`
# (labeled `robustness`, so it also runs under DEPSURF_SANITIZE builds).
# Drives `depsurf doctor` over a clean image, a hand-poisoned one, and a
# seeded fault-injection sweep, runs a short coverage-guided fuzz campaign
# (deterministic across reruns, lintable fuzz_campaign.v1 document), then
# walks the quarantine path of `study build` end to end: --keep-going must
# finish with the poisoned image quarantined and listed in the aggregate
# report; --strict must fail.
set -eu

DEPSURF=${1:?usage: robustness_smoke.sh /path/to/depsurf}
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

fail() {
  echo "robustness_smoke: FAIL: $*" >&2
  exit 1
}

# ---- doctor on a clean image: exit 0, clean health, valid JSON document.
"$DEPSURF" gen --version=5.4 --scale=0.02 --out=img || fail "gen exited $?"
"$DEPSURF" doctor img > doctor.txt || fail "doctor on clean image exited $?"
grep -q "clean" doctor.txt || fail "clean image not reported clean"
"$DEPSURF" doctor img --json > doctor.json || fail "doctor --json exited $?"
"$DEPSURF" metrics lint doctor.json --kind=diag || fail "diagnostics doc invalid"

# ---- doctor on a salvaged image: damage the image body, expect exit 2
# and ledger entries in the JSON document.
python3 - <<'EOF'
bytes = bytearray(open('img', 'rb').read())
# Clobber a window in the middle of the file: hits section bodies, not the
# ELF container, so extraction salvages instead of dying.
mid = len(bytes) // 2
bytes[mid:mid + 256] = b'\xff' * 256
open('damaged', 'wb').write(bytes)
EOF
set +e
"$DEPSURF" doctor damaged --json > damaged.json
code=$?
set -e
[ "$code" -eq 0 ] || [ "$code" -eq 2 ] || fail "doctor on damaged image exited $code"
"$DEPSURF" metrics lint damaged.json --kind=diag || fail "damaged diagnostics doc invalid"

# ---- seeded sweep: 64 mutations, no crash, deterministic across reruns.
"$DEPSURF" doctor img --sweep=64 --seed=11 > sweep1.txt || fail "sweep exited $?"
grep -q "0 crashes" sweep1.txt || fail "sweep summary missing"
"$DEPSURF" doctor img --sweep=64 --seed=11 > sweep2.txt || fail "sweep rerun exited $?"
cmp -s sweep1.txt sweep2.txt || fail "sweep is not deterministic"

# ---- malformed sweep flags must exit 1 and name the offending flag.
set +e
"$DEPSURF" doctor img --sweep=abc 2> badsweep.err
code=$?
set -e
[ "$code" -eq 1 ] || fail "doctor --sweep=abc exited $code, want 1"
grep -q -- "--sweep" badsweep.err || fail "sweep flag error does not name --sweep"
set +e
"$DEPSURF" doctor img --sweep=8 --seed=-3 2> badseed.err
code=$?
set -e
[ "$code" -eq 1 ] || fail "doctor --seed=-3 exited $code, want 1"
grep -q -- "--seed" badseed.err || fail "seed flag error does not name --seed"

# ---- short fuzz campaign: deterministic across reruns (identical JSON and
# corpus bytes), lintable document, and a minimized corpus on disk.
"$DEPSURF" fuzz img --rounds=24 --seed=7 --corpus-dir=corpus1 --json > fuzz1.json \
  || fail "fuzz campaign exited $?"
"$DEPSURF" fuzz img --rounds=24 --seed=7 --corpus-dir=corpus2 --json > fuzz2.json \
  || fail "fuzz campaign rerun exited $?"
cmp -s fuzz1.json fuzz2.json || fail "fuzz campaign is not deterministic"
for f in corpus1/*; do
  cmp -s "$f" "corpus2/$(basename "$f")" || fail "corpus file $(basename "$f") differs across reruns"
done
"$DEPSURF" metrics lint fuzz1.json --kind=fuzz || fail "fuzz campaign doc invalid"
"$DEPSURF" metrics lint corpus1/campaign.json --kind=fuzz || fail "corpus campaign.json invalid"
ls corpus1/fuzz_0000_seed.bin > /dev/null || fail "corpus is missing the seed entry"

# ---- study build --keep-going with one poisoned image: completes, the
# poisoned image is quarantined, and the aggregate lists its fatal entry.
mkdir -p reps
"$DEPSURF" study build --versions=5.4,5.8 --scale=0.02 \
  --poison=v5.8-x86-generic-gcc10 --report-dir=reps --out=ds > study.txt \
  || fail "keep-going study build exited $?"
grep -q "quarantined v5.8-x86-generic-gcc10" study.txt || fail "no quarantine line"
grep -q "1 images" study.txt || fail "dataset should hold only the survivor"
"$DEPSURF" metrics lint reps/report_agg.json --kind=agg || fail "aggregate invalid"
grep -q '"severity": "fatal"' reps/report_agg.json \
  || fail "aggregate is missing the quarantined image's fatal diagnostic"
grep -q '"label": "v5.8-x86-generic-gcc10"' reps/report_agg.json \
  || fail "aggregate diagnostic is not attributed to the poisoned image"

# ---- the same corpus under --strict must fail.
set +e
"$DEPSURF" study build --versions=5.4,5.8 --scale=0.02 \
  --poison=v5.8-x86-generic-gcc10 --strict > strict.txt 2> strict.err
code=$?
set -e
[ "$code" -ne 0 ] || fail "strict build succeeded over a poisoned corpus"
grep -q "v5.8-x86-generic-gcc10" strict.err || fail "strict error does not name the image"

echo "robustness_smoke: PASS"
