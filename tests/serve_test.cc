// Dataset-as-a-service tests: batched NDJSON queries against v1 and v2
// datasets, response determinism across --jobs values, cache accounting,
// and the depsurf.serve_report.v1 contract.
#include "src/serve/serve.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/bpf/bpf_object.h"
#include "src/bpfgen/program_corpus.h"
#include "src/core/dataset_io.h"
#include "src/core/depsurf.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"
#include "src/obs/json_lint.h"

namespace depsurf {
namespace {

struct ServeFixture {
  std::string dir;
  std::string v1_path;
  std::string v2_path;
  std::string object_path;
};

const ServeFixture& Fixture() {
  static const ServeFixture fixture = [] {
    ServeFixture out;
    char tmpl[] = "/tmp/depsurf_serve_test_XXXXXX";
    const char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    out.dir = dir != nullptr ? dir : ".";

    Dataset dataset;
    KernelModel model(2025, 0.01, BuildCuratedCatalog());
    for (KernelVersion version : {KernelVersion(5, 4), KernelVersion(6, 2)}) {
      auto kernel = model.Configure(MakeBuild(version));
      EXPECT_TRUE(kernel.ok());
      auto bytes = BuildKernelImage(CompileKernel(2025, kernel.TakeValue()));
      EXPECT_TRUE(bytes.ok());
      auto surface = DependencySurface::Extract(bytes.TakeValue());
      EXPECT_TRUE(surface.ok());
      dataset.AddImage(version.Tag(), *surface);
    }
    out.v1_path = out.dir + "/ds_v1.dds";
    out.v2_path = out.dir + "/ds_v2.dds";
    for (const auto& [path, bytes] :
         {std::pair<std::string, std::vector<uint8_t>>{out.v1_path, SaveDataset(dataset)},
          {out.v2_path, SaveDatasetV2(dataset)}}) {
      std::ofstream file(path, std::ios::binary);
      file.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }

    out.object_path = out.dir + "/biotop.o";
    for (const BpfObject& object : BuildProgramCorpus().objects) {
      if (object.name == "biotop") {
        auto object_bytes = WriteBpfObject(object);
        EXPECT_TRUE(object_bytes.ok());
        std::ofstream file(out.object_path, std::ios::binary);
        file.write(reinterpret_cast<const char*>(object_bytes->data()),
                   static_cast<std::streamsize>(object_bytes->size()));
      }
    }
    return out;
  }();
  return fixture;
}

std::vector<std::string> RequestBatch() {
  const std::string inline_query =
      "{\"id\": 1, \"program\": \"biotop\", \"funcs\": [\"vfs_read\"],"
      " \"fields\": {\"request\": {\"rq_disk\": {\"type\": \"struct gendisk *\","
      " \"guarded\": false}}}, \"tracepoints\": [\"block_rq_issue\"],"
      " \"syscalls\": [\"openat\"]}";
  return {
      inline_query,
      // Same dependency set, different id: in-batch duplicate, must share.
      "{\"id\": 2, \"program\": \"biotop\", \"funcs\": [\"vfs_read\"],"
      " \"fields\": {\"request\": {\"rq_disk\": {\"type\": \"struct gendisk *\","
      " \"guarded\": false}}}, \"tracepoints\": [\"block_rq_issue\"],"
      " \"syscalls\": [\"openat\"]}",
      "{\"id\": 3, \"program\": \"q3\", \"funcs\": [\"vfs_fsync\", \"get_order\"]}",
      "{\"id\": 4, \"object\": \"" + Fixture().object_path + "\"}",
      "{\"id\": 5, \"syscalls\": [\"openat2\"], \"tracepoints\": [\"no_such_event\"]}",
      "{\"id\": \"bad-1\", \"object\": \"" + Fixture().dir + "/missing.o\"}",
      "{\"id\": 6, not json",
      "[1, 2, 3]",
  };
}

TEST(ServeTest, AnswersBatchAgainstV2Dataset) {
  auto engine = ServeEngine::Open({Fixture().v2_path}, ServeOptions{});
  ASSERT_TRUE(engine.ok()) << engine.error().ToString();
  EXPECT_EQ(engine->num_datasets(), 1u);

  std::vector<std::string> responses = engine->HandleBatch(RequestBatch());
  ASSERT_EQ(responses.size(), 8u);
  // First dispatch computes; the in-batch duplicate is a hit with the same
  // body but its own id.
  EXPECT_NE(responses[0].find("\"id\": 1, \"cache\": \"miss\""), std::string::npos)
      << responses[0];
  EXPECT_NE(responses[1].find("\"id\": 2, \"cache\": \"hit\""), std::string::npos)
      << responses[1];
  EXPECT_EQ(responses[0].substr(responses[0].find("\"ok\"")),
            responses[1].substr(responses[1].find("\"ok\"")));
  EXPECT_NE(responses[0].find("\"any_mismatch\": true"), std::string::npos);
  EXPECT_NE(responses[0].find("\"format\": \"v2\""), std::string::npos);
  EXPECT_NE(responses[3].find("\"ok\": true"), std::string::npos) << responses[3];
  // Malformed requests answer with errors, in position, and never cache.
  for (size_t bad : {5u, 6u, 7u}) {
    EXPECT_NE(responses[bad].find("\"ok\": false"), std::string::npos) << responses[bad];
  }
  EXPECT_NE(responses[5].find("\"id\": \"bad-1\""), std::string::npos);

  EXPECT_EQ(engine->requests(), 8u);
  EXPECT_EQ(engine->ok_responses(), 5u);
  EXPECT_EQ(engine->error_responses(), 3u);
  EXPECT_EQ(engine->cache_hits(), 1u);
  EXPECT_EQ(engine->cache_misses(), 4u);
  EXPECT_EQ(engine->cache_entries(), 4u);

  // A second batch of the same lines is all persistent-cache hits.
  std::vector<std::string> again = engine->HandleBatch(RequestBatch());
  EXPECT_EQ(again[0].substr(again[0].find("\"ok\"")),
            responses[0].substr(responses[0].find("\"ok\"")));
  EXPECT_NE(again[0].find("\"cache\": \"hit\""), std::string::npos);
  EXPECT_EQ(engine->cache_hits(), 6u);
  EXPECT_EQ(engine->cache_misses(), 4u);
  EXPECT_EQ(engine->cache_entries(), 4u);
}

TEST(ServeTest, ResponsesAreByteIdenticalAcrossJobs) {
  std::vector<std::vector<std::string>> all_responses;
  std::vector<std::string> all_reports;
  for (int jobs : {1, 8}) {
    ServeOptions options;
    options.jobs = jobs;
    auto engine = ServeEngine::Open({Fixture().v1_path, Fixture().v2_path}, options);
    ASSERT_TRUE(engine.ok()) << engine.error().ToString();
    all_responses.push_back(engine->HandleBatch(RequestBatch()));
    std::string report = engine->ReportJson();
    // Reports differ only in the jobs field; mask it for comparison.
    size_t jobs_pos = report.find("\"jobs\": ");
    ASSERT_NE(jobs_pos, std::string::npos);
    report.erase(jobs_pos, report.find('\n', jobs_pos) - jobs_pos);
    all_reports.push_back(report);
  }
  EXPECT_EQ(all_responses[0], all_responses[1]);
  EXPECT_EQ(all_reports[0], all_reports[1]);
}

TEST(ServeTest, V1AndV2DatasetsAnswerIdenticalRows) {
  auto v1 = ServeEngine::Open({Fixture().v1_path}, ServeOptions{});
  auto v2 = ServeEngine::Open({Fixture().v2_path}, ServeOptions{});
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  std::vector<std::string> a = v1->HandleBatch(RequestBatch());
  std::vector<std::string> b = v2->HandleBatch(RequestBatch());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // The payloads differ only in the dataset path/format markers; the
    // analysis rows must match cell for cell.
    size_t rows_a = a[i].find("\"rows\"");
    size_t rows_b = b[i].find("\"rows\"");
    EXPECT_EQ(rows_a == std::string::npos, rows_b == std::string::npos) << a[i];
    if (rows_a != std::string::npos) {
      EXPECT_EQ(a[i].substr(rows_a), b[i].substr(rows_b)) << i;
    }
  }
}

TEST(ServeTest, ReportJsonIsValidAndAccountsForEverything) {
  ServeOptions options;
  options.cache_capacity = 2;  // force the admission bound to bind
  auto engine = ServeEngine::Open({Fixture().v2_path}, options);
  ASSERT_TRUE(engine.ok());
  engine->HandleBatch(RequestBatch());
  std::string report = engine->ReportJson();
  Status valid = obs::ValidateServeReportDoc(report);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << report;
  // 4 distinct computed results, capacity 2: admission stops at the cap.
  EXPECT_EQ(engine->cache_entries(), 2u);
  EXPECT_NE(report.find("\"entries\": 2, \"capacity\": 2"), std::string::npos) << report;

  // The validator rejects documents whose counters do not reconcile.
  std::string broken = report;
  size_t pos = broken.find("\"requests\": 8");
  ASSERT_NE(pos, std::string::npos);
  broken.replace(pos, 13, "\"requests\": 9");
  EXPECT_FALSE(obs::ValidateServeReportDoc(broken).ok());
  EXPECT_FALSE(obs::ValidateServeReportDoc("{}").ok());
  EXPECT_FALSE(obs::ValidateServeReportDoc("not json").ok());
}

TEST(ServeTest, OpenFailsLoudly) {
  EXPECT_FALSE(ServeEngine::Open({}, ServeOptions{}).ok());
  auto missing = ServeEngine::Open({Fixture().dir + "/nope.dds"}, ServeOptions{});
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().message().find("nope.dds"), std::string::npos);
}

}  // namespace
}  // namespace depsurf
