#include <gtest/gtest.h>

#include "src/bpf/bpf_builder.h"
#include "src/bpf/bpf_object.h"

namespace depsurf {
namespace {

TEST(HookSectionTest, ParseKnownForms) {
  auto k = ParseHookSection("kprobe/do_unlinkat");
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(k->kind, HookKind::kKprobe);
  EXPECT_EQ(k->target, "do_unlinkat");

  auto kr = ParseHookSection("kretprobe/vfs_read");
  ASSERT_TRUE(kr.has_value());
  EXPECT_EQ(kr->kind, HookKind::kKretprobe);

  auto tp = ParseHookSection("tracepoint/block/block_rq_issue");
  ASSERT_TRUE(tp.has_value());
  EXPECT_EQ(tp->kind, HookKind::kTracepoint);
  EXPECT_EQ(tp->category, "block");
  EXPECT_EQ(tp->target, "block_rq_issue");

  auto tp2 = ParseHookSection("tp/sched/sched_switch");
  ASSERT_TRUE(tp2.has_value());
  EXPECT_EQ(tp2->target, "sched_switch");

  auto raw = ParseHookSection("raw_tracepoint/sched_switch");
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->kind, HookKind::kRawTracepoint);

  auto sc = ParseHookSection("tracepoint/syscalls/sys_enter_openat");
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->kind, HookKind::kSyscallEnter);
  EXPECT_EQ(sc->target, "openat");

  auto sx = ParseHookSection("tp/syscalls/sys_exit_close");
  ASSERT_TRUE(sx.has_value());
  EXPECT_EQ(sx->kind, HookKind::kSyscallExit);
  EXPECT_EQ(sx->target, "close");

  EXPECT_TRUE(ParseHookSection("lsm/file_open").has_value());
  EXPECT_TRUE(ParseHookSection("fentry/vfs_fsync").has_value());
  EXPECT_FALSE(ParseHookSection(".maps").has_value());
  EXPECT_FALSE(ParseHookSection("license").has_value());
  EXPECT_FALSE(ParseHookSection("tracepoint/onlyonepart").has_value());
  EXPECT_FALSE(ParseHookSection("tracepoint/syscalls/unrelated").has_value());
}

TEST(HookSectionTest, ParseModernSpellings) {
  // libbpf section spellings newer tools emit: multi-attach kprobes,
  // sleepable fentry/lsm variants, and fmod_ret (which attaches at function
  // entry via the same trampoline as fentry).
  auto multi = ParseHookSection("kprobe.multi/vfs_*");
  ASSERT_TRUE(multi.has_value());
  EXPECT_EQ(multi->kind, HookKind::kKprobe);
  EXPECT_EQ(multi->target, "vfs_*");

  auto sleepable = ParseHookSection("fentry.s/vfs_fsync");
  ASSERT_TRUE(sleepable.has_value());
  EXPECT_EQ(sleepable->kind, HookKind::kFentry);
  EXPECT_EQ(sleepable->target, "vfs_fsync");

  auto fmod = ParseHookSection("fmod_ret/security_file_open");
  ASSERT_TRUE(fmod.has_value());
  EXPECT_EQ(fmod->kind, HookKind::kFentry);
  EXPECT_EQ(fmod->target, "security_file_open");

  auto lsm_s = ParseHookSection("lsm.s/bprm_check_security");
  ASSERT_TRUE(lsm_s.has_value());
  EXPECT_EQ(lsm_s->kind, HookKind::kLsm);
  EXPECT_EQ(lsm_s->target, "bprm_check_security");
}

TEST(HookSectionTest, FexitObjectRoundTrip) {
  BpfObjectBuilder builder("exitprobe");
  builder.AttachFexit("vfs_read");
  BpfObject original = builder.Build();
  ASSERT_EQ(original.programs.size(), 1u);
  EXPECT_EQ(HookSectionName(original.programs[0].hook), "fexit/vfs_read");

  auto bytes = WriteBpfObject(original);
  ASSERT_TRUE(bytes.ok()) << bytes.error().ToString();
  auto parsed = ParseBpfObject(bytes.TakeValue());
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  ASSERT_EQ(parsed->programs.size(), 1u);
  EXPECT_EQ(parsed->programs[0].hook.kind, HookKind::kFexit);
  EXPECT_EQ(parsed->programs[0].hook.target, "vfs_read");
}

TEST(HookSectionTest, RoundTripNames) {
  for (const char* name :
       {"kprobe/do_unlinkat", "kretprobe/vfs_read", "tracepoint/block/block_rq_issue",
        "raw_tracepoint/sched_switch", "tracepoint/syscalls/sys_enter_openat",
        "tracepoint/syscalls/sys_exit_close", "fentry/vfs_fsync", "lsm/file_open"}) {
    auto hook = ParseHookSection(name);
    ASSERT_TRUE(hook.has_value()) << name;
    EXPECT_EQ(HookSectionName(*hook), name);
  }
}

TEST(BpfBuilderTest, BuildsBiotopLikeObject) {
  BpfObjectBuilder builder("biotop");
  builder.AttachKprobe("blk_account_io_start")
      .AttachKprobe("blk_account_io_done")
      .AttachKprobe("blk_mq_start_request");
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder
                  .AccessChain({{"request", "rq_disk", "struct gendisk *"},
                                {"gendisk", "disk_name", "char[32]"}})
                  .ok());
  BpfObject object = builder.Build();
  EXPECT_EQ(object.programs.size(), 3u);
  EXPECT_EQ(object.relocs.size(), 2u);

  // The chained access resolves to both links.
  auto chain = ResolveReloc(object.btf, object.relocs[1]);
  ASSERT_TRUE(chain.ok()) << chain.error().ToString();
  ASSERT_EQ(chain->size(), 2u);
  EXPECT_EQ((*chain)[0].struct_name, "request");
  EXPECT_EQ((*chain)[0].field_name, "rq_disk");
  EXPECT_EQ((*chain)[0].field_type, "struct gendisk *");
  EXPECT_EQ((*chain)[1].struct_name, "gendisk");
  EXPECT_EQ((*chain)[1].field_name, "disk_name");
}

TEST(BpfBuilderTest, FieldExistsCheck) {
  BpfObjectBuilder builder("probe");
  ASSERT_TRUE(builder.CheckFieldExists("request_queue", "disk", "struct gendisk *").ok());
  BpfObject object = builder.Build();
  ASSERT_EQ(object.relocs.size(), 1u);
  EXPECT_EQ(object.relocs[0].kind, CoreRelocKind::kFieldExists);
  auto access = ResolveReloc(object.btf, object.relocs[0]);
  ASSERT_TRUE(access.ok());
  EXPECT_TRUE((*access)[0].exists_check);
}

TEST(BpfBuilderTest, RepeatedAccessReusesFieldIndex) {
  BpfObjectBuilder builder("tool");
  ASSERT_TRUE(builder.AccessField("task_struct", "pid", "pid_t").ok());
  ASSERT_TRUE(builder.AccessField("task_struct", "comm", "char[16]").ok());
  ASSERT_TRUE(builder.AccessField("task_struct", "pid", "pid_t").ok());
  BpfObject object = builder.Build();
  ASSERT_EQ(object.relocs.size(), 3u);
  EXPECT_EQ(object.relocs[0].access_str, "0:0");
  EXPECT_EQ(object.relocs[1].access_str, "0:1");
  EXPECT_EQ(object.relocs[2].access_str, "0:0");
}

TEST(BpfCodecTest, ObjectRoundTrip) {
  BpfObjectBuilder builder("opensnoop");
  builder.AttachSyscall("openat").AttachSyscall("openat", /*exit=*/true);
  builder.AttachTracepoint("sched", "sched_process_exit");
  ASSERT_TRUE(builder.AccessField("task_struct", "pid", "pid_t").ok());
  BpfObject original = builder.Build();

  auto bytes = WriteBpfObject(original);
  ASSERT_TRUE(bytes.ok()) << bytes.error().ToString();
  auto parsed = ParseBpfObject(bytes.TakeValue());
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();

  EXPECT_EQ(parsed->name, "opensnoop");
  ASSERT_EQ(parsed->programs.size(), original.programs.size());
  for (size_t i = 0; i < original.programs.size(); ++i) {
    EXPECT_EQ(parsed->programs[i].hook, original.programs[i].hook);
    EXPECT_EQ(parsed->programs[i].name, original.programs[i].name);
  }
  EXPECT_EQ(parsed->relocs, original.relocs);
  EXPECT_EQ(parsed->btf.num_types(), original.btf.num_types());
  auto access = ResolveReloc(parsed->btf, parsed->relocs[0]);
  ASSERT_TRUE(access.ok());
  EXPECT_EQ((*access)[0].struct_name, "task_struct");
}

TEST(BpfCodecTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseBpfObject({1, 2, 3}).ok());
}

TEST(BpfInsnTest, EncodeDecodeRoundTrip) {
  std::vector<BpfInsn> insns = {
      LoadImm64(3, 0x1122334455667788),
      LoadField(2, 1, 0),
      LoadField(4, 1, 104, kOpLdxMemW),
      MovImm(0, -1),
      JumpEqImm(3, 0, 2),
      CallHelperInsn(25),
      JumpAlways(-3),
      ExitInsn(),
  };
  std::vector<uint8_t> bytes = EncodeInsns(insns);
  EXPECT_EQ(bytes.size(), EncodedSize(insns));
  // ld_imm64 occupies two 8-byte slots.
  EXPECT_EQ(bytes.size(), (insns.size() + 1) * 8);

  ByteReader reader(bytes, Endian::kLittle);
  std::vector<BpfInsn> decoded = DecodeInsns(reader, nullptr);
  ASSERT_EQ(decoded.size(), insns.size());
  for (size_t i = 0; i < insns.size(); ++i) {
    EXPECT_EQ(decoded[i], insns[i]) << "insn " << i << ": " << insns[i].ToString();
  }
  EXPECT_EQ(decoded[0].Imm64(), 0x1122334455667788);
}

TEST(BpfInsnTest, DecodeSalvagesTruncatedStream) {
  std::vector<BpfInsn> insns = {LoadField(2, 1, 0), ExitInsn()};
  std::vector<uint8_t> bytes = EncodeInsns(insns);
  bytes.resize(bytes.size() - 3);  // cut mid-slot

  DiagnosticLedger ledger;
  ByteReader reader(bytes, Endian::kLittle);
  std::vector<BpfInsn> decoded = DecodeInsns(reader, &ledger);
  ASSERT_EQ(decoded.size(), 1u);  // prefix survives
  EXPECT_EQ(decoded[0], insns[0]);
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger.entries()[0].subsystem, DiagSubsystem::kBpf);
  EXPECT_TRUE(ledger.entries()[0].has_offset);
  EXPECT_EQ(ledger.entries()[0].offset, 8u);
}

TEST(BpfInsnTest, DecodeSalvagesUnknownOpcode) {
  std::vector<BpfInsn> insns = {MovImm(0, 0), ExitInsn()};
  std::vector<uint8_t> bytes = EncodeInsns(insns);
  bytes[8] = 0xff;  // clobber the second opcode

  DiagnosticLedger ledger;
  ByteReader reader(bytes, Endian::kLittle);
  std::vector<BpfInsn> decoded = DecodeInsns(reader, &ledger);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], insns[0]);
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger.entries()[0].offset, 8u);
}

TEST(BpfInsnTest, DecodeSalvagesWideInsnMissingSecondSlot) {
  std::vector<BpfInsn> insns = {ExitInsn(), LoadImm64(1, 42)};
  std::vector<uint8_t> bytes = EncodeInsns(insns);
  bytes.resize(16);  // keep exit + the first slot of the ld_imm64 only

  DiagnosticLedger ledger;
  ByteReader reader(bytes, Endian::kLittle);
  std::vector<BpfInsn> decoded = DecodeInsns(reader, &ledger);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(decoded[0].IsExit());
  EXPECT_EQ(ledger.size(), 1u);
}

TEST(BpfBuilderTest, EmitsInsnStreamWithRelocBindings) {
  BpfObjectBuilder builder("probe");
  builder.AttachKprobe("vfs_fsync");
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  builder.CallHelper(6);
  BpfObject object = builder.Build();

  ASSERT_EQ(object.programs.size(), 1u);
  const std::vector<BpfInsn>& insns = object.programs[0].insns;
  // load (reloc), call, synthesized exit
  ASSERT_EQ(insns.size(), 3u);
  EXPECT_TRUE(insns[0].IsLoad());
  EXPECT_TRUE(insns[1].IsCall());
  EXPECT_TRUE(insns[2].IsExit());

  ASSERT_EQ(object.relocs.size(), 1u);
  EXPECT_EQ(object.relocs[0].prog_index, 0u);
  EXPECT_EQ(object.relocs[0].insn_off, 0u);
}

TEST(BpfBuilderTest, GuardEmitsPatchedBranch) {
  BpfObjectBuilder builder("probe");
  builder.AttachKprobe("vfs_fsync");
  ASSERT_TRUE(builder.BeginGuard("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.EndGuard().ok());
  BpfObject object = builder.Build();

  const std::vector<BpfInsn>& insns = object.programs[0].insns;
  // ld_imm64 (exists probe), jeq, load, exit
  ASSERT_EQ(insns.size(), 4u);
  EXPECT_EQ(insns[0].opcode, kOpLdImm64);
  EXPECT_EQ(insns[1].opcode, kOpJeqImm);
  // The branch skips the guarded body: from the slot after the jeq (slot 3,
  // since ld_imm64 is two slots) to the end-of-guard slot (4).
  EXPECT_EQ(insns[1].offset, 1);
  EXPECT_TRUE(insns[2].IsLoad());

  // Both relocs bound; the exists probe binds at byte 0, the load after the
  // two-slot ld_imm64 + jeq at byte 24.
  ASSERT_EQ(object.relocs.size(), 2u);
  EXPECT_EQ(object.relocs[0].kind, CoreRelocKind::kFieldExists);
  EXPECT_EQ(object.relocs[0].insn_off, 0u);
  EXPECT_EQ(object.relocs[1].kind, CoreRelocKind::kFieldByteOffset);
  EXPECT_EQ(object.relocs[1].insn_off, 24u);
}

TEST(BpfCodecTest, InsnStreamRoundTrip) {
  BpfObjectBuilder builder("probe");
  builder.AttachKprobe("vfs_fsync");
  ASSERT_TRUE(builder.BeginGuard("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder.EndGuard().ok());
  builder.CallHelper(25).RawOffsetDeref(104);
  BpfObject original = builder.Build();

  auto bytes = WriteBpfObject(original);
  ASSERT_TRUE(bytes.ok());
  auto parsed = ParseBpfObject(bytes.TakeValue());
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  ASSERT_EQ(parsed->programs.size(), 1u);
  EXPECT_EQ(parsed->programs[0].insns, original.programs[0].insns);
  EXPECT_EQ(parsed->relocs, original.relocs);
}

TEST(BpfCodecTest, DanglingProgIndexClampedToUnbound) {
  BpfObjectBuilder builder("probe");
  builder.AttachKprobe("vfs_fsync");
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  BpfObject object = builder.Build();
  object.relocs[0].prog_index = 7;  // no such program

  auto bytes = WriteBpfObject(object);
  ASSERT_TRUE(bytes.ok());
  DiagnosticLedger ledger;
  auto parsed = ParseBpfObject(bytes.TakeValue(), &ledger);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->relocs[0].prog_index, kRelocUnbound);
  EXPECT_FALSE(ledger.empty());
}

TEST(ResolveRelocTest, ErrorsOnBadAccess) {
  TypeGraph btf;
  BtfTypeId i = btf.Int("int", 4);
  BtfTypeId st = btf.Struct("s", 4, {{"x", i, 0}});
  CoreReloc reloc{st, "0:7", CoreRelocKind::kFieldByteOffset};
  EXPECT_FALSE(ResolveReloc(btf, reloc).ok());  // index out of range
  CoreReloc through_int{st, "0:0:0", CoreRelocKind::kFieldByteOffset};
  EXPECT_FALSE(ResolveReloc(btf, through_int).ok());  // int is not a struct
  CoreReloc empty{st, "", CoreRelocKind::kFieldByteOffset};
  auto result = ResolveReloc(btf, empty);
  EXPECT_TRUE(!result.ok() || result->empty());
  CoreReloc bad_index{st, "0:x", CoreRelocKind::kFieldByteOffset};
  EXPECT_FALSE(ResolveReloc(btf, bad_index).ok());
}

}  // namespace
}  // namespace depsurf
