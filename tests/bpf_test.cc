#include <gtest/gtest.h>

#include "src/bpf/bpf_builder.h"
#include "src/bpf/bpf_object.h"

namespace depsurf {
namespace {

TEST(HookSectionTest, ParseKnownForms) {
  auto k = ParseHookSection("kprobe/do_unlinkat");
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(k->kind, HookKind::kKprobe);
  EXPECT_EQ(k->target, "do_unlinkat");

  auto kr = ParseHookSection("kretprobe/vfs_read");
  ASSERT_TRUE(kr.has_value());
  EXPECT_EQ(kr->kind, HookKind::kKretprobe);

  auto tp = ParseHookSection("tracepoint/block/block_rq_issue");
  ASSERT_TRUE(tp.has_value());
  EXPECT_EQ(tp->kind, HookKind::kTracepoint);
  EXPECT_EQ(tp->category, "block");
  EXPECT_EQ(tp->target, "block_rq_issue");

  auto tp2 = ParseHookSection("tp/sched/sched_switch");
  ASSERT_TRUE(tp2.has_value());
  EXPECT_EQ(tp2->target, "sched_switch");

  auto raw = ParseHookSection("raw_tracepoint/sched_switch");
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(raw->kind, HookKind::kRawTracepoint);

  auto sc = ParseHookSection("tracepoint/syscalls/sys_enter_openat");
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->kind, HookKind::kSyscallEnter);
  EXPECT_EQ(sc->target, "openat");

  auto sx = ParseHookSection("tp/syscalls/sys_exit_close");
  ASSERT_TRUE(sx.has_value());
  EXPECT_EQ(sx->kind, HookKind::kSyscallExit);
  EXPECT_EQ(sx->target, "close");

  EXPECT_TRUE(ParseHookSection("lsm/file_open").has_value());
  EXPECT_TRUE(ParseHookSection("fentry/vfs_fsync").has_value());
  EXPECT_FALSE(ParseHookSection(".maps").has_value());
  EXPECT_FALSE(ParseHookSection("license").has_value());
  EXPECT_FALSE(ParseHookSection("tracepoint/onlyonepart").has_value());
  EXPECT_FALSE(ParseHookSection("tracepoint/syscalls/unrelated").has_value());
}

TEST(HookSectionTest, RoundTripNames) {
  for (const char* name :
       {"kprobe/do_unlinkat", "kretprobe/vfs_read", "tracepoint/block/block_rq_issue",
        "raw_tracepoint/sched_switch", "tracepoint/syscalls/sys_enter_openat",
        "tracepoint/syscalls/sys_exit_close", "fentry/vfs_fsync", "lsm/file_open"}) {
    auto hook = ParseHookSection(name);
    ASSERT_TRUE(hook.has_value()) << name;
    EXPECT_EQ(HookSectionName(*hook), name);
  }
}

TEST(BpfBuilderTest, BuildsBiotopLikeObject) {
  BpfObjectBuilder builder("biotop");
  builder.AttachKprobe("blk_account_io_start")
      .AttachKprobe("blk_account_io_done")
      .AttachKprobe("blk_mq_start_request");
  ASSERT_TRUE(builder.AccessField("request", "rq_disk", "struct gendisk *").ok());
  ASSERT_TRUE(builder
                  .AccessChain({{"request", "rq_disk", "struct gendisk *"},
                                {"gendisk", "disk_name", "char[32]"}})
                  .ok());
  BpfObject object = builder.Build();
  EXPECT_EQ(object.programs.size(), 3u);
  EXPECT_EQ(object.relocs.size(), 2u);

  // The chained access resolves to both links.
  auto chain = ResolveReloc(object.btf, object.relocs[1]);
  ASSERT_TRUE(chain.ok()) << chain.error().ToString();
  ASSERT_EQ(chain->size(), 2u);
  EXPECT_EQ((*chain)[0].struct_name, "request");
  EXPECT_EQ((*chain)[0].field_name, "rq_disk");
  EXPECT_EQ((*chain)[0].field_type, "struct gendisk *");
  EXPECT_EQ((*chain)[1].struct_name, "gendisk");
  EXPECT_EQ((*chain)[1].field_name, "disk_name");
}

TEST(BpfBuilderTest, FieldExistsCheck) {
  BpfObjectBuilder builder("probe");
  ASSERT_TRUE(builder.CheckFieldExists("request_queue", "disk", "struct gendisk *").ok());
  BpfObject object = builder.Build();
  ASSERT_EQ(object.relocs.size(), 1u);
  EXPECT_EQ(object.relocs[0].kind, CoreRelocKind::kFieldExists);
  auto access = ResolveReloc(object.btf, object.relocs[0]);
  ASSERT_TRUE(access.ok());
  EXPECT_TRUE((*access)[0].exists_check);
}

TEST(BpfBuilderTest, RepeatedAccessReusesFieldIndex) {
  BpfObjectBuilder builder("tool");
  ASSERT_TRUE(builder.AccessField("task_struct", "pid", "pid_t").ok());
  ASSERT_TRUE(builder.AccessField("task_struct", "comm", "char[16]").ok());
  ASSERT_TRUE(builder.AccessField("task_struct", "pid", "pid_t").ok());
  BpfObject object = builder.Build();
  ASSERT_EQ(object.relocs.size(), 3u);
  EXPECT_EQ(object.relocs[0].access_str, "0:0");
  EXPECT_EQ(object.relocs[1].access_str, "0:1");
  EXPECT_EQ(object.relocs[2].access_str, "0:0");
}

TEST(BpfCodecTest, ObjectRoundTrip) {
  BpfObjectBuilder builder("opensnoop");
  builder.AttachSyscall("openat").AttachSyscall("openat", /*exit=*/true);
  builder.AttachTracepoint("sched", "sched_process_exit");
  ASSERT_TRUE(builder.AccessField("task_struct", "pid", "pid_t").ok());
  BpfObject original = builder.Build();

  auto bytes = WriteBpfObject(original);
  ASSERT_TRUE(bytes.ok()) << bytes.error().ToString();
  auto parsed = ParseBpfObject(bytes.TakeValue());
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();

  EXPECT_EQ(parsed->name, "opensnoop");
  ASSERT_EQ(parsed->programs.size(), original.programs.size());
  for (size_t i = 0; i < original.programs.size(); ++i) {
    EXPECT_EQ(parsed->programs[i].hook, original.programs[i].hook);
    EXPECT_EQ(parsed->programs[i].name, original.programs[i].name);
  }
  EXPECT_EQ(parsed->relocs, original.relocs);
  EXPECT_EQ(parsed->btf.num_types(), original.btf.num_types());
  auto access = ResolveReloc(parsed->btf, parsed->relocs[0]);
  ASSERT_TRUE(access.ok());
  EXPECT_EQ((*access)[0].struct_name, "task_struct");
}

TEST(BpfCodecTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseBpfObject({1, 2, 3}).ok());
}

TEST(ResolveRelocTest, ErrorsOnBadAccess) {
  TypeGraph btf;
  BtfTypeId i = btf.Int("int", 4);
  BtfTypeId st = btf.Struct("s", 4, {{"x", i, 0}});
  CoreReloc reloc{st, "0:7", CoreRelocKind::kFieldByteOffset};
  EXPECT_FALSE(ResolveReloc(btf, reloc).ok());  // index out of range
  CoreReloc through_int{st, "0:0:0", CoreRelocKind::kFieldByteOffset};
  EXPECT_FALSE(ResolveReloc(btf, through_int).ok());  // int is not a struct
  CoreReloc empty{st, "", CoreRelocKind::kFieldByteOffset};
  auto result = ResolveReloc(btf, empty);
  EXPECT_TRUE(!result.ok() || result->empty());
  CoreReloc bad_index{st, "0:x", CoreRelocKind::kFieldByteOffset};
  EXPECT_FALSE(ResolveReloc(btf, bad_index).ok());
}

}  // namespace
}  // namespace depsurf
