#include "src/util/prng.h"

#include <gtest/gtest.h>

#include <set>

namespace depsurf {
namespace {

TEST(PrngTest, Deterministic) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(PrngTest, DifferentSeedsDiverge) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(PrngTest, ForkIsKeyedNotSequential) {
  Prng base(7);
  Prng f1 = base.Fork({1, 2});
  Prng f2 = base.Fork({1, 2});
  Prng f3 = base.Fork({2, 1});
  EXPECT_EQ(f1.NextU64(), f2.NextU64());
  EXPECT_NE(Prng(7).Fork({1, 2}).NextU64(), f3.NextU64());
}

TEST(PrngTest, NextBelowBounds) {
  Prng p(99);
  EXPECT_EQ(p.NextBelow(0), 0u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(p.NextBelow(17), 17u);
  }
}

TEST(PrngTest, NextInRangeInclusive) {
  Prng p(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    uint64_t v = p.NextInRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
  EXPECT_EQ(p.NextInRange(9, 9), 9u);
  EXPECT_EQ(p.NextInRange(9, 2), 9u);  // degenerate range returns lo
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng p(123);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = p.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(PrngTest, NextBoolFrequency) {
  Prng p(55);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += p.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
  EXPECT_FALSE(Prng(1).NextBool(0.0));
  EXPECT_TRUE(Prng(1).NextBool(1.0));
}

TEST(HashTest, StringHashStable) {
  EXPECT_EQ(HashString("do_unlinkat"), HashString("do_unlinkat"));
  EXPECT_NE(HashString("do_unlinkat"), HashString("do_unlinkat2"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, CombineOrderSensitive) {
  EXPECT_NE(HashCombine({1, 2}), HashCombine({2, 1}));
  EXPECT_EQ(HashCombine({1, 2, 3}), HashCombine({1, 2, 3}));
}

}  // namespace
}  // namespace depsurf
