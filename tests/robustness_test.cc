// Failure-injection tests: the analyzer consumes untrusted binary images
// and object files; corruption at any offset must produce a structured
// error (or a benign parse), never a crash, hang, or sanitizer fault.
#include <gtest/gtest.h>

#include "src/bpf/bpf_builder.h"
#include "src/core/depsurf.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"
#include "src/kernelgen/scripted.h"
#include "src/util/prng.h"

namespace depsurf {
namespace {

std::vector<uint8_t> SmallImage() {
  static std::vector<uint8_t> bytes = [] {
    KernelModel model(7, 0.005, BuildCuratedCatalog());
    auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4)));
    auto image = BuildKernelImage(CompileKernel(7, kernel.TakeValue()));
    return image.TakeValue();
  }();
  return bytes;
}

std::vector<uint8_t> SmallObject() {
  static std::vector<uint8_t> bytes = [] {
    BpfObjectBuilder builder("probe");
    builder.AttachKprobe("vfs_fsync").AttachTracepoint("block", "block_rq_issue");
    Status ok = builder.AccessField("request", "rq_disk", "struct gendisk *");
    (void)ok;
    return WriteBpfObject(builder.Build()).TakeValue();
  }();
  return bytes;
}

class TruncationTest : public ::testing::TestWithParam<int> {};

TEST_P(TruncationTest, TruncatedImageNeverCrashes) {
  std::vector<uint8_t> bytes = SmallImage();
  // Truncate at a pseudo-random fraction derived from the parameter.
  Prng prng(static_cast<uint64_t>(GetParam()));
  size_t cut = prng.NextBelow(bytes.size());
  bytes.resize(cut);
  auto result = DependencySurface::Extract(std::move(bytes));
  if (result.ok()) {
    // A clean prefix parse is acceptable only for near-full cuts.
    EXPECT_GT(cut, SmallImage().size() / 2);
  }
}

TEST_P(TruncationTest, TruncatedObjectNeverCrashes) {
  std::vector<uint8_t> bytes = SmallObject();
  Prng prng(static_cast<uint64_t>(GetParam()) ^ 0x0b);
  bytes.resize(prng.NextBelow(bytes.size()));
  auto result = ParseBpfObject(std::move(bytes));
  // ok-or-error; never a crash.
  (void)result.ok();
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationTest, ::testing::Range(0, 24));

class CorruptionTest : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionTest, BitFlippedImageNeverCrashes) {
  std::vector<uint8_t> bytes = SmallImage();
  Prng prng(static_cast<uint64_t>(GetParam()) * 7919);
  // Flip a burst of bytes at a random position.
  size_t pos = prng.NextBelow(bytes.size() - 16);
  for (size_t i = 0; i < 16; ++i) {
    bytes[pos + i] ^= static_cast<uint8_t>(prng.NextU64());
  }
  auto result = DependencySurface::Extract(std::move(bytes));
  if (result.ok()) {
    // Corruption in padding or unused regions can legitimately parse; the
    // surface must still be internally consistent.
    for (const auto& [name, entry] : result->functions()) {
      EXPECT_EQ(name, entry.name);
    }
  }
}

TEST_P(CorruptionTest, BitFlippedObjectNeverCrashes) {
  std::vector<uint8_t> bytes = SmallObject();
  Prng prng(static_cast<uint64_t>(GetParam()) * 104729);
  size_t pos = prng.NextBelow(bytes.size() - 8);
  for (size_t i = 0; i < 8; ++i) {
    bytes[pos + i] ^= static_cast<uint8_t>(prng.NextU64());
  }
  auto parsed = ParseBpfObject(std::move(bytes));
  if (parsed.ok()) {
    auto deps = ExtractDependencySet(*parsed);
    (void)deps.ok();  // either way, no crash
  }
}

INSTANTIATE_TEST_SUITE_P(Flips, CorruptionTest, ::testing::Range(0, 24));

TEST(RobustnessTest, RelocAgainstForeignBtfIsRejectedNotCrashed) {
  // A reloc referencing a type id beyond the program's BTF must error.
  BpfObject object;
  object.name = "weird";
  object.relocs.push_back(CoreReloc{999, "0:1", CoreRelocKind::kFieldByteOffset});
  object.btf.Int("int", 4);
  EXPECT_FALSE(ExtractDependencySet(object).ok());
}

TEST(RobustnessTest, DatasetQueriesOnUnknownNamesAreAbsentEverywhere) {
  Dataset dataset;
  KernelModel model(7, 0.005, BuildCuratedCatalog());
  auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4)));
  auto image = BuildKernelImage(CompileKernel(7, kernel.TakeValue()));
  auto surface = DependencySurface::Extract(image.TakeValue());
  ASSERT_TRUE(surface.ok());
  dataset.AddImage("v5.4", *surface);
  for (const auto& cells :
       {dataset.CheckFunc("no_such_function"), dataset.CheckStruct("no_such_struct"),
        dataset.CheckTracepoint("no_such_event"), dataset.CheckSyscall("no_such_call"),
        dataset.CheckField("no_such_struct", "f", "int", false)}) {
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_TRUE(cells[0].count(MismatchKind::kAbsent));
  }
  // Guarded unknown field: silent.
  EXPECT_TRUE(dataset.CheckField("no_such_struct", "f", "int", true)[0].empty());
}

TEST(RobustnessTest, EmptyDatasetAnalysisIsWellFormed) {
  Dataset dataset;
  DependencySet deps;
  deps.program = "empty";
  deps.funcs.insert("anything");
  ProgramReport report = AnalyzeProgram(dataset, deps);
  EXPECT_EQ(report.image_labels.size(), 0u);
  EXPECT_EQ(report.rows.size(), 1u);
  EXPECT_FALSE(report.AnyMismatch());  // no images, no mismatch evidence
}

}  // namespace
}  // namespace depsurf
