// Failure-injection tests: the analyzer consumes untrusted binary images
// and object files; corruption at any offset must produce a structured
// error (or a benign parse), never a crash, hang, or sanitizer fault.
#include <gtest/gtest.h>

#include "src/analyzer/analyzer.h"
#include "src/analyzer/remediation.h"
#include "src/bpf/bpf_builder.h"
#include "src/bpf/bpf_rewriter.h"
#include "src/core/depsurf.h"
#include "src/elf/elf_reader.h"
#include "src/faultgen/fault_injector.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"
#include "src/kernelgen/scripted.h"
#include "src/util/prng.h"

namespace depsurf {
namespace {

std::vector<uint8_t> SmallImage() {
  static std::vector<uint8_t> bytes = [] {
    KernelModel model(7, 0.005, BuildCuratedCatalog());
    auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4)));
    auto image = BuildKernelImage(CompileKernel(7, kernel.TakeValue()));
    return image.TakeValue();
  }();
  return bytes;
}

std::vector<uint8_t> SmallObject() {
  static std::vector<uint8_t> bytes = [] {
    BpfObjectBuilder builder("probe");
    builder.AttachKprobe("vfs_fsync").AttachTracepoint("block", "block_rq_issue");
    Status ok = builder.AccessField("request", "rq_disk", "struct gendisk *");
    (void)ok;
    return WriteBpfObject(builder.Build()).TakeValue();
  }();
  return bytes;
}

class TruncationTest : public ::testing::TestWithParam<int> {};

TEST_P(TruncationTest, TruncatedImageNeverCrashes) {
  std::vector<uint8_t> bytes = SmallImage();
  // Truncate at a pseudo-random fraction derived from the parameter.
  Prng prng(static_cast<uint64_t>(GetParam()));
  size_t cut = prng.NextBelow(bytes.size());
  bytes.resize(cut);
  auto result = DependencySurface::Extract(std::move(bytes));
  if (result.ok()) {
    if (result->health().AnyDegraded()) {
      // Salvage mode may recover a partial surface, but never silently:
      // anything lost must be on the ledger.
      EXPECT_FALSE(result->health().ledger.empty());
    } else {
      // A fully clean prefix parse is acceptable only for near-full cuts.
      EXPECT_GT(cut, SmallImage().size() / 2);
    }
  }
}

TEST_P(TruncationTest, TruncatedObjectNeverCrashes) {
  std::vector<uint8_t> bytes = SmallObject();
  Prng prng(static_cast<uint64_t>(GetParam()) ^ 0x0b);
  bytes.resize(prng.NextBelow(bytes.size()));
  auto result = ParseBpfObject(std::move(bytes));
  // ok-or-error; never a crash.
  (void)result.ok();
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationTest, ::testing::Range(0, 24));

class CorruptionTest : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionTest, BitFlippedImageNeverCrashes) {
  std::vector<uint8_t> bytes = SmallImage();
  Prng prng(static_cast<uint64_t>(GetParam()) * 7919);
  // Flip a burst of bytes at a random position.
  size_t pos = prng.NextBelow(bytes.size() - 16);
  for (size_t i = 0; i < 16; ++i) {
    bytes[pos + i] ^= static_cast<uint8_t>(prng.NextU64());
  }
  auto result = DependencySurface::Extract(std::move(bytes));
  if (result.ok()) {
    // Corruption in padding or unused regions can legitimately parse; the
    // surface must still be internally consistent.
    for (const auto& [name, entry] : result->functions()) {
      EXPECT_EQ(name, entry.name);
    }
  }
}

TEST_P(CorruptionTest, BitFlippedObjectNeverCrashes) {
  std::vector<uint8_t> bytes = SmallObject();
  Prng prng(static_cast<uint64_t>(GetParam()) * 104729);
  size_t pos = prng.NextBelow(bytes.size() - 8);
  for (size_t i = 0; i < 8; ++i) {
    bytes[pos + i] ^= static_cast<uint8_t>(prng.NextU64());
  }
  auto parsed = ParseBpfObject(std::move(bytes));
  if (parsed.ok()) {
    auto deps = ExtractDependencySet(*parsed);
    (void)deps.ok();  // either way, no crash
  }
}

INSTANTIATE_TEST_SUITE_P(Flips, CorruptionTest, ::testing::Range(0, 24));

// Seeded faultgen sweeps, cycling through all four fault kinds (byte flip,
// zero window, section-header mutation, truncation) over both the kernel
// image and the BPF object. The contract under every mutation: no crash,
// no hang, and any degradation lands on the ledger.
class FaultSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultSweepTest, MutatedImageSalvagesOrFailsLoudly) {
  std::vector<uint8_t> bytes = SmallImage();
  const uint64_t index = static_cast<uint64_t>(GetParam());
  std::string what = ApplyFault(bytes, FaultKindForIndex(index), 1000 + index);
  SCOPED_TRACE(what);
  auto result = DependencySurface::Extract(std::move(bytes));
  if (result.ok() && result->health().AnyDegraded()) {
    const DiagnosticLedger& ledger = result->health().ledger;
    ASSERT_FALSE(ledger.empty());
    for (const DiagnosticEntry& entry : ledger.entries()) {
      EXPECT_FALSE(entry.message.empty());
    }
  }
}

TEST_P(FaultSweepTest, MutatedObjectNeverCrashes) {
  std::vector<uint8_t> bytes = SmallObject();
  const uint64_t index = static_cast<uint64_t>(GetParam());
  std::string what = ApplyFault(bytes, FaultKindForIndex(index), 2000 + index);
  SCOPED_TRACE(what);
  auto parsed = ParseBpfObject(std::move(bytes));
  if (parsed.ok()) {
    (void)ExtractDependencySet(*parsed);  // either way, no crash
  }
}

// Mutations aimed squarely at the instruction stream. The insn decoder is
// salvage-mode: whatever prefix survives is analyzable, the static
// analyzer must never crash on it, and every degradation lands on the
// ledger as a bpf entry carrying the failing byte offset.
TEST_P(FaultSweepTest, MutatedInsnStreamDegradesToSalvage) {
  std::vector<uint8_t> bytes = SmallObject();
  auto elf = ElfReader::Parse(bytes);
  ASSERT_TRUE(elf.ok());
  const ElfSectionView* section = elf->SectionByName("kprobe/vfs_fsync");
  ASSERT_NE(section, nullptr);
  ASSERT_GT(section->size, 0u);
  const uint64_t index = static_cast<uint64_t>(GetParam());
  Prng prng(3000 + index);
  // Half the sweep scribbles over instruction bytes, half truncates the
  // section mid-slot (both classic loader-fuzzing shapes).
  if (index % 2 == 0) {
    size_t pos = section->offset + prng.NextBelow(section->size);
    for (size_t i = 0; i < 4 && pos + i < bytes.size(); ++i) {
      bytes[pos + i] ^= static_cast<uint8_t>(prng.NextU64() | 1);
    }
  } else {
    size_t keep = prng.NextBelow(section->size);
    bytes.resize(section->offset + keep);
  }
  DiagnosticLedger ledger;
  auto parsed = ParseBpfObject(std::move(bytes), &ledger);
  if (parsed.ok()) {
    ObjectAnalysis analysis = AnalyzeObject(*parsed);
    // Per-program salvage: analysis covers exactly the decoded programs.
    EXPECT_EQ(analysis.programs.size(), parsed->programs.size());
    (void)ExtractDependencySet(*parsed);
  }
  for (const DiagnosticEntry& entry : ledger.entries()) {
    EXPECT_FALSE(entry.message.empty());
    if (entry.subsystem == DiagSubsystem::kBpf &&
        entry.code == ErrorCode::kMalformedData) {
      EXPECT_TRUE(entry.has_offset) << entry.ToString();
    }
  }
}

// The remediation pipeline rides on salvaged parses: whatever the planner
// decides on a mutated object — synthesize guards or refuse — applying and
// re-analyzing the result must never crash, and a rewriter refusal lands
// on the ledger instead of corrupting the object.
TEST_P(FaultSweepTest, MutatedObjectRemediationSalvagesOrRefuses) {
  std::vector<uint8_t> bytes = SmallObject();
  const uint64_t index = static_cast<uint64_t>(GetParam());
  std::string what = ApplyFault(bytes, FaultKindForIndex(index), 4000 + index);
  SCOPED_TRACE(what);
  DiagnosticLedger ledger;
  auto parsed = ParseBpfObject(std::move(bytes), &ledger);
  if (!parsed.ok()) {
    return;  // loud structured failure is an acceptable outcome
  }
  ObjectAnalysis analysis = AnalyzeObject(*parsed);
  RemediationPlan plan = PlanRemediation(*parsed, analysis);
  ASSERT_EQ(plan.items.size(), analysis.findings.size());
  if (plan.FixableCount() == 0) {
    return;  // refusal: every item carries a reason
  }
  BpfObject fixed = *parsed;
  size_t ledger_before = ledger.entries().size();
  Status applied = InsertFieldExistsGuards(fixed, plan.Insertions(), &ledger);
  if (!applied.ok()) {
    EXPECT_GT(ledger.entries().size(), ledger_before)
        << "rewriter refusal must leave a ledger entry";
    return;
  }
  auto encoded = WriteBpfObject(fixed);
  ASSERT_TRUE(encoded.ok()) << encoded.error().ToString();
  auto reparsed = ParseBpfObject(encoded.TakeValue(), &ledger);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().ToString();
  (void)AnalyzeObject(*reparsed);  // either way, no crash
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaultSweepTest, ::testing::Range(0, 32));

// The headline salvage guarantee: an image whose DWARF is malformed still
// yields symbols, tracepoints, and syscalls; the dwarf subsystem is marked
// degraded and the ledger pinpoints the damage (subsystem, code, offset).
TEST(SalvageTest, CorruptDwarfStillYieldsSymbolsTracepointsSyscalls) {
  std::vector<uint8_t> bytes = SmallImage();
  auto elf = ElfReader::Parse(bytes);
  ASSERT_TRUE(elf.ok());
  const ElfSectionView* info = elf->SectionByName(".sdwarf_info");
  ASSERT_NE(info, nullptr);
  ASSERT_GT(info->size, 16u);
  // 0xff over the CU header: an oversized unit length no reader accepts.
  for (size_t i = 0; i < 16; ++i) {
    bytes[static_cast<size_t>(info->offset) + i] = 0xff;
  }
  auto surface = DependencySurface::Extract(std::move(bytes));
  ASSERT_TRUE(surface.ok());
  const SurfaceHealth& health = surface->health();
  EXPECT_EQ(health.dwarf, DegradationState::kDegraded);
  ASSERT_GE(health.ledger.size(), 1u);
  bool found = false;
  for (const DiagnosticEntry& entry : health.ledger.entries()) {
    if (entry.subsystem == DiagSubsystem::kDwarf) {
      found = true;
      EXPECT_EQ(entry.severity, DiagSeverity::kDegraded);
      EXPECT_TRUE(entry.has_offset);
      EXPECT_FALSE(entry.message.empty());
    }
  }
  EXPECT_TRUE(found);
  // Broken DWARF must not take the rest of the surface with it.
  EXPECT_FALSE(surface->functions().empty());
  EXPECT_FALSE(surface->tracepoints().empty());
  EXPECT_FALSE(surface->syscalls().empty());
}

// Same idea for BTF: a clobbered .BTF section degrades the btf subsystem
// while ELF symbols, tracepoints, and syscalls survive.
TEST(SalvageTest, CorruptBtfDegradesOnlyBtf) {
  std::vector<uint8_t> bytes = SmallImage();
  auto elf = ElfReader::Parse(bytes);
  ASSERT_TRUE(elf.ok());
  const ElfSectionView* btf = elf->SectionByName(".BTF");
  ASSERT_NE(btf, nullptr);
  ASSERT_GT(btf->size, 8u);
  for (size_t i = 0; i < 8; ++i) {
    bytes[static_cast<size_t>(btf->offset) + i] = 0xa5;
  }
  auto surface = DependencySurface::Extract(std::move(bytes));
  ASSERT_TRUE(surface.ok());
  EXPECT_EQ(surface->health().btf, DegradationState::kDegraded);
  EXPECT_GE(surface->health().ledger.CountSubsystem(DiagSubsystem::kBtf), 1u);
  EXPECT_FALSE(surface->tracepoints().empty());
  EXPECT_FALSE(surface->syscalls().empty());
}

TEST(RobustnessTest, RelocAgainstForeignBtfIsRejectedNotCrashed) {
  // A reloc referencing a type id beyond the program's BTF must error.
  BpfObject object;
  object.name = "weird";
  object.relocs.push_back(CoreReloc{999, "0:1", CoreRelocKind::kFieldByteOffset});
  object.btf.Int("int", 4);
  EXPECT_FALSE(ExtractDependencySet(object).ok());
}

TEST(RobustnessTest, DatasetQueriesOnUnknownNamesAreAbsentEverywhere) {
  Dataset dataset;
  KernelModel model(7, 0.005, BuildCuratedCatalog());
  auto kernel = model.Configure(MakeBuild(KernelVersion(5, 4)));
  auto image = BuildKernelImage(CompileKernel(7, kernel.TakeValue()));
  auto surface = DependencySurface::Extract(image.TakeValue());
  ASSERT_TRUE(surface.ok());
  dataset.AddImage("v5.4", *surface);
  for (const auto& cells :
       {dataset.CheckFunc("no_such_function"), dataset.CheckStruct("no_such_struct"),
        dataset.CheckTracepoint("no_such_event"), dataset.CheckSyscall("no_such_call"),
        dataset.CheckField("no_such_struct", "f", "int", false)}) {
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_TRUE(cells[0].count(MismatchKind::kAbsent));
  }
  // Guarded unknown field: silent.
  EXPECT_TRUE(dataset.CheckField("no_such_struct", "f", "int", true)[0].empty());
}

TEST(RobustnessTest, EmptyDatasetAnalysisIsWellFormed) {
  Dataset dataset;
  DependencySet deps;
  deps.program = "empty";
  deps.funcs.insert("anything");
  ProgramReport report = AnalyzeProgram(dataset, deps);
  EXPECT_EQ(report.image_labels.size(), 0u);
  EXPECT_EQ(report.rows.size(), 1u);
  EXPECT_FALSE(report.AnyMismatch());  // no images, no mismatch evidence
}

}  // namespace
}  // namespace depsurf
