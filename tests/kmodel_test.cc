#include <gtest/gtest.h>

#include "src/btf/btf_print.h"
#include "src/kmodel/build_spec.h"
#include "src/kmodel/kernel_version.h"
#include "src/kmodel/spec.h"
#include "src/kmodel/type_lang.h"

namespace depsurf {
namespace {

TEST(KernelVersionTest, ParseAndFormat) {
  auto v = KernelVersion::Parse("5.15");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->major, 5);
  EXPECT_EQ(v->minor, 15);
  EXPECT_EQ(v->ToString(), "5.15");
  EXPECT_EQ(v->Tag(), "v5.15");
  EXPECT_EQ(KernelVersion::Parse("v6.8")->minor, 8);
  EXPECT_FALSE(KernelVersion::Parse("6").ok());
  EXPECT_FALSE(KernelVersion::Parse("a.b").ok());
  EXPECT_FALSE(KernelVersion::Parse("5.").ok());
  EXPECT_FALSE(KernelVersion::Parse(".5").ok());
}

TEST(KernelVersionTest, Ordering) {
  EXPECT_LT(KernelVersion(4, 15), KernelVersion(5, 4));
  EXPECT_LT(KernelVersion(5, 4), KernelVersion(5, 15));
  EXPECT_LT(KernelVersion(5, 15), KernelVersion(6, 2));
  EXPECT_EQ(KernelVersion(5, 4), KernelVersion(5, 4));
  EXPECT_NE(KernelVersion(4, 4).Key(), KernelVersion(4, 5).Key());
}

TEST(BuildSpecTest, LabelsAndKeys) {
  BuildSpec spec{KernelVersion(5, 4), Arch::kArm64, Flavor::kGeneric, 9};
  EXPECT_EQ(spec.Label(), "v5.4-arm64-generic-gcc9");
  BuildSpec other = spec;
  other.flavor = Flavor::kAws;
  EXPECT_NE(spec.Key(), other.Key());
  EXPECT_EQ(spec.Key(), BuildSpec{spec}.Key());
}

TEST(BuildSpecTest, ElfIdentPerArch) {
  EXPECT_EQ(ElfIdentFor(Arch::kX86).klass, ElfClass::k64);
  EXPECT_EQ(ElfIdentFor(Arch::kArm32).klass, ElfClass::k32);
  EXPECT_EQ(ElfIdentFor(Arch::kPpc).endian, Endian::kBig);
  EXPECT_EQ(ElfIdentFor(Arch::kRiscv).machine, ElfMachine::kRiscv);
  EXPECT_EQ(ElfIdentFor(Arch::kArm32).pointer_size(), 4);
}

TEST(BuildSpecTest, RegisterLayoutsDiffer) {
  EXPECT_EQ(ParamRegisters(Arch::kX86)[0], "di");
  EXPECT_EQ(ParamRegisters(Arch::kArm64)[0], "regs[0]");
  EXPECT_NE(ParamRegisters(Arch::kX86), ParamRegisters(Arch::kPpc));
  EXPECT_FALSE(CompatSyscallsTraceable(Arch::kX86));
  EXPECT_TRUE(CompatSyscallsTraceable(Arch::kPpc));
}

class TypeLangTest : public ::testing::Test {
 protected:
  TypeGraph graph_;
  TypeLowering lowering_{graph_};
};

TEST_F(TypeLangTest, ScalarsAndPointers) {
  auto i = lowering_.Lower("int");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(TypeString(graph_, i.value()), "int");
  EXPECT_EQ(lowering_.SizeOf(i.value()), 4u);

  auto p = lowering_.Lower("struct file *");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(TypeString(graph_, p.value()), "struct file *");
  EXPECT_EQ(lowering_.SizeOf(p.value()), 8u);

  auto cc = lowering_.Lower("const char *");
  ASSERT_TRUE(cc.ok());
  EXPECT_EQ(TypeString(graph_, cc.value()), "const char *");

  auto arr = lowering_.Lower("char[16]");
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ(lowering_.SizeOf(arr.value()), 16u);

  auto pp = lowering_.Lower("struct request **");
  ASSERT_TRUE(pp.ok());
  EXPECT_EQ(TypeString(graph_, pp.value()), "struct request **");

  EXPECT_EQ(lowering_.Lower("void").value(), kBtfVoid);
  EXPECT_FALSE(lowering_.Lower("").ok());
  EXPECT_FALSE(lowering_.Lower("int[abc]").ok());
}

TEST_F(TypeLangTest, TypedefsResolve) {
  auto u64 = lowering_.Lower("u64");
  ASSERT_TRUE(u64.ok());
  const BtfType* t = graph_.Get(u64.value());
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->kind, BtfKind::kTypedef);
  EXPECT_EQ(lowering_.SizeOf(u64.value()), 8u);
  EXPECT_EQ(lowering_.SizeOf(lowering_.Lower("umode_t").value()), 2u);
  EXPECT_EQ(lowering_.SizeOf(lowering_.Lower("loff_t").value()), 8u);
}

TEST_F(TypeLangTest, UnknownIdentifierBecomesTypedef) {
  auto t = lowering_.Lower("qstr_hash_t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(graph_.Get(t.value())->kind, BtfKind::kTypedef);
  EXPECT_EQ(lowering_.SizeOf(t.value()), 4u);
}

TEST_F(TypeLangTest, LongWidthFollowsTarget) {
  TypeGraph g32;
  TypeLowering lower32(g32, /*pointer_size=*/4, /*long_size=*/4);
  EXPECT_EQ(lower32.SizeOf(lower32.Lower("unsigned long").value()), 4u);
  EXPECT_EQ(lower32.SizeOf(lower32.Lower("struct page *").value()), 4u);
  EXPECT_EQ(lowering_.SizeOf(lowering_.Lower("unsigned long").value()), 8u);
}

TEST_F(TypeLangTest, DefineStructResolvesForwardRefs) {
  // A use site first sees an opaque pointer...
  auto ptr = lowering_.Lower("struct filename *");
  ASSERT_TRUE(ptr.ok());
  // ...then the definition arrives.
  StructSpec spec;
  spec.name = "filename";
  spec.fields = {{"name", "const char *"}, {"refcnt", "int"}};
  auto def = lowering_.DefineStruct(spec);
  ASSERT_TRUE(def.ok()) << def.error().ToString();
  // The earlier pointer now points at the full definition.
  const BtfType* pointee = graph_.Get(graph_.Get(ptr.value())->ref_type_id);
  ASSERT_NE(pointee, nullptr);
  EXPECT_EQ(pointee->kind, BtfKind::kStruct);
  ASSERT_EQ(pointee->members.size(), 2u);
  EXPECT_EQ(pointee->members[0].name, "name");
  EXPECT_EQ(pointee->members[1].bits_offset, 64u);  // after an 8-byte pointer
}

TEST_F(TypeLangTest, StructLayoutRespectsAlignment) {
  StructSpec spec;
  spec.name = "mixed";
  spec.fields = {{"a", "char"}, {"b", "u64"}, {"c", "short"}};
  auto id = lowering_.DefineStruct(spec);
  ASSERT_TRUE(id.ok());
  const BtfType* t = graph_.Get(id.value());
  EXPECT_EQ(t->members[0].bits_offset, 0u);
  EXPECT_EQ(t->members[1].bits_offset, 64u);   // aligned to 8
  EXPECT_EQ(t->members[2].bits_offset, 128u);
  EXPECT_EQ(t->size, 18u);
}

TEST_F(TypeLangTest, RedefinitionReplacesInPlace) {
  StructSpec v1;
  v1.name = "request";
  v1.fields = {{"rq_disk", "struct gendisk *"}};
  auto id1 = lowering_.DefineStruct(v1);
  ASSERT_TRUE(id1.ok());
  StructSpec v2;
  v2.name = "request";
  v2.fields = {{"part", "struct block_device *"}, {"timeout", "unsigned int"}};
  auto id2 = lowering_.DefineStruct(v2);
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(id1.value(), id2.value());
  EXPECT_EQ(graph_.Get(id2.value())->members.size(), 2u);
  EXPECT_FALSE(lowering_.DefineStruct(StructSpec{}).ok());
}

}  // namespace
}  // namespace depsurf
