#!/usr/bin/env bash
# End-to-end smoke test for the observability layer, registered with ctest
# as `obs-smoke`. Drives the depsurf CLI through gen + stats + emit + check
# with --metrics-out, validates the emitted run reports with `metrics lint`,
# and proves determinism: two identical check runs canonicalize (timings
# masked) to byte-identical JSON.
set -eu

DEPSURF=${1:?usage: obs_smoke.sh /path/to/depsurf}
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

fail() {
  echo "obs_smoke: FAIL: $*" >&2
  exit 1
}

# ---- gen: image generation writes a valid report.
"$DEPSURF" gen --version=5.4 --scale=0.02 --out=img54 --metrics-out=gen.json \
  || fail "gen exited $?"
"$DEPSURF" gen --version=6.2 --scale=0.02 --out=img62 \
  || fail "gen v6.2 exited $?"
"$DEPSURF" metrics lint gen.json --min-spans=1 --require=kernelgen.images_built \
  || fail "gen report invalid"

# ---- stats: full image decode, human text to stdout, JSON report on disk.
"$DEPSURF" stats img54 --metrics-out=stats.json > stats.txt \
  || fail "stats exited $?"
grep -q "surface.extract" stats.txt || fail "stats output is missing spans"
"$DEPSURF" metrics lint stats.json --min-spans=8 \
  --require=elf.symbols_parsed,btf.types_decoded,dwarf.dies_decoded,surface.functions \
  || fail "stats report invalid"

# ---- check: analysis + relocation replay; exit 2 (mismatches) is expected.
"$DEPSURF" emit biotop --out=biotop.o || fail "emit exited $?"
set +e
"$DEPSURF" check biotop.o img54 img62 --metrics-out=check1.json \
  --trace-out=trace1.json > check1.txt
code=$?
set -e
[ "$code" -eq 0 ] || [ "$code" -eq 2 ] || fail "check exited $code"
"$DEPSURF" metrics lint check1.json --min-spans=8 \
  --require=elf.symbols_parsed,btf.types_decoded,dwarf.dies_decoded,reloc.loads_simulated,deps.sets_extracted,analyze.programs_analyzed \
  || fail "check report invalid"

# ---- determinism: a second identical run must canonicalize identically.
set +e
"$DEPSURF" check biotop.o img54 img62 --metrics-out=check2.json > check2.txt
code2=$?
set -e
[ "$code2" -eq "$code" ] || fail "check exit codes differ ($code vs $code2)"
cmp -s check1.txt check2.txt || fail "check stdout differs between runs"
"$DEPSURF" metrics canon check1.json > canon1.json || fail "canon run 1"
"$DEPSURF" metrics canon check2.json > canon2.json || fail "canon run 2"
cmp -s canon1.json canon2.json \
  || fail "masked run reports differ between identical runs"

# ---- trace export: the timeline and the run report describe the same run,
# so the trace must hold exactly one "X" event per span node (lint enforces
# the cross-check), with monotonic timestamps.
"$DEPSURF" metrics lint trace1.json --kind=trace --report=check1.json \
  || fail "trace does not match its run report"
grep -q '"displayTimeUnit"' trace1.json || fail "trace missing header"

# ---- study build: a 5-image corpus with per-image reports + an aggregate.
# Two runs must produce byte-identical masked aggregates and datasets.
for run in 1 2; do
  mkdir -p "reps$run"
  "$DEPSURF" study build --scale=0.02 --out="ds$run" --report-dir="reps$run" \
    > "study$run.txt" || fail "study build run $run exited $?"
done
cmp -s ds1 ds2 || fail "datasets differ between identical study builds"
[ "$(ls reps1/report_v*.json | wc -l)" -eq 5 ] || fail "expected 5 per-image reports"
for report in reps1/report_v*.json; do
  "$DEPSURF" metrics lint "$report" --min-spans=5 --require=surface.extracted \
    || fail "$report invalid"
done
"$DEPSURF" metrics lint reps1/report_agg.json --kind=agg \
  || fail "aggregate report invalid"
"$DEPSURF" metrics canon reps1/report_agg.json > agg1.canon || fail "agg canon 1"
"$DEPSURF" metrics canon reps2/report_agg.json > agg2.canon || fail "agg canon 2"
cmp -s agg1.canon agg2.canon \
  || fail "masked aggregates differ between identical study builds"

# ---- profile: the self-profile of a study build is valid, names the
# critical path, and (masked) is deterministic across identical builds.
"$DEPSURF" profile reps1/report_agg.json > profile1.txt || fail "profile exited $?"
grep -q "critical path" profile1.txt || fail "profile text missing critical path"
grep -q "span nodes" profile1.txt || fail "profile text missing header"
for run in 1 2; do
  "$DEPSURF" profile "reps$run/report_agg.json" --out="profile$run.json" \
    || fail "profile --out run $run exited $?"
  "$DEPSURF" metrics lint "profile$run.json" --kind=profile \
    || fail "profile$run.json invalid"
  "$DEPSURF" metrics canon "profile$run.json" > "profile$run.canon" \
    || fail "profile canon $run"
done
cmp -s profile1.canon profile2.canon \
  || fail "masked profiles differ between identical study builds"

# ---- flamegraph export: folded stacks, one "name;child;... self_ns" line
# per distinct stack — the format flamegraph.pl consumes directly.
"$DEPSURF" report flame reps1/report_agg.json --out=flame.folded \
  || fail "report flame exited $?"
[ -s flame.folded ] || fail "flame.folded is empty"
grep -q ';' flame.folded || fail "folded stacks have no nested frames"
awk 'NF < 2 || $NF !~ /^[0-9]+$/ { exit 1 }' flame.folded \
  || fail "folded stacks malformed (want: stack self_ns)"

# ---- report merge: re-merging the per-image reports from the CLI yields
# the same aggregate the study wrote (sources carry paths vs labels, so the
# comparison is over the data sections via the merged document itself).
"$DEPSURF" report merge remerge.json reps1/report_v*.json || fail "merge exited $?"
"$DEPSURF" metrics lint remerge.json --kind=agg || fail "re-merged aggregate invalid"
grep -q '"reports": 5' remerge.json || fail "re-merge lost report provenance"

# ---- dataset-as-a-service: migrate the study dataset to the mmap-friendly
# v2 layout, answer a batched oneshot query stream against it, and lint the
# emitted serve report.
"$DEPSURF" dataset migrate ds1 ds_v2.dds || fail "dataset migrate exited $?"
"$DEPSURF" dataset info ds_v2.dds | grep -q "format v2" \
  || fail "migrated dataset does not identify as v2"
cat > requests.ndjson <<'EOF'
{"id": 1, "program": "biotop", "funcs": ["vfs_read"], "tracepoints": ["block_rq_issue"], "syscalls": ["openat"]}
{"id": 2, "program": "biotop", "funcs": ["vfs_read"], "tracepoints": ["block_rq_issue"], "syscalls": ["openat"]}
{"id": 3, not json
EOF
"$DEPSURF" serve --against=ds_v2.dds --oneshot --report-out=serve_report.json \
  < requests.ndjson > responses1.ndjson || fail "serve --oneshot exited $?"
[ "$(wc -l < responses1.ndjson)" -eq 3 ] || fail "serve answered wrong line count"
grep -q '"id": 1, "cache": "miss"' responses1.ndjson || fail "first query not a miss"
grep -q '"id": 2, "cache": "hit"' responses1.ndjson \
  || fail "duplicate query did not hit the cache"
grep -q '"ok": false' responses1.ndjson || fail "malformed request not answered in place"
"$DEPSURF" metrics lint serve_report.json --kind=serve \
  || fail "serve report invalid"

# ---- serve determinism: the response stream is byte-identical whether the
# executor runs serially or with 8 workers.
"$DEPSURF" serve --against=ds_v2.dds --oneshot --jobs=8 \
  < requests.ndjson > responses8.ndjson || fail "serve --jobs=8 exited $?"
cmp -s responses1.ndjson responses8.ndjson \
  || fail "serve responses differ between --jobs=1 and --jobs=8"

# ---- strict flag parsing: every malformed numeric flag must exit 1 with an
# error that names the flag, never silently parse to 0 (the atoi family) or
# to a truncated prefix (the strtoull family).
check_flag_error() {
  flag_name=$1; shift
  set +e
  "$DEPSURF" "$@" > flagerr.txt 2>&1
  flag_code=$?
  set -e
  [ "$flag_code" -eq 1 ] \
    || fail "'depsurf $*' exited $flag_code, want 1: $(cat flagerr.txt)"
  grep -q -- "$flag_name" flagerr.txt \
    || fail "error for 'depsurf $*' does not name $flag_name: $(cat flagerr.txt)"
}
check_flag_error --jobs study build --scale=0.02 --out=dsx --jobs=abc
check_flag_error --jobs profile reps1/report_agg.json --live --jobs=abc
check_flag_error --jobs serve --against=ds_v2.dds --oneshot --jobs=999
check_flag_error --min-spans metrics lint gen.json --min-spans=abc
check_flag_error --window perf trend --history=none.ndjson --window=0
check_flag_error --window perf trend --history=none.ndjson --window=abc
check_flag_error --top perf diff a.json b.json --top=0
check_flag_error --top perf diff a.json b.json --top=abc
check_flag_error --scale gen --version=5.4 --out=imgx --scale=abc
check_flag_error --seed study build --scale=0.02 --out=dsx --seed=-1
check_flag_error --oneshot serve --against=ds_v2.dds

echo "obs_smoke: PASS"
