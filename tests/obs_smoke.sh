#!/usr/bin/env bash
# End-to-end smoke test for the observability layer, registered with ctest
# as `obs-smoke`. Drives the depsurf CLI through gen + stats + emit + check
# with --metrics-out, validates the emitted run reports with `metrics lint`,
# and proves determinism: two identical check runs canonicalize (timings
# masked) to byte-identical JSON.
set -eu

DEPSURF=${1:?usage: obs_smoke.sh /path/to/depsurf}
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT
cd "$WORKDIR"

fail() {
  echo "obs_smoke: FAIL: $*" >&2
  exit 1
}

# ---- gen: image generation writes a valid report.
"$DEPSURF" gen --version=5.4 --scale=0.02 --out=img54 --metrics-out=gen.json \
  || fail "gen exited $?"
"$DEPSURF" gen --version=6.2 --scale=0.02 --out=img62 \
  || fail "gen v6.2 exited $?"
"$DEPSURF" metrics lint gen.json --min-spans=1 --require=kernelgen.images_built \
  || fail "gen report invalid"

# ---- stats: full image decode, human text to stdout, JSON report on disk.
"$DEPSURF" stats img54 --metrics-out=stats.json > stats.txt \
  || fail "stats exited $?"
grep -q "surface.extract" stats.txt || fail "stats output is missing spans"
"$DEPSURF" metrics lint stats.json --min-spans=8 \
  --require=elf.symbols_parsed,btf.types_decoded,dwarf.dies_decoded,surface.functions \
  || fail "stats report invalid"

# ---- check: analysis + relocation replay; exit 2 (mismatches) is expected.
"$DEPSURF" emit biotop --out=biotop.o || fail "emit exited $?"
set +e
"$DEPSURF" check biotop.o img54 img62 --metrics-out=check1.json > check1.txt
code=$?
set -e
[ "$code" -eq 0 ] || [ "$code" -eq 2 ] || fail "check exited $code"
"$DEPSURF" metrics lint check1.json --min-spans=8 \
  --require=elf.symbols_parsed,btf.types_decoded,dwarf.dies_decoded,reloc.loads_simulated,deps.sets_extracted,analyze.programs_analyzed \
  || fail "check report invalid"

# ---- determinism: a second identical run must canonicalize identically.
set +e
"$DEPSURF" check biotop.o img54 img62 --metrics-out=check2.json > check2.txt
code2=$?
set -e
[ "$code2" -eq "$code" ] || fail "check exit codes differ ($code vs $code2)"
cmp -s check1.txt check2.txt || fail "check stdout differs between runs"
"$DEPSURF" metrics canon check1.json > canon1.json || fail "canon run 1"
"$DEPSURF" metrics canon check2.json > canon2.json || fail "canon run 2"
cmp -s canon1.json canon2.json \
  || fail "masked run reports differ between identical runs"

echo "obs_smoke: PASS"
