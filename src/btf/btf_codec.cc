#include "src/btf/btf_codec.h"

#include <unordered_map>

#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// Deduplicating BTF string section builder; offset 0 is the empty string.
class BtfStrtab {
 public:
  BtfStrtab() { bytes_.push_back(0); }

  uint32_t Add(const std::string& s) {
    if (s.empty()) {
      return 0;
    }
    auto it = offsets_.find(s);
    if (it != offsets_.end()) {
      return it->second;
    }
    uint32_t off = static_cast<uint32_t>(bytes_.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
    bytes_.push_back(0);
    offsets_[s] = off;
    return off;
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
  std::unordered_map<std::string, uint32_t> offsets_;
};

constexpr uint32_t MakeInfo(BtfKind kind, uint32_t vlen) {
  return (static_cast<uint32_t>(kind) << 24) | (vlen & 0xffff);
}

}  // namespace

std::vector<uint8_t> EncodeBtf(const TypeGraph& graph, Endian endian) {
  BtfStrtab strtab;
  ByteWriter types(endian);

  for (BtfTypeId id = 1; id <= graph.num_types(); ++id) {
    const BtfType& t = *graph.Get(id);
    uint32_t vlen = 0;
    switch (t.kind) {
      case BtfKind::kStruct:
      case BtfKind::kUnion:
        vlen = static_cast<uint32_t>(t.members.size());
        break;
      case BtfKind::kEnum:
        vlen = static_cast<uint32_t>(t.enumerators.size());
        break;
      case BtfKind::kFuncProto:
        vlen = static_cast<uint32_t>(t.params.size());
        break;
      default:
        break;
    }
    types.WriteU32(strtab.Add(t.name));
    types.WriteU32(MakeInfo(t.kind, vlen));
    // The third word is size for sized kinds, a type reference otherwise.
    switch (t.kind) {
      case BtfKind::kInt:
      case BtfKind::kFloat:
      case BtfKind::kStruct:
      case BtfKind::kUnion:
      case BtfKind::kEnum:
        types.WriteU32(t.size);
        break;
      default:
        types.WriteU32(t.ref_type_id);
        break;
    }
    // Kind-specific payload.
    switch (t.kind) {
      case BtfKind::kInt:
        types.WriteU32(static_cast<uint32_t>(t.int_bits));
        break;
      case BtfKind::kArray:
        types.WriteU32(t.ref_type_id);  // element type
        types.WriteU32(0);              // index type (unused by us)
        types.WriteU32(t.nelems);
        break;
      case BtfKind::kStruct:
      case BtfKind::kUnion:
        for (const BtfMember& m : t.members) {
          types.WriteU32(strtab.Add(m.name));
          types.WriteU32(m.type_id);
          types.WriteU32(m.bits_offset);
        }
        break;
      case BtfKind::kEnum:
        for (const BtfEnumerator& e : t.enumerators) {
          types.WriteU32(strtab.Add(e.name));
          types.WriteU32(static_cast<uint32_t>(e.value));
        }
        break;
      case BtfKind::kFuncProto:
        for (const BtfParam& p : t.params) {
          types.WriteU32(strtab.Add(p.name));
          types.WriteU32(p.type_id);
        }
        break;
      default:
        break;
    }
  }

  std::vector<uint8_t> type_bytes = types.TakeBytes();
  ByteWriter out(endian);
  out.WriteU16(kBtfMagic);
  out.WriteU8(kBtfVersion);
  out.WriteU8(0);  // flags
  out.WriteU32(kBtfHeaderLen);
  out.WriteU32(0);  // type_off (relative to end of header)
  out.WriteU32(static_cast<uint32_t>(type_bytes.size()));
  out.WriteU32(static_cast<uint32_t>(type_bytes.size()));  // str_off
  out.WriteU32(static_cast<uint32_t>(strtab.bytes().size()));
  out.WriteBytes(type_bytes.data(), type_bytes.size());
  out.WriteBytes(strtab.bytes().data(), strtab.bytes().size());
  return out.TakeBytes();
}

Result<TypeGraph> DecodeBtf(const std::vector<uint8_t>& bytes, Endian endian) {
  return DecodeBtf(ByteReader(bytes, endian));
}

Result<TypeGraph> DecodeBtf(ByteReader reader) {
  obs::ScopedSpan span("btf.decode");
  span.AddAttr("bytes", static_cast<uint64_t>(reader.size()));
  DEPSURF_ASSIGN_OR_RETURN(magic, reader.ReadU16());
  if (magic != kBtfMagic) {
    return Error(ErrorCode::kMalformedData, "BTF magic mismatch").WithOffset(0);
  }
  DEPSURF_ASSIGN_OR_RETURN(version, reader.ReadU8());
  if (version != kBtfVersion) {
    return Error(ErrorCode::kUnsupported, "unsupported BTF version").WithOffset(2);
  }
  DEPSURF_RETURN_IF_ERROR(reader.Skip(1));  // flags
  DEPSURF_ASSIGN_OR_RETURN(hdr_len, reader.ReadU32());
  if (hdr_len != kBtfHeaderLen) {
    return Error(ErrorCode::kMalformedData, "unexpected BTF header length").WithOffset(4);
  }
  DEPSURF_ASSIGN_OR_RETURN(type_off, reader.ReadU32());
  DEPSURF_ASSIGN_OR_RETURN(type_len, reader.ReadU32());
  DEPSURF_ASSIGN_OR_RETURN(str_off, reader.ReadU32());
  DEPSURF_ASSIGN_OR_RETURN(str_len, reader.ReadU32());

  DEPSURF_ASSIGN_OR_RETURN(types,
                           reader.Slice(static_cast<size_t>(hdr_len) + type_off, type_len));
  DEPSURF_ASSIGN_OR_RETURN(strs,
                           reader.Slice(static_cast<size_t>(hdr_len) + str_off, str_len));

  auto read_name = [&](uint32_t off) -> Result<std::string> {
    if (off == 0) {
      return std::string();
    }
    return strs.ReadCStringAt(off);
  };

  TypeGraph graph;
  while (!types.AtEnd()) {
    DEPSURF_ASSIGN_OR_RETURN(name_off, types.ReadU32());
    DEPSURF_ASSIGN_OR_RETURN(info, types.ReadU32());
    DEPSURF_ASSIGN_OR_RETURN(size_or_type, types.ReadU32());
    BtfType t;
    uint32_t kind_raw = (info >> 24) & 0x1f;
    uint32_t vlen = info & 0xffff;
    if (kind_raw > static_cast<uint32_t>(BtfKind::kFloat) ||
        kind_raw == 14 || kind_raw == 15) {  // VAR/DATASEC not produced by us
      return Error(ErrorCode::kUnsupported, StrFormat("BTF kind %u", kind_raw))
          .WithOffset(types.offset() - 8);  // the info word of this entry
    }
    t.kind = static_cast<BtfKind>(kind_raw);
    DEPSURF_ASSIGN_OR_RETURN(name, read_name(name_off));
    t.name = std::move(name);
    switch (t.kind) {
      case BtfKind::kInt:
      case BtfKind::kFloat:
      case BtfKind::kStruct:
      case BtfKind::kUnion:
      case BtfKind::kEnum:
        t.size = size_or_type;
        break;
      default:
        t.ref_type_id = size_or_type;
        break;
    }
    switch (t.kind) {
      case BtfKind::kInt: {
        DEPSURF_ASSIGN_OR_RETURN(int_data, types.ReadU32());
        t.int_bits = static_cast<uint8_t>(int_data & 0xff);
        break;
      }
      case BtfKind::kArray: {
        DEPSURF_ASSIGN_OR_RETURN(elem, types.ReadU32());
        DEPSURF_RETURN_IF_ERROR(types.Skip(4));  // index type
        DEPSURF_ASSIGN_OR_RETURN(nelems, types.ReadU32());
        t.ref_type_id = elem;
        t.nelems = nelems;
        break;
      }
      case BtfKind::kStruct:
      case BtfKind::kUnion: {
        t.members.reserve(vlen);
        for (uint32_t i = 0; i < vlen; ++i) {
          BtfMember m;
          DEPSURF_ASSIGN_OR_RETURN(mname_off, types.ReadU32());
          DEPSURF_ASSIGN_OR_RETURN(mname, read_name(mname_off));
          m.name = std::move(mname);
          DEPSURF_ASSIGN_OR_RETURN(mtype, types.ReadU32());
          m.type_id = mtype;
          DEPSURF_ASSIGN_OR_RETURN(moff, types.ReadU32());
          m.bits_offset = moff;
          t.members.push_back(std::move(m));
        }
        break;
      }
      case BtfKind::kEnum: {
        t.enumerators.reserve(vlen);
        for (uint32_t i = 0; i < vlen; ++i) {
          BtfEnumerator e;
          DEPSURF_ASSIGN_OR_RETURN(ename_off, types.ReadU32());
          DEPSURF_ASSIGN_OR_RETURN(ename, read_name(ename_off));
          e.name = std::move(ename);
          DEPSURF_ASSIGN_OR_RETURN(eval, types.ReadU32());
          e.value = static_cast<int32_t>(eval);
          t.enumerators.push_back(std::move(e));
        }
        break;
      }
      case BtfKind::kFuncProto: {
        t.params.reserve(vlen);
        for (uint32_t i = 0; i < vlen; ++i) {
          BtfParam p;
          DEPSURF_ASSIGN_OR_RETURN(pname_off, types.ReadU32());
          DEPSURF_ASSIGN_OR_RETURN(pname, read_name(pname_off));
          p.name = std::move(pname);
          DEPSURF_ASSIGN_OR_RETURN(ptype, types.ReadU32());
          p.type_id = ptype;
          t.params.push_back(std::move(p));
        }
        break;
      }
      default:
        break;
    }
    graph.Add(std::move(t));
  }
  DEPSURF_RETURN_IF_ERROR(graph.Validate());
  span.AddAttr("types", static_cast<uint64_t>(graph.num_types()));
  // No static counter caching: the current context differs per image in
  // report-mode builds, so pointers must be re-resolved each decode.
  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Counter("btf.sections_decoded")->fetch_add(1, std::memory_order_relaxed);
  metrics.Counter("btf.types_decoded")
      ->fetch_add(graph.num_types(), std::memory_order_relaxed);
  metrics.Counter("btf.bytes_decoded")->fetch_add(reader.size(), std::memory_order_relaxed);
  return graph;
}

}  // namespace depsurf
