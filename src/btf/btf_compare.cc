#include "src/btf/btf_compare.h"

namespace depsurf {

namespace {

bool EqualsDepth(const TypeGraph& ga, BtfTypeId a, const TypeGraph& gb, BtfTypeId b, int depth) {
  if (depth > 32) {
    return true;  // deep identical prefixes; treat as equal to stay total
  }
  const BtfType* ta = ga.Get(a);
  const BtfType* tb = gb.Get(b);
  if (ta == nullptr || tb == nullptr) {
    return ta == tb;  // both void
  }
  if (ta->kind != tb->kind) {
    // A FWD on one side matches a same-named aggregate on the other.
    bool a_fwdish = ta->kind == BtfKind::kFwd || ta->kind == BtfKind::kStruct ||
                    ta->kind == BtfKind::kUnion;
    bool b_fwdish = tb->kind == BtfKind::kFwd || tb->kind == BtfKind::kStruct ||
                    tb->kind == BtfKind::kUnion;
    if (a_fwdish && b_fwdish && (ta->kind == BtfKind::kFwd || tb->kind == BtfKind::kFwd)) {
      return ta->name == tb->name;
    }
    return false;
  }
  switch (ta->kind) {
    case BtfKind::kVoid:
      return true;
    case BtfKind::kInt:
    case BtfKind::kFloat:
      // Width is a property of the target ABI ("unsigned long" is 4 bytes
      // on arm32), not of the declaration; compare by name so cross-arch
      // diffs see the same C type.
      return ta->name == tb->name;
    case BtfKind::kStruct:
    case BtfKind::kUnion:
    case BtfKind::kEnum:
    case BtfKind::kFwd:
      // Named aggregates are identified by name across images. Anonymous
      // ones compare member-wise.
      if (!ta->name.empty() || !tb->name.empty()) {
        return ta->name == tb->name;
      }
      if (ta->members.size() != tb->members.size()) {
        return false;
      }
      for (size_t i = 0; i < ta->members.size(); ++i) {
        if (ta->members[i].name != tb->members[i].name ||
            ta->members[i].bits_offset != tb->members[i].bits_offset ||
            !EqualsDepth(ga, ta->members[i].type_id, gb, tb->members[i].type_id, depth + 1)) {
          return false;
        }
      }
      return true;
    case BtfKind::kPtr:
    case BtfKind::kConst:
    case BtfKind::kVolatile:
    case BtfKind::kRestrict:
    case BtfKind::kTypedef:
      if (ta->kind == BtfKind::kTypedef && ta->name != tb->name) {
        return false;
      }
      return EqualsDepth(ga, ta->ref_type_id, gb, tb->ref_type_id, depth + 1);
    case BtfKind::kArray:
      return ta->nelems == tb->nelems &&
             EqualsDepth(ga, ta->ref_type_id, gb, tb->ref_type_id, depth + 1);
    case BtfKind::kFunc:
      return ta->name == tb->name &&
             EqualsDepth(ga, ta->ref_type_id, gb, tb->ref_type_id, depth + 1);
    case BtfKind::kFuncProto: {
      if (ta->params.size() != tb->params.size()) {
        return false;
      }
      if (!EqualsDepth(ga, ta->ref_type_id, gb, tb->ref_type_id, depth + 1)) {
        return false;
      }
      for (size_t i = 0; i < ta->params.size(); ++i) {
        if (!EqualsDepth(ga, ta->params[i].type_id, gb, tb->params[i].type_id, depth + 1)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

// Shape classes for compatibility analysis.
enum class Shape { kVoid, kInteger, kFloat, kPointer, kAggregate, kArray, kFunc, kOther };

Shape ShapeOf(const TypeGraph& g, BtfTypeId id) {
  const BtfType* t = g.Get(g.ResolveAliases(id));
  if (t == nullptr) {
    return Shape::kVoid;
  }
  switch (t->kind) {
    case BtfKind::kInt:
    case BtfKind::kEnum:
      return Shape::kInteger;
    case BtfKind::kFloat:
      return Shape::kFloat;
    case BtfKind::kPtr:
      return Shape::kPointer;
    case BtfKind::kStruct:
    case BtfKind::kUnion:
    case BtfKind::kFwd:
      return Shape::kAggregate;
    case BtfKind::kArray:
      return Shape::kArray;
    case BtfKind::kFunc:
    case BtfKind::kFuncProto:
      return Shape::kFunc;
    default:
      return Shape::kOther;
  }
}

}  // namespace

bool TypeEquals(const TypeGraph& graph_a, BtfTypeId a, const TypeGraph& graph_b, BtfTypeId b) {
  return EqualsDepth(graph_a, a, graph_b, b, 0);
}

bool TypeCompatible(const TypeGraph& graph_a, BtfTypeId a, const TypeGraph& graph_b,
                    BtfTypeId b) {
  Shape sa = ShapeOf(graph_a, a);
  Shape sb = ShapeOf(graph_b, b);
  if (sa != sb) {
    return false;
  }
  if (sa == Shape::kAggregate) {
    // Different aggregates are never silently interchangeable.
    return TypeEquals(graph_a, graph_a.ResolveAliases(a), graph_b, graph_b.ResolveAliases(b));
  }
  return true;
}

}  // namespace depsurf
