// BPF Type Format (BTF) type graph.
//
// This is a from-scratch implementation of the BTF data model: a flat arena
// of typed records referencing each other by 1-based id (id 0 is `void`),
// matching the kernel's .BTF section semantics. The binary wire format is
// implemented in btf_codec.h with the real layout (magic 0xeB9F, btf_type
// records, string section).
#ifndef DEPSURF_SRC_BTF_BTF_H_
#define DEPSURF_SRC_BTF_BTF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/error.h"

namespace depsurf {

// BTF kind values; numerically identical to the kernel's BTF_KIND_*.
enum class BtfKind : uint8_t {
  kVoid = 0,  // only as the implicit id-0 type
  kInt = 1,
  kPtr = 2,
  kArray = 3,
  kStruct = 4,
  kUnion = 5,
  kEnum = 6,
  kFwd = 7,
  kTypedef = 8,
  kVolatile = 9,
  kConst = 10,
  kRestrict = 11,
  kFunc = 12,
  kFuncProto = 13,
  kFloat = 16,
};

const char* BtfKindName(BtfKind kind);

// Struct/union member. `bits_offset` is the bit offset from the start of the
// containing aggregate (byte-aligned fields use multiples of 8).
struct BtfMember {
  std::string name;
  uint32_t type_id = 0;
  uint32_t bits_offset = 0;

  bool operator==(const BtfMember&) const = default;
};

// Function prototype parameter.
struct BtfParam {
  std::string name;
  uint32_t type_id = 0;

  bool operator==(const BtfParam&) const = default;
};

struct BtfEnumerator {
  std::string name;
  int32_t value = 0;

  bool operator==(const BtfEnumerator&) const = default;
};

// One node in the type graph. Which fields are meaningful depends on `kind`:
//   kInt:       name, size, int_bits
//   kPtr/kTypedef/kConst/kVolatile/kRestrict: ref_type_id (+ name for typedef)
//   kArray:     ref_type_id (element), nelems
//   kStruct/kUnion: name, size, members
//   kEnum:      name, size, enumerators
//   kFwd:       name
//   kFunc:      name, ref_type_id (the FUNC_PROTO)
//   kFuncProto: ref_type_id (return type), params
//   kFloat:     name, size
struct BtfType {
  BtfKind kind = BtfKind::kVoid;
  std::string name;
  uint32_t size = 0;
  uint32_t ref_type_id = 0;
  uint32_t nelems = 0;
  uint8_t int_bits = 0;
  std::vector<BtfMember> members;
  std::vector<BtfParam> params;
  std::vector<BtfEnumerator> enumerators;
};

using BtfTypeId = uint32_t;
inline constexpr BtfTypeId kBtfVoid = 0;

// Arena of BtfTypes with builder conveniences. Ids are stable and 1-based.
class TypeGraph {
 public:
  TypeGraph() = default;

  // Number of types excluding void.
  uint32_t num_types() const { return static_cast<uint32_t>(types_.size()); }

  // Adds an arbitrary node. References to not-yet-added ids are permitted
  // (BTF allows forward references); Validate() checks them at the end.
  BtfTypeId Add(BtfType type);

  // nullptr for id 0 (void) and for out-of-range ids.
  const BtfType* Get(BtfTypeId id) const;
  BtfType* GetMutable(BtfTypeId id);

  // --- Builder conveniences (deduplicating for scalar/pointer nodes) ---
  BtfTypeId Int(std::string_view name, uint32_t byte_size);
  BtfTypeId Float(std::string_view name, uint32_t byte_size);
  BtfTypeId Ptr(BtfTypeId to);
  BtfTypeId Const(BtfTypeId of);
  BtfTypeId Volatile(BtfTypeId of);
  BtfTypeId Typedef(std::string_view name, BtfTypeId of);
  BtfTypeId Array(BtfTypeId element, uint32_t nelems);
  BtfTypeId Fwd(std::string_view name);
  BtfTypeId Struct(std::string_view name, uint32_t byte_size, std::vector<BtfMember> members);
  BtfTypeId Union(std::string_view name, uint32_t byte_size, std::vector<BtfMember> members);
  BtfTypeId Enum(std::string_view name, std::vector<BtfEnumerator> enumerators);
  BtfTypeId FuncProto(BtfTypeId return_type, std::vector<BtfParam> params);
  BtfTypeId Func(std::string_view name, BtfTypeId proto);

  // --- Lookups (first match by name) ---
  std::optional<BtfTypeId> FindByKindAndName(BtfKind kind, std::string_view name) const;
  std::optional<BtfTypeId> FindStruct(std::string_view name) const;
  std::optional<BtfTypeId> FindFunc(std::string_view name) const;

  // Strips CONST/VOLATILE/RESTRICT/TYPEDEF wrappers.
  BtfTypeId ResolveAliases(BtfTypeId id) const;

  // Checks every reference id is within range. Decoders call this after
  // ingesting untrusted bytes.
  Status Validate() const;

 private:
  BtfTypeId Dedup(uint64_t key, BtfType type);

  std::vector<BtfType> types_;
  std::unordered_map<uint64_t, BtfTypeId> dedup_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_BTF_BTF_H_
