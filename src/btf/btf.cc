#include "src/btf/btf.h"

#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {

const char* BtfKindName(BtfKind kind) {
  switch (kind) {
    case BtfKind::kVoid:
      return "VOID";
    case BtfKind::kInt:
      return "INT";
    case BtfKind::kPtr:
      return "PTR";
    case BtfKind::kArray:
      return "ARRAY";
    case BtfKind::kStruct:
      return "STRUCT";
    case BtfKind::kUnion:
      return "UNION";
    case BtfKind::kEnum:
      return "ENUM";
    case BtfKind::kFwd:
      return "FWD";
    case BtfKind::kTypedef:
      return "TYPEDEF";
    case BtfKind::kVolatile:
      return "VOLATILE";
    case BtfKind::kConst:
      return "CONST";
    case BtfKind::kRestrict:
      return "RESTRICT";
    case BtfKind::kFunc:
      return "FUNC";
    case BtfKind::kFuncProto:
      return "FUNC_PROTO";
    case BtfKind::kFloat:
      return "FLOAT";
  }
  return "UNKNOWN";
}

BtfTypeId TypeGraph::Add(BtfType type) {
  types_.push_back(std::move(type));
  return static_cast<BtfTypeId>(types_.size());
}

const BtfType* TypeGraph::Get(BtfTypeId id) const {
  if (id == 0 || id > types_.size()) {
    return nullptr;
  }
  return &types_[id - 1];
}

BtfType* TypeGraph::GetMutable(BtfTypeId id) {
  if (id == 0 || id > types_.size()) {
    return nullptr;
  }
  return &types_[id - 1];
}

BtfTypeId TypeGraph::Dedup(uint64_t key, BtfType type) {
  auto it = dedup_.find(key);
  if (it != dedup_.end()) {
    return it->second;
  }
  BtfTypeId id = Add(std::move(type));
  dedup_[key] = id;
  return id;
}

BtfTypeId TypeGraph::Int(std::string_view name, uint32_t byte_size) {
  BtfType t;
  t.kind = BtfKind::kInt;
  t.name = name;
  t.size = byte_size;
  t.int_bits = static_cast<uint8_t>(byte_size * 8);
  return Dedup(HashCombine({1, HashString(name), byte_size}), std::move(t));
}

BtfTypeId TypeGraph::Float(std::string_view name, uint32_t byte_size) {
  BtfType t;
  t.kind = BtfKind::kFloat;
  t.name = name;
  t.size = byte_size;
  return Dedup(HashCombine({16, HashString(name), byte_size}), std::move(t));
}

BtfTypeId TypeGraph::Ptr(BtfTypeId to) {
  BtfType t;
  t.kind = BtfKind::kPtr;
  t.ref_type_id = to;
  return Dedup(HashCombine({2, to}), std::move(t));
}

BtfTypeId TypeGraph::Const(BtfTypeId of) {
  BtfType t;
  t.kind = BtfKind::kConst;
  t.ref_type_id = of;
  return Dedup(HashCombine({10, of}), std::move(t));
}

BtfTypeId TypeGraph::Volatile(BtfTypeId of) {
  BtfType t;
  t.kind = BtfKind::kVolatile;
  t.ref_type_id = of;
  return Dedup(HashCombine({9, of}), std::move(t));
}

BtfTypeId TypeGraph::Typedef(std::string_view name, BtfTypeId of) {
  BtfType t;
  t.kind = BtfKind::kTypedef;
  t.name = name;
  t.ref_type_id = of;
  return Dedup(HashCombine({8, HashString(name), of}), std::move(t));
}

BtfTypeId TypeGraph::Array(BtfTypeId element, uint32_t nelems) {
  BtfType t;
  t.kind = BtfKind::kArray;
  t.ref_type_id = element;
  t.nelems = nelems;
  return Dedup(HashCombine({3, element, nelems}), std::move(t));
}

BtfTypeId TypeGraph::Fwd(std::string_view name) {
  BtfType t;
  t.kind = BtfKind::kFwd;
  t.name = name;
  return Dedup(HashCombine({7, HashString(name)}), std::move(t));
}

BtfTypeId TypeGraph::Struct(std::string_view name, uint32_t byte_size,
                            std::vector<BtfMember> members) {
  BtfType t;
  t.kind = BtfKind::kStruct;
  t.name = name;
  t.size = byte_size;
  t.members = std::move(members);
  return Add(std::move(t));
}

BtfTypeId TypeGraph::Union(std::string_view name, uint32_t byte_size,
                           std::vector<BtfMember> members) {
  BtfType t;
  t.kind = BtfKind::kUnion;
  t.name = name;
  t.size = byte_size;
  t.members = std::move(members);
  return Add(std::move(t));
}

BtfTypeId TypeGraph::Enum(std::string_view name, std::vector<BtfEnumerator> enumerators) {
  BtfType t;
  t.kind = BtfKind::kEnum;
  t.name = name;
  t.size = 4;
  t.enumerators = std::move(enumerators);
  return Add(std::move(t));
}

BtfTypeId TypeGraph::FuncProto(BtfTypeId return_type, std::vector<BtfParam> params) {
  BtfType t;
  t.kind = BtfKind::kFuncProto;
  t.ref_type_id = return_type;
  t.params = std::move(params);
  return Add(std::move(t));
}

BtfTypeId TypeGraph::Func(std::string_view name, BtfTypeId proto) {
  BtfType t;
  t.kind = BtfKind::kFunc;
  t.name = name;
  t.ref_type_id = proto;
  return Add(std::move(t));
}

std::optional<BtfTypeId> TypeGraph::FindByKindAndName(BtfKind kind, std::string_view name) const {
  for (uint32_t i = 0; i < types_.size(); ++i) {
    if (types_[i].kind == kind && types_[i].name == name) {
      return i + 1;
    }
  }
  return std::nullopt;
}

std::optional<BtfTypeId> TypeGraph::FindStruct(std::string_view name) const {
  return FindByKindAndName(BtfKind::kStruct, name);
}

std::optional<BtfTypeId> TypeGraph::FindFunc(std::string_view name) const {
  return FindByKindAndName(BtfKind::kFunc, name);
}

BtfTypeId TypeGraph::ResolveAliases(BtfTypeId id) const {
  // Alias chains are finite in valid graphs; the loop bound guards against
  // cycles in malformed ones.
  for (uint32_t depth = 0; depth < 64; ++depth) {
    const BtfType* t = Get(id);
    if (t == nullptr) {
      return id;
    }
    switch (t->kind) {
      case BtfKind::kConst:
      case BtfKind::kVolatile:
      case BtfKind::kRestrict:
      case BtfKind::kTypedef:
        id = t->ref_type_id;
        break;
      default:
        return id;
    }
  }
  return id;
}

Status TypeGraph::Validate() const {
  auto check = [&](uint32_t id, const char* what) -> Status {
    if (id > types_.size()) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("%s references type %u beyond %zu", what, id, types_.size()));
    }
    return Status::Ok();
  };
  for (const BtfType& t : types_) {
    switch (t.kind) {
      case BtfKind::kPtr:
      case BtfKind::kTypedef:
      case BtfKind::kConst:
      case BtfKind::kVolatile:
      case BtfKind::kRestrict:
      case BtfKind::kArray:
      case BtfKind::kFunc:
      case BtfKind::kFuncProto:
        DEPSURF_RETURN_IF_ERROR(check(t.ref_type_id, BtfKindName(t.kind)));
        break;
      default:
        break;
    }
    for (const BtfMember& m : t.members) {
      DEPSURF_RETURN_IF_ERROR(check(m.type_id, "member"));
    }
    for (const BtfParam& p : t.params) {
      DEPSURF_RETURN_IF_ERROR(check(p.type_id, "param"));
    }
  }
  return Status::Ok();
}

}  // namespace depsurf
