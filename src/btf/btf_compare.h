// Structural comparison of types across two type graphs (e.g., the BTF of
// two different kernel images). Named aggregates compare by name, matching
// how eBPF/CO-RE identifies kernel types across versions.
#ifndef DEPSURF_SRC_BTF_BTF_COMPARE_H_
#define DEPSURF_SRC_BTF_BTF_COMPARE_H_

#include "src/btf/btf.h"

namespace depsurf {

// True if the two types denote the same C type. Structs/unions/enums/fwds
// compare by (kind, name); scalar and derived types compare structurally.
bool TypeEquals(const TypeGraph& graph_a, BtfTypeId a, const TypeGraph& graph_b, BtfTypeId b);

// True if a read through the old type still "works" against the new type
// without a compile/relocation error, though possibly misinterpreting data:
// integer<->integer of any width, pointer<->pointer, enum<->integer. This is
// the paper's "compatible type change" that produces silent stray reads.
bool TypeCompatible(const TypeGraph& graph_a, BtfTypeId a, const TypeGraph& graph_b, BtfTypeId b);

}  // namespace depsurf

#endif  // DEPSURF_SRC_BTF_BTF_COMPARE_H_
