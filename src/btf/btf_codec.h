// Binary encoder/decoder for the .BTF section, following the kernel wire
// layout: a fixed header (magic 0xeB9F), an array of btf_type records with
// kind-specific trailing data, and a NUL-separated string section.
#ifndef DEPSURF_SRC_BTF_BTF_CODEC_H_
#define DEPSURF_SRC_BTF_BTF_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/btf/btf.h"
#include "src/util/byte_buffer.h"
#include "src/util/error.h"

namespace depsurf {

inline constexpr uint16_t kBtfMagic = 0xeB9F;
inline constexpr uint8_t kBtfVersion = 1;
inline constexpr uint32_t kBtfHeaderLen = 24;

// Serializes the graph. Endianness matches the containing kernel image.
std::vector<uint8_t> EncodeBtf(const TypeGraph& graph, Endian endian = Endian::kLittle);

// Parses and validates a .BTF section.
Result<TypeGraph> DecodeBtf(const std::vector<uint8_t>& bytes, Endian endian = Endian::kLittle);
Result<TypeGraph> DecodeBtf(ByteReader reader);

}  // namespace depsurf

#endif  // DEPSURF_SRC_BTF_BTF_CODEC_H_
