#include "src/btf/btf_print.h"

#include "src/util/str_util.h"

namespace depsurf {

namespace {

std::string TypeStringDepth(const TypeGraph& graph, BtfTypeId id, int depth) {
  if (depth > 32) {
    return "<cycle>";
  }
  const BtfType* t = graph.Get(id);
  if (t == nullptr) {
    return "void";
  }
  switch (t->kind) {
    case BtfKind::kInt:
    case BtfKind::kFloat:
    case BtfKind::kTypedef:
      return t->name;
    case BtfKind::kPtr: {
      std::string inner = TypeStringDepth(graph, t->ref_type_id, depth + 1);
      if (!inner.empty() && inner.back() == '*') {
        return inner + "*";
      }
      return inner + " *";
    }
    case BtfKind::kConst: {
      std::string inner = TypeStringDepth(graph, t->ref_type_id, depth + 1);
      // const-of-pointer is "T *const"; const-of-object is "const T".
      if (!inner.empty() && inner.back() == '*') {
        return inner + "const";
      }
      return "const " + inner;
    }
    case BtfKind::kVolatile:
      return "volatile " + TypeStringDepth(graph, t->ref_type_id, depth + 1);
    case BtfKind::kRestrict:
      return TypeStringDepth(graph, t->ref_type_id, depth + 1) + " restrict";
    case BtfKind::kArray:
      return StrFormat("%s[%u]", TypeStringDepth(graph, t->ref_type_id, depth + 1).c_str(),
                       t->nelems);
    case BtfKind::kStruct:
    case BtfKind::kFwd:
      return "struct " + t->name;
    case BtfKind::kUnion:
      return "union " + t->name;
    case BtfKind::kEnum:
      return "enum " + t->name;
    case BtfKind::kFunc:
      return t->name;
    case BtfKind::kFuncProto: {
      std::string out = TypeStringDepth(graph, t->ref_type_id, depth + 1) + " (*)(";
      for (size_t i = 0; i < t->params.size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        out += TypeStringDepth(graph, t->params[i].type_id, depth + 1);
      }
      out += ")";
      return out;
    }
    case BtfKind::kVoid:
      return "void";
  }
  return "?";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

std::string TypeJsonDepth(const TypeGraph& graph, BtfTypeId id, int depth) {
  const BtfType* t = graph.Get(id);
  if (t == nullptr) {
    return "{\"name\": \"void\", \"kind\": \"VOID\"}";
  }
  std::string out = "{\"kind\": \"" + std::string(BtfKindName(t->kind)) + "\"";
  if (!t->name.empty()) {
    out += ", \"name\": \"" + JsonEscape(t->name) + "\"";
  }
  if (depth <= 0) {
    return out + "}";
  }
  switch (t->kind) {
    case BtfKind::kPtr:
    case BtfKind::kConst:
    case BtfKind::kVolatile:
    case BtfKind::kRestrict:
    case BtfKind::kTypedef:
      out += ", \"type\": " + TypeJsonDepth(graph, t->ref_type_id, depth - 1);
      break;
    case BtfKind::kArray:
      out += StrFormat(", \"nelems\": %u, \"type\": ", t->nelems) +
             TypeJsonDepth(graph, t->ref_type_id, depth - 1);
      break;
    case BtfKind::kStruct:
    case BtfKind::kUnion: {
      out += StrFormat(", \"size\": %u, \"members\": [", t->size);
      for (size_t i = 0; i < t->members.size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        const BtfMember& m = t->members[i];
        out += "{\"name\": \"" + JsonEscape(m.name) + "\"";
        out += StrFormat(", \"bits_offset\": %u, \"type\": ", m.bits_offset);
        // Members render shallow struct references, as in the dataset.
        out += TypeJsonDepth(graph, m.type_id, 1);
        out += "}";
      }
      out += "]";
      break;
    }
    case BtfKind::kFunc:
      out += ", \"type\": " + TypeJsonDepth(graph, t->ref_type_id, depth - 1);
      break;
    case BtfKind::kFuncProto: {
      out += ", \"params\": [";
      for (size_t i = 0; i < t->params.size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        const BtfParam& p = t->params[i];
        out += "{\"name\": \"" + JsonEscape(p.name) +
               "\", \"type\": " + TypeJsonDepth(graph, p.type_id, depth - 1) + "}";
      }
      out += "], \"ret_type\": " + TypeJsonDepth(graph, t->ref_type_id, depth - 1);
      break;
    }
    default:
      break;
  }
  return out + "}";
}

}  // namespace

std::string TypeString(const TypeGraph& graph, BtfTypeId id) {
  return TypeStringDepth(graph, id, 0);
}

std::string FuncDeclString(const TypeGraph& graph, BtfTypeId func_id) {
  const BtfType* func = graph.Get(func_id);
  if (func == nullptr || func->kind != BtfKind::kFunc) {
    return "<not a function>";
  }
  const BtfType* proto = graph.Get(func->ref_type_id);
  if (proto == nullptr || proto->kind != BtfKind::kFuncProto) {
    return func->name + "()";
  }
  std::string out = TypeString(graph, proto->ref_type_id) + " " + func->name + "(";
  for (size_t i = 0; i < proto->params.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    std::string type_str = TypeString(graph, proto->params[i].type_id);
    out += type_str;
    if (!proto->params[i].name.empty()) {
      if (type_str.empty() || type_str.back() != '*') {
        out += " ";
      }
      out += proto->params[i].name;
    }
  }
  out += ")";
  return out;
}

std::string TypeJson(const TypeGraph& graph, BtfTypeId id, int max_depth) {
  return TypeJsonDepth(graph, id, max_depth);
}

}  // namespace depsurf
