// Rendering of BTF types as C-like declarations and as JSON matching the
// DepSurf dataset format (paper artifact, Appendix A.2.4).
#ifndef DEPSURF_SRC_BTF_BTF_PRINT_H_
#define DEPSURF_SRC_BTF_BTF_PRINT_H_

#include <string>

#include "src/btf/btf.h"

namespace depsurf {

// C-ish rendering of a type: "struct file *", "const char *", "u64".
std::string TypeString(const TypeGraph& graph, BtfTypeId id);

// Full declaration of a FUNC node:
//   "int vfs_fsync(struct file *file, int datasync)"
std::string FuncDeclString(const TypeGraph& graph, BtfTypeId func_id);

// JSON rendering of a type tree (depth-limited; struct references render as
// {"kind": "STRUCT", "name": ...} without members, as in the paper dataset).
std::string TypeJson(const TypeGraph& graph, BtfTypeId id, int max_depth = 6);

}  // namespace depsurf

#endif  // DEPSURF_SRC_BTF_BTF_PRINT_H_
