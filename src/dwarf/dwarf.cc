#include "src/dwarf/dwarf.h"

namespace depsurf {

DwForm FormOf(DwAttr attr) {
  switch (attr) {
    case DwAttr::kName:
    case DwAttr::kDeclFile:
      return DwForm::kString;
    case DwAttr::kDeclLine:
    case DwAttr::kInline:
      return DwForm::kUdata;
    case DwAttr::kExternal:
      return DwForm::kFlag;
    case DwAttr::kLowPc:
      return DwForm::kAddr;
    case DwAttr::kAbstractOrigin:
    case DwAttr::kCallOrigin:
      return DwForm::kRef;
  }
  return DwForm::kUdata;
}

DwarfAttrValue DwarfAttrValue::String(DwAttr attr, std::string value) {
  DwarfAttrValue v;
  v.attr = attr;
  v.str = std::move(value);
  return v;
}

DwarfAttrValue DwarfAttrValue::Number(DwAttr attr, uint64_t value) {
  DwarfAttrValue v;
  v.attr = attr;
  v.num = value;
  return v;
}

const DwarfAttrValue* Die::Find(DwAttr attr) const {
  for (const DwarfAttrValue& v : attrs) {
    if (v.attr == attr) {
      return &v;
    }
  }
  return nullptr;
}

std::optional<std::string> Die::GetString(DwAttr attr) const {
  const DwarfAttrValue* v = Find(attr);
  if (v == nullptr) {
    return std::nullopt;
  }
  return v->str;
}

std::optional<uint64_t> Die::GetNumber(DwAttr attr) const {
  const DwarfAttrValue* v = Find(attr);
  if (v == nullptr) {
    return std::nullopt;
  }
  return v->num;
}

bool Die::GetFlag(DwAttr attr) const { return Find(attr) != nullptr; }

uint32_t DwarfDocument::AddDie(DwTag tag, uint32_t parent) {
  uint32_t index = static_cast<uint32_t>(dies_.size());
  dies_.push_back(Die{tag, {}, {}});
  if (parent == 0) {
    roots_.push_back(index);
  } else {
    dies_[parent].children.push_back(index);
  }
  return index;
}

void DwarfDocument::SetString(uint32_t die, DwAttr attr, std::string value) {
  dies_[die].attrs.push_back(DwarfAttrValue::String(attr, std::move(value)));
}

void DwarfDocument::SetNumber(uint32_t die, DwAttr attr, uint64_t value) {
  dies_[die].attrs.push_back(DwarfAttrValue::Number(attr, value));
}

void DwarfDocument::SetFlag(uint32_t die, DwAttr attr) {
  dies_[die].attrs.push_back(DwarfAttrValue::Number(attr, 1));
}

}  // namespace depsurf
