// Extraction of function instances and call-site relations from a DWARF-lite
// document. Produces the data behind the paper's function-status records
// (Appendix A.2.4): per-instance name/location/inline attribute, plus the
// lists of callers that inlined the function and callers that call it
// out of line.
#ifndef DEPSURF_SRC_DWARF_FUNCTION_VIEW_H_
#define DEPSURF_SRC_DWARF_FUNCTION_VIEW_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/dwarf/dwarf.h"
#include "src/util/error.h"

namespace depsurf {

// One DW_TAG_subprogram instance (a source function compiled into one
// translation unit; a header-defined static appears once per including TU).
struct FunctionInstance {
  std::string name;
  std::string decl_file;
  uint32_t decl_line = 0;
  bool external = false;
  DwInl inline_attr = DwInl::kNotInlined;
  // Set when the instance has an out-of-line copy.
  std::optional<uint64_t> low_pc;
  // "file:caller" for each caller that inlined this instance.
  std::vector<std::string> caller_inline;
  // "file:caller" for each caller with an out-of-line call.
  std::vector<std::string> caller_func;

  // An instance is "out of line" iff it has code of its own.
  bool HasCode() const { return low_pc.has_value(); }
};

// All instances in a document, grouped by function name, in DIE order.
// Fails on structurally invalid documents (e.g., an inlined_subroutine
// whose origin is not a subprogram).
Result<std::map<std::string, std::vector<FunctionInstance>>> CollectFunctionInstances(
    const DwarfDocument& document);

}  // namespace depsurf

#endif  // DEPSURF_SRC_DWARF_FUNCTION_VIEW_H_
