// Binary encoder/decoder for DWARF-lite documents.
//
// Two sections are produced, mirroring .debug_abbrev/.debug_info:
//   - abbrev: distinct (tag, has_children, attribute/form list) shapes,
//     each with a ULEB code; terminated by code 0.
//   - info: DIEs in pre-order; each is an abbrev code followed by attribute
//     values; a DIE with children is followed by its children and a 0
//     terminator.
// DIE references use the pre-order index (1-based) within the document.
#ifndef DEPSURF_SRC_DWARF_DWARF_CODEC_H_
#define DEPSURF_SRC_DWARF_DWARF_CODEC_H_

#include <vector>

#include "src/dwarf/dwarf.h"
#include "src/util/byte_buffer.h"
#include "src/util/error.h"

namespace depsurf {

struct DwarfSections {
  std::vector<uint8_t> abbrev;
  std::vector<uint8_t> info;
};

// Serializes the document. DIE indices are renumbered to pre-order; all
// reference attributes are remapped accordingly.
DwarfSections EncodeDwarf(const DwarfDocument& document, Endian endian = Endian::kLittle);

// Parses the two sections back into a document (indices in pre-order).
Result<DwarfDocument> DecodeDwarf(const std::vector<uint8_t>& abbrev,
                                  const std::vector<uint8_t>& info,
                                  Endian endian = Endian::kLittle);

}  // namespace depsurf

#endif  // DEPSURF_SRC_DWARF_DWARF_CODEC_H_
