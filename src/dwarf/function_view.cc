#include "src/dwarf/function_view.h"

namespace depsurf {

Result<std::map<std::string, std::vector<FunctionInstance>>> CollectFunctionInstances(
    const DwarfDocument& document) {
  // Pass 1: map every subprogram DIE index to its slot in the result, and
  // record the enclosing (CU file, subprogram name) context of each DIE.
  struct Slot {
    std::string name;
    size_t index;  // into instances[name]
  };
  std::map<std::string, std::vector<FunctionInstance>> instances;
  std::map<uint32_t, Slot> subprogram_slots;

  for (uint32_t root : document.roots()) {
    const Die& cu = document.die(root);
    if (cu.tag != DwTag::kCompileUnit) {
      return Error(ErrorCode::kMalformedData, "top-level DIE is not a compile unit");
    }
    std::string cu_file = cu.GetString(DwAttr::kName).value_or("");
    for (uint32_t child : cu.children) {
      const Die& die = document.die(child);
      if (die.tag != DwTag::kSubprogram) {
        continue;
      }
      FunctionInstance inst;
      inst.name = die.GetString(DwAttr::kName).value_or("");
      if (inst.name.empty()) {
        return Error(ErrorCode::kMalformedData, "subprogram without a name");
      }
      inst.decl_file = die.GetString(DwAttr::kDeclFile).value_or(cu_file);
      inst.decl_line = static_cast<uint32_t>(die.GetNumber(DwAttr::kDeclLine).value_or(0));
      inst.external = die.GetFlag(DwAttr::kExternal);
      inst.inline_attr =
          static_cast<DwInl>(die.GetNumber(DwAttr::kInline).value_or(0));
      if (auto pc = die.GetNumber(DwAttr::kLowPc); pc.has_value()) {
        inst.low_pc = *pc;
      }
      auto& list = instances[inst.name];
      subprogram_slots[child] = Slot{inst.name, list.size()};
      list.push_back(std::move(inst));
    }
  }

  // Pass 2: attribute inlined_subroutine / call_site records to their
  // origin instances.
  Status bad = Status::Ok();
  for (uint32_t root : document.roots()) {
    const Die& cu = document.die(root);
    std::string cu_file = cu.GetString(DwAttr::kName).value_or("");
    for (uint32_t sub_index : cu.children) {
      const Die& sub = document.die(sub_index);
      if (sub.tag != DwTag::kSubprogram) {
        continue;
      }
      std::string caller = cu_file + ":" + sub.GetString(DwAttr::kName).value_or("?");
      document.Walk(sub_index, [&](uint32_t index, const Die& die) {
        if (index == sub_index) {
          return;
        }
        uint64_t origin = 0;
        bool is_inline_site = false;
        if (die.tag == DwTag::kInlinedSubroutine) {
          origin = die.GetNumber(DwAttr::kAbstractOrigin).value_or(0);
          is_inline_site = true;
        } else if (die.tag == DwTag::kCallSite) {
          origin = die.GetNumber(DwAttr::kCallOrigin).value_or(0);
        } else {
          return;
        }
        auto it = subprogram_slots.find(static_cast<uint32_t>(origin));
        if (it == subprogram_slots.end()) {
          bad = Status(ErrorCode::kMalformedData, "call origin is not a subprogram");
          return;
        }
        FunctionInstance& target = instances[it->second.name][it->second.index];
        if (is_inline_site) {
          target.caller_inline.push_back(caller);
        } else {
          target.caller_func.push_back(caller);
        }
      });
    }
  }
  DEPSURF_RETURN_IF_ERROR(bad);
  return instances;
}

}  // namespace depsurf
