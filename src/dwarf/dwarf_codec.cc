#include "src/dwarf/dwarf_codec.h"

#include <map>

#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/leb128.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// The shape of a DIE for abbreviation purposes.
struct AbbrevShape {
  uint16_t tag;
  bool has_children;
  std::vector<uint16_t> attrs;

  bool operator<(const AbbrevShape& other) const {
    if (tag != other.tag) {
      return tag < other.tag;
    }
    if (has_children != other.has_children) {
      return has_children < other.has_children;
    }
    return attrs < other.attrs;
  }
};

AbbrevShape ShapeOf(const Die& die) {
  AbbrevShape shape;
  shape.tag = static_cast<uint16_t>(die.tag);
  shape.has_children = !die.children.empty();
  shape.attrs.reserve(die.attrs.size());
  for (const DwarfAttrValue& v : die.attrs) {
    shape.attrs.push_back(static_cast<uint16_t>(v.attr));
  }
  return shape;
}

void WriteAttrValue(ByteWriter& w, const DwarfAttrValue& v, uint64_t ref_remap) {
  switch (FormOf(v.attr)) {
    case DwForm::kString:
      w.WriteCString(v.str);
      break;
    case DwForm::kUdata:
      WriteUleb128(w, v.num);
      break;
    case DwForm::kFlag:
      w.WriteU8(1);
      break;
    case DwForm::kAddr:
      w.WriteU64(v.num);
      break;
    case DwForm::kRef:
      WriteUleb128(w, ref_remap);
      break;
  }
}

}  // namespace

DwarfSections EncodeDwarf(const DwarfDocument& document, Endian endian) {
  // Pass 1: pre-order numbering so references are decoder-stable.
  std::vector<uint32_t> arena_to_preorder(document.num_dies() + 1, 0);
  uint32_t next = 1;
  document.WalkAll([&](uint32_t index, const Die&) { arena_to_preorder[index] = next++; });

  // Pass 2: collect abbrev shapes.
  std::map<AbbrevShape, uint64_t> abbrev_codes;
  document.WalkAll([&](uint32_t, const Die& die) {
    AbbrevShape shape = ShapeOf(die);
    if (abbrev_codes.find(shape) == abbrev_codes.end()) {
      uint64_t code = abbrev_codes.size() + 1;
      abbrev_codes[shape] = code;
    }
  });

  ByteWriter abbrev(endian);
  // Entries must appear in code order.
  std::vector<const AbbrevShape*> ordered(abbrev_codes.size());
  for (const auto& [shape, code] : abbrev_codes) {
    ordered[code - 1] = &shape;
  }
  for (size_t i = 0; i < ordered.size(); ++i) {
    WriteUleb128(abbrev, i + 1);
    WriteUleb128(abbrev, ordered[i]->tag);
    abbrev.WriteU8(ordered[i]->has_children ? 1 : 0);
    for (uint16_t attr : ordered[i]->attrs) {
      WriteUleb128(abbrev, attr);
      WriteUleb128(abbrev, static_cast<uint64_t>(FormOf(static_cast<DwAttr>(attr))));
    }
    WriteUleb128(abbrev, 0);
    WriteUleb128(abbrev, 0);
  }
  WriteUleb128(abbrev, 0);  // table terminator

  // Pass 3: emit DIEs pre-order.
  ByteWriter info(endian);
  auto emit = [&](auto&& self, uint32_t index) -> void {
    const Die& die = document.die(index);
    WriteUleb128(info, abbrev_codes[ShapeOf(die)]);
    for (const DwarfAttrValue& v : die.attrs) {
      uint64_t remapped = v.num;
      if (FormOf(v.attr) == DwForm::kRef && v.num != 0) {
        remapped = arena_to_preorder[v.num];
      }
      WriteAttrValue(info, v, remapped);
    }
    if (!die.children.empty()) {
      for (uint32_t child : die.children) {
        self(self, child);
      }
      WriteUleb128(info, 0);  // end of children
    }
  };
  for (uint32_t root : document.roots()) {
    emit(emit, root);
  }

  return DwarfSections{abbrev.TakeBytes(), info.TakeBytes()};
}

Result<DwarfDocument> DecodeDwarf(const std::vector<uint8_t>& abbrev,
                                  const std::vector<uint8_t>& info, Endian endian) {
  obs::ScopedSpan span("dwarf.decode");
  span.AddAttr("abbrev_bytes", static_cast<uint64_t>(abbrev.size()));
  span.AddAttr("info_bytes", static_cast<uint64_t>(info.size()));
  struct AbbrevEntry {
    uint16_t tag = 0;
    bool has_children = false;
    std::vector<std::pair<DwAttr, DwForm>> attrs;
  };

  // Parse the abbreviation table.
  std::vector<AbbrevEntry> entries;  // index = code - 1
  {
    ByteReader r(abbrev, endian);
    while (true) {
      DEPSURF_ASSIGN_OR_RETURN(code, ReadUleb128(r));
      if (code == 0) {
        break;
      }
      if (code != entries.size() + 1) {
        return Error(ErrorCode::kMalformedData, "abbrev codes not sequential")
            .WithOffset(r.offset());
      }
      AbbrevEntry entry;
      DEPSURF_ASSIGN_OR_RETURN(tag, ReadUleb128(r));
      entry.tag = static_cast<uint16_t>(tag);
      DEPSURF_ASSIGN_OR_RETURN(has_children, r.ReadU8());
      entry.has_children = has_children != 0;
      while (true) {
        DEPSURF_ASSIGN_OR_RETURN(attr, ReadUleb128(r));
        DEPSURF_ASSIGN_OR_RETURN(form, ReadUleb128(r));
        if (attr == 0 && form == 0) {
          break;
        }
        DwForm parsed_form = static_cast<DwForm>(form);
        DwAttr parsed_attr = static_cast<DwAttr>(attr);
        if (parsed_form != FormOf(parsed_attr)) {
          return Error(ErrorCode::kMalformedData,
                       StrFormat("attr 0x%x has unexpected form %u", (unsigned)attr,
                                 (unsigned)form))
              .WithOffset(r.offset());
        }
        entry.attrs.emplace_back(parsed_attr, parsed_form);
      }
      entries.push_back(std::move(entry));
    }
  }

  // Parse the info stream.
  DwarfDocument document;
  ByteReader r(info, endian);
  std::vector<uint32_t> stack;  // parent DIE indices

  while (!r.AtEnd()) {
    DEPSURF_ASSIGN_OR_RETURN(code, ReadUleb128(r));
    if (code == 0) {
      if (stack.empty()) {
        return Error(ErrorCode::kMalformedData, "end-of-children with empty stack")
            .WithOffset(r.offset());
      }
      stack.pop_back();
      continue;
    }
    if (code > entries.size()) {
      return Error(ErrorCode::kMalformedData, "abbrev code out of range")
          .WithOffset(r.offset());
    }
    const AbbrevEntry& entry = entries[code - 1];
    uint32_t parent = stack.empty() ? 0 : stack.back();
    uint32_t die_index = document.AddDie(static_cast<DwTag>(entry.tag), parent);
    for (const auto& [attr, form] : entry.attrs) {
      switch (form) {
        case DwForm::kString: {
          DEPSURF_ASSIGN_OR_RETURN(s, r.ReadCString());
          document.SetString(die_index, attr, std::move(s));
          break;
        }
        case DwForm::kUdata:
        case DwForm::kRef: {
          DEPSURF_ASSIGN_OR_RETURN(n, ReadUleb128(r));
          document.SetNumber(die_index, attr, n);
          break;
        }
        case DwForm::kFlag: {
          DEPSURF_RETURN_IF_ERROR(r.Skip(1));
          document.SetFlag(die_index, attr);
          break;
        }
        case DwForm::kAddr: {
          DEPSURF_ASSIGN_OR_RETURN(n, r.ReadU64());
          document.SetNumber(die_index, attr, n);
          break;
        }
      }
    }
    if (entry.has_children) {
      stack.push_back(die_index);
    }
  }
  if (!stack.empty()) {
    return Error(ErrorCode::kMalformedData, "unterminated children list")
        .WithOffset(r.offset());
  }
  // Validate references point at real DIEs.
  Status ref_status = Status::Ok();
  document.WalkAll([&](uint32_t, const Die& die) {
    for (const DwarfAttrValue& v : die.attrs) {
      if (FormOf(v.attr) == DwForm::kRef && v.num > document.num_dies()) {
        ref_status = Status(ErrorCode::kMalformedData, "DIE reference out of range");
      }
    }
  });
  DEPSURF_RETURN_IF_ERROR(ref_status);
  span.AddAttr("abbrevs", static_cast<uint64_t>(entries.size()));
  span.AddAttr("dies", static_cast<uint64_t>(document.num_dies()));
  // No static counter caching: the current context differs per image in
  // report-mode builds, so pointers must be re-resolved each decode.
  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Counter("dwarf.documents_decoded")->fetch_add(1, std::memory_order_relaxed);
  metrics.Counter("dwarf.abbrevs_decoded")
      ->fetch_add(entries.size(), std::memory_order_relaxed);
  metrics.Counter("dwarf.dies_decoded")
      ->fetch_add(document.num_dies(), std::memory_order_relaxed);
  metrics.Counter("dwarf.bytes_decoded")
      ->fetch_add(abbrev.size() + info.size(), std::memory_order_relaxed);
  return document;
}

}  // namespace depsurf
