// DWARF-lite: a from-scratch debugging-information format modeled on DWARF.
//
// The document is a forest of DIEs (debugging information entries), each
// with a tag, attribute list, and children. Encoding follows the DWARF
// architecture: an abbreviation table describing distinct (tag, attribute
// shape) combinations, and an info stream of ULEB-coded abbrev references
// plus attribute values, with children terminated by a zero entry.
//
// The subset implemented covers what kernel-image analysis needs: compile
// units, subprograms (with inline attributes and parameters), inlined call
// sites (DW_TAG_inlined_subroutine + abstract origin), and call-site records
// (DW_TAG_call_site + origin) used to enumerate non-inlined callers.
#ifndef DEPSURF_SRC_DWARF_DWARF_H_
#define DEPSURF_SRC_DWARF_DWARF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/error.h"

namespace depsurf {

// Tag values mirror real DWARF numbering where one exists.
enum class DwTag : uint16_t {
  kCompileUnit = 0x11,
  kSubprogram = 0x2e,
  kFormalParameter = 0x05,
  kInlinedSubroutine = 0x1d,
  kCallSite = 0x48,  // DWARF 5
};

// Attribute codes (subset; values mirror DWARF where applicable).
enum class DwAttr : uint16_t {
  kName = 0x03,          // string
  kDeclFile = 0x3a,      // string (we inline the path rather than a file table)
  kDeclLine = 0x3b,      // udata
  kExternal = 0x3f,      // flag
  kLowPc = 0x11,         // addr (u64)
  kInline = 0x20,        // udata (DwInl)
  kAbstractOrigin = 0x31,  // ref (global DIE index)
  kCallOrigin = 0x7f,    // ref (DW_AT_call_origin)
};

// DW_INL_* inline attribute values (DWARF spec section 3.3.8).
enum class DwInl : uint8_t {
  kNotInlined = 0,           // not declared inline, not inlined
  kInlined = 1,              // not declared inline, but inlined
  kDeclaredNotInlined = 2,   // declared inline, not inlined
  kDeclaredInlined = 3,      // declared inline and inlined
};

// Attribute forms determine the wire encoding.
enum class DwForm : uint8_t {
  kString = 1,  // inline NUL-terminated string
  kUdata = 2,   // ULEB128
  kFlag = 3,    // 1-byte 0/1
  kAddr = 4,    // fixed 8 bytes
  kRef = 5,     // ULEB128 global DIE index (1-based; 0 = null ref)
};

// Which form each attribute uses (fixed per attribute in this dialect).
DwForm FormOf(DwAttr attr);

struct DwarfAttrValue {
  DwAttr attr;
  // Exactly one of these is meaningful, per FormOf(attr).
  std::string str;
  uint64_t num = 0;

  static DwarfAttrValue String(DwAttr attr, std::string value);
  static DwarfAttrValue Number(DwAttr attr, uint64_t value);
};

// One DIE. Children are stored as indices into the owning document's arena,
// so the tree is cheap to traverse and serialize.
struct Die {
  DwTag tag;
  std::vector<DwarfAttrValue> attrs;
  std::vector<uint32_t> children;

  const DwarfAttrValue* Find(DwAttr attr) const;
  std::optional<std::string> GetString(DwAttr attr) const;
  std::optional<uint64_t> GetNumber(DwAttr attr) const;
  bool GetFlag(DwAttr attr) const;
};

// An arena of DIEs. Index 0 is reserved (null reference); real DIEs start
// at index 1. Top-level DIEs (compile units) are tracked separately.
class DwarfDocument {
 public:
  DwarfDocument() : dies_(1) {}  // slot 0 = null

  // Creates a DIE; if parent != 0 it is appended to the parent's children,
  // otherwise it becomes a root (compile unit).
  uint32_t AddDie(DwTag tag, uint32_t parent);

  Die& die(uint32_t index) { return dies_[index]; }
  const Die& die(uint32_t index) const { return dies_[index]; }
  uint32_t num_dies() const { return static_cast<uint32_t>(dies_.size()) - 1; }
  const std::vector<uint32_t>& roots() const { return roots_; }

  void SetString(uint32_t die, DwAttr attr, std::string value);
  void SetNumber(uint32_t die, DwAttr attr, uint64_t value);
  void SetFlag(uint32_t die, DwAttr attr);

  // Depth-first visit of every DIE under (and including) `index`.
  template <typename Fn>
  void Walk(uint32_t index, Fn&& fn) const {
    fn(index, dies_[index]);
    for (uint32_t child : dies_[index].children) {
      Walk(child, fn);
    }
  }

  // Visits every DIE in the document.
  template <typename Fn>
  void WalkAll(Fn&& fn) const {
    for (uint32_t root : roots_) {
      Walk(root, fn);
    }
  }

 private:
  std::vector<Die> dies_;
  std::vector<uint32_t> roots_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_DWARF_DWARF_H_
