// depsurf: command-line interface to the analysis library.
//
//   depsurf gen   --version=5.4 [--arch=x86] [--flavor=generic] [--scale=1.0]
//                 [--seed=N] --out=IMAGE          generate a kernel image
//   depsurf surface IMAGE [--func=NAME] [--json]  inspect a dependency surface
//   depsurf stats   IMAGE [--json]                decode an image, report pipeline metrics
//   depsurf doctor  IMAGE [--sweep=N] [--json]    triage a damaged image / fault sweep
//   depsurf fuzz    SEED... [--rounds=N] [--json]  coverage-guided fault fuzzing
//   depsurf diff    OLD NEW                       diff two images (Table 3/4 style)
//   depsurf check   OBJECT IMAGE...               report mismatches for an eBPF object
//   depsurf analyze OBJECT [--against=DS[,DS]]    static analysis of the insn stream
//   depsurf fix     OBJECT [--against=DS[,DS]]    synthesize + verify exists-guards
//   depsurf progs                                 list the bundled 53-program corpus
//   depsurf emit    PROGRAM --out=OBJ             write a bundled program's .o
//   depsurf metrics lint|canon FILE               validate / canonicalize a report
//   depsurf report  merge OUT IN...               merge run reports into an aggregate
//   depsurf report  flame REPORT.json             folded stacks for flamegraph.pl
//   depsurf perf    compare BASE HEAD             perf regression gate over stage timings
//   depsurf perf    record|trend|diff             run-history store, trend analytics,
//                                                 differential profile attribution
//   depsurf profile REPORT.json | --live          self-profile: self-time, critical path
//   depsurf study   build [--versions=..]         build a dataset corpus, with reports
//   depsurf serve   --against=DS[,DS] --oneshot   batched NDJSON dependency queries
//   depsurf dataset migrate IN OUT                convert a .dds to the v2 mmap layout
//
// Every command accepts --metrics-out=FILE (write a depsurf.run_report.v1
// JSON document on exit), --trace-out=FILE (write a Chrome/Perfetto
// trace_event timeline of the span tree, for ui.perfetto.dev), and --trace
// (stream spans to stderr as they close).
//
// Images and objects are ordinary files; `gen`/`emit` exist because this
// reproduction generates its corpus instead of downloading Ubuntu dbgsym
// packages (see DESIGN.md).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "src/analyzer/analyzer.h"
#include "src/analyzer/remediation.h"
#include "src/bpf/bpf_rewriter.h"
#include "src/bpf/core_reloc_engine.h"
#include "src/btf/btf_print.h"
#include "src/core/dataset_io.h"
#include "src/faultgen/fault_injector.h"
#include "src/fuzz/fuzz_campaign.h"
#include "src/kernelgen/rates.h"
#include "src/obs/bench_report.h"
#include "src/obs/diag.h"
#include "src/obs/diagnostics.h"
#include "src/obs/json_lint.h"
#include "src/obs/perf_gate.h"
#include "src/obs/perf_history.h"
#include "src/obs/profile.h"
#include "src/obs/profile_diff.h"
#include "src/obs/report_merge.h"
#include "src/obs/run_report.h"
#include "src/obs/trace_export.h"
#include "src/serve/serve.h"
#include "src/study/study.h"
#include "src/util/str_util.h"

using namespace depsurf;
using obs::DiagError;

namespace {

Result<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error(ErrorCode::kIoError, "cannot open " + path);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

Status WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot write " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return Status::Ok();
}

std::string FlagValue(int argc, char** argv, const char* name, const char* fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> Positional(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 2; i < argc; ++i) {
    if (strncmp(argv[i], "--", 2) != 0) {
      out.push_back(argv[i]);
    }
  }
  return out;
}

// Strict flag parsing: every --flag must be one of `allowed` or a global
// flag (--metrics-out / --trace-out / --trace); exit 1 naming the flag
// otherwise, matching the PR 9 sweep (a typo'd flag must never be silently
// ignored). Returns 0 when all flags are known.
int RejectUnknownFlags(int argc, char** argv, const char* command,
                       std::initializer_list<const char*> allowed) {
  for (int i = 2; i < argc; ++i) {
    if (strncmp(argv[i], "--", 2) != 0) {
      continue;
    }
    std::string name = argv[i] + 2;
    if (size_t eq = name.find('='); eq != std::string::npos) {
      name = name.substr(0, eq);
    }
    bool known = name == "metrics-out" || name == "trace-out" || name == "trace";
    for (const char* a : allowed) {
      known = known || name == a;
    }
    if (!known) {
      return DiagError(StrFormat("%s: unknown flag --%s", command, name.c_str()));
    }
  }
  return 0;
}

// Loads every dataset named in a comma-separated --against value.
Result<std::vector<Dataset>> LoadAgainstDatasets(const std::string& against) {
  std::vector<std::string> paths;
  for (const std::string& path : SplitString(against, ',')) {
    if (!path.empty()) {
      paths.push_back(path);
    }
  }
  std::vector<Dataset> datasets;
  datasets.reserve(paths.size());
  for (const std::string& path : paths) {
    auto bytes = ReadFile(path);
    if (!bytes.ok()) {
      return bytes.TakeError();
    }
    auto loaded = LoadAnyDataset(*bytes);
    if (!loaded.ok()) {
      return loaded.TakeError().Wrap(path);
    }
    datasets.push_back(loaded.TakeValue());
  }
  return datasets;
}

// A nonnegative integer flag value; empty means the fallback. Anything that
// does not fully parse is an error: the old strtoull path read
// "--sweep=abc" as 0 and silently skipped the sweep (same bug PR 7 fixed
// for --noise-floor).
Result<uint64_t> ParseU64Flag(const std::string& text, uint64_t fallback) {
  if (text.empty()) {
    return fallback;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long value = strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      text.front() == '-') {
    return Error(ErrorCode::kInvalidArgument,
                 "\"" + text + "\" is not a nonnegative integer");
  }
  return static_cast<uint64_t>(value);
}

// --jobs=N executor-window width: 0 (auto) through 256, strictly parsed.
// The old atoi path read "--jobs=abc" as 0 and silently went auto-wide.
Result<int> ParseJobsFlag(const std::string& text) {
  auto value = ParseU64Flag(text, 0);
  if (!value.ok()) {
    return value.TakeError();
  }
  if (*value > 256) {
    return Error(ErrorCode::kInvalidArgument,
                 "\"" + text + "\" is out of range (0 = auto, max 256)");
  }
  return static_cast<int>(*value);
}

Result<double> ParseSecondsFlag(const std::string& text, double fallback);

// Parses --arch/--flavor flags into enums; false on an unknown name.
bool ParseArchFlavor(int argc, char** argv, Arch* arch, Flavor* flavor) {
  std::string arch_name = FlagValue(argc, argv, "arch", "x86");
  std::string flavor_name = FlagValue(argc, argv, "flavor", "generic");
  bool arch_ok = false;
  for (Arch a : kAllArches) {
    if (arch_name == ArchName(a)) {
      *arch = a;
      arch_ok = true;
    }
  }
  bool flavor_ok = false;
  for (Flavor f : kAllFlavors) {
    if (flavor_name == FlavorName(f)) {
      *flavor = f;
      flavor_ok = true;
    }
  }
  return arch_ok && flavor_ok;
}

int CmdGen(int argc, char** argv) {
  auto version = KernelVersion::Parse(FlagValue(argc, argv, "version", "5.4"));
  if (!version.ok()) {
    return DiagError(version.error().ToString());
  }
  std::string out = FlagValue(argc, argv, "out", "");
  if (out.empty()) {
    return DiagError("gen requires --out=FILE");
  }
  Arch arch = Arch::kX86;
  Flavor flavor = Flavor::kGeneric;
  if (!ParseArchFlavor(argc, argv, &arch, &flavor)) {
    return DiagError("unknown --arch or --flavor");
  }
  auto options = StudyOptions::Parse(argc, argv, /*default_scale=*/1.0);
  if (!options.ok()) {
    return DiagError(options.error());
  }
  Study study(options.TakeValue());
  auto bytes = study.BuildImage(MakeBuild(*version, arch, flavor));
  if (!bytes.ok()) {
    return DiagError(bytes.error().ToString());
  }
  Status written = WriteFile(out, *bytes);
  if (!written.ok()) {
    return DiagError(written.ToString());
  }
  printf("wrote %s (%zu bytes, %s)\n", out.c_str(), bytes->size(),
         MakeBuild(*version, arch, flavor).Label().c_str());
  return 0;
}

int CmdSurface(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  if (positional.empty()) {
    return DiagError("surface requires an IMAGE path");
  }
  auto bytes = ReadFile(positional[0]);
  if (!bytes.ok()) {
    return DiagError(bytes.error().ToString());
  }
  auto surface = DependencySurface::Extract(bytes.TakeValue());
  if (!surface.ok()) {
    return DiagError(surface.error().ToString());
  }
  const SurfaceMeta& meta = surface->meta();
  printf("image: Linux v%d.%d %s/%s gcc%d (%d-bit %s-endian, %u config options)\n",
         meta.version_major, meta.version_minor, meta.arch.c_str(), meta.flavor.c_str(),
         meta.gcc_major, meta.pointer_size * 8,
         meta.endian == Endian::kLittle ? "little" : "big", meta.config_options);
  size_t attachable = 0;
  size_t full = 0;
  size_t selective = 0;
  size_t transformed = 0;
  for (const auto& [name, entry] : surface->functions()) {
    (void)name;
    attachable += entry.status.has_exact_symbol ? 1 : 0;
    full += entry.status.fully_inlined ? 1 : 0;
    selective += entry.status.selectively_inlined ? 1 : 0;
    transformed += entry.status.transformed ? 1 : 0;
  }
  printf("functions:   %zu in debug info; %zu attachable, %zu fully inlined,\n"
         "             %zu selectively inlined, %zu transformed\n",
         surface->functions().size(), attachable, full, selective, transformed);
  printf("structs:     %zu\n", surface->structs().size());
  printf("tracepoints: %zu\n", surface->tracepoints().size());
  printf("syscalls:    %zu (compat 32-bit tracing: %s)\n", surface->syscalls().size(),
         meta.compat_syscalls_traceable ? "supported" : "blind spot");

  std::string func = FlagValue(argc, argv, "func", "");
  if (!func.empty()) {
    const FunctionEntry* entry = surface->FindFunction(func);
    if (entry == nullptr) {
      return DiagError("no function named " + func + " on this surface");
    }
    if (HasFlag(argc, argv, "json")) {
      printf("%s\n", entry->StatusJson().c_str());
    } else {
      printf("\n%s\n", entry->btf_id != 0
                           ? FuncDeclString(surface->btf(), entry->btf_id).c_str()
                           : func.c_str());
      printf("  class: %s\n", entry->status.CollisionClass().c_str());
      printf("  attachable: %s%s%s%s\n", entry->status.has_exact_symbol ? "yes" : "NO",
             entry->status.fully_inlined ? " (fully inlined)" : "",
             entry->status.transformed
                 ? StrFormat(" (transformed%s)", entry->status.transform_suffix.c_str()).c_str()
                 : "",
             entry->status.selectively_inlined ? " (selectively inlined)" : "");
      for (const FunctionInstance& inst : entry->instances) {
        printf("  instance at %s:%u (%s)\n", inst.decl_file.c_str(), inst.decl_line,
               inst.HasCode() ? "has code" : "no code");
        for (const std::string& caller : inst.caller_inline) {
          printf("    inlined into %s\n", caller.c_str());
        }
        for (const std::string& caller : inst.caller_func) {
          printf("    called from  %s\n", caller.c_str());
        }
      }
    }
  }
  return 0;
}

// Decodes an image end to end (ELF, BTF, DWARF, surface extraction) and
// prints the metrics the pipeline collected along the way. The JSON form is
// the same document --metrics-out writes.
int CmdStats(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  if (positional.empty()) {
    return DiagError("stats requires an IMAGE path");
  }
  auto bytes = ReadFile(positional[0]);
  if (!bytes.ok()) {
    return DiagError(bytes.error());
  }
  auto surface = DependencySurface::Extract(bytes.TakeValue());
  if (!surface.ok()) {
    return DiagError(positional[0], surface.error());
  }
  if (HasFlag(argc, argv, "json")) {
    printf("%s\n", obs::GlobalRunReportJson().c_str());
  } else {
    printf("%s", obs::GlobalRunReportText().c_str());
  }
  return 0;
}

// depsurf.diagnostics.v1: the standalone document `doctor --json` emits.
std::string DiagnosticsDocJson(const std::string& image, const SurfaceHealth& health,
                               const Error* fatal_error) {
  std::vector<DiagnosticEntry> entries = health.ledger.entries();
  if (fatal_error != nullptr) {
    DiagnosticEntry fatal;
    fatal.severity = DiagSeverity::kFatal;
    // Errors tagged by an inner layer keep that attribution; untagged ones
    // (unreadable container) are the ELF layer's.
    fatal.subsystem = fatal_error->subsystem().value_or(DiagSubsystem::kElf);
    fatal.code = fatal_error->code();
    if (fatal_error->offset().has_value()) {
      fatal.offset = *fatal_error->offset();
      fatal.has_offset = true;
    }
    fatal.message = fatal_error->message();
    entries.push_back(fatal);
  }
  std::string out = "{\n";
  out += StrFormat("\"schema\": \"%s\",\n", obs::kDiagnosticsSchema);
  out += StrFormat("\"image\": \"%s\",\n", obs::JsonEscape(image).c_str());
  out += StrFormat(
      "\"health\": {\"elf\": \"%s\", \"dwarf\": \"%s\", \"btf\": \"%s\", "
      "\"tracepoint\": \"%s\", \"syscall\": \"%s\"},\n",
      DegradationStateName(health.elf), DegradationStateName(health.dwarf),
      DegradationStateName(health.btf), DegradationStateName(health.tracepoint),
      DegradationStateName(health.syscall));
  out += StrFormat("\"fatal\": %s,\n", fatal_error != nullptr ? "true" : "false");
  out += "\"entries\": " + obs::DiagnosticsJson(std::move(entries));
  out += "\n}\n";
  return out;
}

// Triage for damaged inputs: extract once and report what salvage-mode
// extraction survived, or sweep N seeded mutations over the image and
// assert the crash-free contract corpus-wide. Exit codes mirror `check`:
// 0 clean, 2 salvaged (degraded subsystems), 1 unreadable container.
int CmdDoctor(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  if (positional.empty()) {
    return DiagError("doctor requires an IMAGE path");
  }
  auto bytes = ReadFile(positional[0]);
  if (!bytes.ok()) {
    return DiagError(bytes.error());
  }
  const bool json = HasFlag(argc, argv, "json");
  auto sweep_flag = ParseU64Flag(FlagValue(argc, argv, "sweep", ""), 0);
  if (!sweep_flag.ok()) {
    return DiagError("--sweep: " + sweep_flag.error().message());
  }
  auto seed_flag = ParseU64Flag(FlagValue(argc, argv, "seed", ""), 2025);
  if (!seed_flag.ok()) {
    return DiagError("--seed: " + seed_flag.error().message());
  }
  auto timeout_flag =
      ParseSecondsFlag(FlagValue(argc, argv, "mutation-timeout", ""), 30.0);
  if (!timeout_flag.ok()) {
    return DiagError("--mutation-timeout: " + timeout_flag.error().message());
  }
  const uint64_t sweep = *sweep_flag;
  const uint64_t seed = *seed_flag;
  const uint64_t budget_ms = static_cast<uint64_t>(*timeout_flag * 1000.0);

  if (sweep == 0) {
    auto surface = DependencySurface::Extract(*bytes);
    if (!surface.ok()) {
      if (json) {
        printf("%s", DiagnosticsDocJson(positional[0], SurfaceHealth{}, &surface.error()).c_str());
      } else {
        printf("%s: unreadable (%s)\n", positional[0].c_str(),
               surface.error().ToString().c_str());
      }
      return 1;
    }
    const SurfaceHealth& health = surface->health();
    if (json) {
      printf("%s", DiagnosticsDocJson(positional[0], health, nullptr).c_str());
    } else {
      printf("%s: %s\n", positional[0].c_str(), health.Summary().c_str());
      for (const DiagnosticEntry& entry : health.ledger.entries()) {
        printf("  %s\n", entry.ToString().c_str());
      }
    }
    return health.AnyDegraded() ? 2 : 0;
  }

  // Sweep mode: every mutation must extract without crashing, and damage
  // must never pass silently — a non-clean outcome without ledger entries
  // (or a fatal error) would mean salvage lost the diagnosis. Each
  // extraction runs under the --mutation-timeout wall-clock guard, so a
  // pathological mutation shows up as a named timeout diagnostic (and exit
  // 1) instead of stalling CI.
  size_t clean = 0;
  size_t salvaged = 0;
  size_t fatal = 0;
  size_t timed_out = 0;
  for (uint64_t i = 0; i < sweep; ++i) {
    auto damaged = std::make_shared<std::vector<uint8_t>>(*bytes);
    FaultKind kind = FaultKindForIndex(i);
    std::string what = ApplyFault(*damaged, kind, seed + i);
    // Shared state so a timed-out worker never touches freed stack.
    auto state = std::make_shared<std::pair<bool, bool>>();  // {fatal, degraded}
    const bool finished = RunWithWallClock(budget_ms, [damaged, state] {
      auto surface = DependencySurface::Extract(std::move(*damaged));
      state->first = !surface.ok();
      state->second = surface.ok() && surface->health().AnyDegraded();
    });
    const char* outcome;
    if (!finished) {
      outcome = "TIMEOUT";
      ++timed_out;
    } else if (state->first) {
      outcome = "fatal";
      ++fatal;
    } else if (state->second) {
      outcome = "salvaged";
      ++salvaged;
    } else {
      outcome = "clean";
      ++clean;
    }
    if (!json) {
      printf("[%3llu] %-8s %s\n", static_cast<unsigned long long>(i), outcome, what.c_str());
    }
    if (!finished) {
      obs::Diag(obs::Severity::kError,
                StrFormat("sweep mutation %llu exceeded --mutation-timeout "
                          "(%.1fs): %s",
                          static_cast<unsigned long long>(i), *timeout_flag,
                          what.c_str()));
    }
  }
  printf("sweep: %llu mutations over %s: %zu clean, %zu salvaged, %zu fatal, "
         "%zu timed out, 0 crashes\n",
         static_cast<unsigned long long>(sweep), positional[0].c_str(), clean, salvaged,
         fatal, timed_out);
  return timed_out > 0 ? 1 : 0;
}

// Coverage-guided fault fuzzing over seed images or eBPF objects
// (src/fuzz): mutate, extract under salvage mode, keep candidates whose
// diagnostic signature is novel, cross-check every candidate against the
// salvage-vs-strict oracle. Exit codes: 0 clean campaign, 2 oracle
// disagreements, 1 hangs or infrastructure failure. Deterministic in
// (--seed, seed files): two runs emit byte-identical JSON and corpora.
int CmdFuzz(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  if (positional.empty()) {
    return DiagError("fuzz requires at least one SEED path (image or object)");
  }
  FuzzOptions options;
  auto rounds = ParseU64Flag(FlagValue(argc, argv, "rounds", ""), 64);
  if (!rounds.ok()) {
    return DiagError("--rounds: " + rounds.error().message());
  }
  options.rounds = *rounds;
  auto seed = ParseU64Flag(FlagValue(argc, argv, "seed", ""), 2025);
  if (!seed.ok()) {
    return DiagError("--seed: " + seed.error().message());
  }
  options.seed = *seed;
  auto timeout =
      ParseSecondsFlag(FlagValue(argc, argv, "mutation-timeout", ""), 10.0);
  if (!timeout.ok()) {
    return DiagError("--mutation-timeout: " + timeout.error().message());
  }
  options.time_budget_ms = static_cast<uint64_t>(*timeout * 1000.0);
  auto max_ledger = ParseU64Flag(FlagValue(argc, argv, "max-ledger", ""), 10000);
  if (!max_ledger.ok()) {
    return DiagError("--max-ledger: " + max_ledger.error().message());
  }
  options.max_ledger_entries = static_cast<size_t>(*max_ledger);

  std::vector<FuzzSeed> seeds;
  for (const std::string& path : positional) {
    auto bytes = ReadFile(path);
    if (!bytes.ok()) {
      return DiagError(bytes.error());
    }
    FuzzSeed fuzz_seed;
    // Basename only: the report must not change with the invocation dir.
    fuzz_seed.name = path.substr(path.find_last_of('/') + 1);
    fuzz_seed.bytes = bytes.TakeValue();
    seeds.push_back(std::move(fuzz_seed));
  }

  auto campaign = RunFuzzCampaign(std::move(seeds), options);
  if (!campaign.ok()) {
    return DiagError(campaign.error());
  }
  std::string corpus_dir = FlagValue(argc, argv, "corpus-dir", "");
  if (!corpus_dir.empty()) {
    auto written = WriteFuzzCorpus(*campaign, corpus_dir);
    if (!written.ok()) {
      return DiagError(written.error());
    }
  }
  if (HasFlag(argc, argv, "json")) {
    printf("%s", RenderFuzzCampaignJson(*campaign).c_str());
    return campaign->ExitCode();
  }
  printf("fuzz: %llu rounds over %zu seed(s) [%s mode]: %zu coverage tuples, "
         "corpus %zu (minimized to %zu), %zu oracle disagreements, %zu hangs\n",
         static_cast<unsigned long long>(campaign->rounds),
         campaign->seed_names.size(), SeedModeName(campaign->mode),
         campaign->coverage.size(), campaign->corpus.size(),
         campaign->minimized.size(), campaign->disagreements.size(),
         campaign->hangs.size());
  for (const FuzzKindStats& stats : campaign->kinds) {
    printf("  %-24s attempts=%-4llu novel=%llu\n", stats.kind.c_str(),
           static_cast<unsigned long long>(stats.attempts),
           static_cast<unsigned long long>(stats.novel));
  }
  for (const FuzzOracleDisagreement& d : campaign->disagreements) {
    printf("  ORACLE round=%llu kind=%s fault_seed=%llu: %s\n",
           static_cast<unsigned long long>(d.round), d.kind.c_str(),
           static_cast<unsigned long long>(d.fault_seed), d.violation.c_str());
  }
  for (const FuzzHang& h : campaign->hangs) {
    printf("  HANG round=%llu kind=%s fault_seed=%llu: %s\n",
           static_cast<unsigned long long>(h.round), h.kind.c_str(),
           static_cast<unsigned long long>(h.fault_seed), h.description.c_str());
  }
  return campaign->ExitCode();
}

// Validates or canonicalizes an observability JSON file. `lint` dispatches
// on --kind (run report, aggregate, bench report, perf comparison, trace);
// `canon` re-emits any document in compact form with timing fields masked,
// so two runs over the same inputs can be compared byte for byte.
int CmdMetrics(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  if (positional.size() < 2 || (positional[0] != "lint" && positional[0] != "canon")) {
    return DiagError("metrics requires a subcommand: lint FILE | canon FILE");
  }
  auto bytes = ReadFile(positional[1]);
  if (!bytes.ok()) {
    return DiagError(bytes.error());
  }
  std::string text(bytes->begin(), bytes->end());
  if (positional[0] == "canon") {
    auto json = obs::ParseJson(text);
    if (!json.ok()) {
      return DiagError(positional[1], json.error());
    }
    printf("%s\n", obs::CanonicalMaskedJson(*json).c_str());
    return 0;
  }
  std::string kind = FlagValue(argc, argv, "kind", "report");
  if (kind == "report") {
    auto min_spans_flag = ParseU64Flag(FlagValue(argc, argv, "min-spans", ""), 0);
    if (!min_spans_flag.ok()) {
      return DiagError("--min-spans: " + min_spans_flag.error().message());
    }
    size_t min_spans = static_cast<size_t>(*min_spans_flag);
    std::vector<std::string> required;
    for (const std::string& name : SplitString(FlagValue(argc, argv, "require", ""), ',')) {
      if (!name.empty()) {
        required.push_back(name);
      }
    }
    Status valid = obs::ValidateRunReport(text, min_spans, required);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    auto json = obs::ParseJson(text);
    for (const std::string& note : obs::RunReportLintNotes(*json)) {
      printf("note: %s: %s\n", positional[1].c_str(), note.c_str());
    }
    printf("%s: valid %s (%zu distinct spans)\n", positional[1].c_str(),
           obs::kRunReportSchema, obs::CollectSpanNames(*json).size());
    return 0;
  }
  if (kind == "agg") {
    Status valid = obs::ValidateAggReport(text);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    if (auto json = obs::ParseJson(text); json.ok()) {
      for (const std::string& note : obs::RunReportLintNotes(*json)) {
        printf("note: %s: %s\n", positional[1].c_str(), note.c_str());
      }
    }
    printf("%s: valid %s\n", positional[1].c_str(), obs::kRunReportAggSchema);
    return 0;
  }
  if (kind == "profile") {
    Status valid = obs::ValidateProfileDoc(text);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid %s\n", positional[1].c_str(), obs::kProfileSchema);
    return 0;
  }
  if (kind == "bench") {
    Status valid = obs::ValidateBenchReport(text);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid %s\n", positional[1].c_str(), obs::kBenchReportSchema);
    return 0;
  }
  if (kind == "perf") {
    Status valid = obs::ValidatePerfCompare(text);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid %s\n", positional[1].c_str(), obs::kPerfCompareSchema);
    return 0;
  }
  if (kind == "diag") {
    Status valid = obs::ValidateDiagnosticsDoc(text);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid %s\n", positional[1].c_str(), obs::kDiagnosticsSchema);
    return 0;
  }
  if (kind == "analysis") {
    Status valid = obs::ValidateAnalysisDoc(text);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid depsurf.analysis.v1\n", positional[1].c_str());
    return 0;
  }
  if (kind == "remediation") {
    Status valid = obs::ValidateRemediationDoc(text);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid depsurf.remediation.v1\n", positional[1].c_str());
    return 0;
  }
  if (kind == "fuzz") {
    Status valid = obs::ValidateFuzzCampaignDoc(text);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid %s\n", positional[1].c_str(), kFuzzCampaignSchema);
    return 0;
  }
  if (kind == "history") {
    size_t records = 0;
    Status valid = obs::ValidateHistoryNdjson(text, &records);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid %s (%zu records)\n", positional[1].c_str(), obs::kPerfHistorySchema,
           records);
    return 0;
  }
  if (kind == "trend") {
    Status valid = obs::ValidateTrendDoc(text);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid %s\n", positional[1].c_str(), obs::kPerfTrendSchema);
    return 0;
  }
  if (kind == "profile_diff") {
    Status valid = obs::ValidateProfileDiffDoc(text);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid %s\n", positional[1].c_str(), obs::kProfileDiffSchema);
    return 0;
  }
  if (kind == "serve") {
    Status valid = obs::ValidateServeReportDoc(text);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid depsurf.serve_report.v1\n", positional[1].c_str());
    return 0;
  }
  if (kind == "trace") {
    auto json = obs::ParseJson(text);
    if (!json.ok()) {
      return DiagError(positional[1], json.error());
    }
    int64_t expect_events = -1;
    std::string report_path = FlagValue(argc, argv, "report", "");
    if (!report_path.empty()) {
      auto report_bytes = ReadFile(report_path);
      if (!report_bytes.ok()) {
        return DiagError(report_bytes.error());
      }
      auto report = obs::ParseJson(std::string(report_bytes->begin(), report_bytes->end()));
      if (!report.ok()) {
        return DiagError(report_path, report.error());
      }
      expect_events = static_cast<int64_t>(obs::CountReportSpanNodes(*report));
    }
    Status valid = obs::ValidateTrace(*json, expect_events);
    if (!valid.ok()) {
      return DiagError(positional[1], valid.error());
    }
    printf("%s: valid trace_event JSON (%zu events)\n", positional[1].c_str(),
           json->Find("traceEvents")->array.size());
    return 0;
  }
  return DiagError("unknown --kind=" + kind +
                   " (valid kinds: report|agg|bench|perf|trace|diag|analysis|"
                   "remediation|profile|history|trend|profile_diff|fuzz|serve)");
}

// Merges run reports (per-image documents from a study build, or prior
// aggregates) into one depsurf.run_report_agg.v1 file.
int CmdReport(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  // `report flame REPORT.json [--out=FILE]`: folded stacks
  // (`root;child;leaf self_ns` lines) from a run report or aggregate,
  // directly consumable by flamegraph.pl / speedscope.
  if (!positional.empty() && positional[0] == "flame") {
    if (positional.size() < 2) {
      return DiagError("report flame requires a REPORT.json path");
    }
    auto bytes = ReadFile(positional[1]);
    if (!bytes.ok()) {
      return DiagError(bytes.error());
    }
    auto folded = obs::FoldedStacksFromReportJson(std::string(bytes->begin(), bytes->end()));
    if (!folded.ok()) {
      return DiagError(positional[1], folded.error());
    }
    std::string out_path = FlagValue(argc, argv, "out", "");
    if (out_path.empty()) {
      printf("%s", folded->c_str());
      return 0;
    }
    std::ofstream out(out_path, std::ios::binary);
    out.write(folded->data(), static_cast<std::streamsize>(folded->size()));
    if (!out) {
      return DiagError("cannot write " + out_path);
    }
    printf("wrote %s (%zu bytes)\n", out_path.c_str(), folded->size());
    return 0;
  }
  if (positional.size() < 3 || positional[0] != "merge") {
    return DiagError(
        "report requires a subcommand: merge OUT IN... | flame REPORT.json [--out=FILE]");
  }
  std::vector<obs::LabeledReport> reports;
  for (size_t i = 2; i < positional.size(); ++i) {
    auto bytes = ReadFile(positional[i]);
    if (!bytes.ok()) {
      return DiagError(bytes.error());
    }
    reports.push_back(
        obs::LabeledReport{positional[i], std::string(bytes->begin(), bytes->end())});
  }
  auto merged = obs::MergeRunReports(reports);
  if (!merged.ok()) {
    return DiagError(merged.error());
  }
  std::ofstream out(positional[1], std::ios::binary);
  if (!out) {
    return DiagError("cannot write " + positional[1]);
  }
  out.write(merged->data(), static_cast<std::streamsize>(merged->size()));
  if (!out) {
    return DiagError("short write to " + positional[1]);
  }
  printf("wrote %s (%zu input reports, %zu bytes)\n", positional[1].c_str(), reports.size(),
         merged->size());
  return 0;
}

// Accepts "15%", "15", or "0.15" — all meaning a 15% threshold; empty
// means the fallback. Anything non-numeric is an error: the old atof path
// read "--max-regress=abc" as 0 and turned the gate into a tripwire on
// pure noise.
Result<double> ParseRatioFlag(const std::string& text, double fallback) {
  if (text.empty()) {
    return fallback;
  }
  bool percent = text.back() == '%';
  std::string digits = percent ? text.substr(0, text.size() - 1) : text;
  char* end = nullptr;
  double value = digits.empty() ? 0 : strtod(digits.c_str(), &end);
  if (digits.empty() || end == nullptr || *end != '\0' || !std::isfinite(value) ||
      value <= 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "\"" + text + "\" is not a positive ratio (try 15%, 15, or 0.15)");
  }
  if (percent || value > 1.0) {
    value /= 100.0;
  }
  return value;
}

// A nonnegative seconds value; empty means the fallback, anything that does
// not fully parse as a finite number is an error.
Result<double> ParseSecondsFlag(const std::string& text, double fallback) {
  if (text.empty()) {
    return fallback;
  }
  char* end = nullptr;
  double value = strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(value) || value < 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "\"" + text + "\" is not a nonnegative number of seconds");
  }
  return value;
}

Result<std::string> ReadTextFile(const std::string& path) {
  auto bytes = ReadFile(path);
  if (!bytes.ok()) {
    return bytes.TakeError();
  }
  return std::string(bytes->begin(), bytes->end());
}

// Loads an NDJSON history store from disk.
Result<std::vector<obs::HistoryRecord>> LoadHistory(const std::string& path) {
  auto text = ReadTextFile(path);
  if (!text.ok()) {
    return text.TakeError();
  }
  auto records = obs::ParseHistoryNdjson(*text);
  if (!records.ok()) {
    return Error(ErrorCode::kMalformedData, path + ": " + records.error().message());
  }
  return records;
}

// The perf regression gate: exit 0 when no stage regressed beyond the
// threshold, 3 when one did (1 stays "could not compare at all"). With
// --history=FILE, per-stage adaptive noise floors from the run history
// replace the hardcoded default for every stage the history has seen.
int CmdPerfCompare(int argc, char** argv, const std::vector<std::string>& positional) {
  if (positional.size() < 3) {
    return DiagError("perf compare requires BASE.json and HEAD.json");
  }
  obs::PerfGateOptions options;
  auto ratio = ParseRatioFlag(FlagValue(argc, argv, "max-regress", ""), 0.15);
  if (!ratio.ok()) {
    return DiagError("--max-regress: " + ratio.error().message());
  }
  options.max_regress = *ratio;
  auto floor = ParseSecondsFlag(FlagValue(argc, argv, "noise-floor", ""), 0.005);
  if (!floor.ok()) {
    return DiagError("--noise-floor: " + floor.error().message());
  }
  options.noise_floor_seconds = *floor;
  std::string history_path = FlagValue(argc, argv, "history", "");
  if (!history_path.empty()) {
    auto records = LoadHistory(history_path);
    if (!records.ok()) {
      return DiagError(records.error());
    }
    obs::TrendOptions trend_options;
    trend_options.min_floor_seconds = options.noise_floor_seconds;
    obs::TrendReport trend =
        obs::AnalyzeTrend(*records, obs::CurrentHostFingerprint(), trend_options);
    options.stage_delta_floors_seconds = obs::AdaptiveStageFloors(trend);
  }
  std::vector<std::vector<obs::StageTiming>> sides;
  for (size_t i = 1; i <= 2; ++i) {
    auto text = ReadTextFile(positional[i]);
    if (!text.ok()) {
      return DiagError(text.error());
    }
    auto json = obs::ParseJson(*text);
    if (!json.ok()) {
      return DiagError(positional[i], json.error());
    }
    auto timings = obs::LoadStageTimings(*json);
    if (!timings.ok()) {
      return DiagError(positional[i], timings.error());
    }
    sides.push_back(timings.TakeValue());
  }
  obs::PerfComparison comparison = obs::ComparePerf(sides[0], sides[1], options);
  if (HasFlag(argc, argv, "json")) {
    printf("%s", obs::PerfComparisonJson(comparison, options).c_str());
  } else {
    printf("%s", obs::PerfComparisonText(comparison).c_str());
  }
  return comparison.gate_failed() ? 3 : 0;
}

// Appends one depsurf.perf_history.v1 record (all stages across the given
// bench/run reports, the optional profile's critical-path summary, host
// fingerprint, label) to an NDJSON history store.
int CmdPerfRecord(int argc, char** argv, const std::vector<std::string>& positional) {
  std::string history_path = FlagValue(argc, argv, "history", "");
  if (positional.size() < 2 || history_path.empty()) {
    return DiagError("perf record requires BENCH.json... and --history=FILE");
  }
  obs::HistoryRecord record;
  record.label = FlagValue(argc, argv, "label", "");
  if (record.label.empty()) {
    const char* env = getenv("DEPSURF_BUILD_LABEL");
    record.label = env != nullptr && env[0] != '\0' ? env : "unlabeled";
  }
  // Timestamps are injected here at the CLI edge; obs library code never
  // reads a wall clock, so its outputs stay deterministic.
  record.recorded_unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::system_clock::now().time_since_epoch())
                                .count();
  record.host = obs::CurrentHostFingerprint();
  for (size_t i = 1; i < positional.size(); ++i) {
    auto text = ReadTextFile(positional[i]);
    if (!text.ok()) {
      return DiagError(text.error());
    }
    auto json = obs::ParseJson(*text);
    if (!json.ok()) {
      return DiagError(positional[i], json.error());
    }
    auto timings = obs::LoadStageTimings(*json);
    if (!timings.ok()) {
      return DiagError(positional[i], timings.error());
    }
    obs::AddStageTimings(record, *timings);
  }
  std::string profile_path = FlagValue(argc, argv, "profile", "");
  if (!profile_path.empty()) {
    auto text = ReadTextFile(profile_path);
    if (!text.ok()) {
      return DiagError(text.error());
    }
    auto profile = obs::ParseProfileDoc(*text);
    if (!profile.ok()) {
      return DiagError(profile_path, profile.error());
    }
    obs::SetProfileSummary(record, *profile);
  }
  Status appended = obs::AppendHistoryRecord(history_path, record);
  if (!appended.ok()) {
    return DiagError(appended.error());
  }
  printf("recorded \"%s\" (%zu stages%s) into %s\n", record.label.c_str(),
         record.stages.size(), record.profile.present ? " + profile summary" : "",
         history_path.c_str());
  return 0;
}

// Robust per-stage baselines over the history store: median/MAD, the
// latest run's deviation, change-point flags, and the adaptive floor each
// stage would gate with.
int CmdPerfTrend(int argc, char** argv) {
  std::string history_path = FlagValue(argc, argv, "history", "");
  if (history_path.empty()) {
    return DiagError("perf trend requires --history=FILE");
  }
  obs::TrendOptions options;
  // A zero window would mean "baseline over no runs" — reject it along with
  // anything the old unvalidated strtoull silently read as 0. Flags are
  // checked before the history loads so the error names the flag.
  auto window = ParseU64Flag(FlagValue(argc, argv, "window", ""), 8);
  if (!window.ok()) {
    return DiagError("--window: " + window.error().message());
  }
  if (*window == 0) {
    return DiagError("--window: must be at least 1");
  }
  options.window = static_cast<size_t>(*window);
  auto records = LoadHistory(history_path);
  if (!records.ok()) {
    return DiagError(records.error());
  }
  auto min_floor = ParseSecondsFlag(FlagValue(argc, argv, "min-floor", ""),
                                    options.min_floor_seconds);
  if (!min_floor.ok()) {
    return DiagError("--min-floor: " + min_floor.error().message());
  }
  options.min_floor_seconds = *min_floor;
  obs::TrendReport report =
      obs::AnalyzeTrend(*records, obs::CurrentHostFingerprint(), options);
  if (HasFlag(argc, argv, "json")) {
    printf("%s", obs::TrendReportJson(report).c_str());
  } else {
    printf("%s", obs::TrendReportText(report).c_str());
  }
  return 0;
}

// Differential profile attribution: which span names and which critical-
// path chain got slower between two depsurf.profile.v1 documents.
int CmdPerfDiff(int argc, char** argv, const std::vector<std::string>& positional) {
  if (positional.size() < 3) {
    return DiagError("perf diff requires BASE_PROFILE.json and HEAD_PROFILE.json");
  }
  // Flags are checked before the profiles load so the error names the flag.
  auto top_flag = ParseU64Flag(FlagValue(argc, argv, "top", ""), 10);
  if (!top_flag.ok()) {
    return DiagError("--top: " + top_flag.error().message());
  }
  if (*top_flag == 0) {
    return DiagError("--top: must be at least 1");
  }
  size_t top = static_cast<size_t>(*top_flag);
  std::vector<obs::Profile> profiles;
  for (size_t i = 1; i <= 2; ++i) {
    auto text = ReadTextFile(positional[i]);
    if (!text.ok()) {
      return DiagError(text.error());
    }
    auto profile = obs::ParseProfileDoc(*text);
    if (!profile.ok()) {
      return DiagError(positional[i], profile.error());
    }
    profiles.push_back(profile.TakeValue());
  }
  obs::ProfileDiff diff = obs::DiffProfiles(profiles[0], profiles[1], top);
  if (HasFlag(argc, argv, "json")) {
    printf("%s", obs::ProfileDiffJson(diff).c_str());
  } else {
    printf("%s", obs::ProfileDiffText(diff).c_str());
  }
  return 0;
}

int CmdPerf(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  if (positional.empty()) {
    return DiagError("perf requires a subcommand: compare|record|trend|diff");
  }
  if (positional[0] == "compare") {
    return CmdPerfCompare(argc, argv, positional);
  }
  if (positional[0] == "record") {
    return CmdPerfRecord(argc, argv, positional);
  }
  if (positional[0] == "trend") {
    return CmdPerfTrend(argc, argv);
  }
  if (positional[0] == "diff") {
    return CmdPerfDiff(argc, argv, positional);
  }
  return DiagError("unknown perf subcommand " + positional[0] +
                   " (compare|record|trend|diff)");
}

// Shared by `study build` and `profile --live`: --versions/--arch/--flavor
// into a build corpus (empty --versions means the bundled LTS set).
Result<std::vector<BuildSpec>> CorpusFromFlags(int argc, char** argv) {
  Arch arch = Arch::kX86;
  Flavor flavor = Flavor::kGeneric;
  if (!ParseArchFlavor(argc, argv, &arch, &flavor)) {
    return Error(ErrorCode::kInvalidArgument, "unknown --arch or --flavor");
  }
  std::vector<BuildSpec> corpus;
  std::string versions = FlagValue(argc, argv, "versions", "");
  if (versions.empty()) {
    for (KernelVersion version : kLtsVersions) {
      corpus.push_back(MakeBuild(version, arch, flavor));
    }
  } else {
    for (const std::string& text : SplitString(versions, ',')) {
      if (text.empty()) {
        continue;
      }
      auto version = KernelVersion::Parse(text);
      if (!version.ok()) {
        return version.TakeError();
      }
      corpus.push_back(MakeBuild(*version, arch, flavor));
    }
  }
  if (corpus.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty corpus (check --versions)");
  }
  return corpus;
}

// Corpus builds from the CLI: generate + extract + distill a whole version
// corpus, optionally writing per-image run reports and their aggregate.
int CmdStudy(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  if (positional.empty() || positional[0] != "build") {
    return DiagError("study requires a subcommand: build");
  }
  auto corpus_or = CorpusFromFlags(argc, argv);
  if (!corpus_or.ok()) {
    return DiagError("study build: " + corpus_or.error().message());
  }
  std::vector<BuildSpec> corpus = corpus_or.TakeValue();
  auto options = StudyOptions::Parse(argc, argv, /*default_scale=*/1.0);
  if (!options.ok()) {
    return DiagError(options.error());
  }
  Study study(options.TakeValue());
  // Failure policy: --keep-going (the default) quarantines images whose
  // extraction dies outright; --strict aborts the whole build instead.
  BuildPolicy policy;
  policy.keep_going = !HasFlag(argc, argv, "strict");
  // --jobs=N: width of the concurrent generate+extract window (0 = auto).
  auto jobs = ParseJobsFlag(FlagValue(argc, argv, "jobs", ""));
  if (!jobs.ok()) {
    return DiagError("--jobs: " + jobs.error().message());
  }
  policy.jobs = *jobs;
  // --poison=LABEL (testing aid): truncate the named image below the ELF
  // header before extraction, guaranteeing a fatal failure on exactly that
  // image so the quarantine path can be demonstrated end to end.
  std::string poison = FlagValue(argc, argv, "poison", "");
  if (!poison.empty()) {
    study.SetImageMutator([poison](const BuildSpec& build, std::vector<uint8_t>& bytes) {
      if (build.Label() == poison && bytes.size() > 16) {
        bytes.resize(16);
      }
    });
  }
  auto progress = [](const Study::ImageProgress& p) {
    printf("[%zu/%zu] %-28s %.2f s%s\n", p.index + 1, p.total, p.label.c_str(), p.seconds,
           p.quarantined ? "  (quarantined)" : "");
  };
  std::string report_dir = FlagValue(argc, argv, "report-dir", "");
  Study::DatasetReportFiles files;
  std::vector<QuarantinedImage> quarantined;
  auto dataset = report_dir.empty()
                     ? study.BuildDataset(corpus, progress, policy, &quarantined)
                     : study.BuildDatasetWithReports(corpus, report_dir, &files, progress,
                                                     policy, &quarantined);
  if (!dataset.ok()) {
    return DiagError(dataset.error());
  }
  for (const QuarantinedImage& image : quarantined) {
    printf("quarantined %s: %s\n", image.label.c_str(), image.error.ToString().c_str());
  }
  std::string out = FlagValue(argc, argv, "out", "");
  if (!out.empty()) {
    std::vector<uint8_t> bytes = SaveDataset(*dataset);
    Status written = WriteFile(out, bytes);
    if (!written.ok()) {
      return DiagError(written.ToString());
    }
    printf("wrote %s (%zu images, %zu bytes)\n", out.c_str(), dataset->num_images(),
           bytes.size());
  } else {
    printf("built %zu-image dataset (not saved; pass --out=FILE)\n", dataset->num_images());
  }
  if (!report_dir.empty()) {
    printf("wrote %zu per-image reports and %s\n", files.per_image.size(),
           files.aggregate.c_str());
  }
  // --profile-out=FILE: write a depsurf.profile.v1 self-profile of the
  // build that just ran (aggregate tables, critical path, executor stats).
  std::string profile_out = FlagValue(argc, argv, "profile-out", "");
  if (!profile_out.empty()) {
    obs::Profile profile;
    if (!report_dir.empty()) {
      // Report mode resets the root collectors between images; the
      // aggregate on disk is the authoritative span record.
      auto bytes = ReadFile(files.aggregate);
      if (!bytes.ok()) {
        return DiagError(bytes.error());
      }
      auto parsed = obs::ProfileFromReportJson(std::string(bytes->begin(), bytes->end()));
      if (!parsed.ok()) {
        return DiagError(files.aggregate, parsed.error());
      }
      profile = parsed.TakeValue();
    } else {
      profile = obs::BuildProfile(obs::SpanCollector::Global().Snapshot());
    }
    obs::FillExecutorStats(profile, obs::MetricsRegistry::Global());
    std::string json = obs::ProfileJson(profile);
    std::ofstream pout(profile_out, std::ios::binary);
    pout.write(json.data(), static_cast<std::streamsize>(json.size()));
    if (!pout) {
      return DiagError("cannot write " + profile_out);
    }
    printf("wrote %s (%s)\n", profile_out.c_str(), obs::kProfileSchema);
  }
  return 0;
}

// Self-profile of a run: per-name self-time/CPU/alloc aggregates, the
// critical path (the serial distill/serialize share of wall time), and
// executor stats. Input is a run report or aggregate from `study build
// --report-dir`; --live instead runs a corpus build in-process and
// profiles the spans it just recorded.
int CmdProfile(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  obs::Profile profile;
  std::string folded;
  if (HasFlag(argc, argv, "live")) {
    auto corpus = CorpusFromFlags(argc, argv);
    if (!corpus.ok()) {
      return DiagError("profile --live: " + corpus.error().message());
    }
    // Small default scale: --live exists to profile the pipeline's shape,
    // not to build a production dataset.
    auto options = StudyOptions::Parse(argc, argv, /*default_scale=*/0.25);
    if (!options.ok()) {
      return DiagError(options.error());
    }
    Study study(options.TakeValue());
    BuildPolicy policy;
    auto jobs = ParseJobsFlag(FlagValue(argc, argv, "jobs", ""));
    if (!jobs.ok()) {
      return DiagError("--jobs: " + jobs.error().message());
    }
    policy.jobs = *jobs;
    auto dataset = study.BuildDataset(*corpus, {}, policy, nullptr);
    if (!dataset.ok()) {
      return DiagError(dataset.error());
    }
    std::vector<obs::SpanNode> roots = obs::SpanCollector::Global().Snapshot();
    profile = obs::BuildProfile(roots);
    obs::FillExecutorStats(profile, obs::MetricsRegistry::Global());
    folded = obs::FoldedStacks(roots);
  } else {
    if (positional.empty()) {
      return DiagError("profile requires a RUN_REPORT.json path or --live");
    }
    auto bytes = ReadFile(positional[0]);
    if (!bytes.ok()) {
      return DiagError(bytes.error());
    }
    std::string text(bytes->begin(), bytes->end());
    auto parsed = obs::ProfileFromReportJson(text);
    if (!parsed.ok()) {
      return DiagError(positional[0], parsed.error());
    }
    profile = parsed.TakeValue();
    auto folded_or = obs::FoldedStacksFromReportJson(text);
    if (folded_or.ok()) {
      folded = folded_or.TakeValue();
    }
  }
  std::string out_path = FlagValue(argc, argv, "out", "");
  if (!out_path.empty()) {
    std::string json = obs::ProfileJson(profile);
    std::ofstream out(out_path, std::ios::binary);
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    if (!out) {
      return DiagError("cannot write " + out_path);
    }
    printf("wrote %s (%s)\n", out_path.c_str(), obs::kProfileSchema);
  }
  std::string folded_path = FlagValue(argc, argv, "folded-out", "");
  if (!folded_path.empty()) {
    std::ofstream out(folded_path, std::ios::binary);
    out.write(folded.data(), static_cast<std::streamsize>(folded.size()));
    if (!out) {
      return DiagError("cannot write " + folded_path);
    }
    printf("wrote %s (%zu bytes folded stacks)\n", folded_path.c_str(), folded.size());
  }
  if (HasFlag(argc, argv, "json")) {
    printf("%s", obs::ProfileJson(profile).c_str());
  } else if (out_path.empty() && folded_path.empty()) {
    printf("%s", obs::ProfileText(profile).c_str());
  }
  return 0;
}

int CmdDiff(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  if (positional.size() < 2) {
    return DiagError("diff requires OLD and NEW image paths");
  }
  auto old_bytes = ReadFile(positional[0]);
  auto new_bytes = ReadFile(positional[1]);
  if (!old_bytes.ok() || !new_bytes.ok()) {
    return DiagError("cannot read images");
  }
  auto old_surface = DependencySurface::Extract(old_bytes.TakeValue());
  if (!old_surface.ok()) {
    return DiagError("old image: " + old_surface.error().ToString());
  }
  auto new_surface = DependencySurface::Extract(new_bytes.TakeValue());
  if (!new_surface.ok()) {
    return DiagError("new image: " + new_surface.error().ToString());
  }
  SurfaceDiff diff = DiffSurfaces(*old_surface, *new_surface);
  printf("functions:   +%zu -%zu changed %zu\n", diff.funcs.added.size(),
         diff.funcs.removed.size(), diff.funcs.changed.size());
  printf("structs:     +%zu -%zu changed %zu\n", diff.structs.added.size(),
         diff.structs.removed.size(), diff.structs.changed.size());
  printf("tracepoints: +%zu -%zu changed %zu\n", diff.tracepoints.added.size(),
         diff.tracepoints.removed.size(), diff.tracepoints.changed.size());
  printf("syscalls:    +%zu -%zu\n", diff.syscalls.added.size(), diff.syscalls.removed.size());
  if (HasFlag(argc, argv, "verbose")) {
    for (const auto& [name, kinds] : diff.funcs.changed) {
      printf("  func %s:", name.c_str());
      for (FuncChangeKind kind : kinds) {
        printf(" [%s]", FuncChangeKindName(kind));
      }
      printf("\n");
    }
    for (const auto& [name, kinds] : diff.structs.changed) {
      printf("  struct %s:", name.c_str());
      for (StructChangeKind kind : kinds) {
        printf(" [%s]", StructChangeKindName(kind));
      }
      printf("\n");
    }
  }
  return 0;
}

int CmdCheck(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  std::string dataset_path = FlagValue(argc, argv, "dataset", "");
  if (positional.empty() || (positional.size() < 2 && dataset_path.empty())) {
    return DiagError("check requires OBJECT and either IMAGE... or --dataset=FILE");
  }
  auto object_bytes = ReadFile(positional[0]);
  if (!object_bytes.ok()) {
    return DiagError(object_bytes.error().ToString());
  }
  auto object = ParseBpfObject(object_bytes.TakeValue());
  if (!object.ok()) {
    return DiagError("object: " + object.error().ToString());
  }
  auto deps = ExtractDependencySet(*object);
  if (!deps.ok()) {
    return DiagError(deps.error().ToString());
  }
  Dataset dataset;
  if (!dataset_path.empty()) {
    auto bytes = ReadFile(dataset_path);
    if (!bytes.ok()) {
      return DiagError(bytes.error().ToString());
    }
    auto loaded = LoadAnyDataset(*bytes);
    if (!loaded.ok()) {
      return DiagError(dataset_path + ": " + loaded.error().ToString());
    }
    dataset = loaded.TakeValue();
  }
  for (size_t i = 1; i < positional.size(); ++i) {
    auto bytes = ReadFile(positional[i]);
    if (!bytes.ok()) {
      return DiagError(bytes.error().ToString());
    }
    auto surface = DependencySurface::Extract(bytes.TakeValue());
    if (!surface.ok()) {
      return DiagError(positional[i] + ": " + surface.error().ToString());
    }
    // Full images carry kernel BTF, so beyond the dataset row check we can
    // replay the object's CO-RE relocations against each one.
    LoadResult load = SimulateLoad(*object, surface->btf());
    size_t resolved = 0;
    for (const RelocResult& r : load.relocs) {
      resolved += r.outcome == RelocOutcome::kResolved ? 1 : 0;
    }
    printf("load %-28s %s (%zu/%zu relocs resolved%s%s)\n", positional[i].c_str(),
           load.loaded ? "ok" : "FAILS", resolved, load.relocs.size(),
           load.loaded ? "" : ": ", load.failure.c_str());
    dataset.AddImage(positional[i], *surface);
  }
  ProgramReport report = AnalyzeProgram(dataset, *deps);
  printf("%s\n", report.RenderMatrix().c_str());
  printf("worst implication: %s\n", ImplicationName(report.WorstImplication()));
  return report.AnyMismatch() ? 2 : 0;  // like grep: 2 = mismatches found
}

// Static analysis of a compiled object's instruction streams (CFG,
// reachability, register provenance, guard dominance). Exit 0 when clean,
// 2 when the analyzer reports findings, 1 when the object is unreadable.
int CmdAnalyze(int argc, char** argv) {
  if (int rc = RejectUnknownFlags(argc, argv, "analyze", {"against", "json"})) {
    return rc;
  }
  auto positional = Positional(argc, argv);
  if (positional.empty()) {
    return DiagError("analyze requires an OBJECT path");
  }
  auto bytes = ReadFile(positional[0]);
  if (!bytes.ok()) {
    return DiagError(bytes.error());
  }
  DiagnosticLedger ledger;
  auto object = ParseBpfObject(bytes.TakeValue(), &ledger);
  if (!object.ok()) {
    return DiagError(positional[0] + ": " + object.error().ToString());
  }
  std::vector<Dataset> datasets;
  AnalyzeOptions opts;
  std::string against = FlagValue(argc, argv, "against", "");
  if (!against.empty()) {
    auto loaded = LoadAgainstDatasets(against);
    if (!loaded.ok()) {
      return DiagError(loaded.error());
    }
    datasets = loaded.TakeValue();
    for (const Dataset& ds : datasets) {
      opts.against_all.push_back(&ds);
    }
  }
  ObjectAnalysis analysis = AnalyzeObject(*object, opts);
  if (HasFlag(argc, argv, "json")) {
    printf("%s", AnalysisToJson(analysis).c_str());
  } else {
    printf("object %s: %zu programs, %zu relocs%s\n", analysis.object_name.c_str(),
           analysis.programs.size(), analysis.relocs.size(),
           analysis.against_dataset
               ? StrFormat(" (against %zu images)", analysis.against_images).c_str()
               : "");
    for (const ProgramAnalysis& program : analysis.programs) {
      printf("  %-28s %s: %zu insns, %zu blocks, %zu reachable, %zu helper calls\n",
             program.name.c_str(), program.section.c_str(), program.insn_count,
             program.block_count, program.reachable_insns, program.helper_calls);
    }
    for (const RelocVerdict& verdict : analysis.relocs) {
      printf("  reloc [%zu] %s %s%s%s %s%s%s\n", verdict.index,
             CoreRelocKindName(verdict.kind), verdict.struct_name.c_str(),
             verdict.field_name.empty() ? "" : "::",
             verdict.field_name.c_str(),
             verdict.bound
                 ? StrFormat("%s+%u", verdict.program.c_str(), verdict.insn_off).c_str()
                 : "(unbound)",
             verdict.unguarded ? "" : " [guarded]",
             verdict.consequence.empty() ? "" : (" -> " + verdict.consequence).c_str());
    }
    for (const Finding& finding : analysis.findings) {
      printf("  %s %s+%u: %s\n", FindingKindName(finding.kind),
             finding.program.c_str(), finding.insn_off, finding.detail.c_str());
      printf("      fix: %s\n", finding.remediation.c_str());
    }
    printf("%zu findings\n", analysis.findings.size());
  }
  // Salvage notes go to stderr so --json output stays machine-clean.
  for (const DiagnosticEntry& entry : ledger.entries()) {
    fprintf(stderr, "note: %s\n", entry.ToString().c_str());
  }
  return analysis.findings.empty() ? 0 : 2;
}

// Remediation: plan a field_exists guard for every fixable finding, splice
// the guards into the object, and self-verify by re-analyzing the result.
// Exit 0 when the fixed object is clean, 2 when unfixable findings remain,
// 1 on error or when verification fails (a targeted finding survived the
// rewrite, or the rewrite introduced a new one).
int CmdFix(int argc, char** argv) {
  if (int rc = RejectUnknownFlags(argc, argv, "fix", {"against", "out", "json"})) {
    return rc;
  }
  auto positional = Positional(argc, argv);
  if (positional.empty()) {
    return DiagError("fix requires an OBJECT path");
  }
  auto bytes = ReadFile(positional[0]);
  if (!bytes.ok()) {
    return DiagError(bytes.error());
  }
  DiagnosticLedger ledger;
  auto object = ParseBpfObject(bytes.TakeValue(), &ledger);
  if (!object.ok()) {
    return DiagError(positional[0] + ": " + object.error().ToString());
  }
  std::vector<Dataset> datasets;
  AnalyzeOptions opts;
  std::string against = FlagValue(argc, argv, "against", "");
  if (!against.empty()) {
    auto loaded = LoadAgainstDatasets(against);
    if (!loaded.ok()) {
      return DiagError(loaded.error());
    }
    datasets = loaded.TakeValue();
    for (const Dataset& ds : datasets) {
      opts.against_all.push_back(&ds);
    }
  }

  ObjectAnalysis before = AnalyzeObject(*object, opts);
  RemediationPlan plan = PlanRemediation(*object, before, opts);

  BpfObject fixed = *object;
  Status applied = InsertFieldExistsGuards(fixed, plan.Insertions(), &ledger);
  if (!applied.ok()) {
    for (const DiagnosticEntry& entry : ledger.entries()) {
      fprintf(stderr, "note: %s\n", entry.ToString().c_str());
    }
    return DiagError(positional[0] + ": " + applied.error().ToString());
  }

  // The fixed object must round-trip through the salvaging decoder and
  // re-analyze with every targeted finding gone and nothing new.
  auto encoded = WriteBpfObject(fixed);
  if (!encoded.ok()) {
    return DiagError(positional[0] + ": fixed object does not encode: " +
                     encoded.error().ToString());
  }
  DiagnosticLedger reparse_ledger;
  auto reparsed = ParseBpfObject(*encoded, &reparse_ledger);
  if (!reparsed.ok()) {
    return DiagError(positional[0] + ": fixed object does not re-parse: " +
                     reparsed.error().ToString());
  }
  ledger.Merge(reparse_ledger);
  ObjectAnalysis after = AnalyzeObject(*reparsed, opts);
  RemediationVerification verification = VerifyRemediation(before, plan, after);

  std::string out_path = FlagValue(argc, argv, "out", "");
  if (!out_path.empty()) {
    Status written = WriteFile(out_path, *encoded);
    if (!written.ok()) {
      return DiagError(written.ToString());
    }
  }
  if (HasFlag(argc, argv, "json")) {
    printf("%s", RemediationToJson(before, plan, &verification).c_str());
  } else {
    printf("object %s: %zu findings, %zu fixable%s\n", before.object_name.c_str(),
           before.findings.size(), plan.FixableCount(),
           before.against_dataset
               ? StrFormat(" (against %zu images)", before.against_images).c_str()
               : "");
    for (size_t i = 0; i < plan.items.size(); ++i) {
      const Finding& finding = before.findings[i];
      printf("  %s %s+%u: %s\n", FindingKindName(finding.kind),
             finding.program.c_str(), finding.insn_off, plan.items[i].Text().c_str());
    }
    printf("after fix: %zu findings (%zu of %zu targeted eliminated, %zu new)\n",
           after.findings.size(), verification.targeted - verification.targeted_remaining,
           verification.targeted, verification.new_findings);
    if (!out_path.empty()) {
      printf("wrote %s (%zu bytes)\n", out_path.c_str(), encoded->size());
    }
  }
  for (const DiagnosticEntry& entry : ledger.entries()) {
    fprintf(stderr, "note: %s\n", entry.ToString().c_str());
  }
  if (!verification.ok) {
    fprintf(stderr,
            "error: fix verification failed: %zu targeted findings remain, "
            "%zu new findings\n",
            verification.targeted_remaining, verification.new_findings);
    return 1;
  }
  return after.findings.empty() ? 0 : 2;
}

int CmdDataset(int argc, char** argv) {
  auto positional = Positional(argc, argv);
  if (positional.empty()) {
    return DiagError("dataset requires a subcommand: build | info | migrate");
  }
  if (positional[0] == "build") {
    std::string out = FlagValue(argc, argv, "out", "");
    if (positional.size() < 2 || out.empty()) {
      return DiagError("dataset build requires IMAGE... and --out=FILE");
    }
    Dataset dataset;
    for (size_t i = 1; i < positional.size(); ++i) {
      auto bytes = ReadFile(positional[i]);
      if (!bytes.ok()) {
        return DiagError(bytes.error().ToString());
      }
      auto surface = DependencySurface::Extract(bytes.TakeValue());
      if (!surface.ok()) {
        return DiagError(positional[i] + ": " + surface.error().ToString());
      }
      dataset.AddImage(positional[i], *surface);
      printf("distilled %s\n", positional[i].c_str());
    }
    std::vector<uint8_t> bytes = SaveDataset(dataset);
    Status written = WriteFile(out, bytes);
    if (!written.ok()) {
      return DiagError(written.ToString());
    }
    printf("wrote %s (%zu images, %zu bytes)\n", out.c_str(), dataset.num_images(),
           bytes.size());
    return 0;
  }
  // migrate IN OUT: rewrite any .dds (v1 or v2) as the v2 mmap layout.
  // Byte-deterministic: the same input always produces the same output, and
  // migrating a v2 file reproduces it exactly.
  if (positional[0] == "migrate") {
    if (positional.size() < 3) {
      return DiagError("dataset migrate requires IN and OUT paths");
    }
    auto bytes = ReadFile(positional[1]);
    if (!bytes.ok()) {
      return DiagError(bytes.error().ToString());
    }
    auto format = DatasetFormatVersion(*bytes);
    if (!format.ok()) {
      return DiagError(positional[1] + ": " + format.error().ToString());
    }
    auto dataset = LoadAnyDataset(*bytes);
    if (!dataset.ok()) {
      return DiagError(positional[1] + ": " + dataset.error().ToString());
    }
    std::vector<uint8_t> v2 = SaveDatasetV2(*dataset);
    Status written = WriteFile(positional[2], v2);
    if (!written.ok()) {
      return DiagError(written.ToString());
    }
    printf("migrated %s (v%d, %zu bytes) -> %s (v2, %zu images, %zu bytes)\n",
           positional[1].c_str(), *format, bytes->size(), positional[2].c_str(),
           dataset->num_images(), v2.size());
    return 0;
  }
  if (positional[0] == "info") {
    if (positional.size() < 2) {
      return DiagError("dataset info requires a FILE");
    }
    auto bytes = ReadFile(positional[1]);
    if (!bytes.ok()) {
      return DiagError(bytes.error().ToString());
    }
    auto format = DatasetFormatVersion(*bytes);
    if (!format.ok()) {
      return DiagError(positional[1] + ": " + format.error().ToString());
    }
    auto dataset = LoadAnyDataset(*bytes);
    if (!dataset.ok()) {
      return DiagError(dataset.error().ToString());
    }
    printf("format v%d: %zu images, %zu interned strings\n", *format, dataset->num_images(),
           dataset->pool_size());
    for (const ImageRecord& image : dataset->images()) {
      printf("  %-28s v%d.%d %s/%s gcc%d: %zu funcs, %zu structs, %zu tracepoints, %zu syscalls\n",
             image.label.c_str(), image.meta.version_major, image.meta.version_minor,
             image.meta.arch.c_str(), image.meta.flavor.c_str(), image.meta.gcc_major,
             image.funcs.size(), image.structs.size(), image.tracepoints.size(),
             image.syscalls.size());
    }
    return 0;
  }
  return DiagError("unknown dataset subcommand " + positional[0] +
                   " (build | info | migrate)");
}

// Dataset-as-a-service: open every --against dataset once (v2 zero-copy
// mmap, v1 legacy parse), then answer batched NDJSON dependency-set
// queries. --oneshot reads one batch from stdin and writes one response
// line per request to stdout, in request order. --socket=PATH listens on a
// unix stream socket instead: each connection is one batch (client writes
// request lines then shuts down its write side; the server responds and
// closes). --report-out=FILE writes a depsurf.serve_report.v1 summary.
int CmdServe(int argc, char** argv) {
  std::string against = FlagValue(argc, argv, "against", "");
  if (against.empty()) {
    return DiagError("serve requires --against=DATASET[,DATASET...]");
  }
  std::vector<std::string> paths;
  for (const std::string& path : SplitString(against, ',')) {
    if (!path.empty()) {
      paths.push_back(path);
    }
  }
  ServeOptions options;
  auto jobs = ParseJobsFlag(FlagValue(argc, argv, "jobs", ""));
  if (!jobs.ok()) {
    return DiagError("--jobs: " + jobs.error().message());
  }
  options.jobs = *jobs;
  auto capacity = ParseU64Flag(FlagValue(argc, argv, "cache-capacity", ""), 4096);
  if (!capacity.ok()) {
    return DiagError("--cache-capacity: " + capacity.error().message());
  }
  options.cache_capacity = static_cast<size_t>(*capacity);
  auto max_conns = ParseU64Flag(FlagValue(argc, argv, "max-connections", ""), 0);
  if (!max_conns.ok()) {
    return DiagError("--max-connections: " + max_conns.error().message());
  }
  std::string socket_path = FlagValue(argc, argv, "socket", "");
  const bool oneshot = HasFlag(argc, argv, "oneshot");
  if (oneshot == !socket_path.empty()) {
    return DiagError("serve requires exactly one of --oneshot or --socket=PATH");
  }

  auto engine = ServeEngine::Open(paths, options);
  if (!engine.ok()) {
    return DiagError(engine.error());
  }

  if (oneshot) {
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) {
        lines.push_back(line);
      }
    }
    for (const std::string& response : engine->HandleBatch(lines)) {
      printf("%s\n", response.c_str());
    }
  } else {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      return DiagError("--socket: path longer than sockaddr_un allows");
    }
    memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    int listener = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
      return DiagError(StrFormat("socket: %s", strerror(errno)));
    }
    unlink(socket_path.c_str());
    if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(listener, 8) != 0) {
      int saved = errno;
      close(listener);
      return DiagError(StrFormat("cannot listen on %s: %s", socket_path.c_str(),
                                 strerror(saved)));
    }
    fprintf(stderr, "serving %zu dataset(s) on %s%s\n", engine->num_datasets(),
            socket_path.c_str(),
            *max_conns > 0
                ? StrFormat(" (%llu connection(s))",
                            static_cast<unsigned long long>(*max_conns))
                      .c_str()
                : "");
    for (uint64_t served = 0; *max_conns == 0 || served < *max_conns; ++served) {
      int conn = accept(listener, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR) {
          continue;
        }
        close(listener);
        return DiagError(StrFormat("accept: %s", strerror(errno)));
      }
      std::string incoming;
      char buffer[4096];
      ssize_t n;
      while ((n = read(conn, buffer, sizeof(buffer))) > 0) {
        incoming.append(buffer, static_cast<size_t>(n));
      }
      std::vector<std::string> lines;
      for (const std::string& request : SplitString(incoming, '\n')) {
        if (!request.empty()) {
          lines.push_back(request);
        }
      }
      std::string out;
      for (const std::string& response : engine->HandleBatch(lines)) {
        out += response;
        out += '\n';
      }
      size_t sent = 0;
      while (sent < out.size()) {
        ssize_t wrote = write(conn, out.data() + sent, out.size() - sent);
        if (wrote <= 0) {
          break;  // client hung up; drop the rest of this batch
        }
        sent += static_cast<size_t>(wrote);
      }
      close(conn);
    }
    close(listener);
    unlink(socket_path.c_str());
  }

  std::string report_out = FlagValue(argc, argv, "report-out", "");
  if (!report_out.empty()) {
    std::string report = engine->ReportJson();
    std::ofstream out(report_out, std::ios::binary);
    out.write(report.data(), static_cast<std::streamsize>(report.size()));
    if (!out) {
      return DiagError("cannot write " + report_out);
    }
    fprintf(stderr, "wrote %s (%s)\n", report_out.c_str(), kServeReportSchema);
  }
  fprintf(stderr,
          "served %llu request(s): %llu ok, %llu errors, cache %llu hit / %llu miss\n",
          static_cast<unsigned long long>(engine->requests()),
          static_cast<unsigned long long>(engine->ok_responses()),
          static_cast<unsigned long long>(engine->error_responses()),
          static_cast<unsigned long long>(engine->cache_hits()),
          static_cast<unsigned long long>(engine->cache_misses()));
  return 0;
}

int CmdProgs(Study& study) {
  for (const BpfObject& object : study.programs().objects) {
    printf("%s\n", object.name.c_str());
  }
  return 0;
}

int CmdEmit(int argc, char** argv, Study& study) {
  auto positional = Positional(argc, argv);
  std::string out = FlagValue(argc, argv, "out", "");
  if (positional.empty() || out.empty()) {
    return DiagError("emit requires PROGRAM and --out=FILE");
  }
  for (const BpfObject& object : study.programs().objects) {
    if (object.name == positional[0]) {
      auto bytes = WriteBpfObject(object);
      if (!bytes.ok()) {
        return DiagError(bytes.error().ToString());
      }
      Status written = WriteFile(out, *bytes);
      if (!written.ok()) {
        return DiagError(written.ToString());
      }
      printf("wrote %s (%zu bytes)\n", out.c_str(), bytes->size());
      return 0;
    }
  }
  return DiagError("no bundled program named " + positional[0] + " (see `depsurf progs`)");
}

constexpr char kUsage[] =
    "usage: depsurf COMMAND [options]\n"
    "  gen     --version=5.4 [--arch=A] [--flavor=F] [--scale=S] [--seed=N] --out=IMG\n"
    "  surface IMG [--func=NAME] [--json]\n"
    "  stats   IMG [--json]\n"
    "  diff    OLD NEW [--verbose]\n"
    "  check   OBJ [IMG...] [--dataset=FILE] (exit 2 when mismatches are found)\n"
    "  analyze OBJ [--against=DS[,DS...]] [--json] (exit 2 on findings, 1 if unreadable;\n"
    "          worst consequence across all datasets wins)\n"
    "  fix     OBJ [--against=DS[,DS...]] [--out=FILE] [--json]\n"
    "          (synthesize field_exists guards for unguarded relocs, verify by\n"
    "           re-analysis; exit 0 clean, 2 unfixable findings remain, 1 error)\n"
    "  dataset build IMG... --out=FILE | dataset info FILE\n"
    "  dataset migrate IN OUT (rewrite any .dds as the v2 mmap layout;\n"
    "          byte-deterministic)\n"
    "  serve   --against=DS[,DS...] (--oneshot | --socket=PATH) [--jobs=N]\n"
    "          [--cache-capacity=N] [--max-connections=N] [--report-out=FILE]\n"
    "          (batched NDJSON dependency-set queries; one response line per\n"
    "           request, byte-identical at any --jobs)\n"
    "  progs\n"
    "  emit    PROGRAM --out=OBJ\n"
    "  doctor  IMG [--sweep=N] [--seed=S] [--mutation-timeout=SECS] [--json]\n"
    "          (exit 2 when the image needed salvage, 1 when unreadable\n"
    "           or a sweep mutation timed out)\n"
    "  fuzz    SEED... [--rounds=N] [--seed=S] [--corpus-dir=DIR]\n"
    "          [--mutation-timeout=SECS] [--max-ledger=N] [--json]\n"
    "          (coverage-guided campaign; exit 2 on oracle disagreements,\n"
    "           1 on hangs)\n"
    "  metrics lint FILE [--kind=report|agg|bench|perf|trace|diag|analysis\n"
    "          |remediation|profile|history|trend|profile_diff|fuzz|serve] [--min-spans=N]\n"
    "          [--require=a,b,c] [--report=FILE] | metrics canon FILE\n"
    "  report  merge OUT IN... | report flame REPORT.json [--out=FILE]\n"
    "  perf    compare BASE.json HEAD.json [--max-regress=15%] [--noise-floor=S]\n"
    "          [--history=FILE] [--json]\n"
    "          (exit 3 when a stage regressed beyond the threshold; --history\n"
    "           replaces the fixed floor with per-stage adaptive floors)\n"
    "  perf    record BENCH.json... --history=FILE [--label=L] [--profile=P.json]\n"
    "  perf    trend --history=FILE [--window=K] [--min-floor=S] [--json]\n"
    "  perf    diff BASE_PROFILE.json HEAD_PROFILE.json [--top=N] [--json]\n"
    "  profile RUN_REPORT.json | profile --live [study flags]\n"
    "          [--json] [--out=PROFILE.json] [--folded-out=FLAME.folded]\n"
    "  study   build [--versions=5.4,6.8] [--arch=A] [--flavor=F] [--scale=S] [--seed=N]\n"
    "          [--out=DATASET] [--report-dir=DIR] [--profile-out=FILE] [--jobs=N]\n"
    "          [--strict] [--poison=LABEL]\n"
    "global options: --metrics-out=FILE  --trace-out=FILE  --trace\n";

int Dispatch(int argc, char** argv, const std::string& command) {
  if (command == "gen") {
    return CmdGen(argc, argv);
  }
  if (command == "surface") {
    return CmdSurface(argc, argv);
  }
  if (command == "stats") {
    return CmdStats(argc, argv);
  }
  if (command == "doctor") {
    return CmdDoctor(argc, argv);
  }
  if (command == "fuzz") {
    return CmdFuzz(argc, argv);
  }
  if (command == "diff") {
    return CmdDiff(argc, argv);
  }
  if (command == "check") {
    return CmdCheck(argc, argv);
  }
  if (command == "analyze") {
    return CmdAnalyze(argc, argv);
  }
  if (command == "fix") {
    return CmdFix(argc, argv);
  }
  if (command == "dataset") {
    return CmdDataset(argc, argv);
  }
  if (command == "serve") {
    return CmdServe(argc, argv);
  }
  if (command == "metrics") {
    return CmdMetrics(argc, argv);
  }
  if (command == "report") {
    return CmdReport(argc, argv);
  }
  if (command == "perf") {
    return CmdPerf(argc, argv);
  }
  if (command == "profile") {
    return CmdProfile(argc, argv);
  }
  if (command == "study") {
    return CmdStudy(argc, argv);
  }
  if (command == "progs" || command == "emit") {
    auto options = StudyOptions::Parse(argc, argv, /*default_scale=*/0.05);
    if (!options.ok()) {
      return DiagError(options.error());
    }
    Study study(options.TakeValue());
    return command == "progs" ? CmdProgs(study) : CmdEmit(argc, argv, study);
  }
  fputs(kUsage, stderr);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    fputs(kUsage, stderr);
    return 1;
  }
  if (HasFlag(argc, argv, "trace")) {
    obs::SpanCollector::Global().SetLiveTrace(true);
  }
  int code = Dispatch(argc, argv, argv[1]);
  std::string trace_out = FlagValue(argc, argv, "trace-out", "");
  if (!trace_out.empty()) {
    Status written = obs::WriteGlobalTrace(trace_out);
    if (!written.ok()) {
      obs::Diag(obs::Severity::kError, "trace not written", written.error());
      if (code == 0) {
        code = 1;
      }
    }
  }
  std::string metrics_out = FlagValue(argc, argv, "metrics-out", "");
  if (!metrics_out.empty()) {
    // Preserve the command's exit code (check uses 2 for "mismatches
    // found"); a report that cannot be written is its own failure.
    Status written = obs::WriteGlobalRunReport(metrics_out);
    if (!written.ok()) {
      obs::Diag(obs::Severity::kError, "metrics report not written", written.error());
      if (code == 0) {
        code = 1;
      }
    }
  }
  return code;
}
