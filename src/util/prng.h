// Deterministic pseudo-random primitives for the synthetic corpus.
//
// Every stochastic decision in kernelgen must be (a) reproducible and
// (b) independent of iteration order, so decisions are keyed: the stream for
// "does construct #i survive version v" is derived by hashing (seed, i, v,
// decision tag) rather than drawn from one shared sequential generator.
#ifndef DEPSURF_SRC_UTIL_PRNG_H_
#define DEPSURF_SRC_UTIL_PRNG_H_

#include <cstdint>
#include <initializer_list>
#include <string_view>

namespace depsurf {

// SplitMix64 step; the standard 64-bit finalizer-based generator.
uint64_t SplitMix64(uint64_t& state);

// One-shot stateless mix of a single value (useful as a hash finalizer).
uint64_t Mix64(uint64_t v);

// Combines an arbitrary list of values into one well-distributed 64-bit key.
uint64_t HashCombine(std::initializer_list<uint64_t> values);

// FNV-1a over a string, for keying decisions on construct names.
uint64_t HashString(std::string_view s);

// A small deterministic PRNG with convenience distributions.
class Prng {
 public:
  explicit Prng(uint64_t seed) : state_(Mix64(seed ^ 0x9e3779b97f4a7c15ull)) {}

  // Derives an independent generator keyed on extra values; order-stable.
  Prng Fork(std::initializer_list<uint64_t> key) const;

  uint64_t NextU64() { return SplitMix64(state_); }

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

 private:
  uint64_t state_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_UTIL_PRNG_H_
