// Structured diagnostics for salvage-mode extraction.
//
// Real kernel images are untrusted inputs: truncated DWARF, stripped
// sections, vendor quirks. When a decoder survives a malformed region
// instead of failing the whole image, it records what it lost here so the
// caller (and the run report) can explain exactly which conclusions rest on
// degraded data. The ledger is a plain value type — no global state, no
// locking — owned by the surface being extracted.
#ifndef DEPSURF_SRC_UTIL_DIAGNOSTIC_LEDGER_H_
#define DEPSURF_SRC_UTIL_DIAGNOSTIC_LEDGER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/util/error.h"

namespace depsurf {

// How bad a recorded event is.
//   kWarning:  cosmetic or expected gap (missing .config banner, say);
//              results are complete.
//   kDegraded: a subsystem lost data but extraction continued; results from
//              that subsystem are incomplete and flagged as such.
//   kFatal:    the image was unusable; nothing was salvaged.
enum class DiagSeverity : uint8_t { kWarning, kDegraded, kFatal };

// Which extraction layer reported the event.
enum class DiagSubsystem : uint8_t {
  kElf,
  kDwarf,
  kBtf,
  kTracepoint,
  kSyscall,
  kBpf,
};

// "warning" / "degraded" / "fatal".
const char* DiagSeverityName(DiagSeverity severity);
// "elf" / "dwarf" / "btf" / "tracepoint" / "syscall" / "bpf".
const char* DiagSubsystemName(DiagSubsystem subsystem);

// One recorded event: what broke, where, and how bad it is.
struct DiagnosticEntry {
  DiagSeverity severity = DiagSeverity::kWarning;
  DiagSubsystem subsystem = DiagSubsystem::kElf;
  ErrorCode code = ErrorCode::kMalformedData;
  uint64_t offset = 0;       // byte offset into the decoded buffer
  bool has_offset = false;   // offset is only meaningful when true
  std::string message;

  // "degraded dwarf malformed_data @0x1c4: ran off the end of .sdwarf_info"
  std::string ToString() const;
};

// Append-only record of everything a salvage-mode pass survived.
class DiagnosticLedger {
 public:
  void Add(DiagSeverity severity, DiagSubsystem subsystem, ErrorCode code,
           std::string message);
  void AddAt(DiagSeverity severity, DiagSubsystem subsystem, ErrorCode code,
             uint64_t offset, std::string message);
  // Records an Error verbatim, lifting its offset annotation when present.
  void AddError(DiagSeverity severity, DiagSubsystem subsystem, const Error& error);

  const std::vector<DiagnosticEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  size_t CountSeverity(DiagSeverity severity) const;
  size_t CountSubsystem(DiagSubsystem subsystem) const;

  // Appends every entry of `other` (merging a sub-pass's ledger).
  void Merge(const DiagnosticLedger& other);
  void Clear() { entries_.clear(); }

 private:
  std::vector<DiagnosticEntry> entries_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_UTIL_DIAGNOSTIC_LEDGER_H_
