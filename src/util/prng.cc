#include "src/util/prng.h"

namespace depsurf {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t v) {
  uint64_t state = v;
  return SplitMix64(state);
}

uint64_t HashCombine(std::initializer_list<uint64_t> values) {
  uint64_t h = 0x2545f4914f6cdd1dull;
  for (uint64_t v : values) {
    h = Mix64(h ^ Mix64(v));
  }
  return h;
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return Mix64(h);
}

Prng Prng::Fork(std::initializer_list<uint64_t> key) const {
  uint64_t k = HashCombine(key);
  return Prng(state_ ^ k);
}

uint64_t Prng::NextBelow(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Rejection-free multiply-shift; bias is negligible for our bounds.
  return static_cast<uint64_t>((static_cast<unsigned __int128>(NextU64()) * bound) >> 64);
}

uint64_t Prng::NextInRange(uint64_t lo, uint64_t hi) {
  if (hi <= lo) {
    return lo;
  }
  return lo + NextBelow(hi - lo + 1);
}

double Prng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);  // 2^53
}

bool Prng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

}  // namespace depsurf
