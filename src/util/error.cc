#include "src/util/error.h"

#include <cstdio>

namespace depsurf {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kOutOfRange:
      return "out_of_range";
    case ErrorCode::kMalformedData:
      return "malformed_data";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kAlreadyExists:
      return "already_exists";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kIoError:
      return "io_error";
  }
  return "unknown";
}

std::string Error::ToString() const {
  std::string out = ErrorCodeName(code_);
  out += ": ";
  out += message_;
  if (offset_.has_value()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (at byte 0x%llx)",
                  static_cast<unsigned long long>(*offset_));
    out += buf;
  }
  return out;
}

}  // namespace depsurf
