// LEB128 variable-length integer codec, as used by DWARF.
#ifndef DEPSURF_SRC_UTIL_LEB128_H_
#define DEPSURF_SRC_UTIL_LEB128_H_

#include <cstdint>

#include "src/util/byte_buffer.h"
#include "src/util/error.h"

namespace depsurf {

// Appends an unsigned LEB128 encoding of `v` to `w`.
void WriteUleb128(ByteWriter& w, uint64_t v);

// Appends a signed LEB128 encoding of `v` to `w`.
void WriteSleb128(ByteWriter& w, int64_t v);

// Reads an unsigned LEB128 value at the reader's cursor. Rejects encodings
// longer than 10 bytes (the max for a 64-bit value).
Result<uint64_t> ReadUleb128(ByteReader& r);

// Reads a signed LEB128 value at the reader's cursor.
Result<int64_t> ReadSleb128(ByteReader& r);

}  // namespace depsurf

#endif  // DEPSURF_SRC_UTIL_LEB128_H_
