#include "src/util/byte_buffer.h"

#include <cstring>

namespace depsurf {

void ByteWriter::WriteUint(uint64_t v, int width) {
  if (endian_ == Endian::kLittle) {
    for (int i = 0; i < width; ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  } else {
    for (int i = width - 1; i >= 0; --i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
}

void ByteWriter::WriteBytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + len);
}

void ByteWriter::WriteCString(std::string_view s) {
  WriteString(s);
  WriteU8(0);
}

void ByteWriter::AlignTo(size_t alignment) {
  while (alignment != 0 && bytes_.size() % alignment != 0) {
    bytes_.push_back(0);
  }
}

void ByteWriter::WriteZeros(size_t count) { bytes_.insert(bytes_.end(), count, 0); }

Status ByteWriter::PatchU32(size_t offset, uint32_t v) {
  // Overflow-safe form: `offset + 4` wraps for offsets near SIZE_MAX.
  if (offset > bytes_.size() || bytes_.size() - offset < 4) {
    return Status(Error(ErrorCode::kOutOfRange, "PatchU32 beyond buffer").WithOffset(offset));
  }
  for (int i = 0; i < 4; ++i) {
    int shift = (endian_ == Endian::kLittle) ? 8 * i : 8 * (3 - i);
    bytes_[offset + i] = static_cast<uint8_t>(v >> shift);
  }
  return Status::Ok();
}

Status ByteReader::Seek(size_t offset) {
  if (offset > size_) {
    return Status(Error(ErrorCode::kOutOfRange, "seek beyond buffer").WithOffset(offset));
  }
  offset_ = offset;
  return Status::Ok();
}

Status ByteReader::Skip(size_t count) {
  if (count > remaining()) {
    return Status(Error(ErrorCode::kOutOfRange, "skip beyond buffer").WithOffset(offset_));
  }
  offset_ += count;
  return Status::Ok();
}

Result<uint64_t> ByteReader::ReadUint(int width) {
  if (width < 1 || width > 8) {
    return Error(ErrorCode::kInvalidArgument, "read width must be 1..8").WithOffset(offset_);
  }
  if (static_cast<size_t>(width) > remaining()) {
    return Error(ErrorCode::kOutOfRange, "read beyond buffer").WithOffset(offset_);
  }
  uint64_t v = 0;
  if (endian_ == Endian::kLittle) {
    for (int i = width - 1; i >= 0; --i) {
      v = (v << 8) | data_[offset_ + i];
    }
  } else {
    for (int i = 0; i < width; ++i) {
      v = (v << 8) | data_[offset_ + i];
    }
  }
  offset_ += width;
  return v;
}

Result<uint8_t> ByteReader::ReadU8() {
  DEPSURF_ASSIGN_OR_RETURN(v, ReadUint(1));
  return static_cast<uint8_t>(v);
}

Result<uint16_t> ByteReader::ReadU16() {
  DEPSURF_ASSIGN_OR_RETURN(v, ReadUint(2));
  return static_cast<uint16_t>(v);
}

Result<uint32_t> ByteReader::ReadU32() {
  DEPSURF_ASSIGN_OR_RETURN(v, ReadUint(4));
  return static_cast<uint32_t>(v);
}

Result<uint64_t> ByteReader::ReadU64() { return ReadUint(8); }

Result<int64_t> ByteReader::ReadI64() {
  DEPSURF_ASSIGN_OR_RETURN(v, ReadUint(8));
  return static_cast<int64_t>(v);
}

Result<uint64_t> ByteReader::ReadAddr(int pointer_size) {
  if (pointer_size != 4 && pointer_size != 8) {
    return Error(ErrorCode::kInvalidArgument, "pointer size must be 4 or 8");
  }
  return ReadUint(pointer_size);
}

Result<std::vector<uint8_t>> ByteReader::ReadBytes(size_t len) {
  if (len > remaining()) {
    return Error(ErrorCode::kOutOfRange, "ReadBytes beyond buffer").WithOffset(offset_);
  }
  std::vector<uint8_t> out(data_ + offset_, data_ + offset_ + len);
  offset_ += len;
  return out;
}

Result<std::string> ByteReader::ReadCString() {
  // Scan without touching the cursor so a failed read leaves the reader
  // where it was (callers may salvage by skipping the bad record).
  size_t end = offset_;
  while (end < size_ && data_[end] != 0) {
    ++end;
  }
  if (end >= size_) {
    return Error(ErrorCode::kMalformedData, "unterminated string").WithOffset(offset_);
  }
  std::string out(reinterpret_cast<const char*>(data_ + offset_), end - offset_);
  offset_ = end + 1;  // consume NUL
  return out;
}

Result<std::string> ByteReader::ReadCStringAt(size_t offset) const {
  if (offset >= size_) {
    return Error(ErrorCode::kOutOfRange, "string offset beyond buffer").WithOffset(offset);
  }
  size_t end = offset;
  while (end < size_ && data_[end] != 0) {
    ++end;
  }
  if (end >= size_) {
    return Error(ErrorCode::kMalformedData, "unterminated string").WithOffset(offset);
  }
  return std::string(reinterpret_cast<const char*>(data_ + offset), end - offset);
}

Result<ByteReader> ByteReader::Slice(size_t offset, size_t len) const {
  if (offset > size_ || len > size_ - offset) {
    return Error(ErrorCode::kOutOfRange, "slice beyond buffer").WithOffset(offset);
  }
  return ByteReader(data_ + offset, len, endian_);
}

}  // namespace depsurf
