// Endian-aware binary writer/reader used by every codec in the project
// (ELF, DWARF-lite, BTF, BPF objects).
//
// The kernel-image corpus spans 32/64-bit and little/big-endian targets
// (x86/arm64/riscv are ELF64 LE, arm32 is ELF32 LE, ppc is ELF64 BE), so all
// multi-byte accesses go through these classes rather than raw memcpy.
#ifndef DEPSURF_SRC_UTIL_BYTE_BUFFER_H_
#define DEPSURF_SRC_UTIL_BYTE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/error.h"

namespace depsurf {

enum class Endian : uint8_t { kLittle, kBig };

// Growable byte sink with explicit endianness.
class ByteWriter {
 public:
  explicit ByteWriter(Endian endian = Endian::kLittle) : endian_(endian) {}

  Endian endian() const { return endian_; }
  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

  void WriteU8(uint8_t v) { bytes_.push_back(v); }
  void WriteU16(uint16_t v) { WriteUint(v, 2); }
  void WriteU32(uint32_t v) { WriteUint(v, 4); }
  void WriteU64(uint64_t v) { WriteUint(v, 8); }
  void WriteI64(int64_t v) { WriteUint(static_cast<uint64_t>(v), 8); }

  // Writes a pointer-sized value (4 or 8 bytes).
  void WriteAddr(uint64_t v, int pointer_size) { WriteUint(v, pointer_size); }

  void WriteBytes(const void* data, size_t len);
  void WriteString(std::string_view s) { WriteBytes(s.data(), s.size()); }
  // NUL-terminated string.
  void WriteCString(std::string_view s);
  // Appends zero bytes until size() is a multiple of `alignment`.
  void AlignTo(size_t alignment);
  void WriteZeros(size_t count);

  // Patches a previously written little/big-endian u32 at `offset`.
  // Out-of-range patches are a programming error and are checked.
  Status PatchU32(size_t offset, uint32_t v);

 private:
  void WriteUint(uint64_t v, int width);

  Endian endian_;
  std::vector<uint8_t> bytes_;
};

// Bounds-checked byte source with explicit endianness. Never throws; every
// read reports malformed input via Result.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size, Endian endian = Endian::kLittle)
      : data_(data), size_(size), endian_(endian) {}
  ByteReader(const std::vector<uint8_t>& bytes, Endian endian = Endian::kLittle)
      : ByteReader(bytes.data(), bytes.size(), endian) {}

  Endian endian() const { return endian_; }
  void set_endian(Endian endian) { endian_ = endian; }
  size_t size() const { return size_; }
  size_t offset() const { return offset_; }
  size_t remaining() const { return size_ - offset_; }
  bool AtEnd() const { return offset_ >= size_; }

  Status Seek(size_t offset);
  Status Skip(size_t count);

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  // Pointer-sized read (4 or 8 bytes).
  Result<uint64_t> ReadAddr(int pointer_size);
  // Arbitrary-width read, 1..8 bytes; kInvalidArgument outside that range
  // (format decoders pass widths parsed from untrusted headers).
  Result<uint64_t> ReadUint(int width);

  // Copies `len` bytes at the cursor.
  Result<std::vector<uint8_t>> ReadBytes(size_t len);
  // Reads until NUL (consuming it).
  Result<std::string> ReadCString();
  // Reads a NUL-terminated string at an absolute offset without moving the
  // cursor (string-table access pattern).
  Result<std::string> ReadCStringAt(size_t offset) const;

  // A sub-reader over [offset, offset+len), sharing the endianness.
  Result<ByteReader> Slice(size_t offset, size_t len) const;

 private:
  const uint8_t* data_;
  size_t size_;
  Endian endian_;
  size_t offset_ = 0;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_UTIL_BYTE_BUFFER_H_
