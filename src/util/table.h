// ASCII table rendering for the benchmark binaries that regenerate the
// paper's tables. Deliberately simple: fixed rows/columns, right-padded.
#ifndef DEPSURF_SRC_UTIL_TABLE_H_
#define DEPSURF_SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace depsurf {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Adds a row; short rows are padded with empty cells, long rows rejected
  // at render time.
  void AddRow(std::vector<std::string> cells);
  // Adds a horizontal separator at the current position.
  void AddSeparator();

  size_t num_rows() const { return rows_.size(); }

  // Renders with column alignment; first column left-aligned, the rest
  // right-aligned (matches the paper's numeric tables).
  std::string Render() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_UTIL_TABLE_H_
