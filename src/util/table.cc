#include "src/util/table.h"

#include <algorithm>

namespace depsurf {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{/*separator=*/false, std::move(cells)});
}

void TextTable::AddSeparator() { rows_.push_back(Row{/*separator=*/true, {}}); }

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      size_t pad = widths[c] - cell.size();
      if (c == 0) {
        line += cell;
        line.append(pad, ' ');
      } else {
        line.append(pad, ' ');
        line += cell;
      }
      if (c + 1 != widths.size()) {
        line += "  ";
      }
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    return line;
  };

  size_t total = 0;
  for (size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  std::string sep(total, '-');

  std::string out = render_line(header_);
  out += '\n';
  out += sep;
  out += '\n';
  for (const Row& row : rows_) {
    out += row.separator ? sep : render_line(row.cells);
    out += '\n';
  }
  return out;
}

}  // namespace depsurf
