#include "src/util/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace depsurf {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args);
  return out;
}

std::string FormatCount(uint64_t n) {
  if (n < 1000) {
    return StrFormat("%llu", static_cast<unsigned long long>(n));
  }
  double k = static_cast<double>(n) / 1000.0;
  if (k < 100.0) {
    return StrFormat("%.1fk", k);
  }
  return StrFormat("%.0fk", k);
}

std::string FormatPercent(double fraction) {
  double pct = fraction * 100.0;
  if (pct != 0.0 && pct < 1.0) {
    return StrFormat("%.1f%%", pct);
  }
  return StrFormat("%.0f%%", pct);
}

}  // namespace depsurf
