#include "src/util/leb128.h"

namespace depsurf {

namespace {
constexpr int kMaxLebBytes = 10;  // ceil(64 / 7)
}  // namespace

void WriteUleb128(ByteWriter& w, uint64_t v) {
  do {
    uint8_t byte = v & 0x7f;
    v >>= 7;
    if (v != 0) {
      byte |= 0x80;
    }
    w.WriteU8(byte);
  } while (v != 0);
}

void WriteSleb128(ByteWriter& w, int64_t v) {
  bool more = true;
  while (more) {
    uint8_t byte = v & 0x7f;
    v >>= 7;  // arithmetic shift
    bool sign_bit = (byte & 0x40) != 0;
    if ((v == 0 && !sign_bit) || (v == -1 && sign_bit)) {
      more = false;
    } else {
      byte |= 0x80;
    }
    w.WriteU8(byte);
  }
}

Result<uint64_t> ReadUleb128(ByteReader& r) {
  uint64_t result = 0;
  int shift = 0;
  for (int i = 0; i < kMaxLebBytes; ++i) {
    DEPSURF_ASSIGN_OR_RETURN(byte, r.ReadU8());
    if (i == kMaxLebBytes - 1 && (byte & 0x7f) > 1) {
      return Error(ErrorCode::kMalformedData, "ULEB128 overflows 64 bits")
          .WithOffset(r.offset());
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return result;
    }
    shift += 7;
  }
  return Error(ErrorCode::kMalformedData, "ULEB128 too long").WithOffset(r.offset());
}

Result<int64_t> ReadSleb128(ByteReader& r) {
  int64_t result = 0;
  int shift = 0;
  for (int i = 0; i < kMaxLebBytes; ++i) {
    DEPSURF_ASSIGN_OR_RETURN(byte, r.ReadU8());
    result |= static_cast<int64_t>(static_cast<uint64_t>(byte & 0x7f) << shift);
    shift += 7;
    if ((byte & 0x80) == 0) {
      if (shift < 64 && (byte & 0x40) != 0) {
        result |= -(static_cast<int64_t>(1) << shift);  // sign-extend
      }
      return result;
    }
  }
  return Error(ErrorCode::kMalformedData, "SLEB128 too long").WithOffset(r.offset());
}

}  // namespace depsurf
