// Error handling primitives for the depsurf libraries.
//
// Parsing untrusted binary images must not abort the process; every decoder
// returns Result<T> and propagates structured errors up to the caller.
#ifndef DEPSURF_SRC_UTIL_ERROR_H_
#define DEPSURF_SRC_UTIL_ERROR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace depsurf {

// Broad failure categories surfaced by the toolkit.
enum class ErrorCode : uint8_t {
  kInvalidArgument,   // caller passed something nonsensical
  kOutOfRange,        // offset/index beyond a buffer or table
  kMalformedData,     // bytes violate the format being parsed
  kUnsupported,       // recognized but deliberately not handled
  kNotFound,          // lookup failed
  kAlreadyExists,     // duplicate insertion into a keyed container
  kInternal,          // invariant violation inside the library
  kIoError,           // filesystem problem
};

// Human-readable name of an ErrorCode ("malformed_data", ...).
const char* ErrorCodeName(ErrorCode code);

// Which extraction layer an error originated in. The enumerators live in
// diagnostic_ledger.h; the opaque declaration here lets Error carry the tag
// without a circular include (diagnostic_ledger.h includes this header).
enum class DiagSubsystem : uint8_t;

// A structured error: code + message, optionally annotated with the byte
// offset where parsing died and/or the subsystem that raised it. Cheap to
// move, explicit to construct.
class Error {
 public:
  Error(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Byte offset into the buffer being decoded, when known. Decoders attach
  // this so salvage-mode diagnostics can report *where* a section broke.
  const std::optional<uint64_t>& offset() const { return offset_; }

  // Returns a copy annotated with the byte offset where decoding failed.
  // The first (innermost) offset wins: by the time an error has crossed a
  // few layers, the outer offsets describe containers, not the fault.
  Error WithOffset(uint64_t offset) && {
    if (!offset_.has_value()) {
      offset_ = offset;
    }
    return std::move(*this);
  }
  Error WithOffset(uint64_t offset) const& { return Error(*this).WithOffset(offset); }

  // Extraction layer that raised the error, when tagged. Salvage-mode
  // quarantine paths use this to attribute fatal diagnostics to the right
  // subsystem instead of blaming the outermost (ELF) layer.
  const std::optional<DiagSubsystem>& subsystem() const { return subsystem_; }

  // Returns a copy tagged with the originating subsystem. Innermost wins,
  // same as WithOffset: the layer closest to the fault knows best.
  Error WithSubsystem(DiagSubsystem subsystem) && {
    if (!subsystem_.has_value()) {
      subsystem_ = subsystem;
    }
    return std::move(*this);
  }
  Error WithSubsystem(DiagSubsystem subsystem) const& {
    return Error(*this).WithSubsystem(subsystem);
  }

  // Returns a copy with "context: " prefixed to the message, preserving the
  // code and offset: Wrap("CU 3") -> "CU 3: abbrev code out of range".
  Error Wrap(std::string_view context) && {
    message_.insert(0, ": ");
    message_.insert(0, context);
    return std::move(*this);
  }
  Error Wrap(std::string_view context) const& { return Error(*this).Wrap(context); }

  // "malformed_data: BTF magic mismatch" or, with an offset,
  // "malformed_data: BTF magic mismatch (at byte 0x24)"
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
  std::optional<uint64_t> offset_;
  std::optional<DiagSubsystem> subsystem_;
};

// Result<T> is a value-or-error sum type. Usage:
//
//   Result<Header> ParseHeader(ByteReader& r);
//   ...
//   auto header = ParseHeader(r);
//   if (!header.ok()) return header.TakeError();
//   Use(header.value());
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT: implicit by design
  Result(Error error) : data_(std::move(error)) {}      // NOLINT: implicit by design
  Result(ErrorCode code, std::string message) : data_(Error(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& TakeValue() { return std::move(std::get<T>(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const { return std::get<Error>(data_); }
  Error TakeError() { return std::move(std::get<Error>(data_)); }

  // Value if ok, otherwise `fallback`.
  T ValueOr(T fallback) const {
    if (ok()) {
      return value();
    }
    return fallback;
  }

 private:
  std::variant<T, Error> data_;
};

// Result specialization for operations without a payload.
class Status {
 public:
  Status() = default;  // OK
  Status(Error error) : error_(std::move(error)) {}  // NOLINT: implicit by design
  Status(ErrorCode code, std::string message) : error_(Error(code, std::move(message))) {}

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const { return *error_; }
  Error TakeError() { return std::move(*error_); }

  std::string ToString() const { return ok() ? "ok" : error_->ToString(); }

 private:
  std::optional<Error> error_;
};

// Propagation helpers. Expression must be an lvalue-able expression; these
// macros deliberately mirror absl-style RETURN_IF_ERROR ergonomics.
#define DEPSURF_RETURN_IF_ERROR(expr)        \
  do {                                       \
    auto _depsurf_status = (expr);           \
    if (!_depsurf_status.ok()) {             \
      return _depsurf_status.TakeError();    \
    }                                        \
  } while (0)

#define DEPSURF_ASSIGN_OR_RETURN(lhs, expr)  \
  auto lhs##_result = (expr);                \
  if (!lhs##_result.ok()) {                  \
    return lhs##_result.TakeError();         \
  }                                          \
  auto lhs = lhs##_result.TakeValue()

}  // namespace depsurf

#endif  // DEPSURF_SRC_UTIL_ERROR_H_
