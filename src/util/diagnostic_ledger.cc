#include "src/util/diagnostic_ledger.h"

#include <cstdio>

namespace depsurf {

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kDegraded:
      return "degraded";
    case DiagSeverity::kFatal:
      return "fatal";
  }
  return "unknown";
}

const char* DiagSubsystemName(DiagSubsystem subsystem) {
  switch (subsystem) {
    case DiagSubsystem::kElf:
      return "elf";
    case DiagSubsystem::kDwarf:
      return "dwarf";
    case DiagSubsystem::kBtf:
      return "btf";
    case DiagSubsystem::kTracepoint:
      return "tracepoint";
    case DiagSubsystem::kSyscall:
      return "syscall";
    case DiagSubsystem::kBpf:
      return "bpf";
  }
  return "unknown";
}

std::string DiagnosticEntry::ToString() const {
  std::string out = DiagSeverityName(severity);
  out += ' ';
  out += DiagSubsystemName(subsystem);
  out += ' ';
  out += ErrorCodeName(code);
  if (has_offset) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), " @0x%llx", static_cast<unsigned long long>(offset));
    out += buf;
  }
  out += ": ";
  out += message;
  return out;
}

void DiagnosticLedger::Add(DiagSeverity severity, DiagSubsystem subsystem,
                           ErrorCode code, std::string message) {
  DiagnosticEntry entry;
  entry.severity = severity;
  entry.subsystem = subsystem;
  entry.code = code;
  entry.message = std::move(message);
  entries_.push_back(std::move(entry));
}

void DiagnosticLedger::AddAt(DiagSeverity severity, DiagSubsystem subsystem,
                             ErrorCode code, uint64_t offset, std::string message) {
  DiagnosticEntry entry;
  entry.severity = severity;
  entry.subsystem = subsystem;
  entry.code = code;
  entry.offset = offset;
  entry.has_offset = true;
  entry.message = std::move(message);
  entries_.push_back(std::move(entry));
}

void DiagnosticLedger::AddError(DiagSeverity severity, DiagSubsystem subsystem,
                                const Error& error) {
  if (error.offset().has_value()) {
    AddAt(severity, subsystem, error.code(), *error.offset(), error.message());
  } else {
    Add(severity, subsystem, error.code(), error.message());
  }
}

size_t DiagnosticLedger::CountSeverity(DiagSeverity severity) const {
  size_t n = 0;
  for (const DiagnosticEntry& entry : entries_) {
    n += entry.severity == severity ? 1 : 0;
  }
  return n;
}

size_t DiagnosticLedger::CountSubsystem(DiagSubsystem subsystem) const {
  size_t n = 0;
  for (const DiagnosticEntry& entry : entries_) {
    n += entry.subsystem == subsystem ? 1 : 0;
  }
  return n;
}

void DiagnosticLedger::Merge(const DiagnosticLedger& other) {
  entries_.insert(entries_.end(), other.entries_.begin(), other.entries_.end());
}

}  // namespace depsurf
