// Small string helpers shared across the project.
#ifndef DEPSURF_SRC_UTIL_STR_UTIL_H_
#define DEPSURF_SRC_UTIL_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace depsurf {

// Splits on a single character; empty pieces are preserved.
std::vector<std::string> SplitString(std::string_view s, char sep);

// Joins with a separator.
std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Human-friendly count: 1234 -> "1.2k", 43210 -> "43.2k", 950 -> "950".
std::string FormatCount(uint64_t n);

// Percentage with adaptive precision: 0.1234 -> "12%", 0.004 -> "0.4%".
std::string FormatPercent(double fraction);

}  // namespace depsurf

#endif  // DEPSURF_SRC_UTIL_STR_UTIL_H_
