#include "src/core/dependency_surface.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/btf/btf_codec.h"
#include "src/dwarf/dwarf_codec.h"
#include "src/elf/elf_reader.h"
#include "src/obs/diagnostics.h"
#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// Section/symbol names shared with the image layout (and real kernels).
constexpr char kBtfSection[] = ".BTF";
constexpr char kDwarfAbbrevSection[] = ".sdwarf_abbrev";
constexpr char kDwarfInfoSection[] = ".sdwarf_info";
constexpr char kStartFtrace[] = "__start_ftrace_events";
constexpr char kStopFtrace[] = "__stop_ftrace_events";
constexpr char kSyscallTable[] = "sys_call_table";
constexpr char kTraceFuncPrefix[] = "trace_event_raw_event_";
constexpr char kTraceStructPrefix[] = "trace_event_raw_";

// Known per-architecture syscall entry-point prefixes; tried longest first.
constexpr const char* kSyscallPrefixes[] = {"__x64_sys_", "__arm64_sys_", "__riscv_sys_",
                                            "sys_"};

// Known compiler transformation suffix markers.
constexpr const char* kTransformSuffixes[] = {".isra.", ".constprop.", ".part.", ".cold"};

// Splits "name.isra.0" into base and suffix; base == input when unsuffixed.
std::pair<std::string, std::string> SplitTransformSuffix(const std::string& symbol) {
  for (const char* marker : kTransformSuffixes) {
    size_t pos = symbol.find(marker);
    if (pos != std::string::npos) {
      return {symbol.substr(0, pos), symbol.substr(pos)};
    }
  }
  return {symbol, ""};
}

// Identity facts that cannot fail once the ELF container parsed.
SurfaceMeta MetaFromIdent(const ElfReader& reader) {
  SurfaceMeta meta;
  meta.arch = ElfMachineName(reader.ident().machine);
  meta.pointer_size = reader.pointer_size();
  meta.endian = reader.endian();
  return meta;
}

Status ParseBanner(const ElfReader& reader, SurfaceMeta& meta) {
  auto banner_sym = reader.FindSymbol("linux_banner");
  if (!banner_sym.has_value()) {
    return Status::Ok();  // tolerated: version/gcc stay unknown
  }
  DEPSURF_ASSIGN_OR_RETURN(at, reader.ReadAtAddress(banner_sym->value));
  DEPSURF_ASSIGN_OR_RETURN(banner, at.ReadCString());
  // "Linux version 5.4.0-26-generic (...) (gcc (Ubuntu) 9.4.0) ..."
  int major = 0;
  int minor = 0;
  char flavor[64] = {0};
  int gcc = 0;
  if (sscanf(banner.c_str(), "Linux version %d.%d.0-26-%63[^ ] (buildd@lcy02) (gcc (Ubuntu) %d",
             &major, &minor, flavor, &gcc) >= 3) {
    meta.version_major = major;
    meta.version_minor = minor;
    meta.flavor = flavor;
    meta.gcc_major = gcc;
  }
  return Status::Ok();
}

}  // namespace

const char* DegradationStateName(DegradationState state) {
  switch (state) {
    case DegradationState::kClean:
      return "clean";
    case DegradationState::kDegraded:
      return "degraded";
    case DegradationState::kMissing:
      return "missing";
  }
  return "unknown";
}

bool SurfaceHealth::AnyDegraded() const {
  return elf == DegradationState::kDegraded || dwarf == DegradationState::kDegraded ||
         btf == DegradationState::kDegraded ||
         tracepoint == DegradationState::kDegraded ||
         syscall == DegradationState::kDegraded;
}

std::string SurfaceHealth::Summary() const {
  std::string out;
  auto add = [&out](const char* name, DegradationState state) {
    if (state == DegradationState::kClean) {
      return;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += name;
    out += '=';
    out += DegradationStateName(state);
  };
  add("elf", elf);
  add("dwarf", dwarf);
  add("btf", btf);
  add("tracepoint", tracepoint);
  add("syscall", syscall);
  return out.empty() ? "clean" : out;
}

std::string FunctionStatus::CollisionClass() const {
  if (collided) {
    return external ? "Static-Global Collision" : "Static-Static Collision";
  }
  if (duplicated) {
    return "Static Duplication";
  }
  return external ? "Unique Global" : "Unique Static";
}

std::string FunctionEntry::StatusJson() const {
  std::string inline_type = status.fully_inlined          ? "Fully inlined"
                            : status.selectively_inlined  ? "Partially inlined"
                                                          : "Not inlined";
  std::string out = "{\"name\": \"" + name + "\"";
  out += ", \"collision_type\": \"" + status.CollisionClass() + "\"";
  out += ", \"inline_type\": \"" + inline_type + "\"";
  out += ", \"funcs\": [";
  for (size_t i = 0; i < instances.size(); ++i) {
    const FunctionInstance& inst = instances[i];
    if (i != 0) {
      out += ", ";
    }
    out += StrFormat("{\"name\": \"%s\", \"external\": %s, \"loc\": \"%s:%u\"",
                     inst.name.c_str(), inst.external ? "true" : "false",
                     inst.decl_file.c_str(), inst.decl_line);
    out += ", \"caller_inline\": [";
    for (size_t k = 0; k < inst.caller_inline.size(); ++k) {
      out += (k != 0 ? ", \"" : "\"") + inst.caller_inline[k] + "\"";
    }
    out += "], \"caller_func\": [";
    for (size_t k = 0; k < inst.caller_func.size(); ++k) {
      out += (k != 0 ? ", \"" : "\"") + inst.caller_func[k] + "\"";
    }
    out += "]}";
  }
  out += "], \"symbols\": [";
  for (size_t i = 0; i < symbols.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += StrFormat("{\"name\": \"%s\", \"addr\": %llu, \"bind\": \"%s\", \"size\": %llu}",
                     symbols[i].name.c_str(), (unsigned long long)symbols[i].value,
                     symbols[i].bind == SymBind::kGlobal ? "STB_GLOBAL" : "STB_LOCAL",
                     (unsigned long long)symbols[i].size);
  }
  out += "]}";
  return out;
}

Result<DependencySurface> DependencySurface::Extract(std::vector<uint8_t> image_bytes) {
  obs::ScopedSpan span("surface.extract");
  span.AddAttr("image_bytes", static_cast<uint64_t>(image_bytes.size()));
  // The ELF container is the one hard requirement: without sections and
  // symbols there is nothing to salvage from.
  DEPSURF_ASSIGN_OR_RETURN(reader, ElfReader::Parse(std::move(image_bytes)));
  DependencySurface surface;
  SurfaceHealth& health = surface.health_;
  DiagnosticLedger& ledger = health.ledger;
  surface.meta_ = MetaFromIdent(reader);

  // Banner and .config are metadata; unreadable copies cost version/config
  // facts but never the surface itself.
  if (Status st = ParseBanner(reader, surface.meta_); !st.ok()) {
    ledger.AddError(DiagSeverity::kWarning, DiagSubsystem::kElf,
                    st.error().Wrap("linux_banner unreadable"));
  }
  if (const ElfSectionView* config = reader.SectionByName(".config")) {
    auto parse_config = [&]() -> Status {
      DEPSURF_ASSIGN_OR_RETURN(data, reader.SectionData(*config));
      DEPSURF_ASSIGN_OR_RETURN(raw, data.ReadBytes(data.size()));
      std::string text(raw.begin(), raw.end());
      unsigned options = 0;
      char traceable = 'y';
      if (size_t pos = text.find("CONFIG_OPTIONS="); pos != std::string::npos) {
        sscanf(text.c_str() + pos, "CONFIG_OPTIONS=%u", &options);
      }
      if (size_t pos = text.find("CONFIG_COMPAT_TRACEABLE="); pos != std::string::npos) {
        sscanf(text.c_str() + pos, "CONFIG_COMPAT_TRACEABLE=%c", &traceable);
      }
      surface.meta_.config_options = options;
      surface.meta_.compat_syscalls_traceable = traceable == 'y';
      return Status::Ok();
    };
    if (Status st = parse_config(); !st.ok()) {
      ledger.AddError(DiagSeverity::kWarning, DiagSubsystem::kElf,
                      st.error().Wrap(".config unreadable"));
    }
  }

  // ---- BTF: declarations of functions and structs. A corrupt .BTF costs
  // the type graph (declarations, struct layouts) but not the symbol-table,
  // tracepoint, or syscall views.
  std::map<std::string, BtfTypeId> btf_funcs;
  {
    obs::ScopedSpan btf_span("surface.btf");
    auto decode_btf = [&]() -> Status {
      DEPSURF_ASSIGN_OR_RETURN(btf_data, reader.SectionDataByName(kBtfSection));
      DEPSURF_ASSIGN_OR_RETURN(graph, DecodeBtf(btf_data));
      surface.btf_ = std::move(graph);
      return Status::Ok();
    };
    if (Status st = decode_btf(); !st.ok()) {
      if (st.error().code() == ErrorCode::kNotFound) {
        health.btf = DegradationState::kMissing;
        ledger.AddError(DiagSeverity::kWarning, DiagSubsystem::kBtf, st.error());
      } else {
        health.btf = DegradationState::kDegraded;
        ledger.AddError(DiagSeverity::kDegraded, DiagSubsystem::kBtf,
                        st.error().Wrap(".BTF decode failed"));
      }
      surface.btf_ = TypeGraph();  // queries see an empty, valid graph
    }
    for (BtfTypeId id = 1; id <= surface.btf_.num_types(); ++id) {
      const BtfType* t = surface.btf_.Get(id);
      if (t->kind == BtfKind::kStruct && !t->name.empty()) {
        if (!StartsWith(t->name, kTraceStructPrefix)) {
          surface.structs_.emplace(t->name, id);
        }
      } else if (t->kind == BtfKind::kFunc) {
        btf_funcs.emplace(t->name, id);  // first wins (collisions share names)
      }
    }
    btf_span.AddAttr("structs", static_cast<uint64_t>(surface.structs_.size()));
    btf_span.AddAttr("funcs", static_cast<uint64_t>(btf_funcs.size()));
  }

  // ---- DWARF: function instances and inline structure. Absent debug
  // sections degrade to a BTF+symtab-only surface (distro kernels without
  // dbgsym packages): declarations remain, compilation status is unknown.
  std::map<std::string, std::vector<FunctionInstance>> instances;
  surface.meta_.has_debug_info = reader.SectionByName(kDwarfInfoSection) != nullptr &&
                                 reader.SectionByName(kDwarfAbbrevSection) != nullptr;
  {
    obs::ScopedSpan dwarf_span("surface.dwarf");
    dwarf_span.AddAttr("has_debug_info", surface.meta_.has_debug_info ? "true" : "false");
    auto decode_dwarf = [&]() -> Status {
      DEPSURF_ASSIGN_OR_RETURN(abbrev_reader, reader.SectionDataByName(kDwarfAbbrevSection));
      DEPSURF_ASSIGN_OR_RETURN(info_reader, reader.SectionDataByName(kDwarfInfoSection));
      DEPSURF_ASSIGN_OR_RETURN(abbrev_bytes, abbrev_reader.ReadBytes(abbrev_reader.size()));
      DEPSURF_ASSIGN_OR_RETURN(info_bytes, info_reader.ReadBytes(info_reader.size()));
      DEPSURF_ASSIGN_OR_RETURN(document,
                               DecodeDwarf(abbrev_bytes, info_bytes, reader.endian()));
      DEPSURF_ASSIGN_OR_RETURN(collected, CollectFunctionInstances(document));
      instances = std::move(collected);
      return Status::Ok();
    };
    if (!surface.meta_.has_debug_info) {
      health.dwarf = DegradationState::kMissing;
    } else if (Status st = decode_dwarf(); !st.ok()) {
      // Broken DWARF costs inline/duplication status, not the surface: fall
      // back to the same BTF+symtab path used for images without dbgsym.
      // health records the truth (kDegraded, vs kMissing for absent
      // sections); meta_.has_debug_info drops to false so the status
      // classifier below stays consistent with what it can actually see.
      health.dwarf = DegradationState::kDegraded;
      ledger.AddError(DiagSeverity::kDegraded, DiagSubsystem::kDwarf,
                      st.error().Wrap("DWARF decode failed"));
      surface.meta_.has_debug_info = false;
      instances.clear();
    }
    if (!surface.meta_.has_debug_info) {
      // Seed the function table from BTF FUNC declarations; instances stay
      // empty and the status classifier sees only the symbol table.
      for (BtfTypeId id = 1; id <= surface.btf_.num_types(); ++id) {
        const BtfType* t = surface.btf_.Get(id);
        if (t->kind == BtfKind::kFunc && !StartsWith(t->name, kTraceFuncPrefix)) {
          instances.try_emplace(t->name);
        }
      }
      if (instances.empty()) {
        // Both DWARF and BTF are gone; the symbol table alone still names
        // the attachable functions.
        for (const ElfSymbol& sym : reader.symbols()) {
          if (sym.type != SymType::kFunc) {
            continue;
          }
          std::string base = SplitTransformSuffix(sym.name).first;
          if (!base.empty() && !StartsWith(base, kTraceFuncPrefix)) {
            instances.try_emplace(std::move(base));
          }
        }
      }
    }
    dwarf_span.AddAttr("function_instances", static_cast<uint64_t>(instances.size()));
    dwarf_span.AddAttr("health", DegradationStateName(health.dwarf));
  }

  // Symbol indexes: by base name (strips transformation suffixes) and by
  // address (for tracepoint/syscall reverse lookup).
  std::map<std::string, std::vector<ElfSymbol>> symbols_by_base;
  std::map<uint64_t, const ElfSymbol*> func_sym_at;
  {
  obs::ScopedSpan classify_span("surface.classify_functions");
  classify_span.AddAttr("instances", static_cast<uint64_t>(instances.size()));
  for (const ElfSymbol& sym : reader.symbols()) {
    if (sym.type != SymType::kFunc) {
      continue;
    }
    auto [base, suffix] = SplitTransformSuffix(sym.name);
    symbols_by_base[base].push_back(sym);
    func_sym_at.emplace(sym.value, &sym);
  }

  for (auto& [name, insts] : instances) {
    FunctionEntry entry;
    entry.name = name;
    entry.instances = std::move(insts);
    auto bit = btf_funcs.find(name);
    if (bit != btf_funcs.end()) {
      entry.btf_id = bit->second;
    }
    auto sit = symbols_by_base.find(name);
    if (sit != symbols_by_base.end()) {
      entry.symbols = sit->second;
    }

    FunctionStatus& status = entry.status;
    bool any_code = false;
    bool any_inline_site = false;
    std::set<std::string> decl_locations;
    for (const FunctionInstance& inst : entry.instances) {
      any_code |= inst.HasCode();
      any_inline_site |= !inst.caller_inline.empty();
      status.external |= inst.external;
      decl_locations.insert(StrFormat("%s:%u", inst.decl_file.c_str(), inst.decl_line));
    }
    for (const ElfSymbol& sym : entry.symbols) {
      if (sym.name == name) {
        status.has_exact_symbol = true;
      } else {
        status.transform_suffix = SplitTransformSuffix(sym.name).second;
      }
    }
    status.transformed = !status.has_exact_symbol && !status.transform_suffix.empty();
    if (surface.meta_.has_debug_info) {
      status.fully_inlined = !any_code;
      status.selectively_inlined = any_code && any_inline_site;
      // Duplication counts debug-info instances (a fully-inlined header
      // static is still duplicated across its including TUs).
      status.duplicated = entry.instances.size() >= 2 && decl_locations.size() == 1;
      status.collided = decl_locations.size() >= 2;
    } else {
      // Without DWARF only the symbol table speaks: a BTF function with no
      // symbol at all was compiled away (inlined); selective inlining,
      // duplication, and collisions are undetectable.
      status.fully_inlined = !status.has_exact_symbol && !status.transformed;
      status.external = !entry.symbols.empty() &&
                        entry.symbols.front().bind == SymBind::kGlobal;
    }
    surface.functions_.emplace(name, std::move(entry));
  }
  }

  // ---- Tracepoints: walk the __start/__stop_ftrace_events pointer array,
  // dereferencing records and strings through the data sections.
  {
  obs::ScopedSpan tp_span("surface.tracepoints");
  auto start_sym = reader.FindSymbol(kStartFtrace);
  auto stop_sym = reader.FindSymbol(kStopFtrace);
  if (!start_sym.has_value() || !stop_sym.has_value()) {
    health.tracepoint = DegradationState::kMissing;
  } else {
    int ptr = reader.pointer_size();
    uint64_t skipped = 0;
    auto walk = [&]() -> Status {
      if (stop_sym->value < start_sym->value ||
          (stop_sym->value - start_sym->value) % ptr != 0) {
        return Status(Error(ErrorCode::kMalformedData, "bad ftrace_events bounds")
                          .WithOffset(start_sym->value));
      }
      uint64_t count = (stop_sym->value - start_sym->value) / ptr;
      DEPSURF_ASSIGN_OR_RETURN(array, reader.ReadAtAddress(start_sym->value));
      // Each record stands alone: a dangling pointer or unterminated string
      // skips that tracepoint, not the registry.
      auto parse_record = [&](uint64_t rec_addr) -> Status {
        DEPSURF_ASSIGN_OR_RETURN(rec, reader.ReadAtAddress(rec_addr));
        TracepointEntry tp;
        DEPSURF_ASSIGN_OR_RETURN(event_addr, rec.ReadAddr(ptr));
        DEPSURF_ASSIGN_OR_RETURN(class_addr, rec.ReadAddr(ptr));
        DEPSURF_ASSIGN_OR_RETURN(struct_addr, rec.ReadAddr(ptr));
        DEPSURF_ASSIGN_OR_RETURN(fmt_addr, rec.ReadAddr(ptr));
        DEPSURF_ASSIGN_OR_RETURN(func_addr, rec.ReadAddr(ptr));
        DEPSURF_ASSIGN_OR_RETURN(event_reader, reader.ReadAtAddress(event_addr));
        DEPSURF_ASSIGN_OR_RETURN(event_name, event_reader.ReadCString());
        tp.event_name = std::move(event_name);
        DEPSURF_ASSIGN_OR_RETURN(class_reader, reader.ReadAtAddress(class_addr));
        DEPSURF_ASSIGN_OR_RETURN(class_name, class_reader.ReadCString());
        tp.class_name = std::move(class_name);
        DEPSURF_ASSIGN_OR_RETURN(struct_reader, reader.ReadAtAddress(struct_addr));
        DEPSURF_ASSIGN_OR_RETURN(struct_name, struct_reader.ReadCString());
        tp.struct_name = std::move(struct_name);
        DEPSURF_ASSIGN_OR_RETURN(fmt_reader, reader.ReadAtAddress(fmt_addr));
        DEPSURF_ASSIGN_OR_RETURN(fmt, fmt_reader.ReadCString());
        tp.fmt = std::move(fmt);
        if (auto it = func_sym_at.find(func_addr); it != func_sym_at.end()) {
          tp.func_name = it->second->name;
        }
        if (auto id = surface.btf_.FindByKindAndName(BtfKind::kStruct, tp.struct_name)) {
          tp.struct_btf_id = *id;
        }
        if (auto id = surface.btf_.FindFunc(tp.func_name)) {
          tp.func_btf_id = *id;
        }
        surface.tracepoints_.emplace(tp.event_name, std::move(tp));
        return Status::Ok();
      };
      for (uint64_t i = 0; i < count; ++i) {
        // Losing the pointer array itself ends the walk; a bad record only
        // costs the record.
        DEPSURF_ASSIGN_OR_RETURN(rec_addr, array.ReadAddr(ptr));
        if (Status st = parse_record(rec_addr); !st.ok()) {
          health.tracepoint = DegradationState::kDegraded;
          ledger.AddError(
              DiagSeverity::kDegraded, DiagSubsystem::kTracepoint,
              st.error().Wrap(StrFormat("ftrace_events record %llu unreadable",
                                        (unsigned long long)i)));
          ++skipped;
        }
      }
      return Status::Ok();
    };
    if (Status st = walk(); !st.ok()) {
      health.tracepoint = DegradationState::kDegraded;
      ledger.AddError(DiagSeverity::kDegraded, DiagSubsystem::kTracepoint,
                      st.error().Wrap("ftrace_events walk aborted"));
    }
    tp_span.AddAttr("skipped", skipped);
  }
  tp_span.AddAttr("records", static_cast<uint64_t>(surface.tracepoints_.size()));
  }

  // ---- System calls: read sys_call_table, reverse-map entry addresses.
  {
  obs::ScopedSpan sys_span("surface.syscalls");
  auto table_sym = reader.FindSymbol(kSyscallTable);
  if (!table_sym.has_value()) {
    health.syscall = DegradationState::kMissing;
  } else {
    auto walk = [&]() -> Status {
      int ptr = reader.pointer_size();
      uint64_t slots = table_sym->size / ptr;
      uint64_t ni_addr = 0;
      if (auto ni = reader.FindSymbol("sys_ni_syscall"); ni.has_value()) {
        ni_addr = ni->value;
      }
      DEPSURF_ASSIGN_OR_RETURN(table, reader.ReadAtAddress(table_sym->value));
      for (uint64_t nr = 0; nr < slots; ++nr) {
        DEPSURF_ASSIGN_OR_RETURN(addr, table.ReadAddr(ptr));
        if (addr == ni_addr || addr == 0) {
          continue;
        }
        auto it = func_sym_at.find(addr);
        if (it == func_sym_at.end()) {
          continue;
        }
        for (const char* prefix : kSyscallPrefixes) {
          if (StartsWith(it->second->name, prefix)) {
            SyscallEntry entry;
            entry.name = it->second->name.substr(strlen(prefix));
            entry.nr = static_cast<int>(nr);
            surface.syscalls_.emplace(entry.name, std::move(entry));
            break;
          }
        }
      }
      return Status::Ok();
    };
    if (Status st = walk(); !st.ok()) {
      // The table reader is sequential, so a truncated table keeps every
      // entry decoded before the break.
      health.syscall = DegradationState::kDegraded;
      ledger.AddError(DiagSeverity::kDegraded, DiagSubsystem::kSyscall,
                      st.error().Wrap("sys_call_table walk aborted"));
    }
  }
  sys_span.AddAttr("entries", static_cast<uint64_t>(surface.syscalls_.size()));
  }

  // ---- kfuncs: registered via BTF id sets in .BTF_ids. Entries that do
  // not resolve to a FUNC (stale ids, or a degraded type graph) are skipped
  // individually.
  if (const ElfSectionView* ids_section = reader.SectionByName(".BTF_ids")) {
    auto walk = [&]() -> Status {
      DEPSURF_ASSIGN_OR_RETURN(ids, reader.SectionData(*ids_section));
      while (ids.remaining() >= 4) {
        DEPSURF_ASSIGN_OR_RETURN(id, ids.ReadU32());
        const BtfType* t = surface.btf_.Get(id);
        if (t == nullptr || t->kind != BtfKind::kFunc) {
          if (health.btf == DegradationState::kClean) {
            health.btf = DegradationState::kDegraded;
          }
          ledger.AddAt(DiagSeverity::kDegraded, DiagSubsystem::kBtf,
                       ErrorCode::kMalformedData, ids.offset() - 4,
                       StrFormat("BTF_ids entry %u is not a FUNC", id));
          continue;
        }
        surface.kfuncs_.insert(t->name);
      }
      return Status::Ok();
    };
    if (Status st = walk(); !st.ok()) {
      if (health.btf == DegradationState::kClean) {
        health.btf = DegradationState::kDegraded;
      }
      ledger.AddError(DiagSeverity::kDegraded, DiagSubsystem::kBtf,
                      st.error().Wrap(".BTF_ids unreadable"));
    }
  }

  // ---- BPF helper ids (.bpf_helpers, written by kernelgen; name kept in
  // sync with kBpfHelpersSection there). A truncated table keeps every id
  // decoded before the break.
  if (const ElfSectionView* helpers_section = reader.SectionByName(".bpf_helpers")) {
    auto walk = [&]() -> Status {
      DEPSURF_ASSIGN_OR_RETURN(ids, reader.SectionData(*helpers_section));
      while (ids.remaining() >= 4) {
        DEPSURF_ASSIGN_OR_RETURN(id, ids.ReadU32());
        surface.helpers_.insert(id);
      }
      return Status::Ok();
    };
    if (Status st = walk(); !st.ok()) {
      if (health.btf == DegradationState::kClean) {
        health.btf = DegradationState::kDegraded;
      }
      ledger.AddError(DiagSeverity::kDegraded, DiagSubsystem::kBtf,
                      st.error().Wrap(".bpf_helpers unreadable"));
    }
  }

  // Functions that are really tracepoint machinery or syscall stubs must
  // not pollute the function surface (they are reachable through their own
  // tables above). Our DWARF only covers source functions, but scripted
  // syscall implementations like __x64_sys_fsync legitimately appear in
  // both; keep them.
  for (auto it = surface.functions_.begin(); it != surface.functions_.end();) {
    if (StartsWith(it->first, kTraceFuncPrefix)) {
      it = surface.functions_.erase(it);
    } else {
      ++it;
    }
  }

  uint64_t fully_inlined = 0;
  uint64_t selectively_inlined = 0;
  uint64_t transformed = 0;
  uint64_t duplicated = 0;
  uint64_t collided = 0;
  for (const auto& [name, entry] : surface.functions_) {
    (void)name;
    fully_inlined += entry.status.fully_inlined ? 1 : 0;
    selectively_inlined += entry.status.selectively_inlined ? 1 : 0;
    transformed += entry.status.transformed ? 1 : 0;
    duplicated += entry.status.duplicated ? 1 : 0;
    collided += entry.status.collided ? 1 : 0;
  }
  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Incr("surface.extracted");
  if (health.AnyDegraded()) {
    metrics.Incr("surface.salvaged");
  }
  if (!ledger.empty()) {
    metrics.Incr("surface.diagnostics", ledger.size());
  }
  metrics.Incr("surface.functions", surface.functions_.size());
  metrics.Incr("surface.structs", surface.structs_.size());
  metrics.Incr("surface.tracepoints", surface.tracepoints_.size());
  metrics.Incr("surface.syscalls", surface.syscalls_.size());
  metrics.Incr("surface.kfuncs", surface.kfuncs_.size());
  metrics.Incr("surface.helpers", surface.helpers_.size());
  metrics.Incr("surface.funcs_fully_inlined", fully_inlined);
  metrics.Incr("surface.funcs_selectively_inlined", selectively_inlined);
  metrics.Incr("surface.funcs_transformed", transformed);
  metrics.Incr("surface.funcs_duplicated", duplicated);
  metrics.Incr("surface.funcs_collided", collided);
  span.AddAttr("functions", static_cast<uint64_t>(surface.functions_.size()));
  span.AddAttr("structs", static_cast<uint64_t>(surface.structs_.size()));
  span.AddAttr("tracepoints", static_cast<uint64_t>(surface.tracepoints_.size()));
  span.AddAttr("syscalls", static_cast<uint64_t>(surface.syscalls_.size()));
  span.AddAttr("health", health.Summary());
  // Publish the ledger so run reports carry a per-run diagnostics section.
  if (!ledger.empty()) {
    obs::Context::Current().diagnostics().AddAll(ledger);
  }
  return surface;
}

bool DependencySurface::IsLsmHook(const std::string& name) {
  return StartsWith(name, "security_");
}

const FunctionEntry* DependencySurface::FindFunction(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

std::optional<BtfTypeId> DependencySurface::FindStruct(const std::string& name) const {
  auto it = structs_.find(name);
  if (it == structs_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const TracepointEntry* DependencySurface::FindTracepoint(const std::string& event) const {
  auto it = tracepoints_.find(event);
  return it == tracepoints_.end() ? nullptr : &it->second;
}

bool DependencySurface::HasSyscall(const std::string& name) const {
  return syscalls_.count(name) != 0;
}

}  // namespace depsurf
