#include "src/core/surface_diff.h"

#include <algorithm>

#include "src/btf/btf_compare.h"
#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace depsurf {

const char* FuncChangeKindName(FuncChangeKind kind) {
  switch (kind) {
    case FuncChangeKind::kParamAdded:
      return "Param added";
    case FuncChangeKind::kParamRemoved:
      return "Param removed";
    case FuncChangeKind::kParamReordered:
      return "Param reordered";
    case FuncChangeKind::kParamTypeChanged:
      return "Param type changed";
    case FuncChangeKind::kReturnTypeChanged:
      return "Return type changed";
  }
  return "?";
}

const char* StructChangeKindName(StructChangeKind kind) {
  switch (kind) {
    case StructChangeKind::kFieldAdded:
      return "Field added";
    case StructChangeKind::kFieldRemoved:
      return "Field removed";
    case StructChangeKind::kFieldTypeChanged:
      return "Field type changed";
  }
  return "?";
}

const char* TracepointChangeKindName(TracepointChangeKind kind) {
  switch (kind) {
    case TracepointChangeKind::kEventChanged:
      return "Event changed";
    case TracepointChangeKind::kFuncChanged:
      return "Func changed";
  }
  return "?";
}

namespace {

const BtfType* ProtoOf(const TypeGraph& graph, BtfTypeId func_id) {
  const BtfType* func = graph.Get(func_id);
  if (func == nullptr || func->kind != BtfKind::kFunc) {
    return nullptr;
  }
  const BtfType* proto = graph.Get(func->ref_type_id);
  if (proto == nullptr || proto->kind != BtfKind::kFuncProto) {
    return nullptr;
  }
  return proto;
}

}  // namespace

std::vector<FuncChangeKind> CompareFuncDecls(const TypeGraph& old_graph, BtfTypeId old_func,
                                             const TypeGraph& new_graph, BtfTypeId new_func) {
  std::vector<FuncChangeKind> out;
  const BtfType* old_proto = ProtoOf(old_graph, old_func);
  const BtfType* new_proto = ProtoOf(new_graph, new_func);
  if (old_proto == nullptr || new_proto == nullptr) {
    return out;
  }
  if (!TypeEquals(old_graph, old_proto->ref_type_id, new_graph, new_proto->ref_type_id)) {
    out.push_back(FuncChangeKind::kReturnTypeChanged);
  }
  // Parameters are matched by name (the kernel's refactors keep names far
  // more stable than positions).
  auto index_of = [](const BtfType* proto, const std::string& name) -> int {
    for (size_t i = 0; i < proto->params.size(); ++i) {
      if (proto->params[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  bool added = false;
  bool removed = false;
  bool reordered = false;
  bool type_changed = false;
  for (size_t i = 0; i < old_proto->params.size(); ++i) {
    const BtfParam& p = old_proto->params[i];
    int j = index_of(new_proto, p.name);
    if (j < 0) {
      removed = true;
      continue;
    }
    if (static_cast<size_t>(j) != i) {
      reordered = true;
    }
    if (!TypeEquals(old_graph, p.type_id, new_graph, new_proto->params[j].type_id)) {
      type_changed = true;
    }
  }
  for (const BtfParam& p : new_proto->params) {
    if (index_of(old_proto, p.name) < 0) {
      added = true;
    }
  }
  if (added) {
    out.push_back(FuncChangeKind::kParamAdded);
  }
  if (removed) {
    out.push_back(FuncChangeKind::kParamRemoved);
  }
  if (reordered) {
    out.push_back(FuncChangeKind::kParamReordered);
  }
  if (type_changed) {
    out.push_back(FuncChangeKind::kParamTypeChanged);
  }
  return out;
}

std::vector<StructChangeKind> CompareStructDecls(const TypeGraph& old_graph, BtfTypeId old_id,
                                                 const TypeGraph& new_graph, BtfTypeId new_id) {
  std::vector<StructChangeKind> out;
  const BtfType* old_struct = old_graph.Get(old_id);
  const BtfType* new_struct = new_graph.Get(new_id);
  if (old_struct == nullptr || new_struct == nullptr) {
    return out;
  }
  auto find = [](const BtfType* st, const std::string& name) -> const BtfMember* {
    for (const BtfMember& m : st->members) {
      if (m.name == name) {
        return &m;
      }
    }
    return nullptr;
  };
  bool added = false;
  bool removed = false;
  bool type_changed = false;
  for (const BtfMember& m : old_struct->members) {
    const BtfMember* other = find(new_struct, m.name);
    if (other == nullptr) {
      removed = true;
    } else if (!TypeEquals(old_graph, m.type_id, new_graph, other->type_id)) {
      type_changed = true;
    }
  }
  for (const BtfMember& m : new_struct->members) {
    if (find(old_struct, m.name) == nullptr) {
      added = true;
    }
  }
  if (added) {
    out.push_back(StructChangeKind::kFieldAdded);
  }
  if (removed) {
    out.push_back(StructChangeKind::kFieldRemoved);
  }
  if (type_changed) {
    out.push_back(StructChangeKind::kFieldTypeChanged);
  }
  return out;
}

SurfaceDiff DiffSurfaces(const DependencySurface& older, const DependencySurface& newer) {
  obs::ScopedSpan span("diff.surfaces");
  SurfaceDiff diff;

  // ---- Functions. The population compared is the *attachable* surface
  // (functions with a symbol), matching Table 3's counting.
  auto attachable = [](const FunctionEntry& entry) { return entry.status.has_exact_symbol; };
  for (const auto& [name, entry] : older.functions()) {
    if (!attachable(entry)) {
      continue;
    }
    const FunctionEntry* other = newer.FindFunction(name);
    if (other == nullptr || !attachable(*other)) {
      diff.funcs.removed.push_back(name);
      continue;
    }
    if (entry.btf_id != 0 && other->btf_id != 0) {
      auto kinds = CompareFuncDecls(older.btf(), entry.btf_id, newer.btf(), other->btf_id);
      if (!kinds.empty()) {
        diff.funcs.changed.emplace(name, std::move(kinds));
      }
    }
  }
  for (const auto& [name, entry] : newer.functions()) {
    if (attachable(entry) &&
        (older.FindFunction(name) == nullptr || !attachable(*older.FindFunction(name)))) {
      diff.funcs.added.push_back(name);
    }
  }

  // ---- Structs.
  for (const auto& [name, id] : older.structs()) {
    auto other = newer.FindStruct(name);
    if (!other.has_value()) {
      diff.structs.removed.push_back(name);
      continue;
    }
    auto kinds = CompareStructDecls(older.btf(), id, newer.btf(), *other);
    if (!kinds.empty()) {
      diff.structs.changed.emplace(name, std::move(kinds));
    }
  }
  for (const auto& [name, id] : newer.structs()) {
    (void)id;
    if (!older.FindStruct(name).has_value()) {
      diff.structs.added.push_back(name);
    }
  }

  // ---- Tracepoints: event struct and tracing function compared separately.
  for (const auto& [name, tp] : older.tracepoints()) {
    const TracepointEntry* other = newer.FindTracepoint(name);
    if (other == nullptr) {
      diff.tracepoints.removed.push_back(name);
      continue;
    }
    std::vector<TracepointChangeKind> kinds;
    if (tp.struct_btf_id != 0 && other->struct_btf_id != 0 &&
        !CompareStructDecls(older.btf(), tp.struct_btf_id, newer.btf(), other->struct_btf_id)
             .empty()) {
      kinds.push_back(TracepointChangeKind::kEventChanged);
    }
    if (tp.func_btf_id != 0 && other->func_btf_id != 0 &&
        !CompareFuncDecls(older.btf(), tp.func_btf_id, newer.btf(), other->func_btf_id)
             .empty()) {
      kinds.push_back(TracepointChangeKind::kFuncChanged);
    }
    if (!kinds.empty()) {
      diff.tracepoints.changed.emplace(name, std::move(kinds));
    }
  }
  for (const auto& [name, tp] : newer.tracepoints()) {
    (void)tp;
    if (older.FindTracepoint(name) == nullptr) {
      diff.tracepoints.added.push_back(name);
    }
  }

  // ---- Syscalls: presence only.
  for (const auto& [name, entry] : older.syscalls()) {
    (void)entry;
    if (!newer.HasSyscall(name)) {
      diff.syscalls.removed.push_back(name);
    }
  }
  for (const auto& [name, entry] : newer.syscalls()) {
    (void)entry;
    if (!older.HasSyscall(name)) {
      diff.syscalls.added.push_back(name);
    }
  }

  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Incr("diff.pairs_diffed");
  metrics.Incr("diff.funcs_compared", older.functions().size());
  metrics.Incr("diff.structs_compared", older.structs().size());
  metrics.Incr("diff.tracepoints_compared", older.tracepoints().size());
  metrics.Incr("diff.funcs_changed", diff.funcs.changed.size());
  metrics.Incr("diff.structs_changed", diff.structs.changed.size());
  span.AddAttr("funcs_changed", static_cast<uint64_t>(diff.funcs.changed.size()));
  span.AddAttr("structs_changed", static_cast<uint64_t>(diff.structs.changed.size()));
  span.AddAttr("tracepoints_changed",
               static_cast<uint64_t>(diff.tracepoints.changed.size()));
  return diff;
}

}  // namespace depsurf
