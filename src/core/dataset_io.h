// Serialization of the mismatch dataset. The paper publishes its dataset
// as a standalone artifact so dependency-set analysis can run without the
// (64 GB of) kernel images; this is the equivalent: distill images once
// with `depsurf dataset build`, query the compact file forever after.
//
// Two on-disk formats coexist:
//  - v1 ("DDS1"): ULEB128 sequential encoding. Compact, but every open is a
//    full parse — the wrong shape for a long-lived query server.
//  - v2 ("DDS2"): page-aligned sections, an offset-based interned string
//    table, and flat per-image record arrays sorted by name id, so a file
//    opens via mmap in O(pages touched) and `MmapDataset` answers queries
//    with zero-copy string/record views (see docs/FORMATS.md §6a).
// `depsurf dataset migrate` converts v1 -> v2 byte-deterministically.
#ifndef DEPSURF_SRC_CORE_DATASET_IO_H_
#define DEPSURF_SRC_CORE_DATASET_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/dataset_view.h"

namespace depsurf {

inline constexpr uint32_t kDatasetMagic = 0x31534444;    // "DDS1"
inline constexpr uint32_t kDatasetMagicV2 = 0x32534444;  // "DDS2"
// Every v2 section starts on a page boundary so a query touches only the
// pages its binary searches land on.
inline constexpr uint32_t kDatasetV2PageSize = 4096;

// Compact binary encoding (string pool + per-image records).
std::vector<uint8_t> SaveDataset(const Dataset& dataset);

// Parses a v1 dataset file; validates the magic, bounds, and string ids.
Result<Dataset> LoadDataset(const std::vector<uint8_t>& bytes);

// Emits the mmap-friendly v2 layout. The v2 string pool preserves every v1
// pool id and appends transform suffixes / diagnostic messages after them,
// so migration is deterministic byte-for-byte.
std::vector<uint8_t> SaveDatasetV2(const Dataset& dataset);

// Full strict parse of a v2 buffer into an in-memory Dataset (the path for
// `dataset info` and other whole-file consumers; servers use MmapDataset).
Result<Dataset> LoadDatasetV2(const std::vector<uint8_t>& bytes);

// Dispatches on the magic; accepts v1 and v2 buffers.
Result<Dataset> LoadAnyDataset(const std::vector<uint8_t>& bytes);

// 1 or 2; kMalformedData when the buffer carries neither magic.
Result<int> DatasetFormatVersion(const std::vector<uint8_t>& bytes);

// Zero-copy read view over a `.dds` v2 file. Open() maps the file and
// validates the header + section table once (O(sections)); every query then
// touches only the pages its lookups land on. Record accessors re-check
// bounds on every access, so a truncated or bit-flipped file degrades to
// "absent" answers instead of crashing — corruption found at open time is
// reported as an error, corruption found later yields empty views.
class MmapDataset : public DatasetView {
 public:
  static Result<MmapDataset> Open(const std::string& path);
  // Adopts an in-memory buffer instead of a file mapping (tests, sockets).
  static Result<MmapDataset> FromBytes(std::vector<uint8_t> bytes);

  MmapDataset(MmapDataset&& other) noexcept;
  MmapDataset& operator=(MmapDataset&& other) noexcept;
  MmapDataset(const MmapDataset&) = delete;
  MmapDataset& operator=(const MmapDataset&) = delete;
  ~MmapDataset() override;

  size_t num_images() const override { return image_count_; }
  std::vector<std::string> labels() const override;
  SurfaceMeta MetaAt(size_t image_index) const override;
  std::string HealthSummaryAt(size_t image_index) const override;
  bool AnyDegradedAt(size_t image_index) const override;

  std::vector<std::set<MismatchKind>> CheckFunc(const std::string& name) const override;
  std::vector<std::set<MismatchKind>> CheckStruct(const std::string& name) const override;
  std::vector<std::set<MismatchKind>> CheckField(const std::string& struct_name,
                                                 const std::string& field_name,
                                                 const std::string& expected_type,
                                                 bool guarded) const override;
  std::vector<std::set<MismatchKind>> CheckTracepoint(const std::string& event) const override;
  std::vector<std::set<MismatchKind>> CheckSyscall(const std::string& name) const override;
  std::vector<std::set<MismatchKind>> CheckRegisters() const override;

  std::optional<std::string_view> FuncDeclAt(const std::string& name,
                                             size_t image_index) const override;
  std::optional<std::string_view> FieldTypeAt(const std::string& struct_name,
                                              const std::string& field_name,
                                              size_t image_index) const override;

  // Interned-pool introspection (stats/debugging).
  uint32_t string_count() const { return string_count_; }
  size_t byte_size() const { return size_; }
  // Zero-copy string view; nullopt for out-of-range ids or corrupt offsets.
  std::optional<std::string_view> StringViewAt(StrId id) const;
  // Binary search over the lexicographically sorted id index.
  StrId LookupId(std::string_view s) const;

 private:
  struct Section {
    uint64_t offset = 0;
    uint64_t size = 0;
  };

  MmapDataset() = default;
  Status Attach(const uint8_t* data, size_t size);
  const uint8_t* ImageHeader(size_t image_index) const;
  const Section& SectionOf(uint32_t kind) const { return sections_[kind]; }

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  void* map_base_ = nullptr;  // non-null when backed by mmap
  size_t map_len_ = 0;
  std::vector<uint8_t> owned_;  // non-empty when backed by FromBytes
  uint32_t image_count_ = 0;
  uint32_t string_count_ = 0;
  std::vector<Section> sections_;  // indexed by section kind (1..10)
};

// A dataset opened for querying, either format: v1 loads fully, v2 maps.
struct OpenedDataset {
  std::unique_ptr<DatasetView> view;
  int format = 1;
  size_t images = 0;
};
Result<OpenedDataset> OpenDatasetView(const std::string& path);

}  // namespace depsurf

#endif  // DEPSURF_SRC_CORE_DATASET_IO_H_
