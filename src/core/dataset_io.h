// Serialization of the mismatch dataset. The paper publishes its dataset
// as a standalone artifact so dependency-set analysis can run without the
// (64 GB of) kernel images; this is the equivalent: distill images once
// with `depsurf dataset build`, query the compact file forever after.
#ifndef DEPSURF_SRC_CORE_DATASET_IO_H_
#define DEPSURF_SRC_CORE_DATASET_IO_H_

#include <cstdint>
#include <vector>

#include "src/core/dataset.h"

namespace depsurf {

inline constexpr uint32_t kDatasetMagic = 0x31534444;  // "DDS1"

// Compact binary encoding (string pool + per-image records).
std::vector<uint8_t> SaveDataset(const Dataset& dataset);

// Parses a dataset file; validates the magic, bounds, and string ids.
Result<Dataset> LoadDataset(const std::vector<uint8_t>& bytes);

}  // namespace depsurf

#endif  // DEPSURF_SRC_CORE_DATASET_IO_H_
