#include "src/core/dependency_set.h"

#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace depsurf {

size_t DependencySet::NumFields() const {
  size_t n = 0;
  for (const auto& [name, field_map] : fields) {
    n += field_map.size();
  }
  return n;
}

Result<DependencySet> ExtractDependencySet(const BpfObject& object) {
  obs::ScopedSpan span("deps.extract");
  span.AddAttr("program", object.name);
  DependencySet set;
  set.program = object.name;
  for (const BpfProgram& program : object.programs) {
    switch (program.hook.kind) {
      case HookKind::kKprobe:
      case HookKind::kKretprobe:
      case HookKind::kFentry:
      case HookKind::kFexit:
        set.funcs.insert(program.hook.target);
        break;
      case HookKind::kTracepoint:
      case HookKind::kRawTracepoint:
        set.tracepoints.insert(program.hook.target);
        break;
      case HookKind::kSyscallEnter:
      case HookKind::kSyscallExit:
        set.syscalls.insert(program.hook.target);
        break;
      case HookKind::kLsm:
        set.lsm_hooks.insert(program.hook.target);
        break;
      case HookKind::kPerfEvent:
        break;
    }
  }
  for (const CoreReloc& reloc : object.relocs) {
    if (reloc.kind == CoreRelocKind::kTypeExists) {
      const BtfType* root = object.btf.Get(object.btf.ResolveAliases(reloc.root_type_id));
      if (root == nullptr || root->name.empty()) {
        return Error(ErrorCode::kMalformedData, "type-exists reloc without a named root");
      }
      set.fields.try_emplace(root->name);  // struct dependency, no fields
      continue;
    }
    DEPSURF_ASSIGN_OR_RETURN(chain, ResolveReloc(object.btf, reloc));
    for (const FieldAccess& access : chain) {
      FieldDep dep;
      dep.expected_type = access.field_type;
      dep.guarded = access.exists_check;
      auto [it, inserted] = set.fields[access.struct_name].emplace(access.field_name, dep);
      if (!inserted && !access.exists_check) {
        it->second.guarded = false;  // a direct read outweighs a guard
      }
    }
  }
  // Instruction-stream entries: helper ids from call sites, and loads
  // whose (program, insn_off) no relocation claims — implicit layout
  // dependencies a CO-RE loader cannot repair. Stack access (r10) is not a
  // kernel dependency.
  for (size_t p = 0; p < object.programs.size(); ++p) {
    const BpfProgram& program = object.programs[p];
    std::set<uint32_t> bound_offsets;
    for (const CoreReloc& reloc : object.relocs) {
      if (reloc.prog_index == p) {
        bound_offsets.insert(reloc.insn_off);
      }
    }
    uint32_t byte_off = 0;
    for (const BpfInsn& insn : program.insns) {
      if (insn.IsCall()) {
        set.helper_ids.insert(static_cast<uint32_t>(insn.imm));
      }
      if (insn.IsLoad() && insn.src_reg != 10 && bound_offsets.count(byte_off) == 0) {
        set.raw_offsets.insert(RawOffsetDep{program.name, byte_off, insn.offset});
      }
      byte_off += static_cast<uint32_t>(insn.Slots() * 8);
    }
  }
  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Incr("deps.sets_extracted");
  metrics.Incr("deps.funcs", set.NumFuncs());
  metrics.Incr("deps.structs", set.NumStructs());
  metrics.Incr("deps.fields", set.NumFields());
  metrics.Incr("deps.tracepoints", set.NumTracepoints());
  metrics.Incr("deps.syscalls", set.NumSyscalls());
  metrics.Incr("deps.helpers", set.NumHelpers());
  metrics.Incr("deps.raw_offsets", set.NumRawOffsets());
  span.AddAttr("funcs", static_cast<uint64_t>(set.NumFuncs()));
  span.AddAttr("fields", static_cast<uint64_t>(set.NumFields()));
  return set;
}

}  // namespace depsurf
