// DependencySet: the kernel constructs an eBPF program relies on, extracted
// from its object file (hooks from section names, struct/field accesses
// from CO-RE relocations) — the second stage of DepSurf (§3.1).
#ifndef DEPSURF_SRC_CORE_DEPENDENCY_SET_H_
#define DEPSURF_SRC_CORE_DEPENDENCY_SET_H_

#include <map>
#include <set>
#include <string>

#include "src/bpf/bpf_object.h"
#include "src/util/error.h"

namespace depsurf {

struct FieldDep {
  std::string expected_type;  // rendered from the program's BTF
  bool guarded = false;       // behind a bpf_core_field_exists check
};

// An implicit struct-layout dependency: a load at a displacement frozen at
// compile time, with no CO-RE relocation to repair it. Invisible to the
// reloc-based extraction above; recovered from the instruction stream.
struct RawOffsetDep {
  std::string program;      // program (function) name
  uint32_t insn_off = 0;    // byte offset of the load in its section
  int16_t displacement = 0;  // the hardcoded offset

  auto operator<=>(const RawOffsetDep&) const = default;
};

struct DependencySet {
  std::string program;
  // kprobe/kretprobe/fentry/fexit targets.
  std::set<std::string> funcs;
  // Classic and raw tracepoint events.
  std::set<std::string> tracepoints;
  std::set<std::string> syscalls;
  std::set<std::string> lsm_hooks;
  // struct -> field -> expectation. Structs with no direct field reads
  // still appear with an empty field map.
  std::map<std::string, std::map<std::string, FieldDep>> fields;
  // Helper ids hardwired into call instructions (checked against the
  // kernel's availability table by the analyzer).
  std::set<uint32_t> helper_ids;
  // Implicit layout dependencies from unrelocated loads.
  std::set<RawOffsetDep> raw_offsets;

  size_t NumFuncs() const { return funcs.size(); }
  size_t NumStructs() const { return fields.size(); }
  size_t NumFields() const;
  size_t NumTracepoints() const { return tracepoints.size(); }
  size_t NumSyscalls() const { return syscalls.size(); }
  size_t NumHelpers() const { return helper_ids.size(); }
  size_t NumRawOffsets() const { return raw_offsets.size(); }
};

Result<DependencySet> ExtractDependencySet(const BpfObject& object);

}  // namespace depsurf

#endif  // DEPSURF_SRC_CORE_DEPENDENCY_SET_H_
