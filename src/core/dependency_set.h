// DependencySet: the kernel constructs an eBPF program relies on, extracted
// from its object file (hooks from section names, struct/field accesses
// from CO-RE relocations) — the second stage of DepSurf (§3.1).
#ifndef DEPSURF_SRC_CORE_DEPENDENCY_SET_H_
#define DEPSURF_SRC_CORE_DEPENDENCY_SET_H_

#include <map>
#include <set>
#include <string>

#include "src/bpf/bpf_object.h"
#include "src/util/error.h"

namespace depsurf {

struct FieldDep {
  std::string expected_type;  // rendered from the program's BTF
  bool guarded = false;       // behind a bpf_core_field_exists check
};

struct DependencySet {
  std::string program;
  // kprobe/kretprobe/fentry/fexit targets.
  std::set<std::string> funcs;
  // Classic and raw tracepoint events.
  std::set<std::string> tracepoints;
  std::set<std::string> syscalls;
  std::set<std::string> lsm_hooks;
  // struct -> field -> expectation. Structs with no direct field reads
  // still appear with an empty field map.
  std::map<std::string, std::map<std::string, FieldDep>> fields;

  size_t NumFuncs() const { return funcs.size(); }
  size_t NumStructs() const { return fields.size(); }
  size_t NumFields() const;
  size_t NumTracepoints() const { return tracepoints.size(); }
  size_t NumSyscalls() const { return syscalls.size(); }
};

Result<DependencySet> ExtractDependencySet(const BpfObject& object);

}  // namespace depsurf

#endif  // DEPSURF_SRC_CORE_DEPENDENCY_SET_H_
