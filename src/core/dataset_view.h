// Read-side interface over a mismatch dataset. Two implementations exist:
// `Dataset` (the in-memory pool built by distillation or a full v1/v2 parse)
// and `MmapDataset` (zero-copy views over a mmap'd `.dds` v2 file, see
// dataset_io.h). Report building and the `serve` query loop are written
// against this interface so a long-lived server never pays a full parse.
#ifndef DEPSURF_SRC_CORE_DATASET_VIEW_H_
#define DEPSURF_SRC_CORE_DATASET_VIEW_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/dependency_surface.h"

namespace depsurf {

// Everything that can go wrong for one dependency on one image.
enum class MismatchKind : uint8_t {
  kAbsent,           // Ø  construct not on the surface
  kChanged,          // Δ  definition differs (vs baseline or expectation)
  kFullInline,       // F
  kSelectiveInline,  // S
  kTransformed,      // T
  kDuplicated,       // D
  kCollision,        // C (the paper's "name collision")
  kNotTraceable,     // 32-bit syscall blind spot
};

const char* MismatchKindName(MismatchKind kind);
// One-letter code used in report matrices (Ø rendered as '-').
char MismatchKindCode(MismatchKind kind);

using StrId = uint32_t;

class DatasetView {
 public:
  virtual ~DatasetView();

  virtual size_t num_images() const = 0;
  virtual std::vector<std::string> labels() const = 0;
  // Surface metadata / salvage-health summary for one image. Out-of-range
  // indices return defaults (implementations never throw).
  virtual SurfaceMeta MetaAt(size_t image_index) const = 0;
  virtual std::string HealthSummaryAt(size_t image_index) const = 0;
  virtual bool AnyDegradedAt(size_t image_index) const = 0;

  // All queries return one mismatch set per image, in insertion order.
  // Baselines (for Changed) are the construct's definition on the earliest
  // image where it is present.
  virtual std::vector<std::set<MismatchKind>> CheckFunc(const std::string& name) const = 0;
  virtual std::vector<std::set<MismatchKind>> CheckStruct(const std::string& name) const = 0;
  // `expected_type` is the program-side expectation (empty: fall back to
  // the baseline image's type). Guarded accesses never report kAbsent.
  virtual std::vector<std::set<MismatchKind>> CheckField(const std::string& struct_name,
                                                         const std::string& field_name,
                                                         const std::string& expected_type,
                                                         bool guarded) const = 0;
  virtual std::vector<std::set<MismatchKind>> CheckTracepoint(const std::string& event) const = 0;
  virtual std::vector<std::set<MismatchKind>> CheckSyscall(const std::string& name) const = 0;
  // Register-layout mismatch vs the first image (Table 5's "Register Δ").
  virtual std::vector<std::set<MismatchKind>> CheckRegisters() const = 0;

  // Rendered function declaration on one image; nullopt when absent there.
  // Views stay valid as long as the implementation object does.
  virtual std::optional<std::string_view> FuncDeclAt(const std::string& name,
                                                     size_t image_index) const = 0;
  // Field type string on one image; nullopt when absent.
  virtual std::optional<std::string_view> FieldTypeAt(const std::string& struct_name,
                                                      const std::string& field_name,
                                                      size_t image_index) const = 0;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_CORE_DATASET_VIEW_H_
