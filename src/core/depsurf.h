// Umbrella header for the DepSurf analysis library.
//
// Typical flow:
//   1. DependencySurface::Extract(image_bytes)  — per kernel image
//   2. Dataset::AddImage(label, surface)        — distill, drop the surface
//   3. ParseBpfObject + ExtractDependencySet    — per eBPF program
//   4. AnalyzeProgram(dataset, deps)            — the mismatch report
// Pairwise structural comparison (DiffSurfaces) powers the evolution /
// configuration studies.
#ifndef DEPSURF_SRC_CORE_DEPSURF_H_
#define DEPSURF_SRC_CORE_DEPSURF_H_

#include "src/core/dataset.h"
#include "src/core/dependency_set.h"
#include "src/core/dependency_surface.h"
#include "src/core/report.h"
#include "src/core/surface_diff.h"

#endif  // DEPSURF_SRC_CORE_DEPSURF_H_
