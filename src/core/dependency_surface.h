// DependencySurface: everything an eBPF program can depend on in one kernel
// image, extracted purely from the image bytes (ELF + DWARF + BTF + data
// sections) — the first stage of DepSurf (§3.1).
#ifndef DEPSURF_SRC_CORE_DEPENDENCY_SURFACE_H_
#define DEPSURF_SRC_CORE_DEPENDENCY_SURFACE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/btf/btf.h"
#include "src/dwarf/function_view.h"
#include "src/elf/elf.h"
#include "src/util/diagnostic_ledger.h"
#include "src/util/error.h"

namespace depsurf {

// Per-subsystem outcome of salvage-mode extraction.
//   kClean:    decoded completely.
//   kDegraded: malformed data was skipped; results are partial.
//   kMissing:  the section/symbols are absent from the image (expected for
//              e.g. distro kernels without dbgsym DWARF).
enum class DegradationState : uint8_t { kClean, kDegraded, kMissing };

// "clean" / "degraded" / "missing".
const char* DegradationStateName(DegradationState state);

// What survived extraction, per subsystem, plus the ledger explaining every
// salvage decision. A surface with AnyDegraded() still answers queries, but
// analyses built on it must be flagged (see ProgramReport).
struct SurfaceHealth {
  DegradationState elf = DegradationState::kClean;
  DegradationState dwarf = DegradationState::kClean;
  DegradationState btf = DegradationState::kClean;
  DegradationState tracepoint = DegradationState::kClean;
  DegradationState syscall = DegradationState::kClean;
  DiagnosticLedger ledger;

  bool AnyDegraded() const;
  // "dwarf=degraded btf=clean ..." — only non-clean subsystems are listed;
  // returns "clean" when everything decoded completely.
  std::string Summary() const;
};

// How a source function shows up (or fails to) in the compiled image.
struct FunctionStatus {
  bool has_exact_symbol = false;  // attachable by name
  bool fully_inlined = false;     // exists in debug info, no code anywhere
  bool selectively_inlined = false;  // out-of-line copy plus inlined sites
  bool transformed = false;          // only suffixed symbols (.isra.0, ...)
  std::string transform_suffix;
  bool duplicated = false;  // several copies of one definition (header static)
  bool collided = false;    // unrelated definitions sharing the name
  bool external = false;    // any instance is a global

  // "Unique Global" / "Unique Static" / "Static Duplication" /
  // "Static-Static Collision" / "Static-Global Collision" (Table 6).
  std::string CollisionClass() const;
};

struct FunctionEntry {
  std::string name;
  BtfTypeId btf_id = 0;  // FUNC node in the surface's type graph (0: none)
  std::vector<FunctionInstance> instances;
  std::vector<ElfSymbol> symbols;  // exact and suffixed
  FunctionStatus status;

  // Dataset-style JSON (paper Appendix A.2.4 "Function Status").
  std::string StatusJson() const;
};

struct TracepointEntry {
  std::string event_name;
  std::string class_name;
  std::string func_name;    // tracing function symbol
  std::string struct_name;  // event struct in BTF
  std::string fmt;
  BtfTypeId func_btf_id = 0;    // FUNC node of the tracing function
  BtfTypeId struct_btf_id = 0;  // event struct
};

struct SyscallEntry {
  std::string name;
  int nr = -1;
};

struct SurfaceMeta {
  // False when the image has no DWARF debug sections: function declarations
  // still come from BTF and the symbol table, but inline/duplication status
  // is unavailable (the common case for distro kernels without dbgsym).
  bool has_debug_info = true;
  int version_major = 0;
  int version_minor = 0;
  std::string flavor;
  int gcc_major = 0;
  std::string arch;  // from e_machine
  int pointer_size = 8;
  Endian endian = Endian::kLittle;
  uint32_t config_options = 0;          // from the embedded .config
  bool compat_syscalls_traceable = true;
};

class DependencySurface {
 public:
  // Salvage-mode extraction from image bytes. Only an unreadable ELF
  // container is fatal; any malformed subsystem (BTF, DWARF, tracepoint
  // registry, syscall table) is skipped at section/record granularity,
  // marked in health(), and explained in health().ledger — a kernel with
  // broken DWARF still yields symbols, tracepoints, and syscalls. Callers
  // wanting strict semantics check health().AnyDegraded() themselves.
  // The bytes are released afterwards; only the surface data is retained.
  static Result<DependencySurface> Extract(std::vector<uint8_t> image_bytes);

  const SurfaceMeta& meta() const { return meta_; }
  const TypeGraph& btf() const { return btf_; }
  const SurfaceHealth& health() const { return health_; }

  // Functions keyed by source name; excludes tracepoint machinery and
  // syscall entry stubs.
  const std::map<std::string, FunctionEntry>& functions() const { return functions_; }
  // Named struct name -> BTF id; excludes trace_event_raw_* machinery.
  const std::map<std::string, BtfTypeId>& structs() const { return structs_; }
  const std::map<std::string, TracepointEntry>& tracepoints() const { return tracepoints_; }
  const std::map<std::string, SyscallEntry>& syscalls() const { return syscalls_; }

  // kfunc names (from the image's .BTF_ids registration section).
  const std::set<std::string>& kfuncs() const { return kfuncs_; }
  // BPF helper ids this kernel exports (from the .bpf_helpers section
  // kernelgen embeds). Empty on images without the section.
  const std::set<uint32_t>& helpers() const { return helpers_; }
  // LSM hooks are identified by the security_ prefix, as in the paper.
  static bool IsLsmHook(const std::string& name);

  const FunctionEntry* FindFunction(const std::string& name) const;
  std::optional<BtfTypeId> FindStruct(const std::string& name) const;
  const TracepointEntry* FindTracepoint(const std::string& event) const;
  bool HasSyscall(const std::string& name) const;

 private:
  SurfaceMeta meta_;
  SurfaceHealth health_;
  TypeGraph btf_;
  std::map<std::string, FunctionEntry> functions_;
  std::map<std::string, BtfTypeId> structs_;
  std::map<std::string, TracepointEntry> tracepoints_;
  std::map<std::string, SyscallEntry> syscalls_;
  std::set<std::string> kfuncs_;
  std::set<uint32_t> helpers_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_CORE_DEPENDENCY_SURFACE_H_
