#include "src/core/dataset.h"

#include <algorithm>

#include "src/btf/btf_print.h"
#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/prng.h"

namespace depsurf {

DatasetView::~DatasetView() = default;

const char* MismatchKindName(MismatchKind kind) {
  switch (kind) {
    case MismatchKind::kAbsent:
      return "absent";
    case MismatchKind::kChanged:
      return "changed";
    case MismatchKind::kFullInline:
      return "full_inline";
    case MismatchKind::kSelectiveInline:
      return "selective_inline";
    case MismatchKind::kTransformed:
      return "transformed";
    case MismatchKind::kDuplicated:
      return "duplicated";
    case MismatchKind::kCollision:
      return "collision";
    case MismatchKind::kNotTraceable:
      return "not_traceable";
  }
  return "?";
}

char MismatchKindCode(MismatchKind kind) {
  switch (kind) {
    case MismatchKind::kAbsent:
      return '-';
    case MismatchKind::kChanged:
      return 'C';
    case MismatchKind::kFullInline:
      return 'F';
    case MismatchKind::kSelectiveInline:
      return 'S';
    case MismatchKind::kTransformed:
      return 'T';
    case MismatchKind::kDuplicated:
      return 'D';
    case MismatchKind::kCollision:
      return 'N';
    case MismatchKind::kNotTraceable:
      return 'U';
  }
  return '?';
}

const StrId* StructRecord::FindField(StrId name) const {
  auto it = std::lower_bound(fields.begin(), fields.end(), name,
                             [](const auto& field, StrId key) { return field.first < key; });
  if (it == fields.end() || it->first != name) {
    return nullptr;
  }
  return &it->second;
}

StrId Dataset::Intern(const std::string& s) {
  auto it = pool_index_.find(s);
  if (it != pool_index_.end()) {
    ++intern_hits_;
    return it->second;
  }
  ++intern_misses_;
  StrId id = static_cast<StrId>(pool_.size());
  pool_.push_back(s);
  pool_index_.emplace(s, id);
  return id;
}

void Dataset::FlushInternMetrics() {
  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  if (intern_hits_ > intern_hits_flushed_) {
    metrics.Incr("dataset.intern_hits", intern_hits_ - intern_hits_flushed_);
    intern_hits_flushed_ = intern_hits_;
  }
  if (intern_misses_ > intern_misses_flushed_) {
    metrics.Incr("dataset.intern_misses", intern_misses_ - intern_misses_flushed_);
    intern_misses_flushed_ = intern_misses_;
  }
}

StrId Dataset::Lookup(const std::string& s) const {
  auto it = pool_index_.find(s);
  return it == pool_index_.end() ? kNoStr : it->second;
}

void Dataset::AddImage(const std::string& label, const DependencySurface& surface) {
  obs::ScopedSpan span("dataset.distill");
  span.AddAttr("image", label);
  ImageRecord record;
  record.label = label;
  record.meta = surface.meta();
  record.health = surface.health();
  const TypeGraph& graph = surface.btf();

  auto decl_hash = [&](BtfTypeId func_id) -> uint64_t {
    const BtfType* func = graph.Get(func_id);
    const BtfType* proto = func != nullptr ? graph.Get(func->ref_type_id) : nullptr;
    if (proto == nullptr || proto->kind != BtfKind::kFuncProto) {
      return 0;
    }
    uint64_t h = HashString(TypeString(graph, proto->ref_type_id));
    for (const BtfParam& p : proto->params) {
      h = HashCombine({h, HashString(p.name), HashString(TypeString(graph, p.type_id))});
    }
    return h;
  };

  for (const auto& [name, entry] : surface.functions()) {
    FuncRecord fr;
    fr.status = entry.status;
    if (entry.btf_id != 0) {
      fr.decl_hash = decl_hash(entry.btf_id);
      fr.decl = Intern(FuncDeclString(graph, entry.btf_id));
    }
    record.funcs.emplace(Intern(name), std::move(fr));
  }

  for (const auto& [name, id] : surface.structs()) {
    StructRecord sr;
    const BtfType* st = graph.Get(id);
    if (st != nullptr) {
      sr.fields.reserve(st->members.size());
      for (const BtfMember& m : st->members) {
        sr.fields.emplace_back(Intern(m.name), Intern(TypeString(graph, m.type_id)));
      }
      std::sort(sr.fields.begin(), sr.fields.end());
    }
    record.structs.emplace(Intern(name), std::move(sr));
  }

  for (const auto& [name, tp] : surface.tracepoints()) {
    TracepointRecord tr;
    if (tp.func_btf_id != 0) {
      const BtfType* func = graph.Get(tp.func_btf_id);
      const BtfType* proto = func != nullptr ? graph.Get(func->ref_type_id) : nullptr;
      if (proto != nullptr) {
        for (const BtfParam& p : proto->params) {
          tr.func_params.emplace_back(Intern(p.name), Intern(TypeString(graph, p.type_id)));
        }
      }
    }
    if (tp.struct_btf_id != 0) {
      const BtfType* st = graph.Get(tp.struct_btf_id);
      if (st != nullptr) {
        for (const BtfMember& m : st->members) {
          tr.event_fields.emplace_back(Intern(m.name), Intern(TypeString(graph, m.type_id)));
        }
        std::sort(tr.event_fields.begin(), tr.event_fields.end());
      }
    }
    record.tracepoints.emplace(Intern(name), std::move(tr));
  }

  for (const auto& [name, entry] : surface.syscalls()) {
    (void)entry;
    record.syscalls.insert(Intern(name));
  }
  record.compat_syscalls_traceable = record.meta.compat_syscalls_traceable;
  if (auto pt_regs = surface.FindStruct("pt_regs"); pt_regs.has_value()) {
    const BtfType* st = graph.Get(*pt_regs);
    uint64_t h = 0x9e11;
    for (const BtfMember& m : st->members) {
      h = HashCombine({h, HashString(m.name)});
    }
    record.pt_regs_hash = h;
  }
  FlushInternMetrics();
  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Incr("dataset.images_distilled");
  metrics.Incr("dataset.funcs_distilled", record.funcs.size());
  metrics.Incr("dataset.structs_distilled", record.structs.size());
  metrics.Set("dataset.pool_strings", static_cast<int64_t>(pool_.size()));
  span.AddAttr("funcs", static_cast<uint64_t>(record.funcs.size()));
  span.AddAttr("structs", static_cast<uint64_t>(record.structs.size()));
  span.AddAttr("pool_strings", static_cast<uint64_t>(pool_.size()));
  images_.push_back(std::move(record));
}

std::vector<std::string> Dataset::labels() const {
  std::vector<std::string> out;
  out.reserve(images_.size());
  for (const ImageRecord& image : images_) {
    out.push_back(image.label);
  }
  return out;
}

std::vector<std::set<MismatchKind>> Dataset::CheckFunc(const std::string& name) const {
  std::vector<std::set<MismatchKind>> out(images_.size());
  StrId id = Lookup(name);
  const FuncRecord* baseline = nullptr;
  for (size_t i = 0; i < images_.size(); ++i) {
    const FuncRecord* fr = nullptr;
    if (id != kNoStr) {
      auto it = images_[i].funcs.find(id);
      if (it != images_[i].funcs.end()) {
        fr = &it->second;
      }
    }
    if (fr == nullptr) {
      out[i].insert(MismatchKind::kAbsent);
      continue;
    }
    if (baseline == nullptr) {
      baseline = fr;
    } else if (fr->decl_hash != baseline->decl_hash) {
      out[i].insert(MismatchKind::kChanged);
    }
    if (fr->status.fully_inlined) {
      out[i].insert(MismatchKind::kFullInline);
    }
    if (fr->status.selectively_inlined) {
      out[i].insert(MismatchKind::kSelectiveInline);
    }
    if (fr->status.transformed) {
      out[i].insert(MismatchKind::kTransformed);
    }
    if (fr->status.duplicated) {
      out[i].insert(MismatchKind::kDuplicated);
    }
    if (fr->status.collided) {
      out[i].insert(MismatchKind::kCollision);
    }
  }
  return out;
}

std::vector<std::set<MismatchKind>> Dataset::CheckStruct(const std::string& name) const {
  std::vector<std::set<MismatchKind>> out(images_.size());
  StrId id = Lookup(name);
  const StructRecord* baseline = nullptr;
  for (size_t i = 0; i < images_.size(); ++i) {
    const StructRecord* sr = nullptr;
    if (id != kNoStr) {
      auto it = images_[i].structs.find(id);
      if (it != images_[i].structs.end()) {
        sr = &it->second;
      }
    }
    if (sr == nullptr) {
      out[i].insert(MismatchKind::kAbsent);
      continue;
    }
    if (baseline == nullptr) {
      baseline = sr;
    } else if (sr->fields != baseline->fields) {
      out[i].insert(MismatchKind::kChanged);
    }
  }
  return out;
}

std::vector<std::set<MismatchKind>> Dataset::CheckField(const std::string& struct_name,
                                                        const std::string& field_name,
                                                        const std::string& expected_type,
                                                        bool guarded) const {
  std::vector<std::set<MismatchKind>> out(images_.size());
  StrId sid = Lookup(struct_name);
  StrId fid = Lookup(field_name);
  StrId expected = expected_type.empty() ? kNoStr : Lookup(expected_type);
  bool expectation_fixed = !expected_type.empty();
  for (size_t i = 0; i < images_.size(); ++i) {
    const StrId* actual = nullptr;
    if (sid != kNoStr && fid != kNoStr) {
      auto it = images_[i].structs.find(sid);
      if (it != images_[i].structs.end()) {
        actual = it->second.FindField(fid);
      }
    }
    if (actual == nullptr) {
      if (!guarded) {
        out[i].insert(MismatchKind::kAbsent);
      }
      continue;
    }
    if (expected == kNoStr && !expectation_fixed) {
      expected = *actual;  // baseline fallback
    } else if (*actual != expected) {
      out[i].insert(MismatchKind::kChanged);
    }
  }
  return out;
}

std::vector<std::set<MismatchKind>> Dataset::CheckTracepoint(const std::string& event) const {
  std::vector<std::set<MismatchKind>> out(images_.size());
  StrId id = Lookup(event);
  const TracepointRecord* baseline = nullptr;
  for (size_t i = 0; i < images_.size(); ++i) {
    const TracepointRecord* tr = nullptr;
    if (id != kNoStr) {
      auto it = images_[i].tracepoints.find(id);
      if (it != images_[i].tracepoints.end()) {
        tr = &it->second;
      }
    }
    if (tr == nullptr) {
      out[i].insert(MismatchKind::kAbsent);
      continue;
    }
    if (baseline == nullptr) {
      baseline = tr;
    } else if (tr->func_params != baseline->func_params ||
               tr->event_fields != baseline->event_fields) {
      out[i].insert(MismatchKind::kChanged);
    }
  }
  return out;
}

std::vector<std::set<MismatchKind>> Dataset::CheckSyscall(const std::string& name) const {
  std::vector<std::set<MismatchKind>> out(images_.size());
  StrId id = Lookup(name);
  for (size_t i = 0; i < images_.size(); ++i) {
    if (id == kNoStr || images_[i].syscalls.count(id) == 0) {
      out[i].insert(MismatchKind::kAbsent);
    }
    // Compat (32-bit) traceability is a per-image property reported by the
    // configuration analysis (Table 5), not a per-dependency mismatch.
  }
  return out;
}

std::optional<std::string_view> Dataset::FuncDeclAt(const std::string& name,
                                                    size_t image_index) const {
  if (image_index >= images_.size()) {
    return std::nullopt;
  }
  StrId id = Lookup(name);
  if (id == kNoStr) {
    return std::nullopt;
  }
  auto it = images_[image_index].funcs.find(id);
  if (it == images_[image_index].funcs.end() || it->second.decl == kNoStr) {
    return std::nullopt;
  }
  return std::string_view(pool_[it->second.decl]);
}

std::optional<std::string_view> Dataset::FieldTypeAt(const std::string& struct_name,
                                                     const std::string& field_name,
                                                     size_t image_index) const {
  if (image_index >= images_.size()) {
    return std::nullopt;
  }
  StrId sid = Lookup(struct_name);
  StrId fid = Lookup(field_name);
  if (sid == kNoStr || fid == kNoStr) {
    return std::nullopt;
  }
  auto it = images_[image_index].structs.find(sid);
  if (it == images_[image_index].structs.end()) {
    return std::nullopt;
  }
  const StrId* type = it->second.FindField(fid);
  if (type == nullptr) {
    return std::nullopt;
  }
  return std::string_view(pool_[*type]);
}

SurfaceMeta Dataset::MetaAt(size_t image_index) const {
  return image_index < images_.size() ? images_[image_index].meta : SurfaceMeta{};
}

std::string Dataset::HealthSummaryAt(size_t image_index) const {
  return image_index < images_.size() ? images_[image_index].health.Summary() : std::string("clean");
}

bool Dataset::AnyDegradedAt(size_t image_index) const {
  return image_index < images_.size() && images_[image_index].AnyDegraded();
}

std::vector<std::set<MismatchKind>> Dataset::CheckRegisters() const {
  std::vector<std::set<MismatchKind>> out(images_.size());
  for (size_t i = 1; i < images_.size(); ++i) {
    if (images_[i].pt_regs_hash != images_[0].pt_regs_hash) {
      out[i].insert(MismatchKind::kChanged);
    }
  }
  return out;
}

}  // namespace depsurf
