#include "src/core/dataset_io.h"

#include "src/util/byte_buffer.h"
#include "src/util/leb128.h"

namespace depsurf {

namespace {

constexpr uint8_t kFlagExactSymbol = 1 << 0;
constexpr uint8_t kFlagFullInline = 1 << 1;
constexpr uint8_t kFlagSelective = 1 << 2;
constexpr uint8_t kFlagTransformed = 1 << 3;
constexpr uint8_t kFlagDuplicated = 1 << 4;
constexpr uint8_t kFlagCollided = 1 << 5;
constexpr uint8_t kFlagExternal = 1 << 6;

uint8_t PackStatus(const FunctionStatus& status) {
  uint8_t flags = 0;
  flags |= status.has_exact_symbol ? kFlagExactSymbol : 0;
  flags |= status.fully_inlined ? kFlagFullInline : 0;
  flags |= status.selectively_inlined ? kFlagSelective : 0;
  flags |= status.transformed ? kFlagTransformed : 0;
  flags |= status.duplicated ? kFlagDuplicated : 0;
  flags |= status.collided ? kFlagCollided : 0;
  flags |= status.external ? kFlagExternal : 0;
  return flags;
}

FunctionStatus UnpackStatus(uint8_t flags, std::string suffix) {
  FunctionStatus status;
  status.has_exact_symbol = (flags & kFlagExactSymbol) != 0;
  status.fully_inlined = (flags & kFlagFullInline) != 0;
  status.selectively_inlined = (flags & kFlagSelective) != 0;
  status.transformed = (flags & kFlagTransformed) != 0;
  status.duplicated = (flags & kFlagDuplicated) != 0;
  status.collided = (flags & kFlagCollided) != 0;
  status.external = (flags & kFlagExternal) != 0;
  status.transform_suffix = std::move(suffix);
  return status;
}

void WritePairs(ByteWriter& w, const std::vector<std::pair<StrId, StrId>>& pairs) {
  WriteUleb128(w, pairs.size());
  for (const auto& [a, b] : pairs) {
    WriteUleb128(w, a);
    WriteUleb128(w, b);
  }
}

Result<std::vector<std::pair<StrId, StrId>>> ReadPairs(ByteReader& r, size_t max_id) {
  DEPSURF_ASSIGN_OR_RETURN(count, ReadUleb128(r));
  if (count > r.remaining()) {
    return Error(ErrorCode::kMalformedData, "pair count beyond buffer");
  }
  std::vector<std::pair<StrId, StrId>> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DEPSURF_ASSIGN_OR_RETURN(a, ReadUleb128(r));
    DEPSURF_ASSIGN_OR_RETURN(b, ReadUleb128(r));
    if (a >= max_id || b >= max_id) {
      return Error(ErrorCode::kMalformedData, "string id out of range");
    }
    out.emplace_back(static_cast<StrId>(a), static_cast<StrId>(b));
  }
  return out;
}

}  // namespace

std::vector<uint8_t> SaveDataset(const Dataset& dataset) {
  ByteWriter w(Endian::kLittle);
  w.WriteU32(kDatasetMagic);
  WriteUleb128(w, dataset.pool_size());
  WriteUleb128(w, dataset.num_images());
  for (size_t i = 0; i < dataset.pool_size(); ++i) {
    w.WriteCString(dataset.StringAt(static_cast<StrId>(i)));
  }
  // Suffix strings are interned too; record a suffix id per function. Any
  // suffix seen must already be in the pool (AddImage interned names/types
  // only), so serialize suffixes inline as cstrings instead.
  for (const ImageRecord& image : dataset.images()) {
    w.WriteCString(image.label);
    w.WriteU16(static_cast<uint16_t>(image.meta.version_major));
    w.WriteU16(static_cast<uint16_t>(image.meta.version_minor));
    w.WriteCString(image.meta.flavor);
    w.WriteCString(image.meta.arch);
    w.WriteU8(static_cast<uint8_t>(image.meta.gcc_major));
    w.WriteU8(static_cast<uint8_t>(image.meta.pointer_size));
    w.WriteU8(image.meta.endian == Endian::kBig ? 1 : 0);
    w.WriteU32(image.meta.config_options);
    w.WriteU8(image.meta.compat_syscalls_traceable ? 1 : 0);
    w.WriteU64(image.pt_regs_hash);

    WriteUleb128(w, image.funcs.size());
    for (const auto& [name, record] : image.funcs) {
      WriteUleb128(w, name);
      w.WriteU8(PackStatus(record.status));
      w.WriteCString(record.status.transform_suffix);
      w.WriteU64(record.decl_hash);
      // kNoStr sentinel encodes as pool_size (never a valid id).
      WriteUleb128(w, record.decl == Dataset::kNoStr ? dataset.pool_size() : record.decl);
    }
    WriteUleb128(w, image.structs.size());
    for (const auto& [name, record] : image.structs) {
      WriteUleb128(w, name);
      WritePairs(w, record.fields);
    }
    WriteUleb128(w, image.tracepoints.size());
    for (const auto& [name, record] : image.tracepoints) {
      WriteUleb128(w, name);
      WritePairs(w, record.func_params);
      WritePairs(w, record.event_fields);
    }
    WriteUleb128(w, image.syscalls.size());
    for (StrId id : image.syscalls) {
      WriteUleb128(w, id);
    }

    // Salvage provenance: per-subsystem degradation states, then the
    // diagnostic ledger (messages inline; they are rare and unpooled).
    w.WriteU8(static_cast<uint8_t>(image.health.elf));
    w.WriteU8(static_cast<uint8_t>(image.health.dwarf));
    w.WriteU8(static_cast<uint8_t>(image.health.btf));
    w.WriteU8(static_cast<uint8_t>(image.health.tracepoint));
    w.WriteU8(static_cast<uint8_t>(image.health.syscall));
    const auto& entries = image.health.ledger.entries();
    WriteUleb128(w, entries.size());
    for (const DiagnosticEntry& entry : entries) {
      w.WriteU8(static_cast<uint8_t>(entry.severity));
      w.WriteU8(static_cast<uint8_t>(entry.subsystem));
      w.WriteU8(static_cast<uint8_t>(entry.code));
      w.WriteU8(entry.has_offset ? 1 : 0);
      w.WriteU64(entry.offset);
      w.WriteCString(entry.message);
    }
  }
  return w.TakeBytes();
}

Result<Dataset> LoadDataset(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes, Endian::kLittle);
  DEPSURF_ASSIGN_OR_RETURN(magic, r.ReadU32());
  if (magic != kDatasetMagic) {
    return Error(ErrorCode::kMalformedData, "not a depsurf dataset (bad magic)");
  }
  DEPSURF_ASSIGN_OR_RETURN(num_strings, ReadUleb128(r));
  DEPSURF_ASSIGN_OR_RETURN(num_images, ReadUleb128(r));
  if (num_strings > bytes.size() || num_images > bytes.size()) {
    return Error(ErrorCode::kMalformedData, "counts beyond buffer");
  }
  Dataset dataset;
  for (uint64_t i = 0; i < num_strings; ++i) {
    DEPSURF_ASSIGN_OR_RETURN(s, r.ReadCString());
    // Fresh interning assigns sequential ids, so saved ids stay valid.
    StrId id = dataset.Intern(s);
    if (id != i) {
      return Error(ErrorCode::kMalformedData, "duplicate string in pool");
    }
  }
  dataset.FlushInternMetrics();
  for (uint64_t image_index = 0; image_index < num_images; ++image_index) {
    ImageRecord image;
    DEPSURF_ASSIGN_OR_RETURN(label, r.ReadCString());
    image.label = std::move(label);
    DEPSURF_ASSIGN_OR_RETURN(major, r.ReadU16());
    image.meta.version_major = major;
    DEPSURF_ASSIGN_OR_RETURN(minor, r.ReadU16());
    image.meta.version_minor = minor;
    DEPSURF_ASSIGN_OR_RETURN(flavor, r.ReadCString());
    image.meta.flavor = std::move(flavor);
    DEPSURF_ASSIGN_OR_RETURN(arch, r.ReadCString());
    image.meta.arch = std::move(arch);
    DEPSURF_ASSIGN_OR_RETURN(gcc, r.ReadU8());
    image.meta.gcc_major = gcc;
    DEPSURF_ASSIGN_OR_RETURN(pointer_size, r.ReadU8());
    image.meta.pointer_size = pointer_size;
    DEPSURF_ASSIGN_OR_RETURN(endian, r.ReadU8());
    image.meta.endian = endian == 1 ? Endian::kBig : Endian::kLittle;
    DEPSURF_ASSIGN_OR_RETURN(config, r.ReadU32());
    image.meta.config_options = config;
    DEPSURF_ASSIGN_OR_RETURN(compat, r.ReadU8());
    image.meta.compat_syscalls_traceable = compat != 0;
    image.compat_syscalls_traceable = image.meta.compat_syscalls_traceable;
    DEPSURF_ASSIGN_OR_RETURN(pt_regs_hash, r.ReadU64());
    image.pt_regs_hash = pt_regs_hash;

    DEPSURF_ASSIGN_OR_RETURN(num_funcs, ReadUleb128(r));
    if (num_funcs > r.remaining()) {
      return Error(ErrorCode::kMalformedData, "function count beyond buffer");
    }
    for (uint64_t i = 0; i < num_funcs; ++i) {
      DEPSURF_ASSIGN_OR_RETURN(name, ReadUleb128(r));
      if (name >= num_strings) {
        return Error(ErrorCode::kMalformedData, "function name id out of range");
      }
      DEPSURF_ASSIGN_OR_RETURN(flags, r.ReadU8());
      DEPSURF_ASSIGN_OR_RETURN(suffix, r.ReadCString());
      DEPSURF_ASSIGN_OR_RETURN(decl_hash, r.ReadU64());
      DEPSURF_ASSIGN_OR_RETURN(decl, ReadUleb128(r));
      if (decl > num_strings) {
        return Error(ErrorCode::kMalformedData, "decl id out of range");
      }
      FuncRecord record;
      record.status = UnpackStatus(flags, std::move(suffix));
      record.decl_hash = decl_hash;
      record.decl = decl == num_strings ? Dataset::kNoStr : static_cast<StrId>(decl);
      image.funcs.emplace(static_cast<StrId>(name), std::move(record));
    }
    DEPSURF_ASSIGN_OR_RETURN(num_structs, ReadUleb128(r));
    if (num_structs > r.remaining()) {
      return Error(ErrorCode::kMalformedData, "struct count beyond buffer");
    }
    for (uint64_t i = 0; i < num_structs; ++i) {
      DEPSURF_ASSIGN_OR_RETURN(name, ReadUleb128(r));
      if (name >= num_strings) {
        return Error(ErrorCode::kMalformedData, "struct name id out of range");
      }
      StructRecord record;
      DEPSURF_ASSIGN_OR_RETURN(fields, ReadPairs(r, num_strings));
      record.fields = std::move(fields);
      image.structs.emplace(static_cast<StrId>(name), std::move(record));
    }
    DEPSURF_ASSIGN_OR_RETURN(num_tracepoints, ReadUleb128(r));
    if (num_tracepoints > r.remaining()) {
      return Error(ErrorCode::kMalformedData, "tracepoint count beyond buffer");
    }
    for (uint64_t i = 0; i < num_tracepoints; ++i) {
      DEPSURF_ASSIGN_OR_RETURN(name, ReadUleb128(r));
      if (name >= num_strings) {
        return Error(ErrorCode::kMalformedData, "tracepoint name id out of range");
      }
      TracepointRecord record;
      DEPSURF_ASSIGN_OR_RETURN(params, ReadPairs(r, num_strings));
      record.func_params = std::move(params);
      DEPSURF_ASSIGN_OR_RETURN(fields, ReadPairs(r, num_strings));
      record.event_fields = std::move(fields);
      image.tracepoints.emplace(static_cast<StrId>(name), std::move(record));
    }
    DEPSURF_ASSIGN_OR_RETURN(num_syscalls, ReadUleb128(r));
    if (num_syscalls > r.remaining()) {
      return Error(ErrorCode::kMalformedData, "syscall count beyond buffer");
    }
    for (uint64_t i = 0; i < num_syscalls; ++i) {
      DEPSURF_ASSIGN_OR_RETURN(id, ReadUleb128(r));
      if (id >= num_strings) {
        return Error(ErrorCode::kMalformedData, "syscall id out of range");
      }
      image.syscalls.insert(static_cast<StrId>(id));
    }

    auto read_state = [&r]() -> Result<DegradationState> {
      DEPSURF_ASSIGN_OR_RETURN(raw, r.ReadU8());
      if (raw > static_cast<uint8_t>(DegradationState::kMissing)) {
        return Error(ErrorCode::kMalformedData, "bad degradation state");
      }
      return static_cast<DegradationState>(raw);
    };
    DEPSURF_ASSIGN_OR_RETURN(elf_state, read_state());
    image.health.elf = elf_state;
    DEPSURF_ASSIGN_OR_RETURN(dwarf_state, read_state());
    image.health.dwarf = dwarf_state;
    DEPSURF_ASSIGN_OR_RETURN(btf_state, read_state());
    image.health.btf = btf_state;
    DEPSURF_ASSIGN_OR_RETURN(tracepoint_state, read_state());
    image.health.tracepoint = tracepoint_state;
    DEPSURF_ASSIGN_OR_RETURN(syscall_state, read_state());
    image.health.syscall = syscall_state;
    DEPSURF_ASSIGN_OR_RETURN(num_diags, ReadUleb128(r));
    if (num_diags > r.remaining()) {
      return Error(ErrorCode::kMalformedData, "diagnostic count beyond buffer");
    }
    for (uint64_t i = 0; i < num_diags; ++i) {
      DEPSURF_ASSIGN_OR_RETURN(severity, r.ReadU8());
      if (severity > static_cast<uint8_t>(DiagSeverity::kFatal)) {
        return Error(ErrorCode::kMalformedData, "bad diagnostic severity");
      }
      DEPSURF_ASSIGN_OR_RETURN(subsystem, r.ReadU8());
      if (subsystem > static_cast<uint8_t>(DiagSubsystem::kBpf)) {
        return Error(ErrorCode::kMalformedData, "bad diagnostic subsystem");
      }
      DEPSURF_ASSIGN_OR_RETURN(code, r.ReadU8());
      if (code > static_cast<uint8_t>(ErrorCode::kIoError)) {
        return Error(ErrorCode::kMalformedData, "bad diagnostic error code");
      }
      DEPSURF_ASSIGN_OR_RETURN(has_offset, r.ReadU8());
      DEPSURF_ASSIGN_OR_RETURN(offset, r.ReadU64());
      DEPSURF_ASSIGN_OR_RETURN(message, r.ReadCString());
      if (has_offset != 0) {
        image.health.ledger.AddAt(static_cast<DiagSeverity>(severity),
                                  static_cast<DiagSubsystem>(subsystem),
                                  static_cast<ErrorCode>(code), offset,
                                  std::move(message));
      } else {
        image.health.ledger.Add(static_cast<DiagSeverity>(severity),
                                static_cast<DiagSubsystem>(subsystem),
                                static_cast<ErrorCode>(code), std::move(message));
      }
    }
    dataset.RestoreImage(std::move(image));
  }
  return dataset;
}

}  // namespace depsurf
