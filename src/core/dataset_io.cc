#include "src/core/dataset_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "src/util/byte_buffer.h"
#include "src/util/leb128.h"

namespace depsurf {

namespace {

constexpr uint8_t kFlagExactSymbol = 1 << 0;
constexpr uint8_t kFlagFullInline = 1 << 1;
constexpr uint8_t kFlagSelective = 1 << 2;
constexpr uint8_t kFlagTransformed = 1 << 3;
constexpr uint8_t kFlagDuplicated = 1 << 4;
constexpr uint8_t kFlagCollided = 1 << 5;
constexpr uint8_t kFlagExternal = 1 << 6;

uint8_t PackStatus(const FunctionStatus& status) {
  uint8_t flags = 0;
  flags |= status.has_exact_symbol ? kFlagExactSymbol : 0;
  flags |= status.fully_inlined ? kFlagFullInline : 0;
  flags |= status.selectively_inlined ? kFlagSelective : 0;
  flags |= status.transformed ? kFlagTransformed : 0;
  flags |= status.duplicated ? kFlagDuplicated : 0;
  flags |= status.collided ? kFlagCollided : 0;
  flags |= status.external ? kFlagExternal : 0;
  return flags;
}

FunctionStatus UnpackStatus(uint8_t flags, std::string suffix) {
  FunctionStatus status;
  status.has_exact_symbol = (flags & kFlagExactSymbol) != 0;
  status.fully_inlined = (flags & kFlagFullInline) != 0;
  status.selectively_inlined = (flags & kFlagSelective) != 0;
  status.transformed = (flags & kFlagTransformed) != 0;
  status.duplicated = (flags & kFlagDuplicated) != 0;
  status.collided = (flags & kFlagCollided) != 0;
  status.external = (flags & kFlagExternal) != 0;
  status.transform_suffix = std::move(suffix);
  return status;
}

void WritePairs(ByteWriter& w, const std::vector<std::pair<StrId, StrId>>& pairs) {
  WriteUleb128(w, pairs.size());
  for (const auto& [a, b] : pairs) {
    WriteUleb128(w, a);
    WriteUleb128(w, b);
  }
}

Result<std::vector<std::pair<StrId, StrId>>> ReadPairs(ByteReader& r, size_t max_id) {
  DEPSURF_ASSIGN_OR_RETURN(count, ReadUleb128(r));
  if (count > r.remaining()) {
    return Error(ErrorCode::kMalformedData, "pair count beyond buffer");
  }
  std::vector<std::pair<StrId, StrId>> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DEPSURF_ASSIGN_OR_RETURN(a, ReadUleb128(r));
    DEPSURF_ASSIGN_OR_RETURN(b, ReadUleb128(r));
    if (a >= max_id || b >= max_id) {
      return Error(ErrorCode::kMalformedData, "string id out of range");
    }
    out.emplace_back(static_cast<StrId>(a), static_cast<StrId>(b));
  }
  return out;
}

}  // namespace

std::vector<uint8_t> SaveDataset(const Dataset& dataset) {
  ByteWriter w(Endian::kLittle);
  w.WriteU32(kDatasetMagic);
  WriteUleb128(w, dataset.pool_size());
  WriteUleb128(w, dataset.num_images());
  for (size_t i = 0; i < dataset.pool_size(); ++i) {
    w.WriteCString(dataset.StringAt(static_cast<StrId>(i)));
  }
  // Suffix strings are interned too; record a suffix id per function. Any
  // suffix seen must already be in the pool (AddImage interned names/types
  // only), so serialize suffixes inline as cstrings instead.
  for (const ImageRecord& image : dataset.images()) {
    w.WriteCString(image.label);
    w.WriteU16(static_cast<uint16_t>(image.meta.version_major));
    w.WriteU16(static_cast<uint16_t>(image.meta.version_minor));
    w.WriteCString(image.meta.flavor);
    w.WriteCString(image.meta.arch);
    w.WriteU8(static_cast<uint8_t>(image.meta.gcc_major));
    w.WriteU8(static_cast<uint8_t>(image.meta.pointer_size));
    w.WriteU8(image.meta.endian == Endian::kBig ? 1 : 0);
    w.WriteU32(image.meta.config_options);
    w.WriteU8(image.meta.compat_syscalls_traceable ? 1 : 0);
    w.WriteU64(image.pt_regs_hash);

    WriteUleb128(w, image.funcs.size());
    for (const auto& [name, record] : image.funcs) {
      WriteUleb128(w, name);
      w.WriteU8(PackStatus(record.status));
      w.WriteCString(record.status.transform_suffix);
      w.WriteU64(record.decl_hash);
      // kNoStr sentinel encodes as pool_size (never a valid id).
      WriteUleb128(w, record.decl == Dataset::kNoStr ? dataset.pool_size() : record.decl);
    }
    WriteUleb128(w, image.structs.size());
    for (const auto& [name, record] : image.structs) {
      WriteUleb128(w, name);
      WritePairs(w, record.fields);
    }
    WriteUleb128(w, image.tracepoints.size());
    for (const auto& [name, record] : image.tracepoints) {
      WriteUleb128(w, name);
      WritePairs(w, record.func_params);
      WritePairs(w, record.event_fields);
    }
    WriteUleb128(w, image.syscalls.size());
    for (StrId id : image.syscalls) {
      WriteUleb128(w, id);
    }

    // Salvage provenance: per-subsystem degradation states, then the
    // diagnostic ledger (messages inline; they are rare and unpooled).
    w.WriteU8(static_cast<uint8_t>(image.health.elf));
    w.WriteU8(static_cast<uint8_t>(image.health.dwarf));
    w.WriteU8(static_cast<uint8_t>(image.health.btf));
    w.WriteU8(static_cast<uint8_t>(image.health.tracepoint));
    w.WriteU8(static_cast<uint8_t>(image.health.syscall));
    const auto& entries = image.health.ledger.entries();
    WriteUleb128(w, entries.size());
    for (const DiagnosticEntry& entry : entries) {
      w.WriteU8(static_cast<uint8_t>(entry.severity));
      w.WriteU8(static_cast<uint8_t>(entry.subsystem));
      w.WriteU8(static_cast<uint8_t>(entry.code));
      w.WriteU8(entry.has_offset ? 1 : 0);
      w.WriteU64(entry.offset);
      w.WriteCString(entry.message);
    }
  }
  return w.TakeBytes();
}

Result<Dataset> LoadDataset(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes, Endian::kLittle);
  DEPSURF_ASSIGN_OR_RETURN(magic, r.ReadU32());
  if (magic != kDatasetMagic) {
    return Error(ErrorCode::kMalformedData, "not a depsurf dataset (bad magic)");
  }
  DEPSURF_ASSIGN_OR_RETURN(num_strings, ReadUleb128(r));
  DEPSURF_ASSIGN_OR_RETURN(num_images, ReadUleb128(r));
  if (num_strings > bytes.size() || num_images > bytes.size()) {
    return Error(ErrorCode::kMalformedData, "counts beyond buffer");
  }
  Dataset dataset;
  for (uint64_t i = 0; i < num_strings; ++i) {
    DEPSURF_ASSIGN_OR_RETURN(s, r.ReadCString());
    // Fresh interning assigns sequential ids, so saved ids stay valid.
    StrId id = dataset.Intern(s);
    if (id != i) {
      return Error(ErrorCode::kMalformedData, "duplicate string in pool");
    }
  }
  dataset.FlushInternMetrics();
  for (uint64_t image_index = 0; image_index < num_images; ++image_index) {
    ImageRecord image;
    DEPSURF_ASSIGN_OR_RETURN(label, r.ReadCString());
    image.label = std::move(label);
    DEPSURF_ASSIGN_OR_RETURN(major, r.ReadU16());
    image.meta.version_major = major;
    DEPSURF_ASSIGN_OR_RETURN(minor, r.ReadU16());
    image.meta.version_minor = minor;
    DEPSURF_ASSIGN_OR_RETURN(flavor, r.ReadCString());
    image.meta.flavor = std::move(flavor);
    DEPSURF_ASSIGN_OR_RETURN(arch, r.ReadCString());
    image.meta.arch = std::move(arch);
    DEPSURF_ASSIGN_OR_RETURN(gcc, r.ReadU8());
    image.meta.gcc_major = gcc;
    DEPSURF_ASSIGN_OR_RETURN(pointer_size, r.ReadU8());
    image.meta.pointer_size = pointer_size;
    DEPSURF_ASSIGN_OR_RETURN(endian, r.ReadU8());
    image.meta.endian = endian == 1 ? Endian::kBig : Endian::kLittle;
    DEPSURF_ASSIGN_OR_RETURN(config, r.ReadU32());
    image.meta.config_options = config;
    DEPSURF_ASSIGN_OR_RETURN(compat, r.ReadU8());
    image.meta.compat_syscalls_traceable = compat != 0;
    image.compat_syscalls_traceable = image.meta.compat_syscalls_traceable;
    DEPSURF_ASSIGN_OR_RETURN(pt_regs_hash, r.ReadU64());
    image.pt_regs_hash = pt_regs_hash;

    DEPSURF_ASSIGN_OR_RETURN(num_funcs, ReadUleb128(r));
    if (num_funcs > r.remaining()) {
      return Error(ErrorCode::kMalformedData, "function count beyond buffer");
    }
    for (uint64_t i = 0; i < num_funcs; ++i) {
      DEPSURF_ASSIGN_OR_RETURN(name, ReadUleb128(r));
      if (name >= num_strings) {
        return Error(ErrorCode::kMalformedData, "function name id out of range");
      }
      DEPSURF_ASSIGN_OR_RETURN(flags, r.ReadU8());
      DEPSURF_ASSIGN_OR_RETURN(suffix, r.ReadCString());
      DEPSURF_ASSIGN_OR_RETURN(decl_hash, r.ReadU64());
      DEPSURF_ASSIGN_OR_RETURN(decl, ReadUleb128(r));
      if (decl > num_strings) {
        return Error(ErrorCode::kMalformedData, "decl id out of range");
      }
      FuncRecord record;
      record.status = UnpackStatus(flags, std::move(suffix));
      record.decl_hash = decl_hash;
      record.decl = decl == num_strings ? Dataset::kNoStr : static_cast<StrId>(decl);
      image.funcs.emplace(static_cast<StrId>(name), std::move(record));
    }
    DEPSURF_ASSIGN_OR_RETURN(num_structs, ReadUleb128(r));
    if (num_structs > r.remaining()) {
      return Error(ErrorCode::kMalformedData, "struct count beyond buffer");
    }
    for (uint64_t i = 0; i < num_structs; ++i) {
      DEPSURF_ASSIGN_OR_RETURN(name, ReadUleb128(r));
      if (name >= num_strings) {
        return Error(ErrorCode::kMalformedData, "struct name id out of range");
      }
      StructRecord record;
      DEPSURF_ASSIGN_OR_RETURN(fields, ReadPairs(r, num_strings));
      record.fields = std::move(fields);
      image.structs.emplace(static_cast<StrId>(name), std::move(record));
    }
    DEPSURF_ASSIGN_OR_RETURN(num_tracepoints, ReadUleb128(r));
    if (num_tracepoints > r.remaining()) {
      return Error(ErrorCode::kMalformedData, "tracepoint count beyond buffer");
    }
    for (uint64_t i = 0; i < num_tracepoints; ++i) {
      DEPSURF_ASSIGN_OR_RETURN(name, ReadUleb128(r));
      if (name >= num_strings) {
        return Error(ErrorCode::kMalformedData, "tracepoint name id out of range");
      }
      TracepointRecord record;
      DEPSURF_ASSIGN_OR_RETURN(params, ReadPairs(r, num_strings));
      record.func_params = std::move(params);
      DEPSURF_ASSIGN_OR_RETURN(fields, ReadPairs(r, num_strings));
      record.event_fields = std::move(fields);
      image.tracepoints.emplace(static_cast<StrId>(name), std::move(record));
    }
    DEPSURF_ASSIGN_OR_RETURN(num_syscalls, ReadUleb128(r));
    if (num_syscalls > r.remaining()) {
      return Error(ErrorCode::kMalformedData, "syscall count beyond buffer");
    }
    for (uint64_t i = 0; i < num_syscalls; ++i) {
      DEPSURF_ASSIGN_OR_RETURN(id, ReadUleb128(r));
      if (id >= num_strings) {
        return Error(ErrorCode::kMalformedData, "syscall id out of range");
      }
      image.syscalls.insert(static_cast<StrId>(id));
    }

    auto read_state = [&r]() -> Result<DegradationState> {
      DEPSURF_ASSIGN_OR_RETURN(raw, r.ReadU8());
      if (raw > static_cast<uint8_t>(DegradationState::kMissing)) {
        return Error(ErrorCode::kMalformedData, "bad degradation state");
      }
      return static_cast<DegradationState>(raw);
    };
    DEPSURF_ASSIGN_OR_RETURN(elf_state, read_state());
    image.health.elf = elf_state;
    DEPSURF_ASSIGN_OR_RETURN(dwarf_state, read_state());
    image.health.dwarf = dwarf_state;
    DEPSURF_ASSIGN_OR_RETURN(btf_state, read_state());
    image.health.btf = btf_state;
    DEPSURF_ASSIGN_OR_RETURN(tracepoint_state, read_state());
    image.health.tracepoint = tracepoint_state;
    DEPSURF_ASSIGN_OR_RETURN(syscall_state, read_state());
    image.health.syscall = syscall_state;
    DEPSURF_ASSIGN_OR_RETURN(num_diags, ReadUleb128(r));
    if (num_diags > r.remaining()) {
      return Error(ErrorCode::kMalformedData, "diagnostic count beyond buffer");
    }
    for (uint64_t i = 0; i < num_diags; ++i) {
      DEPSURF_ASSIGN_OR_RETURN(severity, r.ReadU8());
      if (severity > static_cast<uint8_t>(DiagSeverity::kFatal)) {
        return Error(ErrorCode::kMalformedData, "bad diagnostic severity");
      }
      DEPSURF_ASSIGN_OR_RETURN(subsystem, r.ReadU8());
      if (subsystem > static_cast<uint8_t>(DiagSubsystem::kBpf)) {
        return Error(ErrorCode::kMalformedData, "bad diagnostic subsystem");
      }
      DEPSURF_ASSIGN_OR_RETURN(code, r.ReadU8());
      if (code > static_cast<uint8_t>(ErrorCode::kIoError)) {
        return Error(ErrorCode::kMalformedData, "bad diagnostic error code");
      }
      DEPSURF_ASSIGN_OR_RETURN(has_offset, r.ReadU8());
      DEPSURF_ASSIGN_OR_RETURN(offset, r.ReadU64());
      DEPSURF_ASSIGN_OR_RETURN(message, r.ReadCString());
      if (has_offset != 0) {
        image.health.ledger.AddAt(static_cast<DiagSeverity>(severity),
                                  static_cast<DiagSubsystem>(subsystem),
                                  static_cast<ErrorCode>(code), offset,
                                  std::move(message));
      } else {
        image.health.ledger.Add(static_cast<DiagSeverity>(severity),
                                static_cast<DiagSubsystem>(subsystem),
                                static_cast<ErrorCode>(code), std::move(message));
      }
    }
    dataset.RestoreImage(std::move(image));
  }
  return dataset;
}

// ---------------------------------------------------------------------------
// `.dds` v2: page-aligned sections + flat sorted record arrays (mmap path).
// ---------------------------------------------------------------------------

namespace {

// Section kinds, also the section-table order. sections_ is indexed by kind.
constexpr uint32_t kSecStringOffsets = 1;  // u64[string_count + 1]
constexpr uint32_t kSecStringBlob = 2;     // NUL-terminated string bodies
constexpr uint32_t kSecStringSorted = 3;   // u32[string_count], lexicographic
constexpr uint32_t kSecImages = 4;         // fixed 88-byte image headers
constexpr uint32_t kSecFuncs = 5;          // 24-byte entries, sorted by name
constexpr uint32_t kSecStructs = 6;        // 12-byte entries, sorted by name
constexpr uint32_t kSecTracepoints = 7;    // 20-byte entries, sorted by name
constexpr uint32_t kSecSyscalls = 8;       // u32 name ids, ascending
constexpr uint32_t kSecPairs = 9;          // (u32, u32) flattened field lists
constexpr uint32_t kSecDiags = 10;         // 16-byte ledger entries
constexpr uint32_t kV2SectionCount = 10;

constexpr size_t kV2HeaderSize = 40;
constexpr size_t kV2SectionEntrySize = 24;
constexpr size_t kV2ImageHeaderSize = 88;
constexpr size_t kV2FuncEntrySize = 24;
constexpr size_t kV2StructEntrySize = 12;
constexpr size_t kV2TracepointEntrySize = 20;
constexpr size_t kV2PairSize = 8;
constexpr size_t kV2DiagEntrySize = 16;

// Offsets of the begin/count range pairs inside an image header.
constexpr size_t kImgFuncRange = 40;
constexpr size_t kImgStructRange = 48;
constexpr size_t kImgTracepointRange = 56;
constexpr size_t kImgSyscallRange = 64;
constexpr size_t kImgDiagRange = 72;

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) | static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

DegradationState ClampState(uint8_t raw) {
  return raw > static_cast<uint8_t>(DegradationState::kMissing)
             ? DegradationState::kClean
             : static_cast<DegradationState>(raw);
}

SurfaceHealth HealthFromHeader(const uint8_t* img) {
  SurfaceHealth health;
  health.elf = ClampState(img[32]);
  health.dwarf = ClampState(img[33]);
  health.btf = ClampState(img[34]);
  health.tracepoint = ClampState(img[35]);
  health.syscall = ClampState(img[36]);
  return health;
}

}  // namespace

std::vector<uint8_t> SaveDatasetV2(const Dataset& dataset) {
  // v2 pool = the v1 pool with every id preserved, then transform suffixes
  // and diagnostic messages appended in first-use order. Keeping v1 ids
  // intact is what makes `dataset migrate` byte-deterministic and lets the
  // two formats share query semantics (ids compare within the same pool).
  std::vector<std::string> pool;
  std::unordered_map<std::string, uint32_t> index;
  pool.reserve(dataset.pool_size());
  for (size_t i = 0; i < dataset.pool_size(); ++i) {
    pool.push_back(dataset.StringAt(static_cast<StrId>(i)));
    index.emplace(pool.back(), static_cast<uint32_t>(i));
  }
  auto intern = [&pool, &index](const std::string& s) -> uint32_t {
    auto it = index.find(s);
    if (it != index.end()) {
      return it->second;
    }
    uint32_t id = static_cast<uint32_t>(pool.size());
    pool.push_back(s);
    index.emplace(s, id);
    return id;
  };

  ByteWriter images_w(Endian::kLittle);
  ByteWriter funcs_w(Endian::kLittle);
  ByteWriter structs_w(Endian::kLittle);
  ByteWriter tps_w(Endian::kLittle);
  ByteWriter sys_w(Endian::kLittle);
  ByteWriter pairs_w(Endian::kLittle);
  ByteWriter diags_w(Endian::kLittle);
  uint32_t func_cursor = 0;
  uint32_t struct_cursor = 0;
  uint32_t tp_cursor = 0;
  uint32_t sys_cursor = 0;
  uint32_t pair_cursor = 0;
  uint32_t diag_cursor = 0;
  auto write_pairs = [&pairs_w, &pair_cursor](const std::vector<std::pair<StrId, StrId>>& pairs) {
    uint32_t begin = pair_cursor;
    for (const auto& [a, b] : pairs) {
      pairs_w.WriteU32(a);
      pairs_w.WriteU32(b);
    }
    pair_cursor += static_cast<uint32_t>(pairs.size());
    return begin;
  };

  for (const ImageRecord& image : dataset.images()) {
    uint32_t func_begin = func_cursor;
    // std::map iteration is ascending by name id: exactly the order the
    // mmap-side binary search requires.
    for (const auto& [name, record] : image.funcs) {
      funcs_w.WriteU32(name);
      funcs_w.WriteU32(record.decl);  // Dataset::kNoStr doubles as "no decl"
      funcs_w.WriteU64(record.decl_hash);
      funcs_w.WriteU32(record.status.transform_suffix.empty()
                           ? Dataset::kNoStr
                           : intern(record.status.transform_suffix));
      funcs_w.WriteU8(PackStatus(record.status));
      funcs_w.WriteZeros(3);
      ++func_cursor;
    }
    uint32_t struct_begin = struct_cursor;
    for (const auto& [name, record] : image.structs) {
      structs_w.WriteU32(name);
      structs_w.WriteU32(write_pairs(record.fields));
      structs_w.WriteU32(static_cast<uint32_t>(record.fields.size()));
      ++struct_cursor;
    }
    uint32_t tp_begin = tp_cursor;
    for (const auto& [name, record] : image.tracepoints) {
      tps_w.WriteU32(name);
      tps_w.WriteU32(write_pairs(record.func_params));
      tps_w.WriteU32(static_cast<uint32_t>(record.func_params.size()));
      tps_w.WriteU32(write_pairs(record.event_fields));
      tps_w.WriteU32(static_cast<uint32_t>(record.event_fields.size()));
      ++tp_cursor;
    }
    uint32_t sys_begin = sys_cursor;
    for (StrId id : image.syscalls) {
      sys_w.WriteU32(id);
      ++sys_cursor;
    }
    uint32_t diag_begin = diag_cursor;
    for (const DiagnosticEntry& entry : image.health.ledger.entries()) {
      diags_w.WriteU32(intern(entry.message));
      diags_w.WriteU8(static_cast<uint8_t>(entry.severity));
      diags_w.WriteU8(static_cast<uint8_t>(entry.subsystem));
      diags_w.WriteU8(static_cast<uint8_t>(entry.code));
      diags_w.WriteU8(entry.has_offset ? 1 : 0);
      diags_w.WriteU64(entry.offset);
      ++diag_cursor;
    }

    images_w.WriteU32(intern(image.label));
    images_w.WriteU32(intern(image.meta.flavor));
    images_w.WriteU32(intern(image.meta.arch));
    images_w.WriteU16(static_cast<uint16_t>(image.meta.version_major));
    images_w.WriteU16(static_cast<uint16_t>(image.meta.version_minor));
    images_w.WriteU8(static_cast<uint8_t>(image.meta.gcc_major));
    images_w.WriteU8(static_cast<uint8_t>(image.meta.pointer_size));
    images_w.WriteU8(image.meta.endian == Endian::kBig ? 1 : 0);
    images_w.WriteU8(image.meta.compat_syscalls_traceable ? 1 : 0);
    images_w.WriteU32(image.meta.config_options);
    images_w.WriteU64(image.pt_regs_hash);
    images_w.WriteU8(static_cast<uint8_t>(image.health.elf));
    images_w.WriteU8(static_cast<uint8_t>(image.health.dwarf));
    images_w.WriteU8(static_cast<uint8_t>(image.health.btf));
    images_w.WriteU8(static_cast<uint8_t>(image.health.tracepoint));
    images_w.WriteU8(static_cast<uint8_t>(image.health.syscall));
    images_w.WriteZeros(3);
    images_w.WriteU32(func_begin);
    images_w.WriteU32(func_cursor - func_begin);
    images_w.WriteU32(struct_begin);
    images_w.WriteU32(struct_cursor - struct_begin);
    images_w.WriteU32(tp_begin);
    images_w.WriteU32(tp_cursor - tp_begin);
    images_w.WriteU32(sys_begin);
    images_w.WriteU32(sys_cursor - sys_begin);
    images_w.WriteU32(diag_begin);
    images_w.WriteU32(diag_cursor - diag_begin);
    images_w.WriteU64(0);  // reserved
  }

  // String table: cumulative offsets + NUL-terminated blob + sorted index.
  ByteWriter str_offsets_w(Endian::kLittle);
  ByteWriter str_blob_w(Endian::kLittle);
  ByteWriter str_sorted_w(Endian::kLittle);
  uint64_t blob_cursor = 0;
  for (const std::string& s : pool) {
    str_offsets_w.WriteU64(blob_cursor);
    str_blob_w.WriteCString(s);
    blob_cursor += s.size() + 1;
  }
  str_offsets_w.WriteU64(blob_cursor);
  std::vector<uint32_t> sorted_ids(pool.size());
  for (uint32_t i = 0; i < sorted_ids.size(); ++i) {
    sorted_ids[i] = i;
  }
  std::sort(sorted_ids.begin(), sorted_ids.end(),
            [&pool](uint32_t a, uint32_t b) { return pool[a] < pool[b]; });
  for (uint32_t id : sorted_ids) {
    str_sorted_w.WriteU32(id);
  }

  struct SectionPayload {
    uint32_t kind;
    std::vector<uint8_t> bytes;
    uint64_t offset = 0;
  };
  SectionPayload payloads[kV2SectionCount] = {
      {kSecStringOffsets, str_offsets_w.TakeBytes()},
      {kSecStringBlob, str_blob_w.TakeBytes()},
      {kSecStringSorted, str_sorted_w.TakeBytes()},
      {kSecImages, images_w.TakeBytes()},
      {kSecFuncs, funcs_w.TakeBytes()},
      {kSecStructs, structs_w.TakeBytes()},
      {kSecTracepoints, tps_w.TakeBytes()},
      {kSecSyscalls, sys_w.TakeBytes()},
      {kSecPairs, pairs_w.TakeBytes()},
      {kSecDiags, diags_w.TakeBytes()},
  };
  uint64_t cursor = kV2HeaderSize + kV2SectionCount * kV2SectionEntrySize;
  for (SectionPayload& payload : payloads) {
    cursor = (cursor + kDatasetV2PageSize - 1) / kDatasetV2PageSize * kDatasetV2PageSize;
    payload.offset = cursor;
    cursor += payload.bytes.size();
  }
  uint64_t file_size = cursor;

  ByteWriter out(Endian::kLittle);
  out.WriteU32(kDatasetMagicV2);
  out.WriteU32(2);  // version
  out.WriteU32(kDatasetV2PageSize);
  out.WriteU32(kV2SectionCount);
  out.WriteU64(file_size);
  out.WriteU32(static_cast<uint32_t>(dataset.num_images()));
  out.WriteU32(static_cast<uint32_t>(pool.size()));
  out.WriteU64(0);  // reserved
  for (const SectionPayload& payload : payloads) {
    out.WriteU32(payload.kind);
    out.WriteU32(0);  // reserved
    out.WriteU64(payload.offset);
    out.WriteU64(payload.bytes.size());
  }
  for (const SectionPayload& payload : payloads) {
    out.WriteZeros(payload.offset - out.size());
    out.WriteBytes(payload.bytes.data(), payload.bytes.size());
  }
  return out.TakeBytes();
}

Result<int> DatasetFormatVersion(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4) {
    return Error(ErrorCode::kMalformedData, "not a depsurf dataset (too short)");
  }
  uint32_t magic = LoadU32(bytes.data());
  if (magic == kDatasetMagic) {
    return 1;
  }
  if (magic == kDatasetMagicV2) {
    return 2;
  }
  return Error(ErrorCode::kMalformedData, "not a depsurf dataset (bad magic)");
}

Result<Dataset> LoadAnyDataset(const std::vector<uint8_t>& bytes) {
  DEPSURF_ASSIGN_OR_RETURN(format, DatasetFormatVersion(bytes));
  return format == 2 ? LoadDatasetV2(bytes) : LoadDataset(bytes);
}

// ---------------------------------------------------------------------------
// MmapDataset
// ---------------------------------------------------------------------------

Status MmapDataset::Attach(const uint8_t* data, size_t size) {
  data_ = data;
  size_ = size;
  if (size < kV2HeaderSize) {
    return Status(ErrorCode::kMalformedData, "v2 dataset shorter than its header");
  }
  if (LoadU32(data) != kDatasetMagicV2) {
    return Status(ErrorCode::kMalformedData, "not a v2 depsurf dataset (bad magic)");
  }
  if (LoadU32(data + 4) != 2) {
    return Status(ErrorCode::kMalformedData, "unsupported v2 dataset version");
  }
  if (LoadU32(data + 8) != kDatasetV2PageSize) {
    return Status(ErrorCode::kMalformedData, "v2 dataset has unexpected page size");
  }
  if (LoadU32(data + 12) != kV2SectionCount) {
    return Status(ErrorCode::kMalformedData, "v2 dataset has unexpected section count");
  }
  // file_size doubles as the truncation oracle: a file cut short (or a
  // header bit flip) fails here before any record is trusted.
  if (LoadU64(data + 16) != size) {
    return Status(ErrorCode::kMalformedData, "v2 dataset truncated (recorded size mismatch)");
  }
  image_count_ = LoadU32(data + 24);
  string_count_ = LoadU32(data + 28);
  size_t table_end = kV2HeaderSize + kV2SectionCount * kV2SectionEntrySize;
  if (table_end > size) {
    return Status(ErrorCode::kMalformedData, "v2 section table beyond buffer");
  }
  sections_.assign(kV2SectionCount + 1, Section{});
  for (uint32_t i = 0; i < kV2SectionCount; ++i) {
    const uint8_t* entry = data + kV2HeaderSize + i * kV2SectionEntrySize;
    uint32_t kind = LoadU32(entry);
    if (kind != i + 1) {
      return Status(ErrorCode::kMalformedData, "v2 section table out of order");
    }
    uint64_t offset = LoadU64(entry + 8);
    uint64_t sec_size = LoadU64(entry + 16);
    if (offset > size || sec_size > size - offset) {
      return Status(ErrorCode::kMalformedData, "v2 section beyond buffer");
    }
    sections_[kind] = Section{offset, sec_size};
  }
  // Structural invariants between counts and section sizes; everything past
  // this point is lazily bounds-checked per access instead.
  if (string_count_ >= Dataset::kNoStr ||
      sections_[kSecStringOffsets].size != (static_cast<uint64_t>(string_count_) + 1) * 8) {
    return Status(ErrorCode::kMalformedData, "v2 string offset table size mismatch");
  }
  if (sections_[kSecStringSorted].size != static_cast<uint64_t>(string_count_) * 4) {
    return Status(ErrorCode::kMalformedData, "v2 sorted string index size mismatch");
  }
  if (sections_[kSecImages].size !=
      static_cast<uint64_t>(image_count_) * kV2ImageHeaderSize) {
    return Status(ErrorCode::kMalformedData, "v2 image section size mismatch");
  }
  if (sections_[kSecFuncs].size % kV2FuncEntrySize != 0 ||
      sections_[kSecStructs].size % kV2StructEntrySize != 0 ||
      sections_[kSecTracepoints].size % kV2TracepointEntrySize != 0 ||
      sections_[kSecSyscalls].size % 4 != 0 || sections_[kSecPairs].size % kV2PairSize != 0 ||
      sections_[kSecDiags].size % kV2DiagEntrySize != 0) {
    return Status(ErrorCode::kMalformedData, "v2 record section size not entry-aligned");
  }
  return Status::Ok();
}

Result<MmapDataset> MmapDataset::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Error(ErrorCode::kIoError, "cannot open " + path);
  }
  struct stat st;
  if (fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return Error(ErrorCode::kIoError, "cannot stat " + path);
  }
  size_t len = static_cast<size_t>(st.st_size);
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Error(ErrorCode::kIoError, "mmap failed for " + path);
  }
  MmapDataset dataset;
  dataset.map_base_ = base;
  dataset.map_len_ = len;
  Status status = dataset.Attach(static_cast<const uint8_t*>(base), len);
  if (!status.ok()) {
    return status.TakeError();  // dataset's destructor unmaps
  }
  return dataset;
}

Result<MmapDataset> MmapDataset::FromBytes(std::vector<uint8_t> bytes) {
  MmapDataset dataset;
  dataset.owned_ = std::move(bytes);
  Status status = dataset.Attach(dataset.owned_.data(), dataset.owned_.size());
  if (!status.ok()) {
    return status.TakeError();
  }
  return dataset;
}

MmapDataset::MmapDataset(MmapDataset&& other) noexcept { *this = std::move(other); }

MmapDataset& MmapDataset::operator=(MmapDataset&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
  }
  data_ = other.data_;
  size_ = other.size_;
  map_base_ = other.map_base_;
  map_len_ = other.map_len_;
  owned_ = std::move(other.owned_);
  image_count_ = other.image_count_;
  string_count_ = other.string_count_;
  sections_ = std::move(other.sections_);
  // Re-point at the moved-in buffer when the view owns its bytes.
  if (!owned_.empty()) {
    data_ = owned_.data();
  }
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_base_ = nullptr;
  other.map_len_ = 0;
  other.image_count_ = 0;
  other.string_count_ = 0;
  return *this;
}

MmapDataset::~MmapDataset() {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
  }
}

std::optional<std::string_view> MmapDataset::StringViewAt(StrId id) const {
  if (id >= string_count_) {
    return std::nullopt;
  }
  const Section& offsets = sections_[kSecStringOffsets];
  const Section& blob = sections_[kSecStringBlob];
  uint64_t begin = LoadU64(data_ + offsets.offset + static_cast<uint64_t>(id) * 8);
  uint64_t end = LoadU64(data_ + offsets.offset + (static_cast<uint64_t>(id) + 1) * 8);
  if (begin >= end || end > blob.size) {
    return std::nullopt;
  }
  const char* base = reinterpret_cast<const char*>(data_ + blob.offset);
  if (base[end - 1] != '\0') {
    return std::nullopt;
  }
  return std::string_view(base + begin, end - begin - 1);
}

StrId MmapDataset::LookupId(std::string_view s) const {
  const Section& sorted = sections_[kSecStringSorted];
  uint64_t lo = 0;
  uint64_t hi = string_count_;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    StrId id = LoadU32(data_ + sorted.offset + mid * 4);
    std::optional<std::string_view> candidate = StringViewAt(id);
    if (!candidate.has_value()) {
      return Dataset::kNoStr;  // corrupt index entry: degrade to "absent"
    }
    if (*candidate < s) {
      lo = mid + 1;
    } else if (*candidate == s) {
      return id;
    } else {
      hi = mid;
    }
  }
  return Dataset::kNoStr;
}

const uint8_t* MmapDataset::ImageHeader(size_t image_index) const {
  return data_ + sections_[kSecImages].offset + image_index * kV2ImageHeaderSize;
}

namespace {

// Binary search for `name_id` over the image's [begin, begin+count) slice of
// a fixed-stride record section whose first field is the name id. Returns
// nullptr when absent or when the recorded range exceeds the section (a
// corrupt file answers "absent", it never faults).
const uint8_t* FindNamedEntry(const uint8_t* section_base, uint64_t section_entries,
                              size_t stride, uint32_t begin, uint32_t count,
                              uint32_t name_id) {
  if (begin > section_entries || count > section_entries - begin) {
    return nullptr;
  }
  uint64_t lo = begin;
  uint64_t hi = static_cast<uint64_t>(begin) + count;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    uint32_t mid_name = LoadU32(section_base + mid * stride);
    if (mid_name < name_id) {
      lo = mid + 1;
    } else if (mid_name == name_id) {
      return section_base + mid * stride;
    } else {
      hi = mid;
    }
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> MmapDataset::labels() const {
  std::vector<std::string> out;
  out.reserve(image_count_);
  for (size_t i = 0; i < image_count_; ++i) {
    std::optional<std::string_view> label = StringViewAt(LoadU32(ImageHeader(i)));
    out.emplace_back(label.value_or(std::string_view()));
  }
  return out;
}

SurfaceMeta MmapDataset::MetaAt(size_t image_index) const {
  SurfaceMeta meta;
  if (image_index >= image_count_) {
    return meta;
  }
  const uint8_t* img = ImageHeader(image_index);
  meta.flavor = std::string(StringViewAt(LoadU32(img + 4)).value_or(std::string_view()));
  meta.arch = std::string(StringViewAt(LoadU32(img + 8)).value_or(std::string_view()));
  meta.version_major = LoadU16(img + 12);
  meta.version_minor = LoadU16(img + 14);
  meta.gcc_major = img[16];
  meta.pointer_size = img[17];
  meta.endian = img[18] == 1 ? Endian::kBig : Endian::kLittle;
  meta.compat_syscalls_traceable = img[19] != 0;
  meta.config_options = LoadU32(img + 20);
  return meta;
}

std::string MmapDataset::HealthSummaryAt(size_t image_index) const {
  if (image_index >= image_count_) {
    return "clean";
  }
  return HealthFromHeader(ImageHeader(image_index)).Summary();
}

bool MmapDataset::AnyDegradedAt(size_t image_index) const {
  if (image_index >= image_count_) {
    return false;
  }
  return HealthFromHeader(ImageHeader(image_index)).AnyDegraded();
}

std::vector<std::set<MismatchKind>> MmapDataset::CheckFunc(const std::string& name) const {
  std::vector<std::set<MismatchKind>> out(image_count_);
  StrId id = LookupId(name);
  const Section& sec = sections_[kSecFuncs];
  const uint8_t* base = data_ + sec.offset;
  uint64_t entries = sec.size / kV2FuncEntrySize;
  bool have_baseline = false;
  uint64_t baseline_hash = 0;
  for (size_t i = 0; i < image_count_; ++i) {
    const uint8_t* img = ImageHeader(i);
    const uint8_t* entry =
        id == Dataset::kNoStr
            ? nullptr
            : FindNamedEntry(base, entries, kV2FuncEntrySize, LoadU32(img + kImgFuncRange),
                             LoadU32(img + kImgFuncRange + 4), id);
    if (entry == nullptr) {
      out[i].insert(MismatchKind::kAbsent);
      continue;
    }
    uint64_t decl_hash = LoadU64(entry + 8);
    if (!have_baseline) {
      have_baseline = true;
      baseline_hash = decl_hash;
    } else if (decl_hash != baseline_hash) {
      out[i].insert(MismatchKind::kChanged);
    }
    uint8_t flags = entry[20];
    if ((flags & kFlagFullInline) != 0) {
      out[i].insert(MismatchKind::kFullInline);
    }
    if ((flags & kFlagSelective) != 0) {
      out[i].insert(MismatchKind::kSelectiveInline);
    }
    if ((flags & kFlagTransformed) != 0) {
      out[i].insert(MismatchKind::kTransformed);
    }
    if ((flags & kFlagDuplicated) != 0) {
      out[i].insert(MismatchKind::kDuplicated);
    }
    if ((flags & kFlagCollided) != 0) {
      out[i].insert(MismatchKind::kCollision);
    }
  }
  return out;
}

std::vector<std::set<MismatchKind>> MmapDataset::CheckStruct(const std::string& name) const {
  std::vector<std::set<MismatchKind>> out(image_count_);
  StrId id = LookupId(name);
  const Section& sec = sections_[kSecStructs];
  const Section& pairs = sections_[kSecPairs];
  const uint8_t* base = data_ + sec.offset;
  uint64_t entries = sec.size / kV2StructEntrySize;
  uint64_t pair_entries = pairs.size / kV2PairSize;
  const uint8_t* baseline = nullptr;
  uint32_t baseline_count = 0;
  for (size_t i = 0; i < image_count_; ++i) {
    const uint8_t* img = ImageHeader(i);
    const uint8_t* entry =
        id == Dataset::kNoStr
            ? nullptr
            : FindNamedEntry(base, entries, kV2StructEntrySize, LoadU32(img + kImgStructRange),
                             LoadU32(img + kImgStructRange + 4), id);
    const uint8_t* fields = nullptr;
    uint32_t count = 0;
    if (entry != nullptr) {
      uint32_t begin = LoadU32(entry + 4);
      count = LoadU32(entry + 8);
      if (begin <= pair_entries && count <= pair_entries - begin) {
        fields = data_ + pairs.offset + static_cast<uint64_t>(begin) * kV2PairSize;
      }
    }
    if (fields == nullptr) {
      out[i].insert(MismatchKind::kAbsent);
      continue;
    }
    if (baseline == nullptr) {
      baseline = fields;
      baseline_count = count;
    } else if (count != baseline_count ||
               std::memcmp(fields, baseline, static_cast<size_t>(count) * kV2PairSize) != 0) {
      out[i].insert(MismatchKind::kChanged);
    }
  }
  return out;
}

std::vector<std::set<MismatchKind>> MmapDataset::CheckField(const std::string& struct_name,
                                                            const std::string& field_name,
                                                            const std::string& expected_type,
                                                            bool guarded) const {
  std::vector<std::set<MismatchKind>> out(image_count_);
  StrId sid = LookupId(struct_name);
  StrId fid = LookupId(field_name);
  StrId expected = expected_type.empty() ? Dataset::kNoStr : LookupId(expected_type);
  bool expectation_fixed = !expected_type.empty();
  const Section& sec = sections_[kSecStructs];
  const Section& pairs = sections_[kSecPairs];
  const uint8_t* base = data_ + sec.offset;
  uint64_t entries = sec.size / kV2StructEntrySize;
  uint64_t pair_entries = pairs.size / kV2PairSize;
  for (size_t i = 0; i < image_count_; ++i) {
    const uint8_t* img = ImageHeader(i);
    const uint8_t* entry =
        sid == Dataset::kNoStr || fid == Dataset::kNoStr
            ? nullptr
            : FindNamedEntry(base, entries, kV2StructEntrySize, LoadU32(img + kImgStructRange),
                             LoadU32(img + kImgStructRange + 4), sid);
    const uint8_t* field = nullptr;
    if (entry != nullptr) {
      uint32_t begin = LoadU32(entry + 4);
      uint32_t count = LoadU32(entry + 8);
      if (begin <= pair_entries && count <= pair_entries - begin) {
        // Field pairs are sorted by name id inside the struct's slice.
        field = FindNamedEntry(data_ + pairs.offset, pair_entries, kV2PairSize, begin, count,
                               fid);
      }
    }
    if (field == nullptr) {
      if (!guarded) {
        out[i].insert(MismatchKind::kAbsent);
      }
      continue;
    }
    uint32_t actual = LoadU32(field + 4);
    if (expected == Dataset::kNoStr && !expectation_fixed) {
      expected = actual;  // baseline fallback
    } else if (actual != expected) {
      out[i].insert(MismatchKind::kChanged);
    }
  }
  return out;
}

std::vector<std::set<MismatchKind>> MmapDataset::CheckTracepoint(const std::string& event) const {
  std::vector<std::set<MismatchKind>> out(image_count_);
  StrId id = LookupId(event);
  const Section& sec = sections_[kSecTracepoints];
  const Section& pairs = sections_[kSecPairs];
  const uint8_t* base = data_ + sec.offset;
  uint64_t entries = sec.size / kV2TracepointEntrySize;
  uint64_t pair_entries = pairs.size / kV2PairSize;
  auto pair_range = [&](uint32_t begin, uint32_t count) -> const uint8_t* {
    if (begin > pair_entries || count > pair_entries - begin) {
      return nullptr;
    }
    return data_ + pairs.offset + static_cast<uint64_t>(begin) * kV2PairSize;
  };
  const uint8_t* baseline_params = nullptr;
  const uint8_t* baseline_fields = nullptr;
  uint32_t baseline_params_count = 0;
  uint32_t baseline_fields_count = 0;
  for (size_t i = 0; i < image_count_; ++i) {
    const uint8_t* img = ImageHeader(i);
    const uint8_t* entry =
        id == Dataset::kNoStr
            ? nullptr
            : FindNamedEntry(base, entries, kV2TracepointEntrySize,
                             LoadU32(img + kImgTracepointRange),
                             LoadU32(img + kImgTracepointRange + 4), id);
    const uint8_t* params = nullptr;
    const uint8_t* fields = nullptr;
    uint32_t params_count = 0;
    uint32_t fields_count = 0;
    if (entry != nullptr) {
      params_count = LoadU32(entry + 8);
      fields_count = LoadU32(entry + 16);
      params = pair_range(LoadU32(entry + 4), params_count);
      fields = pair_range(LoadU32(entry + 12), fields_count);
    }
    if (params == nullptr || fields == nullptr) {
      out[i].insert(MismatchKind::kAbsent);
      continue;
    }
    if (baseline_params == nullptr) {
      baseline_params = params;
      baseline_fields = fields;
      baseline_params_count = params_count;
      baseline_fields_count = fields_count;
    } else if (params_count != baseline_params_count || fields_count != baseline_fields_count ||
               std::memcmp(params, baseline_params,
                           static_cast<size_t>(params_count) * kV2PairSize) != 0 ||
               std::memcmp(fields, baseline_fields,
                           static_cast<size_t>(fields_count) * kV2PairSize) != 0) {
      out[i].insert(MismatchKind::kChanged);
    }
  }
  return out;
}

std::vector<std::set<MismatchKind>> MmapDataset::CheckSyscall(const std::string& name) const {
  std::vector<std::set<MismatchKind>> out(image_count_);
  StrId id = LookupId(name);
  const Section& sec = sections_[kSecSyscalls];
  const uint8_t* base = data_ + sec.offset;
  uint64_t entries = sec.size / 4;
  for (size_t i = 0; i < image_count_; ++i) {
    const uint8_t* img = ImageHeader(i);
    bool present =
        id != Dataset::kNoStr &&
        FindNamedEntry(base, entries, 4, LoadU32(img + kImgSyscallRange),
                       LoadU32(img + kImgSyscallRange + 4), id) != nullptr;
    if (!present) {
      out[i].insert(MismatchKind::kAbsent);
    }
    // Compat (32-bit) traceability is a per-image property reported by the
    // configuration analysis (Table 5), not a per-dependency mismatch.
  }
  return out;
}

std::vector<std::set<MismatchKind>> MmapDataset::CheckRegisters() const {
  std::vector<std::set<MismatchKind>> out(image_count_);
  if (image_count_ == 0) {
    return out;
  }
  uint64_t baseline = LoadU64(ImageHeader(0) + 24);
  for (size_t i = 1; i < image_count_; ++i) {
    if (LoadU64(ImageHeader(i) + 24) != baseline) {
      out[i].insert(MismatchKind::kChanged);
    }
  }
  return out;
}

std::optional<std::string_view> MmapDataset::FuncDeclAt(const std::string& name,
                                                        size_t image_index) const {
  if (image_index >= image_count_) {
    return std::nullopt;
  }
  StrId id = LookupId(name);
  if (id == Dataset::kNoStr) {
    return std::nullopt;
  }
  const Section& sec = sections_[kSecFuncs];
  const uint8_t* img = ImageHeader(image_index);
  const uint8_t* entry =
      FindNamedEntry(data_ + sec.offset, sec.size / kV2FuncEntrySize, kV2FuncEntrySize,
                     LoadU32(img + kImgFuncRange), LoadU32(img + kImgFuncRange + 4), id);
  if (entry == nullptr) {
    return std::nullopt;
  }
  uint32_t decl = LoadU32(entry + 4);
  if (decl == Dataset::kNoStr) {
    return std::nullopt;
  }
  return StringViewAt(decl);
}

std::optional<std::string_view> MmapDataset::FieldTypeAt(const std::string& struct_name,
                                                         const std::string& field_name,
                                                         size_t image_index) const {
  if (image_index >= image_count_) {
    return std::nullopt;
  }
  StrId sid = LookupId(struct_name);
  StrId fid = LookupId(field_name);
  if (sid == Dataset::kNoStr || fid == Dataset::kNoStr) {
    return std::nullopt;
  }
  const Section& sec = sections_[kSecStructs];
  const Section& pairs = sections_[kSecPairs];
  const uint8_t* img = ImageHeader(image_index);
  const uint8_t* entry =
      FindNamedEntry(data_ + sec.offset, sec.size / kV2StructEntrySize, kV2StructEntrySize,
                     LoadU32(img + kImgStructRange), LoadU32(img + kImgStructRange + 4), sid);
  if (entry == nullptr) {
    return std::nullopt;
  }
  uint64_t pair_entries = pairs.size / kV2PairSize;
  uint32_t begin = LoadU32(entry + 4);
  uint32_t count = LoadU32(entry + 8);
  if (begin > pair_entries || count > pair_entries - begin) {
    return std::nullopt;
  }
  const uint8_t* field =
      FindNamedEntry(data_ + pairs.offset, pair_entries, kV2PairSize, begin, count, fid);
  if (field == nullptr) {
    return std::nullopt;
  }
  return StringViewAt(LoadU32(field + 4));
}

// ---------------------------------------------------------------------------
// Full strict v2 parse (dataset info / migrate round-trips).
// ---------------------------------------------------------------------------

Result<Dataset> LoadDatasetV2(const std::vector<uint8_t>& bytes) {
  DEPSURF_ASSIGN_OR_RETURN(view, MmapDataset::FromBytes(bytes));
  uint32_t num_strings = view.string_count();
  Dataset dataset;
  for (uint32_t i = 0; i < num_strings; ++i) {
    std::optional<std::string_view> s = view.StringViewAt(i);
    if (!s.has_value()) {
      return Error(ErrorCode::kMalformedData, "v2 string table entry corrupt");
    }
    StrId id = dataset.Intern(std::string(*s));
    if (id != i) {
      return Error(ErrorCode::kMalformedData, "duplicate string in pool");
    }
  }
  dataset.FlushInternMetrics();

  // Strict re-walk of the raw sections (the lazy accessors above degrade on
  // corruption; a full parse must reject it instead).
  const uint8_t* data = bytes.data();
  const uint8_t* table = data + kV2HeaderSize;
  auto section = [&](uint32_t kind) {
    const uint8_t* entry = table + (kind - 1) * kV2SectionEntrySize;
    return std::make_pair(LoadU64(entry + 8), LoadU64(entry + 16));
  };
  auto [funcs_off, funcs_size] = section(kSecFuncs);
  auto [structs_off, structs_size] = section(kSecStructs);
  auto [tps_off, tps_size] = section(kSecTracepoints);
  auto [sys_off, sys_size] = section(kSecSyscalls);
  auto [pairs_off, pairs_size] = section(kSecPairs);
  auto [diags_off, diags_size] = section(kSecDiags);
  uint64_t pair_entries = pairs_size / kV2PairSize;
  auto read_pairs = [&](uint32_t begin, uint32_t count,
                        std::vector<std::pair<StrId, StrId>>* out) -> Status {
    if (begin > pair_entries || count > pair_entries - begin) {
      return Status(ErrorCode::kMalformedData, "v2 pair range beyond section");
    }
    out->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      const uint8_t* p = data + pairs_off + (static_cast<uint64_t>(begin) + i) * kV2PairSize;
      uint32_t a = LoadU32(p);
      uint32_t b = LoadU32(p + 4);
      if (a >= num_strings || b >= num_strings) {
        return Status(ErrorCode::kMalformedData, "string id out of range");
      }
      out->emplace_back(a, b);
    }
    return Status::Ok();
  };
  auto check_range = [](uint32_t begin, uint32_t count, uint64_t total,
                        const char* what) -> Status {
    if (begin > total || count > total - begin) {
      return Status(ErrorCode::kMalformedData,
                    std::string("v2 ") + what + " range beyond section");
    }
    return Status::Ok();
  };

  for (uint32_t image_index = 0; image_index < view.num_images(); ++image_index) {
    const uint8_t* img =
        data + section(kSecImages).first + static_cast<uint64_t>(image_index) * kV2ImageHeaderSize;
    ImageRecord image;
    auto required_string = [&](uint32_t id, const char* what) -> Result<std::string> {
      if (id >= num_strings) {
        return Error(ErrorCode::kMalformedData, std::string("v2 ") + what + " id out of range");
      }
      return dataset.StringAt(id);
    };
    DEPSURF_ASSIGN_OR_RETURN(label, required_string(LoadU32(img), "label"));
    image.label = std::move(label);
    DEPSURF_ASSIGN_OR_RETURN(flavor, required_string(LoadU32(img + 4), "flavor"));
    image.meta.flavor = std::move(flavor);
    DEPSURF_ASSIGN_OR_RETURN(arch, required_string(LoadU32(img + 8), "arch"));
    image.meta.arch = std::move(arch);
    image.meta.version_major = LoadU16(img + 12);
    image.meta.version_minor = LoadU16(img + 14);
    image.meta.gcc_major = img[16];
    image.meta.pointer_size = img[17];
    image.meta.endian = img[18] == 1 ? Endian::kBig : Endian::kLittle;
    image.meta.compat_syscalls_traceable = img[19] != 0;
    image.compat_syscalls_traceable = image.meta.compat_syscalls_traceable;
    image.meta.config_options = LoadU32(img + 20);
    image.pt_regs_hash = LoadU64(img + 24);
    for (size_t h = 0; h < 5; ++h) {
      if (img[32 + h] > static_cast<uint8_t>(DegradationState::kMissing)) {
        return Error(ErrorCode::kMalformedData, "bad degradation state");
      }
    }
    image.health.elf = static_cast<DegradationState>(img[32]);
    image.health.dwarf = static_cast<DegradationState>(img[33]);
    image.health.btf = static_cast<DegradationState>(img[34]);
    image.health.tracepoint = static_cast<DegradationState>(img[35]);
    image.health.syscall = static_cast<DegradationState>(img[36]);

    uint32_t func_begin = LoadU32(img + kImgFuncRange);
    uint32_t func_count = LoadU32(img + kImgFuncRange + 4);
    DEPSURF_RETURN_IF_ERROR(
        check_range(func_begin, func_count, funcs_size / kV2FuncEntrySize, "function"));
    for (uint32_t i = 0; i < func_count; ++i) {
      const uint8_t* e =
          data + funcs_off + (static_cast<uint64_t>(func_begin) + i) * kV2FuncEntrySize;
      uint32_t name = LoadU32(e);
      if (name >= num_strings) {
        return Error(ErrorCode::kMalformedData, "function name id out of range");
      }
      uint32_t decl = LoadU32(e + 4);
      if (decl != Dataset::kNoStr && decl >= num_strings) {
        return Error(ErrorCode::kMalformedData, "decl id out of range");
      }
      uint32_t suffix = LoadU32(e + 16);
      if (suffix != Dataset::kNoStr && suffix >= num_strings) {
        return Error(ErrorCode::kMalformedData, "suffix id out of range");
      }
      FuncRecord record;
      record.status = UnpackStatus(
          e[20], suffix == Dataset::kNoStr ? std::string() : dataset.StringAt(suffix));
      record.decl_hash = LoadU64(e + 8);
      record.decl = decl;
      image.funcs.emplace(static_cast<StrId>(name), std::move(record));
    }

    uint32_t struct_begin = LoadU32(img + kImgStructRange);
    uint32_t struct_count = LoadU32(img + kImgStructRange + 4);
    DEPSURF_RETURN_IF_ERROR(
        check_range(struct_begin, struct_count, structs_size / kV2StructEntrySize, "struct"));
    for (uint32_t i = 0; i < struct_count; ++i) {
      const uint8_t* e =
          data + structs_off + (static_cast<uint64_t>(struct_begin) + i) * kV2StructEntrySize;
      uint32_t name = LoadU32(e);
      if (name >= num_strings) {
        return Error(ErrorCode::kMalformedData, "struct name id out of range");
      }
      StructRecord record;
      DEPSURF_RETURN_IF_ERROR(read_pairs(LoadU32(e + 4), LoadU32(e + 8), &record.fields));
      image.structs.emplace(static_cast<StrId>(name), std::move(record));
    }

    uint32_t tp_begin = LoadU32(img + kImgTracepointRange);
    uint32_t tp_count = LoadU32(img + kImgTracepointRange + 4);
    DEPSURF_RETURN_IF_ERROR(
        check_range(tp_begin, tp_count, tps_size / kV2TracepointEntrySize, "tracepoint"));
    for (uint32_t i = 0; i < tp_count; ++i) {
      const uint8_t* e =
          data + tps_off + (static_cast<uint64_t>(tp_begin) + i) * kV2TracepointEntrySize;
      uint32_t name = LoadU32(e);
      if (name >= num_strings) {
        return Error(ErrorCode::kMalformedData, "tracepoint name id out of range");
      }
      TracepointRecord record;
      DEPSURF_RETURN_IF_ERROR(read_pairs(LoadU32(e + 4), LoadU32(e + 8), &record.func_params));
      DEPSURF_RETURN_IF_ERROR(
          read_pairs(LoadU32(e + 12), LoadU32(e + 16), &record.event_fields));
      image.tracepoints.emplace(static_cast<StrId>(name), std::move(record));
    }

    uint32_t sys_begin = LoadU32(img + kImgSyscallRange);
    uint32_t sys_count = LoadU32(img + kImgSyscallRange + 4);
    DEPSURF_RETURN_IF_ERROR(check_range(sys_begin, sys_count, sys_size / 4, "syscall"));
    for (uint32_t i = 0; i < sys_count; ++i) {
      uint32_t id = LoadU32(data + sys_off + (static_cast<uint64_t>(sys_begin) + i) * 4);
      if (id >= num_strings) {
        return Error(ErrorCode::kMalformedData, "syscall id out of range");
      }
      image.syscalls.insert(static_cast<StrId>(id));
    }

    uint32_t diag_begin = LoadU32(img + kImgDiagRange);
    uint32_t diag_count = LoadU32(img + kImgDiagRange + 4);
    DEPSURF_RETURN_IF_ERROR(
        check_range(diag_begin, diag_count, diags_size / kV2DiagEntrySize, "diagnostic"));
    for (uint32_t i = 0; i < diag_count; ++i) {
      const uint8_t* e =
          data + diags_off + (static_cast<uint64_t>(diag_begin) + i) * kV2DiagEntrySize;
      uint32_t message = LoadU32(e);
      if (message >= num_strings) {
        return Error(ErrorCode::kMalformedData, "diagnostic message id out of range");
      }
      uint8_t severity = e[4];
      if (severity > static_cast<uint8_t>(DiagSeverity::kFatal)) {
        return Error(ErrorCode::kMalformedData, "bad diagnostic severity");
      }
      uint8_t subsystem = e[5];
      if (subsystem > static_cast<uint8_t>(DiagSubsystem::kBpf)) {
        return Error(ErrorCode::kMalformedData, "bad diagnostic subsystem");
      }
      uint8_t code = e[6];
      if (code > static_cast<uint8_t>(ErrorCode::kIoError)) {
        return Error(ErrorCode::kMalformedData, "bad diagnostic error code");
      }
      if (e[7] != 0) {
        image.health.ledger.AddAt(static_cast<DiagSeverity>(severity),
                                  static_cast<DiagSubsystem>(subsystem),
                                  static_cast<ErrorCode>(code), LoadU64(e + 8),
                                  dataset.StringAt(message));
      } else {
        image.health.ledger.Add(static_cast<DiagSeverity>(severity),
                                static_cast<DiagSubsystem>(subsystem),
                                static_cast<ErrorCode>(code), dataset.StringAt(message));
      }
    }
    dataset.RestoreImage(std::move(image));
  }
  return dataset;
}

Result<OpenedDataset> OpenDatasetView(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error(ErrorCode::kIoError, "cannot open " + path);
  }
  uint8_t magic_bytes[4] = {0, 0, 0, 0};
  in.read(reinterpret_cast<char*>(magic_bytes), 4);
  if (in.gcount() != 4) {
    return Error(ErrorCode::kMalformedData, path + ": not a depsurf dataset (too short)");
  }
  uint32_t magic = LoadU32(magic_bytes);
  OpenedDataset opened;
  if (magic == kDatasetMagicV2) {
    in.close();
    DEPSURF_ASSIGN_OR_RETURN(view, MmapDataset::Open(path));
    opened.format = 2;
    opened.images = view.num_images();
    opened.view = std::make_unique<MmapDataset>(std::move(view));
    return opened;
  }
  if (magic != kDatasetMagic) {
    return Error(ErrorCode::kMalformedData, path + ": not a depsurf dataset (bad magic)");
  }
  in.seekg(0, std::ios::end);
  std::streamoff len = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<uint8_t> bytes(static_cast<size_t>(len));
  in.read(reinterpret_cast<char*>(bytes.data()), len);
  if (!in) {
    return Error(ErrorCode::kIoError, "short read on " + path);
  }
  DEPSURF_ASSIGN_OR_RETURN(dataset, LoadDataset(bytes));
  opened.format = 1;
  opened.images = dataset.num_images();
  opened.view = std::make_unique<Dataset>(std::move(dataset));
  return opened;
}

}  // namespace depsurf
