#include "src/core/report.h"

#include <algorithm>
#include <optional>
#include <string_view>

#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/str_util.h"

namespace depsurf {

const char* DepKindName(DepKind kind) {
  switch (kind) {
    case DepKind::kFunc:
      return "function";
    case DepKind::kStruct:
      return "struct";
    case DepKind::kField:
      return "field";
    case DepKind::kTracepoint:
      return "tracepoint";
    case DepKind::kSyscall:
      return "syscall";
  }
  return "?";
}

const char* ConsequenceName(Consequence consequence) {
  switch (consequence) {
    case Consequence::kNone:
      return "none";
    case Consequence::kCompilationError:
      return "compilation error";
    case Consequence::kRelocationError:
      return "relocation error";
    case Consequence::kAttachmentError:
      return "attachment error";
    case Consequence::kStrayRead:
      return "stray read";
    case Consequence::kMissingInvocation:
      return "missing invocation";
    case Consequence::kHandledByProgram:
      return "handled by program";
  }
  return "?";
}

const char* ImplicationName(Implication implication) {
  switch (implication) {
    case Implication::kNone:
      return "none";
    case Implication::kExplicitError:
      return "explicit error (before execution)";
    case Implication::kIncorrectResult:
      return "incorrect result (might be detectable)";
    case Implication::kIncompleteResult:
      return "incomplete result (difficult to detect)";
  }
  return "?";
}

Consequence ConsequenceOf(DepKind kind, MismatchKind mismatch) {
  switch (kind) {
    case DepKind::kFunc:
      switch (mismatch) {
        case MismatchKind::kAbsent:
        case MismatchKind::kFullInline:
        case MismatchKind::kTransformed:
          return Consequence::kAttachmentError;
        case MismatchKind::kChanged:
        case MismatchKind::kCollision:
          return Consequence::kStrayRead;
        case MismatchKind::kSelectiveInline:
        case MismatchKind::kDuplicated:
          return Consequence::kMissingInvocation;
        default:
          return Consequence::kNone;
      }
    case DepKind::kStruct:
    case DepKind::kField:
      switch (mismatch) {
        case MismatchKind::kAbsent:
          return Consequence::kCompilationError;
        case MismatchKind::kChanged:
          return Consequence::kStrayRead;
        default:
          return Consequence::kNone;
      }
    case DepKind::kTracepoint:
      switch (mismatch) {
        case MismatchKind::kAbsent:
          return Consequence::kAttachmentError;
        case MismatchKind::kChanged:
          return Consequence::kStrayRead;
        default:
          return Consequence::kNone;
      }
    case DepKind::kSyscall:
      switch (mismatch) {
        case MismatchKind::kAbsent:
          return Consequence::kAttachmentError;
        case MismatchKind::kNotTraceable:
          return Consequence::kMissingInvocation;
        default:
          return Consequence::kNone;
      }
  }
  return Consequence::kNone;
}

Consequence ConsequenceOf(DepKind kind, MismatchKind mismatch, bool guarded) {
  if (guarded && (kind == DepKind::kField || kind == DepKind::kStruct) &&
      mismatch == MismatchKind::kAbsent) {
    return Consequence::kHandledByProgram;
  }
  return ConsequenceOf(kind, mismatch);
}

Implication ImplicationOf(Consequence consequence) {
  switch (consequence) {
    case Consequence::kCompilationError:
    case Consequence::kRelocationError:
    case Consequence::kAttachmentError:
      return Implication::kExplicitError;
    case Consequence::kStrayRead:
      return Implication::kIncorrectResult;
    case Consequence::kMissingInvocation:
      return Implication::kIncompleteResult;
    case Consequence::kNone:
    case Consequence::kHandledByProgram:
      return Implication::kNone;
  }
  return Implication::kNone;
}

bool ReportRow::AnyMismatch() const {
  for (const auto& cell : cells) {
    if (!cell.empty()) {
      return true;
    }
  }
  return false;
}

bool ProgramReport::AnyMismatch() const {
  return funcs.AnyMismatch() || structs.AnyMismatch() || fields.AnyMismatch() ||
         tracepoints.AnyMismatch() || syscalls.AnyMismatch();
}

namespace {

void Tally(CategoryCounts& counts, const ReportRow& row) {
  ++counts.total;
  bool absent = false;
  bool changed = false;
  bool full = false;
  bool selective = false;
  bool transformed = false;
  bool duplicated = false;
  bool collided = false;
  for (const auto& cell : row.cells) {
    absent |= cell.count(MismatchKind::kAbsent) != 0;
    changed |= cell.count(MismatchKind::kChanged) != 0;
    full |= cell.count(MismatchKind::kFullInline) != 0;
    selective |= cell.count(MismatchKind::kSelectiveInline) != 0;
    transformed |= cell.count(MismatchKind::kTransformed) != 0;
    duplicated |= cell.count(MismatchKind::kDuplicated) != 0;
    collided |= cell.count(MismatchKind::kCollision) != 0;
  }
  counts.absent += absent ? 1 : 0;
  counts.changed += changed ? 1 : 0;
  counts.full_inline += full ? 1 : 0;
  counts.selective += selective ? 1 : 0;
  counts.transformed += transformed ? 1 : 0;
  counts.duplicated += duplicated ? 1 : 0;
  counts.collided += collided ? 1 : 0;
}

}  // namespace

std::string MismatchCellString(const std::set<MismatchKind>& cell) {
  if (cell.empty()) {
    return ".";
  }
  if (cell.count(MismatchKind::kAbsent) != 0) {
    return "-";
  }
  std::string out;
  for (MismatchKind kind : cell) {
    out += MismatchKindCode(kind);
  }
  return out;
}

std::string ProgramReport::RenderMatrix() const {
  // Column headers: version tags when available, else indexes.
  size_t name_width = 12;
  for (const ReportRow& row : rows) {
    name_width = std::max(name_width, row.name.size() + 6);  // "[F] " prefix + padding
  }
  std::string out = StrFormat("=== %s: dependency mismatches across %zu images ===\n",
                              program.c_str(), image_labels.size());
  out += "legend: '.' ok  '-' absent  C changed  F full-inline  S selective-inline"
         "  T transformed  D duplicated  N name-collision\n\n";
  // Header row with column indexes.
  out += std::string(name_width, ' ');
  for (size_t i = 0; i < image_labels.size(); ++i) {
    out += StrFormat("%4zu", i);
  }
  out += "\n";
  for (const ReportRow& row : rows) {
    std::string label = StrFormat("[%c] %s", toupper(DepKindName(row.kind)[0]), row.name.c_str());
    label.resize(name_width, ' ');
    out += label;
    for (const auto& cell : row.cells) {
      std::string code = MismatchCellString(cell);
      out += StrFormat("%4s", code.c_str());
    }
    out += "\n";
  }
  out += "\ncolumns:\n";
  for (size_t i = 0; i < image_labels.size(); ++i) {
    if (i < image_health.size() && image_health[i] != "clean") {
      out += StrFormat("  %2zu: %s  [salvaged: %s]\n", i, image_labels[i].c_str(),
                       image_health[i].c_str());
    } else {
      out += StrFormat("  %2zu: %s\n", i, image_labels[i].c_str());
    }
  }
  if (AnyDegradedImage()) {
    out += "\n!! columns marked [salvaged] were extracted from damaged images;\n"
           "!! mismatches there may reflect extraction loss, not the kernel.\n";
  }
  return out;
}

bool ProgramReport::AnyDegradedImage() const {
  for (const std::string& health : image_health) {
    if (health != "clean") {
      return true;
    }
  }
  return false;
}

Implication ProgramReport::WorstImplication() const {
  Implication worst = Implication::kNone;
  for (const ReportRow& row : rows) {
    for (const auto& cell : row.cells) {
      for (MismatchKind kind : cell) {
        Implication imp = ImplicationOf(ConsequenceOf(row.kind, kind));
        if (static_cast<int>(imp) > static_cast<int>(worst)) {
          worst = imp;
        }
      }
    }
  }
  return worst;
}

std::string ExplainReport(const DatasetView& dataset, const ProgramReport& report) {
  std::string out;
  // Conclusions resting on salvaged surfaces get a caveat up front: an
  // "absent" verdict on an image whose DWARF was skipped may just mean the
  // construct was lost with the damaged data.
  for (size_t i = 0; i < report.image_health.size(); ++i) {
    if (report.image_health[i] != "clean") {
      out += StrFormat("  caveat: %s was salvaged (%s); verdicts on that image may "
                       "reflect extraction loss\n",
                       report.image_labels[i].c_str(), report.image_health[i].c_str());
    }
  }
  auto span_note = [&](const ReportRow& row, MismatchKind kind, const char* verb) {
    // First image where the kind appears.
    for (size_t i = 0; i < row.cells.size(); ++i) {
      if (row.cells[i].count(kind) != 0) {
        Consequence consequence = ConsequenceOf(row.kind, kind);
        out += StrFormat("    %s from %s -> %s (%s)\n", verb,
                         report.image_labels[i].c_str(), ConsequenceName(consequence),
                         ImplicationName(ImplicationOf(consequence)));
        return;
      }
    }
  };
  for (const ReportRow& row : report.rows) {
    if (!row.AnyMismatch()) {
      continue;
    }
    out += StrFormat("  %s %s\n", DepKindName(row.kind), row.name.c_str());
    // Declaration transitions are reported along the version series of the
    // first image's arch/flavor; foreign-arch images would read as
    // spurious back-in-time changes.
    auto same_series = [&](size_t i) {
      SurfaceMeta a = dataset.MetaAt(i);
      SurfaceMeta b = dataset.MetaAt(0);
      return a.arch == b.arch && a.flavor == b.flavor;
    };
    if (row.kind == DepKind::kFunc) {
      std::optional<std::string_view> prev;
      for (size_t i = 0; i < row.cells.size(); ++i) {
        if (!same_series(i)) {
          continue;
        }
        std::optional<std::string_view> decl = dataset.FuncDeclAt(row.name, i);
        if (decl.has_value() && prev.has_value() && *decl != *prev) {
          out += StrFormat("    changed at %s:\n      was: %.*s\n      now: %.*s\n",
                           report.image_labels[i].c_str(), static_cast<int>(prev->size()),
                           prev->data(), static_cast<int>(decl->size()), decl->data());
        }
        if (decl.has_value()) {
          prev = decl;
        }
      }
    }
    if (row.kind == DepKind::kField) {
      size_t sep = row.name.find("::");
      if (sep != std::string::npos) {
        std::string struct_name = row.name.substr(0, sep);
        std::string field_name = row.name.substr(sep + 2);
        std::optional<std::string_view> prev;
        for (size_t i = 0; i < row.cells.size(); ++i) {
          if (!same_series(i)) {
            continue;
          }
          std::optional<std::string_view> type = dataset.FieldTypeAt(struct_name, field_name, i);
          if (type.has_value() && prev.has_value() && *type != *prev) {
            out += StrFormat("    type changed at %s: %.*s -> %.*s\n",
                             report.image_labels[i].c_str(), static_cast<int>(prev->size()),
                             prev->data(), static_cast<int>(type->size()), type->data());
          }
          if (type.has_value()) {
            prev = type;
          }
        }
      }
    }
    span_note(row, MismatchKind::kAbsent, "absent");
    span_note(row, MismatchKind::kFullInline, "fully inlined");
    span_note(row, MismatchKind::kSelectiveInline, "selectively inlined");
    span_note(row, MismatchKind::kTransformed, "transformed");
    span_note(row, MismatchKind::kDuplicated, "duplicated");
    span_note(row, MismatchKind::kCollision, "name collision");
  }
  return out;
}

ProgramReport AnalyzeProgram(const DatasetView& dataset, const DependencySet& deps) {
  obs::ScopedSpan span("analyze.program");
  span.AddAttr("program", deps.program);
  span.AddAttr("images", static_cast<uint64_t>(dataset.num_images()));
  ProgramReport report;
  report.program = deps.program;
  report.image_labels = dataset.labels();
  for (size_t i = 0; i < dataset.num_images(); ++i) {
    report.image_health.push_back(dataset.HealthSummaryAt(i));
  }

  for (const std::string& func : deps.funcs) {
    ReportRow row{DepKind::kFunc, func, dataset.CheckFunc(func)};
    Tally(report.funcs, row);
    report.rows.push_back(std::move(row));
  }
  // LSM hooks are functions on the surface.
  for (const std::string& hook : deps.lsm_hooks) {
    ReportRow row{DepKind::kFunc, hook, dataset.CheckFunc(hook)};
    Tally(report.funcs, row);
    report.rows.push_back(std::move(row));
  }
  for (const auto& [struct_name, field_map] : deps.fields) {
    ReportRow srow{DepKind::kStruct, struct_name, dataset.CheckStruct(struct_name)};
    // Struct-level cells report only absence; definition changes are
    // attributed to the specific fields below.
    for (auto& cell : srow.cells) {
      cell.erase(MismatchKind::kChanged);
    }
    Tally(report.structs, srow);
    report.rows.push_back(std::move(srow));
    for (const auto& [field_name, dep] : field_map) {
      ReportRow frow{DepKind::kField, struct_name + "::" + field_name,
                     dataset.CheckField(struct_name, field_name, dep.expected_type,
                                        dep.guarded)};
      Tally(report.fields, frow);
      report.rows.push_back(std::move(frow));
    }
  }
  for (const std::string& event : deps.tracepoints) {
    ReportRow row{DepKind::kTracepoint, event, dataset.CheckTracepoint(event)};
    Tally(report.tracepoints, row);
    report.rows.push_back(std::move(row));
  }
  for (const std::string& syscall : deps.syscalls) {
    ReportRow row{DepKind::kSyscall, syscall, dataset.CheckSyscall(syscall)};
    Tally(report.syscalls, row);
    report.rows.push_back(std::move(row));
  }
  uint64_t mismatching = 0;
  for (const ReportRow& row : report.rows) {
    mismatching += row.AnyMismatch() ? 1 : 0;
  }
  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Incr("analyze.programs_analyzed");
  metrics.Incr("analyze.rows_checked", report.rows.size());
  metrics.Incr("analyze.rows_mismatching", mismatching);
  span.AddAttr("rows", static_cast<uint64_t>(report.rows.size()));
  span.AddAttr("rows_mismatching", mismatching);
  return report;
}

}  // namespace depsurf
