// The dependency-mismatch dataset: compact per-image records distilled from
// dependency surfaces, queryable per construct. This is the artifact
// DepSurf publishes (paper §3.1): images are processed once, surfaces are
// dropped, and dependency-set analysis runs against these records.
//
// Records are heavily interned: at paper scale an image contributes ~70k
// functions and ~8k structs, and the corpus holds 25 images, so names and
// type strings are stored once in a shared pool and referenced by id.
// Function declarations are kept as fingerprints (hashes); benches that
// need change *kinds* (Table 4) diff full surfaces pairwise instead.
#ifndef DEPSURF_SRC_CORE_DATASET_H_
#define DEPSURF_SRC_CORE_DATASET_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/dataset_view.h"
#include "src/core/dependency_surface.h"

namespace depsurf {

struct FuncRecord {
  FunctionStatus status;
  uint64_t decl_hash = 0;  // fingerprint of (return type, param names+types)
  // Rendered declaration ("int vfs_fsync(struct file *file, int datasync)"),
  // interned — declarations repeat across images, so this is cheap.
  uint32_t decl = 0xffffffff;
};

struct StructRecord {
  // (field name id, field type id), sorted by name id.
  std::vector<std::pair<StrId, StrId>> fields;

  const StrId* FindField(StrId name) const;
};

struct TracepointRecord {
  std::vector<std::pair<StrId, StrId>> func_params;  // ordered
  std::vector<std::pair<StrId, StrId>> event_fields;  // sorted by name id
};

struct ImageRecord {
  std::string label;
  SurfaceMeta meta;
  std::map<StrId, FuncRecord> funcs;
  std::map<StrId, StructRecord> structs;
  std::map<StrId, TracepointRecord> tracepoints;
  std::set<StrId> syscalls;
  bool compat_syscalls_traceable = true;
  uint64_t pt_regs_hash = 0;
  // Salvage provenance, persisted with the record (see dataset_io.cc):
  // per-subsystem degradation states plus the extraction ledger, so report
  // consumers can tell which conclusions rest on partial data.
  SurfaceHealth health;

  bool AnyDegraded() const { return health.AnyDegraded(); }
};

class Dataset : public DatasetView {
 public:
  // Distills one surface; images are queried in insertion order.
  void AddImage(const std::string& label, const DependencySurface& surface);

  size_t num_images() const override { return images_.size(); }
  const std::vector<ImageRecord>& images() const { return images_; }
  std::vector<std::string> labels() const override;
  SurfaceMeta MetaAt(size_t image_index) const override;
  std::string HealthSummaryAt(size_t image_index) const override;
  bool AnyDegradedAt(size_t image_index) const override;

  // All queries return one mismatch set per image, in insertion order.
  // Baselines (for Changed) are the construct's definition on the earliest
  // image where it is present.
  std::vector<std::set<MismatchKind>> CheckFunc(const std::string& name) const override;
  std::vector<std::set<MismatchKind>> CheckStruct(const std::string& name) const override;
  // `expected_type` is the program-side expectation (empty: fall back to
  // the baseline image's type). Guarded accesses never report kAbsent.
  std::vector<std::set<MismatchKind>> CheckField(const std::string& struct_name,
                                                 const std::string& field_name,
                                                 const std::string& expected_type,
                                                 bool guarded) const override;
  std::vector<std::set<MismatchKind>> CheckTracepoint(const std::string& event) const override;
  std::vector<std::set<MismatchKind>> CheckSyscall(const std::string& name) const override;
  // Register-layout mismatch vs the first image (Table 5's "Register Δ").
  std::vector<std::set<MismatchKind>> CheckRegisters() const override;

  // Rendered function declaration on one image; nullopt when absent there.
  std::optional<std::string_view> FuncDeclAt(const std::string& name,
                                             size_t image_index) const override;
  // Field type string on one image; nullopt when absent.
  std::optional<std::string_view> FieldTypeAt(const std::string& struct_name,
                                              const std::string& field_name,
                                              size_t image_index) const override;

  // Appends a pre-built record (deserialization path; see dataset_io.h).
  // String ids inside the record must already be interned in this dataset.
  void RestoreImage(ImageRecord record) { images_.push_back(std::move(record)); }

  // Interning accessors (exposed for benches and serialization).
  size_t pool_size() const { return pool_.size(); }
  StrId Intern(const std::string& s);
  // kNoStr if the string was never interned.
  static constexpr StrId kNoStr = 0xffffffff;
  StrId Lookup(const std::string& s) const;
  const std::string& StringAt(StrId id) const { return pool_[id]; }

  // Publishes intern hit/miss counts accumulated since the last flush to the
  // current obs::Context. Intern() itself only bumps plain members — it is
  // the hot path of distillation, and resolving a registry counter per string
  // (or caching one across per-image contexts) would be wrong or slow.
  // AddImage flushes automatically; LoadDataset flushes after the pool read.
  void FlushInternMetrics();

 private:
  std::vector<ImageRecord> images_;
  std::vector<std::string> pool_;
  std::unordered_map<std::string, StrId> pool_index_;
  uint64_t intern_hits_ = 0;
  uint64_t intern_misses_ = 0;
  uint64_t intern_hits_flushed_ = 0;
  uint64_t intern_misses_flushed_ = 0;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_CORE_DATASET_H_
