// Pairwise comparison of dependency surfaces: which constructs were added,
// removed, or changed, with per-construct change-kind classification
// (Tables 3-4 of the paper).
#ifndef DEPSURF_SRC_CORE_SURFACE_DIFF_H_
#define DEPSURF_SRC_CORE_SURFACE_DIFF_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/dependency_surface.h"

namespace depsurf {

enum class FuncChangeKind : uint8_t {
  kParamAdded,
  kParamRemoved,
  kParamReordered,
  kParamTypeChanged,
  kReturnTypeChanged,
};

enum class StructChangeKind : uint8_t {
  kFieldAdded,
  kFieldRemoved,
  kFieldTypeChanged,
};

enum class TracepointChangeKind : uint8_t {
  kEventChanged,  // event struct differs
  kFuncChanged,   // tracing-function signature differs
};

const char* FuncChangeKindName(FuncChangeKind kind);
const char* StructChangeKindName(StructChangeKind kind);
const char* TracepointChangeKindName(TracepointChangeKind kind);

template <typename ChangeKind>
struct ConstructDiff {
  std::vector<std::string> added;
  std::vector<std::string> removed;
  std::map<std::string, std::vector<ChangeKind>> changed;
};

struct SurfaceDiff {
  ConstructDiff<FuncChangeKind> funcs;
  ConstructDiff<StructChangeKind> structs;
  ConstructDiff<TracepointChangeKind> tracepoints;
  ConstructDiff<int> syscalls;  // no change kinds: presence only
};

// Compares two FUNC declarations (across graphs). Empty result: identical.
std::vector<FuncChangeKind> CompareFuncDecls(const TypeGraph& old_graph, BtfTypeId old_func,
                                             const TypeGraph& new_graph, BtfTypeId new_func);

// Compares two struct definitions by id across graphs.
std::vector<StructChangeKind> CompareStructDecls(const TypeGraph& old_graph, BtfTypeId old_id,
                                                 const TypeGraph& new_graph, BtfTypeId new_id);

SurfaceDiff DiffSurfaces(const DependencySurface& older, const DependencySurface& newer);

}  // namespace depsurf

#endif  // DEPSURF_SRC_CORE_SURFACE_DIFF_H_
