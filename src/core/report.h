// Program mismatch reports: the per-dependency × per-image matrix of
// Figure 4, with consequences (Table 1) and implications (Table 2).
#ifndef DEPSURF_SRC_CORE_REPORT_H_
#define DEPSURF_SRC_CORE_REPORT_H_

#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/dependency_set.h"

namespace depsurf {

enum class DepKind : uint8_t { kFunc, kStruct, kField, kTracepoint, kSyscall };
const char* DepKindName(DepKind kind);

enum class Consequence : uint8_t {
  kNone,
  kCompilationError,  // also implies a relocation error for CO-RE binaries
  kRelocationError,
  kAttachmentError,
  kStrayRead,
  kMissingInvocation,
  // A field-missing mismatch whose access the program itself guards with a
  // bpf_core_field_exists branch: the load never executes on kernels
  // without the field, so the mismatch is benign. Assigned only via the
  // guard-aware ConsequenceOf overload (the analyzer supplies the facts).
  kHandledByProgram,
};
const char* ConsequenceName(Consequence consequence);

enum class Implication : uint8_t {
  kNone,
  kExplicitError,     // surfaces before execution
  kIncorrectResult,   // might be detectable
  kIncompleteResult,  // difficult to detect
};
const char* ImplicationName(Implication implication);

// Table 1's mapping from (construct kind, mismatch) to consequence, and
// Table 2's mapping from consequence to implication.
Consequence ConsequenceOf(DepKind kind, MismatchKind mismatch);
// Guard-aware refinement: a field-absent mismatch dominated by an
// exists-guard downgrades from load failure to kHandledByProgram; every
// other (kind, mismatch) pair is unaffected by `guarded`.
Consequence ConsequenceOf(DepKind kind, MismatchKind mismatch, bool guarded);
Implication ImplicationOf(Consequence consequence);

// Per-construct-kind unique-dependency counts (one Table 7 row segment).
struct CategoryCounts {
  int total = 0;
  int absent = 0;
  int changed = 0;
  int full_inline = 0;
  int selective = 0;
  int transformed = 0;
  int duplicated = 0;
  int collided = 0;

  bool AnyMismatch() const {
    return absent + changed + full_inline + selective + transformed + duplicated + collided > 0;
  }
};

struct ReportRow {
  DepKind kind;
  std::string name;  // "blk_account_io_start" or "request::rq_disk"
  std::vector<std::set<MismatchKind>> cells;  // one per image

  bool AnyMismatch() const;
};

struct ProgramReport {
  std::string program;
  std::vector<std::string> image_labels;
  // Parallel to image_labels: health summary ("clean" or e.g.
  // "dwarf=degraded") of each image's surface at extraction time.
  // Mismatches in a degraded column may reflect extraction loss rather
  // than the kernel, so RenderMatrix and ExplainReport flag them.
  std::vector<std::string> image_health;
  std::vector<ReportRow> rows;
  CategoryCounts funcs;
  CategoryCounts structs;
  CategoryCounts fields;
  CategoryCounts tracepoints;
  CategoryCounts syscalls;

  bool AnyMismatch() const;
  // True when any column's surface was salvaged rather than clean.
  bool AnyDegradedImage() const;
  // Figure-4 style ASCII matrix (rows = dependencies, columns = images).
  std::string RenderMatrix() const;
  // Worst implication across all cells (for one-line summaries).
  Implication WorstImplication() const;
};

// Compact cell code used in report matrices and serve responses: "." for a
// clean cell, "-" when absence dominates, else concatenated mismatch codes.
std::string MismatchCellString(const std::set<MismatchKind>& cell);

// Analysis runs against the read-side view so both a fully parsed `Dataset`
// and a zero-copy `MmapDataset` can serve as the corpus.
ProgramReport AnalyzeProgram(const DatasetView& dataset, const DependencySet& deps);

// Human-readable diagnosis of every mismatching dependency, with rendered
// declarations pulled from the dataset, e.g.
//   function blk_account_io_start
//     changed at v5.8-x86-generic-gcc10:
//       was: void blk_account_io_start(struct request *rq, bool new_io)
//       now: void blk_account_io_start(struct request *rq)
//     fully inlined from v5.19-... -> attachment error
std::string ExplainReport(const DatasetView& dataset, const ProgramReport& report);

}  // namespace depsurf

#endif  // DEPSURF_SRC_CORE_REPORT_H_
