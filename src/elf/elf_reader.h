// Parses ELF objects produced by ElfWriter (and structurally-valid ELF in
// general, within the supported subset). All parsing is bounds-checked and
// reports malformed input via Result rather than aborting.
#ifndef DEPSURF_SRC_ELF_ELF_READER_H_
#define DEPSURF_SRC_ELF_ELF_READER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/elf/elf.h"
#include "src/util/byte_buffer.h"
#include "src/util/error.h"

namespace depsurf {

struct ElfSectionView {
  std::string name;
  SectionType type = SectionType::kNull;
  uint64_t flags = 0;
  uint64_t addr = 0;
  uint64_t offset = 0;  // file offset
  uint64_t size = 0;
  uint32_t link = 0;
  uint64_t entsize = 0;
};

class ElfReader {
 public:
  // Takes ownership of the file bytes.
  static Result<ElfReader> Parse(std::vector<uint8_t> bytes);

  const ElfIdent& ident() const { return ident_; }
  int pointer_size() const { return ident_.pointer_size(); }
  Endian endian() const { return ident_.endian; }

  const std::vector<ElfSectionView>& sections() const { return sections_; }
  const std::vector<ElfSymbol>& symbols() const { return symbols_; }

  // Finds a section by name; nullptr if absent.
  const ElfSectionView* SectionByName(std::string_view name) const;

  // A bounds-checked reader over the section body, endianness inherited
  // from the file.
  Result<ByteReader> SectionData(const ElfSectionView& section) const;
  Result<ByteReader> SectionDataByName(std::string_view name) const;

  // Resolves a virtual address to a reader positioned at that address inside
  // the containing allocated section. This is the primitive behind the
  // "generic parser that interprets and dereferences contents in the data
  // sections" used for tracepoint and syscall extraction.
  Result<ByteReader> ReadAtAddress(uint64_t vaddr) const;

  // First symbol with the given name, if any.
  std::optional<ElfSymbol> FindSymbol(std::string_view name) const;

  // All symbols whose st_value equals `addr`.
  std::vector<ElfSymbol> SymbolsAtAddress(uint64_t addr) const;

 private:
  ElfReader() = default;

  Status ParseSections();
  Status ParseSymbols();

  std::vector<uint8_t> bytes_;
  ElfIdent ident_;
  uint64_t shoff_ = 0;
  uint16_t shentsize_ = 0;
  uint16_t shnum_ = 0;
  uint16_t shstrndx_ = 0;
  std::vector<ElfSectionView> sections_;
  std::vector<ElfSymbol> symbols_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_ELF_ELF_READER_H_
