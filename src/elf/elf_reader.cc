#include "src/elf/elf_reader.h"

#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/diagnostic_ledger.h"

namespace depsurf {

namespace {

// Attributes a broken section body to the extraction layer that owns the
// section, so a poisoned .sdwarf_info reads as a DWARF failure in the
// quarantine diagnostics rather than a generic ELF one.
DiagSubsystem SubsystemForSection(std::string_view name) {
  if (name.rfind(".sdwarf", 0) == 0) {
    return DiagSubsystem::kDwarf;
  }
  if (name.rfind(".BTF", 0) == 0) {  // .BTF and .BTF_ids
    return DiagSubsystem::kBtf;
  }
  return DiagSubsystem::kElf;
}

}  // namespace

const char* ElfMachineName(ElfMachine machine) {
  switch (machine) {
    case ElfMachine::kX86_64:
      return "x86";
    case ElfMachine::kAarch64:
      return "arm64";
    case ElfMachine::kArm:
      return "arm32";
    case ElfMachine::kPpc64:
      return "ppc";
    case ElfMachine::kRiscv:
      return "riscv";
  }
  return "unknown";
}

Result<ElfReader> ElfReader::Parse(std::vector<uint8_t> bytes) {
  obs::ScopedSpan span("elf.parse");
  span.AddAttr("bytes", static_cast<uint64_t>(bytes.size()));
  ElfReader reader;
  reader.bytes_ = std::move(bytes);
  if (reader.bytes_.size() < 52) {
    return Error(ErrorCode::kMalformedData, "file too small for ELF header");
  }
  const auto& b = reader.bytes_;
  if (b[0] != 0x7f || b[1] != 'E' || b[2] != 'L' || b[3] != 'F') {
    return Error(ErrorCode::kMalformedData, "bad ELF magic");
  }
  if (b[4] != 1 && b[4] != 2) {
    return Error(ErrorCode::kMalformedData, "bad EI_CLASS");
  }
  if (b[5] != 1 && b[5] != 2) {
    return Error(ErrorCode::kMalformedData, "bad EI_DATA");
  }
  reader.ident_.klass = static_cast<ElfClass>(b[4]);
  reader.ident_.endian = b[5] == 1 ? Endian::kLittle : Endian::kBig;

  ByteReader r(reader.bytes_, reader.ident_.endian);
  DEPSURF_RETURN_IF_ERROR(r.Seek(16));
  DEPSURF_ASSIGN_OR_RETURN(etype, r.ReadU16());
  (void)etype;
  DEPSURF_ASSIGN_OR_RETURN(machine, r.ReadU16());
  reader.ident_.machine = static_cast<ElfMachine>(machine);
  DEPSURF_ASSIGN_OR_RETURN(version, r.ReadU32());
  if (version != 1) {
    return Error(ErrorCode::kMalformedData, "bad e_version");
  }
  int ptr = reader.ident_.pointer_size();
  DEPSURF_ASSIGN_OR_RETURN(entry, r.ReadAddr(ptr));
  (void)entry;
  DEPSURF_ASSIGN_OR_RETURN(phoff, r.ReadAddr(ptr));
  (void)phoff;
  DEPSURF_ASSIGN_OR_RETURN(shoff, r.ReadAddr(ptr));
  reader.shoff_ = shoff;
  DEPSURF_RETURN_IF_ERROR(r.Skip(4 + 2 + 2 + 2));  // flags, ehsize, phentsize, phnum
  DEPSURF_ASSIGN_OR_RETURN(shentsize, r.ReadU16());
  reader.shentsize_ = shentsize;
  DEPSURF_ASSIGN_OR_RETURN(shnum, r.ReadU16());
  reader.shnum_ = shnum;
  DEPSURF_ASSIGN_OR_RETURN(shstrndx, r.ReadU16());
  reader.shstrndx_ = shstrndx;

  DEPSURF_RETURN_IF_ERROR(reader.ParseSections());
  DEPSURF_RETURN_IF_ERROR(reader.ParseSymbols());
  span.AddAttr("sections", static_cast<uint64_t>(reader.sections_.size()));
  span.AddAttr("symbols", static_cast<uint64_t>(reader.symbols_.size()));
  // Counters resolve through the current obs::Context every call — no static
  // pointer caching, which would bind to whichever per-image context parsed
  // the first file and pollute every later one.
  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Counter("elf.files_parsed")->fetch_add(1, std::memory_order_relaxed);
  metrics.Counter("elf.bytes_parsed")
      ->fetch_add(reader.bytes_.size(), std::memory_order_relaxed);
  metrics.Counter("elf.sections_parsed")
      ->fetch_add(reader.sections_.size(), std::memory_order_relaxed);
  metrics.Counter("elf.symbols_parsed")
      ->fetch_add(reader.symbols_.size(), std::memory_order_relaxed);
  obs::Histogram* section_bytes = metrics.GetHistogram("elf.section_bytes");
  for (const ElfSectionView& s : reader.sections_) {
    section_bytes->Record(s.size);
  }
  return reader;
}

Status ElfReader::ParseSections() {
  const size_t expected_entsize = ident_.klass == ElfClass::k64 ? 64 : 40;
  if (shentsize_ != expected_entsize) {
    return Status(ErrorCode::kMalformedData, "unexpected shentsize");
  }
  // shoff_ comes straight from the file; the naive `shoff_ + shnum_ *
  // shentsize_` sum can wrap for hostile headers, so compare subtractively.
  if (shoff_ > bytes_.size() ||
      static_cast<uint64_t>(shnum_) * shentsize_ > bytes_.size() - shoff_) {
    return Status(Error(ErrorCode::kMalformedData, "section header table beyond file")
                      .WithOffset(shoff_));
  }
  if (shstrndx_ >= shnum_) {
    return Status(ErrorCode::kMalformedData, "shstrndx out of range");
  }

  ByteReader r(bytes_, ident_.endian);
  int ptr = ident_.pointer_size();
  sections_.clear();
  sections_.reserve(shnum_);
  std::vector<uint32_t> name_offsets;
  name_offsets.reserve(shnum_);
  for (uint16_t i = 0; i < shnum_; ++i) {
    DEPSURF_RETURN_IF_ERROR(r.Seek(shoff_ + static_cast<uint64_t>(i) * shentsize_));
    ElfSectionView s;
    DEPSURF_ASSIGN_OR_RETURN(name_off, r.ReadU32());
    DEPSURF_ASSIGN_OR_RETURN(type, r.ReadU32());
    s.type = static_cast<SectionType>(type);
    DEPSURF_ASSIGN_OR_RETURN(flags, r.ReadAddr(ptr));
    s.flags = flags;
    DEPSURF_ASSIGN_OR_RETURN(addr, r.ReadAddr(ptr));
    s.addr = addr;
    DEPSURF_ASSIGN_OR_RETURN(offset, r.ReadAddr(ptr));
    s.offset = offset;
    DEPSURF_ASSIGN_OR_RETURN(size, r.ReadAddr(ptr));
    s.size = size;
    DEPSURF_ASSIGN_OR_RETURN(link, r.ReadU32());
    s.link = link;
    DEPSURF_RETURN_IF_ERROR(r.Skip(4));  // sh_info
    DEPSURF_RETURN_IF_ERROR(r.Skip(ptr));  // sh_addralign
    DEPSURF_ASSIGN_OR_RETURN(entsize, r.ReadAddr(ptr));
    s.entsize = entsize;
    name_offsets.push_back(name_off);
    sections_.push_back(std::move(s));
  }

  // Section names are resolved before body-bounds validation so that a
  // broken body can be attributed to the subsystem that owns the section.
  // The shstrtab body itself must be validated first — it is the one section
  // read before names exist, and it is always the ELF layer's problem.
  const ElfSectionView& shstr = sections_[shstrndx_];
  if (shstr.type != SectionType::kStrtab) {
    return Status(ErrorCode::kMalformedData, "shstrtab is not a STRTAB");
  }
  if (shstr.offset > bytes_.size() || shstr.size > bytes_.size() - shstr.offset) {
    return Status(Error(ErrorCode::kMalformedData, "section body beyond file")
                      .WithOffset(shstr.offset)
                      .WithSubsystem(DiagSubsystem::kElf));
  }
  ByteReader names(bytes_.data() + shstr.offset, shstr.size, ident_.endian);
  for (size_t i = 0; i < sections_.size(); ++i) {
    uint32_t off = name_offsets[i];
    if (off == 0) {
      continue;
    }
    DEPSURF_ASSIGN_OR_RETURN(nm, names.ReadCStringAt(off));
    sections_[i].name = nm;
  }

  for (const ElfSectionView& s : sections_) {
    if (s.type != SectionType::kNobits && s.type != SectionType::kNull &&
        (s.offset > bytes_.size() || s.size > bytes_.size() - s.offset)) {
      return Status(Error(ErrorCode::kMalformedData,
                          "section body beyond file: " + std::string(s.name))
                        .WithOffset(s.offset)
                        .WithSubsystem(SubsystemForSection(s.name)));
    }
  }
  return Status::Ok();
}

Status ElfReader::ParseSymbols() {
  const ElfSectionView* symtab = SectionByName(".symtab");
  if (symtab == nullptr) {
    return Status::Ok();  // objects without symbols are legal
  }
  if (symtab->link >= sections_.size()) {
    return Status(ErrorCode::kMalformedData, "symtab link out of range");
  }
  const ElfSectionView& strtab = sections_[symtab->link];
  if (strtab.type != SectionType::kStrtab) {
    return Status(ErrorCode::kMalformedData, "symtab link is not a STRTAB");
  }
  ByteReader names(bytes_.data() + strtab.offset, strtab.size, ident_.endian);
  ByteReader r(bytes_.data() + symtab->offset, symtab->size, ident_.endian);
  const size_t entsize = ident_.klass == ElfClass::k64 ? 24 : 16;
  if (symtab->size % entsize != 0) {
    return Status(ErrorCode::kMalformedData, "symtab size not a multiple of entry size");
  }
  size_t count = symtab->size / entsize;
  symbols_.clear();
  symbols_.reserve(count > 0 ? count - 1 : 0);
  for (size_t i = 0; i < count; ++i) {
    ElfSymbol sym;
    uint32_t name_off = 0;
    if (ident_.klass == ElfClass::k64) {
      DEPSURF_ASSIGN_OR_RETURN(n, r.ReadU32());
      name_off = n;
      DEPSURF_ASSIGN_OR_RETURN(info, r.ReadU8());
      sym.bind = static_cast<SymBind>(info >> 4);
      sym.type = static_cast<SymType>(info & 0xf);
      DEPSURF_RETURN_IF_ERROR(r.Skip(1));
      DEPSURF_ASSIGN_OR_RETURN(shndx, r.ReadU16());
      sym.shndx = shndx;
      DEPSURF_ASSIGN_OR_RETURN(value, r.ReadU64());
      sym.value = value;
      DEPSURF_ASSIGN_OR_RETURN(size, r.ReadU64());
      sym.size = size;
    } else {
      DEPSURF_ASSIGN_OR_RETURN(n, r.ReadU32());
      name_off = n;
      DEPSURF_ASSIGN_OR_RETURN(value, r.ReadU32());
      sym.value = value;
      DEPSURF_ASSIGN_OR_RETURN(size, r.ReadU32());
      sym.size = size;
      DEPSURF_ASSIGN_OR_RETURN(info, r.ReadU8());
      sym.bind = static_cast<SymBind>(info >> 4);
      sym.type = static_cast<SymType>(info & 0xf);
      DEPSURF_RETURN_IF_ERROR(r.Skip(1));
      DEPSURF_ASSIGN_OR_RETURN(shndx, r.ReadU16());
      sym.shndx = shndx;
    }
    if (i == 0) {
      continue;  // null symbol
    }
    if (name_off != 0) {
      DEPSURF_ASSIGN_OR_RETURN(nm, names.ReadCStringAt(name_off));
      sym.name = nm;
    }
    symbols_.push_back(std::move(sym));
  }
  return Status::Ok();
}

const ElfSectionView* ElfReader::SectionByName(std::string_view name) const {
  for (const ElfSectionView& s : sections_) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

Result<ByteReader> ElfReader::SectionData(const ElfSectionView& section) const {
  if (section.offset > bytes_.size() || section.size > bytes_.size() - section.offset) {
    return Error(ErrorCode::kOutOfRange, "section beyond file").WithOffset(section.offset);
  }
  return ByteReader(bytes_.data() + section.offset, section.size, ident_.endian);
}

Result<ByteReader> ElfReader::SectionDataByName(std::string_view name) const {
  const ElfSectionView* s = SectionByName(name);
  if (s == nullptr) {
    return Error(ErrorCode::kNotFound, "no section named " + std::string(name));
  }
  return SectionData(*s);
}

Result<ByteReader> ElfReader::ReadAtAddress(uint64_t vaddr) const {
  for (const ElfSectionView& s : sections_) {
    if ((s.flags & kShfAlloc) == 0 || s.type == SectionType::kNobits) {
      continue;
    }
    if (vaddr >= s.addr && vaddr - s.addr < s.size) {
      DEPSURF_ASSIGN_OR_RETURN(reader, SectionData(s));
      DEPSURF_RETURN_IF_ERROR(reader.Seek(vaddr - s.addr));
      return reader;
    }
  }
  return Error(ErrorCode::kNotFound, "address not in any allocated section");
}

std::optional<ElfSymbol> ElfReader::FindSymbol(std::string_view name) const {
  for (const ElfSymbol& s : symbols_) {
    if (s.name == name) {
      return s;
    }
  }
  return std::nullopt;
}

std::vector<ElfSymbol> ElfReader::SymbolsAtAddress(uint64_t addr) const {
  std::vector<ElfSymbol> out;
  for (const ElfSymbol& s : symbols_) {
    if (s.value == addr) {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace depsurf
