// ELF constants and plain structs shared by the writer and reader.
//
// This is a from-scratch implementation of the subset of the ELF object
// format the project needs: section headers, symbol tables, string tables,
// and data sections addressed by virtual address. Both ELF32/ELF64 and
// little/big endian layouts are supported because the kernel-image corpus
// spans x86/arm64/riscv (ELF64 LE), arm32 (ELF32 LE) and ppc (ELF64 BE).
#ifndef DEPSURF_SRC_ELF_ELF_H_
#define DEPSURF_SRC_ELF_ELF_H_

#include <cstdint>
#include <string>

#include "src/util/byte_buffer.h"

namespace depsurf {

enum class ElfClass : uint8_t { k32 = 1, k64 = 2 };

// e_machine values (subset).
enum class ElfMachine : uint16_t {
  kX86_64 = 62,
  kAarch64 = 183,
  kArm = 40,
  kPpc64 = 21,
  kRiscv = 243,
};

// sh_type values (subset).
enum class SectionType : uint32_t {
  kNull = 0,
  kProgbits = 1,
  kSymtab = 2,
  kStrtab = 3,
  kNobits = 8,
};

// Symbol binding (upper nibble of st_info).
enum class SymBind : uint8_t { kLocal = 0, kGlobal = 1, kWeak = 2 };

// Symbol type (lower nibble of st_info).
enum class SymType : uint8_t { kNoType = 0, kObject = 1, kFunc = 2, kSection = 3 };

// Section flags (subset).
inline constexpr uint64_t kShfAlloc = 0x2;
inline constexpr uint64_t kShfExecinstr = 0x4;

// Special section indexes.
inline constexpr uint16_t kShnUndef = 0;
inline constexpr uint16_t kShnAbs = 0xfff1;

struct ElfIdent {
  ElfClass klass = ElfClass::k64;
  Endian endian = Endian::kLittle;
  ElfMachine machine = ElfMachine::kX86_64;

  int pointer_size() const { return klass == ElfClass::k64 ? 8 : 4; }
};

struct ElfSymbol {
  std::string name;
  uint64_t value = 0;
  uint64_t size = 0;
  SymBind bind = SymBind::kLocal;
  SymType type = SymType::kNoType;
  uint16_t shndx = kShnUndef;
};

// Architecture name used in build specs ("x86", "arm64", ...).
const char* ElfMachineName(ElfMachine machine);

}  // namespace depsurf

#endif  // DEPSURF_SRC_ELF_ELF_H_
