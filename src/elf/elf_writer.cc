#include "src/elf/elf_writer.h"

#include <map>

namespace depsurf {

namespace {

// A deduplicating string table (index 0 is the empty string).
class StrtabBuilder {
 public:
  StrtabBuilder() { bytes_.push_back(0); }

  uint32_t Add(const std::string& s) {
    if (s.empty()) {
      return 0;
    }
    auto it = offsets_.find(s);
    if (it != offsets_.end()) {
      return it->second;
    }
    uint32_t off = static_cast<uint32_t>(bytes_.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
    bytes_.push_back(0);
    offsets_[s] = off;
    return off;
  }

  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
  std::map<std::string, uint32_t> offsets_;
};

struct ShdrFields {
  uint32_t name = 0;
  uint32_t type = 0;
  uint64_t flags = 0;
  uint64_t addr = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t link = 0;
  uint32_t info = 0;
  uint64_t addralign = 1;
  uint64_t entsize = 0;
};

void WriteShdr(ByteWriter& w, const ShdrFields& s, ElfClass klass) {
  int ptr = klass == ElfClass::k64 ? 8 : 4;
  w.WriteU32(s.name);
  w.WriteU32(s.type);
  w.WriteAddr(s.flags, ptr);
  w.WriteAddr(s.addr, ptr);
  w.WriteAddr(s.offset, ptr);
  w.WriteAddr(s.size, ptr);
  w.WriteU32(s.link);
  w.WriteU32(s.info);
  w.WriteAddr(s.addralign, ptr);
  w.WriteAddr(s.entsize, ptr);
}

void WriteSym(ByteWriter& w, const ElfSymbol& sym, uint32_t name_off, ElfClass klass) {
  uint8_t info =
      static_cast<uint8_t>((static_cast<uint8_t>(sym.bind) << 4) | static_cast<uint8_t>(sym.type));
  if (klass == ElfClass::k64) {
    w.WriteU32(name_off);
    w.WriteU8(info);
    w.WriteU8(0);  // st_other
    w.WriteU16(sym.shndx);
    w.WriteU64(sym.value);
    w.WriteU64(sym.size);
  } else {
    w.WriteU32(name_off);
    w.WriteU32(static_cast<uint32_t>(sym.value));
    w.WriteU32(static_cast<uint32_t>(sym.size));
    w.WriteU8(info);
    w.WriteU8(0);
    w.WriteU16(sym.shndx);
  }
}

}  // namespace

uint32_t ElfWriter::AddSection(std::string name, SectionType type, std::vector<uint8_t> data,
                               uint64_t addr, uint64_t flags, uint64_t entsize) {
  sections_.push_back(Section{std::move(name), type, std::move(data), addr, flags, entsize});
  return static_cast<uint32_t>(sections_.size());  // +1 for the null section
}

void ElfWriter::AddSymbol(const ElfSymbol& symbol) { symbols_.push_back(symbol); }

Result<std::vector<uint8_t>> ElfWriter::Finish() const {
  const bool is64 = ident_.klass == ElfClass::k64;
  const size_t ehsize = is64 ? 64 : 52;
  const size_t shentsize = is64 ? 64 : 40;
  const size_t symentsize = is64 ? 24 : 16;

  // Assemble the full section list: user sections, then (optionally)
  // .symtab/.strtab, then .shstrtab.
  std::vector<Section> sections = sections_;
  uint32_t symtab_index = 0;
  if (!symbols_.empty()) {
    StrtabBuilder strtab;
    ByteWriter symdata(ident_.endian);
    // Entry 0 is the mandatory null symbol.
    WriteSym(symdata, ElfSymbol{}, 0, ident_.klass);
    // ELF requires local symbols before globals; honor it so the file is
    // valid for external tooling too.
    std::vector<const ElfSymbol*> ordered;
    ordered.reserve(symbols_.size());
    for (const ElfSymbol& s : symbols_) {
      if (s.bind == SymBind::kLocal) {
        ordered.push_back(&s);
      }
    }
    uint32_t first_global = static_cast<uint32_t>(ordered.size()) + 1;
    for (const ElfSymbol& s : symbols_) {
      if (s.bind != SymBind::kLocal) {
        ordered.push_back(&s);
      }
    }
    for (const ElfSymbol* s : ordered) {
      WriteSym(symdata, *s, strtab.Add(s->name), ident_.klass);
    }
    symtab_index = static_cast<uint32_t>(sections.size()) + 1;
    Section symtab{".symtab", SectionType::kSymtab, symdata.TakeBytes(), 0, 0, symentsize};
    symtab.link = symtab_index + 1;  // the .strtab that follows
    symtab.info = first_global;      // sh_info: one past the last local symbol
    sections.push_back(std::move(symtab));
    sections.push_back(Section{".strtab", SectionType::kStrtab, strtab.TakeBytes(), 0, 0, 0});
  }

  StrtabBuilder shstrtab;
  std::vector<uint32_t> name_offsets;
  name_offsets.reserve(sections.size() + 1);
  for (const Section& s : sections) {
    name_offsets.push_back(shstrtab.Add(s.name));
  }
  uint32_t shstrtab_name = shstrtab.Add(".shstrtab");
  std::vector<uint8_t> shstrtab_bytes = shstrtab.TakeBytes();
  uint32_t shstrtab_index = static_cast<uint32_t>(sections.size()) + 1;

  // Compute file offsets for section bodies.
  std::vector<uint64_t> offsets(sections.size());
  uint64_t cursor = ehsize;
  for (size_t i = 0; i < sections.size(); ++i) {
    cursor = (cursor + 7) & ~uint64_t{7};
    offsets[i] = cursor;
    cursor += sections[i].data.size();
  }
  cursor = (cursor + 7) & ~uint64_t{7};
  uint64_t shstrtab_offset = cursor;
  cursor += shstrtab_bytes.size();
  cursor = (cursor + 7) & ~uint64_t{7};
  uint64_t shoff = cursor;
  uint64_t shnum = sections.size() + 2;  // + null + shstrtab

  ByteWriter w(ident_.endian);
  // e_ident
  w.WriteU8(0x7f);
  w.WriteString("ELF");
  w.WriteU8(static_cast<uint8_t>(ident_.klass));
  w.WriteU8(ident_.endian == Endian::kLittle ? 1 : 2);
  w.WriteU8(1);  // EV_CURRENT
  w.WriteZeros(9);
  w.WriteU16(2);  // ET_EXEC: kernel images are executables
  w.WriteU16(static_cast<uint16_t>(ident_.machine));
  w.WriteU32(1);  // e_version
  int ptr = ident_.pointer_size();
  w.WriteAddr(0, ptr);      // e_entry
  w.WriteAddr(0, ptr);      // e_phoff
  w.WriteAddr(shoff, ptr);  // e_shoff
  w.WriteU32(0);            // e_flags
  w.WriteU16(static_cast<uint16_t>(ehsize));
  w.WriteU16(0);  // e_phentsize
  w.WriteU16(0);  // e_phnum
  w.WriteU16(static_cast<uint16_t>(shentsize));
  w.WriteU16(static_cast<uint16_t>(shnum));
  w.WriteU16(static_cast<uint16_t>(shstrtab_index));
  if (w.size() != ehsize) {
    return Error(ErrorCode::kInternal, "ELF header size mismatch");
  }

  for (size_t i = 0; i < sections.size(); ++i) {
    w.AlignTo(8);
    if (w.size() != offsets[i]) {
      return Error(ErrorCode::kInternal, "section offset mismatch");
    }
    w.WriteBytes(sections[i].data.data(), sections[i].data.size());
  }
  w.AlignTo(8);
  w.WriteBytes(shstrtab_bytes.data(), shstrtab_bytes.size());
  w.AlignTo(8);
  if (w.size() != shoff) {
    return Error(ErrorCode::kInternal, "shoff mismatch");
  }

  // Section header table: null, user sections, shstrtab.
  WriteShdr(w, ShdrFields{}, ident_.klass);
  for (size_t i = 0; i < sections.size(); ++i) {
    const Section& s = sections[i];
    ShdrFields f;
    f.name = name_offsets[i];
    f.type = static_cast<uint32_t>(s.type);
    f.flags = s.flags;
    f.offset = offsets[i];
    f.size = s.data.size();
    f.entsize = s.entsize;
    f.link = s.link;
    f.info = s.info;
    f.addr = s.addr;
    WriteShdr(w, f, ident_.klass);
  }
  ShdrFields shstr;
  shstr.name = shstrtab_name;
  shstr.type = static_cast<uint32_t>(SectionType::kStrtab);
  shstr.offset = shstrtab_offset;
  shstr.size = shstrtab_bytes.size();
  WriteShdr(w, shstr, ident_.klass);

  (void)symtab_index;
  return w.TakeBytes();
}

}  // namespace depsurf
