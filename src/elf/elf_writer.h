// Serializes an ELF object (sections + symbols) to bytes.
//
// Layout produced: ELF header, section bodies (in insertion order),
// .symtab/.strtab (if any symbols), .shstrtab, then the section header
// table. Virtual addresses are caller-assigned per section; the writer does
// not relocate anything.
#ifndef DEPSURF_SRC_ELF_ELF_WRITER_H_
#define DEPSURF_SRC_ELF_ELF_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/elf/elf.h"
#include "src/util/byte_buffer.h"
#include "src/util/error.h"

namespace depsurf {

class ElfWriter {
 public:
  explicit ElfWriter(ElfIdent ident) : ident_(ident) {}

  const ElfIdent& ident() const { return ident_; }

  // Adds a PROGBITS (or other) section with raw contents. Returns the
  // eventual section header index (1-based; index 0 is the null section).
  // `addr` is the virtual address the section claims to be loaded at.
  uint32_t AddSection(std::string name, SectionType type, std::vector<uint8_t> data,
                      uint64_t addr = 0, uint64_t flags = 0, uint64_t entsize = 0);

  // Adds a symbol. `shndx` is a section index previously returned by
  // AddSection (or kShnAbs/kShnUndef).
  void AddSymbol(const ElfSymbol& symbol);

  size_t num_sections() const { return sections_.size(); }
  size_t num_symbols() const { return symbols_.size(); }

  // Serializes the object. The writer can be reused only by rebuilding.
  Result<std::vector<uint8_t>> Finish() const;

 private:
  struct Section {
    std::string name;
    SectionType type;
    std::vector<uint8_t> data;
    uint64_t addr;
    uint64_t flags;
    uint64_t entsize;
    uint32_t link = 0;
    uint32_t info = 0;
  };

  ElfIdent ident_;
  std::vector<Section> sections_;
  std::vector<ElfSymbol> symbols_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_ELF_ELF_WRITER_H_
