#include "src/kmodel/type_lang.h"

#include <cctype>

#include "src/util/str_util.h"

namespace depsurf {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

// Fixed widths of the base C types and common kernel typedefs (LP64 unless
// the lowering overrides `long`).
struct IntInfo {
  const char* name;
  uint32_t size;
  bool is_long;  // width follows the target's long size
};

constexpr IntInfo kIntTypes[] = {
    {"void", 0, false},
    {"char", 1, false},
    {"signed char", 1, false},
    {"unsigned char", 1, false},
    {"short", 2, false},
    {"short int", 2, false},
    {"unsigned short", 2, false},
    {"short unsigned int", 2, false},
    {"int", 4, false},
    {"unsigned int", 4, false},
    {"unsigned", 4, false},
    {"long", 0, true},
    {"long int", 0, true},
    {"unsigned long", 0, true},
    {"long unsigned int", 0, true},
    {"long long", 8, false},
    {"long long int", 8, false},
    {"unsigned long long", 8, false},
    {"long long unsigned int", 8, false},
    {"bool", 1, false},
    {"_Bool", 1, false},
};

struct TypedefInfo {
  const char* name;
  const char* underlying;
};

// Kernel typedef vocabulary used by the corpus.
constexpr TypedefInfo kTypedefs[] = {
    {"u8", "unsigned char"},       {"u16", "unsigned short"},
    {"u32", "unsigned int"},       {"u64", "unsigned long long"},
    {"s8", "signed char"},         {"s16", "short"},
    {"s32", "int"},                {"s64", "long long"},
    {"__u32", "unsigned int"},     {"__u64", "unsigned long long"},
    {"size_t", "unsigned long"},   {"ssize_t", "long"},
    {"pid_t", "int"},              {"uid_t", "unsigned int"},
    {"gid_t", "unsigned int"},     {"loff_t", "long long"},
    {"off_t", "long"},             {"dev_t", "unsigned int"},
    {"umode_t", "unsigned short"}, {"sector_t", "unsigned long long"},
    {"gfp_t", "unsigned int"},     {"fmode_t", "unsigned int"},
    {"blk_status_t", "unsigned char"},
    {"pgoff_t", "unsigned long"},  {"cputime_t", "unsigned long"},
    {"ktime_t", "long long"},      {"time_t", "long"},
    {"__kernel_time_t", "long"},   {"bool_t", "int"},
    {"uintptr_t", "unsigned long"},
};

}  // namespace

Result<BtfTypeId> TypeLowering::DefineStruct(const StructSpec& spec) {
  if (spec.name.empty()) {
    return Error(ErrorCode::kInvalidArgument, "struct spec must be named");
  }
  // Insert a forward declaration first so self-referential fields resolve.
  auto it = structs_.find(spec.name);
  bool preexisting = it != structs_.end();
  std::vector<BtfMember> members;
  members.reserve(spec.fields.size());
  uint32_t bits = 0;
  for (const FieldSpec& field : spec.fields) {
    DEPSURF_ASSIGN_OR_RETURN(type_id, Lower(field.type));
    uint32_t size = SizeOf(type_id);
    uint32_t align_bits = 8 * (size == 0 ? 1 : (size > 8 ? 8 : size));
    if (bits % align_bits != 0) {
      bits += align_bits - bits % align_bits;
    }
    members.push_back(BtfMember{field.name, type_id, bits});
    bits += 8 * size;
  }
  uint32_t byte_size = (bits + 7) / 8;
  if (preexisting) {
    // Replace the definition in place so existing references stay valid.
    BtfType* node = graph_.GetMutable(it->second);
    if (node == nullptr || (node->kind != BtfKind::kStruct && node->kind != BtfKind::kFwd)) {
      return Error(ErrorCode::kInternal, "struct registry out of sync");
    }
    node->kind = BtfKind::kStruct;
    node->size = byte_size;
    node->members = std::move(members);
    return it->second;
  }
  BtfTypeId id = graph_.Struct(spec.name, byte_size, std::move(members));
  structs_[spec.name] = id;
  return id;
}

Result<BtfTypeId> TypeLowering::Lower(const TypeStr& type) {
  std::string_view s = Trim(type);
  if (s.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty type");
  }
  // Array suffix binds last.
  if (s.back() == ']') {
    size_t open = s.rfind('[');
    if (open == std::string_view::npos) {
      return Error(ErrorCode::kInvalidArgument, "unmatched ] in type: " + type);
    }
    uint32_t n = 0;
    for (char c : s.substr(open + 1, s.size() - open - 2)) {
      if (c < '0' || c > '9') {
        return Error(ErrorCode::kInvalidArgument, "bad array length in: " + type);
      }
      n = n * 10 + static_cast<uint32_t>(c - '0');
    }
    DEPSURF_ASSIGN_OR_RETURN(elem, Lower(std::string(Trim(s.substr(0, open)))));
    return graph_.Array(elem, n);
  }
  // Pointer suffix.
  if (s.back() == '*') {
    DEPSURF_ASSIGN_OR_RETURN(inner, Lower(std::string(Trim(s.substr(0, s.size() - 1)))));
    return graph_.Ptr(inner);
  }
  // const qualifier.
  if (StartsWith(s, "const ")) {
    DEPSURF_ASSIGN_OR_RETURN(inner, Lower(std::string(Trim(s.substr(6)))));
    return graph_.Const(inner);
  }
  return LowerCore(s);
}

Result<BtfTypeId> TypeLowering::LowerCore(std::string_view core) {
  if (StartsWith(core, "struct ") || StartsWith(core, "union ") || StartsWith(core, "enum ")) {
    size_t space = core.find(' ');
    std::string_view name = Trim(core.substr(space + 1));
    if (name.empty()) {
      return Error(ErrorCode::kInvalidArgument, "aggregate without name");
    }
    if (StartsWith(core, "struct ")) {
      auto it = structs_.find(name);
      if (it != structs_.end()) {
        return it->second;
      }
      // Opaque reference: a FWD node registered so a later DefineStruct
      // upgrades it in place.
      BtfTypeId id = graph_.Fwd(name);
      structs_[std::string(name)] = id;
      return id;
    }
    if (StartsWith(core, "union ")) {
      return graph_.Union(std::string(name), 0, {});
    }
    return graph_.Enum(std::string(name), {});
  }
  // Built-in integer types.
  for (const IntInfo& info : kIntTypes) {
    if (core == info.name) {
      if (core == "void") {
        return kBtfVoid;
      }
      uint32_t size = info.is_long ? static_cast<uint32_t>(long_size_) : info.size;
      return graph_.Int(core, size);
    }
  }
  // Known typedefs.
  for (const TypedefInfo& info : kTypedefs) {
    if (core == info.name) {
      DEPSURF_ASSIGN_OR_RETURN(underlying, Lower(info.underlying));
      return graph_.Typedef(core, underlying);
    }
  }
  if (core == "double" || core == "float") {
    return graph_.Float(core, core == "double" ? 8 : 4);
  }
  // Unknown identifier: treat as an int-typedef (common for generated
  // kernel typedefs in the synthetic corpus).
  DEPSURF_ASSIGN_OR_RETURN(fallback, Lower("int"));
  return graph_.Typedef(core, fallback);
}

uint32_t TypeLowering::SizeOf(BtfTypeId id) const {
  const BtfType* t = graph_.Get(graph_.ResolveAliases(id));
  if (t == nullptr) {
    return 0;
  }
  switch (t->kind) {
    case BtfKind::kInt:
    case BtfKind::kFloat:
    case BtfKind::kStruct:
    case BtfKind::kUnion:
    case BtfKind::kEnum:
      return t->size;
    case BtfKind::kPtr:
      return static_cast<uint32_t>(pointer_size_);
    case BtfKind::kArray:
      return t->nelems * SizeOf(t->ref_type_id);
    case BtfKind::kFwd:
      return 0;  // opaque
    default:
      return 0;
  }
}

}  // namespace depsurf
