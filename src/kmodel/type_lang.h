// The small C-like type language used by construct specs, and its lowering
// into BTF type graphs.
//
// Grammar (informal):
//   type     := "const "? core ("*" | " *")* ("[" digits "]")?
//   core     := ("struct"|"union"|"enum") " " ident | ident (" " ident)*
// Examples: "int", "unsigned long", "struct file *", "const char *",
//           "u64", "char[16]", "struct request **".
#ifndef DEPSURF_SRC_KMODEL_TYPE_LANG_H_
#define DEPSURF_SRC_KMODEL_TYPE_LANG_H_

#include <map>
#include <string>
#include <string_view>

#include "src/btf/btf.h"
#include "src/kmodel/spec.h"
#include "src/util/error.h"

namespace depsurf {

// Lowers spec types into one TypeGraph, deduplicating named aggregates.
// Struct references lower to the registered full definition when one was
// added via DefineStruct, and to a forward declaration otherwise (kernel
// pointers are usually opaque at use sites).
class TypeLowering {
 public:
  // `long_size` distinguishes LP64 (8) from ILP32 (4) targets.
  explicit TypeLowering(TypeGraph& graph, int pointer_size = 8, int long_size = 8)
      : graph_(graph), pointer_size_(pointer_size), long_size_(long_size) {}

  TypeGraph& graph() { return graph_; }

  // Registers (or replaces) the full definition of a named struct; later
  // Lower("struct X") calls resolve to it. Field types are lowered
  // recursively; self references go through FWD nodes.
  Result<BtfTypeId> DefineStruct(const StructSpec& spec);

  // Lowers a type expression. Unknown bare identifiers are treated as
  // integer typedefs of width 4 (the common kernel pattern).
  Result<BtfTypeId> Lower(const TypeStr& type);

  // Computed byte size of a lowered type (0 for void/functions).
  uint32_t SizeOf(BtfTypeId id) const;

 private:
  Result<BtfTypeId> LowerCore(std::string_view core);

  TypeGraph& graph_;
  int pointer_size_;
  int long_size_;
  std::map<std::string, BtfTypeId, std::less<>> structs_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_KMODEL_TYPE_LANG_H_
