#include "src/kmodel/build_spec.h"

#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {

const char* ArchName(Arch arch) {
  switch (arch) {
    case Arch::kX86:
      return "x86";
    case Arch::kArm64:
      return "arm64";
    case Arch::kArm32:
      return "arm32";
    case Arch::kPpc:
      return "ppc";
    case Arch::kRiscv:
      return "riscv";
  }
  return "?";
}

const char* FlavorName(Flavor flavor) {
  switch (flavor) {
    case Flavor::kGeneric:
      return "generic";
    case Flavor::kLowLatency:
      return "lowlatency";
    case Flavor::kAws:
      return "aws";
    case Flavor::kAzure:
      return "azure";
    case Flavor::kGcp:
      return "gcp";
  }
  return "?";
}

ElfIdent ElfIdentFor(Arch arch) {
  switch (arch) {
    case Arch::kX86:
      return ElfIdent{ElfClass::k64, Endian::kLittle, ElfMachine::kX86_64};
    case Arch::kArm64:
      return ElfIdent{ElfClass::k64, Endian::kLittle, ElfMachine::kAarch64};
    case Arch::kArm32:
      return ElfIdent{ElfClass::k32, Endian::kLittle, ElfMachine::kArm};
    case Arch::kPpc:
      return ElfIdent{ElfClass::k64, Endian::kBig, ElfMachine::kPpc64};
    case Arch::kRiscv:
      return ElfIdent{ElfClass::k64, Endian::kLittle, ElfMachine::kRiscv};
  }
  return ElfIdent{};
}

const std::vector<std::string>& ParamRegisters(Arch arch) {
  static const std::vector<std::string> x86 = {"di", "si", "dx", "cx", "r8", "r9"};
  static const std::vector<std::string> arm64 = {"regs[0]", "regs[1]", "regs[2]", "regs[3]",
                                                 "regs[4]", "regs[5]", "regs[6]", "regs[7]"};
  static const std::vector<std::string> arm32 = {"uregs[0]", "uregs[1]", "uregs[2]", "uregs[3]"};
  static const std::vector<std::string> ppc = {"gpr[3]", "gpr[4]", "gpr[5]", "gpr[6]",
                                               "gpr[7]", "gpr[8]", "gpr[9]", "gpr[10]"};
  static const std::vector<std::string> riscv = {"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"};
  switch (arch) {
    case Arch::kX86:
      return x86;
    case Arch::kArm64:
      return arm64;
    case Arch::kArm32:
      return arm32;
    case Arch::kPpc:
      return ppc;
    case Arch::kRiscv:
      return riscv;
  }
  return x86;
}

bool CompatSyscallsTraceable(Arch arch) {
  switch (arch) {
    case Arch::kX86:
    case Arch::kArm64:
    case Arch::kRiscv:
      return false;  // the blind spot the paper calls out
    case Arch::kArm32:
      return true;  // native 32-bit: there is no compat layer
    case Arch::kPpc:
      return true;
  }
  return false;
}

std::string BuildSpec::Label() const {
  return StrFormat("%s-%s-%s-gcc%d", version.Tag().c_str(), ArchName(arch), FlavorName(flavor),
                   gcc_major);
}

uint64_t BuildSpec::Key() const {
  return HashCombine({version.Key(), static_cast<uint64_t>(arch), static_cast<uint64_t>(flavor),
                      static_cast<uint64_t>(gcc_major)});
}

}  // namespace depsurf
