// Semantic (source-level) kernel construct specifications.
//
// These are the generator-side model of a kernel source tree: what a
// function/struct/tracepoint/syscall looks like *before* configuration and
// compilation. The analyzer never sees these; it sees only the binary image
// they are compiled into.
#ifndef DEPSURF_SRC_KMODEL_SPEC_H_
#define DEPSURF_SRC_KMODEL_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace depsurf {

// Types are written in a small C-like language ("int", "struct file *",
// "const char *", "u64", "char[16]"); see type_lang.h for the grammar and
// the lowering into BTF.
using TypeStr = std::string;

enum class Linkage : uint8_t { kStatic, kGlobal };

// How the simulated compiler should treat a function. kAuto lets the
// compiler decide from linkage/size heuristics; the others force an outcome
// (used by scripted constructs reproducing real kernel lineages).
enum class InlineHint : uint8_t {
  kAuto,
  kNever,           // always out of line at every call site
  kForceFull,       // inlined at every call site (no symbol remains)
  kForceSelective,  // inlined at same-TU call sites, out of line elsewhere
};

struct ParamSpec {
  std::string name;
  TypeStr type;

  bool operator==(const ParamSpec&) const = default;
};

struct FuncSpec {
  std::string name;
  TypeStr return_type = "void";
  std::vector<ParamSpec> params;
  Linkage linkage = Linkage::kGlobal;
  std::string decl_file;  // "fs/sync.c" or a header for header-defined statics
  uint32_t decl_line = 1;
  bool defined_in_header = false;  // static-in-header: duplicated per including TU
  InlineHint inline_hint = InlineHint::kAuto;
  bool is_lsm_hook = false;
  bool is_kfunc = false;
  // Callers, as "file:function" strings; used by the compiler simulator to
  // materialize inline sites and call-site records.
  std::vector<std::string> callers;
  // When non-empty, the compiler applies this transformation suffix
  // ("isra", "constprop", ...) if its major version is at least
  // forced_transform_min_gcc (scripted lineages use this).
  std::string forced_transform;
  int forced_transform_min_gcc = 0;

  bool operator==(const FuncSpec&) const = default;
};

struct FieldSpec {
  std::string name;
  TypeStr type;

  bool operator==(const FieldSpec&) const = default;
};

struct StructSpec {
  std::string name;
  std::vector<FieldSpec> fields;

  bool operator==(const StructSpec&) const = default;
};

// A tracepoint has two eBPF-visible components: the tracing function
// (raw-tracepoint attachment) and the event struct (classic attachment).
struct TracepointSpec {
  std::string event_name;             // "block_rq_issue"
  std::string class_name;             // "block_rq"
  std::vector<ParamSpec> func_params; // tracing-function parameters
  std::vector<FieldSpec> event_fields;
  std::string fmt;                    // printk-style format of the event

  bool operator==(const TracepointSpec&) const = default;
};

struct SyscallSpec {
  std::string name;  // "openat"
  int nr = -1;       // slot in sys_call_table
  // True when the 32-bit compat entry point exists for this call.
  bool has_compat = false;

  bool operator==(const SyscallSpec&) const = default;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_KMODEL_SPEC_H_
