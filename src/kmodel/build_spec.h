// Build configuration of one kernel image: version x architecture x
// distribution flavor x compiler. Also carries per-architecture ABI facts
// (ELF identity, pt_regs argument registers) used across the project.
#ifndef DEPSURF_SRC_KMODEL_BUILD_SPEC_H_
#define DEPSURF_SRC_KMODEL_BUILD_SPEC_H_

#include <string>
#include <vector>

#include "src/elf/elf.h"
#include "src/kmodel/kernel_version.h"

namespace depsurf {

enum class Arch : uint8_t { kX86, kArm64, kArm32, kPpc, kRiscv };
enum class Flavor : uint8_t { kGeneric, kLowLatency, kAws, kAzure, kGcp };

inline constexpr Arch kAllArches[] = {Arch::kX86, Arch::kArm64, Arch::kArm32, Arch::kPpc,
                                      Arch::kRiscv};
inline constexpr Flavor kAllFlavors[] = {Flavor::kGeneric, Flavor::kLowLatency, Flavor::kAws,
                                         Flavor::kAzure, Flavor::kGcp};

const char* ArchName(Arch arch);
const char* FlavorName(Flavor flavor);

// ELF identity of an image built for `arch`. arm32 is ELF32/LE; ppc is
// ELF64/BE; the rest are ELF64/LE — deliberately covering both pointer
// sizes and endiannesses.
ElfIdent ElfIdentFor(Arch arch);

// pt_regs expressions through which a kprobe reads positional arguments,
// e.g. x86 {di, si, dx, cx, r8, r9}, arm64 {regs[0] .. regs[7]}.
const std::vector<std::string>& ParamRegisters(Arch arch);

// Whether the architecture natively supports tracing of 32-bit compat
// system calls (the paper: x86/arm64/riscv do not).
bool CompatSyscallsTraceable(Arch arch);

struct BuildSpec {
  KernelVersion version;
  Arch arch = Arch::kX86;
  Flavor flavor = Flavor::kGeneric;
  int gcc_major = 9;

  // "v5.4-x86-generic-gcc9", the image identity used throughout reports.
  std::string Label() const;
  uint64_t Key() const;

  bool operator==(const BuildSpec&) const = default;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_KMODEL_BUILD_SPEC_H_
