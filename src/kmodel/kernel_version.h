// Kernel version identifiers ("5.15") with ordering.
#ifndef DEPSURF_SRC_KMODEL_KERNEL_VERSION_H_
#define DEPSURF_SRC_KMODEL_KERNEL_VERSION_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/error.h"

namespace depsurf {

struct KernelVersion {
  int major = 0;
  int minor = 0;

  constexpr KernelVersion() = default;
  constexpr KernelVersion(int major_in, int minor_in) : major(major_in), minor(minor_in) {}

  auto operator<=>(const KernelVersion&) const = default;

  std::string ToString() const;
  // "v5.15"
  std::string Tag() const;
  // Stable 64-bit key for PRNG derivation.
  uint64_t Key() const { return (static_cast<uint64_t>(major) << 16) | static_cast<uint64_t>(minor); }

  // Accepts "5.15" or "v5.15".
  static Result<KernelVersion> Parse(std::string_view text);
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_KMODEL_KERNEL_VERSION_H_
