#include "src/kmodel/kernel_version.h"

#include "src/util/str_util.h"

namespace depsurf {

std::string KernelVersion::ToString() const { return StrFormat("%d.%d", major, minor); }

std::string KernelVersion::Tag() const { return StrFormat("v%d.%d", major, minor); }

Result<KernelVersion> KernelVersion::Parse(std::string_view text) {
  if (!text.empty() && text.front() == 'v') {
    text.remove_prefix(1);
  }
  size_t dot = text.find('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 >= text.size()) {
    return Error(ErrorCode::kInvalidArgument, "version must look like 5.15");
  }
  KernelVersion v;
  for (size_t i = 0; i < text.size(); ++i) {
    if (i == dot) {
      continue;
    }
    char c = text[i];
    if (c < '0' || c > '9') {
      return Error(ErrorCode::kInvalidArgument, "non-digit in version");
    }
    int& part = i < dot ? v.major : v.minor;
    part = part * 10 + (c - '0');
  }
  return v;
}

}  // namespace depsurf
