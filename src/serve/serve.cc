#include "src/serve/serve.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <fstream>
#include <future>
#include <thread>
#include <utility>

#include "src/bpf/bpf_object.h"
#include "src/core/report.h"
#include "src/obs/context.h"
#include "src/obs/json_lint.h"
#include "src/obs/metrics.h"
#include "src/obs/run_report.h"
#include "src/obs/span.h"
#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// Same auto-sizing rule as the study build executor: surfaces/queries are
// memory-heavy, so the default window is bounded even on wide machines.
size_t EffectiveWindow(int jobs) {
  if (jobs > 0) {
    return static_cast<size_t>(jobs);
  }
  size_t window = std::max<unsigned>(1, std::thread::hardware_concurrency());
  return std::min(window, size_t{8});
}

// Renders a request's "id" member back to JSON. Ids are echoed, not
// interpreted; anything but a string/number/bool round-trips as null.
std::string RenderId(const obs::JsonValue* id) {
  if (id == nullptr) {
    return "null";
  }
  switch (id->kind) {
    case obs::JsonValue::Kind::kString:
      return "\"" + obs::JsonEscape(id->string) + "\"";
    case obs::JsonValue::Kind::kNumber: {
      long long integral = static_cast<long long>(id->number);
      if (static_cast<double>(integral) == id->number) {
        return StrFormat("%lld", integral);
      }
      return StrFormat("%g", id->number);
    }
    case obs::JsonValue::Kind::kBool:
      return id->boolean ? "true" : "false";
    default:
      return "null";
  }
}

Result<std::vector<std::string>> StringArray(const obs::JsonValue& value, const char* what) {
  if (value.kind != obs::JsonValue::Kind::kArray) {
    return Error(ErrorCode::kInvalidArgument, std::string(what) + " must be an array");
  }
  std::vector<std::string> out;
  out.reserve(value.array.size());
  for (const obs::JsonValue& element : value.array) {
    if (element.kind != obs::JsonValue::Kind::kString) {
      return Error(ErrorCode::kInvalidArgument,
                   std::string(what) + " must contain only strings");
    }
    out.push_back(element.string);
  }
  return out;
}

}  // namespace

Result<ServeEngine> ServeEngine::Open(const std::vector<std::string>& dataset_paths,
                                      const ServeOptions& options) {
  if (dataset_paths.empty()) {
    return Error(ErrorCode::kInvalidArgument, "serve needs at least one dataset");
  }
  ServeEngine engine;
  engine.options_ = options;
  for (const std::string& path : dataset_paths) {
    auto opened = OpenDatasetView(path);
    if (!opened.ok()) {
      return opened.TakeError().Wrap("opening " + path);
    }
    DatasetEntry entry;
    entry.path = path;
    entry.format = opened.value().format;
    entry.images = opened.value().images;
    entry.view = std::move(opened.value().view);
    engine.datasets_.push_back(std::move(entry));
  }
  return engine;
}

ServeEngine::ParsedRequest ServeEngine::ParseRequest(const std::string& line) const {
  ParsedRequest out;
  Result<obs::JsonValue> parsed = obs::ParseJson(line);
  if (!parsed.ok()) {
    out.error = "bad request JSON: " + parsed.error().message();
    return out;
  }
  const obs::JsonValue& doc = parsed.value();
  if (doc.kind != obs::JsonValue::Kind::kObject) {
    out.error = "request must be a JSON object";
    return out;
  }
  out.id_json = RenderId(doc.Find("id"));

  const obs::JsonValue* object = doc.Find("object");
  if (object != nullptr) {
    if (object->kind != obs::JsonValue::Kind::kString) {
      out.error = "object must be a file path string";
      return out;
    }
    std::ifstream in(object->string, std::ios::binary);
    if (!in) {
      out.error = "cannot read object file: " + object->string;
      return out;
    }
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    // Admission key: the object's content hash, not its path — re-uploads
    // of the same bytes hit regardless of filename.
    out.key = HashCombine(
        {HashString("serve.object"),
         HashString(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                     bytes.size()))});
    Result<BpfObject> obj = ParseBpfObject(std::move(bytes));
    if (!obj.ok()) {
      out.error = "bad eBPF object: " + obj.error().message();
      return out;
    }
    Result<DependencySet> deps = ExtractDependencySet(obj.value());
    if (!deps.ok()) {
      out.error = "cannot extract dependency set: " + deps.error().message();
      return out;
    }
    out.deps = deps.TakeValue();
    return out;
  }

  const obs::JsonValue* program = doc.Find("program");
  if (program != nullptr && program->kind != obs::JsonValue::Kind::kString) {
    out.error = "program must be a string";
    return out;
  }
  out.deps.program = program != nullptr ? program->string : "query";
  struct ListTarget {
    const char* name;
    std::set<std::string>* target;
  };
  ListTarget lists[] = {
      {"funcs", &out.deps.funcs},
      {"tracepoints", &out.deps.tracepoints},
      {"syscalls", &out.deps.syscalls},
      {"lsm_hooks", &out.deps.lsm_hooks},
  };
  for (const ListTarget& list : lists) {
    const obs::JsonValue* value = doc.Find(list.name);
    if (value == nullptr) {
      continue;
    }
    Result<std::vector<std::string>> names = StringArray(*value, list.name);
    if (!names.ok()) {
      out.error = names.error().message();
      return out;
    }
    list.target->insert(names.value().begin(), names.value().end());
  }
  const obs::JsonValue* fields = doc.Find("fields");
  if (fields != nullptr) {
    if (fields->kind != obs::JsonValue::Kind::kObject) {
      out.error = "fields must be an object of {struct: {field: expectation}}";
      return out;
    }
    for (const auto& [struct_name, field_map] : fields->object) {
      if (field_map.kind != obs::JsonValue::Kind::kObject) {
        out.error = "fields." + struct_name + " must be an object";
        return out;
      }
      auto& target = out.deps.fields[struct_name];  // empty map = struct-only dep
      for (const auto& [field_name, expectation] : field_map.object) {
        FieldDep dep;
        if (expectation.kind == obs::JsonValue::Kind::kString) {
          dep.expected_type = expectation.string;
        } else if (expectation.kind == obs::JsonValue::Kind::kObject) {
          const obs::JsonValue* type = expectation.Find("type");
          if (type != nullptr && type->kind == obs::JsonValue::Kind::kString) {
            dep.expected_type = type->string;
          }
          const obs::JsonValue* guarded = expectation.Find("guarded");
          if (guarded != nullptr && guarded->kind == obs::JsonValue::Kind::kBool) {
            dep.guarded = guarded->boolean;
          }
        } else if (expectation.kind != obs::JsonValue::Kind::kNull) {
          out.error = "fields." + struct_name + "." + field_name +
                      " must be a type string, an object, or null";
          return out;
        }
        target[field_name] = std::move(dep);
      }
    }
  }

  // Canonical form for the content hash: every container is sorted
  // (std::set/std::map), so equal dependency sets hash equal regardless of
  // the JSON spelling that produced them.
  std::string canonical = "p\x01" + out.deps.program;
  for (const std::string& name : out.deps.funcs) {
    canonical += "\x02f";
    canonical += name;
  }
  for (const std::string& name : out.deps.lsm_hooks) {
    canonical += "\x02l";
    canonical += name;
  }
  for (const std::string& name : out.deps.tracepoints) {
    canonical += "\x02t";
    canonical += name;
  }
  for (const std::string& name : out.deps.syscalls) {
    canonical += "\x02s";
    canonical += name;
  }
  for (const auto& [struct_name, field_map] : out.deps.fields) {
    canonical += "\x02S";
    canonical += struct_name;
    for (const auto& [field_name, dep] : field_map) {
      canonical += "\x03";
      canonical += field_name;
      canonical += "\x01";
      canonical += dep.expected_type;
      canonical += dep.guarded ? "\x01g" : "\x01u";
    }
  }
  out.key = HashCombine({HashString("serve.deps"), HashString(canonical)});
  return out;
}

ServeEngine::RequestOutcome ServeEngine::Answer(const DependencySet& deps) const {
  // Each request runs under a fresh isolated context: its spans/metrics
  // stay per-request instead of flooding the server's own collectors, and
  // worker threads never race on the global registries.
  obs::Context context;
  obs::ScopedContext scoped(context);
  RequestOutcome outcome;
  std::string results;
  {
    obs::ScopedSpan span("serve.request");
    span.AddAttr("program", deps.program);
    span.AddAttr("datasets", static_cast<uint64_t>(datasets_.size()));
    for (size_t d = 0; d < datasets_.size(); ++d) {
      const DatasetEntry& entry = datasets_[d];
      ProgramReport report = AnalyzeProgram(*entry.view, deps);
      if (d != 0) {
        results += ",";
      }
      results += "{\"dataset\": \"" + obs::JsonEscape(entry.path) + "\", \"format\": \"v";
      results += entry.format == 2 ? "2" : "1";
      results += StrFormat("\", \"images\": %zu, \"any_mismatch\": %s", entry.images,
                           report.AnyMismatch() ? "true" : "false");
      results += ", \"worst_implication\": \"";
      results += obs::JsonEscape(ImplicationName(report.WorstImplication()));
      results += "\", \"rows\": [";
      for (size_t r = 0; r < report.rows.size(); ++r) {
        const ReportRow& row = report.rows[r];
        if (r != 0) {
          results += ",";
        }
        results += "{\"kind\": \"";
        results += DepKindName(row.kind);
        results += "\", \"name\": \"" + obs::JsonEscape(row.name) + "\", \"cells\": [";
        for (size_t c = 0; c < row.cells.size(); ++c) {
          if (c != 0) {
            results += ",";
          }
          results += "\"" + MismatchCellString(row.cells[c]) + "\"";
        }
        results += "]}";
        outcome.rows += 1;
        outcome.mismatch_rows += row.AnyMismatch() ? 1 : 0;
      }
      results += "]}";
    }
    span.AddAttr("rows", outcome.rows);
    span.AddAttr("rows_mismatching", outcome.mismatch_rows);
  }
  outcome.body = "\"ok\": true, \"results\": [" + results + "]";
  return outcome;
}

std::vector<std::string> ServeEngine::HandleBatch(const std::vector<std::string>& lines) {
  obs::ScopedSpan batch_span("serve.batch");
  batch_span.AddAttr("requests", static_cast<uint64_t>(lines.size()));
  const size_t window = EffectiveWindow(options_.jobs);
  std::vector<std::string> responses(lines.size());

  using OutcomeFuture = std::shared_future<std::shared_ptr<RequestOutcome>>;
  struct Pending {
    size_t index = 0;
    bool error = false;
    bool hit = false;
    bool owner = false;  // first dispatch of this key: admits into the cache
    std::string id_json;
    std::string error_text;
    std::string cached_body;  // set when served from the persistent cache
    uint64_t key = 0;
    OutcomeFuture future;
  };
  std::deque<Pending> in_flight;
  // Dedup is decided at *dispatch* time (in request order), never at
  // completion time, so hit/miss markers and counters are identical no
  // matter how the window schedules the workers.
  std::unordered_map<uint64_t, OutcomeFuture> batch_futures;
  uint64_t batch_hits = 0;
  uint64_t batch_misses = 0;
  uint64_t batch_errors = 0;
  uint64_t batch_rows = 0;

  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  auto consume = [&]() {
    Pending pending = std::move(in_flight.front());
    in_flight.pop_front();
    ++requests_;
    if (pending.error) {
      ++errors_;
      ++batch_errors;
      responses[pending.index] = "{\"id\": " + pending.id_json +
                                 ", \"ok\": false, \"error\": \"" +
                                 obs::JsonEscape(pending.error_text) + "\"}";
      return;
    }
    std::string body;
    if (!pending.cached_body.empty()) {
      body = std::move(pending.cached_body);
    } else {
      std::shared_ptr<RequestOutcome> outcome = pending.future.get();
      body = outcome->body;
      batch_rows += outcome->rows;
    }
    if (pending.hit) {
      ++hits_;
      ++batch_hits;
    } else {
      ++misses_;
      ++batch_misses;
      if (pending.owner && cache_.size() < options_.cache_capacity) {
        cache_.emplace(pending.key, body);
      }
    }
    ++ok_;
    responses[pending.index] = "{\"id\": " + pending.id_json + ", \"cache\": \"" +
                               (pending.hit ? "hit" : "miss") + "\", " + body + "}";
  };

  for (size_t i = 0; i < lines.size(); ++i) {
    ParsedRequest parsed = ParseRequest(lines[i]);
    Pending pending;
    pending.index = i;
    pending.id_json = std::move(parsed.id_json);
    pending.key = parsed.key;
    if (!parsed.error.empty()) {
      pending.error = true;
      pending.error_text = std::move(parsed.error);
    } else if (auto cached = cache_.find(parsed.key); cached != cache_.end()) {
      pending.hit = true;
      pending.cached_body = cached->second;
    } else if (auto shared = batch_futures.find(parsed.key); shared != batch_futures.end()) {
      // Same content dispatched earlier in this batch: share its result.
      pending.hit = true;
      pending.future = shared->second;
    } else {
      while (in_flight.size() >= window) {
        consume();
      }
      pending.owner = true;
      OutcomeFuture future =
          std::async(std::launch::async,
                     [this, deps = std::move(parsed.deps)]() {
                       return std::make_shared<RequestOutcome>(Answer(deps));
                     })
              .share();
      pending.future = future;
      batch_futures.emplace(parsed.key, std::move(future));
    }
    in_flight.push_back(std::move(pending));
  }
  while (!in_flight.empty()) {
    consume();
  }

  metrics.Incr("serve.requests", lines.size());
  metrics.Incr("serve.cache_hits", batch_hits);
  metrics.Incr("serve.cache_misses", batch_misses);
  metrics.Incr("serve.request_errors", batch_errors);
  metrics.Incr("serve.rows_checked", batch_rows);
  batch_span.AddAttr("cache_hits", batch_hits);
  batch_span.AddAttr("cache_misses", batch_misses);
  batch_span.AddAttr("errors", batch_errors);
  return responses;
}

std::string ServeEngine::ReportJson() const {
  std::string out = "{\n\"schema\": \"";
  out += kServeReportSchema;
  out += "\",\n";
  out += StrFormat("\"jobs\": %d,\n", options_.jobs);
  out += "\"datasets\": [";
  for (size_t i = 0; i < datasets_.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += "\n  {\"path\": \"" + obs::JsonEscape(datasets_[i].path) + "\", \"format\": \"v";
    out += datasets_[i].format == 2 ? "2" : "1";
    out += StrFormat("\", \"images\": %zu}", datasets_[i].images);
  }
  out += "\n],\n";
  out += StrFormat("\"requests\": %llu,\n\"ok\": %llu,\n\"errors\": %llu,\n",
                   static_cast<unsigned long long>(requests_),
                   static_cast<unsigned long long>(ok_),
                   static_cast<unsigned long long>(errors_));
  out += StrFormat(
      "\"cache\": {\"hits\": %llu, \"misses\": %llu, \"entries\": %zu, \"capacity\": %zu}\n",
      static_cast<unsigned long long>(hits_), static_cast<unsigned long long>(misses_),
      cache_.size(), options_.cache_capacity);
  out += "}\n";
  return out;
}

}  // namespace depsurf
