// Dataset-as-a-service: a long-lived query engine over N opened datasets.
//
// `depsurf serve` is the shape the ROADMAP north star asks for: datasets are
// opened once (v2 via zero-copy mmap, v1 via one legacy parse) and batched
// dependency-set queries stream through a bounded-window executor — the same
// dispatch/consume-in-order pattern the parallel report builds use — so
// responses are byte-identical at any --jobs value. A content-hash
// admission/result cache answers repeated queries without re-analysis.
//
// Wire format: newline-delimited JSON. One request per line:
//   {"id": 1, "program": "biotop", "funcs": ["vfs_read"],
//    "fields": {"request": {"rq_disk": {"type": "struct gendisk *",
//                                        "guarded": false}}},
//    "tracepoints": ["block_rq_issue"], "syscalls": ["openat2"],
//    "lsm_hooks": []}
// or, to analyze an on-disk eBPF object instead of inline lists:
//   {"id": "obj-1", "object": "prog.o"}
// One response per line, in request order:
//   {"id": 1, "cache": "miss", "ok": true, "results": [...]}
//   {"id": 2, "ok": false, "error": "..."}
#ifndef DEPSURF_SRC_SERVE_SERVE_H_
#define DEPSURF_SRC_SERVE_SERVE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/dataset_io.h"
#include "src/core/dependency_set.h"

namespace depsurf {

inline constexpr char kServeReportSchema[] = "depsurf.serve_report.v1";

struct ServeOptions {
  // Width of the concurrent request window. 0 auto-sizes like study builds:
  // min(hardware_concurrency, 8). Responses and cache counters are
  // byte-identical for any value.
  int jobs = 0;
  // Result-cache admission bound: once this many distinct results are
  // cached, later misses are computed but not admitted.
  size_t cache_capacity = 4096;
};

class ServeEngine {
 public:
  // Opens every dataset up front; any failure aborts the whole open.
  static Result<ServeEngine> Open(const std::vector<std::string>& dataset_paths,
                                  const ServeOptions& options);

  ServeEngine(ServeEngine&&) = default;
  ServeEngine& operator=(ServeEngine&&) = default;
  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // Answers one batch of request lines. The returned vector is parallel to
  // `lines`. Workers run under per-request obs::Contexts; summary counters
  // and a "serve.batch" span land in the caller's context. Not re-entrant:
  // call from one thread at a time (workers are managed internally).
  std::vector<std::string> HandleBatch(const std::vector<std::string>& lines);

  // Deterministic depsurf.serve_report.v1 summary of everything served so
  // far (no timing fields; see docs/FORMATS.md §7).
  std::string ReportJson() const;

  uint64_t requests() const { return requests_; }
  uint64_t ok_responses() const { return ok_; }
  uint64_t error_responses() const { return errors_; }
  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }
  size_t cache_entries() const { return cache_.size(); }
  size_t num_datasets() const { return datasets_.size(); }

 private:
  struct DatasetEntry {
    std::string path;
    int format = 1;
    size_t images = 0;
    std::unique_ptr<DatasetView> view;
  };
  struct RequestOutcome {
    std::string body;  // response fragment after the cache marker
    uint64_t rows = 0;
    uint64_t mismatch_rows = 0;
  };
  struct ParsedRequest {
    std::string id_json = "null";
    std::string error;  // non-empty: malformed request (bypasses the cache)
    uint64_t key = 0;
    DependencySet deps;
  };

  ServeEngine() = default;
  ParsedRequest ParseRequest(const std::string& line) const;
  RequestOutcome Answer(const DependencySet& deps) const;

  ServeOptions options_;
  std::vector<DatasetEntry> datasets_;
  std::unordered_map<uint64_t, std::string> cache_;
  uint64_t requests_ = 0;
  uint64_t ok_ = 0;
  uint64_t errors_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_SERVE_SERVE_H_
