#include "src/fuzz/fuzz_campaign.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "src/analyzer/analyzer.h"
#include "src/analyzer/remediation.h"
#include "src/bpf/bpf_object.h"
#include "src/bpf/bpf_rewriter.h"
#include "src/core/dependency_surface.h"
#include "src/faultgen/fault_injector.h"
#include "src/obs/context.h"
#include "src/obs/run_report.h"
#include "src/study/study.h"
#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {

const char* SeedModeName(SeedMode mode) {
  switch (mode) {
    case SeedMode::kImage: return "image";
    case SeedMode::kObject: return "object";
  }
  return "unknown";
}

int FuzzCampaignResult::ExitCode() const {
  if (!hangs.empty()) return 1;
  if (!disagreements.empty()) return 2;
  return 0;
}

bool RunWithWallClock(uint64_t budget_ms, std::function<void()> work) {
  if (budget_ms == 0) {
    work();
    return true;
  }
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto sync = std::make_shared<Sync>();
  std::thread([sync, work = std::move(work)] {
    work();
    {
      std::lock_guard<std::mutex> lock(sync->mu);
      sync->done = true;
    }
    sync->cv.notify_all();
  }).detach();
  std::unique_lock<std::mutex> lock(sync->mu);
  return sync->cv.wait_for(lock, std::chrono::milliseconds(budget_ms),
                           [&] { return sync->done; });
}

namespace {

// Key used to fork the per-round decision stream off the campaign seed.
constexpr uint64_t kRoundStreamTag = 0xF0220;

DegradationState SubsystemState(const SurfaceHealth& health, DiagSubsystem subsystem) {
  switch (subsystem) {
    case DiagSubsystem::kElf: return health.elf;
    case DiagSubsystem::kDwarf: return health.dwarf;
    case DiagSubsystem::kBtf: return health.btf;
    case DiagSubsystem::kTracepoint: return health.tracepoint;
    case DiagSubsystem::kSyscall: return health.syscall;
    case DiagSubsystem::kBpf: return DegradationState::kClean;
  }
  return DegradationState::kClean;
}

void SortUnique(std::vector<std::string>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

// What one candidate taught us: its coverage tuples plus any oracle
// contract violations.
struct Evaluation {
  std::vector<std::string> tuples;      // sorted distinct
  std::vector<std::string> violations;  // salvage-vs-strict oracle
};

Evaluation EvaluateImage(const std::vector<uint8_t>& bytes, size_t max_ledger,
                         bool run_oracle) {
  Evaluation ev;
  auto surface = DependencySurface::Extract(bytes);
  if (!surface.ok()) {
    ev.tuples.push_back(
        StrFormat("image/fatal/%s", ErrorCodeName(surface.error().code())));
  } else {
    const SurfaceHealth& health = surface->health();
    ev.tuples.push_back(std::string("image/outcome/") +
                        (health.AnyDegraded() ? "degraded" : "clean"));
    for (const DiagnosticEntry& entry : health.ledger.entries()) {
      ev.tuples.push_back(StrFormat(
          "image/%s/%s/%s/%s", DiagSubsystemName(entry.subsystem),
          ErrorCodeName(entry.code), DiagSeverityName(entry.severity),
          DegradationStateName(SubsystemState(health, entry.subsystem))));
    }
    if (health.ledger.size() > max_ledger) {
      ev.tuples.push_back("image/guard/ledger_overflow");
    }
  }
  if (run_oracle) {
    ev.violations = Study::RunSalvageStrictOracle(bytes).violations;
  }
  SortUnique(ev.tuples);
  return ev;
}

Evaluation EvaluateObject(const std::vector<uint8_t>& bytes, size_t max_ledger,
                          bool run_oracle) {
  Evaluation ev;
  DiagnosticLedger ledger;
  auto object = ParseBpfObject(bytes, &ledger);
  for (const DiagnosticEntry& entry : ledger.entries()) {
    ev.tuples.push_back(StrFormat(
        "object/%s/%s/%s", DiagSubsystemName(entry.subsystem),
        ErrorCodeName(entry.code), DiagSeverityName(entry.severity)));
  }
  if (!object.ok()) {
    ev.tuples.push_back(
        StrFormat("object/fatal/%s", ErrorCodeName(object.error().code())));
  } else {
    ev.tuples.push_back(ledger.empty() ? "object/outcome/clean"
                                       : "object/outcome/salvaged");
    ObjectAnalysis analysis = AnalyzeObject(*object);
    for (const Finding& finding : analysis.findings) {
      ev.tuples.push_back(
          StrFormat("object/finding/%s", FindingKindName(finding.kind)));
    }
    // Remediation leg: on every parse survivor the planner must either
    // produce a verified fix or refuse with a ledger entry — never crash.
    if (analysis.findings.empty()) {
      ev.tuples.push_back("object/fix/clean");
    } else {
      RemediationPlan plan = PlanRemediation(*object, analysis);
      if (plan.FixableCount() == 0) {
        ev.tuples.push_back("object/fix/refused");
      } else {
        BpfObject fixed = *object;
        Status applied = InsertFieldExistsGuards(fixed, plan.Insertions(), &ledger);
        if (!applied.ok()) {
          ev.tuples.push_back("object/fix/refused");
        } else {
          auto encoded = WriteBpfObject(fixed);
          auto reparsed = encoded.ok()
                              ? ParseBpfObject(encoded.TakeValue(), &ledger)
                              : Result<BpfObject>(encoded.error());
          if (!reparsed.ok()) {
            ev.tuples.push_back("object/fix/refused");
          } else {
            ObjectAnalysis after = AnalyzeObject(*reparsed);
            RemediationVerification v = VerifyRemediation(analysis, plan, after);
            ev.tuples.push_back(v.ok ? "object/fix/verified"
                                     : "object/fix/unverified");
          }
        }
      }
    }
  }
  if (ledger.size() > max_ledger) {
    ev.tuples.push_back("object/guard/ledger_overflow");
  }
  if (run_oracle) {
    ev.violations = Study::RunObjectSalvageStrictOracle(bytes).violations;
  }
  SortUnique(ev.tuples);
  return ev;
}

Evaluation Evaluate(SeedMode mode, const std::vector<uint8_t>& bytes,
                    size_t max_ledger, bool run_oracle) {
  return mode == SeedMode::kImage ? EvaluateImage(bytes, max_ledger, run_oracle)
                                  : EvaluateObject(bytes, max_ledger, run_oracle);
}

// Evaluates one candidate under its own obs::Context (so candidate-internal
// metrics never leak into the caller's sinks) and the campaign wall-clock
// guard. Returns false on timeout; `out` is untouched then, and the
// orphaned worker owns every byte it can still reach.
bool GuardedEvaluate(SeedMode mode, const std::vector<uint8_t>& bytes,
                     const FuzzOptions& options, Evaluation* out) {
  auto input = std::make_shared<std::vector<uint8_t>>(bytes);
  auto state = std::make_shared<Evaluation>();
  const size_t max_ledger = options.max_ledger_entries;
  const bool done = RunWithWallClock(options.time_budget_ms, [=] {
    obs::Context context;
    obs::ScopedContext scope(context);
    *state = Evaluate(mode, *input, max_ledger, /*run_oracle=*/true);
  });
  if (done) *out = std::move(*state);
  return done;
}

Result<SeedMode> DetectMode(const FuzzSeed& seed) {
  if (ParseBpfObject(seed.bytes).ok()) {
    return SeedMode::kObject;
  }
  auto surface = DependencySurface::Extract(seed.bytes);
  if (surface.ok()) {
    return SeedMode::kImage;
  }
  return Error(ErrorCode::kInvalidArgument,
               "seed '" + seed.name +
                   "' is neither a parseable eBPF object nor an extractable "
                   "kernel image: " +
                   surface.error().message());
}

// Exploit arm of the epsilon-greedy kind choice: highest smoothed novelty
// rate (novel+1)/(attempts+2), ties to the lowest kind index. Deterministic.
FaultKind BestKind(const std::vector<FuzzKindStats>& kinds) {
  size_t best = 0;
  double best_rate = -1.0;
  for (size_t i = 0; i < kinds.size(); ++i) {
    const double rate = (static_cast<double>(kinds[i].novel) + 1.0) /
                        (static_cast<double>(kinds[i].attempts) + 2.0);
    if (rate > best_rate) {
      best = i;
      best_rate = rate;
    }
  }
  return static_cast<FaultKind>(best);
}

// Greedy set cover: repeatedly pick the corpus entry covering the most
// still-uncovered tuples (ties to the earliest index) until the full
// coverage set is covered. Result is in pick order.
std::vector<size_t> MinimizeCorpus(const std::vector<FuzzCorpusEntry>& corpus,
                                   const std::vector<std::string>& coverage) {
  std::set<std::string> uncovered(coverage.begin(), coverage.end());
  std::vector<bool> used(corpus.size(), false);
  std::vector<size_t> picked;
  while (!uncovered.empty()) {
    size_t best = corpus.size();
    size_t best_gain = 0;
    for (size_t i = 0; i < corpus.size(); ++i) {
      if (used[i]) continue;
      size_t gain = 0;
      for (const std::string& t : corpus[i].tuples) {
        gain += uncovered.count(t);
      }
      if (gain > best_gain) {
        best = i;
        best_gain = gain;
      }
    }
    if (best == corpus.size()) break;  // nothing left can help
    used[best] = true;
    picked.push_back(best);
    for (const std::string& t : corpus[best].tuples) {
      uncovered.erase(t);
    }
  }
  return picked;
}

}  // namespace

Result<FuzzCampaignResult> RunFuzzCampaign(std::vector<FuzzSeed> seeds,
                                           const FuzzOptions& options) {
  if (seeds.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "fuzz campaign needs at least one seed input");
  }
  DEPSURF_ASSIGN_OR_RETURN(mode, DetectMode(seeds.front()));

  FuzzCampaignResult result;
  result.mode = mode;
  result.rounds = options.rounds;
  result.seed = options.seed;
  result.time_budget_ms = options.time_budget_ms;
  result.max_ledger_entries = options.max_ledger_entries;
  for (int k = 0; k < kNumFaultKinds; ++k) {
    result.kinds.push_back({FaultKindName(static_cast<FaultKind>(k)), 0, 0});
  }

  auto& metrics = obs::Context::Current().metrics();
  std::set<std::string> coverage;

  // Seeds join the corpus first; their tuples define round-0 coverage, and
  // oracle violations on a pristine seed are findings like any other.
  for (FuzzSeed& seed : seeds) {
    result.seed_names.push_back(seed.name);
    Evaluation ev;
    if (!GuardedEvaluate(mode, seed.bytes, options, &ev)) {
      result.hangs.push_back({0, "", 0, "seed:" + seed.name});
      metrics.Incr("fuzz.hangs");
      continue;
    }
    for (const std::string& violation : ev.violations) {
      result.disagreements.push_back({0, "", 0, violation});
      metrics.Incr("fuzz.oracle_disagreements");
    }
    FuzzCorpusEntry entry;
    entry.index = result.corpus.size();
    entry.name = "seed:" + seed.name;
    entry.is_seed = true;
    entry.tuples = ev.tuples;
    for (const std::string& t : ev.tuples) {
      if (coverage.insert(t).second) entry.new_tuples.push_back(t);
    }
    entry.bytes = std::move(seed.bytes);
    result.corpus.push_back(std::move(entry));
  }
  if (result.corpus.empty()) {
    return Error(ErrorCode::kInternal, "every seed hung under the wall-clock guard");
  }
  result.growth.push_back({0, coverage.size()});

  for (uint64_t round = 0; round < options.rounds; ++round) {
    Prng prng = Prng(options.seed).Fork({kRoundStreamTag, round});
    const size_t parent = static_cast<size_t>(prng.NextBelow(result.corpus.size()));
    // Epsilon-greedy kind choice: half the rounds walk the round-robin so
    // every kind keeps getting sampled, half exploit the kind with the best
    // novelty rate so far.
    const bool explore = prng.NextBool(0.5);
    const FaultKind kind = explore ? FaultKindForIndex(round) : BestKind(result.kinds);
    const uint64_t fault_seed = HashCombine({options.seed, round});

    std::vector<uint8_t> bytes = result.corpus[parent].bytes;
    const std::string description = ApplyFault(bytes, kind, fault_seed);
    ++result.candidates;
    metrics.Incr("fuzz.candidates");
    FuzzKindStats& stats = result.kinds[static_cast<size_t>(kind)];
    ++stats.attempts;

    Evaluation ev;
    if (!GuardedEvaluate(mode, bytes, options, &ev)) {
      result.hangs.push_back({round, FaultKindName(kind), fault_seed, description});
      metrics.Incr("fuzz.hangs");
      continue;
    }
    for (const std::string& violation : ev.violations) {
      result.disagreements.push_back(
          {round, FaultKindName(kind), fault_seed, violation});
      metrics.Incr("fuzz.oracle_disagreements");
    }

    std::vector<std::string> novel;
    for (const std::string& t : ev.tuples) {
      if (!coverage.count(t)) novel.push_back(t);
    }
    if (novel.empty()) continue;
    ++stats.novel;
    metrics.Incr("fuzz.novel");
    coverage.insert(novel.begin(), novel.end());

    FuzzCorpusEntry entry;
    entry.index = result.corpus.size();
    entry.name = StrFormat("round%04llu:%s", static_cast<unsigned long long>(round),
                           FaultKindName(kind));
    entry.round = round;
    entry.kind = FaultKindName(kind);
    entry.fault_seed = fault_seed;
    entry.parent = parent;
    entry.description = description;
    entry.new_tuples = std::move(novel);
    entry.tuples = ev.tuples;
    entry.bytes = std::move(bytes);
    result.corpus.push_back(std::move(entry));
    result.growth.push_back({round + 1, coverage.size()});
  }

  if (result.growth.back().round != options.rounds) {
    result.growth.push_back({options.rounds, coverage.size()});
  }
  result.coverage.assign(coverage.begin(), coverage.end());
  result.minimized = MinimizeCorpus(result.corpus, result.coverage);
  metrics.Set("fuzz.coverage_tuples", static_cast<int64_t>(result.coverage.size()));
  metrics.Set("fuzz.corpus_size", static_cast<int64_t>(result.corpus.size()));
  return result;
}

std::vector<std::string> RunBlindSweep(const std::vector<FuzzSeed>& seeds,
                                       SeedMode mode, uint64_t rounds, uint64_t seed) {
  std::set<std::string> coverage;
  for (const FuzzSeed& s : seeds) {
    Evaluation ev = Evaluate(mode, s.bytes, /*max_ledger=*/SIZE_MAX,
                             /*run_oracle=*/false);
    coverage.insert(ev.tuples.begin(), ev.tuples.end());
  }
  // The doctor --sweep shape: always mutate a pristine seed, round-robin
  // kinds, sequential seeds — no corpus, no feedback.
  for (uint64_t i = 0; i < rounds; ++i) {
    std::vector<uint8_t> bytes = seeds[i % seeds.size()].bytes;
    ApplyFault(bytes, FaultKindForIndex(i), seed + i);
    Evaluation ev = Evaluate(mode, bytes, SIZE_MAX, /*run_oracle=*/false);
    coverage.insert(ev.tuples.begin(), ev.tuples.end());
  }
  return std::vector<std::string>(coverage.begin(), coverage.end());
}

std::string RenderFuzzCampaignJson(const FuzzCampaignResult& result) {
  using obs::JsonEscape;
  std::string out = "{\n";
  out += StrFormat("  \"schema\": \"%s\",\n", kFuzzCampaignSchema);
  out += StrFormat("  \"mode\": \"%s\",\n", SeedModeName(result.mode));
  out += StrFormat(
      "  \"config\": {\"rounds\": %llu, \"seed\": %llu, \"time_budget_ms\": %llu, "
      "\"max_ledger_entries\": %llu},\n",
      static_cast<unsigned long long>(result.rounds),
      static_cast<unsigned long long>(result.seed),
      static_cast<unsigned long long>(result.time_budget_ms),
      static_cast<unsigned long long>(result.max_ledger_entries));
  out += "  \"seeds\": [";
  for (size_t i = 0; i < result.seed_names.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + JsonEscape(result.seed_names[i]) + "\"";
  }
  out += "],\n";
  out += StrFormat("  \"candidates\": %llu,\n",
                   static_cast<unsigned long long>(result.candidates));
  out += StrFormat("  \"coverage\": {\"tuples\": %zu, \"keys\": [",
                   result.coverage.size());
  for (size_t i = 0; i < result.coverage.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + JsonEscape(result.coverage[i]) + "\"";
  }
  out += "]},\n";
  out += "  \"growth\": [";
  for (size_t i = 0; i < result.growth.size(); ++i) {
    if (i) out += ", ";
    out += StrFormat("{\"round\": %llu, \"tuples\": %zu}",
                     static_cast<unsigned long long>(result.growth[i].round),
                     result.growth[i].tuples);
  }
  out += "],\n";
  out += "  \"kinds\": [";
  for (size_t i = 0; i < result.kinds.size(); ++i) {
    if (i) out += ", ";
    out += StrFormat("{\"kind\": \"%s\", \"attempts\": %llu, \"novel\": %llu}",
                     result.kinds[i].kind.c_str(),
                     static_cast<unsigned long long>(result.kinds[i].attempts),
                     static_cast<unsigned long long>(result.kinds[i].novel));
  }
  out += "],\n";
  out += "  \"corpus\": [\n";
  for (size_t i = 0; i < result.corpus.size(); ++i) {
    const FuzzCorpusEntry& e = result.corpus[i];
    out += StrFormat(
        "    {\"index\": %zu, \"name\": \"%s\", \"seed\": %s, \"round\": %llu, "
        "\"kind\": \"%s\", \"fault_seed\": %llu, \"parent\": %zu, "
        "\"description\": \"%s\", \"size\": %zu, \"tuple_count\": %zu, "
        "\"new_tuples\": [",
        e.index, JsonEscape(e.name).c_str(), e.is_seed ? "true" : "false",
        static_cast<unsigned long long>(e.round), JsonEscape(e.kind).c_str(),
        static_cast<unsigned long long>(e.fault_seed), e.parent,
        JsonEscape(e.description).c_str(), e.bytes.size(), e.tuples.size());
    for (size_t j = 0; j < e.new_tuples.size(); ++j) {
      if (j) out += ", ";
      out += "\"" + JsonEscape(e.new_tuples[j]) + "\"";
    }
    out += "]}";
    out += (i + 1 < result.corpus.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"minimized\": [";
  for (size_t i = 0; i < result.minimized.size(); ++i) {
    if (i) out += ", ";
    out += StrFormat("%zu", result.minimized[i]);
  }
  out += "],\n";
  out += "  \"oracle\": {\"disagreements\": [";
  for (size_t i = 0; i < result.disagreements.size(); ++i) {
    const FuzzOracleDisagreement& d = result.disagreements[i];
    if (i) out += ", ";
    out += StrFormat(
        "{\"round\": %llu, \"kind\": \"%s\", \"fault_seed\": %llu, "
        "\"violation\": \"%s\"}",
        static_cast<unsigned long long>(d.round), JsonEscape(d.kind).c_str(),
        static_cast<unsigned long long>(d.fault_seed),
        JsonEscape(d.violation).c_str());
  }
  out += "]},\n";
  out += "  \"hangs\": [";
  for (size_t i = 0; i < result.hangs.size(); ++i) {
    const FuzzHang& h = result.hangs[i];
    if (i) out += ", ";
    out += StrFormat(
        "{\"round\": %llu, \"kind\": \"%s\", \"fault_seed\": %llu, "
        "\"description\": \"%s\"}",
        static_cast<unsigned long long>(h.round), JsonEscape(h.kind).c_str(),
        static_cast<unsigned long long>(h.fault_seed),
        JsonEscape(h.description).c_str());
  }
  out += "],\n";
  out += StrFormat("  \"exit_code\": %d\n", result.ExitCode());
  out += "}\n";
  return out;
}

Result<std::vector<std::string>> WriteFuzzCorpus(const FuzzCampaignResult& result,
                                                 const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Error(ErrorCode::kIoError,
                 "cannot create corpus dir '" + dir + "': " + ec.message());
  }
  std::vector<std::string> written;
  for (size_t index : result.minimized) {
    const FuzzCorpusEntry& entry = result.corpus[index];
    const std::string path =
        dir + "/" + StrFormat("fuzz_%04zu_%s.bin", entry.index,
                              entry.is_seed ? "seed" : entry.kind.c_str());
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(entry.bytes.data()),
              static_cast<std::streamsize>(entry.bytes.size()));
    if (!out) {
      return Error(ErrorCode::kIoError, "cannot write corpus file '" + path + "'");
    }
    written.push_back(path);
  }
  const std::string json_path = dir + "/campaign.json";
  std::ofstream out(json_path, std::ios::binary);
  out << RenderFuzzCampaignJson(result);
  if (!out) {
    return Error(ErrorCode::kIoError, "cannot write '" + json_path + "'");
  }
  written.push_back(json_path);
  return written;
}

}  // namespace depsurf
