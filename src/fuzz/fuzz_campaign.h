// Coverage-guided fault-fuzzing campaign over the extraction surface.
//
// The existing `doctor --sweep` applies a fixed round-robin of faults to one
// image and checks nothing crashed — blind mutation, no feedback. This
// engine closes the loop the way BRF does for the eBPF runtime: each
// candidate's *diagnostic signature* — the deduplicated set of (subsystem,
// error code, severity, degradation state) tuples its salvage run emits,
// plus analyzer finding kinds in object mode — is the coverage signal.
// A mutated candidate enters the corpus only when it produces a tuple no
// earlier candidate produced, so later rounds mutate inputs that already
// sit deep in salvage territory and stack damage blind sweeps almost never
// reach.
//
// Everything is deterministic in (seed bytes, FuzzOptions::seed): parent
// choice, fault kind, and fault seed for round r are all keyed off
// Prng(seed).Fork({r}), so any crash, hang, or oracle disagreement replays
// from (kind, fault seed, round) alone — the report records all three.
// Wall-clock guards only affect pathological hangs; a healthy campaign's
// report is byte-identical across runs (no timestamps, no durations).
#ifndef DEPSURF_SRC_FUZZ_FUZZ_CAMPAIGN_H_
#define DEPSURF_SRC_FUZZ_FUZZ_CAMPAIGN_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/util/error.h"

namespace depsurf {

inline constexpr char kFuzzCampaignSchema[] = "depsurf.fuzz_campaign.v1";

// What kind of input the campaign is fuzzing. Auto-detected from the first
// seed: a strict-parseable eBPF object fuzzes the object pipeline
// (ParseBpfObject + analyzer), anything else the image pipeline
// (DependencySurface::Extract).
enum class SeedMode : uint8_t { kImage, kObject };

// "image" / "object".
const char* SeedModeName(SeedMode mode);

struct FuzzSeed {
  std::string name;  // label in the report (typically the file basename)
  std::vector<uint8_t> bytes;
};

struct FuzzOptions {
  uint64_t rounds = 64;
  uint64_t seed = 2025;
  // Per-candidate wall-clock budget. A candidate that exceeds it is
  // recorded as a hang (exit code 1) with its replay key; 0 disables the
  // guard (tests use this — guarded runs keep a worker thread alive past
  // the timeout).
  uint64_t time_budget_ms = 10000;
  // A salvage run emitting more ledger entries than this is itself a
  // finding (diagnostic explosion); the candidate still counts.
  size_t max_ledger_entries = 10000;
};

// One corpus member: a seed, or a mutant that produced novel coverage.
// (kind, fault_seed) + the parent's bytes replay the mutation exactly;
// parents are corpus members, so the whole lineage replays from the seeds.
struct FuzzCorpusEntry {
  size_t index = 0;        // position in the corpus; seeds come first
  std::string name;        // "seed:<name>" or "round<NNNN>:<kind>"
  bool is_seed = false;
  uint64_t round = 0;      // mutation round that produced it (seeds: 0)
  std::string kind;        // fault kind name (seeds: empty)
  uint64_t fault_seed = 0; // ApplyFault seed (seeds: 0)
  size_t parent = 0;       // corpus index the mutation was applied to
  std::string description; // ApplyFault's one-line damage description
  std::vector<std::string> new_tuples;  // coverage first seen here (sorted)
  std::vector<std::string> tuples;      // full coverage of this input (sorted)
  std::vector<uint8_t> bytes;
};

struct FuzzGrowthPoint {
  uint64_t round = 0;   // 0 = after seed evaluation; r+1 = after round r
  size_t tuples = 0;    // cumulative distinct coverage tuples
};

struct FuzzKindStats {
  std::string kind;
  uint64_t attempts = 0;
  uint64_t novel = 0;  // attempts that grew coverage
};

// One salvage-vs-strict contract violation, with its replay key.
struct FuzzOracleDisagreement {
  uint64_t round = 0;
  std::string kind;        // empty when found on a pristine seed
  uint64_t fault_seed = 0;
  std::string violation;
};

struct FuzzHang {
  uint64_t round = 0;
  std::string kind;
  uint64_t fault_seed = 0;
  std::string description;  // the mutation that hung
};

struct FuzzCampaignResult {
  SeedMode mode = SeedMode::kImage;
  uint64_t rounds = 0;
  uint64_t seed = 0;
  uint64_t time_budget_ms = 0;
  size_t max_ledger_entries = 0;
  std::vector<std::string> seed_names;
  uint64_t candidates = 0;                  // mutants evaluated
  std::vector<std::string> coverage;        // sorted distinct tuples
  std::vector<FuzzGrowthPoint> growth;
  std::vector<FuzzCorpusEntry> corpus;
  std::vector<size_t> minimized;            // corpus indices, greedy cover
  std::vector<FuzzKindStats> kinds;
  std::vector<FuzzOracleDisagreement> disagreements;
  std::vector<FuzzHang> hangs;

  // 0: clean. 2: oracle disagreements. 1: hangs (or infrastructure
  // trouble, reported by the CLI). Hangs dominate disagreements.
  int ExitCode() const;
};

// Runs `work` on a worker thread with a wall-clock deadline; returns true
// when it finished in time. budget_ms == 0 runs inline (no guard, always
// true). On timeout the worker keeps running detached, so everything the
// closure touches must be owned by the closure (shared_ptr state, not
// stack references) — callers then simply never read the orphaned result.
// `depsurf doctor --sweep` reuses this around each mutation.
bool RunWithWallClock(uint64_t budget_ms, std::function<void()> work);

// Runs the campaign. Fails only on infrastructure problems (no seeds,
// undecodable seed); damaged candidates are the point, not an error.
Result<FuzzCampaignResult> RunFuzzCampaign(std::vector<FuzzSeed> seeds,
                                           const FuzzOptions& options);

// The pre-campaign baseline: `rounds` blind mutations of the raw seeds
// (round-robin kinds, no corpus feedback — the `doctor --sweep` shape) with
// coverage tuples collected the same way. Returns the sorted distinct
// tuple set; the acceptance test checks the guided campaign beats it.
std::vector<std::string> RunBlindSweep(const std::vector<FuzzSeed>& seeds,
                                       SeedMode mode, uint64_t rounds, uint64_t seed);

// Serializes a depsurf.fuzz_campaign.v1 document. Deterministic: two
// campaigns with identical seeds and options render byte-identical JSON.
std::string RenderFuzzCampaignJson(const FuzzCampaignResult& result);

// Writes the minimized corpus (fuzz_<index>_<kind>.bin per entry) plus
// campaign.json into `dir` (created if needed). Returns the paths written,
// campaign.json last.
Result<std::vector<std::string>> WriteFuzzCorpus(const FuzzCampaignResult& result,
                                                 const std::string& dir);

}  // namespace depsurf

#endif  // DEPSURF_SRC_FUZZ_FUZZ_CAMPAIGN_H_
