#include "src/faultgen/fault_injector.h"

#include <algorithm>
#include <initializer_list>
#include <optional>

#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// ELF64 header field offsets needed to find the section header table.
constexpr size_t kShoffOffset = 0x28;
constexpr size_t kShentsizeOffset = 0x3a;
constexpr size_t kShnumOffset = 0x3c;
constexpr size_t kShstrndxOffset = 0x3e;
constexpr size_t kElf64HeaderSize = 0x40;
// ELF64 section header field offsets.
constexpr size_t kShNameOffset = 0x00;
constexpr size_t kShOffsetOffset = 0x18;
constexpr size_t kShSizeOffset = 0x20;
// .BTF.ext layout constants (see src/bpf/bpf_codec.cc): u32 magic, u32
// record count, u32 string length, then 20-byte records of five u32 fields.
constexpr size_t kBtfExtHeaderSize = 12;
constexpr size_t kBtfExtRecordSize = 20;

uint64_t ReadLE(const std::vector<uint8_t>& bytes, size_t offset, int width) {
  uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(bytes[offset + i]) << (8 * i);
  }
  return v;
}

void WriteLE(std::vector<uint8_t>& bytes, size_t offset, uint64_t v, int width) {
  for (int i = 0; i < width; ++i) {
    bytes[offset + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

// One section located in a 64-bit little-endian ELF: where its header
// lives and where its body claims to live. The body range is NOT
// guaranteed to be inside the buffer — callers that mutate body bytes must
// use FindMutableSection, which filters to in-bounds, non-empty bodies.
struct SectionRef {
  size_t header = 0;
  size_t offset = 0;
  size_t size = 0;
};

// Locates `section_name` by walking the section table and its string
// table. Returns nullopt when the input is not a 64-bit LE ELF with a
// readable section table containing the name. Shared by the surgical
// PoisonSectionHeader and the structure-aware fault kinds.
std::optional<SectionRef> FindSectionByName(const std::vector<uint8_t>& bytes,
                                            std::string_view section_name) {
  if (bytes.size() < kElf64HeaderSize || bytes[0] != 0x7f || bytes[1] != 'E' ||
      bytes[2] != 'L' || bytes[3] != 'F' || bytes[4] != 2 /* ELFCLASS64 */ ||
      bytes[5] != 1 /* little-endian */) {
    return std::nullopt;
  }
  const uint64_t shoff = ReadLE(bytes, kShoffOffset, 8);
  const uint64_t shentsize = ReadLE(bytes, kShentsizeOffset, 2);
  const uint64_t shnum = ReadLE(bytes, kShnumOffset, 2);
  const uint64_t shstrndx = ReadLE(bytes, kShstrndxOffset, 2);
  if (shnum == 0 || shentsize < kElf64HeaderSize || shoff > bytes.size() ||
      shnum * shentsize > bytes.size() - shoff || shstrndx >= shnum) {
    return std::nullopt;
  }
  const size_t strtab_header = static_cast<size_t>(shoff + shstrndx * shentsize);
  const uint64_t str_off = ReadLE(bytes, strtab_header + kShOffsetOffset, 8);
  const uint64_t str_size = ReadLE(bytes, strtab_header + kShSizeOffset, 8);
  if (str_off > bytes.size() || str_size > bytes.size() - str_off) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < shnum; ++i) {
    const size_t header = static_cast<size_t>(shoff + i * shentsize);
    const uint64_t name_off = ReadLE(bytes, header + kShNameOffset, 4);
    if (name_off >= str_size) {
      continue;
    }
    const char* name = reinterpret_cast<const char*>(bytes.data() + str_off + name_off);
    size_t len = 0;
    while (name_off + len < str_size && name[len] != '\0') {
      ++len;
    }
    if (std::string_view(name, len) != section_name) {
      continue;
    }
    SectionRef ref;
    ref.header = header;
    ref.offset = static_cast<size_t>(ReadLE(bytes, header + kShOffsetOffset, 8));
    ref.size = static_cast<size_t>(ReadLE(bytes, header + kShSizeOffset, 8));
    return ref;
  }
  return std::nullopt;
}

// First name (in the given preference order) whose body is non-empty and
// fully inside the buffer, so mutators can write through it safely.
struct NamedSection {
  const char* name = nullptr;
  SectionRef ref;
};
std::optional<NamedSection> FindMutableSection(const std::vector<uint8_t>& bytes,
                                               std::initializer_list<const char*> names) {
  for (const char* name : names) {
    auto ref = FindSectionByName(bytes, name);
    if (!ref.has_value() || ref->size == 0 || ref->offset > bytes.size() ||
        ref->size > bytes.size() - ref->offset) {
      continue;
    }
    return NamedSection{name, *ref};
  }
  return std::nullopt;
}

std::string ApplyByteFlip(std::vector<uint8_t>& bytes, Prng& prng, uint64_t seed) {
  const uint64_t flips = prng.NextInRange(1, 8);
  std::string where;
  for (uint64_t i = 0; i < flips; ++i) {
    const uint64_t at = prng.NextBelow(bytes.size());
    bytes[at] ^= static_cast<uint8_t>(prng.NextInRange(1, 255));
    where += StrFormat("%s0x%llx", i == 0 ? "" : ",",
                       static_cast<unsigned long long>(at));
  }
  return StrFormat("byte_flip seed=%llu: %llu flips @%s",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(flips), where.c_str());
}

std::string ApplyZeroWindow(std::vector<uint8_t>& bytes, Prng& prng, uint64_t seed) {
  const uint64_t max_len = std::min<uint64_t>(bytes.size(), 512);
  const uint64_t len = prng.NextInRange(1, max_len);
  const uint64_t at = prng.NextBelow(bytes.size() - len + 1);
  for (uint64_t i = 0; i < len; ++i) {
    bytes[at + i] = 0;
  }
  return StrFormat("zero_window seed=%llu: %llu bytes @0x%llx",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(len),
                   static_cast<unsigned long long>(at));
}

std::string ApplySectionHeaderMutation(std::vector<uint8_t>& bytes, Prng& prng,
                                       uint64_t seed) {
  if (bytes.size() < kElf64HeaderSize) {
    return ApplyByteFlip(bytes, prng, seed);
  }
  const uint64_t shoff = ReadLE(bytes, kShoffOffset, 8);
  const uint64_t shentsize = ReadLE(bytes, kShentsizeOffset, 2);
  const uint64_t shnum = ReadLE(bytes, kShnumOffset, 2);
  if (shnum == 0 || shentsize < 0x28 || shoff > bytes.size() ||
      shnum * shentsize > bytes.size() - shoff) {
    // No usable table to corrupt (maybe a previous fault already ate it).
    return ApplyByteFlip(bytes, prng, seed);
  }
  const uint64_t index = prng.NextBelow(shnum);
  const size_t header = static_cast<size_t>(shoff + index * shentsize);
  // Field candidates: sh_type (+0x04, 4 bytes), sh_offset (+0x18, 8),
  // sh_size (+0x20, 8) — the fields bounds checks and decoders key on.
  struct Field { const char* name; size_t at; int width; };
  constexpr Field kFields[] = {
      {"sh_type", 0x04, 4}, {"sh_offset", 0x18, 8}, {"sh_size", 0x20, 8}};
  const Field& field = kFields[prng.NextBelow(3)];
  const uint64_t value = prng.NextU64();
  WriteLE(bytes, header + field.at, value, field.width);
  return StrFormat("section_header_mutation seed=%llu: section %llu %s <- 0x%llx",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(index), field.name,
                   static_cast<unsigned long long>(value));
}

std::string ApplyTruncate(std::vector<uint8_t>& bytes, Prng& prng, uint64_t seed) {
  // Keep at least one byte; a zero-size input exercises nothing.
  const uint64_t keep = prng.NextInRange(1, bytes.size());
  bytes.resize(static_cast<size_t>(keep));
  return StrFormat("truncate seed=%llu: kept %llu bytes",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(keep));
}

// Flips LEB128 continuation bits inside the DWARF-lite sections. A flipped
// high bit either fuses two encoded values into one oversized one or splits
// a multi-byte value mid-stream — record-level damage a byte flip at a
// random file offset almost never lands.
std::string ApplyLeb128Corrupt(std::vector<uint8_t>& bytes, Prng& prng, uint64_t seed) {
  auto section = FindMutableSection(bytes, {".sdwarf_info", ".sdwarf_abbrev"});
  if (!section.has_value()) {
    return ApplyByteFlip(bytes, prng, seed);
  }
  const uint64_t flips = prng.NextInRange(1, 4);
  std::string where;
  for (uint64_t i = 0; i < flips; ++i) {
    const uint64_t at = section->ref.offset + prng.NextBelow(section->ref.size);
    bytes[at] ^= 0x80;
    where += StrFormat("%s0x%llx", i == 0 ? "" : ",",
                       static_cast<unsigned long long>(at));
  }
  return StrFormat("leb128_corrupt seed=%llu: %llu continuation flips in %s @%s",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(flips), section->name, where.c_str());
}

// Number of .BTF.ext records that are both declared by the header and
// physically present in the section body.
uint64_t UsableBtfExtRecords(const std::vector<uint8_t>& bytes, const SectionRef& ref) {
  if (ref.size < kBtfExtHeaderSize + kBtfExtRecordSize) {
    return 0;
  }
  const uint64_t declared = ReadLE(bytes, ref.offset + 4, 4);
  const uint64_t present = (ref.size - kBtfExtHeaderSize) / kBtfExtRecordSize;
  return std::min(declared, present);
}

// Overwrites one u32 field of one CO-RE relocation record in .BTF.ext.
// Falls back to an aligned-word overwrite in .tracepoint_rec / .BTF (kernel
// images have no .BTF.ext), then to a byte flip.
std::string ApplyRelocRecordMutation(std::vector<uint8_t>& bytes, Prng& prng,
                                     uint64_t seed) {
  if (auto section = FindMutableSection(bytes, {".BTF.ext"}); section.has_value()) {
    const uint64_t usable = UsableBtfExtRecords(bytes, section->ref);
    if (usable > 0) {
      static constexpr const char* kFieldNames[] = {"type_id", "kind", "access_off",
                                                    "prog_index", "insn_off"};
      const uint64_t record = prng.NextBelow(usable);
      const uint64_t field = prng.NextBelow(5);
      const uint64_t value = prng.NextU64() & 0xffffffffull;
      WriteLE(bytes,
              section->ref.offset + kBtfExtHeaderSize +
                  static_cast<size_t>(record * kBtfExtRecordSize + field * 4),
              value, 4);
      return StrFormat("reloc_record_mutation seed=%llu: record %llu %s <- 0x%llx",
                       static_cast<unsigned long long>(seed),
                       static_cast<unsigned long long>(record), kFieldNames[field],
                       static_cast<unsigned long long>(value));
    }
  }
  auto fallback = FindMutableSection(bytes, {".tracepoint_rec", ".BTF"});
  if (fallback.has_value() && fallback->ref.size >= 4) {
    const uint64_t word = prng.NextBelow(fallback->ref.size / 4);
    const uint64_t value = prng.NextU64() & 0xffffffffull;
    const size_t at = fallback->ref.offset + static_cast<size_t>(word * 4);
    WriteLE(bytes, at, value, 4);
    return StrFormat("reloc_record_mutation seed=%llu: record word @0x%llx in %s <- 0x%llx",
                     static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(at), fallback->name,
                     static_cast<unsigned long long>(value));
  }
  return ApplyByteFlip(bytes, prng, seed);
}

// Scrambles which instruction each .BTF.ext record patches: swaps either
// two whole records or just their (prog_index, insn_off) bindings, so the
// record content stays individually well-formed while the binding becomes a
// lie — exactly the damage the analyzer's unbound/unreachable-reloc paths
// must survive. Kernel images fall back to scrambling the .BTF header.
std::string ApplyBtfExtScramble(std::vector<uint8_t>& bytes, Prng& prng, uint64_t seed) {
  if (auto section = FindMutableSection(bytes, {".BTF.ext"}); section.has_value()) {
    const uint64_t usable = UsableBtfExtRecords(bytes, section->ref);
    if (usable >= 2) {
      uint64_t a = prng.NextBelow(usable);
      uint64_t b = prng.NextBelow(usable - 1);
      if (b >= a) {
        ++b;
      }
      const size_t rec_a = section->ref.offset + kBtfExtHeaderSize +
                           static_cast<size_t>(a * kBtfExtRecordSize);
      const size_t rec_b = section->ref.offset + kBtfExtHeaderSize +
                           static_cast<size_t>(b * kBtfExtRecordSize);
      const bool whole = prng.NextBool(0.5);
      // Bindings are the last two u32s of the 20-byte record.
      const size_t at = whole ? 0 : 12;
      const size_t len = whole ? kBtfExtRecordSize : 8;
      for (size_t i = 0; i < len; ++i) {
        std::swap(bytes[rec_a + at + i], bytes[rec_b + at + i]);
      }
      return StrFormat("btf_ext_scramble seed=%llu: swapped %s of records %llu<->%llu",
                       static_cast<unsigned long long>(seed),
                       whole ? "all fields" : "bindings",
                       static_cast<unsigned long long>(a),
                       static_cast<unsigned long long>(b));
    }
  }
  if (auto fallback = FindMutableSection(bytes, {".BTF"});
      fallback.has_value() && fallback->ref.size >= 24) {
    const uint64_t word = prng.NextBelow(6);
    const uint64_t value = prng.NextBelow(0x10000);
    const size_t at = fallback->ref.offset + static_cast<size_t>(word * 4);
    WriteLE(bytes, at, value, 4);
    return StrFormat("btf_ext_scramble seed=%llu: .BTF header word %llu <- 0x%llx",
                     static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(word),
                     static_cast<unsigned long long>(value));
  }
  return ApplyByteFlip(bytes, prng, seed);
}

// Splices a window of a string table: NUL terminators become letters
// (fusing adjacent strings into one long name) and some letters become
// NULs (truncating names early). Both shapes stress every consumer that
// walks names — section lookup, symbol resolution, tracepoint registry.
std::string ApplyStringTableSplice(std::vector<uint8_t>& bytes, Prng& prng,
                                   uint64_t seed) {
  auto section = FindMutableSection(
      bytes, {".strtab", ".tracepoint_str", ".shstrtab", ".rodata.name"});
  if (!section.has_value()) {
    return ApplyByteFlip(bytes, prng, seed);
  }
  const uint64_t len = prng.NextInRange(1, std::min<uint64_t>(section->ref.size, 32));
  const uint64_t at = section->ref.offset + prng.NextBelow(section->ref.size - len + 1);
  for (uint64_t i = 0; i < len; ++i) {
    uint8_t& b = bytes[at + i];
    if (b == 0) {
      b = static_cast<uint8_t>('a' + prng.NextBelow(26));
    } else if (i == 0 || prng.NextBool(0.3)) {
      // The first byte always changes so the splice never silently no-ops.
      b = 0;
    }
  }
  return StrFormat("string_table_splice seed=%llu: %llu bytes @0x%llx in %s",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(len),
                   static_cast<unsigned long long>(at), section->name);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kByteFlip: return "byte_flip";
    case FaultKind::kZeroWindow: return "zero_window";
    case FaultKind::kSectionHeaderMutation: return "section_header_mutation";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kLeb128Corrupt: return "leb128_corrupt";
    case FaultKind::kRelocRecordMutation: return "reloc_record_mutation";
    case FaultKind::kBtfExtScramble: return "btf_ext_scramble";
    case FaultKind::kStringTableSplice: return "string_table_splice";
  }
  return "unknown";
}

FaultKind FaultKindForIndex(uint64_t index) {
  return static_cast<FaultKind>(index % kNumFaultKinds);
}

bool PoisonSectionHeader(std::vector<uint8_t>& bytes, std::string_view section_name) {
  auto section = FindSectionByName(bytes, section_name);
  if (!section.has_value()) {
    return false;
  }
  // Point the body past end-of-file; ElfReader::ParseSections rejects the
  // image with a fatal error tagged with this section's subsystem.
  WriteLE(bytes, section->header + kShOffsetOffset, bytes.size() + 0x1000, 8);
  return true;
}

std::string ApplyFault(std::vector<uint8_t>& bytes, FaultKind kind, uint64_t seed) {
  if (bytes.empty()) {
    return StrFormat("%s seed=%llu: input empty, nothing to damage",
                     FaultKindName(kind), static_cast<unsigned long long>(seed));
  }
  // Key the stream on (kind, seed, size) so the same seed produces
  // different-but-deterministic damage per kind and per input.
  Prng prng = Prng(seed).Fork({static_cast<uint64_t>(kind), bytes.size()});
  switch (kind) {
    case FaultKind::kByteFlip:
      return ApplyByteFlip(bytes, prng, seed);
    case FaultKind::kZeroWindow:
      return ApplyZeroWindow(bytes, prng, seed);
    case FaultKind::kSectionHeaderMutation:
      return ApplySectionHeaderMutation(bytes, prng, seed);
    case FaultKind::kTruncate:
      return ApplyTruncate(bytes, prng, seed);
    case FaultKind::kLeb128Corrupt:
      return ApplyLeb128Corrupt(bytes, prng, seed);
    case FaultKind::kRelocRecordMutation:
      return ApplyRelocRecordMutation(bytes, prng, seed);
    case FaultKind::kBtfExtScramble:
      return ApplyBtfExtScramble(bytes, prng, seed);
    case FaultKind::kStringTableSplice:
      return ApplyStringTableSplice(bytes, prng, seed);
  }
  return "unknown fault kind";
}

}  // namespace depsurf
