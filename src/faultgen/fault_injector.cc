#include "src/faultgen/fault_injector.h"

#include <algorithm>

#include "src/util/prng.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// ELF64 header field offsets needed to find the section header table.
constexpr size_t kShoffOffset = 0x28;
constexpr size_t kShentsizeOffset = 0x3a;
constexpr size_t kShnumOffset = 0x3c;
constexpr size_t kShstrndxOffset = 0x3e;
constexpr size_t kElf64HeaderSize = 0x40;
// ELF64 section header field offsets.
constexpr size_t kShNameOffset = 0x00;
constexpr size_t kShOffsetOffset = 0x18;
constexpr size_t kShSizeOffset = 0x20;

uint64_t ReadLE(const std::vector<uint8_t>& bytes, size_t offset, int width) {
  uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(bytes[offset + i]) << (8 * i);
  }
  return v;
}

void WriteLE(std::vector<uint8_t>& bytes, size_t offset, uint64_t v, int width) {
  for (int i = 0; i < width; ++i) {
    bytes[offset + i] = static_cast<uint8_t>(v >> (8 * i));
  }
}

std::string ApplyByteFlip(std::vector<uint8_t>& bytes, Prng& prng, uint64_t seed) {
  const uint64_t flips = prng.NextInRange(1, 8);
  std::string where;
  for (uint64_t i = 0; i < flips; ++i) {
    const uint64_t at = prng.NextBelow(bytes.size());
    bytes[at] ^= static_cast<uint8_t>(prng.NextInRange(1, 255));
    where += StrFormat("%s0x%llx", i == 0 ? "" : ",",
                       static_cast<unsigned long long>(at));
  }
  return StrFormat("byte_flip seed=%llu: %llu flips @%s",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(flips), where.c_str());
}

std::string ApplyZeroWindow(std::vector<uint8_t>& bytes, Prng& prng, uint64_t seed) {
  const uint64_t max_len = std::min<uint64_t>(bytes.size(), 512);
  const uint64_t len = prng.NextInRange(1, max_len);
  const uint64_t at = prng.NextBelow(bytes.size() - len + 1);
  for (uint64_t i = 0; i < len; ++i) {
    bytes[at + i] = 0;
  }
  return StrFormat("zero_window seed=%llu: %llu bytes @0x%llx",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(len),
                   static_cast<unsigned long long>(at));
}

std::string ApplySectionHeaderMutation(std::vector<uint8_t>& bytes, Prng& prng,
                                       uint64_t seed) {
  if (bytes.size() < kElf64HeaderSize) {
    return ApplyByteFlip(bytes, prng, seed);
  }
  const uint64_t shoff = ReadLE(bytes, kShoffOffset, 8);
  const uint64_t shentsize = ReadLE(bytes, kShentsizeOffset, 2);
  const uint64_t shnum = ReadLE(bytes, kShnumOffset, 2);
  if (shnum == 0 || shentsize < 0x28 || shoff > bytes.size() ||
      shnum * shentsize > bytes.size() - shoff) {
    // No usable table to corrupt (maybe a previous fault already ate it).
    return ApplyByteFlip(bytes, prng, seed);
  }
  const uint64_t index = prng.NextBelow(shnum);
  const size_t header = static_cast<size_t>(shoff + index * shentsize);
  // Field candidates: sh_type (+0x04, 4 bytes), sh_offset (+0x18, 8),
  // sh_size (+0x20, 8) — the fields bounds checks and decoders key on.
  struct Field { const char* name; size_t at; int width; };
  constexpr Field kFields[] = {
      {"sh_type", 0x04, 4}, {"sh_offset", 0x18, 8}, {"sh_size", 0x20, 8}};
  const Field& field = kFields[prng.NextBelow(3)];
  const uint64_t value = prng.NextU64();
  WriteLE(bytes, header + field.at, value, field.width);
  return StrFormat("section_header_mutation seed=%llu: section %llu %s <- 0x%llx",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(index), field.name,
                   static_cast<unsigned long long>(value));
}

std::string ApplyTruncate(std::vector<uint8_t>& bytes, Prng& prng, uint64_t seed) {
  // Keep at least one byte; a zero-size input exercises nothing.
  const uint64_t keep = prng.NextInRange(1, bytes.size());
  bytes.resize(static_cast<size_t>(keep));
  return StrFormat("truncate seed=%llu: kept %llu bytes",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(keep));
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kByteFlip: return "byte_flip";
    case FaultKind::kZeroWindow: return "zero_window";
    case FaultKind::kSectionHeaderMutation: return "section_header_mutation";
    case FaultKind::kTruncate: return "truncate";
  }
  return "unknown";
}

FaultKind FaultKindForIndex(uint64_t index) {
  return static_cast<FaultKind>(index % kNumFaultKinds);
}

bool PoisonSectionHeader(std::vector<uint8_t>& bytes, std::string_view section_name) {
  if (bytes.size() < kElf64HeaderSize || bytes[0] != 0x7f || bytes[1] != 'E' ||
      bytes[2] != 'L' || bytes[3] != 'F' || bytes[4] != 2 /* ELFCLASS64 */ ||
      bytes[5] != 1 /* little-endian */) {
    return false;
  }
  const uint64_t shoff = ReadLE(bytes, kShoffOffset, 8);
  const uint64_t shentsize = ReadLE(bytes, kShentsizeOffset, 2);
  const uint64_t shnum = ReadLE(bytes, kShnumOffset, 2);
  const uint64_t shstrndx = ReadLE(bytes, kShstrndxOffset, 2);
  if (shnum == 0 || shentsize < kElf64HeaderSize || shoff > bytes.size() ||
      shnum * shentsize > bytes.size() - shoff || shstrndx >= shnum) {
    return false;
  }
  const size_t strtab_header = static_cast<size_t>(shoff + shstrndx * shentsize);
  const uint64_t str_off = ReadLE(bytes, strtab_header + kShOffsetOffset, 8);
  const uint64_t str_size = ReadLE(bytes, strtab_header + kShSizeOffset, 8);
  if (str_off > bytes.size() || str_size > bytes.size() - str_off) {
    return false;
  }
  for (uint64_t i = 0; i < shnum; ++i) {
    const size_t header = static_cast<size_t>(shoff + i * shentsize);
    const uint64_t name_off = ReadLE(bytes, header + kShNameOffset, 4);
    if (name_off >= str_size) {
      continue;
    }
    const char* name = reinterpret_cast<const char*>(bytes.data() + str_off + name_off);
    size_t len = 0;
    while (name_off + len < str_size && name[len] != '\0') {
      ++len;
    }
    if (std::string_view(name, len) != section_name) {
      continue;
    }
    // Point the body past end-of-file; ElfReader::ParseSections rejects the
    // image with a fatal error tagged with this section's subsystem.
    WriteLE(bytes, header + kShOffsetOffset, bytes.size() + 0x1000, 8);
    return true;
  }
  return false;
}

std::string ApplyFault(std::vector<uint8_t>& bytes, FaultKind kind, uint64_t seed) {
  if (bytes.empty()) {
    return StrFormat("%s seed=%llu: input empty, nothing to damage",
                     FaultKindName(kind), static_cast<unsigned long long>(seed));
  }
  // Key the stream on (kind, seed, size) so the same seed produces
  // different-but-deterministic damage per kind and per input.
  Prng prng = Prng(seed).Fork({static_cast<uint64_t>(kind), bytes.size()});
  switch (kind) {
    case FaultKind::kByteFlip:
      return ApplyByteFlip(bytes, prng, seed);
    case FaultKind::kZeroWindow:
      return ApplyZeroWindow(bytes, prng, seed);
    case FaultKind::kSectionHeaderMutation:
      return ApplySectionHeaderMutation(bytes, prng, seed);
    case FaultKind::kTruncate:
      return ApplyTruncate(bytes, prng, seed);
  }
  return "unknown fault kind";
}

}  // namespace depsurf
