// Deterministic fault injection for robustness sweeps and fuzzing.
//
// Salvage-mode extraction promises "no crash, no hang, ledger populated"
// on arbitrarily damaged inputs; this engine manufactures that damage
// reproducibly. Every mutation is a pure function of (kind, seed, input
// size), keyed through Prng the same way kernelgen keys its decisions, so
// a failing sweep index can be replayed exactly:
//
//   std::vector<uint8_t> bytes = ...;
//   std::string what = ApplyFault(bytes, FaultKind::kByteFlip, 42);
//   // -> "byte_flip seed=42: 3 flips @0x1c0,0x88f2,0x9001"
//
// The first four kinds are blind (they need no knowledge of the input
// format); the rest are structure-aware: they parse the ELF section table
// to land damage inside the section a specific decoder consumes, which is
// what lets the fuzz campaign (src/fuzz) reach deep salvage paths a random
// byte flip almost never hits. Every structure-aware kind degrades to a
// byte flip when its target is absent, so any kind applies to any input.
//
// Consumers: `depsurf doctor --sweep`, `depsurf fuzz`, tests, and the
// study poisoning hook (Study::SetImageMutator).
#ifndef DEPSURF_SRC_FAULTGEN_FAULT_INJECTOR_H_
#define DEPSURF_SRC_FAULTGEN_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace depsurf {

enum class FaultKind : uint8_t {
  kByteFlip,               // XOR 1..8 bytes at random offsets
  kZeroWindow,             // zero a contiguous window
  kSectionHeaderMutation,  // corrupt one field of one ELF section header
  kTruncate,               // drop the tail of the buffer
  kLeb128Corrupt,          // flip LEB128 continuation bits in DWARF sections
  kRelocRecordMutation,    // overwrite one field of a .BTF.ext reloc record
  kBtfExtScramble,         // swap .BTF.ext records or their insn bindings
  kStringTableSplice,      // splice NULs/letters inside a string table
};

inline constexpr int kNumFaultKinds = 8;

// "byte_flip", "zero_window", ..., "string_table_splice".
const char* FaultKindName(FaultKind kind);

// Round-robin kind assignment for sweeps: index i exercises kind
// i % kNumFaultKinds.
FaultKind FaultKindForIndex(uint64_t index);

// Mutates `bytes` in place and returns a one-line description of the
// damage (kind, seed, offsets touched). Deterministic in (kind, seed,
// bytes.size()). Inputs smaller than an ELF header (or missing the section
// a structure-aware kind targets) degrade gracefully to a byte flip;
// truncation never empties the buffer entirely.
std::string ApplyFault(std::vector<uint8_t>& bytes, FaultKind kind, uint64_t seed);

// Targeted poison: points the named section's sh_offset past end-of-file in
// a 64-bit little-endian ELF, guaranteeing a fatal "section body beyond
// file" on exactly that section. Unlike ApplyFault this is surgical, not
// random — tests use it to prove fatal errors are attributed to the
// subsystem owning the section (poisoning .sdwarf_info must read as a DWARF
// failure, not an ELF one). Returns false when the input is not a 64-bit LE
// ELF with a readable section table containing `section_name`; the buffer
// is unmodified in that case.
bool PoisonSectionHeader(std::vector<uint8_t>& bytes, std::string_view section_name);

}  // namespace depsurf

#endif  // DEPSURF_SRC_FAULTGEN_FAULT_INJECTOR_H_
