// Per-program control-flow graph over a BPF instruction stream.
//
// Blocks are maximal straight-line runs; edges follow the ISA's jump
// semantics (deltas are in 8-byte slots, relative to the slot after the
// branch). The graph is the substrate for the analyzer's reachability and
// abstract-interpretation passes.
#ifndef DEPSURF_SRC_ANALYZER_CFG_H_
#define DEPSURF_SRC_ANALYZER_CFG_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/bpf/bpf_insn.h"

namespace depsurf {

struct CfgBlock {
  size_t first = 0;  // insn index of the block leader
  size_t last = 0;   // insn index of the terminator (inclusive)
  // Successor block ids. For a conditional branch, index 0 is the taken
  // edge and index 1 the fall-through (the order guard analysis relies on).
  std::vector<size_t> succs;
};

struct Cfg {
  std::vector<CfgBlock> blocks;       // block 0 is the entry
  std::vector<size_t> insn_block;     // insn index -> owning block id
  std::vector<uint32_t> insn_byte_off;  // insn index -> byte offset in section
  // Branch targets that did not land on an instruction boundary (decoded
  // stream ends early, or a corrupt delta); edges to them are dropped.
  size_t dangling_edges = 0;
};

// Builds the CFG. Well-defined for any decoded stream, including one
// salvaged to a prefix: jumps past the end simply produce no edge (counted
// in dangling_edges).
Cfg BuildCfg(const std::vector<BpfInsn>& insns);

// Instruction reachability from the entry block. `dead_edge(block, succ_pos)`
// returns true to suppress the edge at position `succ_pos` of `block`
// (guard-pruned reachability); pass an empty function for plain
// reachability.
std::vector<bool> ReachableInsns(
    const Cfg& cfg, const std::vector<BpfInsn>& insns,
    const std::function<bool(size_t block, size_t succ_pos)>& dead_edge = {});

}  // namespace depsurf

#endif  // DEPSURF_SRC_ANALYZER_CFG_H_
