#include "src/analyzer/remediation.h"

#include <map>
#include <set>
#include <utility>

#include "src/analyzer/cfg.h"
#include "src/analyzer/liveness.h"
#include "src/core/dataset.h"
#include "src/obs/run_report.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

std::string Quoted(const std::string& s) { return "\"" + obs::JsonEscape(s) + "\""; }

// Per-program state the planner needs, built once on demand.
struct ProgramView {
  Cfg cfg;
  std::vector<LiveMask> live_in;
  std::map<uint32_t, size_t> insn_at_off;  // byte offset -> insn index
};

const ProgramView& ViewOf(const BpfObject& object, uint32_t p,
                          std::map<uint32_t, ProgramView>& cache) {
  auto it = cache.find(p);
  if (it != cache.end()) {
    return it->second;
  }
  ProgramView view;
  const std::vector<BpfInsn>& insns = object.programs[p].insns;
  view.cfg = BuildCfg(insns);
  view.live_in = ComputeLiveness(view.cfg, insns);
  for (size_t i = 0; i < insns.size(); ++i) {
    view.insn_at_off[view.cfg.insn_byte_off[i]] = i;
  }
  return cache.emplace(p, std::move(view)).first->second;
}

// Matching key for before/after finding comparison: byte offsets shift
// when guards are spliced in, detail strings do not.
std::string FindingKey(const Finding& finding) {
  std::string key = FindingKindName(finding.kind);
  key += '\0';
  key += finding.program;
  key += '\0';
  key += finding.detail;
  return key;
}

}  // namespace

std::string Remediation::Text() const {
  if (!fixable) {
    return "not fixable: " + reason;
  }
  return StrFormat("insert field_exists(%s::%s) guard before insn_off %u (scratch r%d)",
                   struct_name.c_str(), field_name.c_str(), insn_off, scratch_reg);
}

size_t RemediationPlan::FixableCount() const {
  size_t n = 0;
  for (const Remediation& item : items) {
    if (item.fixable) {
      ++n;
    }
  }
  return n;
}

std::vector<GuardInsertion> RemediationPlan::Insertions() const {
  std::vector<GuardInsertion> out;
  for (const Remediation& item : items) {
    if (!item.fixable) {
      continue;
    }
    GuardInsertion ins;
    ins.prog_index = item.prog_index;
    ins.insn_off = item.insn_off;
    ins.scratch_reg = static_cast<uint8_t>(item.scratch_reg);
    ins.reloc_index = static_cast<uint32_t>(item.reloc_index);
    out.push_back(ins);
  }
  return out;
}

RemediationPlan PlanRemediation(const BpfObject& object,
                                const ObjectAnalysis& analysis,
                                const AnalyzeOptions& opts) {
  RemediationPlan plan;
  plan.items.reserve(analysis.findings.size());

  std::vector<const Dataset*> views;
  for (const Dataset* ds : opts.against_all) {
    if (ds != nullptr) {
      views.push_back(ds);
    }
  }
  if (views.empty() && opts.against != nullptr) {
    views.push_back(opts.against);
  }

  std::map<uint32_t, ProgramView> cache;
  // reloc index -> would an exists-guard on this field be statically false?
  std::map<int32_t, bool> static_false;

  for (const Finding& finding : analysis.findings) {
    Remediation item;
    switch (finding.kind) {
      case FindingKind::kRawOffsetDeref:
        item.reason =
            "no CO-RE relocation; a guard cannot be synthesized without "
            "source-level CO-RE conversion";
        break;
      case FindingKind::kUnknownHelper:
        item.reason = "helper availability cannot be patched into the object";
        break;
      case FindingKind::kUnreachableReloc:
        item.reason = "dead code against the dataset";
        break;
      case FindingKind::kUnguardedReloc: {
        if (finding.reloc_index < 0 ||
            static_cast<size_t>(finding.reloc_index) >= object.relocs.size()) {
          item.reason = "relocation is not bound to an instruction";
          break;
        }
        const CoreReloc& reloc = object.relocs[finding.reloc_index];
        if (reloc.prog_index == kRelocUnbound ||
            reloc.prog_index >= object.programs.size()) {
          item.reason = "relocation is not bound to an instruction";
          break;
        }
        const ProgramView& view = ViewOf(object, reloc.prog_index, cache);
        if (view.cfg.dangling_edges > 0) {
          item.reason = "program has unresolvable jump targets";
          break;
        }
        auto insn_it = view.insn_at_off.find(finding.insn_off);
        if (insn_it == view.insn_at_off.end()) {
          item.reason = "relocation is not bound to an instruction";
          break;
        }
        const RelocVerdict& verdict = analysis.relocs[finding.reloc_index];
        if (!views.empty()) {
          auto sf = static_false.find(finding.reloc_index);
          if (sf == static_false.end()) {
            bool absent_everywhere = true;
            for (const Dataset* ds : views) {
              auto cells = ds->CheckField(verdict.struct_name, verdict.field_name,
                                          verdict.expected_type, /*guarded=*/false);
              for (const auto& cell : cells) {
                if (cell.count(MismatchKind::kAbsent) == 0) {
                  absent_everywhere = false;
                  break;
                }
              }
              if (!absent_everywhere) {
                break;
              }
            }
            sf = static_false.emplace(finding.reloc_index, absent_everywhere).first;
          }
          if (sf->second) {
            item.reason = "an exists-guard would be statically false (dead code)";
            break;
          }
        }
        int scratch = PickScratchRegister(view.live_in[insn_it->second]);
        if (scratch < 0) {
          item.reason = "no dead register at the insertion point";
          break;
        }
        item.fixable = true;
        item.prog_index = reloc.prog_index;
        item.insn_off = finding.insn_off;
        item.scratch_reg = scratch;
        item.reloc_index = finding.reloc_index;
        item.struct_name = verdict.struct_name;
        item.field_name = verdict.field_name;
        size_t slots = object.programs[reloc.prog_index].insns[insn_it->second].Slots();
        item.guard = StrFormat("r%d = field_exists(%s::%s); if r%d == 0 goto +%zu",
                               scratch, verdict.struct_name.c_str(),
                               verdict.field_name.c_str(), scratch, slots);
        break;
      }
    }
    plan.items.push_back(std::move(item));
  }
  return plan;
}

RemediationVerification VerifyRemediation(const ObjectAnalysis& before,
                                          const RemediationPlan& plan,
                                          const ObjectAnalysis& after) {
  RemediationVerification v;
  v.findings_before = before.findings.size();
  v.findings_after = after.findings.size();

  // Multisets keyed by (kind, program, detail).
  std::map<std::string, size_t> targeted;
  std::map<std::string, size_t> expected_remaining;
  for (size_t i = 0; i < before.findings.size(); ++i) {
    bool is_targeted = i < plan.items.size() && plan.items[i].fixable;
    if (is_targeted) {
      ++targeted[FindingKey(before.findings[i])];
      ++v.targeted;
    } else {
      ++expected_remaining[FindingKey(before.findings[i])];
    }
  }
  for (const Finding& finding : after.findings) {
    std::string key = FindingKey(finding);
    auto it = expected_remaining.find(key);
    if (it != expected_remaining.end() && it->second > 0) {
      --it->second;
      continue;
    }
    auto t = targeted.find(key);
    if (t != targeted.end() && t->second > 0) {
      --t->second;
      ++v.targeted_remaining;
      continue;
    }
    ++v.new_findings;
  }
  v.ok = v.targeted_remaining == 0 && v.new_findings == 0;
  return v;
}

std::string RemediationToJson(const ObjectAnalysis& analysis,
                              const RemediationPlan& plan,
                              const RemediationVerification* verification) {
  std::string out;
  out += "{\n";
  out += StrFormat("  \"schema\": \"%s\",\n", kRemediationSchema);
  out += "  \"object\": " + Quoted(analysis.object_name) + ",\n";
  if (analysis.against_dataset) {
    out += StrFormat("  \"against\": {\"images\": %zu},\n", analysis.against_images);
  } else {
    out += "  \"against\": null,\n";
  }

  out += "  \"remediations\": [";
  for (size_t i = 0; i < plan.items.size(); ++i) {
    const Remediation& item = plan.items[i];
    const Finding& finding = analysis.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat("    {\"finding\": {\"kind\": \"%s\", \"program\": %s"
                     ", \"insn_off\": %u",
                     FindingKindName(finding.kind), Quoted(finding.program).c_str(),
                     finding.insn_off);
    if (finding.reloc_index >= 0) {
      out += StrFormat(", \"reloc\": %d", finding.reloc_index);
    }
    out += ", \"detail\": " + Quoted(finding.detail) + "}";
    if (item.fixable) {
      out += StrFormat(", \"fixable\": true, \"insn_off\": %u, \"scratch_reg\": %d",
                       item.insn_off, item.scratch_reg);
      out += ", \"struct\": " + Quoted(item.struct_name);
      out += ", \"field\": " + Quoted(item.field_name);
      out += ", \"guard\": " + Quoted(item.guard);
    } else {
      out += ", \"fixable\": false, \"reason\": " + Quoted(item.reason);
    }
    out += "}";
  }
  out += plan.items.empty() ? "],\n" : "\n  ],\n";

  if (verification != nullptr) {
    out += StrFormat("  \"verification\": {\"findings_before\": %zu, \"targeted\": %zu"
                     ", \"findings_after\": %zu, \"targeted_remaining\": %zu"
                     ", \"new_findings\": %zu, \"ok\": %s},\n",
                     verification->findings_before, verification->targeted,
                     verification->findings_after, verification->targeted_remaining,
                     verification->new_findings, verification->ok ? "true" : "false");
  } else {
    out += "  \"verification\": null,\n";
  }

  out += StrFormat("  \"summary\": {\"findings\": %zu, \"fixable\": %zu"
                   ", \"unfixable\": %zu}\n",
                   plan.items.size(), plan.FixableCount(),
                   plan.items.size() - plan.FixableCount());
  out += "}\n";
  return out;
}

}  // namespace depsurf
