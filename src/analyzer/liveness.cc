#include "src/analyzer/liveness.h"

namespace depsurf {

namespace {

constexpr LiveMask Bit(uint8_t reg) {
  return static_cast<LiveMask>(1u << reg);
}

struct DefUse {
  LiveMask def = 0;
  LiveMask use = 0;
};

DefUse InsnDefUse(const BpfInsn& insn) {
  DefUse du;
  if (insn.opcode == kOpLdImm64 || insn.opcode == kOpMov64Imm) {
    du.def = Bit(insn.dst_reg);
  } else if (insn.IsLoad()) {
    du.use = Bit(insn.src_reg);
    du.def = Bit(insn.dst_reg);
  } else if (insn.IsStore()) {
    du.use = static_cast<LiveMask>(Bit(insn.dst_reg) | Bit(insn.src_reg));
  } else if (insn.IsCondJump()) {
    du.use = Bit(insn.dst_reg);
  } else if (insn.IsUncondJump()) {
    // neither reads nor writes registers
  } else if (insn.IsCall()) {
    // BPF calling convention: helpers read their arguments from r1-r5 and
    // clobber r0-r5 (r0 carries the return value, r1-r5 are caller-saved).
    du.use = Bit(1) | Bit(2) | Bit(3) | Bit(4) | Bit(5);
    du.def = Bit(0) | Bit(1) | Bit(2) | Bit(3) | Bit(4) | Bit(5);
  } else if (insn.IsExit()) {
    du.use = Bit(0);
  } else {
    // Unknown opcode: assume it may read anything and define nothing, the
    // conservative direction for "is this register dead here?".
    du.use = kAllRegsLive;
  }
  return du;
}

}  // namespace

std::vector<LiveMask> ComputeLiveness(const Cfg& cfg,
                                      const std::vector<BpfInsn>& insns) {
  std::vector<LiveMask> live_in(insns.size(), 0);
  if (insns.empty()) {
    return live_in;
  }

  const size_t nblocks = cfg.blocks.size();
  std::vector<LiveMask> block_in(nblocks, 0);
  std::vector<LiveMask> block_exit(nblocks, 0);
  for (size_t b = 0; b < nblocks; ++b) {
    const BpfInsn& term = insns[cfg.blocks[b].last];
    // A block whose control flow escapes the decoded stream (dangling jump
    // target, truncated fall-through) gets an all-live exit mask: nothing
    // is provably dead past an edge we cannot follow.
    bool escapes = false;
    if (term.IsCondJump()) {
      escapes = cfg.blocks[b].succs.size() < 2;
    } else if (term.IsUncondJump()) {
      escapes = cfg.blocks[b].succs.empty();
    } else if (!term.IsExit()) {
      escapes = cfg.blocks[b].succs.empty();  // fell off the end of the stream
    }
    if (escapes) {
      block_exit[b] = kAllRegsLive;
    }
  }

  // Backward fixpoint over blocks: live-out = exit mask | union of successor
  // live-ins; sweep the block bottom-up to get its live-in.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t bi = nblocks; bi-- > 0;) {
      const CfgBlock& block = cfg.blocks[bi];
      LiveMask live = block_exit[bi];
      for (size_t s : block.succs) {
        live |= block_in[s];
      }
      for (size_t i = block.last + 1; i-- > block.first;) {
        DefUse du = InsnDefUse(insns[i]);
        live = static_cast<LiveMask>((live & ~du.def) | du.use);
        live_in[i] = live;
      }
      if (block_in[bi] != live) {
        block_in[bi] = live;
        changed = true;
      }
    }
  }
  return live_in;
}

int PickScratchRegister(LiveMask live) {
  for (int r = 0; r <= 9; ++r) {
    if ((live & (1u << r)) == 0) {
      return r;
    }
  }
  return -1;
}

}  // namespace depsurf
