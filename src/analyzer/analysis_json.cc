// Deterministic depsurf.analysis.v1 serialization. Key order is fixed and
// every collection is pre-sorted by AnalyzeObject, so two runs over the
// same object produce byte-identical documents (golden-testable).
#include "src/analyzer/analyzer.h"
#include "src/obs/run_report.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

std::string Quoted(const std::string& s) { return "\"" + obs::JsonEscape(s) + "\""; }

std::string Bool(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string AnalysisToJson(const ObjectAnalysis& analysis) {
  std::string out;
  out += "{\n";
  out += StrFormat("  \"schema\": \"%s\",\n", kAnalysisSchema);
  out += "  \"object\": " + Quoted(analysis.object_name) + ",\n";
  if (analysis.against_dataset) {
    out += StrFormat("  \"against\": {\"images\": %zu},\n", analysis.against_images);
  } else {
    out += "  \"against\": null,\n";
  }

  out += "  \"programs\": [";
  for (size_t i = 0; i < analysis.programs.size(); ++i) {
    const ProgramAnalysis& pa = analysis.programs[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + Quoted(pa.name) + ", \"section\": " + Quoted(pa.section);
    out += StrFormat(", \"insns\": %zu, \"blocks\": %zu, \"reachable_insns\": %zu"
                     ", \"helper_calls\": %zu}",
                     pa.insn_count, pa.block_count, pa.reachable_insns, pa.helper_calls);
  }
  out += analysis.programs.empty() ? "],\n" : "\n  ],\n";

  out += "  \"relocs\": [";
  for (size_t i = 0; i < analysis.relocs.size(); ++i) {
    const RelocVerdict& verdict = analysis.relocs[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat("    {\"index\": %zu, \"kind\": \"%s\"", verdict.index,
                     CoreRelocKindName(verdict.kind));
    out += ", \"struct\": " + Quoted(verdict.struct_name);
    out += ", \"field\": " + Quoted(verdict.field_name);
    if (verdict.bound) {
      out += ", \"program\": " + Quoted(verdict.program);
      out += StrFormat(", \"insn_off\": %u", verdict.insn_off);
    } else {
      out += ", \"program\": null";
    }
    out += ", \"reachable\": " + std::string(Bool(verdict.reachable));
    out += ", \"unguarded\": " + std::string(Bool(verdict.unguarded));
    if (analysis.against_dataset) {
      out += ", \"consequence\": " + Quoted(verdict.consequence);
    }
    out += "}";
  }
  out += analysis.relocs.empty() ? "],\n" : "\n  ],\n";

  out += "  \"findings\": [";
  for (size_t i = 0; i < analysis.findings.size(); ++i) {
    const Finding& finding = analysis.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat("    {\"kind\": \"%s\", \"program\": %s, \"insn_off\": %u",
                     FindingKindName(finding.kind), Quoted(finding.program).c_str(),
                     finding.insn_off);
    if (finding.reloc_index >= 0) {
      out += StrFormat(", \"reloc\": %d", finding.reloc_index);
    }
    out += ", \"detail\": " + Quoted(finding.detail);
    out += ", \"remediation\": " + Quoted(finding.remediation) + "}";
  }
  out += analysis.findings.empty() ? "],\n" : "\n  ],\n";

  out += "  \"summary\": {";
  out += StrFormat("\"findings\": %zu", analysis.findings.size());
  out += StrFormat(", \"raw_offset_deref\": %zu",
                   analysis.CountKind(FindingKind::kRawOffsetDeref));
  out += StrFormat(", \"unguarded_reloc\": %zu",
                   analysis.CountKind(FindingKind::kUnguardedReloc));
  out += StrFormat(", \"unknown_helper\": %zu",
                   analysis.CountKind(FindingKind::kUnknownHelper));
  out += StrFormat(", \"unreachable_reloc\": %zu",
                   analysis.CountKind(FindingKind::kUnreachableReloc));
  out += "}\n";
  out += "}\n";
  return out;
}

}  // namespace depsurf
