// Immediate-dominator tree over a per-program CFG.
//
// The guard-dominance question ("is every path to this relocated access
// forced through the exists-check?") is exactly block dominance, so the
// analyzer computes immediate dominators with the Cooper-Harvey-Kennedy
// algorithm (reverse-postorder iteration + two-finger intersection). CHK
// is O(blocks^2) worst case but converges in one or two passes on the
// reducible, mostly-forward graphs eBPF programs compile to — and unlike
// the earlier path-set dataflow approximation it gives the remediation
// planner a tree it can insert new guards into with a proof obligation
// ("the inserted block dominates the access") instead of a heuristic.
#ifndef DEPSURF_SRC_ANALYZER_DOMINATOR_H_
#define DEPSURF_SRC_ANALYZER_DOMINATOR_H_

#include <cstddef>
#include <vector>

#include "src/analyzer/cfg.h"

namespace depsurf {

struct DominatorTree {
  static constexpr size_t kUnreachable = static_cast<size_t>(-1);

  // idom[b] is the immediate dominator of block b; the entry block is its
  // own idom, unreachable blocks carry kUnreachable.
  std::vector<size_t> idom;
  // Reverse-postorder number per block (kUnreachable when unreachable);
  // dominators always have smaller numbers than the blocks they dominate.
  std::vector<size_t> rpo_num;
  // Incoming edge count per block (an edge is counted once per successor
  // slot, so a conditional whose arms both reach b contributes two).
  std::vector<size_t> pred_edges;

  // Reflexive dominance: does a dominate b? False when either block is
  // unreachable from the entry.
  bool Dominates(size_t a, size_t b) const;
};

DominatorTree BuildDominatorTree(const Cfg& cfg);

}  // namespace depsurf

#endif  // DEPSURF_SRC_ANALYZER_DOMINATOR_H_
