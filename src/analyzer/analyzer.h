// Verifier-style static analysis of compiled eBPF objects.
//
// The dependency-set extractor reads only section names and CO-RE records;
// this pass reads the instruction streams. Per program it builds a CFG,
// computes reachability and an immediate-dominator tree, and runs an
// abstract interpretation tracking register provenance (ctx pointer /
// kernel pointer / scalar / guard result); field-exists facts hold exactly
// in the blocks dominated by a guard's exists-edge successor. Findings:
//
//   raw-offset-deref   load from a kernel or ctx pointer at a hardcoded
//                      displacement with no CO-RE relocation — an implicit
//                      struct-layout dependency (breaks silently).
//   unguarded-reloc    field relocation not dominated by a
//                      bpf_core_field_exists check on the same field.
//   unknown-helper     call to a helper id outside the catalog, or (with
//                      --against) one some dataset kernel predates.
//   unreachable-reloc  relocation only reachable through a guard that
//                      statically resolves false against the dataset.
//
// Guard facts also refine the mismatch report: a field-absent mismatch
// dominated by an exists-guard downgrades to "handled by program".
#ifndef DEPSURF_SRC_ANALYZER_ANALYZER_H_
#define DEPSURF_SRC_ANALYZER_ANALYZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bpf/bpf_object.h"
#include "src/core/dataset.h"
#include "src/core/dependency_set.h"

namespace depsurf {

inline constexpr char kAnalysisSchema[] = "depsurf.analysis.v1";

enum class FindingKind : uint8_t {
  kRawOffsetDeref,
  kUnguardedReloc,
  kUnknownHelper,
  kUnreachableReloc,
};

// "raw-offset-deref" / "unguarded-reloc" / "unknown-helper" /
// "unreachable-reloc".
const char* FindingKindName(FindingKind kind);

struct Finding {
  FindingKind kind = FindingKind::kRawOffsetDeref;
  std::string program;     // program (function) name
  uint32_t insn_off = 0;   // byte offset of the instruction in its section
  int32_t reloc_index = -1;  // index into BpfObject::relocs, when bound
  std::string detail;      // deterministic human-readable explanation
  // One-line remediation: either the concrete guard insertion the planner
  // synthesized or "not fixable: <reason>" (see src/analyzer/remediation.h).
  std::string remediation;
};

// Per-relocation verdicts (every record, finding or not).
struct RelocVerdict {
  size_t index = 0;  // into BpfObject::relocs
  CoreRelocKind kind = CoreRelocKind::kFieldByteOffset;
  std::string struct_name;  // terminal (struct, field) of the access chain
  std::string field_name;   // empty for type-exists records
  std::string expected_type;
  std::string program;  // owning program; empty when unbound
  uint32_t insn_off = 0;
  bool bound = false;
  bool reachable = true;   // insn reachable ignoring guard pruning
  bool unguarded = true;   // field reloc not dominated by a matching guard
  // With `against`: worst mismatch consequence across the dataset, already
  // guard-refined ("handled by program" when the guard covers an absence).
  std::string consequence;
};

struct ProgramAnalysis {
  std::string name;
  std::string section;
  size_t insn_count = 0;
  size_t block_count = 0;
  size_t reachable_insns = 0;
  size_t helper_calls = 0;
};

struct ObjectAnalysis {
  std::string object_name;
  std::vector<ProgramAnalysis> programs;
  std::vector<RelocVerdict> relocs;
  // Sorted by (program, insn_off, kind, detail) for deterministic output.
  std::vector<Finding> findings;
  bool against_dataset = false;
  size_t against_images = 0;

  size_t CountKind(FindingKind kind) const;
};

struct AnalyzeOptions {
  // When set, helper availability and guard truth are evaluated against
  // the dataset's images (enables unknown-helper version checks,
  // unreachable-reloc, and per-reloc consequences).
  const Dataset* against = nullptr;
  // When non-empty, takes precedence over `against`: the object is checked
  // against every dataset at once and the worst consequence across all of
  // their images wins (`depsurf analyze --against=DS,DS`).
  std::vector<const Dataset*> against_all;
};

ObjectAnalysis AnalyzeObject(const BpfObject& object, const AnalyzeOptions& opts = {});

// Folds guard dominance back into the dependency set: a field whose every
// read relocation is dominated by a matching exists-guard becomes
// guarded=true (the extractor alone cannot see dominance, only record
// kinds). Also surfaces the analyzer's implicit-layout entries.
void ApplyGuardFacts(const ObjectAnalysis& analysis, DependencySet& deps);

// Deterministic depsurf.analysis.v1 JSON document.
std::string AnalysisToJson(const ObjectAnalysis& analysis);

}  // namespace depsurf

#endif  // DEPSURF_SRC_ANALYZER_ANALYZER_H_
