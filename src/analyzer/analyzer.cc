#include "src/analyzer/analyzer.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>

#include "src/analyzer/cfg.h"
#include "src/analyzer/dominator.h"
#include "src/analyzer/remediation.h"
#include "src/core/report.h"
#include "src/kernelgen/helpers.h"
#include "src/obs/context.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// ---- Register provenance lattice ---------------------------------------

enum class Prov : uint8_t {
  kUninit,
  kScalar,
  kCtxPtr,     // the program's context argument (r1 at entry)
  kKernelPtr,  // loaded from kernel memory through a relocated access
  kGuard,      // result of a field_exists/type_exists probe
};

struct Val {
  Prov prov = Prov::kUninit;
  size_t guard_reloc = 0;  // meaningful only when prov == kGuard

  bool operator==(const Val&) const = default;

  bool IsPointer() const { return prov == Prov::kCtxPtr || prov == Prov::kKernelPtr; }

  static Val Meet(const Val& a, const Val& b) {
    if (a == b) {
      return a;
    }
    if (a.prov == Prov::kUninit) {
      return b;
    }
    if (b.prov == Prov::kUninit) {
      return a;
    }
    return Val{Prov::kScalar, 0};
  }
};

// Abstract state at a program point: registers r0..r10. Guard facts are no
// longer part of the lattice — they are derived from the dominator tree
// after the fixpoint (a fact holds in exactly the blocks dominated by the
// guard's exists-edge successor).
struct AbsState {
  std::array<Val, 11> regs;

  bool operator==(const AbsState&) const = default;

  static AbsState Entry() {
    AbsState state;
    state.regs[1] = Val{Prov::kCtxPtr, 0};
    state.regs[10] = Val{Prov::kScalar, 0};  // frame pointer: not a kernel dep
    return state;
  }

  void MergeFrom(const AbsState& other) {
    for (size_t i = 0; i < regs.size(); ++i) {
      regs[i] = Val::Meet(regs[i], other.regs[i]);
    }
  }
};

// Resolved identity of one relocation record.
struct RelocInfo {
  std::string struct_name;
  std::string field_name;
  std::string expected_type;
  bool is_guard_kind = false;  // field_exists / type_exists
};

RelocInfo ResolveRelocInfo(const BpfObject& object, const CoreReloc& reloc) {
  RelocInfo info;
  info.is_guard_kind =
      reloc.kind == CoreRelocKind::kFieldExists || reloc.kind == CoreRelocKind::kTypeExists;
  if (reloc.kind == CoreRelocKind::kTypeExists) {
    const BtfType* root = object.btf.Get(object.btf.ResolveAliases(reloc.root_type_id));
    if (root != nullptr) {
      info.struct_name = root->name;
    }
    return info;
  }
  auto chain = ResolveReloc(object.btf, reloc);
  if (chain.ok() && !chain->empty()) {
    const FieldAccess& terminal = chain->back();
    info.struct_name = terminal.struct_name;
    info.field_name = terminal.field_name;
    info.expected_type = terminal.field_type;
  }
  return info;
}

// Transfer function for one instruction. `reloc_at` maps the instruction's
// byte offset to a reloc index (or npos).
constexpr size_t kNoReloc = static_cast<size_t>(-1);

void Transfer(const BpfInsn& insn, size_t reloc_idx, const std::vector<CoreReloc>& relocs,
              AbsState& state) {
  if (insn.opcode == kOpLdImm64) {
    if (reloc_idx != kNoReloc && (relocs[reloc_idx].kind == CoreRelocKind::kFieldExists ||
                                  relocs[reloc_idx].kind == CoreRelocKind::kTypeExists)) {
      state.regs[insn.dst_reg] = Val{Prov::kGuard, reloc_idx};
    } else {
      state.regs[insn.dst_reg] = Val{Prov::kScalar, 0};
    }
    return;
  }
  if (insn.IsLoad()) {
    // A relocated load reads a kernel object; treat the result as a kernel
    // pointer so chained raw derefs keep their provenance. Unrelocated
    // loads yield unknown data.
    state.regs[insn.dst_reg] =
        reloc_idx != kNoReloc ? Val{Prov::kKernelPtr, 0} : Val{Prov::kScalar, 0};
    return;
  }
  if (insn.opcode == kOpMov64Imm) {
    state.regs[insn.dst_reg] = Val{Prov::kScalar, 0};
    return;
  }
  if (insn.IsCall()) {
    // Helpers clobber r0..r5 (r0 = return value).
    for (size_t r = 0; r <= 5; ++r) {
      state.regs[r] = Val{Prov::kScalar, 0};
    }
    return;
  }
  // Stores, jumps, exit: no register effects we track.
}

struct BlockStates {
  std::vector<AbsState> entry;
  std::vector<bool> seen;
};

BlockStates RunDataflow(const Cfg& cfg, const std::vector<BpfInsn>& insns,
                        const std::vector<size_t>& reloc_at,
                        const std::vector<CoreReloc>& relocs) {
  BlockStates states;
  states.entry.resize(cfg.blocks.size());
  states.seen.assign(cfg.blocks.size(), false);
  if (cfg.blocks.empty()) {
    return states;
  }
  states.entry[0] = AbsState::Entry();
  states.seen[0] = true;
  std::vector<size_t> work{0};
  while (!work.empty()) {
    size_t b = work.back();
    work.pop_back();
    const CfgBlock& block = cfg.blocks[b];
    AbsState state = states.entry[b];
    for (size_t i = block.first; i <= block.last; ++i) {
      Transfer(insns[i], reloc_at[i], relocs, state);
    }
    for (size_t pos = 0; pos < block.succs.size(); ++pos) {
      size_t succ = block.succs[pos];
      if (!states.seen[succ]) {
        states.entry[succ] = state;
        states.seen[succ] = true;
        work.push_back(succ);
      } else {
        AbsState merged = states.entry[succ];
        merged.MergeFrom(state);
        if (!(merged == states.entry[succ])) {
          states.entry[succ] = merged;
          work.push_back(succ);
        }
      }
    }
  }
  return states;
}

const char* ProvName(Prov prov) {
  switch (prov) {
    case Prov::kCtxPtr:
      return "ctx";
    case Prov::kKernelPtr:
      return "kernel";
    default:
      return "scalar";
  }
}

int FindingRank(FindingKind kind) { return static_cast<int>(kind); }

}  // namespace

const char* FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kRawOffsetDeref:
      return "raw-offset-deref";
    case FindingKind::kUnguardedReloc:
      return "unguarded-reloc";
    case FindingKind::kUnknownHelper:
      return "unknown-helper";
    case FindingKind::kUnreachableReloc:
      return "unreachable-reloc";
  }
  return "?";
}

size_t ObjectAnalysis::CountKind(FindingKind kind) const {
  size_t n = 0;
  for (const Finding& finding : findings) {
    if (finding.kind == kind) {
      ++n;
    }
  }
  return n;
}

ObjectAnalysis AnalyzeObject(const BpfObject& object, const AnalyzeOptions& opts) {
  obs::ScopedSpan span("analyze.object");
  span.AddAttr("object", object.name);
  ObjectAnalysis analysis;
  analysis.object_name = object.name;
  // The datasets to check against: `against_all` wins, else `against`.
  std::vector<const Dataset*> views;
  for (const Dataset* ds : opts.against_all) {
    if (ds != nullptr) {
      views.push_back(ds);
    }
  }
  if (views.empty() && opts.against != nullptr) {
    views.push_back(opts.against);
  }
  analysis.against_dataset = !views.empty();
  analysis.against_images = 0;
  for (const Dataset* ds : views) {
    analysis.against_images += ds->num_images();
  }

  // Resolve every relocation once.
  std::vector<RelocInfo> infos;
  infos.reserve(object.relocs.size());
  for (const CoreReloc& reloc : object.relocs) {
    infos.push_back(ResolveRelocInfo(object, reloc));
  }

  // Guards that statically resolve false: the guarded field is absent on
  // every dataset image, so the loader patches the probe to 0 everywhere
  // and the exists path can never run.
  std::set<size_t> static_false;
  if (analysis.against_images > 0) {
    for (size_t r = 0; r < object.relocs.size(); ++r) {
      if (object.relocs[r].kind != CoreRelocKind::kFieldExists ||
          infos[r].field_name.empty()) {
        continue;
      }
      bool absent_everywhere = true;
      for (const Dataset* ds : views) {
        auto cells = ds->CheckField(infos[r].struct_name, infos[r].field_name,
                                    infos[r].expected_type, /*guarded=*/false);
        for (const auto& cell : cells) {
          if (cell.count(MismatchKind::kAbsent) == 0) {
            absent_everywhere = false;
            break;
          }
        }
        if (!absent_everywhere) {
          break;
        }
      }
      if (absent_everywhere) {
        static_false.insert(r);
      }
    }
  }

  // Verdict skeletons.
  for (size_t r = 0; r < object.relocs.size(); ++r) {
    const CoreReloc& reloc = object.relocs[r];
    RelocVerdict verdict;
    verdict.index = r;
    verdict.kind = reloc.kind;
    verdict.struct_name = infos[r].struct_name;
    verdict.field_name = infos[r].field_name;
    verdict.expected_type = infos[r].expected_type;
    verdict.bound = reloc.prog_index != kRelocUnbound;
    if (verdict.bound) {
      verdict.program = object.programs[reloc.prog_index].name;
      verdict.insn_off = reloc.insn_off;
    }
    // Guard-kind records need no guarding themselves.
    verdict.unguarded = !infos[r].is_guard_kind;
    analysis.relocs.push_back(std::move(verdict));
  }

  // ---- Per-program passes.
  for (size_t p = 0; p < object.programs.size(); ++p) {
    const BpfProgram& program = object.programs[p];
    obs::ScopedSpan prog_span("analyze.program");
    prog_span.AddAttr("program", program.name);

    ProgramAnalysis pa;
    pa.name = program.name;
    pa.section = HookSectionName(program.hook);
    pa.insn_count = program.insns.size();

    Cfg cfg = BuildCfg(program.insns);
    pa.block_count = cfg.blocks.size();

    // Byte offset -> reloc index for this program.
    std::map<uint32_t, size_t> by_offset;
    for (size_t r = 0; r < object.relocs.size(); ++r) {
      if (object.relocs[r].prog_index == p) {
        by_offset[object.relocs[r].insn_off] = r;
      }
    }
    std::vector<size_t> reloc_at(program.insns.size(), kNoReloc);
    std::map<uint32_t, size_t> insn_at_off;
    for (size_t i = 0; i < program.insns.size(); ++i) {
      insn_at_off[cfg.insn_byte_off[i]] = i;
      auto it = by_offset.find(cfg.insn_byte_off[i]);
      if (it != by_offset.end()) {
        reloc_at[i] = it->second;
      }
    }

    std::vector<bool> reachable = ReachableInsns(cfg, program.insns);
    // Reachability verdict for every reloc bound into this program; a
    // binding past the decoded prefix (salvaged stream) is unreachable.
    for (const auto& [off, r] : by_offset) {
      auto it = insn_at_off.find(off);
      analysis.relocs[r].reachable = it != insn_at_off.end() && reachable[it->second];
    }
    pa.reachable_insns =
        static_cast<size_t>(std::count(reachable.begin(), reachable.end(), true));

    BlockStates states = RunDataflow(cfg, program.insns, reloc_at, object.relocs);

    // Block-end states: which register each block's terminator tests.
    std::vector<AbsState> end_states(cfg.blocks.size());
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
      if (!states.seen[b]) {
        continue;
      }
      AbsState s = states.entry[b];
      for (size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last; ++i) {
        Transfer(program.insns[i], reloc_at[i], object.relocs, s);
      }
      end_states[b] = s;
    }

    // Guard facts via dominance: a conditional testing a guard register
    // against 0 proves the field exists on its exists-edge successor E, and
    // the fact holds in exactly the blocks E dominates — provided E is
    // reached by no other edge (a side entry would bypass the check) and is
    // not also the branch's other successor (both arms landing on one block
    // proves nothing).
    DominatorTree dom = BuildDominatorTree(cfg);
    std::vector<std::set<size_t>> facts(cfg.blocks.size());
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
      if (!states.seen[b] || cfg.blocks[b].succs.size() != 2) {
        continue;
      }
      const BpfInsn& term = program.insns[cfg.blocks[b].last];
      if (!term.IsCondJump() || term.imm != 0) {
        continue;
      }
      const Val& v = end_states[b].regs[term.dst_reg];
      if (v.prov != Prov::kGuard) {
        continue;
      }
      // The guard register is 1 when the field exists, 0 when patched
      // absent. JEQ r,0: fall-through = exists path; JNE r,0: taken edge.
      size_t exists_pos = term.opcode == kOpJeqImm ? 1 : 0;
      size_t exists_succ = cfg.blocks[b].succs[exists_pos];
      size_t other_succ = cfg.blocks[b].succs[1 - exists_pos];
      if (exists_succ == other_succ || dom.pred_edges[exists_succ] != 1) {
        continue;
      }
      for (size_t d = 0; d < cfg.blocks.size(); ++d) {
        if (dom.Dominates(exists_succ, d)) {
          facts[d].insert(v.guard_reloc);
        }
      }
    }

    // Guard-pruned reachability: drop edges into statically-false guard
    // regions, then see which relocated instructions went dark.
    std::vector<bool> pruned = reachable;
    if (!static_false.empty()) {
      pruned = ReachableInsns(cfg, program.insns, [&](size_t b, size_t pos) {
        const CfgBlock& block = cfg.blocks[b];
        if (block.succs.size() != 2 || !states.seen[b]) {
          return false;
        }
        const BpfInsn& term = program.insns[block.last];
        if (!term.IsCondJump() || term.imm != 0) {
          return false;
        }
        const Val& v = end_states[b].regs[term.dst_reg];
        if (v.prov != Prov::kGuard || static_false.count(v.guard_reloc) == 0) {
          return false;
        }
        bool exists_edge = (term.opcode == kOpJeqImm) ? (pos == 1) : (pos == 0);
        return exists_edge;
      });
    }

    // Final pass: findings and verdict refinement, block by block.
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
      if (!states.seen[b]) {
        continue;
      }
      AbsState state = states.entry[b];
      for (size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last; ++i) {
        const BpfInsn& insn = program.insns[i];
        uint32_t byte_off = cfg.insn_byte_off[i];
        size_t reloc_idx = reloc_at[i];

        if (insn.IsLoad() && reloc_idx == kNoReloc &&
            state.regs[insn.src_reg].IsPointer()) {
          Finding finding;
          finding.kind = FindingKind::kRawOffsetDeref;
          finding.program = program.name;
          finding.insn_off = byte_off;
          finding.detail = StrFormat(
              "%s: load from %s pointer at hardcoded offset %+d with no CO-RE relocation",
              insn.ToString().c_str(), ProvName(state.regs[insn.src_reg].prov), insn.offset);
          analysis.findings.push_back(std::move(finding));
        }

        if (insn.IsCall()) {
          ++pa.helper_calls;
          uint32_t id = static_cast<uint32_t>(insn.imm);
          const HelperSpec* spec = FindHelper(id);
          if (spec == nullptr) {
            Finding finding;
            finding.kind = FindingKind::kUnknownHelper;
            finding.program = program.name;
            finding.insn_off = byte_off;
            finding.detail = StrFormat("call %u: helper id not in the catalog", id);
            analysis.findings.push_back(std::move(finding));
          } else if (!views.empty()) {
            size_t missing = 0;
            for (const Dataset* ds : views) {
              for (const ImageRecord& image : ds->images()) {
                KernelVersion v{image.meta.version_major, image.meta.version_minor};
                if (!HelperAvailable(id, v)) {
                  ++missing;
                }
              }
            }
            if (missing > 0) {
              Finding finding;
              finding.kind = FindingKind::kUnknownHelper;
              finding.program = program.name;
              finding.insn_off = byte_off;
              finding.detail = StrFormat(
                  "call %u (%s): introduced in v%d.%d, unavailable on %zu/%zu images", id,
                  spec->name, spec->introduced.major, spec->introduced.minor, missing,
                  analysis.against_images);
              analysis.findings.push_back(std::move(finding));
            }
          }
        }

        if (reloc_idx != kNoReloc && !infos[reloc_idx].is_guard_kind) {
          RelocVerdict& verdict = analysis.relocs[reloc_idx];
          // Dominated by a matching exists-guard? Facts are per-block,
          // derived from the dominator tree above.
          bool guarded = false;
          for (size_t f : facts[b]) {
            if (infos[f].struct_name == infos[reloc_idx].struct_name &&
                infos[f].field_name == infos[reloc_idx].field_name) {
              guarded = true;
              break;
            }
          }
          verdict.unguarded = !guarded;
          if (!guarded && reachable[i]) {
            Finding finding;
            finding.kind = FindingKind::kUnguardedReloc;
            finding.program = program.name;
            finding.insn_off = byte_off;
            finding.reloc_index = static_cast<int32_t>(reloc_idx);
            finding.detail = StrFormat(
                "field reloc %s::%s not dominated by a field_exists check",
                infos[reloc_idx].struct_name.c_str(), infos[reloc_idx].field_name.c_str());
            analysis.findings.push_back(std::move(finding));
          }
          if (reachable[i] && !pruned[i]) {
            Finding finding;
            finding.kind = FindingKind::kUnreachableReloc;
            finding.program = program.name;
            finding.insn_off = byte_off;
            finding.reloc_index = static_cast<int32_t>(reloc_idx);
            finding.detail = StrFormat(
                "field reloc %s::%s only reachable through a guard that is statically "
                "false against all %zu images",
                infos[reloc_idx].struct_name.c_str(), infos[reloc_idx].field_name.c_str(),
                analysis.against_images);
            analysis.findings.push_back(std::move(finding));
          }
        }

        Transfer(insn, reloc_idx, object.relocs, state);
      }
    }

    prog_span.AddAttr("insns", static_cast<uint64_t>(pa.insn_count));
    prog_span.AddAttr("blocks", static_cast<uint64_t>(pa.block_count));
    analysis.programs.push_back(std::move(pa));
  }

  // ---- Per-reloc consequences against the datasets (worst across all),
  // guard-refined.
  if (analysis.against_images > 0) {
    for (RelocVerdict& verdict : analysis.relocs) {
      if (verdict.kind == CoreRelocKind::kFieldExists ||
          verdict.kind == CoreRelocKind::kTypeExists) {
        verdict.consequence = ConsequenceName(Consequence::kNone);
        continue;
      }
      if (verdict.field_name.empty()) {
        continue;
      }
      bool absent = false;
      bool changed = false;
      for (const Dataset* ds : views) {
        auto cells = ds->CheckField(verdict.struct_name, verdict.field_name,
                                    verdict.expected_type, /*guarded=*/false);
        for (const auto& cell : cells) {
          absent = absent || cell.count(MismatchKind::kAbsent) != 0;
          changed = changed || cell.count(MismatchKind::kChanged) != 0;
        }
      }
      Consequence consequence = Consequence::kNone;
      if (absent) {
        consequence = ConsequenceOf(DepKind::kField, MismatchKind::kAbsent,
                                    /*guarded=*/!verdict.unguarded);
      } else if (changed) {
        consequence = ConsequenceOf(DepKind::kField, MismatchKind::kChanged);
      }
      verdict.consequence = ConsequenceName(consequence);
    }
  }

  // Deterministic ordering for output and goldens.
  std::sort(analysis.findings.begin(), analysis.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.program != b.program) {
                return a.program < b.program;
              }
              if (a.insn_off != b.insn_off) {
                return a.insn_off < b.insn_off;
              }
              if (a.kind != b.kind) {
                return FindingRank(a.kind) < FindingRank(b.kind);
              }
              return a.detail < b.detail;
            });

  // Attach remediation text to every finding (the planner reads the sorted
  // findings list and never re-runs the analyzer).
  RemediationPlan plan = PlanRemediation(object, analysis, opts);
  for (size_t i = 0; i < analysis.findings.size(); ++i) {
    analysis.findings[i].remediation = plan.items[i].Text();
  }

  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Incr("analyzer.objects");
  metrics.Incr("analyzer.programs", analysis.programs.size());
  metrics.Incr("analyzer.findings", analysis.findings.size());
  size_t guarded_relocs = 0;
  for (const RelocVerdict& verdict : analysis.relocs) {
    if (!verdict.unguarded && verdict.kind == CoreRelocKind::kFieldByteOffset) {
      ++guarded_relocs;
    }
  }
  metrics.Incr("analyzer.guarded_relocs", guarded_relocs);
  span.AddAttr("programs", static_cast<uint64_t>(analysis.programs.size()));
  span.AddAttr("findings", static_cast<uint64_t>(analysis.findings.size()));
  return analysis;
}

void ApplyGuardFacts(const ObjectAnalysis& analysis, DependencySet& deps) {
  // A field is guard-dominated when every read reloc of it carries
  // unguarded=false (a lone exists-record already sets guarded at
  // extraction; dominance upgrades direct reads the extractor had to
  // assume unguarded).
  std::map<std::pair<std::string, std::string>, std::pair<size_t, size_t>> reads;
  for (const RelocVerdict& verdict : analysis.relocs) {
    if (verdict.kind != CoreRelocKind::kFieldByteOffset &&
        verdict.kind != CoreRelocKind::kFieldSize) {
      continue;
    }
    if (verdict.field_name.empty()) {
      continue;
    }
    auto& counts = reads[{verdict.struct_name, verdict.field_name}];
    ++counts.first;
    if (!verdict.unguarded) {
      ++counts.second;
    }
  }
  for (const auto& [key, counts] : reads) {
    if (counts.first == 0 || counts.first != counts.second) {
      continue;
    }
    auto struct_it = deps.fields.find(key.first);
    if (struct_it == deps.fields.end()) {
      continue;
    }
    auto field_it = struct_it->second.find(key.second);
    if (field_it != struct_it->second.end()) {
      field_it->second.guarded = true;
    }
  }
}

}  // namespace depsurf
