// Backward register-liveness analysis over a per-program CFG.
//
// The remediation planner needs a register that is dead at the point where
// it wants to insert a `field_exists` guard: the synthesized pair
// (`rX = field_exists(...)`; `if rX == 0 goto skip`) clobbers rX, so rX
// must not hold a live value there. This pass computes, for every
// instruction, the set of registers whose current value may still be read
// before being overwritten — the classic backward may-analysis, with the
// BPF calling convention baked in (calls read r1-r5 and clobber r0-r5,
// exit reads r0, r10 is the read-only frame pointer).
#ifndef DEPSURF_SRC_ANALYZER_LIVENESS_H_
#define DEPSURF_SRC_ANALYZER_LIVENESS_H_

#include <cstdint>
#include <vector>

#include "src/analyzer/cfg.h"
#include "src/bpf/bpf_insn.h"

namespace depsurf {

// Bitmask of live registers (bit r set <=> register r live), r0..r10.
using LiveMask = uint16_t;

inline constexpr LiveMask kAllRegsLive = 0x07ff;  // r0..r10

// live_in[i] for instruction i: registers that may be read on some path
// starting at i before being redefined. Instructions past the decoded
// prefix of a salvaged program, and programs with dangling jump edges,
// are treated conservatively (everything live).
std::vector<LiveMask> ComputeLiveness(const Cfg& cfg,
                                      const std::vector<BpfInsn>& insns);

// Lowest-numbered dead general-purpose register (r0..r9) in `live`, or -1
// when every candidate is live. r10 is never offered: the frame pointer
// is read-only in the BPF ISA.
int PickScratchRegister(LiveMask live);

}  // namespace depsurf

#endif  // DEPSURF_SRC_ANALYZER_LIVENESS_H_
