// Remediation planning: turning analyzer findings into verified patches.
//
// For every finding the planner attaches a machine-readable record: either
// a concrete guard insertion (where, which register, which relocation it
// protects) or "not fixable" with the reason. Only unguarded-reloc findings
// are patchable — the fix is the builder's own `field_exists` guard shape,
// placed so the inserted check dominates the access (the dominator-tree
// property the analyzer itself verifies on re-analysis). Scratch registers
// come from the liveness pass: the guard clobbers one register, so it must
// be dead at the insertion point.
//
// The pipeline is self-verifying: apply the plan's insertions with
// InsertFieldExistsGuards, re-run AnalyzeObject on the result, and
// VerifyRemediation checks that every targeted finding is gone and nothing
// new appeared.
#ifndef DEPSURF_SRC_ANALYZER_REMEDIATION_H_
#define DEPSURF_SRC_ANALYZER_REMEDIATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analyzer/analyzer.h"
#include "src/bpf/bpf_object.h"
#include "src/bpf/bpf_rewriter.h"

namespace depsurf {

inline constexpr char kRemediationSchema[] = "depsurf.remediation.v1";

// One per finding (parallel to ObjectAnalysis::findings).
struct Remediation {
  bool fixable = false;
  // When not fixable: why ("no dead register at the insertion point", ...).
  std::string reason;
  // When fixable: the guard insertion.
  uint32_t prog_index = 0;
  uint32_t insn_off = 0;  // byte offset of the access the guard protects
  int scratch_reg = -1;
  int32_t reloc_index = -1;  // relocation the guard covers
  std::string struct_name;
  std::string field_name;
  std::string guard;  // rendered guard shape, e.g. "r0 = field_exists(...)..."

  // One-line remediation text for reports and depsurf.analysis.v1
  // ("insert field_exists(...) guard before insn_off 16 (scratch r0)" or
  // "not fixable: <reason>").
  std::string Text() const;
};

struct RemediationPlan {
  std::vector<Remediation> items;  // items[i] remediates findings[i]

  size_t FixableCount() const;
  // The guard insertions for every fixable item, ready for
  // InsertFieldExistsGuards.
  std::vector<GuardInsertion> Insertions() const;
};

// Plans remediations for `analysis` (produced by AnalyzeObject over
// `object` with the same options). Never re-runs the analyzer.
RemediationPlan PlanRemediation(const BpfObject& object,
                                const ObjectAnalysis& analysis,
                                const AnalyzeOptions& opts = {});

// Outcome of re-analyzing the patched object.
struct RemediationVerification {
  size_t findings_before = 0;
  size_t targeted = 0;            // findings the plan claimed to fix
  size_t findings_after = 0;
  size_t targeted_remaining = 0;  // targeted findings still present after
  size_t new_findings = 0;        // findings the rewrite introduced
  bool ok = false;                // targeted_remaining == 0 && new_findings == 0
};

// Compares findings before/after the rewrite. Findings are matched by
// (kind, program, detail) — detail strings are stable across the slot
// shifts the rewrite introduces, byte offsets are not.
RemediationVerification VerifyRemediation(const ObjectAnalysis& before,
                                          const RemediationPlan& plan,
                                          const ObjectAnalysis& after);

// Deterministic depsurf.remediation.v1 JSON document. `verification` may be
// null (planning-only document).
std::string RemediationToJson(const ObjectAnalysis& analysis,
                              const RemediationPlan& plan,
                              const RemediationVerification* verification);

}  // namespace depsurf

#endif  // DEPSURF_SRC_ANALYZER_REMEDIATION_H_
