#include "src/analyzer/cfg.h"

#include <algorithm>
#include <map>
#include <optional>

namespace depsurf {

namespace {

// Slot index of each instruction (LD_IMM64 occupies two slots), plus the
// reverse map from slot to instruction index.
struct SlotMap {
  std::vector<size_t> insn_slot;        // insn index -> first slot
  std::map<size_t, size_t> slot_insn;   // first slot -> insn index
  size_t total_slots = 0;
};

SlotMap BuildSlotMap(const std::vector<BpfInsn>& insns) {
  SlotMap map;
  size_t slot = 0;
  for (size_t i = 0; i < insns.size(); ++i) {
    map.insn_slot.push_back(slot);
    map.slot_insn[slot] = i;
    slot += insns[i].Slots();
  }
  map.total_slots = slot;
  return map;
}

}  // namespace

Cfg BuildCfg(const std::vector<BpfInsn>& insns) {
  Cfg cfg;
  if (insns.empty()) {
    return cfg;
  }
  SlotMap slots = BuildSlotMap(insns);
  cfg.insn_byte_off.reserve(insns.size());
  for (size_t i = 0; i < insns.size(); ++i) {
    cfg.insn_byte_off.push_back(static_cast<uint32_t>(slots.insn_slot[i] * 8));
  }

  // Jump target (insn index) of a branch at insn i, if it lands on an
  // instruction boundary inside the stream.
  auto target_of = [&](size_t i) -> std::optional<size_t> {
    size_t next_slot = slots.insn_slot[i] + insns[i].Slots();
    int64_t target = static_cast<int64_t>(next_slot) + insns[i].offset;
    if (target < 0 || target >= static_cast<int64_t>(slots.total_slots)) {
      return std::nullopt;
    }
    auto it = slots.slot_insn.find(static_cast<size_t>(target));
    if (it == slots.slot_insn.end()) {
      return std::nullopt;
    }
    return it->second;
  };

  // Leaders: entry, every jump target, every instruction after a
  // terminator (jump or exit).
  std::vector<bool> leader(insns.size(), false);
  leader[0] = true;
  for (size_t i = 0; i < insns.size(); ++i) {
    const BpfInsn& insn = insns[i];
    if (insn.IsJump()) {
      if (auto t = target_of(i); t.has_value()) {
        leader[*t] = true;
      } else {
        ++cfg.dangling_edges;
      }
    }
    if ((insn.IsJump() || insn.IsExit()) && i + 1 < insns.size()) {
      leader[i + 1] = true;
    }
  }

  cfg.insn_block.assign(insns.size(), 0);
  for (size_t i = 0; i < insns.size(); ++i) {
    if (leader[i]) {
      CfgBlock block;
      block.first = i;
      cfg.blocks.push_back(block);
    }
    cfg.insn_block[i] = cfg.blocks.size() - 1;
    cfg.blocks.back().last = i;
  }

  for (CfgBlock& block : cfg.blocks) {
    const BpfInsn& term = insns[block.last];
    if (term.IsExit()) {
      continue;
    }
    if (term.IsJump()) {
      if (auto t = target_of(block.last); t.has_value()) {
        block.succs.push_back(cfg.insn_block[*t]);
      }
      if (term.IsCondJump() && block.last + 1 < insns.size()) {
        block.succs.push_back(cfg.insn_block[block.last + 1]);
      }
    } else if (block.last + 1 < insns.size()) {
      block.succs.push_back(cfg.insn_block[block.last + 1]);
    }
  }
  return cfg;
}

std::vector<bool> ReachableInsns(
    const Cfg& cfg, const std::vector<BpfInsn>& insns,
    const std::function<bool(size_t block, size_t succ_pos)>& dead_edge) {
  std::vector<bool> insn_reachable(insns.size(), false);
  if (cfg.blocks.empty()) {
    return insn_reachable;
  }
  std::vector<bool> block_seen(cfg.blocks.size(), false);
  std::vector<size_t> work{0};
  block_seen[0] = true;
  while (!work.empty()) {
    size_t b = work.back();
    work.pop_back();
    const CfgBlock& block = cfg.blocks[b];
    for (size_t i = block.first; i <= block.last; ++i) {
      insn_reachable[i] = true;
    }
    for (size_t pos = 0; pos < block.succs.size(); ++pos) {
      if (dead_edge && dead_edge(b, pos)) {
        continue;
      }
      size_t succ = block.succs[pos];
      if (!block_seen[succ]) {
        block_seen[succ] = true;
        work.push_back(succ);
      }
    }
  }
  return insn_reachable;
}

}  // namespace depsurf
