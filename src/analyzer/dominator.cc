#include "src/analyzer/dominator.h"

namespace depsurf {

namespace {

// Iterative depth-first postorder from the entry block (blocks can form
// cycles: the ISA allows negative jump deltas).
std::vector<size_t> Postorder(const Cfg& cfg) {
  std::vector<size_t> order;
  if (cfg.blocks.empty()) {
    return order;
  }
  std::vector<uint8_t> state(cfg.blocks.size(), 0);  // 0 new, 1 open, 2 done
  std::vector<std::pair<size_t, size_t>> stack{{0, 0}};  // (block, next succ)
  state[0] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const std::vector<size_t>& succs = cfg.blocks[b].succs;
    if (next < succs.size()) {
      size_t s = succs[next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.push_back({s, 0});
      }
    } else {
      state[b] = 2;
      order.push_back(b);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

bool DominatorTree::Dominates(size_t a, size_t b) const {
  if (a >= idom.size() || b >= idom.size() || rpo_num[a] == kUnreachable ||
      rpo_num[b] == kUnreachable) {
    return false;
  }
  // Walk b up the tree; dominators have strictly smaller RPO numbers, so
  // the walk can stop as soon as it passes a.
  while (rpo_num[b] > rpo_num[a]) {
    b = idom[b];
  }
  return b == a;
}

DominatorTree BuildDominatorTree(const Cfg& cfg) {
  DominatorTree tree;
  const size_t n = cfg.blocks.size();
  tree.idom.assign(n, DominatorTree::kUnreachable);
  tree.rpo_num.assign(n, DominatorTree::kUnreachable);
  tree.pred_edges.assign(n, 0);
  if (n == 0) {
    return tree;
  }

  std::vector<size_t> postorder = Postorder(cfg);
  std::vector<size_t> rpo(postorder.rbegin(), postorder.rend());
  for (size_t i = 0; i < rpo.size(); ++i) {
    tree.rpo_num[rpo[i]] = i;
  }

  // Predecessors, reachable blocks only (edges from dead code must not
  // perturb dominance — a jump out of an unreachable region is no path).
  std::vector<std::vector<size_t>> preds(n);
  for (size_t b = 0; b < n; ++b) {
    if (tree.rpo_num[b] == DominatorTree::kUnreachable) {
      continue;
    }
    for (size_t s : cfg.blocks[b].succs) {
      preds[s].push_back(b);
      ++tree.pred_edges[s];
    }
  }

  // Cooper-Harvey-Kennedy: iterate to fixpoint in reverse postorder.
  tree.idom[0] = 0;
  auto intersect = [&](size_t f1, size_t f2) {
    while (f1 != f2) {
      while (tree.rpo_num[f1] > tree.rpo_num[f2]) {
        f1 = tree.idom[f1];
      }
      while (tree.rpo_num[f2] > tree.rpo_num[f1]) {
        f2 = tree.idom[f2];
      }
    }
    return f1;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b : rpo) {
      if (b == 0) {
        continue;
      }
      size_t new_idom = DominatorTree::kUnreachable;
      for (size_t p : preds[b]) {
        if (tree.idom[p] == DominatorTree::kUnreachable) {
          continue;  // not processed yet
        }
        new_idom = new_idom == DominatorTree::kUnreachable ? p : intersect(p, new_idom);
      }
      if (new_idom != DominatorTree::kUnreachable && tree.idom[b] != new_idom) {
        tree.idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return tree;
}

}  // namespace depsurf
