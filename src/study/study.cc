#include "src/study/study.h"

#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <thread>

namespace depsurf {

StudyOptions StudyOptions::FromArgs(int argc, char** argv, double default_scale) {
  StudyOptions options;
  options.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (strncmp(arg, "--scale=", 8) == 0) {
      options.scale = atof(arg + 8);
    } else if (strncmp(arg, "--seed=", 7) == 0) {
      options.seed = strtoull(arg + 7, nullptr, 10);
    }
  }
  if (options.scale <= 0.0 || options.scale > 4.0) {
    options.scale = default_scale;
  }
  return options;
}

Study::Study(const StudyOptions& options)
    : options_(options), programs_(BuildProgramCorpus()) {
  ScriptedCatalog catalog = BuildCuratedCatalog();
  ScriptedCatalog additions = programs_.additions;
  catalog.Merge(std::move(additions));
  model_ = std::make_unique<KernelModel>(options.seed, options.scale, std::move(catalog));
}

Result<std::vector<uint8_t>> Study::BuildImage(const BuildSpec& build) const {
  DEPSURF_ASSIGN_OR_RETURN(kernel, model_->Configure(build));
  return BuildKernelImage(CompileKernel(options_.seed, std::move(kernel)));
}

Result<DependencySurface> Study::ExtractSurface(const BuildSpec& build) const {
  DEPSURF_ASSIGN_OR_RETURN(bytes, BuildImage(build));
  return DependencySurface::Extract(std::move(bytes));
}

Result<Dataset> Study::BuildDataset(
    const std::vector<BuildSpec>& corpus,
    const std::function<void(const std::string&)>& progress) const {
  // Extraction is pure, so images run concurrently in a bounded window;
  // distillation happens serially in corpus order (Dataset interning is
  // order-sensitive and must stay deterministic).
  size_t window = std::max<unsigned>(1, std::thread::hardware_concurrency());
  window = std::min(window, size_t{8});  // surfaces are large; bound memory
  Dataset dataset;
  std::deque<std::future<Result<DependencySurface>>> in_flight;
  size_t next_launch = 0;
  size_t next_consume = 0;
  while (next_consume < corpus.size()) {
    while (next_launch < corpus.size() && in_flight.size() < window) {
      const BuildSpec& build = corpus[next_launch++];
      in_flight.push_back(
          std::async(std::launch::async, [this, build] { return ExtractSurface(build); }));
    }
    Result<DependencySurface> surface = in_flight.front().get();
    in_flight.pop_front();
    if (!surface.ok()) {
      for (auto& future : in_flight) {
        future.wait();  // drain before propagating the error
      }
      return surface.TakeError();
    }
    if (progress) {
      progress(corpus[next_consume].Label());
    }
    dataset.AddImage(corpus[next_consume].Label(), *surface);
    ++next_consume;
  }
  return dataset;
}

Result<ProgramReport> Study::Analyze(const Dataset& dataset, const std::string& program) const {
  for (const BpfObject& object : programs_.objects) {
    if (object.name == program) {
      return Analyze(dataset, object);
    }
  }
  return Error(ErrorCode::kNotFound, "no program named " + program);
}

Result<ProgramReport> Study::Analyze(const Dataset& dataset, const BpfObject& object) {
  // Round-trip through object bytes: the analyzer sees only what a real
  // compiled .o would carry.
  DEPSURF_ASSIGN_OR_RETURN(bytes, WriteBpfObject(object));
  DEPSURF_ASSIGN_OR_RETURN(parsed, ParseBpfObject(std::move(bytes)));
  DEPSURF_ASSIGN_OR_RETURN(deps, ExtractDependencySet(parsed));
  return AnalyzeProgram(dataset, deps);
}

}  // namespace depsurf
