#include "src/study/study.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <deque>
#include <fstream>
#include <future>
#include <thread>
#include <utility>

#include "src/obs/diagnostics.h"
#include "src/obs/metrics.h"
#include "src/obs/report_merge.h"
#include "src/obs/run_report.h"
#include "src/obs/span.h"

namespace depsurf {

StudyOptions StudyOptions::FromArgs(int argc, char** argv, double default_scale) {
  StudyOptions options;
  options.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (strncmp(arg, "--scale=", 8) == 0) {
      options.scale = atof(arg + 8);
    } else if (strncmp(arg, "--seed=", 7) == 0) {
      options.seed = strtoull(arg + 7, nullptr, 10);
    }
  }
  if (options.scale <= 0.0 || options.scale > 4.0) {
    options.scale = default_scale;
  }
  return options;
}

Study::Study(const StudyOptions& options)
    : options_(options), programs_(BuildProgramCorpus()) {
  ScriptedCatalog catalog = BuildCuratedCatalog();
  ScriptedCatalog additions = programs_.additions;
  catalog.Merge(std::move(additions));
  model_ = std::make_unique<KernelModel>(options.seed, options.scale, std::move(catalog));
}

Result<std::vector<uint8_t>> Study::BuildImage(const BuildSpec& build) const {
  DEPSURF_ASSIGN_OR_RETURN(kernel, model_->Configure(build));
  DEPSURF_ASSIGN_OR_RETURN(bytes, BuildKernelImage(CompileKernel(options_.seed, std::move(kernel))));
  if (image_mutator_) {
    image_mutator_(build, bytes);
  }
  return bytes;
}

Result<DependencySurface> Study::ExtractSurface(const BuildSpec& build) const {
  DEPSURF_ASSIGN_OR_RETURN(bytes, BuildImage(build));
  return DependencySurface::Extract(std::move(bytes));
}

Result<Dataset> Study::BuildDataset(
    const std::vector<BuildSpec>& corpus,
    const std::function<void(const ImageProgress&)>& progress,
    const BuildPolicy& policy,
    std::vector<QuarantinedImage>* quarantined) const {
  obs::ScopedSpan span("study.build_dataset");
  span.AddAttr("images", static_cast<uint64_t>(corpus.size()));
  const auto wall_start = std::chrono::steady_clock::now();
  const std::clock_t cpu_start = std::clock();

  // Extraction is pure, so images run concurrently in a bounded window;
  // distillation happens serially in corpus order (Dataset interning is
  // order-sensitive and must stay deterministic).
  size_t window = std::max<unsigned>(1, std::thread::hardware_concurrency());
  window = std::min(window, size_t{8});  // surfaces are large; bound memory
  Dataset dataset;
  using TimedSurface = std::pair<Result<DependencySurface>, double>;
  std::deque<std::future<TimedSurface>> in_flight;
  size_t next_launch = 0;
  size_t next_consume = 0;
  while (next_consume < corpus.size()) {
    while (next_launch < corpus.size() && in_flight.size() < window) {
      const BuildSpec& build = corpus[next_launch++];
      in_flight.push_back(std::async(std::launch::async, [this, build] {
        const auto start = std::chrono::steady_clock::now();
        Result<DependencySurface> surface = ExtractSurface(build);
        const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
        return TimedSurface{std::move(surface), elapsed.count()};
      }));
    }
    auto [surface, seconds] = in_flight.front().get();
    in_flight.pop_front();
    const std::string label = corpus[next_consume].Label();
    if (!surface.ok()) {
      if (!policy.keep_going) {
        for (auto& future : in_flight) {
          future.wait();  // drain before propagating the error
        }
        return surface.TakeError().Wrap("image " + label);
      }
      // Quarantine: the image stays out of the dataset, the build goes on.
      obs::MetricsRegistry::Global().Incr("study.images_quarantined");
      if (quarantined != nullptr) {
        quarantined->push_back(QuarantinedImage{label, surface.TakeError()});
      }
      ++next_consume;
      continue;
    }
    obs::MetricsRegistry::Global().GetHistogram("study.image_extract_ms")
        ->Record(static_cast<uint64_t>(seconds * 1e3));
    if (progress) {
      ImageProgress report;
      report.label = label;
      report.seconds = seconds;
      report.index = next_consume;
      report.total = corpus.size();
      progress(report);
    }
    dataset.AddImage(label, *surface);
    ++next_consume;
  }

  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
  const double cpu_seconds =
      static_cast<double>(std::clock() - cpu_start) / static_cast<double>(CLOCKS_PER_SEC);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.Incr("study.datasets_built");
  metrics.Set("study.build_dataset.wall_ms", static_cast<uint64_t>(wall.count() * 1e3));
  metrics.Set("study.build_dataset.cpu_ms", static_cast<uint64_t>(cpu_seconds * 1e3));
  span.AddAttr("window", static_cast<uint64_t>(window));
  return dataset;
}

Result<Dataset> Study::BuildDatasetWithReports(
    const std::vector<BuildSpec>& corpus, const std::string& report_dir,
    DatasetReportFiles* files,
    const std::function<void(const ImageProgress&)>& progress,
    const BuildPolicy& policy,
    std::vector<QuarantinedImage>* quarantined) const {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::SpanCollector& spans = obs::SpanCollector::Global();
  obs::DiagnosticsCollector& diags = obs::DiagnosticsCollector::Global();
  const auto wall_start = std::chrono::steady_clock::now();

  Dataset dataset;
  std::vector<obs::LabeledReport> reports;
  for (size_t i = 0; i < corpus.size(); ++i) {
    const BuildSpec& build = corpus[i];
    // Per-image isolation: everything the global registry collects between
    // here and serialization belongs to this image alone.
    spans.Clear();
    metrics.Reset();
    diags.Clear();
    const auto start = std::chrono::steady_clock::now();
    auto surface = ExtractSurface(build);
    if (!surface.ok()) {
      if (!policy.keep_going) {
        return surface.TakeError().Wrap("image " + build.Label());
      }
      // Quarantined images still leave a trace in the report set: one
      // fatal ledger entry explaining why extraction died, so the
      // aggregate lists the image alongside the survivors.
      Error error = surface.TakeError();
      DiagnosticEntry fatal;
      fatal.severity = DiagSeverity::kFatal;
      fatal.subsystem = DiagSubsystem::kElf;
      fatal.code = error.code();
      if (error.offset().has_value()) {
        fatal.offset = *error.offset();
        fatal.has_offset = true;
      }
      fatal.message = error.message();
      diags.Add(fatal);
      metrics.Incr("study.images_quarantined");
      if (quarantined != nullptr) {
        quarantined->push_back(QuarantinedImage{build.Label(), std::move(error)});
      }
    } else {
      dataset.AddImage(build.Label(), *surface);
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    std::string json = obs::GlobalRunReportJson();
    std::string path = report_dir + "/report_" + build.Label() + ".json";
    {
      std::ofstream out(path, std::ios::binary);
      if (!out) {
        return Error(ErrorCode::kIoError, "cannot write " + path);
      }
      out.write(json.data(), static_cast<std::streamsize>(json.size()));
      if (!out) {
        return Error(ErrorCode::kIoError, "short write to " + path);
      }
    }
    reports.push_back(obs::LabeledReport{build.Label(), std::move(json)});
    if (files != nullptr) {
      files->per_image.push_back(path);
    }
    if (progress) {
      progress(ImageProgress{build.Label(), elapsed.count(), i, corpus.size()});
    }
  }

  auto aggregate = obs::MergeRunReports(reports);
  if (!aggregate.ok()) {
    return aggregate.TakeError();
  }
  std::string agg_path = report_dir + "/report_agg.json";
  {
    std::ofstream out(agg_path, std::ios::binary);
    if (!out) {
      return Error(ErrorCode::kIoError, "cannot write " + agg_path);
    }
    out.write(aggregate->data(), static_cast<std::streamsize>(aggregate->size()));
    if (!out) {
      return Error(ErrorCode::kIoError, "short write to " + agg_path);
    }
  }
  if (files != nullptr) {
    files->aggregate = agg_path;
  }

  // Leave the global state describing the whole build, not the last image:
  // callers using --metrics-out after this still get a meaningful report.
  spans.Clear();
  metrics.Reset();
  diags.Clear();
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
  metrics.Incr("study.datasets_built");
  metrics.Incr("study.reports_written", corpus.size() + 1);
  metrics.Set("study.build_dataset.wall_ms", static_cast<int64_t>(wall.count() * 1e3));
  return dataset;
}

Result<ProgramReport> Study::Analyze(const Dataset& dataset, const std::string& program) const {
  for (const BpfObject& object : programs_.objects) {
    if (object.name == program) {
      return Analyze(dataset, object);
    }
  }
  return Error(ErrorCode::kNotFound, "no program named " + program);
}

Result<ProgramReport> Study::Analyze(const Dataset& dataset, const BpfObject& object) {
  // Round-trip through object bytes: the analyzer sees only what a real
  // compiled .o would carry.
  DEPSURF_ASSIGN_OR_RETURN(bytes, WriteBpfObject(object));
  DEPSURF_ASSIGN_OR_RETURN(parsed, ParseBpfObject(std::move(bytes)));
  DEPSURF_ASSIGN_OR_RETURN(deps, ExtractDependencySet(parsed));
  return AnalyzeProgram(dataset, deps);
}

}  // namespace depsurf
