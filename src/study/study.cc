#include "src/study/study.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <deque>
#include <fstream>
#include <future>
#include <memory>
#include <thread>
#include <utility>

#include "src/obs/context.h"
#include "src/obs/diagnostics.h"
#include "src/obs/metrics.h"
#include "src/obs/report_merge.h"
#include "src/obs/run_report.h"
#include "src/obs/span.h"
#include "src/util/str_util.h"

namespace depsurf {

namespace {

// CPU time consumed by the whole process, all threads summed. std::clock()
// reports the same quantity but overflows 32-bit clock_t in under an hour
// at CLOCKS_PER_SEC=1e6; CLOCK_PROCESS_CPUTIME_ID has nanosecond range.
// Published as `cpu_total_ms` — with a parallel window this legitimately
// exceeds wall_ms, which is why the old `cpu_ms` name was retired (see
// docs/OBSERVABILITY.md).
uint64_t ProcessCpuNs() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) {
    return 0;
  }
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Width of the concurrent generate+extract window.
size_t EffectiveWindow(const BuildPolicy& policy) {
  if (policy.jobs > 0) {
    return static_cast<size_t>(policy.jobs);
  }
  size_t window = std::max<unsigned>(1, std::thread::hardware_concurrency());
  return std::min(window, size_t{8});  // surfaces are large; bound memory
}

// What a bounded-window worker hands back to the in-order consume stage:
// the extracted surface plus the two timings only the worker can measure.
struct WorkerResult {
  Result<DependencySurface> surface;
  double seconds = 0;     // generate+extract wall time inside the worker
  double queue_wait = 0;  // launch (enqueue) to the worker actually starting
};

// Telemetry for the bounded-window executor, accumulated locally while the
// loop runs and published as metrics once the build completes. Report-mode
// builds reset the root registry mid-flight and scope per-image contexts
// around the workers, so recording as-you-go would either leak executor
// noise into per-image reports (breaking their masked determinism
// guarantee) or be wiped by the reset; batching sidesteps both.
class ExecutorTelemetry {
 public:
  explicit ExecutorTelemetry(size_t window) : lane_busy_seconds_(window, 0.0) {}

  // `index` is the task's position in corpus order; launch and consume
  // both walk the window round-robin, so index % window names the executor
  // lane the task occupied.
  void RecordTask(size_t index, double queue_wait_seconds, double busy_seconds) {
    queue_wait_us_.push_back(static_cast<uint64_t>(queue_wait_seconds * 1e6));
    inflight_us_.push_back(static_cast<uint64_t>(busy_seconds * 1e6));
    lane_busy_seconds_[index % lane_busy_seconds_.size()] += busy_seconds;
  }

  void AddStall(uint64_t ns) { serialize_stall_ns_ += ns; }

  void Publish(obs::MetricsRegistry& metrics) const {
    obs::Histogram* queue_wait = metrics.GetHistogram("study.executor.queue_wait_us");
    for (uint64_t v : queue_wait_us_) {
      queue_wait->Record(v);
    }
    obs::Histogram* inflight = metrics.GetHistogram("study.executor.inflight_us");
    for (uint64_t v : inflight_us_) {
      inflight->Record(v);
    }
    metrics.Incr("study.executor.serialize_stall_us", serialize_stall_ns_ / 1000);
    for (size_t lane = 0; lane < lane_busy_seconds_.size(); ++lane) {
      metrics.Set(StrFormat("study.executor.worker%zu.busy_ms", lane),
                  static_cast<int64_t>(lane_busy_seconds_[lane] * 1e3));
    }
  }

 private:
  std::vector<uint64_t> queue_wait_us_;
  std::vector<uint64_t> inflight_us_;
  std::vector<double> lane_busy_seconds_;  // per executor lane
  uint64_t serialize_stall_ns_ = 0;
};

// Wall time the in-order consume stage spends blocked on the window's
// front future — zero when the front task already finished, i.e. nonzero
// only when consumption (distill/serialize) has fallen behind extraction
// or completions arrived out of corpus order.
template <typename Future>
uint64_t ConsumeStallNs(Future& future) {
  if (future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    return 0;
  }
  const auto start = std::chrono::steady_clock::now();
  future.wait();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}

Status WriteFileBytes(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot write " + path);
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) {
    return Status(ErrorCode::kIoError, "short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

Result<StudyOptions> StudyOptions::Parse(int argc, char** argv, double default_scale) {
  StudyOptions options;
  options.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (strncmp(arg, "--scale=", 8) == 0) {
      const char* text = arg + 8;
      char* end = nullptr;
      errno = 0;
      double value = strtod(text, &end);
      if (*text == '\0' || end == nullptr || *end != '\0' || errno == ERANGE ||
          !std::isfinite(value)) {
        return Error(ErrorCode::kInvalidArgument,
                     StrFormat("--scale: \"%s\" is not a number", text));
      }
      if (value <= 0.0 || value > 4.0) {
        return Error(ErrorCode::kInvalidArgument,
                     StrFormat("--scale: %s is outside (0, 4]", text));
      }
      options.scale = value;
    } else if (strncmp(arg, "--seed=", 7) == 0) {
      const char* text = arg + 7;
      char* end = nullptr;
      errno = 0;
      unsigned long long value = strtoull(text, &end, 10);
      if (*text == '\0' || *text == '-' || end == nullptr || *end != '\0' || errno == ERANGE) {
        return Error(ErrorCode::kInvalidArgument,
                     StrFormat("--seed: \"%s\" is not an unsigned integer", text));
      }
      options.seed = value;
    }
  }
  return options;
}

StudyOptions StudyOptions::FromArgs(int argc, char** argv, double default_scale) {
  Result<StudyOptions> options = Parse(argc, argv, default_scale);
  if (!options.ok()) {
    std::fprintf(stderr, "depsurf: error: %s\n", options.error().message().c_str());
    std::exit(1);
  }
  return options.TakeValue();
}

Study::Study(const StudyOptions& options)
    : options_(options), programs_(BuildProgramCorpus()) {
  ScriptedCatalog catalog = BuildCuratedCatalog();
  ScriptedCatalog additions = programs_.additions;
  catalog.Merge(std::move(additions));
  model_ = std::make_unique<KernelModel>(options.seed, options.scale, std::move(catalog));
}

Result<std::vector<uint8_t>> Study::BuildImage(const BuildSpec& build) const {
  DEPSURF_ASSIGN_OR_RETURN(kernel, model_->Configure(build));
  DEPSURF_ASSIGN_OR_RETURN(bytes, BuildKernelImage(CompileKernel(options_.seed, std::move(kernel))));
  if (image_mutator_) {
    image_mutator_(build, bytes);
  }
  return bytes;
}

Result<DependencySurface> Study::ExtractSurface(const BuildSpec& build) const {
  DEPSURF_ASSIGN_OR_RETURN(bytes, BuildImage(build));
  return DependencySurface::Extract(std::move(bytes));
}

Result<Dataset> Study::BuildDataset(
    const std::vector<BuildSpec>& corpus,
    const std::function<void(const ImageProgress&)>& progress,
    const BuildPolicy& policy,
    std::vector<QuarantinedImage>* quarantined) const {
  obs::ScopedSpan span("study.build_dataset");
  span.AddAttr("images", static_cast<uint64_t>(corpus.size()));
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t cpu_start_ns = ProcessCpuNs();

  // Extraction is pure, so images run concurrently in a bounded window;
  // distillation happens serially in corpus order (Dataset interning is
  // order-sensitive and must stay deterministic).
  const size_t window = EffectiveWindow(policy);
  ExecutorTelemetry telemetry(window);
  Dataset dataset;
  std::deque<std::future<WorkerResult>> in_flight;
  size_t next_launch = 0;
  size_t next_consume = 0;
  while (next_consume < corpus.size()) {
    while (next_launch < corpus.size() && in_flight.size() < window) {
      const BuildSpec& build = corpus[next_launch++];
      const auto enqueue = std::chrono::steady_clock::now();
      in_flight.push_back(std::async(std::launch::async, [this, build, enqueue] {
        const auto start = std::chrono::steady_clock::now();
        const std::chrono::duration<double> queued = start - enqueue;
        Result<DependencySurface> surface = ExtractSurface(build);
        const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
        return WorkerResult{std::move(surface), elapsed.count(), queued.count()};
      }));
    }
    telemetry.AddStall(ConsumeStallNs(in_flight.front()));
    WorkerResult result = in_flight.front().get();
    in_flight.pop_front();
    telemetry.RecordTask(next_consume, result.queue_wait, result.seconds);
    Result<DependencySurface>& surface = result.surface;
    const double seconds = result.seconds;
    const std::string label = corpus[next_consume].Label();
    if (!surface.ok()) {
      if (!policy.keep_going) {
        for (auto& future : in_flight) {
          future.wait();  // drain before propagating the error
        }
        return surface.TakeError().Wrap("image " + label);
      }
      // Quarantine: the image stays out of the dataset, the build goes on.
      // Progress still fires — callers counting callbacks see every corpus
      // slot exactly once, with the quarantine flagged.
      obs::Context::Current().metrics().Incr("study.images_quarantined");
      if (quarantined != nullptr) {
        quarantined->push_back(QuarantinedImage{label, surface.TakeError()});
      }
      if (progress) {
        ImageProgress report;
        report.label = label;
        report.seconds = seconds;
        report.index = next_consume;
        report.total = corpus.size();
        report.quarantined = true;
        progress(report);
      }
      ++next_consume;
      continue;
    }
    obs::Context::Current().metrics().GetHistogram("study.image_extract_ms")
        ->Record(static_cast<uint64_t>(seconds * 1e3));
    if (progress) {
      ImageProgress report;
      report.label = label;
      report.seconds = seconds;
      report.index = next_consume;
      report.total = corpus.size();
      progress(report);
    }
    dataset.AddImage(label, *surface);
    ++next_consume;
  }

  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
  const uint64_t cpu_ns = ProcessCpuNs() - cpu_start_ns;
  obs::MetricsRegistry& metrics = obs::Context::Current().metrics();
  metrics.Incr("study.datasets_built");
  metrics.Set("study.build_dataset.wall_ms", static_cast<uint64_t>(wall.count() * 1e3));
  metrics.Set("study.build_dataset.cpu_total_ms", static_cast<int64_t>(cpu_ns / 1000000));
  metrics.Set("study.build_dataset.window", static_cast<int64_t>(window));
  telemetry.Publish(metrics);
  span.AddAttr("window", static_cast<uint64_t>(window));
  return dataset;
}

Result<Dataset> Study::BuildDatasetWithReports(
    const std::vector<BuildSpec>& corpus, const std::string& report_dir,
    DatasetReportFiles* files,
    const std::function<void(const ImageProgress&)>& progress,
    const BuildPolicy& policy,
    std::vector<QuarantinedImage>* quarantined) const {
  const auto wall_start = std::chrono::steady_clock::now();
  const uint64_t cpu_start_ns = ProcessCpuNs();
  const size_t window = EffectiveWindow(policy);

  // Per-image isolation comes from obs::Context, not from clearing the
  // globals: each in-flight image owns a fresh context, and the worker
  // pushes it on its own thread (the TLS stack does not cross std::async
  // boundaries). Everything BuildImage + Extract collect — spans, metrics,
  // the salvage ledger — lands in that context. The main thread consumes in
  // corpus order, distills under the same context, and serializes it as the
  // per-image report, so report contents match the old serial build while
  // generate+extract overlap across the window.
  struct InFlight {
    std::shared_ptr<obs::Context> context;
    std::future<WorkerResult> future;
  };

  ExecutorTelemetry telemetry(window);
  Dataset dataset;
  std::vector<obs::LabeledReport> reports;
  std::deque<InFlight> in_flight;
  size_t next_launch = 0;
  size_t next_consume = 0;
  while (next_consume < corpus.size()) {
    while (next_launch < corpus.size() && in_flight.size() < window) {
      const BuildSpec& build = corpus[next_launch++];
      auto context = std::make_shared<obs::Context>();
      InFlight entry;
      entry.context = context;
      const auto enqueue = std::chrono::steady_clock::now();
      entry.future = std::async(std::launch::async, [this, build, context, enqueue] {
        obs::ScopedContext scope(*context);
        const auto start = std::chrono::steady_clock::now();
        const std::chrono::duration<double> queued = start - enqueue;
        Result<DependencySurface> surface = ExtractSurface(build);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return WorkerResult{std::move(surface), elapsed.count(), queued.count()};
      });
      in_flight.push_back(std::move(entry));
    }
    InFlight entry = std::move(in_flight.front());
    in_flight.pop_front();
    // Stall + queue-wait are executor facts, not image facts: they are
    // measured here on the main thread (or returned by the worker) and
    // batched outside the per-image context so report contents stay
    // byte-stable under masking regardless of --jobs.
    telemetry.AddStall(ConsumeStallNs(entry.future));
    WorkerResult result = entry.future.get();
    telemetry.RecordTask(next_consume, result.queue_wait, result.seconds);
    Result<DependencySurface>& surface = result.surface;
    const double seconds = result.seconds;
    obs::Context& context = *entry.context;
    const std::string label = corpus[next_consume].Label();
    const bool image_ok = surface.ok();
    if (!image_ok) {
      if (!policy.keep_going) {
        for (auto& pending : in_flight) {
          pending.future.wait();  // drain before propagating the error
        }
        return surface.TakeError().Wrap("image " + label);
      }
      // Quarantined images still leave a trace in the report set: one
      // fatal ledger entry explaining why extraction died, so the
      // aggregate lists the image alongside the survivors.
      Error error = surface.TakeError();
      DiagnosticEntry fatal;
      fatal.severity = DiagSeverity::kFatal;
      // The layer closest to the fault tags the error (a poisoned DWARF
      // section reads as a dwarf failure); untagged errors — generator
      // failures, unreadable containers — default to the ELF layer.
      fatal.subsystem = error.subsystem().value_or(DiagSubsystem::kElf);
      fatal.code = error.code();
      if (error.offset().has_value()) {
        fatal.offset = *error.offset();
        fatal.has_offset = true;
      }
      fatal.message = error.message();
      context.diagnostics().Add(fatal);
      context.metrics().Incr("study.images_quarantined");
      if (quarantined != nullptr) {
        quarantined->push_back(QuarantinedImage{label, std::move(error)});
      }
    } else {
      // Distill under the image's context so dataset.distill spans and
      // intern metrics land in its report, exactly as in the serial build.
      obs::ScopedContext scope(context);
      dataset.AddImage(label, *surface);
    }
    std::string json = obs::ContextRunReportJson(context);
    std::string path = report_dir + "/report_" + label + ".json";
    DEPSURF_RETURN_IF_ERROR(WriteFileBytes(path, json));
    reports.push_back(obs::LabeledReport{label, std::move(json)});
    if (files != nullptr) {
      files->per_image.push_back(path);
    }
    if (progress) {
      ImageProgress report;
      report.label = label;
      report.seconds = seconds;
      report.index = next_consume;
      report.total = corpus.size();
      report.quarantined = !image_ok;
      progress(report);
    }
    ++next_consume;
  }

  auto aggregate = obs::MergeRunReports(reports);
  if (!aggregate.ok()) {
    return aggregate.TakeError();
  }
  std::string agg_path = report_dir + "/report_agg.json";
  DEPSURF_RETURN_IF_ERROR(WriteFileBytes(agg_path, *aggregate));
  if (files != nullptr) {
    files->aggregate = agg_path;
  }

  // Leave the global state describing the whole build, not stray collection
  // from before it: callers using --metrics-out after this still get a
  // meaningful report.
  obs::Context& root = obs::Context::Root();
  root.spans().Clear();
  root.metrics().Reset();
  root.diagnostics().Clear();
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - wall_start;
  const uint64_t cpu_ns = ProcessCpuNs() - cpu_start_ns;
  obs::MetricsRegistry& metrics = root.metrics();
  metrics.Incr("study.datasets_built");
  metrics.Incr("study.reports_written", corpus.size() + 1);
  metrics.Set("study.build_dataset.wall_ms", static_cast<int64_t>(wall.count() * 1e3));
  metrics.Set("study.build_dataset.cpu_total_ms", static_cast<int64_t>(cpu_ns / 1000000));
  metrics.Set("study.build_dataset.window", static_cast<int64_t>(window));
  telemetry.Publish(metrics);
  return dataset;
}

Result<ProgramReport> Study::Analyze(const Dataset& dataset, const std::string& program) const {
  for (const BpfObject& object : programs_.objects) {
    if (object.name == program) {
      return Analyze(dataset, object);
    }
  }
  return Error(ErrorCode::kNotFound, "no program named " + program);
}

Result<ProgramReport> Study::Analyze(const Dataset& dataset, const BpfObject& object) {
  // Round-trip through object bytes: the analyzer sees only what a real
  // compiled .o would carry.
  DEPSURF_ASSIGN_OR_RETURN(bytes, WriteBpfObject(object));
  DEPSURF_ASSIGN_OR_RETURN(parsed, ParseBpfObject(std::move(bytes)));
  DEPSURF_ASSIGN_OR_RETURN(deps, ExtractDependencySet(parsed));
  return AnalyzeProgram(dataset, deps);
}

namespace {

// The health state a ledger entry's subsystem ended extraction in. kBpf
// entries have no surface state; they map to kClean so the silent-salvage
// check below never fires for them on image inputs.
DegradationState SubsystemState(const SurfaceHealth& health, DiagSubsystem subsystem) {
  switch (subsystem) {
    case DiagSubsystem::kElf: return health.elf;
    case DiagSubsystem::kDwarf: return health.dwarf;
    case DiagSubsystem::kBtf: return health.btf;
    case DiagSubsystem::kTracepoint: return health.tracepoint;
    case DiagSubsystem::kSyscall: return health.syscall;
    case DiagSubsystem::kBpf: return DegradationState::kClean;
  }
  return DegradationState::kClean;
}

// Deterministic fingerprint of one extraction run, for the double-run
// nondeterminism check: outcome, health summary, and every ledger line.
std::string ExtractionFingerprint(const Result<DependencySurface>& result) {
  if (!result.ok()) {
    return "fatal: " + result.error().ToString();
  }
  std::string out = "ok " + result->health().Summary();
  for (const DiagnosticEntry& entry : result->health().ledger.entries()) {
    out += "\n" + entry.ToString();
  }
  return out;
}

std::string ObjectFingerprint(const Result<BpfObject>& result,
                              const DiagnosticLedger* ledger) {
  if (!result.ok()) {
    return "fatal: " + result.error().ToString();
  }
  std::string out = StrFormat("ok programs=%zu relocs=%zu", result->programs.size(),
                              result->relocs.size());
  for (const BpfProgram& program : result->programs) {
    out += StrFormat("\n%s insns=%zu", program.name.c_str(), program.insns.size());
  }
  if (ledger != nullptr) {
    for (const DiagnosticEntry& entry : ledger->entries()) {
      out += "\n" + entry.ToString();
    }
  }
  return out;
}

}  // namespace

Study::OracleOutcome Study::RunSalvageStrictOracle(const std::vector<uint8_t>& bytes) {
  OracleOutcome out;
  // Two independent runs over the same bytes: salvage extraction is a pure
  // function of its input, so any divergence is itself a finding.
  auto first = DependencySurface::Extract(bytes);
  auto second = DependencySurface::Extract(bytes);
  const std::string fp1 = ExtractionFingerprint(first);
  const std::string fp2 = ExtractionFingerprint(second);
  if (fp1 != fp2) {
    out.violations.push_back("non-deterministic extraction: run 1 [" + fp1 +
                             "] vs run 2 [" + fp2 + "]");
  }
  if (!first.ok()) {
    // Fatal for both policies; the error must still diagnose itself.
    if (first.error().message().empty()) {
      out.violations.push_back("fatal extraction with an empty error message");
    }
    return out;
  }
  out.salvage_ok = true;
  const SurfaceHealth& health = first->health();
  out.degraded = health.AnyDegraded();
  out.ledger_entries = health.ledger.size();
  out.strict_ok = !out.degraded;
  // The one allowed disagreement — salvage accepts, strict rejects — must
  // be explained: a degraded subsystem without a degraded-severity ledger
  // entry means salvage lost the diagnosis.
  if (out.degraded &&
      health.ledger.CountSeverity(DiagSeverity::kDegraded) == 0) {
    out.violations.push_back("degraded health (" + health.Summary() +
                             ") with no degraded-severity ledger entry");
  }
  for (const DiagnosticEntry& entry : health.ledger.entries()) {
    if (entry.severity == DiagSeverity::kFatal) {
      out.violations.push_back("fatal ledger entry on a surviving surface: " +
                               entry.ToString());
    }
    if (entry.severity == DiagSeverity::kDegraded &&
        SubsystemState(health, entry.subsystem) == DegradationState::kClean) {
      out.violations.push_back(
          "ledger reports degradation but health stayed clean: " + entry.ToString());
    }
    if (entry.message.empty()) {
      out.violations.push_back("ledger entry with an empty message");
    }
  }
  return out;
}

Study::OracleOutcome Study::RunObjectSalvageStrictOracle(const std::vector<uint8_t>& bytes) {
  OracleOutcome out;
  DiagnosticLedger ledger1;
  DiagnosticLedger ledger2;
  auto salvage1 = ParseBpfObject(bytes, &ledger1);
  auto salvage2 = ParseBpfObject(bytes, &ledger2);
  auto strict1 = ParseBpfObject(bytes);
  auto strict2 = ParseBpfObject(bytes);
  const std::string sfp1 = ObjectFingerprint(salvage1, &ledger1);
  const std::string sfp2 = ObjectFingerprint(salvage2, &ledger2);
  if (sfp1 != sfp2) {
    out.violations.push_back("non-deterministic salvage parse: run 1 [" + sfp1 +
                             "] vs run 2 [" + sfp2 + "]");
  }
  if (ObjectFingerprint(strict1, nullptr) != ObjectFingerprint(strict2, nullptr)) {
    out.violations.push_back("non-deterministic strict parse");
  }
  out.salvage_ok = salvage1.ok();
  out.strict_ok = strict1.ok();
  out.ledger_entries = ledger1.size();
  out.degraded = !ledger1.empty();
  if (out.strict_ok && !out.salvage_ok) {
    out.violations.push_back("strict parse accepted what salvage rejected: " +
                             salvage1.error().ToString());
  }
  if (out.salvage_ok && !out.strict_ok && ledger1.empty()) {
    out.violations.push_back("salvage diverged from strict (" +
                             strict1.error().ToString() +
                             ") without any ledger entry explaining it");
  }
  if (out.salvage_ok && out.strict_ok) {
    // No salvage happened, so both parses must see the same object.
    if (!ledger1.empty()) {
      out.violations.push_back(StrFormat(
          "strict parse succeeded but the salvage ledger has %zu entries", ledger1.size()));
    }
    if (ObjectFingerprint(salvage1, nullptr) != ObjectFingerprint(strict1, nullptr)) {
      out.violations.push_back("salvage and strict parses disagree on a clean object");
    }
  }
  for (const DiagnosticEntry& entry : ledger1.entries()) {
    if (entry.message.empty()) {
      out.violations.push_back("ledger entry with an empty message");
    }
  }
  return out;
}

}  // namespace depsurf
