// Study harness: ties the synthetic-kernel generator, the program corpus,
// and the DepSurf analyzer together for the examples and the benchmark
// binaries that regenerate the paper's tables and figures.
#ifndef DEPSURF_SRC_STUDY_STUDY_H_
#define DEPSURF_SRC_STUDY_STUDY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/bpfgen/program_corpus.h"
#include "src/core/depsurf.h"
#include "src/kernelgen/compiler.h"
#include "src/kernelgen/configurator.h"
#include "src/kernelgen/corpus.h"
#include "src/kernelgen/image_builder.h"

namespace depsurf {

// Shared CLI options: --scale=<f> --seed=<n>. Benches default to paper
// scale (1.0); examples pass a smaller default for interactivity.
struct StudyOptions {
  uint64_t seed = 2025;
  double scale = 1.0;

  // Strict flag parsing: `--scale=` must be a finite number in (0, 4] and
  // `--seed=` a full unsigned integer; anything else is an error naming the
  // offending flag. Unrecognized arguments are ignored (callers own their
  // other flags).
  static Result<StudyOptions> Parse(int argc, char** argv, double default_scale = 1.0);
  // Convenience wrapper for benches/examples: prints the parse error to
  // stderr and exits 1 instead of propagating it.
  static StudyOptions FromArgs(int argc, char** argv, double default_scale = 1.0);
};

// What a corpus build does when one image fails extraction outright.
// Salvage-mode extraction already downgrades most damage to per-subsystem
// degradation; this policy covers the residue (unreadable ELF container,
// image generation failure).
struct BuildPolicy {
  // true (the default, `--keep-going`): quarantine the failed image —
  // record its label + error, keep it out of the dataset, and finish the
  // rest of the corpus. false (`--strict`): abort the build with the
  // failed image's error, wrapped with its label.
  bool keep_going = true;
  // Width of the concurrent generate+extract window (`--jobs=N`). 0 (the
  // default) auto-sizes to min(hardware_concurrency, 8). Results are
  // byte-identical for any value: distillation and report serialization
  // stay serial in corpus order.
  int jobs = 0;
};

// One image the build gave up on under BuildPolicy{keep_going}.
struct QuarantinedImage {
  std::string label;
  Error error;
};

class Study {
 public:
  explicit Study(const StudyOptions& options);

  const StudyOptions& options() const { return options_; }
  const KernelModel& model() const { return *model_; }
  const ProgramCorpus& programs() const { return programs_; }

  // Generates the image for one build and extracts its surface (the full
  // binary round trip). ~1.5 s per image at scale 1.
  Result<std::vector<uint8_t>> BuildImage(const BuildSpec& build) const;
  Result<DependencySurface> ExtractSurface(const BuildSpec& build) const;

  // Test/diagnostic hook: runs on every generated image's bytes before
  // extraction. Fault-injection studies use this to poison one build by
  // label (see src/faultgen) and watch the quarantine machinery react.
  using ImageMutator = std::function<void(const BuildSpec&, std::vector<uint8_t>&)>;
  void SetImageMutator(ImageMutator mutator) { image_mutator_ = std::move(mutator); }

  // Per-image progress report for BuildDataset: which image just finished,
  // how long its generate+extract round trip took, and where the build
  // stands in the corpus. `seconds` is wall time inside the worker, so with
  // parallel extraction the sum exceeds the dataset wall time. Every corpus
  // entry fires exactly once, in corpus order with contiguous indices —
  // quarantined images included, flagged so callers can render them
  // distinctly instead of silently skipping a slot.
  struct ImageProgress {
    std::string label;
    double seconds = 0.0;
    size_t index = 0;  // 0-based position in the corpus
    size_t total = 0;
    bool quarantined = false;
  };

  // Builds a dataset over the given corpus. Image generation + extraction
  // run in parallel (they are pure); distillation is serial and in corpus
  // order, so results are deterministic. `progress` (optional) is called
  // once per image as its surface is distilled. Under the default policy a
  // failed image is quarantined (appended to `quarantined` when non-null)
  // and the build continues; under strict the error aborts the build.
  Result<Dataset> BuildDataset(const std::vector<BuildSpec>& corpus,
                               const std::function<void(const ImageProgress&)>& progress = {},
                               const BuildPolicy& policy = {},
                               std::vector<QuarantinedImage>* quarantined = nullptr) const;

  // Like BuildDataset, but additionally writes one depsurf.run_report.v1
  // per image into `report_dir` (report_<label>.json) plus their merged
  // depsurf.run_report_agg.v1 (report_agg.json). Per-image isolation comes
  // from obs::Context: each in-flight image generates + extracts under its
  // own context on a worker thread, so report mode runs in the same bounded
  // concurrent window as BuildDataset. Distillation and report
  // serialization stay serial in corpus order — the dataset, the per-image
  // reports (modulo live timings), and the masked aggregate are
  // byte-identical for any BuildPolicy::jobs. The paths written land in
  // `files` when non-null.
  struct DatasetReportFiles {
    std::vector<std::string> per_image;
    std::string aggregate;
  };
  // A quarantined image still gets a per-image report: its diagnostics
  // block carries one fatal entry describing why extraction died, so the
  // aggregate report lists the image alongside the survivors.
  Result<Dataset> BuildDatasetWithReports(
      const std::vector<BuildSpec>& corpus, const std::string& report_dir,
      DatasetReportFiles* files = nullptr,
      const std::function<void(const ImageProgress&)>& progress = {},
      const BuildPolicy& policy = {},
      std::vector<QuarantinedImage>* quarantined = nullptr) const;

  // Analyzes one program object (by Table 7 name) against a dataset.
  Result<ProgramReport> Analyze(const Dataset& dataset, const std::string& program) const;
  static Result<ProgramReport> Analyze(const Dataset& dataset, const BpfObject& object);

  // ---- Salvage-vs-strict differential oracle ------------------------------
  //
  // The quarantine contract (docs/ROBUSTNESS.md) documents exactly one
  // allowed disagreement between salvage-mode and strict consumers of the
  // same input: salvage may accept a degraded input that strict rejects,
  // and then the ledger must explain what was lost. The oracle runs both
  // interpretations (twice each, to catch nondeterminism) over one
  // candidate and reports every disagreement beyond that contract. The
  // fuzz campaign (src/fuzz) runs it per candidate; a violation on any
  // input — however damaged — is a bug.
  struct OracleOutcome {
    bool salvage_ok = false;  // salvage-mode extraction produced a result
    bool strict_ok = false;   // a degradation-refusing consumer accepts it
    bool degraded = false;    // salvage flagged lost data
    size_t ledger_entries = 0;
    // Contract violations, deterministic and human-readable; empty means
    // salvage and strict agree modulo the documented quarantine contract.
    std::vector<std::string> violations;
  };

  // Kernel images: DependencySurface::Extract under both policies. Strict
  // here means "reject any surface with a degraded subsystem" (the posture
  // analyses take when they refuse salvaged columns).
  static OracleOutcome RunSalvageStrictOracle(const std::vector<uint8_t>& bytes);

  // eBPF objects: ParseBpfObject with a ledger (per-program salvage of the
  // instruction streams) vs without one (malformed streams are fatal).
  static OracleOutcome RunObjectSalvageStrictOracle(const std::vector<uint8_t>& bytes);

 private:
  StudyOptions options_;
  ProgramCorpus programs_;
  std::unique_ptr<KernelModel> model_;
  ImageMutator image_mutator_;
};

}  // namespace depsurf

#endif  // DEPSURF_SRC_STUDY_STUDY_H_
