#include "src/obs/profile.h"

#include <algorithm>
#include <map>

#include "src/obs/json_lint.h"
#include "src/obs/run_report.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

namespace {

std::string U64(uint64_t v) { return StrFormat("%llu", (unsigned long long)v); }
std::string I64(int64_t v) { return StrFormat("%lld", (long long)v); }

// Self time: inclusive duration minus the summed durations of direct
// children. Children open and close on the parent's thread strictly inside
// its interval, so the subtraction never underflows in practice; clamp
// anyway so a hand-built forest cannot produce wrapped values.
uint64_t SelfNs(const SpanNode& span) {
  uint64_t children = 0;
  for (const SpanNode& child : span.children) {
    children += child.dur_ns;
  }
  return span.dur_ns > children ? span.dur_ns - children : 0;
}

void AccumulateNode(const SpanNode& span, std::map<std::string, ProfileNameRow>& rows,
                    uint64_t& nodes) {
  ++nodes;
  ProfileNameRow& row = rows[span.name];
  row.name = span.name;
  row.count += 1;
  row.dur_ns += span.dur_ns;
  row.self_ns += SelfNs(span);
  row.cpu_ns += span.cpu_ns;
  row.alloc_count += span.alloc_count;
  row.alloc_bytes += span.alloc_bytes;
  for (const SpanNode& child : span.children) {
    AccumulateNode(child, rows, nodes);
  }
}

// The dominant span among siblings: largest duration, ties broken by
// lexicographically smallest name, then first occurrence. Deterministic
// for the masked case (all durations 0) because the tie-break is stable.
const SpanNode* DominantSpan(const std::vector<SpanNode>& spans) {
  const SpanNode* best = nullptr;
  for (const SpanNode& span : spans) {
    if (best == nullptr || span.dur_ns > best->dur_ns ||
        (span.dur_ns == best->dur_ns && span.name < best->name)) {
      best = &span;
    }
  }
  return best;
}

void FoldNode(const SpanNode& span, std::string& stack,
              std::map<std::string, uint64_t>& folded) {
  const size_t prefix = stack.size();
  if (!stack.empty()) {
    stack += ";";
  }
  stack += span.name;
  folded[stack] += SelfNs(span);
  for (const SpanNode& child : span.children) {
    FoldNode(child, stack, folded);
  }
  stack.resize(prefix);
}

uint64_t NodeU64(const JsonValue& span, const char* key) {
  const JsonValue* value = span.Find(key);
  return value != nullptr && value->kind == JsonValue::Kind::kNumber && value->number > 0
             ? static_cast<uint64_t>(value->number)
             : 0;
}

// Rebuilds a SpanNode subtree from a parsed run-report span object.
// Resource fields missing from older reports default to 0.
SpanNode SpanFromValue(const JsonValue& value) {
  SpanNode node;
  const JsonValue* name = value.Find("name");
  node.name = name != nullptr ? name->string : "";
  node.dur_ns = NodeU64(value, "dur_ns");
  node.cpu_ns = NodeU64(value, "cpu_ns");
  node.alloc_count = NodeU64(value, "alloc_count");
  node.alloc_bytes = NodeU64(value, "alloc_bytes");
  const JsonValue* children = value.Find("children");
  if (children != nullptr && children->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& child : children->array) {
      node.children.push_back(SpanFromValue(child));
    }
  }
  return node;
}

Result<std::vector<SpanNode>> ReportSpanForest(std::string_view json, const JsonValue** doc_out,
                                               JsonValue& storage) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  storage = std::move(*parsed);
  const JsonValue* schema = storage.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      (schema->string != kRunReportSchema && schema->string != kRunReportAggSchema)) {
    return Error(ErrorCode::kMalformedData,
                 StrFormat("not a %s or %s document", kRunReportSchema, kRunReportAggSchema));
  }
  std::vector<SpanNode> roots;
  const JsonValue* spans = storage.Find("spans");
  if (spans != nullptr && spans->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& span : spans->array) {
      roots.push_back(SpanFromValue(span));
    }
  }
  if (doc_out != nullptr) {
    *doc_out = &storage;
  }
  return roots;
}

// Lane index for a study.executor.worker<i>.busy_ms gauge name, or -1.
int64_t WorkerLane(const std::string& name) {
  constexpr std::string_view kPrefix = "study.executor.worker";
  constexpr std::string_view kSuffix = ".busy_ms";
  if (name.size() <= kPrefix.size() + kSuffix.size() ||
      name.compare(0, kPrefix.size(), kPrefix) != 0 ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
    return -1;
  }
  int64_t lane = 0;
  for (size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return -1;
    }
    lane = lane * 10 + (name[i] - '0');
  }
  return lane;
}

void FillExecutorFromDoc(Profile& profile, const JsonValue& doc) {
  ExecutorStats& executor = profile.executor;
  const JsonValue* gauges = doc.Find("gauges");
  if (gauges != nullptr && gauges->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, value] : gauges->object) {
      if (name == "study.build_dataset.window") {
        executor.window = static_cast<int64_t>(value.number);
        executor.present = true;
      } else if (name == "study.build_dataset.wall_ms") {
        executor.wall_ms = static_cast<int64_t>(value.number);
      } else if (int64_t lane = WorkerLane(name); lane >= 0) {
        executor.worker_busy_ms.emplace_back(lane, static_cast<int64_t>(value.number));
        executor.present = true;
      }
    }
  }
  const JsonValue* counters = doc.Find("counters");
  if (counters != nullptr) {
    const JsonValue* stall = counters->Find("study.executor.serialize_stall_us");
    if (stall != nullptr) {
      executor.serialize_stall_us = static_cast<uint64_t>(stall->number);
      executor.present = true;
    }
  }
  const JsonValue* histograms = doc.Find("histograms");
  if (histograms != nullptr) {
    const JsonValue* queue_wait = histograms->Find("study.executor.queue_wait_us");
    if (queue_wait != nullptr) {
      const JsonValue* count = queue_wait->Find("count");
      executor.queue_waits = count != nullptr ? static_cast<uint64_t>(count->number) : 0;
      executor.present = true;
    }
  }
  std::sort(executor.worker_busy_ms.begin(), executor.worker_busy_ms.end());
}

Status NumberMember(const JsonValue& object, const char* key, double* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kNumber || value->number < 0) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or negative number \"%s\"", key));
  }
  if (out != nullptr) {
    *out = value->number;
  }
  return Status::Ok();
}

}  // namespace

double SerialSharePct(const Profile& profile) {
  if (profile.wall_ns == 0) {
    return 0;
  }
  return static_cast<double>(profile.serial_self_ns) * 100.0 /
         static_cast<double>(profile.wall_ns);
}

Profile BuildProfile(const std::vector<SpanNode>& roots) {
  Profile profile;
  std::map<std::string, ProfileNameRow> rows;
  for (const SpanNode& root : roots) {
    AccumulateNode(root, rows, profile.span_nodes);
  }
  profile.names.reserve(rows.size());
  for (auto& [name, row] : rows) {
    profile.names.push_back(std::move(row));
  }
  // Critical path: start at the dominant root, descend through the
  // dominant child at every level.
  const SpanNode* node = DominantSpan(roots);
  if (node != nullptr) {
    profile.wall_ns = node->dur_ns;
    while (node != nullptr) {
      const uint64_t self = SelfNs(*node);
      profile.critical_path.push_back(CriticalPathStep{node->name, node->dur_ns, self});
      profile.serial_self_ns += self;
      node = DominantSpan(node->children);
    }
  }
  return profile;
}

void FillExecutorStats(Profile& profile, const MetricsRegistry& metrics) {
  ExecutorStats& executor = profile.executor;
  for (const auto& [name, value] : metrics.GaugeSnapshot()) {
    if (name == "study.build_dataset.window") {
      executor.window = value;
      executor.present = true;
    } else if (name == "study.build_dataset.wall_ms") {
      executor.wall_ms = value;
    } else if (int64_t lane = WorkerLane(name); lane >= 0) {
      executor.worker_busy_ms.emplace_back(lane, value);
      executor.present = true;
    }
  }
  for (const auto& [name, value] : metrics.CounterSnapshot()) {
    if (name == "study.executor.serialize_stall_us") {
      executor.serialize_stall_us = value;
      executor.present = true;
    }
  }
  for (const auto& [name, histogram] : metrics.HistogramSnapshot()) {
    if (name == "study.executor.queue_wait_us") {
      executor.queue_waits = histogram->count();
      executor.present = true;
    }
  }
  std::sort(executor.worker_busy_ms.begin(), executor.worker_busy_ms.end());
}

Result<Profile> ProfileFromReportJson(std::string_view json) {
  JsonValue storage;
  const JsonValue* doc = nullptr;
  auto roots = ReportSpanForest(json, &doc, storage);
  if (!roots.ok()) {
    return roots.TakeError();
  }
  Profile profile = BuildProfile(*roots);
  FillExecutorFromDoc(profile, *doc);
  return profile;
}

std::string ProfileJson(const Profile& profile) {
  std::string out = "{\n\"schema\": \"";
  out += kProfileSchema;
  out += "\",\n";
  out += "\"span_nodes\": " + U64(profile.span_nodes) + ",\n";
  out += "\"names\": [";
  for (size_t i = 0; i < profile.names.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    const ProfileNameRow& row = profile.names[i];
    out += "{\"name\": \"" + JsonEscape(row.name) + "\"";
    out += ", \"count\": " + U64(row.count);
    out += ", \"dur_ns\": " + U64(row.dur_ns);
    out += ", \"self_ns\": " + U64(row.self_ns);
    out += ", \"cpu_ns\": " + U64(row.cpu_ns);
    out += ", \"alloc_count\": " + U64(row.alloc_count);
    out += ", \"alloc_bytes\": " + U64(row.alloc_bytes);
    out += "}";
  }
  out += "],\n";
  out += "\"critical_path\": {\"wall_ns\": " + U64(profile.wall_ns);
  out += ", \"serial_self_ns\": " + U64(profile.serial_self_ns);
  out += StrFormat(", \"serial_share_pct\": %.2f", SerialSharePct(profile));
  out += ", \"steps\": [";
  for (size_t i = 0; i < profile.critical_path.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    const CriticalPathStep& step = profile.critical_path[i];
    out += "{\"name\": \"" + JsonEscape(step.name) + "\"";
    out += ", \"dur_ns\": " + U64(step.dur_ns);
    out += ", \"self_ns\": " + U64(step.self_ns);
    out += "}";
  }
  out += "]},\n";
  const ExecutorStats& executor = profile.executor;
  out += "\"executor\": {\"window\": " + I64(executor.window);
  out += ", \"wall_ms\": " + I64(executor.wall_ms);
  out += ", \"serialize_stall_us\": " + U64(executor.serialize_stall_us);
  out += ", \"queue_waits\": " + U64(executor.queue_waits);
  out += ", \"workers\": [";
  for (size_t i = 0; i < executor.worker_busy_ms.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += "{\"lane\": " + I64(executor.worker_busy_ms[i].first);
    out += ", \"busy_ms\": " + I64(executor.worker_busy_ms[i].second);
    out += "}";
  }
  out += "]}\n}\n";
  return out;
}

std::string ProfileText(const Profile& profile) {
  std::string out = StrFormat("profile: %llu span nodes, %zu names\n",
                              (unsigned long long)profile.span_nodes, profile.names.size());
  std::vector<const ProfileNameRow*> rows;
  rows.reserve(profile.names.size());
  for (const ProfileNameRow& row : profile.names) {
    rows.push_back(&row);
  }
  std::stable_sort(rows.begin(), rows.end(), [](const ProfileNameRow* a, const ProfileNameRow* b) {
    return a->self_ns > b->self_ns;
  });
  out += StrFormat("  %-40s %8s %12s %12s %12s %10s %12s\n", "name", "count", "total_ms",
                   "self_ms", "cpu_ms", "allocs", "alloc_bytes");
  for (const ProfileNameRow* row : rows) {
    out += StrFormat("  %-40s %8llu %12.3f %12.3f %12.3f %10llu %12llu\n", row->name.c_str(),
                     (unsigned long long)row->count, static_cast<double>(row->dur_ns) / 1e6,
                     static_cast<double>(row->self_ns) / 1e6,
                     static_cast<double>(row->cpu_ns) / 1e6,
                     (unsigned long long)row->alloc_count,
                     (unsigned long long)row->alloc_bytes);
  }
  out += StrFormat("critical path: wall %.3f ms, serial self %.3f ms (%.2f%% of wall)\n",
                   static_cast<double>(profile.wall_ns) / 1e6,
                   static_cast<double>(profile.serial_self_ns) / 1e6, SerialSharePct(profile));
  for (const CriticalPathStep& step : profile.critical_path) {
    out += StrFormat("  %-40s %12.3f ms  self %12.3f ms\n", step.name.c_str(),
                     static_cast<double>(step.dur_ns) / 1e6,
                     static_cast<double>(step.self_ns) / 1e6);
  }
  const ExecutorStats& executor = profile.executor;
  if (executor.present) {
    out += StrFormat(
        "executor: window %lld, wall %lld ms, serialize stall %llu us, queue waits %llu\n",
        (long long)executor.window, (long long)executor.wall_ms,
        (unsigned long long)executor.serialize_stall_us,
        (unsigned long long)executor.queue_waits);
    for (const auto& [lane, busy_ms] : executor.worker_busy_ms) {
      double util = executor.wall_ms > 0
                        ? static_cast<double>(busy_ms) * 100.0 /
                              static_cast<double>(executor.wall_ms)
                        : 0;
      out += StrFormat("  lane %lld: busy %lld ms (%.1f%% of wall)\n", (long long)lane,
                       (long long)busy_ms, util);
    }
  }
  return out;
}

std::string FoldedStacks(const std::vector<SpanNode>& roots) {
  std::map<std::string, uint64_t> folded;
  std::string stack;
  for (const SpanNode& root : roots) {
    FoldNode(root, stack, folded);
  }
  std::string out;
  for (const auto& [frames, self_ns] : folded) {
    out += frames + " " + U64(self_ns) + "\n";
  }
  return out;
}

Result<std::string> FoldedStacksFromReportJson(std::string_view json) {
  JsonValue storage;
  auto roots = ReportSpanForest(json, nullptr, storage);
  if (!roots.ok()) {
    return roots.TakeError();
  }
  return FoldedStacks(*roots);
}

Status ValidateProfileDoc(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kProfileSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kProfileSchema));
  }
  if (Status s = NumberMember(doc, "span_nodes", nullptr); !s.ok()) {
    return s;
  }
  const JsonValue* names = doc.Find("names");
  if (names == nullptr || names->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing \"names\" array");
  }
  for (const JsonValue& row : names->array) {
    const JsonValue* name = row.Find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString || name->string.empty()) {
      return Status(ErrorCode::kMalformedData, "names entry without a \"name\" string");
    }
    double dur = 0;
    double self = 0;
    for (const char* key : {"count", "cpu_ns", "alloc_count", "alloc_bytes"}) {
      if (Status s = NumberMember(row, key, nullptr); !s.ok()) {
        return Status(ErrorCode::kMalformedData, name->string + ": " + s.error().message());
      }
    }
    if (Status s = NumberMember(row, "dur_ns", &dur); !s.ok()) {
      return Status(ErrorCode::kMalformedData, name->string + ": " + s.error().message());
    }
    if (Status s = NumberMember(row, "self_ns", &self); !s.ok()) {
      return Status(ErrorCode::kMalformedData, name->string + ": " + s.error().message());
    }
    if (self > dur) {
      return Status(ErrorCode::kMalformedData,
                    name->string + ": self_ns exceeds dur_ns");
    }
  }
  const JsonValue* critical = doc.Find("critical_path");
  if (critical == nullptr || critical->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData, "missing \"critical_path\" object");
  }
  double wall = 0;
  double serial_self = 0;
  if (Status s = NumberMember(*critical, "wall_ns", &wall); !s.ok()) {
    return s;
  }
  if (Status s = NumberMember(*critical, "serial_self_ns", &serial_self); !s.ok()) {
    return s;
  }
  if (Status s = NumberMember(*critical, "serial_share_pct", nullptr); !s.ok()) {
    return s;
  }
  if (serial_self > wall) {
    return Status(ErrorCode::kMalformedData, "serial_self_ns exceeds wall_ns");
  }
  const JsonValue* steps = critical->Find("steps");
  if (steps == nullptr || steps->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "critical_path without a \"steps\" array");
  }
  for (const JsonValue& step : steps->array) {
    const JsonValue* name = step.Find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString || name->string.empty()) {
      return Status(ErrorCode::kMalformedData, "critical_path step without a \"name\"");
    }
    double dur = 0;
    double self = 0;
    if (Status s = NumberMember(step, "dur_ns", &dur); !s.ok()) {
      return s;
    }
    if (Status s = NumberMember(step, "self_ns", &self); !s.ok()) {
      return s;
    }
    if (self > dur) {
      return Status(ErrorCode::kMalformedData,
                    "critical_path step " + name->string + ": self_ns exceeds dur_ns");
    }
  }
  const JsonValue* executor = doc.Find("executor");
  if (executor == nullptr || executor->kind != JsonValue::Kind::kObject) {
    return Status(ErrorCode::kMalformedData, "missing \"executor\" object");
  }
  for (const char* key : {"window", "wall_ms", "serialize_stall_us", "queue_waits"}) {
    if (Status s = NumberMember(*executor, key, nullptr); !s.ok()) {
      return s;
    }
  }
  const JsonValue* workers = executor->Find("workers");
  if (workers == nullptr || workers->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "executor without a \"workers\" array");
  }
  for (const JsonValue& worker : workers->array) {
    for (const char* key : {"lane", "busy_ms"}) {
      if (Status s = NumberMember(worker, key, nullptr); !s.ok()) {
        return s;
      }
    }
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace depsurf
