#include "src/obs/diagnostics.h"

#include <algorithm>
#include <tuple>

#include "src/obs/run_report.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

DiagnosticsCollector& DiagnosticsCollector::Global() {
  static DiagnosticsCollector* collector = new DiagnosticsCollector();
  return *collector;
}

void DiagnosticsCollector::Add(const DiagnosticEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(entry);
}

void DiagnosticsCollector::AddAll(const DiagnosticLedger& ledger) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.insert(entries_.end(), ledger.entries().begin(), ledger.entries().end());
}

std::vector<DiagnosticEntry> DiagnosticsCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

size_t DiagnosticsCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void DiagnosticsCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

bool DiagnosticEntryLess(const DiagnosticEntry& a, const DiagnosticEntry& b) {
  int64_t a_off = a.has_offset ? static_cast<int64_t>(a.offset) : -1;
  int64_t b_off = b.has_offset ? static_cast<int64_t>(b.offset) : -1;
  return std::tie(a.severity, a.subsystem, a.code, a_off, a.message) <
         std::tie(b.severity, b.subsystem, b.code, b_off, b.message);
}

std::string DiagnosticsJson(std::vector<DiagnosticEntry> entries) {
  std::sort(entries.begin(), entries.end(), DiagnosticEntryLess);
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const DiagnosticEntry& e = entries[i];
    if (i != 0) {
      out += ", ";
    }
    out += StrFormat(
        "{\"severity\": \"%s\", \"subsystem\": \"%s\", \"code\": \"%s\", "
        "\"offset\": %lld, \"message\": \"%s\"}",
        DiagSeverityName(e.severity), DiagSubsystemName(e.subsystem),
        ErrorCodeName(e.code),
        e.has_offset ? static_cast<long long>(e.offset) : -1LL,
        JsonEscape(e.message).c_str());
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace depsurf
