// Perf regression gate: diffs two stage-timing reports and classifies every
// stage as improved / flat / regressed, with a noise floor so sub-
// millisecond stages cannot trip the gate. This is what turns the
// BENCH_<name>.json trajectory files into an enforceable check: run the
// suite on the base commit, run it on the head, and `depsurf perf compare`
// exits nonzero when a stage slowed beyond the threshold.
//
// Inputs may be depsurf.bench_report.v1 documents (stage name -> seconds)
// or run_report.v1 / run_report_agg.v1 documents (each distinct root-span
// name contributes its summed dur_ns), so dataset-build aggregates gate the
// same way benches do.
//
// Comparison output schema (depsurf.perf_compare.v1):
//   {
//     "schema": "depsurf.perf_compare.v1",
//     "max_regress": 0.15, "noise_floor_seconds": 0.005,
//     "improved": N, "flat": N, "regressed": N, "added": N, "removed": N,
//     "stages": [ {"name": "...", "class": "flat",
//                  "base_seconds": 1.2, "head_seconds": 1.3,
//                  "delta_pct": 8.3, "floor_seconds": 0.0}, ... ]
//   }
//
// floor_seconds is the adaptive per-stage delta floor applied from run
// history (perf_history.h), 0 when the gate ran without one.
#ifndef DEPSURF_SRC_OBS_PERF_GATE_H_
#define DEPSURF_SRC_OBS_PERF_GATE_H_

#include <map>
#include <string>
#include <vector>

#include "src/obs/json_lint.h"
#include "src/util/error.h"

namespace depsurf {
namespace obs {

inline constexpr char kPerfCompareSchema[] = "depsurf.perf_compare.v1";

struct StageTiming {
  std::string name;
  double seconds = 0;
  uint64_t items = 0;
};

enum class StageClass : uint8_t {
  kImproved,   // head faster than base beyond the threshold
  kFlat,       // within the threshold (or both under the noise floor)
  kRegressed,  // head slower than base beyond threshold and noise floor
  kAdded,      // stage only in head
  kRemoved,    // stage only in base
};

const char* StageClassName(StageClass c);

struct StageDelta {
  std::string name;
  StageClass cls = StageClass::kFlat;
  double base_seconds = 0;
  double head_seconds = 0;
  double delta_pct = 0;  // (head - base) / base * 100; 0 for added/removed
  // The adaptive per-stage delta floor applied to this stage (0 when the
  // gate ran without one).
  double floor_seconds = 0;
};

struct PerfGateOptions {
  // A stage regresses when head > base * (1 + max_regress) — and improves
  // when base > head * (1 + max_regress), so the gate is symmetric.
  double max_regress = 0.15;
  // Stages where both sides are below the floor are flat regardless of
  // ratio: a 2x blowup of a 100 us stage is scheduler noise, not a
  // regression.
  double noise_floor_seconds = 0.005;
  // Adaptive per-stage delta floors from run history (see
  // perf_history.h::AdaptiveStageFloors): a stage whose |head - base| is at
  // or below its floor is flat regardless of ratio, because the observed
  // run-to-run spread of that stage on this host covers the delta. Stages
  // absent from the map fall back to the two rules above.
  std::map<std::string, double> stage_delta_floors_seconds;
};

struct PerfComparison {
  std::vector<StageDelta> stages;  // base order, then head-only additions
  size_t regressed = 0;
  size_t improved = 0;

  bool gate_failed() const { return regressed > 0; }
};

// Extracts stage timings from a parsed bench report or run report
// (aggregate or single); errors on any other document.
Result<std::vector<StageTiming>> LoadStageTimings(const JsonValue& doc);

PerfComparison ComparePerf(const std::vector<StageTiming>& base,
                           const std::vector<StageTiming>& head,
                           const PerfGateOptions& options = {});

// Human table / machine JSON renderings of a comparison. The JSON form
// passes `depsurf metrics lint --kind=perf`.
std::string PerfComparisonText(const PerfComparison& comparison);
std::string PerfComparisonJson(const PerfComparison& comparison,
                               const PerfGateOptions& options);

// Validates a depsurf.bench_report.v1 document (what every bench binary
// emits): schema marker, bench name, stages with names and nonnegative
// numeric seconds/items.
Status ValidateBenchReport(std::string_view json);

// Validates a depsurf.perf_compare.v1 document.
Status ValidatePerfCompare(std::string_view json);

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_PERF_GATE_H_
