// Process-wide sink for salvage diagnostics, mirroring MetricsRegistry:
// decoders record what they survived into the surface's DiagnosticLedger,
// and extraction publishes those entries here so run reports can carry a
// "diagnostics" section per image.
//
// Serialized entry shape (inside depsurf.run_report.v1):
//   {"severity": "degraded", "subsystem": "dwarf", "code": "malformed_data",
//    "offset": 452, "message": "..."}
// `offset` is -1 when the fault location is unknown. Entries are sorted on
// serialization so reports stay byte-deterministic across thread schedules.
#ifndef DEPSURF_SRC_OBS_DIAGNOSTICS_H_
#define DEPSURF_SRC_OBS_DIAGNOSTICS_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/util/diagnostic_ledger.h"

namespace depsurf {
namespace obs {

// Standalone diagnostics document, emitted by `depsurf doctor --json`.
inline constexpr char kDiagnosticsSchema[] = "depsurf.diagnostics.v1";

class DiagnosticsCollector {
 public:
  // The process-wide collector reported by run reports.
  static DiagnosticsCollector& Global();

  void Add(const DiagnosticEntry& entry);
  void AddAll(const DiagnosticLedger& ledger);

  std::vector<DiagnosticEntry> Snapshot() const;
  size_t size() const;
  // Forgets everything (per-image isolation in study builds, tests).
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<DiagnosticEntry> entries_;
};

// Serializes entries as a JSON array (sorted, deterministic).
std::string DiagnosticsJson(std::vector<DiagnosticEntry> entries);

// Stable ordering used by DiagnosticsJson and the report merger.
bool DiagnosticEntryLess(const DiagnosticEntry& a, const DiagnosticEntry& b);

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_DIAGNOSTICS_H_
