// Thread-local allocation accounting for resource-attributed spans.
//
// When the build is configured with -DDEPSURF_PROFILE_ALLOC=ON, this TU
// replaces the global operator new/new[] (and the matching deletes) with
// thin wrappers that bump two thread-local counters before delegating to
// malloc/free. ScopedSpan reads the counters at open and close and charges
// the delta to the span, so a profile can say "surface.extract allocated
// 1.2 MB across 4k calls" per image.
//
// The hooks are compiled out entirely by default: ThreadAllocStats() then
// returns zeros and no operator new replacement exists, so release builds
// pay nothing. Counters are monotonic and per-thread; allocations made by
// a worker on behalf of a span opened on another thread are not charged to
// it (same rule as the CLOCK_THREAD_CPUTIME_ID capture in span.cc).
#ifndef DEPSURF_SRC_OBS_ALLOC_HOOKS_H_
#define DEPSURF_SRC_OBS_ALLOC_HOOKS_H_

#include <cstdint>

namespace depsurf {
namespace obs {

struct AllocStats {
  uint64_t count = 0;  // operator new / new[] calls
  uint64_t bytes = 0;  // requested bytes (not allocator overhead)
};

// Allocations charged to the calling thread since it started. Monotonic;
// subtract two readings to attribute an interval. Always {0, 0} when the
// hooks are compiled out.
AllocStats ThreadAllocStats();

// True when this binary carries the operator new/delete replacements
// (-DDEPSURF_PROFILE_ALLOC=ON at configure time).
bool AllocHooksEnabled();

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_ALLOC_HOOKS_H_
