// obs::Context: an explicit bundle of the three observability sinks —
// MetricsRegistry, SpanCollector, DiagnosticsCollector — so collection can
// be scoped to a unit of work (one image of a corpus build) instead of
// mutating the process-wide singletons.
//
// Resolution model: every instrumented call site asks Context::Current()
// for its sinks. Current() walks a thread-local stack of active contexts;
// when the stack is empty it falls back to Context::Root(), which wraps the
// Global() singletons. Code that never pushes a context therefore behaves
// exactly as before — the globals remain the default root context — while
// Study::BuildDatasetWithReports gives each in-flight image its own Context
// and serializes that image's run report from it, which is what lets
// report-mode corpus builds run in the same bounded concurrent window as
// plain builds.
//
// Thread-locality rules (see docs/OBSERVABILITY.md):
//   - The stack is per thread. Pushing a context on one thread does not
//     affect work running on another; a worker that should collect into a
//     context must push it on the worker thread (ScopedContext inside the
//     task body).
//   - A ScopedSpan resolves its collector when it *finishes*, so a span
//     must close under the same context it opened under (RAII scopes
//     nested inside a ScopedContext guarantee this).
//   - A Context outlives every thread collecting into it: join or .get()
//     the workers before serializing the context.
#ifndef DEPSURF_SRC_OBS_CONTEXT_H_
#define DEPSURF_SRC_OBS_CONTEXT_H_

#include <memory>

#include "src/obs/diagnostics.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace depsurf {
namespace obs {

class Context {
 public:
  // A fresh, isolated context with empty collectors. Inherits the live
  // trace flag from the context current on the constructing thread, so
  // `--trace` keeps streaming spans from workers running under per-image
  // contexts.
  Context();
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // The default context: borrows the process-wide Global() singletons.
  // Never destroyed.
  static Context& Root();

  // Top of the calling thread's context stack, else Root().
  static Context& Current();

  MetricsRegistry& metrics() { return *metrics_; }
  SpanCollector& spans() { return *spans_; }
  DiagnosticsCollector& diagnostics() { return *diagnostics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }
  const SpanCollector& spans() const { return *spans_; }
  const DiagnosticsCollector& diagnostics() const { return *diagnostics_; }

  bool is_root() const { return owned_metrics_ == nullptr; }

 private:
  struct RootTag {};
  explicit Context(RootTag);

  // Owned for fresh contexts; null for the root, which borrows the globals
  // (intentionally leaked singletons, see MetricsRegistry::Global).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  std::unique_ptr<SpanCollector> owned_spans_;
  std::unique_ptr<DiagnosticsCollector> owned_diagnostics_;
  MetricsRegistry* metrics_;
  SpanCollector* spans_;
  DiagnosticsCollector* diagnostics_;
};

// RAII push/pop of a context on the calling thread's stack. Scopes nest:
// the previous top is restored on destruction.
class ScopedContext {
 public:
  explicit ScopedContext(Context& context);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Context* previous_;
};

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_CONTEXT_H_
