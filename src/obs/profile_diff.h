// Differential profile attribution: diffs two depsurf.profile.v1 documents
// so a tripped perf gate names not just the stage that regressed but the
// span names and critical-path chain behind it.
//
// Schema (depsurf.profile_diff.v1):
//   {
//     "schema": "depsurf.profile_diff.v1",
//     "base_span_nodes": N, "head_span_nodes": N,
//     "names": [ {"name": "...", "in_base": true, "in_head": true,
//                 "base":  {"count": N, "dur_ns": N, "self_ns": N,
//                           "cpu_ns": N, "alloc_count": N, "alloc_bytes": N},
//                 "head":  {...same keys...},
//                 "delta": {...same keys, signed head-minus-base...}}, ... ],
//     "top_movers": [ ...the <= N rows with the largest |self_ns| delta,
//                     largest first... ],
//     "critical_path": {
//       "base":  {"wall_ns": N, "serial_self_ns": N, "serial_share_pct": X,
//                 "steps": [ {"name", "dur_ns", "self_ns"}, ... ]},
//       "head":  {...},
//       "delta": {"wall_ns": D, "serial_self_ns": D}}
//   }
//
// Determinism: "names" is the sorted union of both profiles' name tables,
// so row order never depends on timing. The delta *values* do, as does the
// order of "top_movers" — CanonicalMaskedJson zeroes every base/head/delta
// column (they reuse the masked dur_ns/self_ns/cpu_ns/alloc_* keys) and
// masks "top_movers" and "critical_path" wholesale, so masked diffs of
// structurally identical runs are byte-identical across --jobs settings.
#ifndef DEPSURF_SRC_OBS_PROFILE_DIFF_H_
#define DEPSURF_SRC_OBS_PROFILE_DIFF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/profile.h"
#include "src/util/error.h"

namespace depsurf {
namespace obs {

inline constexpr char kProfileDiffSchema[] = "depsurf.profile_diff.v1";

struct ProfileDiffRow {
  std::string name;
  bool in_base = false;
  bool in_head = false;
  ProfileNameRow base;  // zeroed when !in_base
  ProfileNameRow head;  // zeroed when !in_head
  // Signed head-minus-base deltas for every aggregate column.
  int64_t count_delta = 0;
  int64_t dur_delta_ns = 0;
  int64_t self_delta_ns = 0;
  int64_t cpu_delta_ns = 0;
  int64_t alloc_count_delta = 0;
  int64_t alloc_bytes_delta = 0;
};

struct ProfileDiff {
  uint64_t base_span_nodes = 0;
  uint64_t head_span_nodes = 0;
  std::vector<ProfileDiffRow> names;  // sorted union of both name tables
  // Indices into `names`, ranked by |self_delta_ns| descending (ties by
  // name), rows with a zero self delta excluded, capped at the top_n passed
  // to DiffProfiles.
  std::vector<size_t> top_movers;
  // Critical-path summary of each side plus the headline deltas.
  uint64_t base_wall_ns = 0;
  uint64_t head_wall_ns = 0;
  uint64_t base_serial_self_ns = 0;
  uint64_t head_serial_self_ns = 0;
  double base_serial_share_pct = 0;
  double head_serial_share_pct = 0;
  std::vector<CriticalPathStep> base_path;
  std::vector<CriticalPathStep> head_path;

  int64_t wall_delta_ns() const {
    return static_cast<int64_t>(head_wall_ns) - static_cast<int64_t>(base_wall_ns);
  }
  int64_t serial_self_delta_ns() const {
    return static_cast<int64_t>(head_serial_self_ns) -
           static_cast<int64_t>(base_serial_self_ns);
  }
};

// Diffs two profiles (base -> head). top_n caps the top_movers list.
ProfileDiff DiffProfiles(const Profile& base, const Profile& head, size_t top_n = 10);

// Parses a depsurf.profile.v1 document back into a Profile (the inverse of
// ProfileJson), so `perf diff` and history summaries can consume the files
// `study build --profile-out` / bench_perf already emit.
Result<Profile> ParseProfileDoc(std::string_view json);

// Deterministic JSON (see schema above) / human-readable movers table.
std::string ProfileDiffJson(const ProfileDiff& diff);
std::string ProfileDiffText(const ProfileDiff& diff);

// Validates a depsurf.profile_diff.v1 document
// (`metrics lint --kind=profile_diff`). Delta columns may be negative;
// base/head columns must not.
Status ValidateProfileDiffDoc(std::string_view json);

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_PROFILE_DIFF_H_
