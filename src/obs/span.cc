#include "src/obs/span.h"

#include "src/obs/diag.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

namespace {

thread_local ScopedSpan* tls_current_span = nullptr;

}  // namespace

SpanCollector& SpanCollector::Global() {
  static SpanCollector* collector = new SpanCollector;
  return *collector;
}

void SpanCollector::AddRoot(SpanNode node) {
  std::lock_guard<std::mutex> lock(mu_);
  roots_.push_back(std::move(node));
}

std::vector<SpanNode> SpanCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return roots_;
}

void SpanCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  roots_.clear();
}

ScopedSpan::ScopedSpan(std::string name)
    : parent_(tls_current_span), start_(std::chrono::steady_clock::now()) {
  node_.name = std::move(name);
  tls_current_span = this;
}

ScopedSpan::~ScopedSpan() {
  node_.dur_ns = static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           std::chrono::steady_clock::now() - start_)
                                           .count());
  SpanCollector& collector = SpanCollector::Global();
  if (collector.live_trace()) {
    std::string line(static_cast<size_t>(depth()) * 2, ' ');
    line += node_.name;
    line += StrFormat(" %.3f ms", static_cast<double>(node_.dur_ns) / 1e6);
    for (const auto& [key, value] : node_.attrs) {
      line += " " + key + "=" + value;
    }
    Diag(Severity::kTrace, line);
  }
  tls_current_span = parent_;
  if (parent_ != nullptr) {
    parent_->node_.children.push_back(std::move(node_));
  } else {
    collector.AddRoot(std::move(node_));
  }
}

void ScopedSpan::AddAttr(std::string key, std::string value) {
  node_.attrs.emplace_back(std::move(key), std::move(value));
}

void ScopedSpan::AddAttr(std::string key, const char* value) {
  node_.attrs.emplace_back(std::move(key), std::string(value));
}

void ScopedSpan::AddAttr(std::string key, uint64_t value) {
  node_.attrs.emplace_back(std::move(key),
                           StrFormat("%llu", static_cast<unsigned long long>(value)));
}

int ScopedSpan::depth() const {
  int depth = 0;
  for (const ScopedSpan* span = parent_; span != nullptr; span = span->parent_) {
    ++depth;
  }
  return depth;
}

}  // namespace obs
}  // namespace depsurf
