#include "src/obs/span.h"

#include <ctime>

#include "src/obs/context.h"
#include "src/obs/diag.h"
#include "src/obs/metrics.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

namespace {

thread_local ScopedSpan* tls_current_span = nullptr;

// CPU time consumed by the calling thread, for per-span attribution.
uint64_t ThreadCpuNs() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
    return 0;
  }
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull + static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

uint32_t ThreadTraceId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int CompareSpanNodesMasked(const SpanNode& a, const SpanNode& b) {
  if (int c = a.name.compare(b.name); c != 0) {
    return c;
  }
  size_t attrs = std::min(a.attrs.size(), b.attrs.size());
  for (size_t i = 0; i < attrs; ++i) {
    if (int c = a.attrs[i].first.compare(b.attrs[i].first); c != 0) {
      return c;
    }
    if (!IsTimingMetricName(a.attrs[i].first)) {
      if (int c = a.attrs[i].second.compare(b.attrs[i].second); c != 0) {
        return c;
      }
    }
  }
  if (a.attrs.size() != b.attrs.size()) {
    return a.attrs.size() < b.attrs.size() ? -1 : 1;
  }
  size_t children = std::min(a.children.size(), b.children.size());
  for (size_t i = 0; i < children; ++i) {
    if (int c = CompareSpanNodesMasked(a.children[i], b.children[i]); c != 0) {
      return c;
    }
  }
  if (a.children.size() != b.children.size()) {
    return a.children.size() < b.children.size() ? -1 : 1;
  }
  return 0;
}

SpanCollector& SpanCollector::Global() {
  static SpanCollector* collector = new SpanCollector;
  return *collector;
}

void SpanCollector::AddRoot(SpanNode node) {
  std::lock_guard<std::mutex> lock(mu_);
  roots_.push_back(std::move(node));
}

std::vector<SpanNode> SpanCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return roots_;
}

void SpanCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  roots_.clear();
}

ScopedSpan::ScopedSpan(std::string name)
    : parent_(tls_current_span),
      start_(std::chrono::steady_clock::now()),
      cpu_start_ns_(ThreadCpuNs()) {
  node_.name = std::move(name);
  node_.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start_.time_since_epoch()).count());
  node_.tid = ThreadTraceId();
#ifdef DEPSURF_PROFILE_ALLOC
  alloc_start_ = ThreadAllocStats();
#endif
  tls_current_span = this;
}

ScopedSpan::~ScopedSpan() {
  node_.dur_ns = static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           std::chrono::steady_clock::now() - start_)
                                           .count());
  // The thread CPU clock and the monotonic clock tick at different
  // granularities; clamp so cpu_ns <= dur_ns is a hard invariant for
  // single-threaded spans.
  const uint64_t cpu_now = ThreadCpuNs();
  node_.cpu_ns = cpu_now > cpu_start_ns_ ? cpu_now - cpu_start_ns_ : 0;
  if (node_.cpu_ns > node_.dur_ns) {
    node_.cpu_ns = node_.dur_ns;
  }
#ifdef DEPSURF_PROFILE_ALLOC
  const AllocStats alloc_now = ThreadAllocStats();
  node_.alloc_count = alloc_now.count - alloc_start_.count;
  node_.alloc_bytes = alloc_now.bytes - alloc_start_.bytes;
#endif
  // Resolved at finish time: a span belongs to whatever context its thread
  // is running under (per-image contexts in report-mode corpus builds, the
  // root/global collector everywhere else).
  SpanCollector& collector = Context::Current().spans();
  if (collector.live_trace()) {
    std::string line(static_cast<size_t>(depth()) * 2, ' ');
    line += node_.name;
    line += StrFormat(" %.3f ms", static_cast<double>(node_.dur_ns) / 1e6);
    for (const auto& [key, value] : node_.attrs) {
      line += " " + key + "=" + value;
    }
    Diag(Severity::kTrace, line);
  }
  tls_current_span = parent_;
  if (parent_ != nullptr) {
    parent_->node_.children.push_back(std::move(node_));
  } else {
    collector.AddRoot(std::move(node_));
  }
}

void ScopedSpan::AddAttr(std::string key, std::string value) {
  node_.attrs.emplace_back(std::move(key), std::move(value));
}

void ScopedSpan::AddAttr(std::string key, const char* value) {
  node_.attrs.emplace_back(std::move(key), std::string(value));
}

void ScopedSpan::AddAttr(std::string key, uint64_t value) {
  node_.attrs.emplace_back(std::move(key),
                           StrFormat("%llu", static_cast<unsigned long long>(value)));
}

int ScopedSpan::depth() const {
  int depth = 0;
  for (const ScopedSpan* span = parent_; span != nullptr; span = span->parent_) {
    ++depth;
  }
  return depth;
}

}  // namespace obs
}  // namespace depsurf
