// Cross-run perf intelligence: an append-only NDJSON store of bench runs
// plus trend analytics over it. `perf compare` is pairwise by construction;
// the history store gives the pipeline longitudinal memory, so the gate can
// judge a run against the *distribution* of prior runs on comparable
// hardware instead of a hardcoded noise floor.
//
// Record schema (depsurf.perf_history.v1, one compact JSON object per line):
//   {
//     "schema": "depsurf.perf_history.v1",
//     "label": "pr-123",                      // --label / $DEPSURF_BUILD_LABEL
//     "recorded_unix_ms": 1754700000000,      // injected by the CLI, never
//                                             //   read by library code
//     "host": {"cpu_model": "...", "cores": 8, "page_size": 4096},
//     "stages": [ {"name": "BM_ExtractSurface", "wall_seconds": 1.23,
//                  "items": 5}, ... ],        // sorted by name
//     "profile": {"span_nodes": N, "serial_share_pct": X.XX,
//                 "critical_path": {"wall_ns": N, "serial_self_ns": N,
//                                   "steps": [ {"name": "...", "dur_ns": N,
//                                               "self_ns": N}, ... ]}}
//                                             // or null without a profile
//   }
//
// Trend schema (depsurf.perf_trend.v1): per-stage robust baselines
// (median/MAD over the last K host-comparable records), change-point flags,
// and the adaptive per-stage noise floors `perf compare --history=FILE`
// consumes in place of the hardcoded 0.005 default.
//
// Masking: `recorded_unix_ms`, `wall_seconds`, `serial_share_pct`, and the
// whole `critical_path` section are timing-derived and zeroed by
// CanonicalMaskedJson; everything else (labels, host fingerprint, stage
// names, item counts, span_nodes) is deterministic, so masked records from
// builds at any --jobs width are byte-identical.
#ifndef DEPSURF_SRC_OBS_PERF_HISTORY_H_
#define DEPSURF_SRC_OBS_PERF_HISTORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/json_lint.h"
#include "src/obs/perf_gate.h"
#include "src/obs/profile.h"
#include "src/util/error.h"

namespace depsurf {
namespace obs {

inline constexpr char kPerfHistorySchema[] = "depsurf.perf_history.v1";
inline constexpr char kPerfTrendSchema[] = "depsurf.perf_trend.v1";

// Hardware identity of the recording host. Records are only comparable for
// trend purposes when their fingerprints match: a 2-core CI runner and a
// 64-core workstation do not share a noise distribution.
struct HostFingerprint {
  std::string cpu_model;  // first "model name" of /proc/cpuinfo, or "unknown"
  int64_t cores = 0;      // online processor count
  int64_t page_size = 0;  // bytes

  // Comparability key: "cpu_model/cores/page_size".
  std::string Id() const;
};

// Reads the current host's fingerprint (/proc/cpuinfo + sysconf). Degrades
// to cpu_model "unknown" where /proc is absent; never reads a wall clock.
HostFingerprint CurrentHostFingerprint();

struct HistoryStage {
  std::string name;
  double wall_seconds = 0;
  uint64_t items = 0;
};

// Critical-path summary lifted from the run's depsurf.profile.v1 document,
// so a later regression can be attributed without re-opening the profile.
struct HistoryProfileSummary {
  bool present = false;
  uint64_t span_nodes = 0;
  uint64_t wall_ns = 0;
  uint64_t serial_self_ns = 0;
  double serial_share_pct = 0;
  std::vector<CriticalPathStep> critical_path;
};

struct HistoryRecord {
  std::string label;
  // Milliseconds since the Unix epoch, injected by the caller (the CLI
  // reads the system clock; library code never does).
  int64_t recorded_unix_ms = 0;
  HostFingerprint host;
  std::vector<HistoryStage> stages;  // kept sorted by name
  HistoryProfileSummary profile;
};

// Folds stage timings (from LoadStageTimings over a bench or run report)
// into the record, summing seconds/items for duplicate names and keeping
// `stages` sorted by name.
void AddStageTimings(HistoryRecord& record, const std::vector<StageTiming>& timings);

// Copies a profile's attribution summary into the record.
void SetProfileSummary(HistoryRecord& record, const Profile& profile);

// One compact NDJSON line (no interior newlines), trailing "\n" included.
std::string HistoryRecordJson(const HistoryRecord& record);

// Parses one record object; errors name the first malformed member.
Result<HistoryRecord> ParseHistoryRecord(const JsonValue& doc);

// Parses a whole NDJSON store, in file order (blank lines skipped). Errors
// are prefixed with the 1-based line number.
Result<std::vector<HistoryRecord>> ParseHistoryNdjson(std::string_view text);

// Validates an NDJSON store (`metrics lint --kind=history`). On success
// *records_out (when non-null) receives the record count.
Status ValidateHistoryNdjson(std::string_view text, size_t* records_out = nullptr);

// Appends one record line to `path`, creating the file when absent.
Status AppendHistoryRecord(const std::string& path, const HistoryRecord& record);

struct TrendOptions {
  // Number of most-recent host-comparable records the baseline uses
  // (0 = all of them).
  size_t window = 8;
  // Adaptive floors never drop below this — the old hardcoded gate floor
  // becomes the backstop for stages with no usable spread estimate.
  double min_floor_seconds = 0.005;
  // A stage is flagged as a change point when its latest sample deviates
  // from the baseline median by more than this many robust sigmas.
  double mad_sigmas = 4.0;
  // The adaptive noise floor is floor_sigmas robust sigmas of the stage's
  // observed run-to-run spread.
  double floor_sigmas = 3.0;
};

struct StageTrend {
  std::string name;
  size_t samples = 0;        // records in the window carrying this stage
  double median_seconds = 0; // baseline median (latest excluded when >= 3)
  double mad_seconds = 0;    // baseline median absolute deviation
  double latest_seconds = 0;
  // max(min_floor, floor_sigmas * 1.4826 * MAD over the whole window):
  // deltas smaller than this are indistinguishable from observed noise.
  double floor_seconds = 0;
  double deviation_sigmas = 0;  // (latest - median) in robust sigmas
  bool change_point = false;    // |deviation| > mad_sigmas with >= 4 samples
};

struct TrendReport {
  std::string host_id;
  size_t records = 0;     // records parsed from the store
  size_t comparable = 0;  // records whose host fingerprint matches
  size_t window = 0;      // records the baselines actually used
  TrendOptions options;   // the thresholds the analysis ran with
  std::vector<StageTrend> stages;  // sorted by name
};

// Robust per-stage baselines over the last `options.window` records whose
// host fingerprint matches `host`. Records are taken in store order
// (append-only, so file order is chronological).
TrendReport AnalyzeTrend(const std::vector<HistoryRecord>& records,
                         const HostFingerprint& host, const TrendOptions& options = {});

// Stage name -> adaptive delta floor, ready for
// PerfGateOptions::stage_delta_floors_seconds.
std::map<std::string, double> AdaptiveStageFloors(const TrendReport& report);

// depsurf.perf_trend.v1 document / human table.
std::string TrendReportJson(const TrendReport& report);
std::string TrendReportText(const TrendReport& report);

// Validates a depsurf.perf_trend.v1 document (`metrics lint --kind=trend`).
Status ValidateTrendDoc(std::string_view json);

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_PERF_HISTORY_H_
