#include "src/obs/perf_history.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <fstream>

#include "src/obs/run_report.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

namespace {

std::string U64(uint64_t v) { return StrFormat("%llu", (unsigned long long)v); }
std::string I64(int64_t v) { return StrFormat("%lld", (long long)v); }

// Shortest round-trippable form for seconds values ("1.5", not
// "1.500000000"), so history lines stay compact.
std::string Seconds(double v) { return StrFormat("%.9g", v); }

double Median(std::vector<double> values) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double MedianAbsDev(const std::vector<double>& values) {
  if (values.empty()) {
    return 0;
  }
  const double median = Median(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) {
    deviations.push_back(std::fabs(v - median));
  }
  return Median(std::move(deviations));
}

Status StringMember(const JsonValue& object, const char* key, std::string* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kString) {
    return Status(ErrorCode::kMalformedData, StrFormat("missing string \"%s\"", key));
  }
  *out = value->string;
  return Status::Ok();
}

Status NumberMember(const JsonValue& object, const char* key, double* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kNumber ||
      !std::isfinite(value->number) || value->number < 0) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or negative number \"%s\"", key));
  }
  if (out != nullptr) {
    *out = value->number;
  }
  return Status::Ok();
}

Result<std::vector<CriticalPathStep>> ParsePathSteps(const JsonValue& path) {
  std::vector<CriticalPathStep> steps;
  const JsonValue* array = path.Find("steps");
  if (array == nullptr || array->kind != JsonValue::Kind::kArray) {
    return Error(ErrorCode::kMalformedData, "critical_path without a \"steps\" array");
  }
  for (const JsonValue& entry : array->array) {
    CriticalPathStep step;
    if (Status s = StringMember(entry, "name", &step.name); !s.ok()) {
      return Error(ErrorCode::kMalformedData, "critical_path step: " + s.error().message());
    }
    double dur = 0;
    double self = 0;
    if (Status s = NumberMember(entry, "dur_ns", &dur); !s.ok()) {
      return Error(ErrorCode::kMalformedData, "critical_path step: " + s.error().message());
    }
    if (Status s = NumberMember(entry, "self_ns", &self); !s.ok()) {
      return Error(ErrorCode::kMalformedData, "critical_path step: " + s.error().message());
    }
    step.dur_ns = static_cast<uint64_t>(dur);
    step.self_ns = static_cast<uint64_t>(self);
    steps.push_back(std::move(step));
  }
  return steps;
}

}  // namespace

std::string HostFingerprint::Id() const {
  return cpu_model + "/" + I64(cores) + "/" + I64(page_size);
}

HostFingerprint CurrentHostFingerprint() {
  HostFingerprint host;
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (cpuinfo && std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      size_t colon = line.find(':');
      if (colon != std::string::npos) {
        size_t start = line.find_first_not_of(" \t", colon + 1);
        if (start != std::string::npos) {
          host.cpu_model = line.substr(start);
        }
      }
      break;
    }
  }
  if (host.cpu_model.empty()) {
    host.cpu_model = "unknown";
  }
  long cores = sysconf(_SC_NPROCESSORS_ONLN);
  long page = sysconf(_SC_PAGESIZE);
  host.cores = cores > 0 ? cores : 0;
  host.page_size = page > 0 ? page : 0;
  return host;
}

void AddStageTimings(HistoryRecord& record, const std::vector<StageTiming>& timings) {
  for (const StageTiming& timing : timings) {
    auto it = std::find_if(record.stages.begin(), record.stages.end(),
                           [&](const HistoryStage& s) { return s.name == timing.name; });
    if (it == record.stages.end()) {
      record.stages.push_back(HistoryStage{timing.name, timing.seconds, timing.items});
    } else {
      it->wall_seconds += timing.seconds;
      it->items += timing.items;
    }
  }
  std::sort(record.stages.begin(), record.stages.end(),
            [](const HistoryStage& a, const HistoryStage& b) { return a.name < b.name; });
}

void SetProfileSummary(HistoryRecord& record, const Profile& profile) {
  record.profile.present = true;
  record.profile.span_nodes = profile.span_nodes;
  record.profile.wall_ns = profile.wall_ns;
  record.profile.serial_self_ns = profile.serial_self_ns;
  record.profile.serial_share_pct = SerialSharePct(profile);
  record.profile.critical_path = profile.critical_path;
}

std::string HistoryRecordJson(const HistoryRecord& record) {
  std::string out = "{\"schema\":\"";
  out += kPerfHistorySchema;
  out += "\",\"label\":\"" + JsonEscape(record.label) + "\"";
  out += ",\"recorded_unix_ms\":" + I64(record.recorded_unix_ms);
  out += ",\"host\":{\"cpu_model\":\"" + JsonEscape(record.host.cpu_model) + "\"";
  out += ",\"cores\":" + I64(record.host.cores);
  out += ",\"page_size\":" + I64(record.host.page_size) + "}";
  out += ",\"stages\":[";
  for (size_t i = 0; i < record.stages.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    const HistoryStage& stage = record.stages[i];
    out += "{\"name\":\"" + JsonEscape(stage.name) + "\"";
    out += ",\"wall_seconds\":" + Seconds(stage.wall_seconds);
    out += ",\"items\":" + U64(stage.items) + "}";
  }
  out += "]";
  if (record.profile.present) {
    out += ",\"profile\":{\"span_nodes\":" + U64(record.profile.span_nodes);
    out += StrFormat(",\"serial_share_pct\":%.2f", record.profile.serial_share_pct);
    out += ",\"critical_path\":{\"wall_ns\":" + U64(record.profile.wall_ns);
    out += ",\"serial_self_ns\":" + U64(record.profile.serial_self_ns);
    out += ",\"steps\":[";
    for (size_t i = 0; i < record.profile.critical_path.size(); ++i) {
      if (i != 0) {
        out += ",";
      }
      const CriticalPathStep& step = record.profile.critical_path[i];
      out += "{\"name\":\"" + JsonEscape(step.name) + "\"";
      out += ",\"dur_ns\":" + U64(step.dur_ns);
      out += ",\"self_ns\":" + U64(step.self_ns) + "}";
    }
    out += "]}}";
  } else {
    out += ",\"profile\":null";
  }
  out += "}\n";
  return out;
}

Result<HistoryRecord> ParseHistoryRecord(const JsonValue& doc) {
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kPerfHistorySchema) {
    return Error(ErrorCode::kMalformedData,
                 StrFormat("missing or wrong schema marker (want %s)", kPerfHistorySchema));
  }
  HistoryRecord record;
  if (Status s = StringMember(doc, "label", &record.label); !s.ok()) {
    return s.TakeError();
  }
  const JsonValue* recorded = doc.Find("recorded_unix_ms");
  if (recorded == nullptr || recorded->kind != JsonValue::Kind::kNumber ||
      !std::isfinite(recorded->number) || recorded->number < 0) {
    return Error(ErrorCode::kMalformedData, "missing or negative recorded_unix_ms");
  }
  record.recorded_unix_ms = static_cast<int64_t>(recorded->number);
  const JsonValue* host = doc.Find("host");
  if (host == nullptr || host->kind != JsonValue::Kind::kObject) {
    return Error(ErrorCode::kMalformedData, "missing \"host\" object");
  }
  if (Status s = StringMember(*host, "cpu_model", &record.host.cpu_model); !s.ok()) {
    return Error(ErrorCode::kMalformedData, "host: " + s.error().message());
  }
  double cores = 0;
  double page_size = 0;
  if (Status s = NumberMember(*host, "cores", &cores); !s.ok()) {
    return Error(ErrorCode::kMalformedData, "host: " + s.error().message());
  }
  if (Status s = NumberMember(*host, "page_size", &page_size); !s.ok()) {
    return Error(ErrorCode::kMalformedData, "host: " + s.error().message());
  }
  record.host.cores = static_cast<int64_t>(cores);
  record.host.page_size = static_cast<int64_t>(page_size);
  const JsonValue* stages = doc.Find("stages");
  if (stages == nullptr || stages->kind != JsonValue::Kind::kArray) {
    return Error(ErrorCode::kMalformedData, "missing \"stages\" array");
  }
  for (size_t i = 0; i < stages->array.size(); ++i) {
    const JsonValue& entry = stages->array[i];
    HistoryStage stage;
    if (Status s = StringMember(entry, "name", &stage.name); !s.ok() || stage.name.empty()) {
      return Error(ErrorCode::kMalformedData, StrFormat("stage %zu: missing name", i));
    }
    double items = 0;
    if (Status s = NumberMember(entry, "wall_seconds", &stage.wall_seconds); !s.ok()) {
      return Error(ErrorCode::kMalformedData,
                   StrFormat("stage %s: %s", stage.name.c_str(), s.error().message().c_str()));
    }
    if (Status s = NumberMember(entry, "items", &items); !s.ok()) {
      return Error(ErrorCode::kMalformedData,
                   StrFormat("stage %s: %s", stage.name.c_str(), s.error().message().c_str()));
    }
    stage.items = static_cast<uint64_t>(items);
    record.stages.push_back(std::move(stage));
  }
  const JsonValue* profile = doc.Find("profile");
  if (profile != nullptr && profile->kind == JsonValue::Kind::kObject) {
    record.profile.present = true;
    double nodes = 0;
    if (Status s = NumberMember(*profile, "span_nodes", &nodes); !s.ok()) {
      return Error(ErrorCode::kMalformedData, "profile: " + s.error().message());
    }
    record.profile.span_nodes = static_cast<uint64_t>(nodes);
    if (Status s = NumberMember(*profile, "serial_share_pct", &record.profile.serial_share_pct);
        !s.ok()) {
      return Error(ErrorCode::kMalformedData, "profile: " + s.error().message());
    }
    const JsonValue* path = profile->Find("critical_path");
    if (path == nullptr || path->kind != JsonValue::Kind::kObject) {
      return Error(ErrorCode::kMalformedData, "profile without a \"critical_path\" object");
    }
    double wall = 0;
    double serial_self = 0;
    if (Status s = NumberMember(*path, "wall_ns", &wall); !s.ok()) {
      return Error(ErrorCode::kMalformedData, "critical_path: " + s.error().message());
    }
    if (Status s = NumberMember(*path, "serial_self_ns", &serial_self); !s.ok()) {
      return Error(ErrorCode::kMalformedData, "critical_path: " + s.error().message());
    }
    record.profile.wall_ns = static_cast<uint64_t>(wall);
    record.profile.serial_self_ns = static_cast<uint64_t>(serial_self);
    auto steps = ParsePathSteps(*path);
    if (!steps.ok()) {
      return steps.TakeError();
    }
    record.profile.critical_path = steps.TakeValue();
  } else if (profile != nullptr && profile->kind != JsonValue::Kind::kNull) {
    return Error(ErrorCode::kMalformedData, "\"profile\" must be an object or null");
  }
  return record;
}

Result<std::vector<HistoryRecord>> ParseHistoryNdjson(std::string_view text) {
  std::vector<HistoryRecord> records;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    ++line_no;
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) {
      continue;
    }
    auto parsed = ParseJson(line);
    if (!parsed.ok()) {
      return Error(ErrorCode::kMalformedData,
                   StrFormat("line %zu: %s", line_no, parsed.error().message().c_str()));
    }
    auto record = ParseHistoryRecord(*parsed);
    if (!record.ok()) {
      return Error(ErrorCode::kMalformedData,
                   StrFormat("line %zu: %s", line_no, record.error().message().c_str()));
    }
    records.push_back(record.TakeValue());
  }
  return records;
}

Status ValidateHistoryNdjson(std::string_view text, size_t* records_out) {
  auto records = ParseHistoryNdjson(text);
  if (!records.ok()) {
    return records.TakeError();
  }
  if (records->empty()) {
    return Status(ErrorCode::kMalformedData, "history store holds no records");
  }
  if (records_out != nullptr) {
    *records_out = records->size();
  }
  return Status::Ok();
}

Status AppendHistoryRecord(const std::string& path, const HistoryRecord& record) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot open " + path + " for append");
  }
  std::string line = HistoryRecordJson(record);
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  if (!out) {
    return Status(ErrorCode::kIoError, "short write to " + path);
  }
  return Status::Ok();
}

TrendReport AnalyzeTrend(const std::vector<HistoryRecord>& records,
                         const HostFingerprint& host, const TrendOptions& options) {
  TrendReport report;
  report.host_id = host.Id();
  report.records = records.size();
  report.options = options;
  std::vector<const HistoryRecord*> comparable;
  for (const HistoryRecord& record : records) {
    if (record.host.Id() == report.host_id) {
      comparable.push_back(&record);
    }
  }
  report.comparable = comparable.size();
  const size_t window = options.window == 0
                            ? comparable.size()
                            : std::min(options.window, comparable.size());
  report.window = window;
  // Per-stage sample series in chronological (store) order, over the last
  // `window` comparable records only.
  std::map<std::string, std::vector<double>> series;
  for (size_t i = comparable.size() - window; i < comparable.size(); ++i) {
    for (const HistoryStage& stage : comparable[i]->stages) {
      series[stage.name].push_back(stage.wall_seconds);
    }
  }
  for (auto& [name, values] : series) {
    StageTrend trend;
    trend.name = name;
    trend.samples = values.size();
    trend.latest_seconds = values.back();
    // Judge the latest sample against its own past where the past is big
    // enough to have one; with only 1-2 samples the baseline is everything.
    std::vector<double> baseline = values;
    if (baseline.size() >= 3) {
      baseline.pop_back();
    }
    trend.median_seconds = Median(baseline);
    trend.mad_seconds = MedianAbsDev(baseline);
    // Robust sigma with a floor of 2% of the median: a baseline of exactly
    // repeated values has MAD 0 and would flag any nonzero delta.
    const double sigma = std::max({1.4826 * trend.mad_seconds,
                                   0.02 * trend.median_seconds, 1e-9});
    trend.deviation_sigmas = (trend.latest_seconds - trend.median_seconds) / sigma;
    trend.change_point = values.size() >= 4 &&
                         std::fabs(trend.deviation_sigmas) > options.mad_sigmas;
    // The floor uses the spread of the whole window (latest included): the
    // delta two back-to-back runs can show out of pure noise.
    trend.floor_seconds = std::max(options.min_floor_seconds,
                                   options.floor_sigmas * 1.4826 * MedianAbsDev(values));
    report.stages.push_back(std::move(trend));
  }
  return report;
}

std::map<std::string, double> AdaptiveStageFloors(const TrendReport& report) {
  std::map<std::string, double> floors;
  for (const StageTrend& trend : report.stages) {
    floors.emplace(trend.name, trend.floor_seconds);
  }
  return floors;
}

std::string TrendReportJson(const TrendReport& report) {
  std::string out = "{\n\"schema\": \"";
  out += kPerfTrendSchema;
  out += "\",\n";
  out += "\"host\": \"" + JsonEscape(report.host_id) + "\",\n";
  out += StrFormat("\"records\": %zu, \"comparable\": %zu, \"window\": %zu,\n",
                   report.records, report.comparable, report.window);
  out += StrFormat(
      "\"min_floor_seconds\": %.6f, \"mad_sigmas\": %.2f, \"floor_sigmas\": %.2f,\n",
      report.options.min_floor_seconds, report.options.mad_sigmas,
      report.options.floor_sigmas);
  out += "\"stages\": [";
  for (size_t i = 0; i < report.stages.size(); ++i) {
    const StageTrend& trend = report.stages[i];
    if (i != 0) {
      out += ",";
    }
    out += "\n  {\"name\": \"" + JsonEscape(trend.name) + "\"";
    out += StrFormat(", \"samples\": %zu", trend.samples);
    out += ", \"median_seconds\": " + Seconds(trend.median_seconds);
    out += ", \"mad_seconds\": " + Seconds(trend.mad_seconds);
    out += ", \"latest_seconds\": " + Seconds(trend.latest_seconds);
    out += ", \"floor_seconds\": " + Seconds(trend.floor_seconds);
    out += StrFormat(", \"deviation_sigmas\": %.3f", trend.deviation_sigmas);
    out += StrFormat(", \"change_point\": %s}", trend.change_point ? "true" : "false");
  }
  out += "\n]\n}\n";
  return out;
}

std::string TrendReportText(const TrendReport& report) {
  std::string out = StrFormat("perf trend: host %s\n", report.host_id.c_str());
  out += StrFormat("%zu records, %zu comparable, window %zu\n", report.records,
                   report.comparable, report.window);
  out += StrFormat("  %-36s %7s %12s %12s %12s %12s %8s  %s\n", "stage", "samples",
                   "median (s)", "mad (s)", "latest (s)", "floor (s)", "sigma", "flag");
  for (const StageTrend& trend : report.stages) {
    out += StrFormat("  %-36s %7zu %12.6f %12.6f %12.6f %12.6f %+8.2f  %s\n",
                     trend.name.c_str(), trend.samples, trend.median_seconds,
                     trend.mad_seconds, trend.latest_seconds, trend.floor_seconds,
                     trend.deviation_sigmas, trend.change_point ? "CHANGE-POINT" : "-");
  }
  return out;
}

Status ValidateTrendDoc(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kPerfTrendSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kPerfTrendSchema));
  }
  std::string host;
  if (Status s = StringMember(doc, "host", &host); !s.ok() || host.empty()) {
    return Status(ErrorCode::kMalformedData, "missing \"host\" string");
  }
  for (const char* key : {"records", "comparable", "window", "min_floor_seconds",
                          "mad_sigmas", "floor_sigmas"}) {
    if (Status s = NumberMember(doc, key, nullptr); !s.ok()) {
      return s;
    }
  }
  const JsonValue* stages = doc.Find("stages");
  if (stages == nullptr || stages->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing \"stages\" array");
  }
  for (size_t i = 0; i < stages->array.size(); ++i) {
    const JsonValue& stage = stages->array[i];
    std::string name;
    if (Status s = StringMember(stage, "name", &name); !s.ok() || name.empty()) {
      return Status(ErrorCode::kMalformedData, StrFormat("stage %zu: missing name", i));
    }
    for (const char* key :
         {"samples", "median_seconds", "mad_seconds", "latest_seconds", "floor_seconds"}) {
      if (Status s = NumberMember(stage, key, nullptr); !s.ok()) {
        return Status(ErrorCode::kMalformedData, name + ": " + s.error().message());
      }
    }
    // Deviation is signed; only require a finite number.
    const JsonValue* deviation = stage.Find("deviation_sigmas");
    if (deviation == nullptr || deviation->kind != JsonValue::Kind::kNumber ||
        !std::isfinite(deviation->number)) {
      return Status(ErrorCode::kMalformedData, name + ": missing deviation_sigmas");
    }
    const JsonValue* change_point = stage.Find("change_point");
    if (change_point == nullptr || change_point->kind != JsonValue::Kind::kBool) {
      return Status(ErrorCode::kMalformedData, name + ": missing change_point bool");
    }
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace depsurf
