#include "src/obs/run_report.h"

#include <algorithm>
#include <fstream>

#include "src/obs/context.h"
#include "src/obs/diagnostics.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

namespace {

std::string U64(uint64_t v) { return StrFormat("%llu", (unsigned long long)v); }
std::string I64(int64_t v) { return StrFormat("%lld", (long long)v); }

void AppendSpanJson(std::string& out, const SpanNode& span, const RunReportOptions& options) {
  out += "{\"name\": \"" + JsonEscape(span.name) + "\"";
  out += ", \"dur_ns\": " + U64(options.mask_timings ? 0 : span.dur_ns);
  out += ", \"cpu_ns\": " + U64(options.mask_timings ? 0 : span.cpu_ns);
  // Allocation figures vary with the allocator, libstdc++ version, and
  // whether the alloc hooks are compiled in, so masking zeroes them too.
  out += ", \"alloc_count\": " + U64(options.mask_timings ? 0 : span.alloc_count);
  out += ", \"alloc_bytes\": " + U64(options.mask_timings ? 0 : span.alloc_bytes);
  out += ", \"attrs\": {";
  for (size_t i = 0; i < span.attrs.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    const auto& [key, value] = span.attrs[i];
    bool mask = options.mask_timings && IsTimingMetricName(key);
    out += "\"" + JsonEscape(key) + "\": \"" + JsonEscape(mask ? "0" : value) + "\"";
  }
  out += "}, \"children\": [";
  for (size_t i = 0; i < span.children.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    AppendSpanJson(out, span.children[i], options);
  }
  out += "]}";
}

void AppendSpanText(std::string& out, const SpanNode& span, int depth) {
  out += std::string(static_cast<size_t>(depth) * 2, ' ');
  out += StrFormat("%-40s %10.3f ms", span.name.c_str(),
                   static_cast<double>(span.dur_ns) / 1e6);
  if (span.cpu_ns != 0) {
    out += StrFormat(" cpu=%.3fms", static_cast<double>(span.cpu_ns) / 1e6);
  }
  if (span.alloc_count != 0) {
    out += StrFormat(" allocs=%llu/%lluB", (unsigned long long)span.alloc_count,
                     (unsigned long long)span.alloc_bytes);
  }
  for (const auto& [key, value] : span.attrs) {
    out += "  " + key + "=" + value;
  }
  out += "\n";
  for (const SpanNode& child : span.children) {
    AppendSpanText(out, child, depth + 1);
  }
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RunReportJson(const SpanCollector& spans, const MetricsRegistry& metrics,
                          const RunReportOptions& options,
                          const std::vector<DiagnosticEntry>* diagnostics) {
  std::string out = "{\n";
  out += "\"schema\": \"";
  out += kRunReportSchema;
  out += "\",\n";

  out += "\"spans\": [";
  std::vector<SpanNode> roots = spans.Snapshot();
  if (options.mask_timings) {
    // Root finish order is racy when BuildDataset workers close their
    // surface.extract spans concurrently; the masked (deterministic) form
    // sorts it away. Unmasked reports keep real finish order.
    std::sort(roots.begin(), roots.end(), [](const SpanNode& a, const SpanNode& b) {
      return CompareSpanNodesMasked(a, b) < 0;
    });
  }
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    AppendSpanJson(out, roots[i], options);
  }
  out += "],\n";

  out += "\"counters\": {";
  auto counters = metrics.CounterSnapshot();
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    bool mask = options.mask_timings && IsTimingMetricName(counters[i].first);
    out += "\"" + JsonEscape(counters[i].first) + "\": " + U64(mask ? 0 : counters[i].second);
  }
  out += "},\n";

  out += "\"gauges\": {";
  auto gauges = metrics.GaugeSnapshot();
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    bool mask = options.mask_timings && IsTimingMetricName(gauges[i].first);
    out += "\"" + JsonEscape(gauges[i].first) + "\": " + I64(mask ? 0 : gauges[i].second);
  }
  out += "},\n";

  out += "\"histograms\": {";
  auto histograms = metrics.HistogramSnapshot();
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    const auto& [name, histogram] = histograms[i];
    bool mask = options.mask_timings && IsTimingMetricName(name);
    out += "\"" + JsonEscape(name) + "\": {\"count\": " + U64(mask ? 0 : histogram->count());
    out += ", \"sum\": " + U64(mask ? 0 : histogram->sum());
    out += ", \"buckets\": [";
    if (!mask) {
      bool first = true;
      for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
        uint64_t n = histogram->bucket(b);
        if (n == 0) {
          continue;  // sparse: only occupied buckets are serialized
        }
        if (!first) {
          out += ", ";
        }
        first = false;
        out += "[" + U64(Histogram::BucketLowerBound(b)) + ", " + U64(n) + "]";
      }
    }
    out += "]}";
  }
  out += "},\n";

  out += "\"diagnostics\": ";
  out += DiagnosticsJson(diagnostics != nullptr ? *diagnostics
                                                : std::vector<DiagnosticEntry>());
  out += "\n}\n";
  return out;
}

std::string RunReportText(const SpanCollector& spans, const MetricsRegistry& metrics) {
  std::string out;
  std::vector<SpanNode> roots = spans.Snapshot();
  if (!roots.empty()) {
    out += "spans:\n";
    for (const SpanNode& root : roots) {
      AppendSpanText(out, root, 1);
    }
  }
  auto counters = metrics.CounterSnapshot();
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters) {
      out += StrFormat("  %-40s %llu\n", name.c_str(), (unsigned long long)value);
    }
  }
  auto gauges = metrics.GaugeSnapshot();
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : gauges) {
      out += StrFormat("  %-40s %lld\n", name.c_str(), (long long)value);
    }
  }
  auto histograms = metrics.HistogramSnapshot();
  if (!histograms.empty()) {
    out += "histograms:\n";
    for (const auto& [name, histogram] : histograms) {
      out += StrFormat("  %-40s count=%llu sum=%llu p50=%.1f p95=%.1f p99=%.1f\n",
                       name.c_str(), (unsigned long long)histogram->count(),
                       (unsigned long long)histogram->sum(), histogram->Percentile(0.50),
                       histogram->Percentile(0.95), histogram->Percentile(0.99));
      for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
        uint64_t n = histogram->bucket(b);
        if (n != 0) {
          out += StrFormat("    >= %-12llu %llu\n",
                           (unsigned long long)Histogram::BucketLowerBound(b),
                           (unsigned long long)n);
        }
      }
    }
  }
  return out;
}

std::string ContextRunReportJson(const Context& context, const RunReportOptions& options) {
  std::vector<DiagnosticEntry> diagnostics = context.diagnostics().Snapshot();
  return RunReportJson(context.spans(), context.metrics(), options, &diagnostics);
}

std::string GlobalRunReportJson(const RunReportOptions& options) {
  std::vector<DiagnosticEntry> diagnostics = DiagnosticsCollector::Global().Snapshot();
  return RunReportJson(SpanCollector::Global(), MetricsRegistry::Global(), options,
                       &diagnostics);
}

std::string GlobalRunReportText() {
  return RunReportText(SpanCollector::Global(), MetricsRegistry::Global());
}

Status WriteGlobalRunReport(const std::string& path, const RunReportOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status(ErrorCode::kIoError, "cannot write " + path);
  }
  std::string json = GlobalRunReportJson(options);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) {
    return Status(ErrorCode::kIoError, "short write to " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace depsurf
