#include "src/obs/perf_gate.h"

#include <cmath>
#include <map>

#include "src/obs/bench_report.h"
#include "src/obs/run_report.h"
#include "src/util/str_util.h"

namespace depsurf {
namespace obs {

namespace {

// Walks a run report's root spans, summing dur_ns per distinct name (a
// parallel dataset build has one surface.extract root per image).
void AccumulateRootSpans(const JsonValue& doc, std::vector<StageTiming>& out) {
  const JsonValue* spans = doc.Find("spans");
  if (spans == nullptr || spans->kind != JsonValue::Kind::kArray) {
    return;
  }
  std::map<std::string, size_t> index_by_name;
  for (const JsonValue& span : spans->array) {
    const JsonValue* name = span.Find("name");
    const JsonValue* dur = span.Find("dur_ns");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      continue;
    }
    auto it = index_by_name.find(name->string);
    if (it == index_by_name.end()) {
      it = index_by_name.emplace(name->string, out.size()).first;
      out.push_back(StageTiming{name->string, 0, 0});
    }
    out[it->second].seconds += (dur != nullptr ? dur->number : 0) / 1e9;
    out[it->second].items += 1;
  }
}

}  // namespace

const char* StageClassName(StageClass c) {
  switch (c) {
    case StageClass::kImproved:
      return "improved";
    case StageClass::kFlat:
      return "flat";
    case StageClass::kRegressed:
      return "regressed";
    case StageClass::kAdded:
      return "added";
    case StageClass::kRemoved:
      return "removed";
  }
  return "?";
}

Result<std::vector<StageTiming>> LoadStageTimings(const JsonValue& doc) {
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString) {
    return Error(ErrorCode::kMalformedData, "document has no schema marker");
  }
  std::vector<StageTiming> out;
  if (schema->string == kBenchReportSchema) {
    const JsonValue* stages = doc.Find("stages");
    if (stages == nullptr || stages->kind != JsonValue::Kind::kArray) {
      return Error(ErrorCode::kMalformedData, "bench report has no stages array");
    }
    for (const JsonValue& stage : stages->array) {
      const JsonValue* name = stage.Find("name");
      const JsonValue* seconds = stage.Find("seconds");
      const JsonValue* items = stage.Find("items");
      if (name == nullptr || name->kind != JsonValue::Kind::kString ||
          seconds == nullptr || seconds->kind != JsonValue::Kind::kNumber) {
        return Error(ErrorCode::kMalformedData, "stage missing name or seconds");
      }
      out.push_back(StageTiming{
          name->string, seconds->number,
          items != nullptr ? static_cast<uint64_t>(items->number) : uint64_t{0}});
    }
    return out;
  }
  if (schema->string == kRunReportSchema || schema->string == kRunReportAggSchema) {
    AccumulateRootSpans(doc, out);
    if (out.empty()) {
      return Error(ErrorCode::kMalformedData, "run report has no root spans to time");
    }
    return out;
  }
  return Error(ErrorCode::kMalformedData,
               "unsupported schema for perf comparison: " + schema->string);
}

PerfComparison ComparePerf(const std::vector<StageTiming>& base,
                           const std::vector<StageTiming>& head,
                           const PerfGateOptions& options) {
  PerfComparison comparison;
  std::map<std::string, const StageTiming*> head_by_name;
  for (const StageTiming& stage : head) {
    head_by_name.emplace(stage.name, &stage);
  }
  std::map<std::string, const StageTiming*> base_by_name;
  for (const StageTiming& stage : base) {
    base_by_name.emplace(stage.name, &stage);
  }

  for (const StageTiming& b : base) {
    StageDelta delta;
    delta.name = b.name;
    delta.base_seconds = b.seconds;
    auto it = head_by_name.find(b.name);
    if (it == head_by_name.end()) {
      delta.cls = StageClass::kRemoved;
      comparison.stages.push_back(std::move(delta));
      continue;
    }
    const StageTiming& h = *it->second;
    delta.head_seconds = h.seconds;
    if (b.seconds > 0) {
      delta.delta_pct = (h.seconds - b.seconds) / b.seconds * 100.0;
    }
    bool under_floor = b.seconds < options.noise_floor_seconds &&
                       h.seconds < options.noise_floor_seconds;
    bool under_delta_floor = false;
    if (auto floor_it = options.stage_delta_floors_seconds.find(b.name);
        floor_it != options.stage_delta_floors_seconds.end()) {
      delta.floor_seconds = floor_it->second;
      under_delta_floor = std::fabs(h.seconds - b.seconds) <= floor_it->second;
    }
    if (under_floor || under_delta_floor) {
      delta.cls = StageClass::kFlat;
    } else if (h.seconds > b.seconds * (1.0 + options.max_regress)) {
      delta.cls = StageClass::kRegressed;
      ++comparison.regressed;
    } else if (b.seconds > h.seconds * (1.0 + options.max_regress)) {
      delta.cls = StageClass::kImproved;
      ++comparison.improved;
    } else {
      delta.cls = StageClass::kFlat;
    }
    comparison.stages.push_back(std::move(delta));
  }
  for (const StageTiming& h : head) {
    if (base_by_name.find(h.name) == base_by_name.end()) {
      StageDelta delta;
      delta.name = h.name;
      delta.head_seconds = h.seconds;
      delta.cls = StageClass::kAdded;
      comparison.stages.push_back(std::move(delta));
    }
  }
  return comparison;
}

std::string PerfComparisonText(const PerfComparison& comparison) {
  std::string out;
  out += StrFormat("%-36s %12s %12s %8s  %s\n", "stage", "base (s)", "head (s)", "delta",
                   "class");
  for (const StageDelta& delta : comparison.stages) {
    std::string delta_str =
        delta.cls == StageClass::kAdded || delta.cls == StageClass::kRemoved
            ? std::string("-")
            : StrFormat("%+.1f%%", delta.delta_pct);
    out += StrFormat("%-36s %12.6f %12.6f %8s  %s\n", delta.name.c_str(),
                     delta.base_seconds, delta.head_seconds, delta_str.c_str(),
                     StageClassName(delta.cls));
  }
  out += StrFormat("%zu improved, %zu regressed of %zu stages\n", comparison.improved,
                   comparison.regressed, comparison.stages.size());
  return out;
}

std::string PerfComparisonJson(const PerfComparison& comparison,
                               const PerfGateOptions& options) {
  size_t flat = 0;
  size_t added = 0;
  size_t removed = 0;
  for (const StageDelta& delta : comparison.stages) {
    flat += delta.cls == StageClass::kFlat ? 1 : 0;
    added += delta.cls == StageClass::kAdded ? 1 : 0;
    removed += delta.cls == StageClass::kRemoved ? 1 : 0;
  }
  std::string out = "{\n\"schema\": \"";
  out += kPerfCompareSchema;
  out += "\",\n";
  out += StrFormat("\"max_regress\": %.6f, \"noise_floor_seconds\": %.6f,\n",
                   options.max_regress, options.noise_floor_seconds);
  out += StrFormat(
      "\"improved\": %zu, \"flat\": %zu, \"regressed\": %zu, \"added\": %zu, "
      "\"removed\": %zu,\n",
      comparison.improved, flat, comparison.regressed, added, removed);
  out += "\"stages\": [";
  for (size_t i = 0; i < comparison.stages.size(); ++i) {
    const StageDelta& delta = comparison.stages[i];
    if (i != 0) {
      out += ",";
    }
    out += StrFormat(
        "\n  {\"name\": \"%s\", \"class\": \"%s\", \"base_seconds\": %.6f, "
        "\"head_seconds\": %.6f, \"delta_pct\": %.2f, \"floor_seconds\": %.6f}",
        JsonEscape(delta.name).c_str(), StageClassName(delta.cls), delta.base_seconds,
        delta.head_seconds, delta.delta_pct, delta.floor_seconds);
  }
  out += "\n]\n}\n";
  return out;
}

Status ValidateBenchReport(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kBenchReportSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kBenchReportSchema));
  }
  const JsonValue* bench = doc.Find("bench");
  if (bench == nullptr || bench->kind != JsonValue::Kind::kString || bench->string.empty()) {
    return Status(ErrorCode::kMalformedData, "missing bench name");
  }
  const JsonValue* stages = doc.Find("stages");
  if (stages == nullptr || stages->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing stages array");
  }
  for (size_t i = 0; i < stages->array.size(); ++i) {
    const JsonValue& stage = stages->array[i];
    const JsonValue* name = stage.Find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString || name->string.empty()) {
      return Status(ErrorCode::kMalformedData, StrFormat("stage %zu: missing name", i));
    }
    for (const char* field : {"seconds", "items", "items_per_sec", "bytes", "bytes_per_sec"}) {
      const JsonValue* member = stage.Find(field);
      if (member == nullptr || member->kind != JsonValue::Kind::kNumber ||
          !std::isfinite(member->number) || member->number < 0) {
        return Status(ErrorCode::kMalformedData,
                      StrFormat("stage %zu (%s): %s must be a nonnegative number", i,
                                name->string.c_str(), field));
      }
    }
  }
  return Status::Ok();
}

Status ValidatePerfCompare(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) {
    return parsed.TakeError();
  }
  const JsonValue& doc = *parsed;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString ||
      schema->string != kPerfCompareSchema) {
    return Status(ErrorCode::kMalformedData,
                  StrFormat("missing or wrong schema marker (want %s)", kPerfCompareSchema));
  }
  for (const char* field : {"max_regress", "improved", "flat", "regressed", "added",
                            "removed"}) {
    const JsonValue* member = doc.Find(field);
    if (member == nullptr || member->kind != JsonValue::Kind::kNumber) {
      return Status(ErrorCode::kMalformedData, StrFormat("missing numeric %s", field));
    }
  }
  const JsonValue* stages = doc.Find("stages");
  if (stages == nullptr || stages->kind != JsonValue::Kind::kArray) {
    return Status(ErrorCode::kMalformedData, "missing stages array");
  }
  for (size_t i = 0; i < stages->array.size(); ++i) {
    const JsonValue& stage = stages->array[i];
    const JsonValue* name = stage.Find("name");
    const JsonValue* cls = stage.Find("class");
    if (name == nullptr || name->kind != JsonValue::Kind::kString || name->string.empty()) {
      return Status(ErrorCode::kMalformedData, StrFormat("stage %zu: missing name", i));
    }
    bool known = false;
    for (StageClass c : {StageClass::kImproved, StageClass::kFlat, StageClass::kRegressed,
                         StageClass::kAdded, StageClass::kRemoved}) {
      known = known || (cls != nullptr && cls->string == StageClassName(c));
    }
    if (!known) {
      return Status(ErrorCode::kMalformedData,
                    StrFormat("stage %zu (%s): unknown class", i, name->string.c_str()));
    }
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace depsurf
