// Minimal JSON parser used to validate run reports without external
// dependencies: full object/array/string/number/bool/null grammar, parsed
// into a small DOM that preserves object key order. Powers the golden-schema
// test, `depsurf metrics lint`, and the obs-smoke determinism check.
#ifndef DEPSURF_SRC_OBS_JSON_LINT_H_
#define DEPSURF_SRC_OBS_JSON_LINT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/error.h"

namespace depsurf {
namespace obs {

struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered (objects keep the order keys appear in the document).
  std::vector<std::pair<std::string, JsonValue>> object;

  // First member with the given key; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

Result<JsonValue> ParseJson(std::string_view text);

// Validates a depsurf.run_report.v1 document:
//   - parses as JSON, has the schema marker and the five sections
//     (spans/counters/gauges/histograms/diagnostics)
//   - the diagnostics section is a well-formed entry array
//   - at least `min_distinct_spans` distinct span names (tree-wide)
//   - every name in `required_counters` is present under "counters"
// Returns Ok or a message naming the first violation.
Status ValidateRunReport(std::string_view json, size_t min_distinct_spans = 0,
                         const std::vector<std::string>& required_counters = {});

// Validates a parsed diagnostics entry array (the "diagnostics" section of
// run reports, or the "entries" array of a depsurf.diagnostics.v1 doc):
// every entry must carry severity/subsystem/code/message strings drawn from
// the known enumerations plus a numeric offset (-1 = unknown). When
// `labeled` is set, entries must also carry a "label" string (aggregates).
Status ValidateDiagnosticsArray(const JsonValue& array, bool labeled = false);

// Validates a depsurf.diagnostics.v1 document (`depsurf doctor --json`):
// schema marker, "image" string, "health" object mapping subsystems to
// clean/degraded/missing, "fatal" bool, and a valid "entries" array.
Status ValidateDiagnosticsDoc(std::string_view json);

// Validates a depsurf.analysis.v1 document (`depsurf analyze --json`):
// schema marker, "object" string, "against" (null or an object with an
// "images" count), "programs"/"relocs"/"findings" arrays whose entries
// carry their required members, and a "summary" whose per-kind counts sum
// to its "findings" total. The schema is defined by the analyzer layer;
// this checks structure only, so the obs library stays dependency-free.
Status ValidateAnalysisDoc(std::string_view json);

// Validates a depsurf.remediation.v1 document (`depsurf fix --json`):
// schema marker, "object" string, "against" (null or an object with an
// "images" count), a "remediations" array whose entries carry the finding
// they target plus either the guard insertion (insn_off, scratch_reg,
// struct, field, guard) or a refusal reason, a "verification" block (null
// or the before/after counts with an "ok" bool), and a "summary" whose
// fixable + unfixable == findings == array length. The schema is defined
// by the analyzer layer; structure only is checked here.
Status ValidateRemediationDoc(std::string_view json);

// Validates a depsurf.fuzz_campaign.v1 document (`depsurf fuzz --json`):
// schema marker, mode ("image"/"object"), numeric config block, non-empty
// seeds array, a coverage block whose key list matches its count, a growth
// curve with non-decreasing rounds and tuple totals ending at the coverage
// total, per-kind stats with novel <= attempts, a corpus whose entries
// carry their replay keys (kind, fault_seed, round, parent), minimized
// indices inside the corpus, oracle/hang arrays, and an exit_code in
// {0,1,2} consistent with those arrays (hangs -> 1, disagreements -> 2).
// The schema is defined by the fuzz layer; structure only is checked here.
Status ValidateFuzzCampaignDoc(std::string_view json);

// Validates a depsurf.serve_report.v1 document (`depsurf serve
// --report-out`): schema marker, a nonnegative "jobs" number, a non-empty
// "datasets" array ({path, format v1|v2, images >= 0} each), request
// counters with ok + errors == requests, and a "cache" block whose
// hits + misses == ok, entries <= misses, entries <= capacity. The schema
// is defined by the serve layer; structure only is checked here.
Status ValidateServeReportDoc(std::string_view json);

// Non-fatal lint notes for a parsed run report or aggregate. Currently
// flags deprecated gauge names (renamed in later schema revisions but
// still valid in old documents) with their modern replacement. Returns
// one human-readable note per hit; empty means nothing to report.
std::vector<std::string> RunReportLintNotes(const JsonValue& report);

// Distinct span names in a parsed report (empty if not a report).
std::set<std::string> CollectSpanNames(const JsonValue& report);

// Total span nodes (roots + all descendants) under a report's "spans"
// section; 0 if not a report. A trace export of the same run must carry
// exactly this many events (see trace_export.h).
size_t CountReportSpanNodes(const JsonValue& report);

// Total order over parsed span objects ignoring timing fields — the
// JsonValue mirror of CompareSpanNodesMasked (span.h). Canonicalization and
// report merging both sort roots with it so multi-threaded finish order
// never leaks into deterministic output.
int CompareReportSpans(const JsonValue& a, const JsonValue& b);

// Re-emits a parsed JSON document in canonical compact form with timing
// fields masked ("dur_ns" members and members/attr keys with timing
// suffixes zeroed, timing histograms emptied). Run-report documents
// (run_report.v1 / run_report_agg.v1) additionally get their root spans
// sorted into the deterministic masked order, since multi-threaded runs
// collect roots in racy finish order. Two runs over identical inputs
// canonicalize to identical bytes.
std::string CanonicalMaskedJson(const JsonValue& value);

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_SRC_OBS_JSON_LINT_H_
