#include "src/obs/alloc_hooks.h"

#ifdef DEPSURF_PROFILE_ALLOC

#include <cstdlib>
#include <new>

namespace depsurf {
namespace obs {
namespace internal {

// Plain PODs with static zero-initialization: safe to bump from operator
// new even before any dynamic initializer has run.
thread_local uint64_t tls_alloc_count = 0;
thread_local uint64_t tls_alloc_bytes = 0;

}  // namespace internal

AllocStats ThreadAllocStats() {
  return AllocStats{internal::tls_alloc_count, internal::tls_alloc_bytes};
}

bool AllocHooksEnabled() { return true; }

}  // namespace obs
}  // namespace depsurf

namespace {

inline void CountAlloc(std::size_t size) {
  ++depsurf::obs::internal::tls_alloc_count;
  depsurf::obs::internal::tls_alloc_bytes += size;
}

inline void* CheckedMalloc(std::size_t size) {
  // malloc(0) may legally return nullptr; operator new must not.
  return std::malloc(size != 0 ? size : 1);
}

}  // namespace

// Only the plain (unaligned) forms are replaced. Over-aligned allocations
// go through the default aligned new/delete pair, which is internally
// consistent with itself; mixing is safe because new/delete forms always
// pair up by alignment.
void* operator new(std::size_t size) {
  CountAlloc(size);
  void* ptr = CheckedMalloc(size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void* operator new[](std::size_t size) {
  CountAlloc(size);
  void* ptr = CheckedMalloc(size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  CountAlloc(size);
  return CheckedMalloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  CountAlloc(size);
  return CheckedMalloc(size);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }

#else  // !DEPSURF_PROFILE_ALLOC

namespace depsurf {
namespace obs {

AllocStats ThreadAllocStats() { return AllocStats{}; }

bool AllocHooksEnabled() { return false; }

}  // namespace obs
}  // namespace depsurf

#endif  // DEPSURF_PROFILE_ALLOC
